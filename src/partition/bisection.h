// Recursive balanced bisection: drives SeparatorFinder to produce the raw
// partition tree that core/tree_hierarchy compacts into a stable tree
// hierarchy. Kept separate from core so the partitioning strategy can be
// swapped (e.g. METIS-style multilevel) without touching the labelling.
#ifndef STL_PARTITION_BISECTION_H_
#define STL_PARTITION_BISECTION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace stl {

/// Construction parameters for the stable tree hierarchy.
struct HierarchyOptions {
  /// Balance threshold beta from Definition 4.1: each child subtree holds
  /// at most (1 - beta) of the parent's vertices. The paper uses 0.2.
  double beta = 0.2;
  /// Regions of at most this many vertices become leaf nodes.
  uint32_t leaf_size = 2;
  /// BFS multi-start attempts per separator.
  int num_starts = 3;
  /// Seed for the randomized start selection.
  uint64_t seed = 7;
  /// Worker threads for label construction (the bisection itself is
  /// sequential; label columns are embarrassingly parallel).
  int num_threads = 1;
};

/// Raw bisection tree: every node owns the cut vertices chosen at its
/// level (for leaves: the whole remaining region). kNoChild marks absent
/// children; nodes are in preorder (parent before children).
struct PartitionTree {
  static constexpr uint32_t kNoChild = UINT32_MAX;

  struct Node {
    uint32_t parent = kNoChild;
    uint32_t left = kNoChild;
    uint32_t right = kNoChild;
    std::vector<Vertex> vertices;  // cut vertices, in stable (sorted) order
  };

  std::vector<Node> nodes;
  uint32_t root = 0;
};

/// Builds the bisection tree of `g`. Every vertex of `g` appears in
/// exactly one node (the ell mapping is total and surjective).
PartitionTree BuildPartitionTree(const Graph& g,
                                 const HierarchyOptions& options);

}  // namespace stl

#endif  // STL_PARTITION_BISECTION_H_
