// Concurrent query-serving engine, generic over DistanceIndex backends
// (STL, CH, H2H, HC2L — see index/distance_index.h).
//
// Architecture (the serving/maintenance split of Section 1's "dynamic
// road network" setting, engineered for concurrency):
//
//   readers (ThreadPool)              single writer thread
//   ─────────────────────             ─────────────────────────────
//   load current snapshot  ◄───────┐  accumulate EnqueueUpdate()s
//   answer from its view           │  coalesce into a distinct-edge
//   (pure const reads, never       │  batch, apply it to the master
//    blocked by maintenance)       │  backend (incremental repair, or a
//                                  │  full rebuild for static backends),
//                                  └─ publish a new EngineSnapshot
//
// All the serving plumbing — thread pool, update queue, snapshot slot,
// batch submission, completion delivery, result cache, stats — lives in
// engine/serving_core.h and is shared with the sharded engine; this
// file contributes only the flat policy: one master DistanceIndex,
// apply-batch = repair-and-publish, route = one IndexView query.
//
// Epoch-versioned snapshots: every published EngineSnapshot is
// immutable. The per-epoch graph is always shared structurally (weights
// live in copy-on-write chunks, graph/graph.h). The index side is
// backend-shaped: STL shares the stable hierarchy across all epochs
// (the paper's central property — weight updates never change it) and
// label pages copy-on-write, so publishing an epoch copies page
// pointers, not entries — O(touched pages), the in-memory mirror of the
// paper's bounded blast radius. CH and H2H mutate their structures in
// place, so each of their epochs is a deep copy of the weight-carrying
// state; HC2L rebuilds on update and publishes the fresh immutable
// index by pointer share. Publication is one atomic pointer swap
// (engine/atomic_shared_ptr.h); a query holds its snapshot alive via
// shared_ptr for exactly as long as it runs, so the writer never waits
// for readers and readers never observe a half-applied batch.
// (EngineOptions::flat_publish restores STL's deep-copy-per-epoch
// behaviour as a benchmark baseline.)
//
// Consistency contract (all backends): a query submitted at time t is
// answered from some epoch published at or after the epoch current at
// t; the answer is exact for that epoch's weights (verified against
// Dijkstra per backend in tests/engine_test.cc and
// bench_backend_shootout). A batch is answered entirely from the one
// snapshot pinned at submission (engine/serving_core.h).
#ifndef STL_ENGINE_QUERY_ENGINE_H_
#define STL_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "engine/serving_core.h"
#include "graph/updates.h"
#include "index/distance_index.h"
#include "workload/query_workload.h"

namespace stl {

/// One immutable published version of the serving state: the graph
/// weights as of this epoch (chunk-shared copy-on-write with
/// neighbouring epochs) plus the backend's index view.
struct EngineSnapshot {
  /// Epoch id (0 = the initial publish; bumps per effective batch).
  uint64_t epoch = 0;
  /// Graph weights as of this epoch (chunk-shared with neighbours).
  Graph graph;
  /// The backend's immutable query surface for this epoch.
  std::shared_ptr<const IndexView> view;
  /// Label pages detached by the producing maintenance batch (the CoW
  /// work that isolated this epoch). Zero for epoch 0 and for backends
  /// without CoW snapshots.
  uint64_t label_pages_cloned = 0;
  /// Total bytes cloned to isolate this epoch (label pages + graph
  /// weight chunks); zero under the same conditions as above.
  uint64_t cow_bytes_cloned = 0;

  /// Exact distance under this epoch's weights; kInfDistance when
  /// unreachable.
  Weight Query(Vertex s, Vertex t) const { return view->Query(s, t); }
  /// Empty when t is unreachable — or when the backend does not support
  /// path queries (BackendCapabilities::path_queries).
  std::vector<Vertex> QueryShortestPath(Vertex s, Vertex t) const {
    return view->QueryShortestPath(graph, s, t);
  }

  /// STL-backend label introspection (CoW audits, publish benches);
  /// null on every other backend.
  const Labelling* StlLabels() const { return view->StlLabels(); }
  /// STL-backend hierarchy introspection; null on other backends.
  const TreeHierarchy* StlHierarchy() const { return view->StlHierarchy(); }
};

/// Answer to one submitted query.
struct QueryResult {
  /// Exact distance for the serving snapshot's weights. Meaningful only
  /// when code == StatusCode::kOk (kInfDistance otherwise).
  Weight distance = kInfDistance;
  /// Epoch of the serving snapshot.
  uint64_t epoch = 0;
  /// Submit-to-completion latency (queue wait included).
  double latency_micros = 0;
  /// The snapshot the query was served from; lets callers audit the
  /// answer against the exact weights of that epoch.
  std::shared_ptr<const EngineSnapshot> snapshot;
  /// kOk for an answered query; kOverloaded when admission control (or
  /// the shutdown drain) shed it; kDeadlineExceeded when its deadline
  /// passed before a reader dequeued it.
  StatusCode code = StatusCode::kOk;

  /// Typed status view of `code` (ServingStatus(code)).
  Status status() const { return ServingStatus(code); }
};

/// Construction options for the flat (single-index) serving engine.
struct EngineOptions {
  /// Which index family serves this engine (index/distance_index.h).
  BackendKind backend = BackendKind::kStl;
  /// Reader threads.
  int num_query_threads = 4;
  /// Updates taken from the pending queue per epoch (larger batches mean
  /// fewer snapshot publishes but staler reads).
  size_t max_batch_size = 128;
  /// How the writer picks the STL maintenance algorithm per batch.
  StrategyMode strategy = StrategyMode::kAuto;
  /// kAuto: batches with at least this many effective updates use Label
  /// Search.
  size_t auto_label_search_threshold = 16;
  /// Capacity of the epoch-keyed (s, t) result memo consulted by every
  /// submission path; 0 disables it. The serving epoch is part of the
  /// cache key, so publishes invalidate for free.
  size_t result_cache_entries = 0;
  /// Benchmark baseline: publish every epoch as a full deep copy of the
  /// graph weights and labels (the pre-CoW behaviour) instead of a
  /// structural share. Keep false outside bench_snapshot_publish; only
  /// meaningful for backends with CoW snapshots (STL).
  bool flat_publish = false;
  /// Overload-hardening knobs (admission bounds, deadlines enforcement,
  /// stall watchdog, bounded shutdown drain, fault injection). Defaults
  /// to everything off — the pre-hardening behaviour.
  ServingOptions serving;
};

/// Concurrent query-serving engine: the flat (one master DistanceIndex)
/// policy over the shared ServingCore. Thread-safe: Submit/SubmitBatch/
/// SubmitTagged/EnqueueUpdate/Flush/Stats may be called from any
/// thread.
class QueryEngine {
 public:
  /// Batch handle type returned by SubmitBatch (one pinned snapshot per
  /// batch; see engine/serving_core.h).
  using Ticket = BatchTicket<EngineSnapshot>;

  /// Takes ownership of the graph, builds the backend selected by
  /// `options.backend`, starts the workers, and publishes epoch 0.
  QueryEngine(Graph graph, const HierarchyOptions& hierarchy_options,
              const EngineOptions& options = {});

  /// Drains: answers every submitted query and applies every enqueued
  /// update before returning.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;             ///< Not copyable.
  QueryEngine& operator=(const QueryEngine&) = delete;  ///< Not copyable.

  /// Schedules one distance query; the future resolves when a reader
  /// thread has answered it — or, under overload, with a kOverloaded /
  /// kDeadlineExceeded result code. Compatibility adapter: allocates
  /// one promise per query (prefer SubmitBatch / SubmitTagged at high
  /// qps).
  std::future<QueryResult> Submit(QueryPair query,
                                  Deadline deadline = kNoDeadline) {
    return core_.Submit(query, deadline);
  }

  /// Schedules a batch of queries pinned to ONE snapshot; answers are
  /// bit-identical to per-query Submit calls on that same snapshot.
  /// Under overload queries may complete with failure codes on the
  /// ticket (BatchTicket::code).
  Ticket SubmitBatch(const std::vector<QueryPair>& queries,
                     Deadline deadline = kNoDeadline) {
    return core_.SubmitBatch(queries, deadline);
  }

  /// Completion-queue mode: the completion is delivered to `sink`
  /// exactly once with the caller's tag — answered, shed or expired —
  /// and no promise or future is allocated.
  void SubmitTagged(QueryPair query, uint64_t tag, CompletionSink* sink,
                    Deadline deadline = kNoDeadline) {
    core_.SubmitTagged(query, tag, sink, deadline);
  }

  /// Batched completion-queue mode: pins one snapshot and delivers
  /// `tags[i]` with query i's completion to `sink` exactly once.
  Ticket SubmitBatchTagged(const std::vector<QueryPair>& queries,
                           const std::vector<uint64_t>& tags,
                           CompletionSink* sink,
                           Deadline deadline = kNoDeadline) {
    return core_.SubmitBatchTagged(queries, tags, sink, deadline);
  }

  /// Records a desired new weight for an edge. The writer re-resolves
  /// the old weight from the master graph at apply time, so callers need
  /// not know the current weight (update.old_weight is ignored).
  void EnqueueUpdate(const WeightUpdate& update) {
    core_.EnqueueUpdate(update.edge, update.new_weight);
  }
  /// Convenience overload of EnqueueUpdate(const WeightUpdate&).
  void EnqueueUpdate(EdgeId edge, Weight new_weight) {
    core_.EnqueueUpdate(edge, new_weight);
  }

  /// Enqueues many updates atomically (one lock, one writer wakeup): the
  /// writer cannot pop a partial prefix, so up to max_batch_size of them
  /// land in the same maintenance batch / epoch.
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
    core_.EnqueueUpdates(updates);
  }

  /// Blocks until every update enqueued before the call has been applied
  /// and, if it changed any weight, published in a snapshot.
  void Flush() { core_.Flush(); }

  /// The latest published snapshot (never null after construction).
  std::shared_ptr<const EngineSnapshot> CurrentSnapshot() const {
    return core_.CurrentSnapshot();
  }

  /// Epoch of the latest published snapshot.
  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  /// The index family serving this engine.
  BackendKind backend() const { return options_.backend; }
  /// What the selected backend supports (path queries, CoW, ...).
  const BackendCapabilities& capabilities() const { return capabilities_; }

  /// Point-in-time counters and latency summary.
  EngineStats Stats() const { return core_.Stats(); }

  /// Zeroes counters (except the epoch allocator) and the latency
  /// histogram and restarts the wall clock (for bench warmup). Call only
  /// while no queries are in flight.
  void ResetStats() { core_.ResetStats(); }

  /// Reader thread count.
  int num_query_threads() const { return core_.num_query_threads(); }

 private:
  // The flat Apply + Route policy the shared ServingCore drives (see
  // the policy contract in engine/serving_core.h).
  struct Policy {
    using Snapshot = EngineSnapshot;
    using Result = QueryResult;
    // One IndexView answers any (s, t); there is no per-group state to
    // reuse, so batch misses are routed unsorted.
    static constexpr bool kGroupsBatches = false;

    QueryEngine* engine;

    void PublishInitial();
    Weight ResolveOldWeight(EdgeId e) const;
    void ApplyBatch(const UpdateBatch& batch);
    uint32_t NumEdges() const;
    Weight Route(const EngineSnapshot& snap, Vertex s, Vertex t,
                 StatusCode* code) const;
    uint64_t BatchSortKey(const EngineSnapshot& snap,
                          const QueryPair& q) const;
    void RouteSpan(const EngineSnapshot& snap, const QueryPair* queries,
                   const uint32_t* idx, size_t count, Weight* out,
                   StatusCode* codes) const;
    void AugmentStats(EngineStats* s) const;
  };

  /// Publishes the master index state as epoch `epoch`. Called only by
  /// the writer thread (or the constructor, before concurrency starts).
  void PublishSnapshot(uint64_t epoch);

  const EngineOptions options_;

  // Master state, owned by the writer after construction (no other
  // thread reads it: queries and Stats() work off published snapshots).
  // graph_ is heap-allocated so its address stays stable for the
  // backend's non-owning pointer.
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<DistanceIndex> index_;
  BackendCapabilities capabilities_;

  // Last-harvested cumulative CoW counters of the master graph; only the
  // publishing thread touches these, so per-epoch deltas need no
  // synchronization. (The label-side harvest lives in the STL backend.)
  uint64_t harvested_graph_chunks_ = 0;
  uint64_t harvested_graph_bytes_ = 0;

  Policy policy_{this};
  ServingCore<Policy> core_;  // last member: its workers die first
};

}  // namespace stl

#endif  // STL_ENGINE_QUERY_ENGINE_H_
