// Core road-network representation: an undirected weighted graph with
// immutable topology (CSR adjacency) and mutable edge weights.
//
// Dynamic road networks change weights all the time but almost never change
// structure (paper, Section 8), so the representation is optimized for
// O(1) weight updates and cache-friendly neighbour scans. Each undirected
// edge has one EdgeId; its weight is stored once in the edge table and
// mirrored into both CSR arcs so Dijkstra inner loops avoid indirection.
//
// The two weight-bearing tables (edge table and arc mirror) are chunked
// and shared copy-on-write: copying a Graph copies chunk pointers
// (refcount bumps), and the first weight write into a chunk that another
// copy can still reach clones just that chunk. Arc chunks are cut at
// vertex boundaries so ArcsOf(v) stays one contiguous span. The topology
// (offsets, arc positions, chunk map) is immutable and shared by every
// copy. This makes per-epoch graph snapshots in engine/query_engine.h
// O(touched chunks) instead of O(|E|). Single-writer discipline: one
// Graph is mutated at a time; copies sharing its chunks may be read or
// destroyed concurrently.
#ifndef STL_GRAPH_GRAPH_H_
#define STL_GRAPH_GRAPH_H_

#include <cstdint>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "util/cow_chunks.h"
#include "util/logging.h"
#include "util/status.h"

namespace stl {

using Vertex = uint32_t;
using EdgeId = uint32_t;
using Weight = uint32_t;

/// Distances saturate at kInfDistance; two valid distances can be added
/// without overflowing uint32_t (2 * 0x3fffffff < 2^32).
inline constexpr Weight kInfDistance = 0x3fffffff;

/// Largest edge weight accepted by Graph::FromEdges. Keeps path weights on
/// benchmark-sized networks far below kInfDistance.
inline constexpr Weight kMaxEdgeWeight = 1u << 24;

/// One undirected edge (endpoints + current weight).
struct Edge {
  Vertex u;
  Vertex v;
  Weight w;
};

/// One directed arc in the CSR adjacency. `weight` mirrors the edge table
/// and is kept in sync by Graph::SetEdgeWeight.
struct Arc {
  Vertex head;
  Weight weight;
  EdgeId edge;
};

/// Undirected weighted graph with fixed topology and CoW-chunked mutable
/// weights (see file comment).
class Graph {
 public:
  /// Edges per edge-table chunk (3 KiB of Edge) — the CoW granularity of
  /// a weight write on the edge table. Arc chunks target the same entry
  /// count but are cut at vertex boundaries.
  static constexpr uint32_t kEdgeChunkShift = 8;
  static constexpr uint32_t kEdgeChunkSize = 1u << kEdgeChunkShift;
  static constexpr uint32_t kEdgeChunkMask = kEdgeChunkSize - 1;

  Graph() = default;

  // Copying shares the topology and every weight chunk; the first
  // SetEdgeWeight on either copy detaches the touched chunks.
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Builds a graph with `num_vertices` vertices from an edge list.
  /// Rejects self-loops, endpoints out of range, zero/oversized weights,
  /// and duplicate edges (parallel edges are meaningless for distance
  /// queries; callers dedupe keeping the minimum weight).
  static Result<Graph> FromEdges(uint32_t num_vertices,
                                 std::vector<Edge> edges);

  uint32_t NumVertices() const { return topo_ ? topo_->num_vertices : 0; }
  uint32_t NumEdges() const { return topo_ ? topo_->num_edges : 0; }

  /// All arcs leaving `v`, sorted by head vertex.
  std::span<const Arc> ArcsOf(Vertex v) const {
    STL_DCHECK(v < NumVertices());
    const uint32_t c = topo_->vertex_chunk[v];
    const Arc* data = arcs_.Data(c);
    const uint32_t base = topo_->arc_chunk_base[c];
    return {data + (topo_->adj_offset[v] - base),
            data + (topo_->adj_offset[v + 1] - base)};
  }

  uint32_t Degree(Vertex v) const {
    STL_DCHECK(v < NumVertices());
    return topo_->adj_offset[v + 1] - topo_->adj_offset[v];
  }

  const Edge& GetEdge(EdgeId id) const {
    STL_DCHECK(id < NumEdges());
    return edges_.Data(id >> kEdgeChunkShift)[id & kEdgeChunkMask];
  }

  Weight EdgeWeight(EdgeId id) const { return GetEdge(id).w; }

  /// Sets the weight of edge `id` (both directions). O(1) amortized;
  /// clones the touched chunks first if any other copy shares them.
  void SetEdgeWeight(EdgeId id, Weight w);

  /// Finds the edge between u and v, if any. O(log deg).
  std::optional<EdgeId> FindEdge(Vertex u, Vertex v) const;

  /// Lightweight random-access view over the chunked edge table; behaves
  /// like the flat `const std::vector<Edge>&` it replaced (range-for,
  /// operator[], size()). References obtained through it point into the
  /// graph's chunks and stay valid while the graph does.
  class EdgeView {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = Edge;
      using difference_type = std::ptrdiff_t;
      using pointer = const Edge*;
      using reference = const Edge&;

      iterator(const Graph* g, EdgeId id) : g_(g), id_(id) {}
      reference operator*() const { return g_->GetEdge(id_); }
      pointer operator->() const { return &g_->GetEdge(id_); }
      iterator& operator++() {
        ++id_;
        return *this;
      }
      iterator operator++(int) {
        iterator old = *this;
        ++id_;
        return old;
      }
      bool operator==(const iterator& o) const { return id_ == o.id_; }
      bool operator!=(const iterator& o) const { return id_ != o.id_; }

     private:
      const Graph* g_;
      EdgeId id_;
    };

    explicit EdgeView(const Graph* g) : g_(g) {}
    size_t size() const { return g_->NumEdges(); }
    bool empty() const { return size() == 0; }
    const Edge& operator[](EdgeId id) const { return g_->GetEdge(id); }
    iterator begin() const { return iterator(g_, 0); }
    iterator end() const { return iterator(g_, g_->NumEdges()); }

   private:
    const Graph* g_;
  };

  /// All edges (id = index).
  EdgeView edges() const { return EdgeView(this); }

  /// Estimated resident memory of the structure in bytes (this copy
  /// alone; chunks shared with other copies are still counted).
  uint64_t MemoryBytes() const;

  /// Adds this graph's resident bytes to a running total, counting each
  /// physical chunk and the shared topology once across every call made
  /// with the same `seen` set. Returns the bytes newly added.
  uint64_t AddResidentBytes(std::unordered_set<const void*>* seen) const;

  /// Cumulative CoW clone counters (monotone; copies inherit and then
  /// diverge), edge + arc chunks summed.
  CowChunkStats cow_stats() const {
    CowChunkStats s = edges_.stats();
    s += arcs_.stats();
    return s;
  }

  /// Element bytes of the two weight-bearing tables — exactly what
  /// DeepCopy physically copies (the shared topology never is).
  uint64_t CowPayloadBytes() const {
    return edges_.PayloadBytes() + arcs_.PayloadBytes();
  }

  /// A fully detached copy: every weight chunk cloned (topology still
  /// shared — it is immutable), CoW counters reset. The flat-copy
  /// publish baseline and tests use this.
  Graph DeepCopy() const;

 private:
  /// Immutable structure shared by every copy of a graph.
  struct Topology {
    uint32_t num_vertices = 0;
    uint32_t num_edges = 0;
    std::vector<uint32_t> adj_offset;  // size num_vertices + 1
    // arc_pos[2*e], arc_pos[2*e+1]: global arc positions of edge e's two
    // directions, so SetEdgeWeight can refresh the mirrored weights.
    std::vector<uint32_t> arc_pos;
    std::vector<uint32_t> vertex_chunk;    // arc chunk containing ArcsOf(v)
    std::vector<uint32_t> arc_chunk_base;  // first arc position per chunk

    uint64_t MemoryBytes() const {
      return adj_offset.capacity() * sizeof(uint32_t) +
             arc_pos.capacity() * sizeof(uint32_t) +
             vertex_chunk.capacity() * sizeof(uint32_t) +
             arc_chunk_base.capacity() * sizeof(uint32_t);
    }
  };

  /// Splits the flat build-time arrays into chunks and installs them.
  void Chunk(uint32_t num_vertices, std::vector<Edge> edges,
             std::vector<uint32_t> adj_offset, std::vector<Arc> arcs,
             std::vector<uint32_t> arc_pos);

  std::shared_ptr<const Topology> topo_;
  // The CoW detach protocol (sole-owner check + acquire fence, clone
  // counters, raw data mirrors) lives in CowChunks.
  CowChunks<Edge> edges_;
  CowChunks<Arc> arcs_;
};

/// Labels connected components; returns component id per vertex and the
/// number of components.
std::pair<std::vector<uint32_t>, uint32_t> ConnectedComponents(
    const Graph& g);

/// True iff the graph is connected (the empty graph is connected).
bool IsConnected(const Graph& g);

/// Extracts the largest connected component as a new graph with vertices
/// renumbered [0, k). Returns the new graph and the old->new vertex map
/// (UINT32_MAX for dropped vertices).
std::pair<Graph, std::vector<uint32_t>> ExtractLargestComponent(
    const Graph& g);

}  // namespace stl

#endif  // STL_GRAPH_GRAPH_H_
