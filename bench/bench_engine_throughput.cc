// Engine throughput under a mixed query + update workload.
//
// For each dataset: build a QueryEngine (>= 4 reader threads), then
// drive waves of concurrent distance queries while a driver thread
// streams weight-update batches (increase then restore, the paper's
// update model) into the writer. Reports queries/sec, p50/p99/mean
// latency, epochs published, and — the part that makes the number
// trustworthy — verifies EVERY answer against a Dijkstra recomputation
// on the exact epoch snapshot it was served from. Any mismatch fails
// the binary.
//
//   STL_BENCH_SCALE=small|medium|large ./bench_engine_throughput
#include <cstdio>
#include <map>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "graph/dijkstra.h"
#include "util/table.h"
#include "workload/update_workload.h"

namespace stl {
namespace bench {
namespace {

struct EngineBenchSizes {
  size_t queries;        // total queries submitted
  size_t wave;           // queries per submitted wave
  size_t update_batches; // update batches streamed by the driver
  size_t batch_size;     // updates per batch
};

EngineBenchSizes SizesForScale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmall:
      return {4000, 100, 30, 12};
    case BenchScale::kMedium:
      return {20000, 250, 60, 25};
    case BenchScale::kLarge:
      return {100000, 500, 120, 50};
  }
  return {4000, 100, 30, 12};
}

struct EngineBenchRow {
  std::string dataset;
  uint32_t vertices = 0;
  double qps = 0;
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
  uint64_t epochs = 0;
  uint64_t updates_applied = 0;
  uint64_t mismatches = 0;
};

EngineBenchRow RunDataset(const DatasetSpec& spec,
                          const EngineBenchSizes& sizes) {
  EngineBenchRow row;
  row.dataset = spec.name;
  Graph g = LoadDataset(spec);
  row.vertices = g.NumVertices();

  std::vector<QueryPair> pairs = RandomQueryPairs(g, sizes.queries, spec.seed);

  EngineOptions opt;
  opt.num_query_threads = 4;
  opt.max_batch_size = sizes.batch_size;
  opt.strategy = StrategyMode::kAuto;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  engine.ResetStats();  // exclude build time from throughput

  // Update driver: alternating increase / restore batches on distinct
  // random edges (Figure 8's model, factor 4), streamed while queries
  // run. Weights are enqueued by target value against the epoch-0
  // snapshot, so each restore batch reuses its increase batch's edges
  // and puts back the original weights.
  std::shared_ptr<const EngineSnapshot> base_snap = engine.CurrentSnapshot();
  const Graph& base = base_snap->graph;
  std::thread updater([&] {
    for (size_t b = 0; b < sizes.update_batches; ++b) {
      std::vector<EdgeId> edges = SampleDistinctEdges(
          base, sizes.batch_size, spec.seed + 7 * (b / 2));
      const bool restore = b % 2 == 1;
      for (EdgeId e : edges) {
        const Weight w0 = base.EdgeWeight(e);
        const Weight target =
            restore ? w0
                    : std::min<Weight>(w0 * 4, kMaxEdgeWeight);
        engine.EnqueueUpdate(e, target);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Query driver: closed-loop waves — submit one wave, harvest it,
  // submit the next — so in-flight work stays bounded at `wave` and
  // latency measures serving (queue wait within a wave), not the drain
  // of a bench-sized backlog.
  std::vector<QueryResult> results;
  results.reserve(pairs.size());
  std::vector<std::future<QueryResult>> wave_futures;
  wave_futures.reserve(sizes.wave);
  for (size_t i = 0; i < pairs.size(); i += sizes.wave) {
    const size_t end = std::min(pairs.size(), i + sizes.wave);
    wave_futures.clear();
    for (size_t j = i; j < end; ++j) {
      wave_futures.push_back(engine.Submit(pairs[j]));
    }
    for (auto& f : wave_futures) results.push_back(f.get());
  }
  updater.join();
  engine.Flush();

  EngineStats stats = engine.Stats();
  row.qps = stats.queries_per_second;
  row.p50 = stats.latency_p50_micros;
  row.p99 = stats.latency_p99_micros;
  row.mean = stats.latency_mean_micros;
  row.epochs = stats.epochs_published;
  row.updates_applied = stats.updates_applied;

  // Ground-truth audit: group answers by epoch, Dijkstra on that epoch's
  // snapshot graph.
  std::map<uint64_t, std::shared_ptr<const EngineSnapshot>> snapshots;
  for (const QueryResult& r : results) snapshots.emplace(r.epoch, r.snapshot);
  std::map<uint64_t, std::unique_ptr<Dijkstra>> oracle;
  for (auto& [epoch, snap] : snapshots) {
    oracle.emplace(epoch, std::make_unique<Dijkstra>(snap->graph));
  }
  for (size_t i = 0; i < results.size(); ++i) {
    const QueryResult& r = results[i];
    if (r.distance !=
        oracle.at(r.epoch)->Distance(pairs[i].first, pairs[i].second)) {
      ++row.mismatches;
    }
  }
  return row;
}

int Main() {
  BenchConfig cfg = MakeConfig();
  PrintHeader("Engine throughput: concurrent queries vs streaming updates",
              cfg);
  EngineBenchSizes sizes = SizesForScale(cfg.scale);
  std::printf(
      "4 reader threads + 1 writer; %zu queries in waves of %zu, "
      "%zu update batches x %zu edges (increase/restore, factor 4)\n\n",
      sizes.queries, sizes.wave, sizes.update_batches, sizes.batch_size);

  TablePrinter table({"Dataset", "|V|", "qps", "p50 us", "p99 us",
                      "mean us", "epochs", "upd applied", "mismatches"});
  bool all_exact = true;
  for (const DatasetSpec& spec : cfg.datasets) {
    EngineBenchRow row = RunDataset(spec, sizes);
    all_exact = all_exact && row.mismatches == 0;
    table.AddRow({row.dataset, std::to_string(row.vertices),
                  TablePrinter::Fixed(row.qps, 0),
                  TablePrinter::Fixed(row.p50, 1),
                  TablePrinter::Fixed(row.p99, 1),
                  TablePrinter::Fixed(row.mean, 1),
                  std::to_string(row.epochs),
                  std::to_string(row.updates_applied),
                  std::to_string(row.mismatches)});
  }
  table.Print();
  if (!all_exact) {
    std::printf("\nFAIL: served answers diverged from Dijkstra ground "
                "truth on their epoch\n");
    return 1;
  }
  std::printf("\nall answers exact on their serving epoch\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace stl

int main() { return stl::bench::Main(); }
