// The async substrate of the network layer: one epoll instance driven
// by one dedicated thread, with an eventfd wakeup for cross-thread
// task posting and a min-heap of monotonic-clock timers (connect
// timeouts, reconnect backoff, request-timeout sweeps). Everything
// registered with the loop — fd handlers, timers — runs on the loop
// thread, so Conn / SocketTransport / FrameServer state needs no locks
// of its own: cross-thread entry points Post() a closure instead.
//
// The loop never blocks on user work; handlers must be non-blocking
// (the FrameServer offloads request handling to a worker pool and
// posts the response back).
#ifndef STL_NET_EVENT_LOOP_H_
#define STL_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace stl {

/// One epoll event loop on one dedicated thread. Post() is the only
/// thread-safe entry point; fd registration and timers are loop-thread
/// only (assert via InLoopThread()).
class EventLoop {
 public:
  /// An fd's readiness callback; receives the ready epoll event mask
  /// (EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP bits).
  using IoHandler = std::function<void(uint32_t events)>;

  /// Monotonic instant timers are scheduled against.
  using TimePoint = std::chrono::steady_clock::time_point;

  /// An inert loop; Start() spawns the thread.
  EventLoop();

  /// Stops and joins if still running.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;             ///< Not copyable.
  EventLoop& operator=(const EventLoop&) = delete;  ///< Not copyable.

  /// Spawns the loop thread. Call exactly once.
  void Start();

  /// Asks the loop to exit after the current iteration and joins the
  /// thread. Pending posted tasks are run before exit; fds registered
  /// at stop time are NOT closed (their owners close them). Idempotent.
  void Stop();

  /// Schedules `task` to run on the loop thread (thread-safe; the one
  /// cross-thread entry point). Tasks run in post order. Posting after
  /// Stop() is a silent no-op — shutdown races resolve to "dropped",
  /// matching the transport's fail-everything-then-stop teardown order.
  void Post(std::function<void()> task);

  /// Runs `fn` inline when already on the loop thread, else Post()s it.
  void RunInLoop(std::function<void()> fn);

  /// True on the loop thread (for STL_DCHECKs in loop-only code).
  bool InLoopThread() const;

  /// Registers `fd` with the given epoll event mask. Loop thread only.
  void RegisterFd(int fd, uint32_t events, IoHandler handler);

  /// Changes `fd`'s epoll event mask. Loop thread only.
  void UpdateFd(int fd, uint32_t events);

  /// Unregisters `fd`. Safe to call from inside `fd`'s own handler: the
  /// handler object is kept alive until the current dispatch round
  /// finishes, so a self-unregistering connection does not destroy the
  /// closure it is executing. Loop thread only.
  void UnregisterFd(int fd);

  /// Schedules `cb` to run on the loop thread at (or just after)
  /// `when`; returns a cancellation id. Loop thread only.
  uint64_t AddTimer(TimePoint when, std::function<void()> cb);

  /// Cancels a pending timer (no-op if it already fired). Loop thread
  /// only.
  void CancelTimer(uint64_t id);

 private:
  void Run();
  void DrainPosted();
  /// Fires every due timer; returns the epoll timeout (ms) until the
  /// next one (-1 = no timers pending).
  int FireDueTimers();
  void Wakeup();

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd: Post() -> loop wakeup

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;  // guarded by post_mu_
  bool accepting_posts_ = false;               // guarded by post_mu_

  // Loop-thread state: fd handlers and the timer heap. Keyed maps (not
  // a heap) so cancellation is O(log n) and ids are stable.
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;
  std::vector<std::shared_ptr<IoHandler>> dispatch_graveyard_;
  std::map<std::pair<TimePoint, uint64_t>, std::function<void()>> timers_;
  uint64_t next_timer_id_ = 1;
};

}  // namespace stl

#endif  // STL_NET_EVENT_LOOP_H_
