#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

#include "util/logging.h"

namespace stl {

namespace {
constexpr int kMaxEvents = 64;
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  STL_CHECK(epoll_fd_ >= 0) << "epoll_create1 failed";
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  STL_CHECK(wakeup_fd_ >= 0) << "eventfd failed";
}

EventLoop::~EventLoop() {
  Stop();
  ::close(wakeup_fd_);
  ::close(epoll_fd_);
}

void EventLoop::Start() {
  STL_CHECK(!running_.load());
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    accepting_posts_ = true;
  }
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    accepting_posts_ = false;
  }
  stop_.store(true);
  Wakeup();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (!accepting_posts_) return;  // shutdown race: dropped by design
    posted_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  if (InLoopThread()) {
    fn();
  } else {
    Post(std::move(fn));
  }
}

bool EventLoop::InLoopThread() const {
  return std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; ignore it.
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof one);
}

void EventLoop::RegisterFd(int fd, uint32_t events, IoHandler handler) {
  STL_DCHECK(InLoopThread());
  auto [it, fresh] = handlers_.emplace(
      fd, std::make_shared<IoHandler>(std::move(handler)));
  STL_CHECK(fresh) << "fd registered twice";
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  STL_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl ADD failed";
  (void)it;
}

void EventLoop::UpdateFd(int fd, uint32_t events) {
  STL_DCHECK(InLoopThread());
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  STL_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll_ctl MOD failed";
}

void EventLoop::UnregisterFd(int fd) {
  STL_DCHECK(InLoopThread());
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  // Keep the handler alive until the dispatch round ends: the caller
  // may BE this fd's handler, and destroying an executing closure is
  // undefined behaviour.
  dispatch_graveyard_.push_back(std::move(it->second));
  handlers_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

uint64_t EventLoop::AddTimer(TimePoint when, std::function<void()> cb) {
  STL_DCHECK(InLoopThread());
  const uint64_t id = next_timer_id_++;
  timers_.emplace(std::make_pair(when, id), std::move(cb));
  return id;
}

void EventLoop::CancelTimer(uint64_t id) {
  STL_DCHECK(InLoopThread());
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.second == id) {
      timers_.erase(it);
      return;
    }
  }
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (std::function<void()>& t : tasks) t();
}

int EventLoop::FireDueTimers() {
  const TimePoint now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto node = timers_.extract(timers_.begin());
    node.mapped()();  // may add/cancel timers; the map stays valid
  }
  if (timers_.empty()) return -1;
  const auto wait = timers_.begin()->first.first -
                    std::chrono::steady_clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(wait).count();
  // Round up so a timer 0.3ms out does not busy-spin at timeout 0.
  return static_cast<int>(std::max<int64_t>(ms + 1, 1));
}

void EventLoop::Run() {
  epoll_event wake{};
  wake.events = EPOLLIN;
  wake.data.fd = wakeup_fd_;
  STL_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &wake) == 0);

  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    DrainPosted();
    const int timeout = FireDueTimers();
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wakeup_fd_, &drained, sizeof drained);
        continue;
      }
      // Look the handler up fresh: an earlier handler in this round may
      // have unregistered this fd (e.g. closed a sibling connection).
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      std::shared_ptr<IoHandler> handler = it->second;  // keep-alive
      (*handler)(events[i].events);
    }
    dispatch_graveyard_.clear();
  }
  DrainPosted();  // run tasks posted before Stop() flipped the gate
  dispatch_graveyard_.clear();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, wakeup_fd_, nullptr);
}

}  // namespace stl
