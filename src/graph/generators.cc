#include "graph/generators.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace stl {

namespace {

/// Road class of the grid line a vertex sits on. Highways beat arterials.
enum class RoadClass { kLocal, kArterial, kHighway };

RoadClass LineClass(uint32_t index, const RoadNetworkOptions& opt) {
  if (opt.highway_every != 0 && index % opt.highway_every == 0) {
    return RoadClass::kHighway;
  }
  if (opt.arterial_every != 0 && index % opt.arterial_every == 0) {
    return RoadClass::kArterial;
  }
  return RoadClass::kLocal;
}

Weight ClassWeight(RoadClass cls, Weight base) {
  switch (cls) {
    case RoadClass::kHighway:
      return std::max<Weight>(1, base / 6);
    case RoadClass::kArterial:
      return std::max<Weight>(1, base / 2);
    case RoadClass::kLocal:
      return base;
  }
  return base;
}

}  // namespace

Graph GenerateRoadNetwork(const RoadNetworkOptions& options) {
  STL_CHECK(options.width >= 2 && options.height >= 2);
  STL_CHECK(options.local_min_weight >= 1 &&
            options.local_min_weight <= options.local_max_weight);
  Rng rng(options.seed);
  const uint32_t w = options.width;
  const uint32_t h = options.height;
  auto id = [w](uint32_t x, uint32_t y) { return y * w + x; };
  auto base_weight = [&]() -> Weight {
    return static_cast<Weight>(rng.NextInRange(options.local_min_weight,
                                               options.local_max_weight));
  };

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(w) * h * 2);
  // Horizontal edges travel along row y; vertical edges along column x.
  for (uint32_t y = 0; y < h; ++y) {
    RoadClass row_cls = LineClass(y, options);
    for (uint32_t x = 0; x + 1 < w; ++x) {
      if (rng.NextDouble() >= options.edge_keep_prob) continue;
      edges.push_back(
          Edge{id(x, y), id(x + 1, y), ClassWeight(row_cls, base_weight())});
    }
  }
  for (uint32_t x = 0; x < w; ++x) {
    RoadClass col_cls = LineClass(x, options);
    for (uint32_t y = 0; y + 1 < h; ++y) {
      if (rng.NextDouble() >= options.edge_keep_prob) continue;
      edges.push_back(
          Edge{id(x, y), id(x, y + 1), ClassWeight(col_cls, base_weight())});
    }
  }
  // Chords: short diagonals connecting (x, y) to (x+1, y+1) or (x+1, y-1).
  std::vector<uint64_t> present;
  present.reserve(edges.size());
  for (const Edge& e : edges) {
    Vertex a = std::min(e.u, e.v), b = std::max(e.u, e.v);
    present.push_back((static_cast<uint64_t>(a) << 32) | b);
  }
  std::sort(present.begin(), present.end());
  auto has_edge = [&present](Vertex a, Vertex b) {
    if (a > b) std::swap(a, b);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    return std::binary_search(present.begin(), present.end(), key);
  };
  for (uint32_t y = 0; y + 1 < h; ++y) {
    for (uint32_t x = 0; x + 1 < w; ++x) {
      if (rng.NextDouble() >= options.chord_prob) continue;
      bool down = rng.NextBounded(2) == 0;
      Vertex a = id(x, y + (down ? 0 : 1));
      Vertex b = id(x + 1, y + (down ? 1 : 0));
      if (!has_edge(a, b)) {
        // Diagonals are longer local streets: ~1.4x base.
        Weight bw = base_weight();
        edges.push_back(Edge{a, b, bw + bw / 2});
      }
    }
  }
  Result<Graph> full = Graph::FromEdges(w * h, std::move(edges));
  STL_CHECK(full.ok()) << full.status().ToString();
  auto [largest, remap] = ExtractLargestComponent(full.value());
  (void)remap;
  return std::move(largest);
}

Graph GenerateRandomConnectedGraph(uint32_t num_vertices,
                                   uint32_t extra_edges, Weight min_w,
                                   Weight max_w, uint64_t seed) {
  STL_CHECK(num_vertices >= 1);
  STL_CHECK(min_w >= 1 && min_w <= max_w);
  Rng rng(seed);
  std::vector<Edge> edges;
  std::vector<uint64_t> present;
  auto weight = [&]() -> Weight {
    return static_cast<Weight>(rng.NextInRange(min_w, max_w));
  };
  auto add_edge = [&](Vertex a, Vertex b) {
    if (a > b) std::swap(a, b);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    if (std::find(present.begin(), present.end(), key) != present.end()) {
      return false;
    }
    present.push_back(key);
    edges.push_back(Edge{a, b, weight()});
    return true;
  };
  // Random spanning tree: attach vertex i to a uniformly random earlier
  // vertex (random recursive tree — long and thin enough to be interesting).
  for (Vertex v = 1; v < num_vertices; ++v) {
    add_edge(v, static_cast<Vertex>(rng.NextBounded(v)));
  }
  uint32_t attempts = 0;
  uint32_t added = 0;
  const uint64_t max_possible =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  while (added < extra_edges && attempts < 20 * extra_edges + 100 &&
         edges.size() < max_possible) {
    ++attempts;
    Vertex a = static_cast<Vertex>(rng.NextBounded(num_vertices));
    Vertex b = static_cast<Vertex>(rng.NextBounded(num_vertices));
    if (a == b) continue;
    if (add_edge(a, b)) ++added;
  }
  Result<Graph> g = Graph::FromEdges(num_vertices, std::move(edges));
  STL_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

Graph GeneratePath(uint32_t num_vertices, Weight weight) {
  STL_CHECK(num_vertices >= 1);
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < num_vertices; ++v) {
    edges.push_back(Edge{v, v + 1, weight});
  }
  Result<Graph> g = Graph::FromEdges(num_vertices, std::move(edges));
  STL_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

}  // namespace stl
