#include "core/label_search.h"

#include <algorithm>

namespace stl {

LabelSearch::LabelSearch(Graph* g, const TreeHierarchy& h, Labelling* labels)
    : g_(g),
      h_(h),
      labels_(labels),
      aff_stamp_(g->NumVertices(), 0),
      visit_stamp_(g->NumVertices(), 0) {
  STL_CHECK_EQ(g->NumVertices(), h.NumVertices());
}

std::pair<Vertex, Vertex> LabelSearch::OrientedEndpoints(EdgeId e) const {
  const Edge& edge = g_->GetEdge(e);
  Vertex a = edge.u, b = edge.v;
  if (h_.Tau(a) > h_.Tau(b)) std::swap(a, b);
  STL_DCHECK(h_.Tau(a) != h_.Tau(b)) << "edge endpoints must be comparable";
  return {a, b};
}

void LabelSearch::ApplyDecreaseBatch(const UpdateBatch& batch) {
  if (batch.empty()) return;
  // Apply new weights first: searches relax with the decreased weights.
  for (const WeightUpdate& u : batch) {
    STL_CHECK(u.new_weight < g_->EdgeWeight(u.edge))
        << "decrease batch contains a non-decrease";
    g_->SetEdgeWeight(u.edge, u.new_weight);
  }
  uint32_t rmax = 0;
  for (const WeightUpdate& u : batch) {
    auto [a, b] = OrientedEndpoints(u.edge);
    rmax = std::max(rmax, h_.Tau(a));
  }
  // One search per ancestor column (Algorithm 1 lines 2-7 seed, 8-14 run).
  for (uint32_t r = 0; r <= rmax; ++r) {
    heap_.clear();
    for (const WeightUpdate& u : batch) {
      auto [a, b] = OrientedEndpoints(u.edge);
      if (h_.Tau(a) < r) continue;
      const Weight la = labels_->At(a, r);
      const Weight lb = labels_->At(b, r);
      const Weight w = u.new_weight;
      if (SaturatingAdd(la, w) < lb) {
        heap_.Push(SaturatingAdd(la, w), b);
      } else if (SaturatingAdd(lb, w) < la) {
        heap_.Push(SaturatingAdd(lb, w), a);
      }
    }
    if (!heap_.empty()) RunDecreaseColumn(r);
  }
}

void LabelSearch::RunDecreaseColumn(uint32_t r) {
  while (!heap_.empty()) {
    auto [d, v] = heap_.Pop();
    ++stats_.queue_pops;
    if (d >= labels_->At(v, r)) continue;  // stale or not an improvement
    labels_->Set(v, r, d);
    ++stats_.label_writes;
    ++stats_.affected_pairs;
    for (const Arc& a : g_->ArcsOf(v)) {
      if (h_.Tau(a.head) <= r) continue;  // stay inside Desc(r)
      Weight nd = SaturatingAdd(d, a.weight);
      if (nd < labels_->At(a.head, r)) heap_.Push(nd, a.head);
    }
  }
}

void LabelSearch::ApplyIncreaseBatch(const UpdateBatch& batch) {
  if (batch.empty()) return;
  uint32_t rmax = 0;
  for (const WeightUpdate& u : batch) {
    STL_CHECK(u.new_weight > g_->EdgeWeight(u.edge))
        << "increase batch contains a non-increase";
    STL_CHECK_EQ(u.old_weight, g_->EdgeWeight(u.edge));
    auto [a, b] = OrientedEndpoints(u.edge);
    rmax = std::max(rmax, h_.Tau(a));
  }
  // Phase 1: detection against old weights (Algorithm 2 lines 2-14).
  std::vector<std::vector<Vertex>> affected(rmax + 1);
  for (uint32_t r = 0; r <= rmax; ++r) {
    heap_.clear();
    for (const WeightUpdate& u : batch) {
      auto [a, b] = OrientedEndpoints(u.edge);
      if (h_.Tau(a) < r) continue;
      const Weight la = labels_->At(a, r);
      const Weight lb = labels_->At(b, r);
      const Weight w = u.old_weight;
      if (la < kInfDistance && SaturatingAdd(la, w) == lb) {
        heap_.Push(lb, b);
      }
      if (lb < kInfDistance && SaturatingAdd(lb, w) == la) {
        heap_.Push(la, a);
      }
    }
    if (!heap_.empty()) RunDetectColumn(r, &affected[r]);
  }
  // Phase 2: apply the new weights.
  for (const WeightUpdate& u : batch) {
    g_->SetEdgeWeight(u.edge, u.new_weight);
  }
  // Phase 3: repair each column (Algorithm 2 Repair).
  for (uint32_t r = 0; r <= rmax; ++r) {
    if (!affected[r].empty()) RepairColumn(r, affected[r]);
  }
}

void LabelSearch::RunDetectColumn(uint32_t r, std::vector<Vertex>* affected) {
  ++visit_epoch_;
  while (!heap_.empty()) {
    auto [d, v] = heap_.Pop();
    ++stats_.queue_pops;
    if (visit_stamp_[v] == visit_epoch_) continue;
    visit_stamp_[v] = visit_epoch_;
    affected->push_back(v);
    ++stats_.affected_pairs;
    for (const Arc& a : g_->ArcsOf(v)) {
      if (h_.Tau(a.head) <= r) continue;
      if (visit_stamp_[a.head] == visit_epoch_) continue;
      Weight nd = SaturatingAdd(d, a.weight);
      // Old shortest path to the ancestor extends through this neighbour.
      if (nd < kInfDistance && nd == labels_->At(a.head, r)) {
        heap_.Push(nd, a.head);
      }
    }
  }
}

void LabelSearch::RepairColumn(uint32_t r,
                               const std::vector<Vertex>& affected) {
  ++aff_epoch_;
  for (Vertex v : affected) aff_stamp_[v] = aff_epoch_;
  for (Vertex v : affected) {
    labels_->Set(v, r, kInfDistance);
    ++stats_.label_writes;
  }
  heap_.clear();
  // Distance bounds from unaffected neighbours (Definition 5.4). The
  // ancestor r itself participates (tau == r, label entry 0): an affected
  // vertex whose new shortest path is the direct edge from r gets its
  // bound from exactly that arc.
  for (Vertex v : affected) {
    Weight bound = kInfDistance;
    for (const Arc& a : g_->ArcsOf(v)) {
      if (h_.Tau(a.head) < r) continue;
      if (aff_stamp_[a.head] == aff_epoch_) continue;
      bound = std::min(bound, SaturatingAdd(labels_->At(a.head, r), a.weight));
    }
    if (bound < kInfDistance) heap_.Push(bound, v);
  }
  // Dijkstra over the affected region (Lemma 5.5 settles min bound first).
  while (!heap_.empty()) {
    auto [d, v] = heap_.Pop();
    ++stats_.queue_pops;
    if (d >= labels_->At(v, r)) continue;
    labels_->Set(v, r, d);
    ++stats_.label_writes;
    for (const Arc& a : g_->ArcsOf(v)) {
      if (h_.Tau(a.head) <= r) continue;
      Weight nd = SaturatingAdd(d, a.weight);
      if (nd < labels_->At(a.head, r)) heap_.Push(nd, a.head);
    }
  }
}

void LabelSearch::ApplyBatch(const UpdateBatch& batch) {
  auto [dec, inc] = SplitByDirection(batch);
  ApplyDecreaseBatch(dec);
  ApplyIncreaseBatch(inc);
}

}  // namespace stl
