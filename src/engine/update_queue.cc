#include "engine/update_queue.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

namespace stl {

void UpdateQueue::Enqueue(EdgeId edge, Weight new_weight) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(PendingUpdate{edge, new_weight});
    ++enqueue_seq_;
  }
  work_cv_.notify_one();
}

void UpdateQueue::EnqueueMany(const std::vector<WeightUpdate>& updates) {
  if (updates.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const WeightUpdate& u : updates) {
      pending_.push_back(PendingUpdate{u.edge, u.new_weight});
    }
    enqueue_seq_ += updates.size();
  }
  work_cv_.notify_one();
}

void UpdateQueue::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = enqueue_seq_;
  flush_cv_.wait(lock, [this, target] { return applied_seq_ >= target; });
}

uint64_t UpdateQueue::enqueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueue_seq_;
}

uint64_t UpdateQueue::applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_seq_;
}

uint64_t UpdateQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueue_seq_ - applied_seq_;
}

void UpdateQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
}

void UpdateQueue::RunWriter(
    size_t max_batch, const std::function<Weight(EdgeId)>& resolve_old,
    const std::function<void(const UpdateBatch&)>& apply,
    std::atomic<uint64_t>* coalesced_total, FaultInjector* faults) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return !pending_.empty() || stop_; });
    if (pending_.empty()) return;  // stop requested and fully drained
    const size_t take = std::min(max_batch, pending_.size());
    std::vector<PendingUpdate> taken(pending_.begin(),
                                     pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    lock.unlock();

    // Stall site: the slice is taken (so it counts as backlog for the
    // watchdog) but not yet applied. Stalling here is exactly the
    // failure the epoch-age watchdog is built to detect.
    if (faults != nullptr && faults->Fire(FaultSite::kWriterStall)) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          faults->DelayMicros(FaultSite::kWriterStall)));
    }

    // Coalesce to one update per edge (ApplyBatch requires distinct
    // edges): later enqueues win, matching apply-one-at-a-time order.
    // The old weight comes from resolve_old — the caller's master
    // state, the only authority on current weights.
    UpdateBatch batch;
    batch.reserve(taken.size());
    std::unordered_map<EdgeId, size_t> slot_of_edge;
    uint64_t coalesced = 0;
    for (const PendingUpdate& p : taken) {
      auto [it, inserted] = slot_of_edge.try_emplace(p.edge, batch.size());
      if (!inserted) {
        batch[it->second].new_weight = p.new_weight;
        ++coalesced;
        continue;
      }
      batch.push_back(
          WeightUpdate{p.edge, resolve_old(p.edge), p.new_weight});
    }
    std::erase_if(batch, [&coalesced](const WeightUpdate& u) {
      const bool noop = u.old_weight == u.new_weight;
      coalesced += noop;
      return noop;
    });

    if (!batch.empty()) apply(batch);
    coalesced_total->fetch_add(coalesced, std::memory_order_relaxed);

    lock.lock();
    applied_seq_ += take;
    flush_cv_.notify_all();
  }
}

}  // namespace stl
