// Wall-clock timing helpers for benchmarks and construction statistics.
#ifndef STL_UTIL_TIMER_H_
#define STL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace stl {

/// Monotonic stopwatch. Started on construction; Restart() resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stl

#endif  // STL_UTIL_TIMER_H_
