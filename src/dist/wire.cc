#include "dist/wire.h"

namespace stl {

Status PeekWireKind(const uint8_t* data, size_t size, WireKind* out) {
  WireReader r(data, size);
  Status s = r.ReadHeader(kWireMagic, kWireVersion);
  if (!s.ok()) return s;
  uint32_t kind = 0;
  if (!(s = r.ReadPod(&kind)).ok()) return s;
  if (kind != static_cast<uint32_t>(WireKind::kBoundaryRow) &&
      kind != static_cast<uint32_t>(WireKind::kPointQuery) &&
      kind != static_cast<uint32_t>(WireKind::kInstall)) {
    return Status::Corruption("wire: unknown request kind");
  }
  *out = static_cast<WireKind>(kind);
  return Status::OK();
}

std::vector<uint8_t> ShardRequest::Encode() const {
  WireWriter w(kWireMagic, kWireVersion);
  w.WritePod(static_cast<uint32_t>(kind));
  w.WritePod(shard);
  w.WritePod(shard_epoch);
  w.WritePod(u);
  w.WritePod(v);
  return w.Take();
}

Status ShardRequest::Decode(const uint8_t* data, size_t size,
                            ShardRequest* out) {
  WireReader r(data, size);
  Status s = r.ReadHeader(kWireMagic, kWireVersion);
  if (!s.ok()) return s;
  uint32_t kind = 0;
  if (!(s = r.ReadPod(&kind)).ok()) return s;
  if (kind != static_cast<uint32_t>(WireKind::kBoundaryRow) &&
      kind != static_cast<uint32_t>(WireKind::kPointQuery)) {
    return Status::Corruption("wire: unknown request kind");
  }
  out->kind = static_cast<WireKind>(kind);
  if (!(s = r.ReadPod(&out->shard)).ok()) return s;
  if (!(s = r.ReadPod(&out->shard_epoch)).ok()) return s;
  if (!(s = r.ReadPod(&out->u)).ok()) return s;
  if (!(s = r.ReadPod(&out->v)).ok()) return s;
  if (r.remaining() != 0) {
    return Status::Corruption("wire: trailing bytes after request");
  }
  return Status::OK();
}

std::vector<uint8_t> ShardResponse::Encode() const {
  WireWriter w(kWireMagic, kWireVersion);
  w.WritePod(static_cast<uint32_t>(code));
  w.WritePod(shard);
  w.WritePod(shard_epoch);
  w.WritePod(distance);
  w.WriteVector(row);
  return w.Take();
}

Status ShardResponse::Decode(const uint8_t* data, size_t size,
                             ShardResponse* out) {
  WireReader r(data, size);
  Status s = r.ReadHeader(kWireMagic, kWireVersion);
  if (!s.ok()) return s;
  uint32_t code = 0;
  if (!(s = r.ReadPod(&code)).ok()) return s;
  if (code != static_cast<uint32_t>(StatusCode::kOk) &&
      code != static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("wire: unexpected response code");
  }
  out->code = static_cast<StatusCode>(code);
  if (!(s = r.ReadPod(&out->shard)).ok()) return s;
  if (!(s = r.ReadPod(&out->shard_epoch)).ok()) return s;
  if (!(s = r.ReadPod(&out->distance)).ok()) return s;
  if (!(s = r.ReadVector(&out->row)).ok()) return s;
  if (r.remaining() != 0) {
    return Status::Corruption("wire: trailing bytes after response");
  }
  return Status::OK();
}

std::vector<uint8_t> InstallRequest::Encode() const {
  WireWriter w(kWireMagic, kWireVersion);
  w.WritePod(static_cast<uint32_t>(WireKind::kInstall));
  w.WritePod(seq);
  w.WritePod(expected_engine_epoch);
  w.WriteVector(expected_shard_epochs);
  w.WriteVector(updates);  // WeightUpdate is a padding-free POD triple
  return w.Take();
}

Status InstallRequest::Decode(const uint8_t* data, size_t size,
                              InstallRequest* out) {
  WireReader r(data, size);
  Status s = r.ReadHeader(kWireMagic, kWireVersion);
  if (!s.ok()) return s;
  uint32_t kind = 0;
  if (!(s = r.ReadPod(&kind)).ok()) return s;
  if (kind != static_cast<uint32_t>(WireKind::kInstall)) {
    return Status::Corruption("wire: not an install request");
  }
  if (!(s = r.ReadPod(&out->seq)).ok()) return s;
  if (!(s = r.ReadPod(&out->expected_engine_epoch)).ok()) return s;
  if (!(s = r.ReadVector(&out->expected_shard_epochs)).ok()) return s;
  if (!(s = r.ReadVector(&out->updates)).ok()) return s;
  if (r.remaining() != 0) {
    return Status::Corruption("wire: trailing bytes after install");
  }
  return Status::OK();
}

std::vector<uint8_t> InstallAck::Encode() const {
  WireWriter w(kWireMagic, kWireVersion);
  w.WritePod(static_cast<uint32_t>(ok ? 1 : 0));
  w.WritePod(next_seq);
  w.WritePod(engine_epoch);
  return w.Take();
}

Status InstallAck::Decode(const uint8_t* data, size_t size,
                          InstallAck* out) {
  WireReader r(data, size);
  Status s = r.ReadHeader(kWireMagic, kWireVersion);
  if (!s.ok()) return s;
  uint32_t ok_flag = 0;
  if (!(s = r.ReadPod(&ok_flag)).ok()) return s;
  if (ok_flag > 1) return Status::Corruption("wire: bad install ack flag");
  out->ok = ok_flag == 1;
  if (!(s = r.ReadPod(&out->next_seq)).ok()) return s;
  if (!(s = r.ReadPod(&out->engine_epoch)).ok()) return s;
  if (r.remaining() != 0) {
    return Status::Corruption("wire: trailing bytes after install ack");
  }
  return Status::OK();
}

}  // namespace stl
