// Ablation studies for the design choices DESIGN.md calls out:
//
//  1. Balance threshold beta (Definition 4.1): smaller beta permits more
//     skewed cuts (deeper trees, potentially smaller separators); the
//     paper fixes beta = 0.2 — this sweep shows why the choice is benign.
//  2. Separator multi-start count: how much the BFS-halving heuristic
//     gains from extra attempts.
//  3. Maintenance engine work counters: queue pops / label writes per
//     update for Pareto vs Label Search — the mechanism behind Table 3
//     (Pareto merges per-ancestor searches into two traversals).
#include "bench/bench_common.h"
#include "core/stl_index.h"
#include "util/table.h"
#include "workload/update_workload.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Ablations — beta, multi-start, search work", cfg);
  const auto& spec = cfg.datasets.back();

  {
    std::printf("(%s) beta sweep\n", spec.name.c_str());
    TablePrinter table({"beta", "depth", "height", "entries", "build [s]",
                        "query [us]"});
    for (double beta : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      Graph g = LoadDataset(spec);
      HierarchyOptions opt;
      opt.beta = beta;
      StlIndex idx = StlIndex::Build(&g, opt);
      auto pairs = RandomQueryPairs(g, 50000, 99);
      double us = bench::TimeQueriesMicros(
          pairs, [&](Vertex s, Vertex t) { return idx.Query(s, t); });
      table.AddRow({TablePrinter::Fixed(beta, 2),
                    std::to_string(idx.hierarchy().Depth()),
                    std::to_string(idx.hierarchy().MaxLabelSize()),
                    TablePrinter::Count(idx.hierarchy().TotalLabelEntries()),
                    TablePrinter::Fixed(idx.build_info().total_seconds, 2),
                    TablePrinter::Fixed(us, 3)});
    }
    table.Print();
  }

  {
    std::printf("\n(%s) separator multi-start sweep\n", spec.name.c_str());
    TablePrinter table({"starts", "height", "entries", "build [s]"});
    for (int starts : {1, 2, 3, 5, 8}) {
      Graph g = LoadDataset(spec);
      HierarchyOptions opt;
      opt.num_starts = starts;
      StlIndex idx = StlIndex::Build(&g, opt);
      table.AddRow({std::to_string(starts),
                    std::to_string(idx.hierarchy().MaxLabelSize()),
                    TablePrinter::Count(idx.hierarchy().TotalLabelEntries()),
                    TablePrinter::Fixed(idx.build_info().total_seconds, 2)});
    }
    table.Print();
  }

  {
    std::printf("\n(%s) maintenance work per update (x2 then restore)\n",
                spec.name.c_str());
    TablePrinter table(
        {"engine", "pops/upd", "writes/upd", "ms/upd"});
    auto edges = SampleDistinctEdges(LoadDataset(spec), cfg.batch_size,
                                     spec.seed * 7);
    for (auto strat : {MaintenanceStrategy::kParetoSearch,
                       MaintenanceStrategy::kLabelSearch}) {
      Graph g = LoadDataset(spec);
      StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
      UpdateBatch inc = MakeIncreaseBatch(g, edges, 2.0);
      UpdateBatch dec = MakeRestoreBatch(inc);
      Timer t;
      idx.ApplyBatch(inc, strat);
      idx.ApplyBatch(dec, strat);
      double ms = t.ElapsedMillis() / (2.0 * inc.size());
      MaintenanceStats st = idx.MaintenanceStatsTotal();
      table.AddRow(
          {strat == MaintenanceStrategy::kParetoSearch ? "STL-P" : "STL-L",
           TablePrinter::Fixed(
               static_cast<double>(st.queue_pops) / (2.0 * inc.size()), 1),
           TablePrinter::Fixed(
               static_cast<double>(st.label_writes) / (2.0 * inc.size()), 1),
           TablePrinter::Fixed(ms, 3)});
    }
    table.Print();
  }
  return 0;
}
