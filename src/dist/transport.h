// The pluggable transport under the replicated shard-router tier: an
// async request/response surface keyed by an opaque caller tag, the
// same delivery discipline as the engines' CompletionQueue (submit
// with a tag, the answer comes back through a sink exactly once per
// attempt). The router (dist/shard_router.h) is written against this
// interface only; LoopbackTransport (in-process, deterministic,
// fault-injectable) backs tests/bench/CI, and SocketTransport
// (dist/socket_transport.h) is the over-the-wire skeleton.
#ifndef STL_DIST_TRANSPORT_H_
#define STL_DIST_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace stl {

/// Where transport responses land. OnResponse is invoked once per
/// Send() attempt under normal operation — from any thread, possibly
/// inline inside Send — with the caller's tag; a faulty transport may
/// deliver the same tag twice (duplicated response) and the receiver
/// must absorb it (the router's one-shot tag claim does). Must be
/// thread-safe.
class TransportSink {
 public:
  virtual ~TransportSink() = default;  ///< Sinks are caller-owned.

  /// One response. `transport_status` is OK when `payload` carries the
  /// endpoint's encoded reply; a failed status (kUnavailable) means the
  /// request or its response was lost and `payload` is empty.
  virtual void OnResponse(uint64_t tag, Status transport_status,
                          std::vector<uint8_t> payload) = 0;
};

/// The transport surface the router fans requests out through.
/// Implementations must be thread-safe: reader-pool threads Send
/// concurrently.
class Transport {
 public:
  virtual ~Transport() = default;  ///< Transports are caller-owned.

  /// Number of reachable endpoints; Send's `endpoint` must be below
  /// this.
  virtual uint32_t NumEndpoints() const = 0;

  /// Sends `request` to `endpoint`; the response (or a typed transport
  /// failure) is delivered to `sink->OnResponse(tag, ...)`, possibly
  /// inline before Send returns. `tag` is opaque to the transport and
  /// echoed verbatim. `sink` must stay valid until the tag has been
  /// delivered. The request rides a shared buffer so a caller retrying
  /// across sibling endpoints encodes once and every attempt (and any
  /// queued/in-flight copy inside an async transport) aliases the same
  /// bytes; `request` must be non-null and is never mutated.
  virtual void Send(uint32_t endpoint, uint64_t tag,
                    std::shared_ptr<const std::vector<uint8_t>> request,
                    TransportSink* sink) = 0;
};

}  // namespace stl

#endif  // STL_DIST_TRANSPORT_H_
