// The listening half of the network layer: a FrameServer owns one
// EventLoop, accepts TCP connections, reassembles request frames via
// Conn, and hands each (tag, payload) to a caller-supplied Handler —
// the same bytes-in/bytes-out shape LoopbackTransport dispatches to,
// so a ShardReplica (or ReplicaNode) serves over real sockets and over
// loopback through one code path. Responses are written back on the
// same connection under the request's tag.
//
// With worker_threads > 0 the handler runs on a small pool and the
// response is posted back to the loop, keeping the loop thread free
// for I/O; with 0 the handler runs inline on the loop thread (fine for
// tests and the cheap row/point handlers).
#ifndef STL_NET_SERVER_H_
#define STL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/fault_injector.h"
#include "engine/thread_pool.h"
#include "net/conn.h"
#include "net/event_loop.h"
#include "util/status.h"

namespace stl {

/// Accepts framed TCP connections and dispatches request frames to a
/// Handler (see file comment).
class FrameServer {
 public:
  /// Request dispatch: encoded request bytes in, encoded response
  /// bytes out. Must be thread-safe when worker_threads > 0.
  using Handler = std::function<std::vector<uint8_t>(const uint8_t*, size_t)>;

  /// Listener configuration.
  struct Options {
    std::string host = "127.0.0.1";  ///< Bind address (numeric IPv4).
    uint16_t port = 0;               ///< 0 = kernel-assigned ephemeral port.
    int worker_threads = 0;  ///< Handler offload pool size (0 = inline).
    FaultInjector* faults = nullptr;  ///< Optional; armed conns inject
                                      ///< kSocketShortIo on accepted
                                      ///< connections too.
  };

  /// An inert server; Start() binds and begins accepting.
  FrameServer(Options options, Handler handler);

  /// Stops (idempotent with Stop()).
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;             ///< Not copyable.
  FrameServer& operator=(const FrameServer&) = delete;  ///< Not copyable.

  /// Binds, listens and starts the accept loop. Returns kIOError on
  /// bind/listen failure (e.g. port in use). Call exactly once.
  Status Start();

  /// Drains handler workers, closes every connection and the listener,
  /// and joins the loop thread. Idempotent.
  void Stop();

  /// The bound port (the kernel-assigned one when Options::port == 0).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void OnAcceptReady();
  void AdoptClient(int fd);
  void HandleFrame(const std::shared_ptr<Conn>& conn, WireFrame frame);

  Options options_;
  Handler handler_;
  std::unique_ptr<ThreadPool> workers_;  // null when worker_threads == 0
  EventLoop loop_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  // Loop-thread state: live connections keyed by identity (the close
  // callback erases its own entry).
  std::map<const Conn*, std::shared_ptr<Conn>> conns_;

  std::atomic<uint64_t> connections_accepted_{0};
};

}  // namespace stl

#endif  // STL_NET_SERVER_H_
