#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace stl {

QueryEngine::QueryEngine(Graph graph,
                         const HierarchyOptions& hierarchy_options,
                         const EngineOptions& options)
    : options_(options), pool_(options.num_query_threads) {
  STL_CHECK_GE(options_.max_batch_size, size_t{1});
  graph_ = std::make_unique<Graph>(std::move(graph));
  index_ = MakeDistanceIndex(options_.backend, graph_.get(),
                             hierarchy_options);
  capabilities_ = index_->capabilities();
  // Epoch 0's baseline: graph chunk clones before the first publish
  // (e.g. from the build itself) are not publish cost.
  harvested_graph_chunks_ = graph_->cow_stats().chunks_cloned;
  harvested_graph_bytes_ = graph_->cow_stats().bytes_cloned;
  PublishSnapshot(0);
  writer_ = std::thread([this] { WriterLoop(); });
  // Start the throughput clock after the (potentially long) index
  // build, so Stats() reports serving throughput, not build dilution.
  wall_.Restart();
}

QueryEngine::~QueryEngine() {
  pool_.Shutdown();  // answer every query already submitted
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    stop_writer_ = true;
  }
  update_cv_.notify_all();
  if (writer_.joinable()) writer_.join();  // drains pending updates
}

std::future<QueryResult> QueryEngine::Submit(QueryPair query) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> result = promise->get_future();
  const auto submitted = std::chrono::steady_clock::now();
  const bool accepted =
      pool_.Enqueue([this, query, promise = std::move(promise), submitted] {
        // The entire read path: one atomic load, then const reads on an
        // immutable snapshot. Never blocks on maintenance work.
        std::shared_ptr<const EngineSnapshot> snap = current_.load();
        QueryResult r;
        r.distance = snap->Query(query.first, query.second);
        r.epoch = snap->epoch;
        const uint64_t nanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - submitted)
                .count());
        r.latency_micros = static_cast<double>(nanos) / 1e3;
        r.snapshot = std::move(snap);
        latency_.Record(nanos);
        queries_served_.fetch_add(1, std::memory_order_relaxed);
        promise->set_value(std::move(r));
      });
  STL_CHECK(accepted) << "Submit() on a shut-down engine";
  return result;
}

std::vector<std::future<QueryResult>> QueryEngine::SubmitBatch(
    const std::vector<QueryPair>& queries) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const QueryPair& q : queries) futures.push_back(Submit(q));
  return futures;
}

void QueryEngine::EnqueueUpdate(const WeightUpdate& update) {
  EnqueueUpdate(update.edge, update.new_weight);
}

void QueryEngine::EnqueueUpdate(EdgeId edge, Weight new_weight) {
  STL_CHECK(edge < graph_->NumEdges());
  STL_CHECK(new_weight >= 1 && new_weight <= kMaxEdgeWeight);
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    pending_.push_back(PendingUpdate{edge, new_weight});
    ++enqueue_seq_;
  }
  update_cv_.notify_one();
}

void QueryEngine::EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
  if (updates.empty()) return;
  for (const WeightUpdate& u : updates) {
    STL_CHECK(u.edge < graph_->NumEdges());
    STL_CHECK(u.new_weight >= 1 && u.new_weight <= kMaxEdgeWeight);
  }
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    for (const WeightUpdate& u : updates) {
      pending_.push_back(PendingUpdate{u.edge, u.new_weight});
    }
    enqueue_seq_ += updates.size();
  }
  update_cv_.notify_one();
}

void QueryEngine::Flush() {
  std::unique_lock<std::mutex> lock(update_mu_);
  const uint64_t target = enqueue_seq_;
  flush_cv_.wait(lock,
                 [this, target] { return applied_seq_ >= target; });
}

void QueryEngine::WriterLoop() {
  std::unique_lock<std::mutex> lock(update_mu_);
  while (true) {
    update_cv_.wait(
        lock, [this] { return !pending_.empty() || stop_writer_; });
    if (pending_.empty()) return;  // stop requested and fully drained
    const size_t take = std::min(options_.max_batch_size, pending_.size());
    std::vector<PendingUpdate> taken(pending_.begin(),
                                     pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    lock.unlock();

    // Coalesce to one update per edge (ApplyBatch requires distinct
    // edges): later enqueues win, matching apply-one-at-a-time order.
    // The old weight is re-resolved from the master graph, the only
    // authority on current weights.
    UpdateBatch batch;
    batch.reserve(taken.size());
    std::unordered_map<EdgeId, size_t> slot_of_edge;
    uint64_t coalesced = 0;
    for (const PendingUpdate& p : taken) {
      auto [it, inserted] = slot_of_edge.try_emplace(p.edge, batch.size());
      if (!inserted) {
        batch[it->second].new_weight = p.new_weight;
        ++coalesced;
        continue;
      }
      batch.push_back(
          WeightUpdate{p.edge, graph_->EdgeWeight(p.edge), p.new_weight});
    }
    std::erase_if(batch, [&coalesced](const WeightUpdate& u) {
      const bool noop = u.old_weight == u.new_weight;
      coalesced += noop;
      return noop;
    });

    if (!batch.empty()) {
      // The per-batch STL-P/STL-L choice; backends with a single
      // maintenance scheme (or none) ignore it.
      MaintenanceStrategy strategy = MaintenanceStrategy::kParetoSearch;
      switch (options_.strategy) {
        case StrategyMode::kAlwaysParetoSearch:
          break;
        case StrategyMode::kAlwaysLabelSearch:
          strategy = MaintenanceStrategy::kLabelSearch;
          break;
        case StrategyMode::kAuto:
          if (batch.size() >= options_.auto_label_search_threshold) {
            strategy = MaintenanceStrategy::kLabelSearch;
          }
          break;
      }
      const BatchExecution executed = index_->ApplyBatch(batch, strategy);
      switch (executed) {
        case BatchExecution::kParetoSearch:
          batches_pareto_.fetch_add(1, std::memory_order_relaxed);
          break;
        case BatchExecution::kLabelSearch:
          batches_label_.fetch_add(1, std::memory_order_relaxed);
          break;
        case BatchExecution::kIncremental:
          batches_incremental_.fetch_add(1, std::memory_order_relaxed);
          break;
        case BatchExecution::kFullRebuild:
          batches_rebuild_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      updates_applied_.fetch_add(batch.size(), std::memory_order_relaxed);
      const uint64_t epoch =
          epochs_published_.fetch_add(1, std::memory_order_relaxed) + 1;
      PublishSnapshot(epoch);
    }
    updates_coalesced_.fetch_add(coalesced, std::memory_order_relaxed);

    lock.lock();
    applied_seq_ += take;
    flush_cv_.notify_all();
  }
}

void QueryEngine::PublishSnapshot(uint64_t epoch) {
  Timer publish_timer;
  auto snap = std::make_shared<EngineSnapshot>();
  snap->epoch = epoch;
  PublishInfo info;
  snap->view = index_->PublishView(options_.flat_publish, &info);
  // Harvest the graph-side CoW clone counters accumulated since the last
  // publish; together with the backend's label-side report they are the
  // real byte cost of isolating the previous epoch from this one.
  const CowChunkStats gc = graph_->cow_stats();
  snap->label_pages_cloned = info.label_pages_cloned;
  snap->cow_bytes_cloned =
      info.label_bytes_cloned + (gc.bytes_cloned - harvested_graph_bytes_);
  label_pages_cloned_.fetch_add(info.label_pages_cloned,
                                std::memory_order_relaxed);
  graph_chunks_cloned_.fetch_add(gc.chunks_cloned - harvested_graph_chunks_,
                                 std::memory_order_relaxed);
  cow_bytes_cloned_.fetch_add(snap->cow_bytes_cloned,
                              std::memory_order_relaxed);
  harvested_graph_chunks_ = gc.chunks_cloned;
  harvested_graph_bytes_ = gc.bytes_cloned;

  if (options_.flat_publish) {
    // Baseline: the pre-CoW deep copy, O(graph weights) per epoch. Count
    // only the payload bytes DeepCopy physically copies (shared
    // topology/layout and pointer tables are excluded).
    snap->graph = graph_->DeepCopy();
    info.deep_bytes_copied += snap->graph.CowPayloadBytes();
  } else {
    // Structural share: O(chunks) pointer copies + refcount bumps, zero
    // entry copies. Untouched chunks stay physically shared with every
    // older epoch still alive.
    snap->graph = *graph_;
  }
  publish_bytes_deep_copied_.fetch_add(info.deep_bytes_copied,
                                       std::memory_order_relaxed);
  publish_nanos_.fetch_add(publish_timer.ElapsedNanos(),
                           std::memory_order_relaxed);
  current_.store(std::move(snap));
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.backend = options_.backend;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    s.updates_enqueued = enqueue_seq_;
  }
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.updates_coalesced = updates_coalesced_.load(std::memory_order_relaxed);
  s.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  s.batches_pareto = batches_pareto_.load(std::memory_order_relaxed);
  s.batches_label = batches_label_.load(std::memory_order_relaxed);
  s.batches_incremental =
      batches_incremental_.load(std::memory_order_relaxed);
  s.batches_rebuild = batches_rebuild_.load(std::memory_order_relaxed);
  s.label_pages_cloned =
      label_pages_cloned_.load(std::memory_order_relaxed);
  s.graph_chunks_cloned =
      graph_chunks_cloned_.load(std::memory_order_relaxed);
  s.cow_bytes_cloned = cow_bytes_cloned_.load(std::memory_order_relaxed);
  s.publish_bytes_deep_copied =
      publish_bytes_deep_copied_.load(std::memory_order_relaxed);
  s.publish_total_micros =
      static_cast<double>(publish_nanos_.load(std::memory_order_relaxed)) /
      1e3;
  {
    // Honest resident memory of the serving state, wait-free: the
    // current snapshot is immutable (for CoW backends, a structural copy
    // of the master as of its publish — they share every page the batch
    // did not dirty), so walking the snapshot counts each physical
    // page/chunk exactly once without touching — or locking against —
    // the writer. Pages the writer cloned since that publish appear at
    // the next publish.
    std::shared_ptr<const EngineSnapshot> snap = CurrentSnapshot();
    std::unordered_set<const void*> seen;
    uint64_t bytes = snap->view->AddResidentBytes(&seen);
    bytes += snap->graph.AddResidentBytes(&seen);
    s.resident_index_bytes = bytes;
  }
  s.wall_seconds = wall_.ElapsedSeconds();
  s.queries_per_second =
      s.wall_seconds > 0
          ? static_cast<double>(s.queries_served) / s.wall_seconds
          : 0;
  s.latency_mean_micros = latency_.MeanMicros();
  s.latency_p50_micros = latency_.QuantileMicros(0.5);
  s.latency_p99_micros = latency_.QuantileMicros(0.99);
  s.latency_max_micros = latency_.MaxMicros();
  return s;
}

void QueryEngine::ResetStats() {
  queries_served_.store(0, std::memory_order_relaxed);
  updates_applied_.store(0, std::memory_order_relaxed);
  updates_coalesced_.store(0, std::memory_order_relaxed);
  // epochs_published_ is deliberately not reset: it doubles as the epoch
  // id allocator, and snapshot epochs must stay unique for the lifetime
  // of the engine.
  batches_pareto_.store(0, std::memory_order_relaxed);
  batches_label_.store(0, std::memory_order_relaxed);
  batches_incremental_.store(0, std::memory_order_relaxed);
  batches_rebuild_.store(0, std::memory_order_relaxed);
  label_pages_cloned_.store(0, std::memory_order_relaxed);
  graph_chunks_cloned_.store(0, std::memory_order_relaxed);
  cow_bytes_cloned_.store(0, std::memory_order_relaxed);
  publish_bytes_deep_copied_.store(0, std::memory_order_relaxed);
  publish_nanos_.store(0, std::memory_order_relaxed);
  latency_.Reset();
  wall_.Restart();
}

}  // namespace stl
