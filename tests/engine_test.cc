#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "engine/latency_histogram.h"
#include "engine/thread_pool.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Enqueue([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // One worker, a slow head-of-line task, and a burst behind it: Shutdown
  // must run every queued task before joining, not drop the backlog.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Enqueue([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Enqueue([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, EnqueueAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> ran{0};
  EXPECT_FALSE(pool.Enqueue([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 0);
  pool.Shutdown();  // idempotent
}

// ----------------------------------------------------------- histogram

TEST(LatencyHistogramTest, BucketBoundsAreMonotoneAndConsistent) {
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), b) << "bucket " << b;
    if (b > 0) {
      EXPECT_GT(lo, LatencyHistogram::BucketLowerBound(b - 1));
    }
  }
}

TEST(LatencyHistogramTest, QuantilesMeanAndMax) {
  LatencyHistogram h;
  // 100 samples: 1us, 2us, ..., 100us.
  for (uint64_t i = 1; i <= 100; ++i) h.Record(i * 1000);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_NEAR(h.MeanMicros(), 50.5, 0.01);
  EXPECT_NEAR(h.MaxMicros(), 100.0, 0.01);
  // Bucket resolution is ~6%, so allow 10% slack on quantiles.
  EXPECT_NEAR(h.QuantileMicros(0.5), 50.0, 5.0);
  EXPECT_NEAR(h.QuantileMicros(0.99), 99.0, 10.0);
  EXPECT_LE(h.QuantileMicros(0.5), h.QuantileMicros(0.99));
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.QuantileMicros(0.5), 0.0);
}

// -------------------------------------------------------------- engine

EngineOptions SmallEngineOptions() {
  EngineOptions opt;
  opt.num_query_threads = 4;
  opt.max_batch_size = 8;
  return opt;
}

TEST(QueryEngineTest, ServesQueriesOnInitialEpoch) {
  Graph g = testing_util::SmallRoadNetwork(8, 21);
  Graph ref = g;
  QueryEngine engine(std::move(g), HierarchyOptions{}, SmallEngineOptions());
  Dijkstra dij(ref);
  Rng rng(21);
  std::vector<QueryPair> queries;
  for (int i = 0; i < 100; ++i) {
    queries.emplace_back(
        static_cast<Vertex>(rng.NextBounded(ref.NumVertices())),
        static_cast<Vertex>(rng.NextBounded(ref.NumVertices())));
  }
  QueryEngine::Ticket ticket = engine.SubmitBatch(queries);
  ticket.Wait();
  ASSERT_TRUE(ticket.valid());
  EXPECT_EQ(ticket.size(), queries.size());
  EXPECT_EQ(ticket.epoch(), 0u);
  ASSERT_NE(ticket.snapshot(), nullptr);
  EXPECT_GE(ticket.latency_micros(), 0.0);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(ticket.distance(i),
              dij.Distance(queries[i].first, queries[i].second));
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_served, 100u);
  EXPECT_EQ(stats.query_batches_submitted, 1u);
  EXPECT_EQ(stats.batched_queries, 100u);
  EXPECT_EQ(stats.epochs_published, 0u);
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_LE(stats.latency_p50_micros, stats.latency_p99_micros);
  EXPECT_LE(stats.latency_p99_micros, stats.latency_max_micros + 0.01);
}

TEST(QueryEngineTest, FlushPublishesEnqueuedUpdates) {
  Graph g = testing_util::SmallRoadNetwork(8, 22);
  Graph ref = g;
  QueryEngine engine(std::move(g), HierarchyOptions{}, SmallEngineOptions());
  Rng rng(22);
  // Enqueue updates on distinct random edges, remembering the final
  // weight per edge.
  std::map<EdgeId, Weight> want_weight;
  for (int i = 0; i < 12; ++i) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(ref.NumEdges()));
    Weight w = 1 + static_cast<Weight>(rng.NextBounded(200));
    engine.EnqueueUpdate(e, w);
    want_weight[e] = w;
  }
  engine.Flush();
  auto snap = engine.CurrentSnapshot();
  EXPECT_GE(snap->epoch, 1u);
  for (const auto& [e, w] : want_weight) {
    EXPECT_EQ(snap->graph.EdgeWeight(e), w) << "edge " << e;
  }
  // Post-update queries are exact for the new weights.
  Dijkstra dij(snap->graph);
  for (int i = 0; i < 80; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    QueryResult r = engine.Submit({s, t}).get();
    ASSERT_EQ(r.distance, dij.Distance(s, t)) << "s=" << s << " t=" << t;
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.updates_enqueued, 12u);
  EXPECT_EQ(stats.updates_applied + stats.updates_coalesced, 12u);
  EXPECT_GE(stats.epochs_published, 1u);
}

TEST(QueryEngineTest, SnapshotsAreImmutableUnderLaterUpdates) {
  Graph g = testing_util::SmallRoadNetwork(8, 23);
  QueryEngine engine(std::move(g), HierarchyOptions{}, SmallEngineOptions());
  auto before = engine.CurrentSnapshot();
  Graph frozen = before->graph;  // weights at epoch 0
  // Change every sampled edge drastically.
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(frozen.NumEdges()));
    engine.EnqueueUpdate(e, 1 + static_cast<Weight>(rng.NextBounded(500)));
  }
  engine.Flush();
  ASSERT_GE(engine.CurrentEpoch(), 1u);
  // The old snapshot still answers exactly for the old weights.
  Dijkstra dij(frozen);
  for (int i = 0; i < 60; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(frozen.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(frozen.NumVertices()));
    ASSERT_EQ(before->Query(s, t), dij.Distance(s, t));
  }
  EXPECT_EQ(before->epoch, 0u);
}

TEST(QueryEngineTest, NoOpUpdatesDoNotPublishAnEpoch) {
  Graph g = testing_util::SmallRoadNetwork(6, 24);
  Weight w0 = g.EdgeWeight(0);
  QueryEngine engine(std::move(g), HierarchyOptions{}, SmallEngineOptions());
  engine.EnqueueUpdate(0, w0);  // weight unchanged
  engine.Flush();
  EngineStats stats = engine.Stats();
  EXPECT_EQ(engine.CurrentEpoch(), 0u);
  EXPECT_EQ(stats.updates_applied, 0u);
  EXPECT_EQ(stats.updates_coalesced, 1u);
  EXPECT_EQ(stats.epochs_published, 0u);
}

TEST(QueryEngineTest, StrategyModesDriveBatchCounters) {
  {
    Graph g = testing_util::SmallRoadNetwork(6, 25);
    EngineOptions opt = SmallEngineOptions();
    opt.strategy = StrategyMode::kAlwaysLabelSearch;
    Weight w0 = g.EdgeWeight(0);
    QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
    engine.EnqueueUpdate(0, w0 + 5);
    engine.Flush();
    EngineStats stats = engine.Stats();
    EXPECT_GE(stats.batches_label, 1u);
    EXPECT_EQ(stats.batches_pareto, 0u);
  }
  {
    Graph g = testing_util::SmallRoadNetwork(6, 26);
    EngineOptions opt = SmallEngineOptions();
    opt.strategy = StrategyMode::kAlwaysParetoSearch;
    Weight w0 = g.EdgeWeight(0);
    QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
    engine.EnqueueUpdate(0, w0 + 5);
    engine.Flush();
    EngineStats stats = engine.Stats();
    EXPECT_GE(stats.batches_pareto, 1u);
    EXPECT_EQ(stats.batches_label, 0u);
  }
}

// The headline test: N reader threads racing one writer; every answer
// must be exact for the epoch it was served from.
TEST(QueryEngineTest, ConcurrentReadersWithWriterMatchDijkstraPerEpoch) {
  Graph g = testing_util::SmallRoadNetwork(8, 27);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  EngineOptions opt;
  opt.num_query_threads = 4;
  opt.max_batch_size = 4;
  opt.strategy = StrategyMode::kAuto;
  opt.auto_label_search_threshold = 3;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  // Writer-side driver: dribble random updates so batches land between
  // query waves.
  std::atomic<bool> done{false};
  std::thread updater([&engine, m, &done] {
    Rng urng(127);
    for (int i = 0; i < 80; ++i) {
      EdgeId e = static_cast<EdgeId>(urng.NextBounded(m));
      engine.EnqueueUpdate(e, 1 + static_cast<Weight>(urng.NextBounded(300)));
      if (i % 8 == 7) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    done.store(true);
  });

  Rng qrng(128);
  std::vector<std::vector<QueryPair>> waves;
  std::vector<QueryEngine::Ticket> tickets;
  size_t total = 0;
  while (!done.load() || total < 800) {
    std::vector<QueryPair> wave;
    for (int i = 0; i < 40; ++i) {
      wave.emplace_back(static_cast<Vertex>(qrng.NextBounded(n)),
                        static_cast<Vertex>(qrng.NextBounded(n)));
    }
    tickets.push_back(engine.SubmitBatch(wave));
    total += wave.size();
    waves.push_back(std::move(wave));
    if (total >= 4000) break;  // safety valve
  }
  updater.join();
  engine.Flush();

  // Every ticket was answered from ONE pinned snapshot: audit each
  // answer against a Dijkstra recomputation on that snapshot's graph
  // AND against the per-query path on the same snapshot (batched
  // serving must be bit-identical to per-query serving on the pinned
  // epoch).
  uint64_t mismatches = 0;
  uint64_t batch_vs_query_mismatches = 0;
  testing_util::EpochOracle oracle;
  for (size_t w = 0; w < tickets.size(); ++w) {
    QueryEngine::Ticket& ticket = tickets[w];
    ticket.Wait();
    const auto& snap = ticket.snapshot();
    ASSERT_NE(snap, nullptr);
    Dijkstra& audit = oracle.For(ticket.epoch(), snap->graph);
    for (size_t i = 0; i < waves[w].size(); ++i) {
      const auto [s, t] = waves[w][i];
      if (ticket.distance(i) != audit.Distance(s, t)) ++mismatches;
      if (ticket.distance(i) != snap->Query(s, t)) {
        ++batch_vs_query_mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(batch_vs_query_mismatches, 0u);

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_served, total);
  EXPECT_EQ(stats.query_batches_submitted, tickets.size());
  EXPECT_GE(stats.epochs_published, 1u);
  EXPECT_EQ(stats.updates_enqueued, 80u);
  EXPECT_EQ(stats.updates_applied + stats.updates_coalesced, 80u);
  // With threshold 3 and max_batch_size 4, both engines should have run
  // at least once across 80 updates... but batch sizes depend on timing,
  // so only assert that some batch ran.
  EXPECT_GE(stats.batches_pareto + stats.batches_label, 1u);
}

// The CoW aliasing audit: hold every epoch's snapshot while the writer
// keeps detaching pages, verify (a) each held snapshot stays
// byte-for-byte identical to the deep copy frozen at capture time, and
// (b) each new epoch's labels match a from-scratch BuildLabelling on
// that epoch's exact graph state.
TEST(QueryEngineTest, CowSnapshotsSurviveAliasingAndMatchScratchBuilds) {
  Graph g = testing_util::SmallRoadNetwork(8, 31);
  const uint32_t m = g.NumEdges();
  QueryEngine engine(std::move(g), HierarchyOptions{},
                     SmallEngineOptions());
  Rng rng(31);
  struct Held {
    std::shared_ptr<const EngineSnapshot> snap;
    Labelling frozen_labels;
    std::vector<Weight> frozen_weights;
  };
  std::vector<Held> held;
  auto capture = [&held, m](std::shared_ptr<const EngineSnapshot> snap) {
    std::vector<Weight> w(m);
    for (EdgeId e = 0; e < m; ++e) w[e] = snap->graph.EdgeWeight(e);
    held.push_back(Held{snap, snap->StlLabels()->DeepCopy(), std::move(w)});
  };
  capture(engine.CurrentSnapshot());
  for (int round = 0; round < 12; ++round) {
    const size_t batch = 1 + rng.NextBounded(6);
    for (size_t i = 0; i < batch; ++i) {
      engine.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                           1 + static_cast<Weight>(rng.NextBounded(400)));
    }
    engine.Flush();
    auto snap = engine.CurrentSnapshot();
    // (b) labels of the new epoch == from-scratch build on its graph.
    Labelling scratch = BuildLabelling(snap->graph, *snap->StlHierarchy());
    ASSERT_EQ(testing_util::LabelDiffCount(*snap->StlLabels(), scratch), 0u)
        << "round " << round << " epoch " << snap->epoch;
    capture(snap);
    // (a) every held snapshot is untouched by later maintenance.
    for (size_t c = 0; c < held.size(); ++c) {
      ASSERT_TRUE(*held[c].snap->StlLabels() == held[c].frozen_labels)
          << "round " << round << " snapshot " << c;
      for (EdgeId e = 0; e < m; ++e) {
        ASSERT_EQ(held[c].snap->graph.EdgeWeight(e),
                  held[c].frozen_weights[e]);
      }
    }
  }
  EngineStats stats = engine.Stats();
  EXPECT_GT(stats.label_pages_cloned, 0u);
  EXPECT_GT(stats.cow_bytes_cloned, 0u);
  EXPECT_EQ(stats.publish_bytes_deep_copied, 0u);  // CoW mode: no copies
  EXPECT_GT(stats.resident_index_bytes, 0u);
}

TEST(QueryEngineTest, FlatPublishBaselineStillServesExactAnswers) {
  Graph g = testing_util::SmallRoadNetwork(8, 33);
  EngineOptions opt = SmallEngineOptions();
  opt.flat_publish = true;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  Rng rng(33);
  const uint32_t m = engine.CurrentSnapshot()->graph.NumEdges();
  std::vector<WeightUpdate> updates;
  for (int i = 0; i < 10; ++i) {
    updates.push_back(
        WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                     1 + static_cast<Weight>(rng.NextBounded(300))});
  }
  engine.EnqueueUpdates(updates);  // atomic bulk enqueue
  engine.Flush();
  auto snap = engine.CurrentSnapshot();
  Dijkstra dij(snap->graph);
  const uint32_t n = snap->graph.NumVertices();
  for (int i = 0; i < 60; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ASSERT_EQ(engine.Submit({s, t}).get().distance, dij.Distance(s, t));
  }
  EngineStats stats = engine.Stats();
  EXPECT_GT(stats.publish_bytes_deep_copied, 0u);
}

// ------------------------------------------------- per-backend audit
//
// The same serving contract, asserted for every DistanceIndex backend:
// readers racing the writer, every answer checked against Dijkstra on
// the exact epoch it was served from.

class BackendEngineTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  EngineOptions BackendOptions() {
    EngineOptions opt;
    opt.backend = GetParam();
    opt.num_query_threads = 4;
    opt.max_batch_size = 4;
    return opt;
  }
};

TEST_P(BackendEngineTest, ServesExactAnswersOnInitialEpoch) {
  Graph g = testing_util::SmallRoadNetwork(7, 41);
  Graph ref = g;
  QueryEngine engine(std::move(g), HierarchyOptions{}, BackendOptions());
  EXPECT_EQ(engine.backend(), GetParam());
  Dijkstra dij(ref);
  Rng rng(41);
  for (int i = 0; i < 120; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    QueryResult r = engine.Submit({s, t}).get();
    ASSERT_EQ(r.distance, dij.Distance(s, t))
        << BackendName(GetParam()) << " s=" << s << " t=" << t;
    EXPECT_EQ(r.epoch, 0u);
  }
  EXPECT_GT(engine.Stats().resident_index_bytes, 0u);
}

TEST_P(BackendEngineTest, UpdatesPublishEpochsWithExactAnswers) {
  Graph g = testing_util::SmallRoadNetwork(7, 42);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  QueryEngine engine(std::move(g), HierarchyOptions{}, BackendOptions());
  Rng rng(42);
  for (int round = 0; round < 4; ++round) {
    std::vector<WeightUpdate> updates;
    for (int i = 0; i < 3; ++i) {
      updates.push_back(
          WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                       1 + static_cast<Weight>(rng.NextBounded(400))});
    }
    engine.EnqueueUpdates(updates);
    engine.Flush();
    auto snap = engine.CurrentSnapshot();
    Dijkstra dij(snap->graph);
    for (int i = 0; i < 50; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      ASSERT_EQ(snap->Query(s, t), dij.Distance(s, t))
          << BackendName(GetParam()) << " round=" << round << " s=" << s
          << " t=" << t;
    }
  }
  // Batch accounting lands in the counter matching the backend's
  // capabilities: STL splits across the two maintenance engines,
  // CH/H2H repair incrementally, HC2L rebuilds.
  EngineStats stats = engine.Stats();
  EXPECT_GE(stats.epochs_published, 1u);
  const uint64_t stl_batches = stats.batches_pareto + stats.batches_label;
  switch (GetParam()) {
    case BackendKind::kStl:
      EXPECT_GT(stl_batches, 0u);
      EXPECT_EQ(stats.batches_incremental + stats.batches_rebuild, 0u);
      break;
    case BackendKind::kCh:
    case BackendKind::kH2h:
      EXPECT_GT(stats.batches_incremental, 0u);
      EXPECT_EQ(stl_batches + stats.batches_rebuild, 0u);
      break;
    case BackendKind::kHc2l:
      EXPECT_GT(stats.batches_rebuild, 0u);
      EXPECT_EQ(stl_batches + stats.batches_incremental, 0u);
      break;
  }
}

TEST_P(BackendEngineTest, PathQueriesMatchCapability) {
  Graph g = testing_util::SmallRoadNetwork(5, 43);
  QueryEngine engine(std::move(g), HierarchyOptions{}, BackendOptions());
  auto snap = engine.CurrentSnapshot();
  const Vertex s = 0;
  const Vertex t = snap->graph.NumVertices() - 1;
  std::vector<Vertex> path = snap->QueryShortestPath(s, t);
  if (engine.capabilities().path_queries) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    // The path's edge weights sum to the reported distance.
    Weight sum = 0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      auto e = snap->graph.FindEdge(path[i], path[i + 1]);
      ASSERT_TRUE(e.has_value());
      sum += snap->graph.EdgeWeight(*e);
    }
    EXPECT_EQ(sum, snap->Query(s, t));
  } else {
    EXPECT_TRUE(path.empty());
  }
}

// The headline audit, per backend: N reader threads racing one writer;
// every answer must be exact for the epoch it was served from, and held
// snapshots must keep answering for their own epoch's weights.
TEST_P(BackendEngineTest, ConcurrentReadersWithWriterMatchDijkstraPerEpoch) {
  Graph g = testing_util::SmallRoadNetwork(7, 44);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  QueryEngine engine(std::move(g), HierarchyOptions{}, BackendOptions());

  std::atomic<bool> done{false};
  std::thread updater([&engine, m, &done] {
    Rng urng(144);
    for (int i = 0; i < 48; ++i) {
      EdgeId e = static_cast<EdgeId>(urng.NextBounded(m));
      engine.EnqueueUpdate(e, 1 + static_cast<Weight>(urng.NextBounded(300)));
      if (i % 6 == 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    done.store(true);
  });

  Rng qrng(145);
  std::vector<std::vector<QueryPair>> waves;
  std::vector<QueryEngine::Ticket> tickets;
  size_t total = 0;
  while (!done.load() || total < 600) {
    std::vector<QueryPair> wave;
    for (int i = 0; i < 30; ++i) {
      wave.emplace_back(static_cast<Vertex>(qrng.NextBounded(n)),
                        static_cast<Vertex>(qrng.NextBounded(n)));
    }
    tickets.push_back(engine.SubmitBatch(wave));
    total += wave.size();
    waves.push_back(std::move(wave));
    if (total >= 3000) break;  // safety valve
  }
  updater.join();
  engine.Flush();

  std::map<uint64_t, std::shared_ptr<const EngineSnapshot>> snapshots;
  testing_util::EpochOracle oracle;
  uint64_t mismatches = 0;
  uint64_t batch_vs_query_mismatches = 0;
  for (size_t w = 0; w < tickets.size(); ++w) {
    QueryEngine::Ticket& ticket = tickets[w];
    ticket.Wait();
    const auto& snap = ticket.snapshot();
    ASSERT_NE(snap, nullptr);
    snapshots.emplace(ticket.epoch(), snap);
    Dijkstra& audit = oracle.For(ticket.epoch(), snap->graph);
    for (size_t i = 0; i < waves[w].size(); ++i) {
      const auto [s, t] = waves[w][i];
      if (ticket.distance(i) != audit.Distance(s, t)) ++mismatches;
      if (ticket.distance(i) != snap->Query(s, t)) {
        ++batch_vs_query_mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << BackendName(GetParam());
  EXPECT_EQ(batch_vs_query_mismatches, 0u) << BackendName(GetParam());

  // Every held snapshot still answers for its own epoch after the
  // writer has moved on (immutability across backends).
  for (auto& [epoch, snap] : snapshots) {
    Rng rng(static_cast<uint64_t>(epoch) + 9000);
    for (int i = 0; i < 20; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      ASSERT_EQ(snap->Query(s, t), oracle.At(epoch).Distance(s, t))
          << BackendName(GetParam()) << " epoch=" << epoch;
    }
  }

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_served, total);
  EXPECT_GE(stats.epochs_published, 1u);
  EXPECT_EQ(stats.updates_enqueued, 48u);
  EXPECT_EQ(stats.updates_applied + stats.updates_coalesced, 48u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendEngineTest,
    ::testing::Values(BackendKind::kStl, BackendKind::kCh,
                      BackendKind::kH2h, BackendKind::kHc2l),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return std::string(BackendName(info.param));
    });

// ------------------------------------------- completion-queue delivery
//
// The exactly-once contract of the tagged sink path: every submitted
// tag arrives exactly once, from concurrent submitters racing the
// writer. Runs under the TSan CI job via this binary.

TEST(QueryEngineTest, CompletionQueueDeliversEveryTagExactlyOnce) {
  Graph g = testing_util::SmallRoadNetwork(8, 61);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  QueryEngine engine(std::move(g), HierarchyOptions{}, SmallEngineOptions());
  CompletionQueue cq;
  constexpr size_t kQueries = 1500;

  std::thread updater([&engine, m] {
    Rng urng(611);
    for (int i = 0; i < 60; ++i) {
      engine.EnqueueUpdate(static_cast<EdgeId>(urng.NextBounded(m)),
                           1 + static_cast<Weight>(urng.NextBounded(300)));
      if (i % 6 == 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  // Two submitter threads with disjoint tag ranges race the writer.
  auto submit = [&engine, &cq, n](uint64_t base, size_t count,
                                  uint64_t seed) {
    Rng rng(seed);
    for (size_t i = 0; i < count; ++i) {
      engine.SubmitTagged({static_cast<Vertex>(rng.NextBounded(n)),
                           static_cast<Vertex>(rng.NextBounded(n))},
                          base + i, &cq);
    }
  };
  std::thread s1(submit, 0, kQueries / 2, 612);
  std::thread s2(submit, kQueries / 2, kQueries - kQueries / 2, 613);
  s1.join();
  s2.join();

  std::vector<bool> seen(kQueries, false);
  size_t received = 0;
  Completion buf[64];
  while (received < kQueries) {
    const size_t got = cq.WaitPoll(buf, 64);
    ASSERT_GT(got, 0u);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_LT(buf[i].tag, kQueries);
      ASSERT_FALSE(seen[buf[i].tag]) << "tag " << buf[i].tag << " twice";
      seen[buf[i].tag] = true;
      EXPECT_GE(buf[i].latency_micros, 0.0);
    }
    received += got;
  }
  updater.join();
  EXPECT_EQ(cq.Poll(buf, 64), 0u);  // nothing extra was delivered
  EXPECT_EQ(cq.size(), 0u);
  EXPECT_EQ(engine.Stats().queries_served, kQueries);
}

TEST(QueryEngineTest, CompletionQueueAnswersAreExactOnQuiescentEpoch) {
  Graph g = testing_util::SmallRoadNetwork(7, 63);
  const uint32_t n = g.NumVertices();
  QueryEngine engine(std::move(g), HierarchyOptions{}, SmallEngineOptions());
  auto snap = engine.CurrentSnapshot();
  Dijkstra dij(snap->graph);
  CompletionQueue cq;
  Rng rng(63);
  std::vector<QueryPair> queries;
  for (int i = 0; i < 80; ++i) {
    queries.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n)));
    engine.SubmitTagged(queries.back(), static_cast<uint64_t>(i), &cq);
  }
  size_t received = 0;
  Completion buf[32];
  while (received < queries.size()) {
    const size_t got = cq.WaitPoll(buf, 32);
    for (size_t i = 0; i < got; ++i) {
      const QueryPair& q = queries[buf[i].tag];
      EXPECT_EQ(buf[i].distance, dij.Distance(q.first, q.second));
      EXPECT_EQ(buf[i].epoch, snap->epoch);
    }
    received += got;
  }
}

TEST(QueryEngineTest, SubmitBatchTaggedDeliversOncePerTagAndMatchesTicket) {
  Graph g = testing_util::SmallRoadNetwork(7, 64);
  const uint32_t n = g.NumVertices();
  QueryEngine engine(std::move(g), HierarchyOptions{}, SmallEngineOptions());
  Rng rng(64);
  std::vector<QueryPair> queries;
  std::vector<uint64_t> tags;
  for (int i = 0; i < 120; ++i) {
    queries.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n)));
    tags.push_back(1000 + i);
  }
  CompletionQueue cq;
  QueryEngine::Ticket ticket = engine.SubmitBatchTagged(queries, tags, &cq);
  ticket.Wait();
  std::vector<bool> seen(queries.size(), false);
  size_t received = 0;
  Completion buf[32];
  while (received < queries.size()) {
    const size_t got = cq.WaitPoll(buf, 32);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_GE(buf[i].tag, 1000u);
      const size_t slot = buf[i].tag - 1000;
      ASSERT_LT(slot, queries.size());
      ASSERT_FALSE(seen[slot]);
      seen[slot] = true;
      EXPECT_EQ(buf[i].distance, ticket.distance(slot));
      EXPECT_EQ(buf[i].epoch, ticket.epoch());
    }
    received += got;
  }
  EXPECT_EQ(cq.Poll(buf, 32), 0u);
}

// ----------------------------------------------- epoch-keyed result cache

TEST(QueryEngineTest, ResultCacheHitsAndEpochInvalidation) {
  Graph g = testing_util::SmallRoadNetwork(8, 65);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  EngineOptions opt = SmallEngineOptions();
  opt.result_cache_entries = 1 << 12;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  Rng rng(65);
  std::vector<QueryPair> queries;
  for (int i = 0; i < 80; ++i) {
    queries.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n)));
  }
  // First pass fills the cache; the repeat pass on the SAME epoch must
  // return identical distances (now mostly from the memo).
  QueryEngine::Ticket first = engine.SubmitBatch(queries);
  first.Wait();
  QueryEngine::Ticket repeat = engine.SubmitBatch(queries);
  repeat.Wait();
  ASSERT_EQ(first.epoch(), repeat.epoch());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(first.distance(i), repeat.distance(i));
  }
  EngineStats stats = engine.Stats();
  EXPECT_GT(stats.result_cache_lookups, 0u);
  EXPECT_GT(stats.result_cache_hits, 0u);
  EXPECT_GT(stats.result_cache_hit_rate, 0.0);

  // Publishing a new epoch invalidates for free (the epoch is part of
  // the key): the same queries must be exact for the NEW weights.
  for (int i = 0; i < 15; ++i) {
    engine.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                         1 + static_cast<Weight>(rng.NextBounded(400)));
  }
  engine.Flush();
  QueryEngine::Ticket after = engine.SubmitBatch(queries);
  after.Wait();
  ASSERT_GT(after.epoch(), first.epoch());
  Dijkstra dij(after.snapshot()->graph);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(after.distance(i),
              dij.Distance(queries[i].first, queries[i].second))
        << "stale cache entry served across epochs, query " << i;
  }
  // Per-query Submit consults the same cache.
  QueryResult r = engine.Submit(queries[0]).get();
  EXPECT_EQ(r.distance, after.distance(0));
}

TEST(QueryEngineTest, EmptyAndAllHitBatchesResolveImmediately) {
  Graph g = testing_util::SmallRoadNetwork(6, 66);
  EngineOptions opt = SmallEngineOptions();
  opt.result_cache_entries = 256;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  QueryEngine::Ticket empty = engine.SubmitBatch({});
  empty.Wait();
  EXPECT_EQ(empty.size(), 0u);
  // A batch of one repeated pair: after the first resolves, resubmit —
  // the all-hits path must still produce a done ticket with the same
  // answer.
  std::vector<QueryPair> one{{0, 1}};
  QueryEngine::Ticket a = engine.SubmitBatch(one);
  a.Wait();
  QueryEngine::Ticket b = engine.SubmitBatch(one);
  b.Wait();
  EXPECT_EQ(a.distance(0), b.distance(0));
}

TEST(QueryEngineTest, DestructorDrainsInFlightWork) {
  Graph g = testing_util::SmallRoadNetwork(6, 28);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  std::vector<std::future<QueryResult>> futures;
  {
    QueryEngine engine(std::move(g), HierarchyOptions{},
                       SmallEngineOptions());
    Rng rng(28);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(engine.Submit(
          {static_cast<Vertex>(rng.NextBounded(n)),
           static_cast<Vertex>(rng.NextBounded(n))}));
    }
    for (int i = 0; i < 10; ++i) {
      engine.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                           1 + static_cast<Weight>(rng.NextBounded(100)));
    }
    // Engine destroyed here with queries and updates still in flight.
  }
  for (auto& f : futures) {
    QueryResult r = f.get();  // must not hang or throw broken_promise
    EXPECT_NE(r.snapshot, nullptr);
  }
}

}  // namespace
}  // namespace stl
