// Serving demo: the concurrent query engine under live traffic.
//
// Builds a QueryEngine over a synthetic city, then plays both roles of a
// production deployment at once: application threads submitting distance
// queries, and a traffic feed pushing weight updates (congestion, then
// recovery, then a road closure) through the single writer. Shows that
// readers never block, that answers are exact for the epoch they were
// served from, and what the engine's stats report looks like.
//
// The engine is generic over DistanceIndex backends; pass one of
// stl | ch | h2h | hc2l to serve the same traffic from another index
// family (path steps are printed only where the backend supports path
// queries).
//
//   $ ./serve_demo [backend]
#include <cstdio>
#include <cstring>

#include "engine/query_engine.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "index/distance_index.h"
#include "util/rng.h"

using namespace stl;

namespace {

// Usage/help derived from the actual backend registry, so a new
// BackendKind shows up here without touching the demo.
void PrintUsage(std::FILE* out, const char* prog) {
  std::fprintf(out, "usage: %s [backend]\n\n", prog);
  std::fprintf(out,
               "Serves a synthetic city from the concurrent query engine "
               "while a traffic\nfeed streams weight updates.\n\n"
               "valid backends (default: %s):\n",
               BackendName(BackendKind::kStl));
  for (BackendKind kind : kAllBackends) {
    std::fprintf(out, "  %-5s", BackendName(kind));
    switch (kind) {
      case BackendKind::kStl:
        std::fprintf(out, "Stable Tree Labelling (the paper's index)\n");
        break;
      case BackendKind::kCh:
        std::fprintf(out, "Contraction Hierarchy (CH-W + DCH)\n");
        break;
      case BackendKind::kH2h:
        std::fprintf(out, "H2H tree-decomposition labels (IncH2H)\n");
        break;
      case BackendKind::kHc2l:
        std::fprintf(out, "Hierarchical Cut 2-hop Labelling (static)\n");
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BackendKind backend = BackendKind::kStl;
  if (argc > 1) {
    if (std::strcmp(argv[1], "-h") == 0 ||
        std::strcmp(argv[1], "--help") == 0) {
      PrintUsage(stdout, argv[0]);
      return 0;
    }
    bool known = false;
    for (BackendKind kind : kAllBackends) {
      if (std::strcmp(argv[1], BackendName(kind)) == 0) {
        backend = kind;
        known = true;
      }
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown backend '%s'\n\n", argv[1]);
      PrintUsage(stderr, argv[0]);
      return 1;
    }
  }

  // 1. A road network and an engine serving it: 4 reader threads, one
  //    writer, maintenance strategy chosen per batch.
  RoadNetworkOptions net;
  net.width = 40;
  net.height = 40;
  net.seed = 2026;
  Graph g = GenerateRoadNetwork(net);
  const uint32_t n = g.NumVertices();
  std::printf("network: %u intersections, %u road segments\n", n,
              g.NumEdges());

  EngineOptions opt;
  opt.backend = backend;
  opt.num_query_threads = 4;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  std::printf("engine up: backend %s, %d reader threads, epoch %llu\n",
              BackendName(engine.backend()), engine.num_query_threads(),
              static_cast<unsigned long long>(engine.CurrentEpoch()));

  // 2. A burst of queries on the clean network.
  Rng rng(2026);
  std::vector<QueryPair> burst;
  for (int i = 0; i < 500; ++i) {
    burst.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n)));
  }
  auto futures = engine.SubmitBatch(burst);
  for (auto& f : futures) f.get();
  std::printf("burst of %zu queries served\n", burst.size());

  // 3. Traffic: congestion on the edges of one popular route, while
  //    queries keep flowing. Readers stay on the old epoch until the
  //    writer publishes; nobody waits.
  auto snap = engine.CurrentSnapshot();
  Vertex s = burst[0].first, t = burst[0].second;
  // Congest the popular route's own segments where the backend can
  // reconstruct it; otherwise a random set of segments.
  std::vector<EdgeId> congested_edges;
  if (engine.capabilities().path_queries) {
    std::vector<Vertex> route = snap->QueryShortestPath(s, t);
    std::printf("route %u -> %u: %zu hops, d = %u\n", s, t, route.size(),
                snap->Query(s, t));
    for (size_t i = 0; i + 1 < route.size(); ++i) {
      congested_edges.push_back(*snap->graph.FindEdge(route[i], route[i + 1]));
    }
  } else {
    std::printf("route %u -> %u: d = %u (backend %s has no path queries)\n",
                s, t, snap->Query(s, t), BackendName(engine.backend()));
    for (int i = 0; i < 12; ++i) {
      congested_edges.push_back(
          static_cast<EdgeId>(rng.NextBounded(snap->graph.NumEdges())));
    }
  }
  for (EdgeId e : congested_edges) {
    engine.EnqueueUpdate(e, std::min<Weight>(
                                snap->graph.EdgeWeight(e) * 5,
                                kMaxEdgeWeight));
  }
  auto during = engine.SubmitBatch(burst);  // racing the writer
  for (auto& f : during) f.get();
  engine.Flush();
  auto congested = engine.CurrentSnapshot();
  std::printf("congestion published (epoch %llu): d(%u, %u) = %u\n",
              static_cast<unsigned long long>(congested->epoch), s, t,
              congested->Query(s, t));

  // 4. The old snapshot is untouched — time-travel debugging for free.
  std::printf("epoch %llu still answers d(%u, %u) = %u\n",
              static_cast<unsigned long long>(snap->epoch), s, t,
              snap->Query(s, t));

  // 5. Recovery: put the original weights back.
  for (EdgeId e : congested_edges) {
    engine.EnqueueUpdate(e, snap->graph.EdgeWeight(e));
  }
  engine.Flush();
  std::printf("recovery published (epoch %llu): d(%u, %u) = %u\n",
              static_cast<unsigned long long>(engine.CurrentEpoch()), s, t,
              engine.CurrentSnapshot()->Query(s, t));

  // 6. Spot-check an answer against Dijkstra on its serving epoch.
  QueryResult r = engine.Submit({s, t}).get();
  Dijkstra oracle(r.snapshot->graph);
  std::printf("audit: engine %u vs dijkstra %u on epoch %llu — %s\n",
              r.distance, oracle.Distance(s, t),
              static_cast<unsigned long long>(r.epoch),
              r.distance == oracle.Distance(s, t) ? "exact" : "MISMATCH");

  // 7. The ops view.
  EngineStats st = engine.Stats();
  std::printf(
      "stats: %llu queries (%.0f qps), p50 %.1f us, p99 %.1f us, "
      "%llu updates applied in %llu epochs (%llu pareto / %llu label / "
      "%llu incremental / %llu rebuild batches)\n",
      static_cast<unsigned long long>(st.queries_served),
      st.queries_per_second, st.latency_p50_micros, st.latency_p99_micros,
      static_cast<unsigned long long>(st.updates_applied),
      static_cast<unsigned long long>(st.epochs_published),
      static_cast<unsigned long long>(st.batches_pareto),
      static_cast<unsigned long long>(st.batches_label),
      static_cast<unsigned long long>(st.batches_incremental),
      static_cast<unsigned long long>(st.batches_rebuild));
  return 0;
}
