// Reproduces Table 5: mean query time over uniform random pairs for STL,
// HC2L, IncH2H/DTDHL (same query path), plus bidirectional Dijkstra as
// the classical no-index reference.
//
// Expected shape (paper): STL fastest among dynamic indexes (1.5-3x vs
// H2H), marginally slower than static HC2L; Dijkstra orders of magnitude
// slower.
#include "baselines/h2h.h"
#include "baselines/hc2l.h"
#include "bench/bench_common.h"
#include "core/stl_index.h"
#include "graph/dijkstra.h"
#include "util/table.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Table 5 — query times (microseconds)", cfg);
  TablePrinter table({"Network", "STL", "HC2L", "IncH2H/DTDHL", "BiDijkstra"});
  for (const auto& spec : cfg.datasets) {
    Graph g_stl = LoadDataset(spec);
    Graph g_h2h = g_stl;
    const Graph g_ref = g_stl;
    StlIndex stl_idx = StlIndex::Build(&g_stl, HierarchyOptions{});
    Hc2lIndex hc2l = Hc2lIndex::Build(g_ref, HierarchyOptions{});
    H2hIndex h2h = H2hIndex::Build(&g_h2h);
    BidirectionalDijkstra bi(g_ref);

    auto pairs = RandomQueryPairs(g_ref, cfg.query_count, spec.seed * 7);
    // Dijkstra is far slower; sample fewer pairs so the suite stays fast.
    std::vector<QueryPair> dij_pairs(
        pairs.begin(), pairs.begin() + std::min<size_t>(pairs.size(), 500));

    double stl_us = bench::TimeQueriesMicros(
        pairs, [&](Vertex s, Vertex t) { return stl_idx.Query(s, t); });
    double hc2l_us = bench::TimeQueriesMicros(
        pairs, [&](Vertex s, Vertex t) { return hc2l.Query(s, t); });
    double h2h_us = bench::TimeQueriesMicros(
        pairs, [&](Vertex s, Vertex t) { return h2h.Query(s, t); });
    double bi_us = bench::TimeQueriesMicros(
        dij_pairs, [&](Vertex s, Vertex t) { return bi.Distance(s, t); });

    table.AddRow({spec.name, TablePrinter::Fixed(stl_us, 3),
                  TablePrinter::Fixed(hc2l_us, 3),
                  TablePrinter::Fixed(h2h_us, 3),
                  TablePrinter::Fixed(bi_us, 1)});
  }
  table.Print();
  return 0;
}
