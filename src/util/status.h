// Lightweight Status / Result error handling, in the style used by
// storage engines (RocksDB, Arrow): library code never throws; recoverable
// failures travel as Status values, programming errors hit STL_CHECK.
#ifndef STL_UTIL_STATUS_H_
#define STL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace stl {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kCorruption = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kInternal = 7,
  /// Load-shedding: the request was rejected (or shed from the queue)
  /// by admission control before it consumed reader time.
  kOverloaded = 8,
  /// The request's deadline passed before a reader routed it.
  kDeadlineExceeded = 9,
  /// A required remote party could not serve the request: every replica
  /// of a shard was unreachable or stale for the pinned epoch
  /// (dist/shard_router.h). Retryable — a later epoch or a recovered
  /// replica clears it.
  kUnavailable = 10,
};

/// Returns a stable human-readable name for `code` ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without crashing the process.
///
/// A default-constructed Status is OK. Failed statuses carry a code and a
/// message. Status is cheap to copy (message is shared at the std::string
/// level only on failure paths, which are cold).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a failure Status. Accessing the value of a
/// failed Result aborts (programming error).
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal::DieBadResultAccess(status_);
}

}  // namespace stl

#endif  // STL_UTIL_STATUS_H_
