// The four DistanceIndex backend adapters. Each wraps one index family
// behind the capability surface of index/distance_index.h:
//
//   StlBackend  — incremental (STL-P / STL-L), CoW snapshots: publishing
//                 shares label pages and the stable hierarchy with the
//                 master, so PublishView is O(touched pages).
//   ChBackend   — incremental (DCH weight propagation). The CH structure
//                 mutates in place, so every publish deep-copies it.
//   H2hBackend  — incremental (IncH2H label repair on top of DCH); deep
//                 copy per publish, like CH.
//   Hc2lBackend — static: ApplyBatch writes the new weights into the
//                 graph and rebuilds the whole index into a fresh
//                 immutable object, so PublishView just shares a
//                 pointer (old epochs keep theirs).
#include "index/distance_index.h"

#include <utility>

#include "baselines/ch.h"
#include "baselines/h2h.h"
#include "baselines/hc2l.h"
#include "util/logging.h"

namespace stl {

const char* BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kStl:
      return "stl";
    case BackendKind::kCh:
      return "ch";
    case BackendKind::kH2h:
      return "h2h";
    case BackendKind::kHc2l:
      return "hc2l";
  }
  return "unknown";
}

namespace {

// ------------------------------------------------------------------ STL

class StlView : public IndexView {
 public:
  StlView(std::shared_ptr<const TreeHierarchy> hierarchy, Labelling labels)
      : hierarchy_(std::move(hierarchy)), labels_(std::move(labels)) {}

  Weight Query(Vertex s, Vertex t) const override {
    return QueryDistance(*hierarchy_, labels_, s, t);
  }

  std::vector<Vertex> QueryShortestPath(const Graph& g, Vertex s,
                                        Vertex t) const override {
    return QueryPath(g, *hierarchy_, labels_, s, t);
  }

  uint64_t AddResidentBytes(
      std::unordered_set<const void*>* seen) const override {
    uint64_t bytes = labels_.AddResidentBytes(seen);
    if (seen->insert(hierarchy_.get()).second) {
      bytes += hierarchy_->MemoryBytes();
    }
    return bytes;
  }

  const Labelling* StlLabels() const override { return &labels_; }
  const TreeHierarchy* StlHierarchy() const override {
    return hierarchy_.get();
  }

 private:
  std::shared_ptr<const TreeHierarchy> hierarchy_;
  Labelling labels_;  // page-shared with the master unless flat-published
};

class StlBackend : public DistanceIndex {
 public:
  StlBackend(Graph* g, const HierarchyOptions& options)
      : index_(StlIndex::Build(g, options)),
        hierarchy_(
            std::make_shared<const TreeHierarchy>(index_.hierarchy())) {
    // Publish baseline: page clones from the build itself (freshly
    // allocated, unshared pages) are not publish cost.
    const CowChunkStats lc = index_.labels().cow_stats();
    harvested_pages_ = lc.chunks_cloned;
    harvested_bytes_ = lc.bytes_cloned;
  }

  BackendKind kind() const override { return BackendKind::kStl; }

  BackendCapabilities capabilities() const override {
    return {.incremental_updates = true,
            .path_queries = true,
            .cow_snapshots = true,
            .fast_point_queries = true};
  }

  BatchExecution ApplyBatch(const UpdateBatch& batch,
                            MaintenanceStrategy strategy) override {
    index_.ApplyBatch(batch, strategy);
    return strategy == MaintenanceStrategy::kParetoSearch
               ? BatchExecution::kParetoSearch
               : BatchExecution::kLabelSearch;
  }

  std::shared_ptr<const IndexView> PublishView(bool flat_publish,
                                               PublishInfo* info) override {
    // Harvest the CoW clone counters accumulated since the last publish:
    // pages detached by this batch's maintenance are the real byte cost
    // of isolating the previous epoch from this one.
    const CowChunkStats lc = index_.labels().cow_stats();
    info->label_pages_cloned = lc.chunks_cloned - harvested_pages_;
    info->label_bytes_cloned = lc.bytes_cloned - harvested_bytes_;
    harvested_pages_ = lc.chunks_cloned;
    harvested_bytes_ = lc.bytes_cloned;
    if (flat_publish) {
      Labelling deep = index_.labels().DeepCopy();
      info->deep_bytes_copied = deep.PayloadBytes();
      return std::make_shared<StlView>(hierarchy_, std::move(deep));
    }
    // Structural share: O(pages) pointer copies + refcount bumps, zero
    // entry copies.
    return std::make_shared<StlView>(hierarchy_, index_.labels());
  }

  uint64_t MemoryBytes() const override { return index_.MemoryBytes(); }
  double BuildSeconds() const override {
    return index_.build_info().total_seconds;
  }

 private:
  StlIndex index_;
  std::shared_ptr<const TreeHierarchy> hierarchy_;  // shared by all epochs
  uint64_t harvested_pages_ = 0;
  uint64_t harvested_bytes_ = 0;
};

// ------------------------------------------------------------------- CH

class ChView : public IndexView {
 public:
  explicit ChView(std::shared_ptr<const ChIndex> ch) : ch_(std::move(ch)) {}

  Weight Query(Vertex s, Vertex t) const override {
    // Per-reader-thread scratch (the contract of ChIndex::Query): the
    // stamp discipline makes a context safe to reuse across views and
    // epochs of the same vertex count.
    static thread_local ChQueryContext ctx;
    return ch_->Query(s, t, &ctx);
  }

  uint64_t AddResidentBytes(
      std::unordered_set<const void*>* seen) const override {
    return seen->insert(ch_.get()).second ? ch_->MemoryBytes() : 0;
  }

 private:
  std::shared_ptr<const ChIndex> ch_;
};

class ChBackend : public DistanceIndex {
 public:
  explicit ChBackend(Graph* g) : ch_(ChIndex::Build(g)) {}

  BackendKind kind() const override { return BackendKind::kCh; }

  BackendCapabilities capabilities() const override {
    return {.incremental_updates = true,
            .path_queries = false,
            .cow_snapshots = false};
  }

  BatchExecution ApplyBatch(const UpdateBatch& batch,
                            MaintenanceStrategy /*strategy*/) override {
    for (const WeightUpdate& u : batch) ch_.ApplyUpdate(u);
    return BatchExecution::kIncremental;
  }

  std::shared_ptr<const IndexView> PublishView(bool /*flat_publish*/,
                                               PublishInfo* info) override {
    // The CH edge weights mutate in place during maintenance, so every
    // epoch needs its own detached copy — of the query state only
    // (PublishCopy sheds support lists and scratch).
    auto copy = std::make_shared<const ChIndex>(ch_.PublishCopy());
    info->deep_bytes_copied = copy->MemoryBytes();
    return std::make_shared<ChView>(std::move(copy));
  }

  uint64_t MemoryBytes() const override { return ch_.MemoryBytes(); }
  double BuildSeconds() const override { return ch_.build_seconds(); }

 private:
  ChIndex ch_;
};

// ------------------------------------------------------------------ H2H

class H2hView : public IndexView {
 public:
  explicit H2hView(std::shared_ptr<const H2hIndex> h2h)
      : h2h_(std::move(h2h)) {}

  Weight Query(Vertex s, Vertex t) const override {
    return h2h_->Query(s, t);
  }

  uint64_t AddResidentBytes(
      std::unordered_set<const void*>* seen) const override {
    return seen->insert(h2h_.get()).second
               ? h2h_->MemoryBytes(H2hIndex::Maintenance::kIncH2H)
               : 0;
  }

 private:
  std::shared_ptr<const H2hIndex> h2h_;
};

class H2hBackend : public DistanceIndex {
 public:
  explicit H2hBackend(Graph* g) : h2h_(H2hIndex::Build(g)) {}

  BackendKind kind() const override { return BackendKind::kH2h; }

  BackendCapabilities capabilities() const override {
    return {.incremental_updates = true,
            .path_queries = false,
            .cow_snapshots = false,
            .fast_point_queries = true};
  }

  BatchExecution ApplyBatch(const UpdateBatch& batch,
                            MaintenanceStrategy /*strategy*/) override {
    for (const WeightUpdate& u : batch) {
      h2h_.ApplyUpdate(u, H2hIndex::Maintenance::kIncH2H);
    }
    return BatchExecution::kIncremental;
  }

  std::shared_ptr<const IndexView> PublishView(bool /*flat_publish*/,
                                               PublishInfo* info) override {
    // Query state only (labels + LCA tables); the embedded CH index and
    // the maintenance scratch stay with the master.
    auto copy = std::make_shared<const H2hIndex>(h2h_.PublishCopy());
    info->deep_bytes_copied =
        copy->MemoryBytes(H2hIndex::Maintenance::kIncH2H);
    return std::make_shared<H2hView>(std::move(copy));
  }

  uint64_t MemoryBytes() const override {
    return h2h_.MemoryBytes(H2hIndex::Maintenance::kIncH2H);
  }
  double BuildSeconds() const override { return h2h_.build_seconds(); }

 private:
  H2hIndex h2h_;
};

// ----------------------------------------------------------------- HC2L

class Hc2lView : public IndexView {
 public:
  explicit Hc2lView(std::shared_ptr<const Hc2lIndex> index)
      : index_(std::move(index)) {}

  Weight Query(Vertex s, Vertex t) const override {
    return index_->Query(s, t);
  }

  uint64_t AddResidentBytes(
      std::unordered_set<const void*>* seen) const override {
    return seen->insert(index_.get()).second ? index_->MemoryBytes() : 0;
  }

 private:
  std::shared_ptr<const Hc2lIndex> index_;
};

class Hc2lBackend : public DistanceIndex {
 public:
  Hc2lBackend(Graph* g, const HierarchyOptions& options)
      : g_(g),
        options_(options),
        index_(std::make_shared<const Hc2lIndex>(
            Hc2lIndex::Build(*g, options))),
        build_seconds_(index_->build_seconds()) {}

  BackendKind kind() const override { return BackendKind::kHc2l; }

  BackendCapabilities capabilities() const override {
    return {.incremental_updates = false,
            .path_queries = false,
            .cow_snapshots = false,
            .fast_point_queries = true};
  }

  BatchExecution ApplyBatch(const UpdateBatch& batch,
                            MaintenanceStrategy /*strategy*/) override {
    // Static index: write the new weights into the master graph, then
    // rebuild into a fresh immutable object. Epochs already published
    // keep their shared_ptr to the old index untouched.
    for (const WeightUpdate& u : batch) {
      g_->SetEdgeWeight(u.edge, u.new_weight);
    }
    index_ = std::make_shared<const Hc2lIndex>(
        Hc2lIndex::Build(*g_, options_));
    return BatchExecution::kFullRebuild;
  }

  std::shared_ptr<const IndexView> PublishView(bool /*flat_publish*/,
                                               PublishInfo* /*info*/) override {
    // The rebuild already paid the copy cost; publication is a pointer
    // share.
    return std::make_shared<Hc2lView>(index_);
  }

  uint64_t MemoryBytes() const override { return index_->MemoryBytes(); }
  double BuildSeconds() const override { return build_seconds_; }

 private:
  Graph* g_;
  const HierarchyOptions options_;
  std::shared_ptr<const Hc2lIndex> index_;
  double build_seconds_ = 0;
};

}  // namespace

std::unique_ptr<DistanceIndex> MakeDistanceIndex(
    BackendKind kind, Graph* g, const HierarchyOptions& options) {
  STL_CHECK(g != nullptr);
  switch (kind) {
    case BackendKind::kStl:
      return std::make_unique<StlBackend>(g, options);
    case BackendKind::kCh:
      return std::make_unique<ChBackend>(g);
    case BackendKind::kH2h:
      return std::make_unique<H2hBackend>(g);
    case BackendKind::kHc2l:
      return std::make_unique<Hc2lBackend>(g, options);
  }
  STL_CHECK(false) << "unknown backend kind";
  return nullptr;
}

}  // namespace stl
