// Stream framing for the network layer. Every message crosses a TCP
// byte stream as [u32 length][u64 tag][payload bytes], with the length
// covering the tag and payload, so a receiver can re-segment the
// stream into (tag, payload) pairs without understanding the payload.
// The codec is the resegmentation contract the Conn read path is built
// on: DecodeFrame on an incomplete prefix returns kUnavailable with
// consumed == 0 (retry once more bytes arrive), and an implausible
// length prefix is kCorruption (the connection is poisoned, not the
// process).
#ifndef STL_NET_FRAME_H_
#define STL_NET_FRAME_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace stl {

/// One decoded stream frame: the opaque tag plus the message payload.
struct WireFrame {
  uint64_t tag = 0;              ///< Echoed request/response tag.
  std::vector<uint8_t> payload;  ///< Encoded wire message bytes.
};

/// Bytes of the frame header's length prefix (u32).
inline constexpr size_t kFrameLenBytes = sizeof(uint32_t);

/// Bytes of the frame header's tag (u64).
inline constexpr size_t kFrameTagBytes = sizeof(uint64_t);

/// Sanity bound on one frame's body (tag + payload): a shard response
/// is at most one boundary row (|S| weights), far below this; anything
/// larger is a corrupted or hostile length prefix, not a real message.
inline constexpr uint32_t kMaxFrameBody = 1u << 28;

/// Encodes one frame as [u32 length][u64 tag][payload], appending to
/// `out` (stream framing: frames concatenate back-to-back).
void EncodeFrame(uint64_t tag, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out);

/// Decodes the first complete frame of `[data, data + size)` into
/// `*frame` and sets `*consumed` to its encoded length. An incomplete
/// prefix (short read mid-stream) returns kUnavailable with
/// `*consumed == 0` — retry with more bytes; a malformed length
/// returns kCorruption.
Status DecodeFrame(const uint8_t* data, size_t size, WireFrame* frame,
                   size_t* consumed);

}  // namespace stl

#endif  // STL_NET_FRAME_H_
