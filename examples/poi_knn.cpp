// k-nearest points-of-interest: the POI recommendation workload from the
// paper's introduction. A fleet of POIs (restaurants, chargers, ...) is
// scattered over the network; for each user we return the k closest by
// travel time, comparing the STL index against a plain Dijkstra baseline,
// and keep answers correct while roads change.
//
//   $ ./poi_knn
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/stl_index.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace stl;

namespace {

std::vector<std::pair<Weight, Vertex>> KnnByIndex(
    const StlIndex& index, const std::vector<Vertex>& pois, Vertex user,
    size_t k) {
  std::vector<std::pair<Weight, Vertex>> dist;
  dist.reserve(pois.size());
  for (Vertex p : pois) dist.emplace_back(index.Query(user, p), p);
  std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
  dist.resize(k);
  return dist;
}

std::vector<std::pair<Weight, Vertex>> KnnByDijkstra(
    Dijkstra* dij, const std::vector<Vertex>& pois, Vertex user, size_t k) {
  const auto& all = dij->AllDistances(user);
  std::vector<std::pair<Weight, Vertex>> dist;
  dist.reserve(pois.size());
  for (Vertex p : pois) dist.emplace_back(all[p], p);
  std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
  dist.resize(k);
  return dist;
}

}  // namespace

int main() {
  RoadNetworkOptions net;
  net.width = 56;
  net.height = 56;
  net.seed = 99;
  Graph g = GenerateRoadNetwork(net);
  StlIndex index = StlIndex::Build(&g, HierarchyOptions{});

  Rng rng(555);
  constexpr size_t kPois = 200;
  constexpr size_t kK = 5;
  constexpr int kUsers = 300;
  std::vector<Vertex> pois;
  while (pois.size() < kPois) {
    Vertex p = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    if (std::find(pois.begin(), pois.end(), p) == pois.end()) {
      pois.push_back(p);
    }
  }
  std::printf("network: %u vertices; %zu POIs; %d users; k=%zu\n\n",
              g.NumVertices(), pois.size(), kUsers, kK);

  Dijkstra dij(g);
  double index_us = 0, dijkstra_us = 0;
  int mismatches = 0;
  std::vector<Vertex> users;
  for (int i = 0; i < kUsers; ++i) {
    users.push_back(static_cast<Vertex>(rng.NextBounded(g.NumVertices())));
  }
  for (Vertex user : users) {
    Timer t;
    auto by_index = KnnByIndex(index, pois, user, kK);
    index_us += t.ElapsedMicros();
    t.Restart();
    auto by_dij = KnnByDijkstra(&dij, pois, user, kK);
    dijkstra_us += t.ElapsedMicros();
    for (size_t i = 0; i < kK; ++i) {
      if (by_index[i].first != by_dij[i].first) ++mismatches;
    }
  }
  std::printf("static kNN:   STL %.1f us/user vs Dijkstra %.1f us/user "
              "(%.0fx), %d distance mismatches\n",
              index_us / kUsers, dijkstra_us / kUsers,
              dijkstra_us / index_us, mismatches);

  // Rush hour hits: congest 150 random roads, answers must track it.
  UpdateBatch congestion;
  std::vector<bool> used(g.NumEdges(), false);
  while (congestion.size() < 150) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.NumEdges()));
    if (used[e]) continue;
    used[e] = true;
    Weight w = g.EdgeWeight(e);
    congestion.push_back(WeightUpdate{e, w, w * 3});
  }
  Timer t;
  index.ApplyBatch(congestion);
  std::printf("\napplied %zu congestion updates in %.1f ms\n",
              congestion.size(), t.ElapsedMillis());

  mismatches = 0;
  for (Vertex user : users) {
    auto by_index = KnnByIndex(index, pois, user, kK);
    auto by_dij = KnnByDijkstra(&dij, pois, user, kK);
    for (size_t i = 0; i < kK; ++i) {
      if (by_index[i].first != by_dij[i].first) ++mismatches;
    }
  }
  std::printf("post-congestion kNN distance mismatches: %d\n", mismatches);
  return mismatches != 0;
}
