// TSan-clean atomic publication slot for a shared_ptr.
//
// libstdc++'s std::atomic<std::shared_ptr<T>> guards the pointer word
// with an embedded lock bit, but the reader-side unlock in load() is a
// relaxed store: the pointer read is formally unordered against the
// writer's next store (ThreadSanitizer reports it, and by the letter of
// the memory model it is a data race, however benign on real hardware).
// This is the same design with release unlocks on BOTH sides, so every
// critical section is ordered: a few-nanosecond spinlock held only for
// the refcount bump / pointer swap. The writer never sleeps holding it
// and a reader holds it for one shared_ptr copy, preserving the
// engine's "readers never wait for maintenance" property in practice.
#ifndef STL_ENGINE_ATOMIC_SHARED_PTR_H_
#define STL_ENGINE_ATOMIC_SHARED_PTR_H_

#include <atomic>
#include <memory>
#include <utility>

namespace stl {

/// TSan-clean atomic publication slot for a shared_ptr (see file
/// comment): one writer swaps, any number of readers copy.
template <typename T>
class AtomicSharedPtr {
 public:
  /// An empty slot (load() returns null until the first store()).
  AtomicSharedPtr() = default;
  AtomicSharedPtr(const AtomicSharedPtr&) = delete;  ///< Not copyable.
  /// Not copyable.
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// Returns a reference-holding copy of the current pointer.
  std::shared_ptr<T> load() const {
    Lock();
    std::shared_ptr<T> p = ptr_;
    Unlock();
    return p;
  }

  /// Publishes `p`, releasing the displaced pointer outside the lock.
  void store(std::shared_ptr<T> p) {
    Lock();
    ptr_.swap(p);
    Unlock();
    // The displaced reference (and a possible destructor) is released in
    // `p` here, outside the critical section.
  }

 private:
  void Lock() const {
    while (lock_.test_and_set(std::memory_order_acquire)) {
      // Test-and-test-and-set: spin on the cheap read, retry the RMW
      // only once the flag looks clear.
      while (lock_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void Unlock() const { lock_.clear(std::memory_order_release); }

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::shared_ptr<T> ptr_;
};

}  // namespace stl

#endif  // STL_ENGINE_ATOMIC_SHARED_PTR_H_
