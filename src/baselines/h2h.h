// H2H baseline [21] with dynamic maintenance in the styles of IncH2H [32]
// and DTDHL [30] — the paper's main dynamic competitors.
//
// Index structure (Section 3.1): a tree decomposition is derived from the
// CH-W graph: node X(v) = {v} ∪ N_up(v); the parent of X(v) is X(u) for
// the lowest-ranked u in X(v) \ {v}. Every vertex stores
//   * an ancestor array (the root path),
//   * a distance array d(v, anc_j) of *global* distances to each ancestor,
//   * a position array (depths of X(v) members) used at query time.
// Queries find the LCA of X(s) and X(t) (Euler tour + sparse table) and
// minimize dist_s[i] + dist_t[i] over i in pos(LCA) (Equation 1).
//
// Maintenance is two-phase, as in both competitors:
//   1. shortcut phase — DCH weight propagation (ChIndex::ApplyUpdate),
//   2. label phase    — top-down repair of the decomposition tree from the
//      anchors (low endpoints of changed CH edges):
//      * kIncH2H: column-level dirty tracking — only ancestor columns that
//        actually changed (plus the anchor's own columns) are recomputed,
//        and subtrees are pruned when no dirty column and no anchor
//        remains below;
//      * kDTDHL: vertex-level tracking — every visited vertex recomputes
//        its whole distance array, which is the coarser (and much slower)
//        behaviour the paper measures for DTDHL.
//
// This is a faithful reimplementation of the published designs, not the
// authors' code; see DESIGN.md §3 for the substitution rationale.
#ifndef STL_BASELINES_H2H_H_
#define STL_BASELINES_H2H_H_

#include <cstdint>
#include <vector>

#include "baselines/ch.h"
#include "core/label_search.h"  // MaintenanceStats
#include "graph/graph.h"
#include "graph/updates.h"

namespace stl {

/// H2H index over a dynamic road network.
class H2hIndex {
 public:
  /// Label maintenance granularity (see file comment).
  enum class Maintenance { kIncH2H, kDTDHL };

  /// Builds CH-W, the tree decomposition, and all labels.
  static H2hIndex Build(Graph* g);

  /// Distance query via LCA + position arrays.
  Weight Query(Vertex s, Vertex t) const;

  /// Applies one weight update (shortcut phase + label phase).
  void ApplyUpdate(const WeightUpdate& update, Maintenance mode);

  uint32_t Depth(Vertex v) const { return depth_[v]; }
  uint32_t TreeHeight() const { return tree_height_; }  // max depth + 1
  uint64_t TotalLabelEntries() const { return dist_pool_.size(); }
  double build_seconds() const { return build_seconds_; }
  const MaintenanceStats& stats() const { return stats_; }
  const ChIndex& ch() const { return ch_; }

  /// Memory footprint. IncH2H carries the full auxiliary state (CH support
  /// lists, adjacency maps, LCA tables); DTDHL-style accounting includes
  /// only labels + CH edges + tree, matching its lighter auxiliary data.
  uint64_t MemoryBytes(Maintenance mode) const;

  /// Test hook: recomputes every label column from scratch top-down and
  /// returns true iff nothing changed.
  bool ValidateLabels();

  /// A detached copy for publication as an immutable serving epoch:
  /// keeps exactly the query state (labels, position arrays, Euler-tour
  /// LCA tables) and sheds everything maintenance-only — including the
  /// whole embedded CH index, which Query() never reads. The copy
  /// answers Query() but must never be maintained.
  H2hIndex PublishCopy() const;

 private:
  H2hIndex() = default;

  uint32_t Lca(Vertex s, Vertex t) const;
  /// Distance between v and its ancestor at depth j via the DP lookup.
  Weight DistToAncestor(Vertex v, uint32_t j) const {
    return dist_pool_[off_[v] + j];
  }
  /// DP recompute of one label cell (reads only ancestor labels).
  Weight RecomputeCell(Vertex v, uint32_t j) const;
  void LabelPhase(const std::vector<ChIndex::ChangedEdge>& changed_edges,
                  Maintenance mode, bool increase);

  Graph* g_ = nullptr;
  ChIndex ch_;

  // Tree decomposition.
  std::vector<uint32_t> parent_;      // kNoParent for the root
  std::vector<uint32_t> depth_;
  std::vector<uint32_t> child_off_;   // CSR children lists
  std::vector<Vertex> child_pool_;
  uint32_t root_ = 0;
  uint32_t tree_height_ = 0;

  // Labels.
  std::vector<uint64_t> off_;         // off_[v+1]-off_[v] = depth(v)+1
  std::vector<Vertex> anc_pool_;      // ancestor arrays
  std::vector<Weight> dist_pool_;     // distance arrays
  std::vector<uint32_t> pos_off_;     // position arrays (depths of X(v))
  std::vector<uint32_t> pos_pool_;

  // Euler-tour LCA with sparse table over (depth, vertex).
  std::vector<uint32_t> euler_first_;
  std::vector<uint32_t> euler_vertex_;
  std::vector<uint32_t> euler_depth_;
  std::vector<std::vector<uint32_t>> sparse_;  // argmin positions

  // Maintenance scratch.
  std::vector<uint32_t> anchor_stamp_;
  std::vector<uint32_t> below_stamp_;  // subtree-contains-anchor marks
  uint32_t epoch_ = 0;
  std::vector<uint32_t> dirty_count_;  // per column
  std::vector<uint32_t> active_cols_;

  MaintenanceStats stats_;
  double build_seconds_ = 0;

  static constexpr uint32_t kNoParent = UINT32_MAX;
};

}  // namespace stl

#endif  // STL_BASELINES_H2H_H_
