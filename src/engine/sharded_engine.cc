#include "engine/sharded_engine.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/thread_pool.h"
#include "partition/cells.h"
#include "util/logging.h"
#include "util/simd.h"

namespace stl {

namespace {

/// Saturates the three-term routing sums back into the Weight range.
inline Weight ClampInf(uint64_t d) {
  return d >= kInfDistance ? kInfDistance
                           : static_cast<Weight>(d);
}

/// splitmix64 finalizer: scatters the (vertex, shard) key across the
/// row-cache slot array.
inline uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Fans BoundaryOverlay::RebuildClique's per-source searches out across
// the core's reader pool. The writer participates as one worker, so
// progress never depends on the pool: rejected enqueues (shutdown) or
// a busy pool just mean fewer helpers. Run returns only after every
// launched helper finished (mutex/cv join — the join also orders the
// helpers' row writes before the writer's reads).
class PoolExecutor final : public OverlayExecutor {
 public:
  explicit PoolExecutor(ThreadPool* pool) : pool_(pool) {}

  uint32_t Width() const override {
    return static_cast<uint32_t>(std::max(1, pool_->num_threads()));
  }

  void Run(const std::function<void()>& worker) override {
    const uint32_t width = Width();
    // Helpers share the reader pool's task queue, so under query load
    // they would sit behind pending query chunks and the writer would
    // block on them for nothing. Fan out only when the pool is idle
    // (the common case for update-dominated phases); otherwise the
    // writer runs the whole recompute inline.
    const uint32_t helpers = pool_->queue_depth() == 0 ? width - 1 : 0;
    // Heap-held latch: a helper's final unlock may race Run's return,
    // so the state must outlive Run (each helper keeps a reference).
    struct Latch {
      std::mutex mu;
      std::condition_variable cv;
      uint32_t remaining = 0;
    };
    auto latch = std::make_shared<Latch>();
    for (uint32_t i = 0; i < helpers; ++i) {
      {
        std::lock_guard<std::mutex> lock(latch->mu);
        ++latch->remaining;
      }
      const bool ok = pool_->Enqueue([&worker, latch] {
        worker();
        std::lock_guard<std::mutex> lock(latch->mu);
        if (--latch->remaining == 0) latch->cv.notify_all();
      });
      if (!ok) {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->remaining;  // pool down; the inline worker covers it
      }
    }
    worker();
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
  }

 private:
  ThreadPool* pool_;
};

/// Fills `out` with the shard-local distances from global vertex
/// `global` (owned by shard `shard`) to that shard's boundary set S_i;
/// returns the row width |S_i|. Thin wrapper over the shared row-fetch
/// surface (index/overlay.h) that shard replicas also serve from.
uint32_t FillBoundaryRow(const ShardedSnapshot& snap, uint32_t shard,
                         Vertex global, std::vector<Weight>* out) {
  return FillShardBoundaryRow(*snap.layout, shard,
                              *snap.shards[shard]->view, global, out);
}

/// FillBoundaryRow behind the shard-epoch-keyed row cache (when one is
/// armed): a hit skips the |S_i| shard queries entirely. Cached rows
/// are validated by (shard, vertex, shard_epoch), so a hit returns the
/// exact same values FillBoundaryRow would compute on this snapshot —
/// bit-identical routing either way.
uint32_t CachedBoundaryRow(const ShardedSnapshot& snap, uint32_t shard,
                           Vertex global, BoundaryRowCache* cache,
                           std::vector<Weight>* out) {
  if (cache == nullptr) return FillBoundaryRow(snap, shard, global, out);
  const ShardLayout::Shard& sh = snap.layout->shards[shard];
  const uint32_t width = static_cast<uint32_t>(sh.boundary_local.size());
  const uint64_t shard_epoch = snap.shards[shard]->shard_epoch;
  out->resize(width);
  if (cache->Lookup(shard, shard_epoch, global, width, out->data())) {
    return width;
  }
  FillBoundaryRow(snap, shard, global, out);
  cache->Insert(shard, shard_epoch, global, width, out->data());
  return width;
}

// Per-chunk scratch for batched routing: memoises the ds/dt
// boundary-distance rows per endpoint, plus the shared inner vector
// min_{b2} D[b1][b2] + dt[b2] of the CURRENT (source cell, target
// cell, target) group. Chunks route in BatchSortKey order, so a
// group's queries are adjacent and one cached vector covers them —
// full-width keys, no packing, no collision hazard. Valid for exactly
// one snapshot (the batch's pinned epoch).
struct BatchRouteScratch {
  // Global vertex -> its shard-local boundary-distance row. Node-based
  // map: references stay valid across later insertions.
  std::unordered_map<Vertex, std::vector<Weight>> rows;
  // The engine-lifetime row cache behind the per-chunk memo (nullptr
  // when disabled): misses here first probe the cache, and fresh rows
  // are published back so later batches and per-query routing hit.
  BoundaryRowCache* cache = nullptr;
  // The last group's inner vector (over S_{inner_cs}).
  uint64_t inner_cs = ~uint64_t{0};
  uint64_t inner_ct = ~uint64_t{0};
  Vertex inner_t = 0;
  std::vector<Weight> inner;

  const std::vector<Weight>& Row(const ShardedSnapshot& snap,
                                 uint32_t shard, Vertex v) {
    auto [it, fresh] = rows.try_emplace(v);
    if (fresh) CachedBoundaryRow(snap, shard, v, cache, &it->second);
    return it->second;
  }

  const std::vector<Weight>& Inner(const ShardedSnapshot& snap,
                                   uint32_t cs, uint32_t ct, Vertex t) {
    if (inner_cs != cs || inner_ct != ct || inner_t != t) {
      inner_cs = cs;
      inner_ct = ct;
      inner_t = t;
      const std::vector<Weight>& dt = Row(snap, ct, t);
      const ShardLayout::Shard& sshard = snap.layout->shards[cs];
      inner.resize(sshard.boundary_pos.size());
      // The packed-row batch entry point: one SIMD min-plus per b1 row
      // of shard ct's packed block (index/overlay.h).
      snap.overlay->MinPlusRowsInto(
          ct, sshard.boundary_pos.data(),
          static_cast<uint32_t>(sshard.boundary_pos.size()), dt.data(),
          inner.data());
    }
    return inner;
  }
};

/// The batched router: identical minima (and identical arithmetic
/// ranges) to ShardedSnapshot::Query, with the ds/dt rows and the
/// per-group inner vectors coming from the scratch memo — answers are
/// bit-identical to the per-query path on the same snapshot.
Weight RouteBatched(const ShardedSnapshot& snap, Vertex s, Vertex t,
                    BatchRouteScratch* scratch) {
  const ShardLayout& lay = *snap.layout;
  STL_DCHECK(s < lay.shard_of_vertex.size());
  STL_DCHECK(t < lay.shard_of_vertex.size());
  if (s == t) return 0;
  const uint32_t cs = lay.shard_of_vertex[s];
  const uint32_t ct = lay.shard_of_vertex[t];
  const bool s_boundary = cs == CellPartition::kBoundaryCell;
  const bool t_boundary = ct == CellPartition::kBoundaryCell;

  if (s_boundary && t_boundary) {
    return snap.overlay->At(lay.boundary_pos_of_vertex[s],
                            lay.boundary_pos_of_vertex[t]);
  }

  uint64_t best = kInfDistance;
  if (!s_boundary && !t_boundary && cs == ct) {
    best = snap.shards[cs]->view->Query(lay.local_of_vertex[s],
                                        lay.local_of_vertex[t]);
  }

  if (s_boundary) {
    const std::vector<Weight>& dt = scratch->Row(snap, ct, t);
    const uint32_t pos = lay.boundary_pos_of_vertex[s];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(ct, pos), dt.data(),
                            static_cast<uint32_t>(dt.size())));
  } else if (t_boundary) {
    const std::vector<Weight>& ds = scratch->Row(snap, cs, s);
    const uint32_t pos = lay.boundary_pos_of_vertex[t];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(cs, pos), ds.data(),
                            static_cast<uint32_t>(ds.size())));
  } else {
    // General case: min_i ds[i] + inner[i], where inner is shared by
    // every query of the (cs, ct, t) group. All terms are <= 3 *
    // kInfDistance, so the uint32 min-plus cannot wrap and the minimum
    // equals the per-query path's pruned double loop exactly.
    const std::vector<Weight>& ds = scratch->Row(snap, cs, s);
    const std::vector<Weight>& inner = scratch->Inner(snap, cs, ct, t);
    best = std::min<uint64_t>(
        best, MinPlusReduce(ds.data(), inner.data(),
                            static_cast<uint32_t>(ds.size())));
  }
  return ClampInf(best);
}

ServingCoreOptions CoreOptions(const ShardedEngineOptions& options) {
  ServingCoreOptions core;
  core.num_query_threads = options.num_query_threads;
  core.max_batch_size = options.max_batch_size;
  core.result_cache_entries = options.result_cache_entries;
  core.serving = options.serving;
  return core;
}

}  // namespace

uint32_t ChooseShardCount(uint32_t num_vertices,
                          double updates_per_second) {
  // Locality target from BENCH_sharded.json: cells of a few thousand
  // vertices keep per-shard repair and republish cheap while |S| (and
  // with it overlay rebuild cost) stays a small fraction of |V|. Below
  // ~2 cells' worth of vertices, sharding only adds boundary overhead.
  constexpr uint32_t kTargetCellVertices = 4096;
  constexpr uint32_t kMaxShards = 64;
  uint32_t k = num_vertices / kTargetCellVertices;
  k = std::max(k, 1u);
  k = std::min(k, kMaxShards);
  // Update pressure: every effective batch republishes the overlay,
  // whose per-epoch micros still grow with k in BENCH_sharded.json —
  // but incremental row repair cut the localized (single-cell) epoch
  // cost ~10x (STL k=4: ~1140 us full republish vs ~365 us repaired,
  // ~130 us at k=3, with only the dirty-row set re-run), so the engine
  // now tolerates an order of magnitude more update traffic before
  // trading shards away. Halve k per decade of sustained update rate
  // beyond ~1000/s — only a truly write-dominated feed wants fewer,
  // bigger shards.
  double rate = updates_per_second;
  while (k > 1 && rate >= 1000.0) {
    k = (k + 1) / 2;
    rate /= 10.0;
  }
  return k;
}

// ----------------------------------------------------- ShardedSnapshot

namespace {

/// The per-query router: ShardedSnapshot::Query's decomposition, with
/// the ds/dt rows optionally served from the engine's row cache
/// (`cache == nullptr` computes them fresh — the uncached reference
/// path tests and audits run against). Cached and fresh rows are
/// bit-identical, so both modes return the same distances.
Weight RouteSingle(const ShardedSnapshot& snap, Vertex s, Vertex t,
                   BoundaryRowCache* cache) {
  const ShardLayout& lay = *snap.layout;
  STL_DCHECK(s < lay.shard_of_vertex.size());
  STL_DCHECK(t < lay.shard_of_vertex.size());
  if (s == t) return 0;
  const uint32_t cs = lay.shard_of_vertex[s];
  const uint32_t ct = lay.shard_of_vertex[t];
  const bool s_boundary = cs == CellPartition::kBoundaryCell;
  const bool t_boundary = ct == CellPartition::kBoundaryCell;

  if (s_boundary && t_boundary) {
    // The overlay table is already the exact full-graph distance.
    return snap.overlay->At(lay.boundary_pos_of_vertex[s],
                            lay.boundary_pos_of_vertex[t]);
  }

  // Per-reader scratch for the shard-to-boundary distance arrays; sized
  // to the largest S_i seen, reused across snapshots and epochs.
  thread_local std::vector<Weight> ds_scratch;
  thread_local std::vector<Weight> dt_scratch;

  uint64_t best = kInfDistance;
  if (!s_boundary && !t_boundary && cs == ct) {
    // Same cell: the path may stay inside the shard entirely...
    best = snap.shards[cs]->view->Query(lay.local_of_vertex[s],
                                        lay.local_of_vertex[t]);
    // ...or leave through the boundary and come back (covered below;
    // D[b][b] = 0 makes the touch-and-return case a special case of it).
  }

  if (s_boundary) {
    // First boundary vertex of any path from s is s itself:
    // min over b2 in S_ct of D[s][b2] + d_shard(b2, t).
    const uint32_t width =
        CachedBoundaryRow(snap, ct, t, cache, &dt_scratch);
    const uint32_t pos = lay.boundary_pos_of_vertex[s];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(ct, pos),
                            dt_scratch.data(), width));
  } else if (t_boundary) {
    // Mirror image (distances are symmetric on an undirected graph).
    const uint32_t width =
        CachedBoundaryRow(snap, cs, s, cache, &ds_scratch);
    const uint32_t pos = lay.boundary_pos_of_vertex[t];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(cs, pos),
                            ds_scratch.data(), width));
  } else {
    // General case: decompose at the first and last boundary vertices.
    const uint32_t sw = CachedBoundaryRow(snap, cs, s, cache, &ds_scratch);
    const uint32_t tw = CachedBoundaryRow(snap, ct, t, cache, &dt_scratch);
    const ShardLayout::Shard& sshard = lay.shards[cs];
    for (uint32_t i = 0; i < sw; ++i) {
      if (ds_scratch[i] >= kInfDistance || ds_scratch[i] >= best) continue;
      // Inner min over b2 on the packed row: contiguous SIMD min-plus.
      const Weight inner =
          MinPlusReduce(snap.overlay->PackedRow(ct, sshard.boundary_pos[i]),
                        dt_scratch.data(), tw);
      best = std::min<uint64_t>(
          best, static_cast<uint64_t>(ds_scratch[i]) + inner);
    }
  }
  return ClampInf(best);
}

}  // namespace

Weight ShardedSnapshot::Query(Vertex s, Vertex t) const {
  // Uncached on purpose: this is the reference implementation that
  // tests, audits and external snapshot holders run against.
  return RouteSingle(*this, s, t, /*cache=*/nullptr);
}

// ----------------------------------------------------- BoundaryRowCache

void BoundaryRowCache::Init(size_t entries, uint32_t max_width) {
  if (entries == 0 || max_width == 0) return;
  size_t cap = 1;
  while (cap < entries) cap <<= 1;
  mask_ = cap - 1;
  max_width_ = max_width;
  slots_.reset(new Slot[cap]);
  rows_.reset(new std::atomic<Weight>[cap * max_width]);
  for (size_t i = 0; i < cap * max_width; ++i) {
    rows_[i].store(kInfDistance, std::memory_order_relaxed);
  }
}

bool BoundaryRowCache::Lookup(uint32_t shard, uint64_t shard_epoch,
                              Vertex v, uint32_t width,
                              Weight* out) const {
  STL_DCHECK(width <= max_width_);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t key = (static_cast<uint64_t>(v) << 32) | shard;
  const size_t idx = MixKey(key) & mask_;
  const Slot& slot = slots_[idx];
  // Seqlock read protocol (mirrors ServingCore's ResultCache): an odd
  // or moved version means a concurrent writer — degrade to a miss.
  const uint64_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 & 1) return false;
  const uint64_t k = slot.key.load(std::memory_order_relaxed);
  const uint64_t e = slot.epoch.load(std::memory_order_relaxed);
  const std::atomic<Weight>* row = rows_.get() + idx * max_width_;
  for (uint32_t i = 0; i < width; ++i) {
    out[i] = row[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.version.load(std::memory_order_relaxed) != v1) return false;
  if (k != key || e != shard_epoch) return false;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BoundaryRowCache::Insert(uint32_t shard, uint64_t shard_epoch,
                              Vertex v, uint32_t width,
                              const Weight* row_values) {
  STL_DCHECK(width <= max_width_);
  const uint64_t key = (static_cast<uint64_t>(v) << 32) | shard;
  const size_t idx = MixKey(key) & mask_;
  Slot& slot = slots_[idx];
  uint64_t v0 = slot.version.load(std::memory_order_relaxed);
  if (v0 & 1) return;  // another writer owns the slot; drop the insert
  if (!slot.version.compare_exchange_strong(v0, v0 + 1,
                                            std::memory_order_acq_rel)) {
    return;
  }
  slot.key.store(key, std::memory_order_relaxed);
  slot.epoch.store(shard_epoch, std::memory_order_relaxed);
  std::atomic<Weight>* row = rows_.get() + idx * max_width_;
  for (uint32_t i = 0; i < width; ++i) {
    row[i].store(row_values[i], std::memory_order_relaxed);
  }
  slot.version.store(v0 + 2, std::memory_order_release);
}

// ------------------------------------------------------- ShardedEngine

ShardedEngine::ShardedEngine(Graph graph,
                             const HierarchyOptions& hierarchy_options,
                             const ShardedEngineOptions& options)
    : options_(options), core_(&policy_, CoreOptions(options)) {
  graph_ = std::make_unique<Graph>(std::move(graph));
  const uint32_t target =
      options_.target_shards > 0
          ? options_.target_shards
          : ChooseShardCount(graph_->NumVertices(),
                             options_.expected_update_rate);
  STL_CHECK_GE(target, 1u);

  const CellPartition cells =
      PartitionCells(*graph_, target, hierarchy_options);
  ShardPlan plan = BuildShardPlan(*graph_, cells);
  layout_ = std::make_shared<const ShardLayout>(std::move(plan.layout));

  const uint32_t k = layout_->num_shards();
  states_.resize(k);
  for (uint32_t c = 0; c < k; ++c) {
    states_[c].graph =
        std::make_unique<Graph>(std::move(plan.shard_graphs[c]));
  }
  // The k master builds touch disjoint state (each only its own
  // subgraph), so build them in parallel: startup approaches the
  // slowest single shard instead of the sum.
  {
    std::vector<std::future<void>> builds;
    builds.reserve(k);
    for (uint32_t c = 0; c < k; ++c) {
      builds.push_back(std::async(std::launch::async, [&, c] {
        states_[c].index = MakeDistanceIndex(options_.backend,
                                             states_[c].graph.get(),
                                             hierarchy_options);
      }));
    }
    for (auto& b : builds) b.get();
  }
  if (k > 0) capabilities_ = states_[0].index->capabilities();
  overlay_ = std::make_unique<BoundaryOverlay>(layout_.get(), *graph_);
  overlay_->set_repair_threshold(options_.overlay_repair_threshold);
  uint32_t max_width = 0;
  for (uint32_t c = 0; c < k; ++c) {
    max_width = std::max(
        max_width,
        static_cast<uint32_t>(layout_->shards[c].boundary_local.size()));
  }
  row_cache_.Init(options_.boundary_row_cache_entries, max_width);
  shard_updates_.reset(new std::atomic<uint64_t>[std::max(k, 1u)]);
  for (uint32_t c = 0; c < k; ++c) shard_updates_[c].store(0);
  serving_.resize(k);

  // Epoch 0 baseline: clones from construction are not publish cost.
  harvested_graph_chunks_ = graph_->cow_stats().chunks_cloned;
  harvested_graph_bytes_ = graph_->cow_stats().bytes_cloned;
  core_.Start();  // publishes epoch 0, starts the writer
}

ShardedEngine::~ShardedEngine() = default;  // core_ drains first

void ShardedEngine::PublishInitialSnapshot() {
  PoolExecutor executor(core_.pool());
  for (uint32_t c = 0; c < layout_->num_shards(); ++c) {
    PublishInfo info;
    auto view = states_[c].index->PublishView(/*flat_publish=*/false, &info);
    if (states_[c].index->capabilities().fast_point_queries) {
      overlay_->RebuildClique(c, *view, &executor);
    } else {
      overlay_->RebuildClique(c, *states_[c].graph, &executor);
    }
    auto serving = std::make_shared<ShardServing>();
    serving->shard = c;
    serving->shard_epoch = 0;
    serving->view = std::move(view);
    serving_[c] = std::move(serving);
  }
  auto snap = std::make_shared<ShardedSnapshot>();
  snap->epoch = 0;
  snap->graph = *graph_;
  snap->layout = layout_;
  snap->shards = serving_;
  snap->overlay = overlay_->Publish();
  core_.Publish(std::move(snap));
}

// ---------------------------------------------------- the sharded policy

void ShardedEngine::Policy::PublishInitial() {
  engine->PublishInitialSnapshot();
}

Weight ShardedEngine::Policy::ResolveOldWeight(EdgeId e) const {
  return engine->graph_->EdgeWeight(e);
}

void ShardedEngine::Policy::ApplyBatch(const UpdateBatch& batch) {
  engine->ApplyAndPublish(batch);
}

uint32_t ShardedEngine::Policy::NumEdges() const {
  return engine->graph_->NumEdges();
}

Weight ShardedEngine::Policy::Route(const ShardedSnapshot& snap, Vertex s,
                                    Vertex t, StatusCode* code) const {
  (void)code;  // in-process routing cannot fail; *code stays kOk
  return RouteSingle(
      snap, s, t,
      engine->row_cache_.enabled() ? &engine->row_cache_ : nullptr);
}

uint64_t ShardedEngine::Policy::BatchSortKey(const ShardedSnapshot& snap,
                                             const QueryPair& q) const {
  // Group by (source cell, target cell, target): same-group queries
  // share the inner vector and the dt row; same-source runs share ds.
  // Boundary endpoints truncate kBoundaryCell to 0xffff — still a
  // stable group of their own.
  const ShardLayout& lay = *snap.layout;
  const uint64_t cs = lay.shard_of_vertex[q.first] & 0xffff;
  const uint64_t ct = lay.shard_of_vertex[q.second] & 0xffff;
  return (cs << 48) | (ct << 32) | q.second;
}

void ShardedEngine::Policy::RouteSpan(const ShardedSnapshot& snap,
                                      const QueryPair* queries,
                                      const uint32_t* idx, size_t count,
                                      Weight* out,
                                      StatusCode* codes) const {
  (void)codes;  // in-process routing cannot fail; codes stay kOk
  BatchRouteScratch scratch;
  scratch.cache =
      engine->row_cache_.enabled() ? &engine->row_cache_ : nullptr;
  for (size_t j = 0; j < count; ++j) {
    const QueryPair& q = queries[idx[j]];
    out[idx[j]] = RouteBatched(snap, q.first, q.second, &scratch);
  }
}

void ShardedEngine::Policy::AugmentStats(EngineStats* s) const {
  const ShardedEngine& e = *engine;
  s->backend = e.options_.backend;
  s->num_shards = e.layout_->num_shards();
  s->boundary_vertices = e.layout_->num_boundary();
  s->overlay_republishes =
      e.overlay_republishes_.load(std::memory_order_relaxed);
  s->overlay_rebuild_micros =
      static_cast<double>(
          e.overlay_nanos_.load(std::memory_order_relaxed)) /
      1e3;
  s->overlay_repair_micros =
      static_cast<double>(
          e.overlay_repair_nanos_.load(std::memory_order_relaxed)) /
      1e3;
  s->overlay_rows_repaired =
      e.overlay_rows_repaired_.load(std::memory_order_relaxed);
  s->overlay_rows_total =
      e.overlay_rows_total_.load(std::memory_order_relaxed);
  s->overlay_full_rebuilds =
      e.overlay_full_rebuilds_.load(std::memory_order_relaxed);
  s->clique_entries_recomputed =
      e.clique_entries_recomputed_.load(std::memory_order_relaxed);
  s->overlay_bytes_shared =
      e.overlay_bytes_shared_.load(std::memory_order_relaxed);
  s->boundary_row_cache_lookups = e.row_cache_.lookups();
  s->boundary_row_cache_hits = e.row_cache_.hits();
  s->boundary_row_cache_hit_rate =
      s->boundary_row_cache_lookups > 0
          ? static_cast<double>(s->boundary_row_cache_hits) /
                static_cast<double>(s->boundary_row_cache_lookups)
          : 0.0;
  // Honest resident memory of the serving state, wait-free: walk the
  // current (immutable) snapshot, counting each physically shared
  // block once — the per-shard rows report each shard's unique bytes.
  std::shared_ptr<const ShardedSnapshot> snap = e.CurrentSnapshot();
  std::unordered_set<const void*> seen;
  uint64_t bytes = 0;
  s->shards.reserve(e.layout_->num_shards());
  for (uint32_t c = 0; c < e.layout_->num_shards(); ++c) {
    ShardStats row;
    row.shard = c;
    row.cell_vertices = e.layout_->shards[c].num_cell_vertices;
    row.boundary_vertices =
        static_cast<uint32_t>(e.layout_->shards[c].boundary_local.size());
    row.subgraph_edges =
        static_cast<uint32_t>(e.layout_->shards[c].edge_to_global.size());
    row.shard_epoch = snap->shards[c]->shard_epoch;
    row.updates_applied =
        e.shard_updates_[c].load(std::memory_order_relaxed);
    row.resident_bytes = snap->shards[c]->view->AddResidentBytes(&seen);
    bytes += row.resident_bytes;
    s->shards.push_back(row);
  }
  if (snap->overlay != nullptr) {
    // Chunk-level dedup: rows shared with other epochs' tables (or
    // already counted through this walk) are counted once.
    bytes += snap->overlay->AddResidentBytes(&seen);
  }
  bytes += snap->graph.AddResidentBytes(&seen);
  if (seen.insert(e.layout_.get()).second) {
    bytes += e.layout_->MemoryBytes();
  }
  s->resident_index_bytes = bytes;
}

// ------------------------------------------------- submission forwards

std::future<ShardedQueryResult> ShardedEngine::Submit(QueryPair query,
                                                      Deadline deadline) {
  return core_.Submit(query, deadline);
}

ShardedEngine::Ticket ShardedEngine::SubmitBatch(
    const std::vector<QueryPair>& queries, Deadline deadline) {
  return core_.SubmitBatch(queries, deadline);
}

void ShardedEngine::SubmitTagged(QueryPair query, uint64_t tag,
                                 CompletionSink* sink, Deadline deadline) {
  core_.SubmitTagged(query, tag, sink, deadline);
}

ShardedEngine::Ticket ShardedEngine::SubmitBatchTagged(
    const std::vector<QueryPair>& queries,
    const std::vector<uint64_t>& tags, CompletionSink* sink,
    Deadline deadline) {
  return core_.SubmitBatchTagged(queries, tags, sink, deadline);
}

void ShardedEngine::EnqueueUpdate(const WeightUpdate& update) {
  core_.EnqueueUpdate(update.edge, update.new_weight);
}

void ShardedEngine::EnqueueUpdate(EdgeId edge, Weight new_weight) {
  core_.EnqueueUpdate(edge, new_weight);
}

void ShardedEngine::EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
  core_.EnqueueUpdates(updates);
}

void ShardedEngine::Flush() { core_.Flush(); }

std::shared_ptr<const ShardedSnapshot> ShardedEngine::CurrentSnapshot()
    const {
  return core_.CurrentSnapshot();
}

int ShardedEngine::num_query_threads() const {
  return core_.num_query_threads();
}

// --------------------------------------------------- writer apply step

void ShardedEngine::ApplyAndPublish(const UpdateBatch& batch) {
  ServingCounters& counters = core_.counters();
  const uint32_t k = layout_->num_shards();
  // Partition the batch by owning cell; S–S edges go to the overlay.
  std::vector<UpdateBatch> per_shard(k);
  for (const WeightUpdate& u : batch) {
    graph_->SetEdgeWeight(u.edge, u.new_weight);
    const uint32_t owner = layout_->shard_of_edge[u.edge];
    const uint32_t slot = layout_->local_of_edge[u.edge];
    if (owner == ShardLayout::kOverlayShard) {
      overlay_->SetDirectWeight(slot, u.new_weight);
    } else {
      per_shard[owner].push_back(
          WeightUpdate{slot, states_[owner].graph->EdgeWeight(slot),
                       u.new_weight});
    }
  }

  // Maintenance: repair (or rebuild) only the dirtied shards. The
  // STL-P/STL-L choice is made per SHARD batch — each shard amortizes
  // over its own share of the updates.
  for (uint32_t c = 0; c < k; ++c) {
    if (per_shard[c].empty()) continue;
    const MaintenanceStrategy strategy =
        ChooseStrategy(options_.strategy,
                       options_.auto_label_search_threshold,
                       per_shard[c].size());
    counters.batch_counters.Count(
        states_[c].index->ApplyBatch(per_shard[c], strategy));
    shard_updates_[c].fetch_add(per_shard[c].size(),
                                std::memory_order_relaxed);
  }
  counters.updates_applied.fetch_add(batch.size(),
                                     std::memory_order_relaxed);

  // Publication: new views + cliques for dirty shards only, then one
  // overlay publish (incremental row repair when feasible), then the
  // snapshot swap. Clean shards' ShardServing pointers carry over
  // unchanged, and clean overlay rows are pointer-shared.
  Timer publish_timer;
  PoolExecutor executor(core_.pool());
  for (uint32_t c = 0; c < k; ++c) {
    if (per_shard[c].empty()) continue;
    PublishInfo info;
    auto view = states_[c].index->PublishView(/*flat_publish=*/false, &info);
    counters.label_pages_cloned.fetch_add(info.label_pages_cloned,
                                          std::memory_order_relaxed);
    counters.cow_bytes_cloned.fetch_add(info.label_bytes_cloned,
                                        std::memory_order_relaxed);
    counters.publish_bytes_deep_copied.fetch_add(
        info.deep_bytes_copied, std::memory_order_relaxed);
    auto serving = std::make_shared<ShardServing>();
    serving->shard = c;
    serving->shard_epoch = ++states_[c].shard_epoch;
    serving->view = std::move(view);
    Timer overlay_timer;
    // The dirty-clique recompute, fanned across the reader pool. Label
    // backends answer the |S_c|^2 / 2 pairs by point queries against
    // the epoch just published; CH re-derives the clique with |S_c|
    // Dijkstras over the shard's master subgraph (ApplyBatch wrote the
    // new weights into it), which beats that many bidirectional
    // searches.
    if (states_[c].index->capabilities().fast_point_queries) {
      overlay_->RebuildClique(c, *serving->view, &executor);
    } else {
      overlay_->RebuildClique(c, *states_[c].graph, &executor);
    }
    overlay_nanos_.fetch_add(overlay_timer.ElapsedNanos(),
                             std::memory_order_relaxed);
    serving_[c] = std::move(serving);
  }
  bool allow_repair = options_.overlay_incremental;
  FaultInjector* faults = options_.serving.fault_injector;
  if (allow_repair && faults != nullptr &&
      faults->Fire(FaultSite::kOverlayRepair)) {
    allow_repair = false;  // injected: repair "infeasible", rebuild
  }
  Timer overlay_timer;
  OverlayPublishStats overlay_stats;
  auto table = overlay_->Publish(allow_repair, &overlay_stats);
  const uint64_t overlay_publish_nanos = overlay_timer.ElapsedNanos();
  overlay_nanos_.fetch_add(overlay_publish_nanos,
                           std::memory_order_relaxed);
  overlay_repair_nanos_.fetch_add(overlay_publish_nanos,
                                  std::memory_order_relaxed);
  overlay_republishes_.fetch_add(1, std::memory_order_relaxed);
  overlay_rows_repaired_.fetch_add(overlay_stats.rows_repaired,
                                   std::memory_order_relaxed);
  overlay_rows_total_.fetch_add(overlay_stats.rows_total,
                                std::memory_order_relaxed);
  overlay_full_rebuilds_.fetch_add(overlay_stats.full_rebuild ? 1 : 0,
                                   std::memory_order_relaxed);
  clique_entries_recomputed_.fetch_add(
      overlay_stats.clique_entries_recomputed, std::memory_order_relaxed);
  overlay_bytes_shared_.fetch_add(overlay_stats.bytes_shared,
                                  std::memory_order_relaxed);

  // Graph-side CoW accounting (chunks detached by this batch's writes).
  const CowChunkStats gc = graph_->cow_stats();
  counters.graph_chunks_cloned.fetch_add(
      gc.chunks_cloned - harvested_graph_chunks_,
      std::memory_order_relaxed);
  counters.cow_bytes_cloned.fetch_add(
      gc.bytes_cloned - harvested_graph_bytes_, std::memory_order_relaxed);
  harvested_graph_chunks_ = gc.chunks_cloned;
  harvested_graph_bytes_ = gc.bytes_cloned;

  auto snap = std::make_shared<ShardedSnapshot>();
  snap->epoch =
      counters.epochs_published.fetch_add(1, std::memory_order_relaxed) + 1;
  snap->graph = *graph_;  // structural chunk share
  snap->layout = layout_;
  snap->shards = serving_;
  snap->overlay = std::move(table);
  counters.publish_nanos.fetch_add(publish_timer.ElapsedNanos(),
                                   std::memory_order_relaxed);
  core_.Publish(std::move(snap));
}

EngineStats ShardedEngine::Stats() const { return core_.Stats(); }

void ShardedEngine::ResetStats() {
  core_.ResetStats();
  // The per-shard ShardState epochs keep snapshot lineage; they do not
  // reset (mirroring the global epoch allocator).
  overlay_nanos_.store(0, std::memory_order_relaxed);
  overlay_repair_nanos_.store(0, std::memory_order_relaxed);
  overlay_republishes_.store(0, std::memory_order_relaxed);
  overlay_rows_repaired_.store(0, std::memory_order_relaxed);
  overlay_rows_total_.store(0, std::memory_order_relaxed);
  overlay_full_rebuilds_.store(0, std::memory_order_relaxed);
  clique_entries_recomputed_.store(0, std::memory_order_relaxed);
  overlay_bytes_shared_.store(0, std::memory_order_relaxed);
  row_cache_.ResetCounters();
  for (uint32_t c = 0; c < layout_->num_shards(); ++c) {
    shard_updates_[c].store(0, std::memory_order_relaxed);
  }
}

}  // namespace stl
