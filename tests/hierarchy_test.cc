#include "core/tree_hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

TreeHierarchy BuildFor(const Graph& g, uint64_t seed) {
  HierarchyOptions opt;
  opt.seed = seed;
  return TreeHierarchy::Build(g, opt);
}

/// Brute-force ancestor set of v: all vertices in nodes on the root path
/// with tau <= tau(v).
std::set<Vertex> BruteAncestors(const TreeHierarchy& h, Vertex v) {
  std::set<Vertex> anc;
  for (uint32_t nid : h.PathOf(h.NodeOf(v))) {
    for (Vertex w : h.VerticesOf(nid)) {
      if (h.Tau(w) <= h.Tau(v)) anc.insert(w);
    }
  }
  return anc;
}

class HierarchySeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HierarchySeeds, StructuralInvariants) {
  Graph g = testing_util::SmallRoadNetwork(13, GetParam());
  TreeHierarchy h = BuildFor(g, GetParam());
  ASSERT_EQ(h.NumVertices(), g.NumVertices());

  // ell total + surjective; tau consistent with node order.
  std::vector<int> seen(g.NumVertices(), 0);
  uint64_t entries = 0;
  for (uint32_t nid = 0; nid < h.NumNodes(); ++nid) {
    const auto& node = h.GetNode(nid);
    EXPECT_GE(node.num_vertices, 1u);
    uint32_t before = node.cum_vertices - node.num_vertices;
    auto verts = h.VerticesOf(nid);
    for (uint32_t p = 0; p < verts.size(); ++p) {
      Vertex v = verts[p];
      ++seen[v];
      EXPECT_EQ(h.NodeOf(v), nid);
      EXPECT_EQ(h.Tau(v), before + p);
    }
    // Root path consistency.
    auto path = h.PathOf(nid);
    ASSERT_EQ(path.size(), node.level + 1);
    EXPECT_EQ(path[node.level], nid);
    if (node.parent != TreeHierarchy::kNoNode) {
      EXPECT_EQ(path[node.level - 1], node.parent);
      EXPECT_EQ(h.GetNode(node.parent).level + 1, node.level);
      EXPECT_EQ(node.cum_vertices,
                h.GetNode(node.parent).cum_vertices + node.num_vertices);
    }
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(seen[v], 1);
    entries += h.LabelSize(v);
  }
  EXPECT_EQ(entries, h.TotalLabelEntries());
}

TEST_P(HierarchySeeds, EdgesJoinComparableVertices) {
  // Lemma 5.3: for every edge, one endpoint precedes the other, i.e. one
  // endpoint's node is an ancestor-or-self of the other's.
  Graph g = testing_util::SmallRoadNetwork(13, GetParam());
  TreeHierarchy h = BuildFor(g, GetParam());
  for (const Edge& e : g.edges()) {
    uint32_t nu = h.NodeOf(e.u), nv = h.NodeOf(e.v);
    auto pu = h.PathOf(nu);
    auto pv = h.PathOf(nv);
    bool comparable =
        (pu.size() <= pv.size() && pv[pu.size() - 1] == nu) ||
        (pv.size() <= pu.size() && pu[pv.size() - 1] == nv);
    EXPECT_TRUE(comparable) << "edge " << e.u << "-" << e.v;
    EXPECT_NE(h.Tau(e.u), h.Tau(e.v));
  }
}

TEST_P(HierarchySeeds, LcaLevelMatchesPathComparison) {
  Graph g = testing_util::SmallRoadNetwork(13, GetParam());
  TreeHierarchy h = BuildFor(g, GetParam());
  Rng rng(GetParam() * 7 + 1);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    auto ps = h.PathOf(h.NodeOf(s));
    auto pt = h.PathOf(h.NodeOf(t));
    uint32_t want = 0;
    while (want < ps.size() && want < pt.size() && ps[want] == pt[want]) {
      ++want;
    }
    ASSERT_GT(want, 0u);  // shared root
    EXPECT_EQ(h.LcaLevel(s, t), want - 1) << "s=" << s << " t=" << t;
    EXPECT_EQ(h.LcaNode(s, t), ps[want - 1]);
  }
}

TEST_P(HierarchySeeds, CommonAncestorCountMatchesBruteForce) {
  Graph g = testing_util::SmallRoadNetwork(13, GetParam());
  TreeHierarchy h = BuildFor(g, GetParam());
  Rng rng(GetParam() * 11 + 3);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    auto as = BruteAncestors(h, s);
    auto at = BruteAncestors(h, t);
    std::vector<Vertex> common;
    std::set_intersection(as.begin(), as.end(), at.begin(), at.end(),
                          std::back_inserter(common));
    EXPECT_EQ(h.CommonAncestorCount(s, t), common.size())
        << "s=" << s << " t=" << t;
  }
}

TEST_P(HierarchySeeds, CommonAncestorHitsSomeShortestPath) {
  // Definition 4.1 condition (2), sampled: between any two vertices some
  // shortest path contains a common ancestor. We verify the weaker (and
  // sufficient for Lemma 4.7) property that *the* 2-hop bound through
  // common ancestors is exact — see labelling_test for the full check.
  Graph g = testing_util::SmallRoadNetwork(9, GetParam());
  TreeHierarchy h = BuildFor(g, GetParam());
  Dijkstra dij(g);
  Rng rng(GetParam() * 13 + 5);
  for (int i = 0; i < 40; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Weight want = dij.Distance(s, t);
    if (want == kInfDistance) continue;
    auto as = BruteAncestors(h, s);
    auto at = BruteAncestors(h, t);
    Weight best = kInfDistance;
    Dijkstra ds(g), dt(g);
    const auto& from_s = ds.AllDistances(s);
    const auto& from_t = dt.AllDistances(t);
    for (Vertex r : as) {
      if (at.count(r)) {
        best = std::min(best, SaturatingAdd(from_s[r], from_t[r]));
      }
    }
    EXPECT_EQ(best, want) << "s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchySeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(HierarchyTest, AncestorAtWalksRootPath) {
  Graph g = testing_util::SmallRoadNetwork(11, 17);
  TreeHierarchy h = BuildFor(g, 17);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Vertex v = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    auto anc = BruteAncestors(h, v);
    std::vector<Vertex> ordered(anc.begin(), anc.end());
    std::sort(ordered.begin(), ordered.end(),
              [&h](Vertex a, Vertex b) { return h.Tau(a) < h.Tau(b); });
    ASSERT_EQ(ordered.size(), h.LabelSize(v));
    for (uint32_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(h.AncestorAt(v, j), ordered[j]);
    }
    EXPECT_EQ(h.AncestorAt(v, h.Tau(v)), v);
  }
}

TEST(HierarchyTest, DepthWithinBitstringCapacity) {
  Graph g = testing_util::SmallRoadNetwork(18, 4);
  TreeHierarchy h = BuildFor(g, 4);
  EXPECT_LE(h.Depth(), TreeHierarchy::kMaxDepth);
  EXPECT_GE(h.Depth(), 2u);
  EXPECT_GE(h.MaxLabelSize(), h.Depth());
}

TEST(HierarchyTest, SingleVertexGraph) {
  Graph g = testing_util::MakeGraph(1, {});
  TreeHierarchy h = BuildFor(g, 1);
  EXPECT_EQ(h.NumNodes(), 1u);
  EXPECT_EQ(h.Tau(0), 0u);
  EXPECT_EQ(h.LabelSize(0), 1u);
  EXPECT_EQ(h.CommonAncestorCount(0, 0), 1u);
}

TEST(HierarchyTest, SerializeRoundTrip) {
  Graph g = testing_util::SmallRoadNetwork(10, 8);
  TreeHierarchy h = BuildFor(g, 8);
  const std::string path = std::string(::testing::TempDir()) + "/h.bin";
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x1234, 1).ok());
    ASSERT_TRUE(h.Serialize(&w).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  TreeHierarchy h2;
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0x1234, 1).ok());
  ASSERT_TRUE(h2.Deserialize(&r).ok());
  EXPECT_TRUE(h == h2);
}

TEST(HierarchyTest, DeserializeRejectsTruncation) {
  Graph g = testing_util::SmallRoadNetwork(8, 8);
  TreeHierarchy h = BuildFor(g, 8);
  const std::string path = std::string(::testing::TempDir()) + "/h_tr.bin";
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x1234, 1).ok());
    ASSERT_TRUE(h.Serialize(&w).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  // Truncate the file to half.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_EQ(0, ftruncate(fileno(f), size / 2));
    std::fclose(f);
  }
  TreeHierarchy h2;
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0x1234, 1).ok());
  EXPECT_FALSE(h2.Deserialize(&r).ok());
}

}  // namespace
}  // namespace stl
