#include "graph/dimacs.h"

#include <gtest/gtest.h>

#include <fstream>

#include "tests/test_util.h"

namespace stl {
namespace {

TEST(DimacsTest, ParsesMinimalFile) {
  Result<Graph> g = ParseDimacs(
      "c a comment\n"
      "p sp 3 4\n"
      "a 1 2 10\n"
      "a 2 1 10\n"
      "a 2 3 20\n"
      "a 3 2 20\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().NumVertices(), 3u);
  EXPECT_EQ(g.value().NumEdges(), 2u);  // undirected collapse
  auto e = g.value().FindEdge(0, 1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(g.value().EdgeWeight(*e), 10u);
}

TEST(DimacsTest, KeepsMinWeightOnAsymmetricArcs) {
  Result<Graph> g = ParseDimacs("p sp 2 2\na 1 2 10\na 2 1 7\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().EdgeWeight(0), 7u);
}

TEST(DimacsTest, IgnoresSelfLoops) {
  Result<Graph> g = ParseDimacs("p sp 2 3\na 1 1 5\na 1 2 5\na 2 1 5\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumEdges(), 1u);
}

TEST(DimacsTest, EmptyLinesAndCommentsOk) {
  Result<Graph> g =
      ParseDimacs("c x\n\nc y\np sp 2 2\n\na 1 2 3\na 2 1 3\n");
  ASSERT_TRUE(g.ok());
}

TEST(DimacsTest, MissingProblemLine) {
  Result<Graph> g = ParseDimacs("a 1 2 3\n");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST(DimacsTest, DuplicateProblemLine) {
  Result<Graph> g = ParseDimacs("p sp 2 0\np sp 2 0\n");
  ASSERT_FALSE(g.ok());
}

TEST(DimacsTest, BadProblemKind) {
  Result<Graph> g = ParseDimacs("p max 2 2\na 1 2 3\na 2 1 3\n");
  ASSERT_FALSE(g.ok());
}

TEST(DimacsTest, EndpointOutOfRange) {
  Result<Graph> g = ParseDimacs("p sp 2 2\na 1 3 5\na 3 1 5\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("out of range"), std::string::npos);
}

TEST(DimacsTest, ZeroVertexIdRejected) {
  Result<Graph> g = ParseDimacs("p sp 2 2\na 0 1 5\na 1 0 5\n");
  ASSERT_FALSE(g.ok());
}

TEST(DimacsTest, ZeroWeightRejected) {
  Result<Graph> g = ParseDimacs("p sp 2 2\na 1 2 0\na 2 1 0\n");
  ASSERT_FALSE(g.ok());
}

TEST(DimacsTest, ArcCountMismatch) {
  Result<Graph> g = ParseDimacs("p sp 2 5\na 1 2 3\na 2 1 3\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("mismatch"), std::string::npos);
}

TEST(DimacsTest, UnknownTagRejected) {
  Result<Graph> g = ParseDimacs("p sp 2 0\nz 1 2 3\n");
  ASSERT_FALSE(g.ok());
}

TEST(DimacsTest, MissingFileIsIOError) {
  Result<Graph> g = ReadDimacs("/nonexistent/path/x.gr");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

TEST(DimacsTest, RoundTripThroughString) {
  Graph g = testing_util::SmallRoadNetwork(9, 77);
  std::string text = DimacsToString(g, "round trip");
  Result<Graph> back = ParseDimacs(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const Graph& g2 = back.value();
  ASSERT_EQ(g2.NumVertices(), g.NumVertices());
  ASSERT_EQ(g2.NumEdges(), g.NumEdges());
  for (const Edge& e : g.edges()) {
    auto id = g2.FindEdge(e.u, e.v);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(g2.EdgeWeight(*id), e.w);
  }
}

TEST(DimacsTest, RoundTripThroughFile) {
  Graph g = testing_util::SmallRoadNetwork(7, 3);
  std::string path = std::string(::testing::TempDir()) + "/rt.gr";
  ASSERT_TRUE(WriteDimacs(g, path, "file round trip").ok());
  Result<Graph> back = ReadDimacs(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().NumVertices(), g.NumVertices());
  EXPECT_EQ(back.value().NumEdges(), g.NumEdges());
}

TEST(DimacsTest, WriteToBadPathFails) {
  Graph g = testing_util::MakeGraph(2, {{0, 1, 3}});
  Status s = WriteDimacs(g, "/nonexistent/dir/file.gr");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace stl
