#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace stl {

FrameServer::FrameServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  if (options_.worker_threads > 0) {
    workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
}

FrameServer::~FrameServer() { Stop(); }

Status FrameServer::Start() {
  STL_CHECK(!started_) << "FrameServer::Start called twice";
  started_ = true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("server: socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("server: bad bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return Status::IOError(std::string("server: bind: ") +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IOError(std::string("server: listen: ") +
                           std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  STL_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0);
  port_ = ntohs(bound.sin_port);

  loop_.Start();
  loop_.Post([this] {
    loop_.RegisterFd(listen_fd_, EPOLLIN,
                     [this](uint32_t) { OnAcceptReady(); });
  });
  return Status::OK();
}

void FrameServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Drain handler workers first so in-flight responses get posted while
  // the loop still accepts posts; then tear down connections and the
  // listener from the loop thread; then join the loop.
  if (workers_) workers_->Shutdown();
  if (started_) {
    loop_.Post([this] {
      std::vector<std::shared_ptr<Conn>> live;
      live.reserve(conns_.size());
      for (auto& [ptr, conn] : conns_) live.push_back(conn);
      for (auto& conn : live) conn->Shutdown();
      if (listen_fd_ >= 0) {
        loop_.UnregisterFd(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
    });
    loop_.Stop();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void FrameServer::OnAcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept error; the listener stays armed
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    AdoptClient(fd);
  }
}

void FrameServer::AdoptClient(int fd) {
  // The callbacks need the conn they belong to, which does not exist
  // until Adopt() returns — bridge with a holder. on_close resets the
  // holder to break the conn -> callbacks -> holder -> conn cycle.
  auto holder = std::make_shared<std::shared_ptr<Conn>>();
  Conn::Callbacks cb;
  cb.on_frame = [this, holder](WireFrame frame) {
    if (*holder) HandleFrame(*holder, std::move(frame));
  };
  cb.on_close = [this, holder](const std::string&) {
    if (*holder) {
      conns_.erase(holder->get());
      holder->reset();
    }
  };
  *holder = Conn::Adopt(&loop_, fd, std::move(cb), options_.faults);
  conns_.emplace(holder->get(), *holder);
}

void FrameServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                              WireFrame frame) {
  const uint64_t tag = frame.tag;
  if (workers_) {
    workers_->Enqueue([this, conn, tag, payload = std::move(frame.payload)] {
      std::vector<uint8_t> response = handler_(payload.data(), payload.size());
      loop_.Post([conn, tag, response = std::move(response)] {
        conn->SendFrame(tag, response);
      });
    });
    return;
  }
  std::vector<uint8_t> response =
      handler_(frame.payload.data(), frame.payload.size());
  conn->SendFrame(tag, response);
}

}  // namespace stl
