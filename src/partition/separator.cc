#include "partition/separator.h"

#include <algorithm>
#include <unordered_map>

namespace stl {

SeparatorFinder::SeparatorFinder(const Graph& g, uint64_t seed)
    : g_(g),
      rng_(seed),
      region_stamp_(g.NumVertices(), 0),
      side_stamp_(g.NumVertices(), 0),
      side_(g.NumVertices(), 0),
      visit_stamp_(g.NumVertices(), 0) {}

void SeparatorFinder::MarkRegion(const std::vector<Vertex>& region) {
  ++epoch_;
  for (Vertex v : region) region_stamp_[v] = epoch_;
}

void SeparatorFinder::BfsOrder(Vertex start,
                               const std::vector<Vertex>& region,
                               std::vector<Vertex>* order) {
  ++visit_epoch_;
  order->clear();
  order->reserve(region.size());
  queue_.clear();
  queue_.push_back(start);
  visit_stamp_[start] = visit_epoch_;
  size_t head = 0;
  while (head < queue_.size()) {
    Vertex v = queue_[head++];
    order->push_back(v);
    for (const Arc& a : g_.ArcsOf(v)) {
      if (InRegion(a.head) && visit_stamp_[a.head] != visit_epoch_) {
        visit_stamp_[a.head] = visit_epoch_;
        queue_.push_back(a.head);
      }
    }
  }
}

uint32_t SeparatorFinder::TrySplit(Vertex start,
                                   const std::vector<Vertex>& region,
                                   SeparatorResult* out) {
  std::vector<Vertex> order;
  BfsOrder(start, region, &order);
  if (order.size() != region.size()) return UINT32_MAX;  // not connected

  const size_t half = (region.size() + 1) / 2;
  ++side_epoch_;
  for (size_t i = 0; i < order.size(); ++i) {
    side_stamp_[order[i]] = side_epoch_;
    side_[order[i]] = i < half ? 0 : 1;
  }
  // Collect A-B cut edges.
  std::vector<std::pair<Vertex, Vertex>> cut;  // (a-side, b-side)
  for (size_t i = 0; i < half; ++i) {
    Vertex v = order[i];
    for (const Arc& a : g_.ArcsOf(v)) {
      if (InRegion(a.head) && side_[a.head] == 1) {
        cut.emplace_back(v, a.head);
      }
    }
  }
  if (cut.empty()) return UINT32_MAX;  // should not happen when connected

  // Greedy vertex cover of the cut edges: repeatedly pick the endpoint
  // covering the most uncovered edges. Cut sets on road-like regions are
  // tiny, so the quadratic loop is cheap.
  std::unordered_map<Vertex, uint32_t> deg;
  for (const auto& [a, b] : cut) {
    ++deg[a];
    ++deg[b];
  }
  std::vector<uint8_t> covered(cut.size(), 0);
  std::vector<Vertex> separator;
  size_t remaining = cut.size();
  while (remaining > 0) {
    Vertex best = UINT32_MAX;
    uint32_t best_deg = 0;
    for (const auto& [v, d] : deg) {
      if (d > best_deg || (d == best_deg && v < best)) {
        best = v;
        best_deg = d;
      }
    }
    STL_CHECK(best != UINT32_MAX && best_deg > 0);
    separator.push_back(best);
    for (size_t i = 0; i < cut.size(); ++i) {
      if (covered[i]) continue;
      if (cut[i].first == best || cut[i].second == best) {
        covered[i] = 1;
        --remaining;
        --deg[cut[i].first];
        --deg[cut[i].second];
      }
    }
    deg.erase(best);
  }

  // Build sides minus separator. Separator membership via a sorted list.
  std::sort(separator.begin(), separator.end());
  auto in_sep = [&separator](Vertex v) {
    return std::binary_search(separator.begin(), separator.end(), v);
  };
  out->separator = separator;
  out->left.clear();
  out->right.clear();
  for (size_t i = 0; i < order.size(); ++i) {
    Vertex v = order[i];
    if (in_sep(v)) continue;
    (i < half ? out->left : out->right).push_back(v);
  }
  return static_cast<uint32_t>(separator.size());
}

SeparatorResult SeparatorFinder::Find(const std::vector<Vertex>& region,
                                      int num_starts) {
  STL_CHECK_GE(region.size(), 2u);
  MarkRegion(region);

  // Candidate starts: two peripheral vertices (double BFS) plus randoms.
  std::vector<Vertex> starts;
  {
    std::vector<Vertex> order;
    BfsOrder(region[0], region, &order);
    STL_CHECK_EQ(order.size(), region.size()) << "region must be connected";
    Vertex p1 = order.back();
    BfsOrder(p1, region, &order);
    Vertex p2 = order.back();
    starts.push_back(p1);
    if (p2 != p1) starts.push_back(p2);
  }
  while (static_cast<int>(starts.size()) < num_starts) {
    Vertex r = region[rng_.NextBounded(region.size())];
    if (std::find(starts.begin(), starts.end(), r) == starts.end()) {
      starts.push_back(r);
    } else if (region.size() <= starts.size()) {
      break;
    }
  }

  SeparatorResult best;
  uint32_t best_size = UINT32_MAX;
  SeparatorResult attempt;
  for (Vertex s : starts) {
    uint32_t size = TrySplit(s, region, &attempt);
    if (size < best_size) {
      best_size = size;
      best = std::move(attempt);
      attempt = SeparatorResult();
    }
  }
  STL_CHECK(best_size != UINT32_MAX)
      << "no separator found on region of size " << region.size();
  return best;
}

std::vector<std::vector<Vertex>> SeparatorFinder::RegionComponents(
    const std::vector<Vertex>& region) {
  MarkRegion(region);
  std::vector<std::vector<Vertex>> comps;
  ++visit_epoch_;
  for (Vertex s : region) {
    if (visit_stamp_[s] == visit_epoch_) continue;
    comps.emplace_back();
    auto& comp = comps.back();
    queue_.clear();
    queue_.push_back(s);
    visit_stamp_[s] = visit_epoch_;
    size_t head = 0;
    while (head < queue_.size()) {
      Vertex v = queue_[head++];
      comp.push_back(v);
      for (const Arc& a : g_.ArcsOf(v)) {
        if (InRegion(a.head) && visit_stamp_[a.head] != visit_epoch_) {
          visit_stamp_[a.head] = visit_epoch_;
          queue_.push_back(a.head);
        }
      }
    }
  }
  return comps;
}

}  // namespace stl
