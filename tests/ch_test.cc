#include "baselines/ch.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::RandomUpdate;

TEST(ChTest, TinyGraphQueries) {
  Graph g = testing_util::MakeGraph(
      4, {{0, 1, 1}, {1, 2, 2}, {0, 2, 5}, {2, 3, 1}});
  ChIndex ch = ChIndex::Build(&g);
  EXPECT_EQ(ch.Query(0, 0), 0u);
  EXPECT_EQ(ch.Query(0, 2), 3u);
  EXPECT_EQ(ch.Query(0, 3), 4u);
  EXPECT_EQ(ch.Query(3, 0), 4u);
}

TEST(ChTest, UnreachableIsInf) {
  Graph g = testing_util::TwoComponentGraph();
  ChIndex ch = ChIndex::Build(&g);
  EXPECT_EQ(ch.Query(0, 4), kInfDistance);
  EXPECT_EQ(ch.Query(3, 4), 7u);
}

TEST(ChTest, RanksArePermutation) {
  Graph g = testing_util::SmallRoadNetwork(8, 1);
  ChIndex ch = ChIndex::Build(&g);
  std::vector<bool> seen(g.NumVertices(), false);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    ASSERT_LT(ch.rank(v), g.NumVertices());
    EXPECT_FALSE(seen[ch.rank(v)]);
    seen[ch.rank(v)] = true;
  }
}

TEST(ChTest, ShortcutsAreAdded) {
  Graph g = testing_util::SmallRoadNetwork(10, 2);
  ChIndex ch = ChIndex::Build(&g);
  EXPECT_GT(ch.NumShortcutsOnly(), 0u);
  EXPECT_EQ(ch.NumChEdges(), g.NumEdges() + ch.NumShortcutsOnly());
}

TEST(ChTest, UpEdgesPointUpward) {
  Graph g = testing_util::SmallRoadNetwork(8, 3);
  ChIndex ch = ChIndex::Build(&g);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t cid : ch.UpEdges(v)) {
      const auto& e = ch.GetChEdge(cid);
      EXPECT_EQ(e.lo, v);
      EXPECT_GT(ch.rank(e.hi), ch.rank(e.lo));
    }
  }
}

TEST(ChTest, InitialWeightsValidate) {
  Graph g = testing_util::SmallRoadNetwork(10, 4);
  ChIndex ch = ChIndex::Build(&g);
  EXPECT_TRUE(ch.ValidateWeights());
}

class ChSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChSeeds, QueriesMatchDijkstra) {
  Graph g = testing_util::SmallRoadNetwork(12, GetParam());
  Graph ref = g;
  ChIndex ch = ChIndex::Build(&g);
  Dijkstra dij(ref);
  Rng rng(GetParam() * 3 + 2);
  for (int i = 0; i < 250; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    ASSERT_EQ(ch.Query(s, t), dij.Distance(s, t)) << "s=" << s << " t=" << t;
  }
}

TEST_P(ChSeeds, MaintenanceKeepsWeightsExact) {
  Graph g = testing_util::SmallRoadNetwork(10, GetParam());
  ChIndex ch = ChIndex::Build(&g);
  Rng rng(GetParam() * 5 + 1);
  for (int round = 0; round < 12; ++round) {
    WeightUpdate u = RandomUpdate(g, &rng);
    const auto& changed = ch.ApplyUpdate(u);
    (void)changed;
    ASSERT_TRUE(ch.ValidateWeights()) << "round " << round;
    Dijkstra dij(g);
    for (int i = 0; i < 40; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      ASSERT_EQ(ch.Query(s, t), dij.Distance(s, t)) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChSeeds, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ChTest, UpdateReturnsChangedEdges) {
  Graph g = GeneratePath(6, 10);
  ChIndex ch = ChIndex::Build(&g);
  // Halving one path edge must change at least that CH edge.
  auto e = g.FindEdge(2, 3);
  ASSERT_TRUE(e.has_value());
  const auto& changed = ch.ApplyUpdate(WeightUpdate{*e, 10, 5});
  EXPECT_FALSE(changed.empty());
  // A no-op change reports nothing.
  const auto& changed2 = ch.ApplyUpdate(WeightUpdate{*e, 5, 5});
  EXPECT_TRUE(changed2.empty());
}

TEST(ChTest, StructureIsWeightIndependent) {
  // CH-W adds shortcuts without witness search, so the edge set must not
  // depend on the weights (the property DCH maintenance relies on).
  Graph g1 = testing_util::SmallRoadNetwork(9, 7);
  Graph g2 = g1;
  // Perturb all weights of g2.
  for (EdgeId e = 0; e < g2.NumEdges(); ++e) {
    g2.SetEdgeWeight(e, g2.EdgeWeight(e) + 1 + (e % 13));
  }
  ChIndex a = ChIndex::Build(&g1);
  ChIndex b = ChIndex::Build(&g2);
  EXPECT_EQ(a.NumChEdges(), b.NumChEdges());
  EXPECT_EQ(a.NumShortcutsOnly(), b.NumShortcutsOnly());
}

TEST(ChTest, MemoryAccounting) {
  Graph g = testing_util::SmallRoadNetwork(8, 8);
  ChIndex ch = ChIndex::Build(&g);
  EXPECT_GT(ch.MemoryBytes(), g.MemoryBytes() / 2);
}

}  // namespace
}  // namespace stl
