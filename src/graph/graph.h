// Core road-network representation: an undirected weighted graph with
// immutable topology (CSR adjacency) and mutable edge weights.
//
// Dynamic road networks change weights all the time but almost never change
// structure (paper, Section 8), so the representation is optimized for
// O(1) weight updates and cache-friendly neighbour scans. Each undirected
// edge has one EdgeId; its weight is stored once in the edge table and
// mirrored into both CSR arcs so Dijkstra inner loops avoid indirection.
#ifndef STL_GRAPH_GRAPH_H_
#define STL_GRAPH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace stl {

using Vertex = uint32_t;
using EdgeId = uint32_t;
using Weight = uint32_t;

/// Distances saturate at kInfDistance; two valid distances can be added
/// without overflowing uint32_t (2 * 0x3fffffff < 2^32).
inline constexpr Weight kInfDistance = 0x3fffffff;

/// Largest edge weight accepted by Graph::FromEdges. Keeps path weights on
/// benchmark-sized networks far below kInfDistance.
inline constexpr Weight kMaxEdgeWeight = 1u << 24;

/// One undirected edge (endpoints + current weight).
struct Edge {
  Vertex u;
  Vertex v;
  Weight w;
};

/// One directed arc in the CSR adjacency. `weight` mirrors the edge table
/// and is kept in sync by Graph::SetEdgeWeight.
struct Arc {
  Vertex head;
  Weight weight;
  EdgeId edge;
};

/// Undirected weighted graph with fixed topology and mutable weights.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph with `num_vertices` vertices from an edge list.
  /// Rejects self-loops, endpoints out of range, zero/oversized weights,
  /// and duplicate edges (parallel edges are meaningless for distance
  /// queries; callers dedupe keeping the minimum weight).
  static Result<Graph> FromEdges(uint32_t num_vertices,
                                 std::vector<Edge> edges);

  uint32_t NumVertices() const { return num_vertices_; }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  /// All arcs leaving `v`, sorted by head vertex.
  std::span<const Arc> ArcsOf(Vertex v) const {
    STL_DCHECK(v < num_vertices_);
    return {arcs_.data() + adj_offset_[v],
            arcs_.data() + adj_offset_[v + 1]};
  }

  uint32_t Degree(Vertex v) const {
    STL_DCHECK(v < num_vertices_);
    return adj_offset_[v + 1] - adj_offset_[v];
  }

  const Edge& GetEdge(EdgeId id) const {
    STL_DCHECK(id < edges_.size());
    return edges_[id];
  }

  Weight EdgeWeight(EdgeId id) const { return GetEdge(id).w; }

  /// Sets the weight of edge `id` (both directions). O(1).
  void SetEdgeWeight(EdgeId id, Weight w);

  /// Finds the edge between u and v, if any. O(log deg).
  std::optional<EdgeId> FindEdge(Vertex u, Vertex v) const;

  /// All edges (id = index).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Estimated resident memory of the structure in bytes.
  uint64_t MemoryBytes() const;

 private:
  uint32_t num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<uint32_t> adj_offset_;  // size num_vertices_ + 1
  std::vector<Arc> arcs_;             // size 2 * edges_.size()
  // arc_pos_[2*e], arc_pos_[2*e+1]: indices into arcs_ for edge e's two
  // directions, so SetEdgeWeight can refresh the mirrored weights.
  std::vector<uint32_t> arc_pos_;
};

/// Labels connected components; returns component id per vertex and the
/// number of components.
std::pair<std::vector<uint32_t>, uint32_t> ConnectedComponents(
    const Graph& g);

/// True iff the graph is connected (the empty graph is connected).
bool IsConnected(const Graph& g);

/// Extracts the largest connected component as a new graph with vertices
/// renumbered [0, k). Returns the new graph and the old->new vertex map
/// (UINT32_MAX for dropped vertices).
std::pair<Graph, std::vector<uint32_t>> ExtractLargestComponent(
    const Graph& g);

}  // namespace stl

#endif  // STL_GRAPH_GRAPH_H_
