#include "util/table.h"

#include <cstdio>

#include "util/logging.h"

namespace stl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  STL_CHECK_EQ(cells.size(), header_.size())
      << "row width mismatch: " << cells.size() << " vs " << header_.size();
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Bytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

std::string TablePrinter::Count(uint64_t count) {
  char buf[64];
  if (count >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f B", count / 1e9);
  } else if (count >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f M", count / 1e6);
  } else if (count >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f K", count / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
  }
  return buf;
}

}  // namespace stl
