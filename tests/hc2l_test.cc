#include "baselines/hc2l.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

Hc2lIndex BuildFor(const Graph& g, uint64_t seed) {
  HierarchyOptions opt;
  opt.seed = seed;
  return Hc2lIndex::Build(g, opt);
}

TEST(Hc2lTest, TinyGraphQueries) {
  Graph g = testing_util::MakeGraph(
      4, {{0, 1, 1}, {1, 2, 2}, {0, 2, 5}, {2, 3, 1}});
  Hc2lIndex idx = BuildFor(g, 1);
  EXPECT_EQ(idx.Query(0, 0), 0u);
  EXPECT_EQ(idx.Query(0, 2), 3u);
  EXPECT_EQ(idx.Query(0, 3), 4u);
}

class Hc2lSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Hc2lSeeds, QueriesMatchDijkstra) {
  Graph g = testing_util::SmallRoadNetwork(12, GetParam());
  Hc2lIndex idx = BuildFor(g, GetParam());
  Dijkstra dij(g);
  Rng rng(GetParam() * 3 + 2);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    ASSERT_EQ(idx.Query(s, t), dij.Distance(s, t)) << "s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hc2lSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Hc2lTest, LabelsStoreGlobalDistances) {
  // Unlike STL's subgraph distances, HC2L labels equal d_G thanks to the
  // distance-preserving augmentation.
  Graph g = testing_util::SmallRoadNetwork(9, 4);
  Hc2lIndex idx = BuildFor(g, 4);
  const auto& h = idx.hierarchy();
  Dijkstra dij(g);
  Rng rng(4);
  // Sample (vertex, ancestor) pairs via the hierarchy.
  for (int i = 0; i < 150; ++i) {
    Vertex v = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    uint32_t col = static_cast<uint32_t>(rng.NextBounded(h.LabelSize(v)));
    Vertex r = h.AncestorAt(v, col);
    // Access the label through a query with s == ancestor is indirect;
    // instead verify via the public query on (v, r): the LCA node of
    // (v, r) is r's node, and the minimum includes the direct column.
    EXPECT_EQ(idx.Query(v, r), dij.Distance(v, r));
  }
}

TEST(Hc2lTest, ShortcutsAreAdded) {
  Graph g = testing_util::SmallRoadNetwork(12, 5);
  Hc2lIndex idx = BuildFor(g, 5);
  EXPECT_GT(idx.NumShortcutsAdded(), 0u);
}

TEST(Hc2lTest, LargerLabelsThanStl) {
  // The augmented cuts are at least as large as STL's shortcut-free cuts
  // (Section 4, Remark 1): compare total label entries.
  Graph g = testing_util::SmallRoadNetwork(14, 6);
  Hc2lIndex hc2l = BuildFor(g, 6);
  HierarchyOptions opt;
  opt.seed = 6;
  TreeHierarchy stl_h = TreeHierarchy::Build(g, opt);
  EXPECT_GE(hc2l.TotalLabelEntries() * 100,
            stl_h.TotalLabelEntries() * 95);  // allow 5% heuristic noise
}

TEST(Hc2lTest, SameNodeAndAncestorNodeQueryCases) {
  Graph g = testing_util::SmallRoadNetwork(10, 7);
  Hc2lIndex idx = BuildFor(g, 7);
  const auto& h = idx.hierarchy();
  Dijkstra dij(g);
  // Same-node pairs: vertices mapped to the same hierarchy node.
  int same_node_checked = 0;
  for (uint32_t nid = 0; nid < h.NumNodes() && same_node_checked < 50;
       ++nid) {
    auto verts = h.VerticesOf(nid);
    for (size_t i = 0; i + 1 < verts.size() && same_node_checked < 50; ++i) {
      ASSERT_EQ(idx.Query(verts[i], verts[i + 1]),
                dij.Distance(verts[i], verts[i + 1]));
      ++same_node_checked;
    }
  }
  EXPECT_GT(same_node_checked, 0);
}

TEST(Hc2lTest, DeterministicBuild) {
  Graph g = testing_util::SmallRoadNetwork(9, 8);
  Hc2lIndex a = BuildFor(g, 8);
  Hc2lIndex b = BuildFor(g, 8);
  EXPECT_EQ(a.TotalLabelEntries(), b.TotalLabelEntries());
  EXPECT_EQ(a.NumShortcutsAdded(), b.NumShortcutsAdded());
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    EXPECT_EQ(a.Query(s, t), b.Query(s, t));
  }
}

TEST(Hc2lTest, MemoryAccounting) {
  Graph g = testing_util::SmallRoadNetwork(10, 9);
  Hc2lIndex idx = BuildFor(g, 9);
  EXPECT_GT(idx.MemoryBytes(), 0u);
  EXPECT_GT(idx.build_seconds(), 0.0);
}

}  // namespace
}  // namespace stl
