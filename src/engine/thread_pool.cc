#include "engine/thread_pool.h"

#include "util/logging.h"

namespace stl {

ThreadPool::ThreadPool(int num_threads) {
  STL_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Enqueue(std::function<void()> task) {
  STL_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;  // already shut down
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_executed_;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return !queue_.empty() || shutting_down_; });
    if (queue_.empty()) return;  // shutting down and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
    ++tasks_executed_;
  }
}

}  // namespace stl
