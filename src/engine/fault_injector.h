// Deterministic fault injection for the serving stack. ServingCore,
// UpdateQueue and the completion-delivery path consult an optional
// FaultInjector at named sites; a test (or the chaos bench) installs a
// seeded injector to force every degraded path — reader delays,
// writer stalls, apply failures, completion drop candidates — and then
// asserts that the robustness invariants still hold: no tag is lost or
// double-delivered, answered queries stay exact on their epoch, and
// the engine recovers once the fault clears.
//
// The default (no injector installed) costs one null-pointer check per
// site; production binaries never pay for the hooks.
#ifndef STL_ENGINE_FAULT_INJECTOR_H_
#define STL_ENGINE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace stl {

/// Named instrumentation points where the serving stack consults the
/// injector. Each site maps to one robustness mechanism under test.
enum class FaultSite {
  /// A reader-pool thread, after dequeuing a query and before routing
  /// it (stresses queue growth, admission shedding and deadlines).
  kReaderDelay = 0,
  /// The writer thread, after taking a slice of pending updates and
  /// before applying it (stresses the stall watchdog / degraded mode).
  kWriterStall = 1,
  /// The writer's apply step: when the fault fires, the coalesced
  /// batch is dropped instead of applied (stresses the failed-apply
  /// accounting; the master state stays untouched, so serving remains
  /// exact).
  kApplyFailure = 2,
  /// Immediately before a completion is handed to the caller's sink:
  /// when the fault fires, the first delivery attempt is treated as
  /// dropped and the exactly-once retry path must deliver it anyway.
  kCompletionDropCandidate = 3,
  /// The sharded writer, immediately before an overlay publish: when
  /// the fault fires, incremental row repair is treated as infeasible
  /// and the publish takes the from-scratch rebuild fallback (stresses
  /// the fallback path's exactness and accounting; answers stay exact
  /// either way, since both paths produce the same table).
  kOverlayRepair = 4,
  /// A transport send (dist/loopback_transport.h): when the fault
  /// fires, the request is lost and the caller sees a typed
  /// kUnavailable transport error for that attempt (stresses the
  /// router's sibling-replica failover).
  kTransportDrop = 5,
  /// A transport send: when the fault fires, delivery blocks for
  /// DelayMicros before the request reaches the endpoint (stresses
  /// routed tail latency and deadline interplay).
  kTransportDelay = 6,
  /// A transport response: when the fault fires, the response is
  /// delivered twice under the same tag — the receiver's one-shot
  /// claim must absorb the duplicate (stresses exactly-once RPC
  /// completion).
  kTransportDuplicate = 7,
  /// A socket read or write (net/conn.h): when the fault fires, the
  /// I/O is clamped to a single byte (forced partial read/write, so
  /// frame reassembly and write-buffer draining run their resumption
  /// paths), and every eighth firing per connection instead severs the
  /// connection mid-stream (stresses reconnect plus the transport's
  /// typed kUnavailable on in-flight tags).
  kSocketShortIo = 8,
};

/// Number of distinct FaultSite values (array sizing).
inline constexpr int kNumFaultSites = 9;

/// Stable human-readable site name ("reader_delay", ...).
const char* FaultSiteName(FaultSite site);

/// The hook surface. Implementations must be thread-safe: sites fire
/// concurrently from reader-pool threads, the writer thread and
/// submitting threads.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;  ///< Injectors are caller-owned.

  /// True iff the fault should fire at this visit of `site`. For delay
  /// sites the caller then sleeps DelayMicros(site); for failure/drop
  /// sites it takes the degraded path.
  virtual bool Fire(FaultSite site) = 0;

  /// How long a firing delay site should block, in microseconds.
  virtual uint64_t DelayMicros(FaultSite site) = 0;
};

/// The standard deterministic injector: each site fires with a fixed
/// per-site rate from a seeded per-site counter sequence, so a given
/// (seed, rates) configuration replays the same fault schedule
/// regardless of thread interleaving of OTHER sites. Thread-safe.
class SeededFaultInjector final : public FaultInjector {
 public:
  /// An injector with every site disabled; arm sites with SetRate().
  explicit SeededFaultInjector(uint64_t seed);

  /// Arms `site` to fire on a pseudo-random `rate` fraction of visits
  /// (0 disarms, 1 fires always). Call before serving starts.
  void SetRate(FaultSite site, double rate);

  /// Sets the blocking time for firing delay sites (default 200us).
  void SetDelayMicros(FaultSite site, uint64_t micros);

  /// Visits of `site` that fired so far (relaxed; for test assertions).
  uint64_t fired(FaultSite site) const;

  /// Disarms every site (e.g. "the fault clears" in recovery tests).
  void Clear();

  bool Fire(FaultSite site) override;
  uint64_t DelayMicros(FaultSite site) override;

 private:
  struct SiteState {
    /// Fire threshold in 2^-32 units: a visit fires when the next
    /// value of the site's counter-keyed hash falls below it.
    std::atomic<uint32_t> threshold{0};
    std::atomic<uint64_t> delay_micros{200};
    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> fired{0};
  };

  const uint64_t seed_;
  SiteState sites_[kNumFaultSites];
};

}  // namespace stl

#endif  // STL_ENGINE_FAULT_INJECTOR_H_
