#include "core/label_search.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::LabelDiffCount;
using testing_util::RandomUpdate;

struct Fixture {
  Graph g;
  TreeHierarchy h;
  Labelling labels;
  LabelSearch engine;

  explicit Fixture(Graph graph, uint64_t seed = 1)
      : g(std::move(graph)),
        h(TreeHierarchy::Build(g, MakeOpt(seed))),
        labels(BuildLabelling(g, h)),
        engine(&g, h, &labels) {}

  static HierarchyOptions MakeOpt(uint64_t seed) {
    HierarchyOptions opt;
    opt.seed = seed;
    return opt;
  }

  /// Ground truth: labels rebuilt from the graph's current weights.
  Labelling Rebuilt() const { return BuildLabelling(g, h); }
};

TEST(LabelSearchTest, SingleDecreaseMatchesRebuild) {
  Fixture f(testing_util::SmallRoadNetwork(10, 1));
  EdgeId e = 17 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  ASSERT_GT(w, 1u);
  f.engine.ApplyDecreaseBatch({WeightUpdate{e, w, 1}});
  EXPECT_EQ(f.g.EdgeWeight(e), 1u);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(LabelSearchTest, SingleIncreaseMatchesRebuild) {
  Fixture f(testing_util::SmallRoadNetwork(10, 2));
  EdgeId e = 23 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  f.engine.ApplyIncreaseBatch({WeightUpdate{e, w, w * 5}});
  EXPECT_EQ(f.g.EdgeWeight(e), w * 5);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(LabelSearchTest, IncreaseThenRestoreReturnsOriginalLabels) {
  Fixture f(testing_util::SmallRoadNetwork(10, 3));
  Labelling original = f.labels;
  EdgeId e = 5 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  f.engine.ApplyIncreaseBatch({WeightUpdate{e, w, w * 3}});
  f.engine.ApplyDecreaseBatch({WeightUpdate{e, w * 3, w}});
  EXPECT_EQ(LabelDiffCount(f.labels, original), 0u);
}

TEST(LabelSearchTest, BatchDecrease) {
  Fixture f(testing_util::SmallRoadNetwork(12, 4));
  UpdateBatch batch;
  Rng rng(4);
  std::vector<bool> used(f.g.NumEdges(), false);
  while (batch.size() < 20) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(f.g.NumEdges()));
    if (used[e]) continue;
    used[e] = true;
    Weight w = f.g.EdgeWeight(e);
    if (w <= 1) continue;
    batch.push_back(WeightUpdate{e, w, static_cast<Weight>(1 + w / 3)});
  }
  f.engine.ApplyDecreaseBatch(batch);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(LabelSearchTest, BatchIncrease) {
  Fixture f(testing_util::SmallRoadNetwork(12, 5));
  UpdateBatch batch;
  Rng rng(5);
  std::vector<bool> used(f.g.NumEdges(), false);
  while (batch.size() < 20) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(f.g.NumEdges()));
    if (used[e]) continue;
    used[e] = true;
    Weight w = f.g.EdgeWeight(e);
    batch.push_back(WeightUpdate{e, w, w * 2});
  }
  f.engine.ApplyIncreaseBatch(batch);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(LabelSearchTest, MixedBatchViaApplyBatch) {
  Fixture f(testing_util::SmallRoadNetwork(12, 6));
  UpdateBatch batch;
  Rng rng(6);
  std::vector<bool> used(f.g.NumEdges(), false);
  while (batch.size() < 24) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(f.g.NumEdges()));
    if (used[e]) continue;
    used[e] = true;
    Weight w = f.g.EdgeWeight(e);
    Weight nw = (batch.size() % 2 == 0) ? w * 2
                                        : std::max<Weight>(1, w / 2);
    if (nw == w) continue;
    batch.push_back(WeightUpdate{e, w, nw});
  }
  f.engine.ApplyBatch(batch);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(LabelSearchTest, EmptyBatchesAreNoOps) {
  Fixture f(testing_util::SmallRoadNetwork(6, 7));
  Labelling before = f.labels;
  f.engine.ApplyDecreaseBatch({});
  f.engine.ApplyIncreaseBatch({});
  f.engine.ApplyBatch({});
  EXPECT_EQ(LabelDiffCount(f.labels, before), 0u);
}

TEST(LabelSearchTest, NoOpUpdatesInMixedBatchIgnored) {
  Fixture f(testing_util::SmallRoadNetwork(6, 8));
  Labelling before = f.labels;
  Weight w = f.g.EdgeWeight(0);
  f.engine.ApplyBatch({WeightUpdate{0, w, w}});
  EXPECT_EQ(LabelDiffCount(f.labels, before), 0u);
}

TEST(LabelSearchDeathTest, WrongDirectionRejected) {
  Fixture f(testing_util::SmallRoadNetwork(6, 9));
  Weight w = f.g.EdgeWeight(0);
  EXPECT_DEATH(f.engine.ApplyDecreaseBatch({WeightUpdate{0, w, w + 1}}),
               "non-decrease");
  EXPECT_DEATH(f.engine.ApplyIncreaseBatch({WeightUpdate{0, w, w - 1}}),
               "non-increase");
}

TEST(LabelSearchTest, StatsAccumulate) {
  Fixture f(testing_util::SmallRoadNetwork(10, 10));
  EdgeId e = 3 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  f.engine.ApplyIncreaseBatch({WeightUpdate{e, w, w * 4}});
  EXPECT_GT(f.engine.stats().queue_pops, 0u);
  EXPECT_GT(f.engine.stats().label_writes, 0u);
}

TEST(LabelSearchTest, QueriesStayCorrectUnderUpdates) {
  Fixture f(testing_util::SmallRoadNetwork(11, 11));
  Rng rng(11);
  for (int round = 0; round < 8; ++round) {
    WeightUpdate u = RandomUpdate(f.g, &rng);
    f.engine.ApplyBatch({u});
    Dijkstra dij(f.g);
    for (int i = 0; i < 60; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(f.g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(f.g.NumVertices()));
      ASSERT_EQ(QueryDistance(f.h, f.labels, s, t), dij.Distance(s, t))
          << "round " << round;
    }
  }
}

class LabelSearchRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelSearchRandomized, LongUpdateSequenceMatchesRebuild) {
  const uint64_t seed = GetParam();
  Fixture f(testing_util::SmallRoadNetwork(9, seed), seed);
  Rng rng(seed * 7 + 5);
  for (int round = 0; round < 25; ++round) {
    WeightUpdate u = RandomUpdate(f.g, &rng);
    if (u.new_weight > u.old_weight) {
      f.engine.ApplyIncreaseBatch({u});
    } else {
      f.engine.ApplyDecreaseBatch({u});
    }
    ASSERT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u)
        << "seed " << seed << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelSearchRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LabelSearchTest, WorksOnRandomTopology) {
  Graph g = GenerateRandomConnectedGraph(120, 100, 1, 30, 42);
  Fixture f(std::move(g), 42);
  Rng rng(43);
  for (int round = 0; round < 15; ++round) {
    WeightUpdate u = RandomUpdate(f.g, &rng);
    f.engine.ApplyBatch({u});
    ASSERT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u) << round;
  }
}

}  // namespace
}  // namespace stl
