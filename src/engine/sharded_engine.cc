#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "partition/cells.h"
#include "util/logging.h"
#include "util/simd.h"

namespace stl {

namespace {

/// Saturates the three-term routing sums back into the Weight range.
inline Weight ClampInf(uint64_t d) {
  return d >= kInfDistance ? kInfDistance
                           : static_cast<Weight>(d);
}

}  // namespace

// ----------------------------------------------------- ShardedSnapshot

Weight ShardedSnapshot::Query(Vertex s, Vertex t) const {
  const ShardLayout& lay = *layout;
  STL_DCHECK(s < lay.shard_of_vertex.size());
  STL_DCHECK(t < lay.shard_of_vertex.size());
  if (s == t) return 0;
  const uint32_t cs = lay.shard_of_vertex[s];
  const uint32_t ct = lay.shard_of_vertex[t];
  const bool s_boundary = cs == CellPartition::kBoundaryCell;
  const bool t_boundary = ct == CellPartition::kBoundaryCell;

  if (s_boundary && t_boundary) {
    // The overlay table is already the exact full-graph distance.
    return overlay->At(lay.boundary_pos_of_vertex[s],
                       lay.boundary_pos_of_vertex[t]);
  }

  // Per-reader scratch for the shard-to-boundary distance arrays; sized
  // to the largest S_i seen, reused across snapshots and epochs.
  thread_local std::vector<Weight> ds_scratch;
  thread_local std::vector<Weight> dt_scratch;

  // Shard-local distances from a non-boundary endpoint to its cell's
  // boundary set S_i (kInfDistance where the shard subgraph disconnects
  // them).
  auto boundary_distances = [&lay](
      const ShardServing& serving, Vertex global,
      std::vector<Weight>* out) -> uint32_t {
    const ShardLayout::Shard& shard = lay.shards[serving.shard];
    const uint32_t width =
        static_cast<uint32_t>(shard.boundary_local.size());
    out->resize(width);
    const Vertex local = lay.local_of_vertex[global];
    for (uint32_t i = 0; i < width; ++i) {
      (*out)[i] = serving.view->Query(local, shard.boundary_local[i]);
    }
    return width;
  };

  uint64_t best = kInfDistance;
  if (!s_boundary && !t_boundary && cs == ct) {
    // Same cell: the path may stay inside the shard entirely...
    best = shards[cs]->view->Query(lay.local_of_vertex[s],
                                   lay.local_of_vertex[t]);
    // ...or leave through the boundary and come back (covered below;
    // D[b][b] = 0 makes the touch-and-return case a special case of it).
  }

  if (s_boundary) {
    // First boundary vertex of any path from s is s itself:
    // min over b2 in S_ct of D[s][b2] + d_shard(b2, t).
    const uint32_t width = boundary_distances(*shards[ct], t, &dt_scratch);
    const uint32_t pos = lay.boundary_pos_of_vertex[s];
    best = std::min<uint64_t>(
        best, MinPlusReduce(overlay->PackedRow(ct, pos), dt_scratch.data(),
                            width));
  } else if (t_boundary) {
    // Mirror image (distances are symmetric on an undirected graph).
    const uint32_t width = boundary_distances(*shards[cs], s, &ds_scratch);
    const uint32_t pos = lay.boundary_pos_of_vertex[t];
    best = std::min<uint64_t>(
        best, MinPlusReduce(overlay->PackedRow(cs, pos), ds_scratch.data(),
                            width));
  } else {
    // General case: decompose at the first and last boundary vertices.
    const uint32_t sw = boundary_distances(*shards[cs], s, &ds_scratch);
    const uint32_t tw = boundary_distances(*shards[ct], t, &dt_scratch);
    const ShardLayout::Shard& sshard = lay.shards[cs];
    for (uint32_t i = 0; i < sw; ++i) {
      if (ds_scratch[i] >= kInfDistance || ds_scratch[i] >= best) continue;
      // Inner min over b2 on the packed row: contiguous SIMD min-plus.
      const Weight inner =
          MinPlusReduce(overlay->PackedRow(ct, sshard.boundary_pos[i]),
                        dt_scratch.data(), tw);
      best = std::min<uint64_t>(
          best, static_cast<uint64_t>(ds_scratch[i]) + inner);
    }
  }
  return ClampInf(best);
}

// ------------------------------------------------------- ShardedEngine

ShardedEngine::ShardedEngine(Graph graph,
                             const HierarchyOptions& hierarchy_options,
                             const ShardedEngineOptions& options)
    : options_(options), pool_(options.num_query_threads) {
  STL_CHECK_GE(options_.max_batch_size, size_t{1});
  STL_CHECK_GE(options_.target_shards, 1u);
  graph_ = std::make_unique<Graph>(std::move(graph));

  const CellPartition cells =
      PartitionCells(*graph_, options_.target_shards, hierarchy_options);
  ShardPlan plan = BuildShardPlan(*graph_, cells);
  layout_ = std::make_shared<const ShardLayout>(std::move(plan.layout));

  const uint32_t k = layout_->num_shards();
  states_.resize(k);
  for (uint32_t c = 0; c < k; ++c) {
    states_[c].graph =
        std::make_unique<Graph>(std::move(plan.shard_graphs[c]));
  }
  // The k master builds touch disjoint state (each only its own
  // subgraph), so build them in parallel: startup approaches the
  // slowest single shard instead of the sum.
  {
    std::vector<std::future<void>> builds;
    builds.reserve(k);
    for (uint32_t c = 0; c < k; ++c) {
      builds.push_back(std::async(std::launch::async, [&, c] {
        states_[c].index = MakeDistanceIndex(options_.backend,
                                             states_[c].graph.get(),
                                             hierarchy_options);
      }));
    }
    for (auto& b : builds) b.get();
  }
  if (k > 0) capabilities_ = states_[0].index->capabilities();
  overlay_ = std::make_unique<BoundaryOverlay>(layout_.get(), *graph_);
  shard_updates_.reset(new std::atomic<uint64_t>[std::max(k, 1u)]);
  for (uint32_t c = 0; c < k; ++c) shard_updates_[c].store(0);
  serving_.resize(k);

  // Epoch 0 baseline: clones from construction are not publish cost.
  harvested_graph_chunks_ = graph_->cow_stats().chunks_cloned;
  harvested_graph_bytes_ = graph_->cow_stats().bytes_cloned;
  PublishInitialSnapshot();
  writer_ = std::thread([this] { WriterLoop(); });
  // Start the throughput clock after the (potentially long) builds.
  wall_.Restart();
}

ShardedEngine::~ShardedEngine() {
  pool_.Shutdown();  // answer every query already submitted
  updates_.Stop();
  if (writer_.joinable()) writer_.join();  // drains pending updates
}

void ShardedEngine::PublishInitialSnapshot() {
  for (uint32_t c = 0; c < layout_->num_shards(); ++c) {
    PublishInfo info;
    auto view = states_[c].index->PublishView(/*flat_publish=*/false, &info);
    overlay_->RebuildClique(c, *view);
    auto serving = std::make_shared<ShardServing>();
    serving->shard = c;
    serving->shard_epoch = 0;
    serving->view = std::move(view);
    serving_[c] = std::move(serving);
  }
  auto snap = std::make_shared<ShardedSnapshot>();
  snap->epoch = 0;
  snap->graph = *graph_;
  snap->layout = layout_;
  snap->shards = serving_;
  snap->overlay = overlay_->Publish();
  current_.store(std::move(snap));
}

std::future<ShardedQueryResult> ShardedEngine::Submit(QueryPair query) {
  auto promise = std::make_shared<std::promise<ShardedQueryResult>>();
  std::future<ShardedQueryResult> result = promise->get_future();
  const auto submitted = std::chrono::steady_clock::now();
  const bool accepted =
      pool_.Enqueue([this, query, promise = std::move(promise), submitted] {
        // The entire read path: one atomic load, then const reads on an
        // immutable snapshot (k shard views + one overlay, mutually
        // consistent by construction).
        std::shared_ptr<const ShardedSnapshot> snap = current_.load();
        ShardedQueryResult r;
        r.distance = snap->Query(query.first, query.second);
        r.epoch = snap->epoch;
        const uint64_t nanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - submitted)
                .count());
        r.latency_micros = static_cast<double>(nanos) / 1e3;
        r.snapshot = std::move(snap);
        latency_.Record(nanos);
        queries_served_.fetch_add(1, std::memory_order_relaxed);
        promise->set_value(std::move(r));
      });
  STL_CHECK(accepted) << "Submit() on a shut-down engine";
  return result;
}

std::vector<std::future<ShardedQueryResult>> ShardedEngine::SubmitBatch(
    const std::vector<QueryPair>& queries) {
  std::vector<std::future<ShardedQueryResult>> futures;
  futures.reserve(queries.size());
  for (const QueryPair& q : queries) futures.push_back(Submit(q));
  return futures;
}

void ShardedEngine::EnqueueUpdate(const WeightUpdate& update) {
  EnqueueUpdate(update.edge, update.new_weight);
}

void ShardedEngine::EnqueueUpdate(EdgeId edge, Weight new_weight) {
  STL_CHECK(edge < graph_->NumEdges());
  STL_CHECK(new_weight >= 1 && new_weight <= kMaxEdgeWeight);
  updates_.Enqueue(edge, new_weight);
}

void ShardedEngine::EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
  for (const WeightUpdate& u : updates) {
    STL_CHECK(u.edge < graph_->NumEdges());
    STL_CHECK(u.new_weight >= 1 && u.new_weight <= kMaxEdgeWeight);
  }
  updates_.EnqueueMany(updates);
}

void ShardedEngine::Flush() { updates_.Flush(); }

void ShardedEngine::WriterLoop() {
  // The drain/coalesce/Flush protocol lives in UpdateQueue (shared with
  // the flat engine); coalescing works on GLOBAL edge ids with the
  // master full graph as the weight authority, and the apply step is
  // the per-shard partition + publish below.
  updates_.RunWriter(
      options_.max_batch_size,
      [this](EdgeId e) { return graph_->EdgeWeight(e); },
      [this](const UpdateBatch& batch) { ApplyAndPublish(batch); },
      &updates_coalesced_);
}

void ShardedEngine::ApplyAndPublish(const UpdateBatch& batch) {
  const uint32_t k = layout_->num_shards();
  // Partition the batch by owning cell; S–S edges go to the overlay.
  std::vector<UpdateBatch> per_shard(k);
  for (const WeightUpdate& u : batch) {
    graph_->SetEdgeWeight(u.edge, u.new_weight);
    const uint32_t owner = layout_->shard_of_edge[u.edge];
    const uint32_t slot = layout_->local_of_edge[u.edge];
    if (owner == ShardLayout::kOverlayShard) {
      overlay_->SetDirectWeight(slot, u.new_weight);
    } else {
      per_shard[owner].push_back(
          WeightUpdate{slot, states_[owner].graph->EdgeWeight(slot),
                       u.new_weight});
    }
  }

  // Maintenance: repair (or rebuild) only the dirtied shards. The
  // STL-P/STL-L choice is made per SHARD batch — each shard amortizes
  // over its own share of the updates.
  for (uint32_t c = 0; c < k; ++c) {
    if (per_shard[c].empty()) continue;
    const MaintenanceStrategy strategy =
        ChooseStrategy(options_.strategy,
                       options_.auto_label_search_threshold,
                       per_shard[c].size());
    batch_counters_.Count(states_[c].index->ApplyBatch(per_shard[c],
                                                       strategy));
    shard_updates_[c].fetch_add(per_shard[c].size(),
                                std::memory_order_relaxed);
  }
  updates_applied_.fetch_add(batch.size(), std::memory_order_relaxed);

  // Publication: new views + cliques for dirty shards only, then one
  // overlay rebuild, then the snapshot swap. Clean shards' ShardServing
  // pointers carry over unchanged.
  Timer publish_timer;
  for (uint32_t c = 0; c < k; ++c) {
    if (per_shard[c].empty()) continue;
    PublishInfo info;
    auto view = states_[c].index->PublishView(/*flat_publish=*/false, &info);
    label_pages_cloned_.fetch_add(info.label_pages_cloned,
                                  std::memory_order_relaxed);
    cow_bytes_cloned_.fetch_add(info.label_bytes_cloned,
                                std::memory_order_relaxed);
    publish_bytes_deep_copied_.fetch_add(info.deep_bytes_copied,
                                         std::memory_order_relaxed);
    auto serving = std::make_shared<ShardServing>();
    serving->shard = c;
    serving->shard_epoch = ++states_[c].shard_epoch;
    serving->view = std::move(view);
    Timer overlay_timer;
    overlay_->RebuildClique(c, *serving->view);
    overlay_nanos_.fetch_add(overlay_timer.ElapsedNanos(),
                             std::memory_order_relaxed);
    serving_[c] = std::move(serving);
  }
  Timer overlay_timer;
  auto table = overlay_->Publish();
  overlay_nanos_.fetch_add(overlay_timer.ElapsedNanos(),
                           std::memory_order_relaxed);
  overlay_republishes_.fetch_add(1, std::memory_order_relaxed);

  // Graph-side CoW accounting (chunks detached by this batch's writes).
  const CowChunkStats gc = graph_->cow_stats();
  graph_chunks_cloned_.fetch_add(gc.chunks_cloned - harvested_graph_chunks_,
                                 std::memory_order_relaxed);
  cow_bytes_cloned_.fetch_add(gc.bytes_cloned - harvested_graph_bytes_,
                              std::memory_order_relaxed);
  harvested_graph_chunks_ = gc.chunks_cloned;
  harvested_graph_bytes_ = gc.bytes_cloned;

  auto snap = std::make_shared<ShardedSnapshot>();
  snap->epoch = epochs_published_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap->graph = *graph_;  // structural chunk share
  snap->layout = layout_;
  snap->shards = serving_;
  snap->overlay = std::move(table);
  publish_nanos_.fetch_add(publish_timer.ElapsedNanos(),
                           std::memory_order_relaxed);
  current_.store(std::move(snap));
}

EngineStats ShardedEngine::Stats() const {
  EngineStats s;
  s.backend = options_.backend;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.updates_enqueued = updates_.enqueued();
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.updates_coalesced = updates_coalesced_.load(std::memory_order_relaxed);
  s.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  s.batches_pareto = batch_counters_.pareto.load(std::memory_order_relaxed);
  s.batches_label = batch_counters_.label.load(std::memory_order_relaxed);
  s.batches_incremental =
      batch_counters_.incremental.load(std::memory_order_relaxed);
  s.batches_rebuild =
      batch_counters_.rebuild.load(std::memory_order_relaxed);
  s.label_pages_cloned =
      label_pages_cloned_.load(std::memory_order_relaxed);
  s.graph_chunks_cloned =
      graph_chunks_cloned_.load(std::memory_order_relaxed);
  s.cow_bytes_cloned = cow_bytes_cloned_.load(std::memory_order_relaxed);
  s.publish_bytes_deep_copied =
      publish_bytes_deep_copied_.load(std::memory_order_relaxed);
  s.publish_total_micros =
      static_cast<double>(publish_nanos_.load(std::memory_order_relaxed)) /
      1e3;
  s.num_shards = layout_->num_shards();
  s.boundary_vertices = layout_->num_boundary();
  s.overlay_republishes =
      overlay_republishes_.load(std::memory_order_relaxed);
  s.overlay_rebuild_micros =
      static_cast<double>(overlay_nanos_.load(std::memory_order_relaxed)) /
      1e3;
  {
    // Honest resident memory of the serving state, wait-free: walk the
    // current (immutable) snapshot, counting each physically shared
    // block once — the per-shard rows report each shard's unique bytes.
    std::shared_ptr<const ShardedSnapshot> snap = CurrentSnapshot();
    std::unordered_set<const void*> seen;
    uint64_t bytes = 0;
    s.shards.reserve(layout_->num_shards());
    for (uint32_t c = 0; c < layout_->num_shards(); ++c) {
      ShardStats row;
      row.shard = c;
      row.cell_vertices = layout_->shards[c].num_cell_vertices;
      row.boundary_vertices =
          static_cast<uint32_t>(layout_->shards[c].boundary_local.size());
      row.subgraph_edges =
          static_cast<uint32_t>(layout_->shards[c].edge_to_global.size());
      row.shard_epoch = snap->shards[c]->shard_epoch;
      row.updates_applied =
          shard_updates_[c].load(std::memory_order_relaxed);
      row.resident_bytes = snap->shards[c]->view->AddResidentBytes(&seen);
      bytes += row.resident_bytes;
      s.shards.push_back(row);
    }
    if (snap->overlay != nullptr &&
        seen.insert(snap->overlay.get()).second) {
      bytes += snap->overlay->MemoryBytes();
    }
    bytes += snap->graph.AddResidentBytes(&seen);
    if (seen.insert(layout_.get()).second) bytes += layout_->MemoryBytes();
    s.resident_index_bytes = bytes;
  }
  s.wall_seconds = wall_.ElapsedSeconds();
  s.queries_per_second =
      s.wall_seconds > 0
          ? static_cast<double>(s.queries_served) / s.wall_seconds
          : 0;
  s.latency_mean_micros = latency_.MeanMicros();
  s.latency_p50_micros = latency_.QuantileMicros(0.5);
  s.latency_p99_micros = latency_.QuantileMicros(0.99);
  s.latency_max_micros = latency_.MaxMicros();
  return s;
}

void ShardedEngine::ResetStats() {
  queries_served_.store(0, std::memory_order_relaxed);
  updates_applied_.store(0, std::memory_order_relaxed);
  updates_coalesced_.store(0, std::memory_order_relaxed);
  // epochs_published_ doubles as the global epoch allocator and the
  // per-shard ShardState epochs keep snapshot lineage; neither resets.
  batch_counters_.Reset();
  label_pages_cloned_.store(0, std::memory_order_relaxed);
  graph_chunks_cloned_.store(0, std::memory_order_relaxed);
  cow_bytes_cloned_.store(0, std::memory_order_relaxed);
  publish_bytes_deep_copied_.store(0, std::memory_order_relaxed);
  publish_nanos_.store(0, std::memory_order_relaxed);
  overlay_nanos_.store(0, std::memory_order_relaxed);
  overlay_republishes_.store(0, std::memory_order_relaxed);
  for (uint32_t c = 0; c < layout_->num_shards(); ++c) {
    shard_updates_[c].store(0, std::memory_order_relaxed);
  }
  latency_.Reset();
  wall_.Restart();
}

}  // namespace stl
