// Cell partition for the sharded serving engine: the same balanced
// separator machinery that builds the stable tree hierarchy
// (partition/separator.h), stopped after a few levels instead of
// recursing to leaves. The separator vertices removed along the way form
// the *boundary* set S; what remains falls apart into connected *cells*
// C_1..C_k. Because S is a vertex separator of the whole graph, every
// path between two different cells passes through S — which is exactly
// the property the sharded engine's boundary-overlay routing
// (index/overlay.h) relies on:
//
//   d(s, t) = min over b1, b2 in S of  d_cell(s, b1) + D[b1][b2] + d_cell(b2, t)
//
// with d_cell confined to one shard and D the exact boundary-to-boundary
// distance table maintained by the overlay.
#ifndef STL_PARTITION_CELLS_H_
#define STL_PARTITION_CELLS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/bisection.h"

namespace stl {

/// A k-way cut of the graph into connected cells plus the boundary
/// (separator) vertex set that isolates them from each other.
///
/// Invariants (asserted by PartitionCells):
///  * every vertex is in exactly one cell or in `boundary`;
///  * no edge connects two different cells (S is a vertex separator);
///  * every cell is connected in the subgraph it induces.
struct CellPartition {
  /// `cell_of` value for boundary (separator) vertices.
  static constexpr uint32_t kBoundaryCell = UINT32_MAX;

  /// Number of cells actually produced. At least the number of connected
  /// components; may fall short of the requested target when the graph
  /// is too small to cut further, and may exceed it when removing one
  /// separator splits a region into more than two components.
  uint32_t num_cells = 0;
  /// Per-vertex cell id, or kBoundaryCell for separator vertices.
  std::vector<uint32_t> cell_of;
  /// Vertices of each cell, sorted ascending.
  std::vector<std::vector<Vertex>> cells;
  /// All separator vertices, sorted ascending.
  std::vector<Vertex> boundary;
  /// Per cell i: the boundary vertices adjacent to cell i (written S_i),
  /// sorted ascending. Shard i's index covers C_i plus S_i.
  std::vector<std::vector<Vertex>> cell_boundary;
};

/// Cuts `g` into (about) `target_cells` connected cells by repeatedly
/// bisecting the largest remaining region with a balanced separator.
/// Deterministic in (g, target_cells, options.seed). `options` supplies
/// the separator search parameters (beta, num_starts, seed);
/// target_cells >= 1. Disconnected inputs start from their connected
/// components; regions of fewer than 2 vertices are never cut.
CellPartition PartitionCells(const Graph& g, uint32_t target_cells,
                             const HierarchyOptions& options);

}  // namespace stl

#endif  // STL_PARTITION_CELLS_H_
