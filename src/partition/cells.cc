#include "partition/cells.h"

#include <algorithm>

#include "partition/separator.h"
#include "util/logging.h"

namespace stl {

namespace {

/// Index of the region to cut next: the largest splittable one, ties
/// broken by smallest leading vertex so the result is deterministic.
/// Returns SIZE_MAX when no region can be cut further.
size_t PickRegion(const std::vector<std::vector<Vertex>>& regions,
                  const std::vector<bool>& uncuttable) {
  size_t best = SIZE_MAX;
  for (size_t i = 0; i < regions.size(); ++i) {
    if (uncuttable[i] || regions[i].size() < 2) continue;
    if (best == SIZE_MAX || regions[i].size() > regions[best].size() ||
        (regions[i].size() == regions[best].size() &&
         regions[i].front() < regions[best].front())) {
      best = i;
    }
  }
  return best;
}

}  // namespace

CellPartition PartitionCells(const Graph& g, uint32_t target_cells,
                             const HierarchyOptions& options) {
  STL_CHECK_GE(target_cells, 1u);
  CellPartition part;
  const uint32_t n = g.NumVertices();
  part.cell_of.assign(n, CellPartition::kBoundaryCell);
  if (n == 0) return part;

  SeparatorFinder finder(g, options.seed);

  // Regions start as the connected components and stay connected: after
  // each cut, the sides are re-split into components before they become
  // regions again (removing a separator may shatter a side).
  auto [comp_of, num_comps] = ConnectedComponents(g);
  std::vector<std::vector<Vertex>> regions(num_comps);
  for (Vertex v = 0; v < n; ++v) regions[comp_of[v]].push_back(v);
  std::sort(regions.begin(), regions.end());
  std::vector<bool> uncuttable(regions.size(), false);

  while (regions.size() < target_cells) {
    const size_t pick = PickRegion(regions, uncuttable);
    if (pick == SIZE_MAX) break;  // nothing left to cut
    std::vector<Vertex> region = std::move(regions[pick]);
    regions.erase(regions.begin() + static_cast<ptrdiff_t>(pick));
    uncuttable.erase(uncuttable.begin() + static_cast<ptrdiff_t>(pick));

    SeparatorResult res = finder.Find(region, options.num_starts);
    if (res.separator.empty() || (res.left.empty() && res.right.empty())) {
      // Degenerate cut (e.g. a clique-ish region); keep as one cell.
      regions.push_back(std::move(region));
      uncuttable.push_back(true);
      continue;
    }
    part.boundary.insert(part.boundary.end(), res.separator.begin(),
                         res.separator.end());
    for (std::vector<Vertex>* side : {&res.left, &res.right}) {
      if (side->empty()) continue;
      for (auto& comp : finder.RegionComponents(*side)) {
        std::sort(comp.begin(), comp.end());
        regions.push_back(std::move(comp));
        uncuttable.push_back(false);
      }
    }
  }

  std::sort(regions.begin(), regions.end());
  part.num_cells = static_cast<uint32_t>(regions.size());
  part.cells = std::move(regions);
  std::sort(part.boundary.begin(), part.boundary.end());

  for (uint32_t c = 0; c < part.num_cells; ++c) {
    for (Vertex v : part.cells[c]) {
      STL_DCHECK(part.cell_of[v] == CellPartition::kBoundaryCell);
      part.cell_of[v] = c;
    }
  }
  // Totality: every vertex not in a cell must be a separator vertex.
  size_t assigned = 0;
  for (const auto& cell : part.cells) assigned += cell.size();
  STL_CHECK_EQ(assigned + part.boundary.size(), n);
  for (Vertex b : part.boundary) {
    STL_CHECK_EQ(part.cell_of[b], CellPartition::kBoundaryCell);
  }

  // S_i: boundary vertices with at least one edge into cell i.
  part.cell_boundary.assign(part.num_cells, {});
  for (Vertex b : part.boundary) {
    uint32_t last = CellPartition::kBoundaryCell;
    for (const Arc& a : g.ArcsOf(b)) {
      const uint32_t c = part.cell_of[a.head];
      if (c == CellPartition::kBoundaryCell || c == last) continue;
      // ArcsOf is sorted by head, not by cell, so dedupe exactly.
      if (std::find(part.cell_boundary[c].begin(),
                    part.cell_boundary[c].end(),
                    b) == part.cell_boundary[c].end()) {
        part.cell_boundary[c].push_back(b);
      }
      last = c;
    }
  }
  // Separator property: no edge may connect two different cells.
  for (const auto& edge : g.edges()) {
    const uint32_t cu = part.cell_of[edge.u];
    const uint32_t cv = part.cell_of[edge.v];
    STL_CHECK(cu == cv || cu == CellPartition::kBoundaryCell ||
              cv == CellPartition::kBoundaryCell)
        << "edge " << edge.u << "-" << edge.v << " crosses cells";
  }
  for (auto& sb : part.cell_boundary) std::sort(sb.begin(), sb.end());
  return part;
}

}  // namespace stl
