#include "graph/dijkstra.h"

#include <algorithm>

namespace stl {

Dijkstra::Dijkstra(const Graph& g)
    : g_(g),
      dist_(g.NumVertices(), kInfDistance),
      stamp_(g.NumVertices(), 0) {}

void Dijkstra::Reset() {
  ++epoch_;
  heap_.clear();
  last_settled_ = 0;
}

Weight Dijkstra::Run(Vertex s, Vertex t, Weight radius) {
  Reset();
  auto get_dist = [&](Vertex v) -> Weight {
    return stamp_[v] == epoch_ ? dist_[v] : kInfDistance;
  };
  auto set_dist = [&](Vertex v, Weight d) {
    dist_[v] = d;
    stamp_[v] = epoch_;
  };
  set_dist(s, 0);
  heap_.Push(0, s);
  while (!heap_.empty()) {
    auto [d, v] = heap_.Pop();
    if (d != get_dist(v)) continue;  // stale entry
    ++last_settled_;
    if (v == t) return d;
    if (d > radius) break;
    for (const Arc& a : g_.ArcsOf(v)) {
      Weight nd = d + a.weight;
      if (nd < get_dist(a.head)) {
        set_dist(a.head, nd);
        heap_.Push(nd, a.head);
      }
    }
  }
  return t == UINT32_MAX ? kInfDistance : get_dist(t);
}

Weight Dijkstra::Distance(Vertex s, Vertex t) {
  STL_CHECK(s < g_.NumVertices() && t < g_.NumVertices());
  if (s == t) return 0;
  return Run(s, t, kInfDistance);
}

const std::vector<Weight>& Dijkstra::AllDistances(Vertex s) {
  STL_CHECK(s < g_.NumVertices());
  Run(s, UINT32_MAX, kInfDistance);
  // Materialize kInfDistance for unreached vertices of this epoch.
  for (Vertex v = 0; v < g_.NumVertices(); ++v) {
    if (stamp_[v] != epoch_) {
      dist_[v] = kInfDistance;
      stamp_[v] = epoch_;
    }
  }
  return dist_;
}

const std::vector<Weight>& Dijkstra::DistancesWithin(Vertex s, Weight radius) {
  STL_CHECK(s < g_.NumVertices());
  Run(s, UINT32_MAX, radius);
  for (Vertex v = 0; v < g_.NumVertices(); ++v) {
    if (stamp_[v] != epoch_ || dist_[v] > radius) {
      dist_[v] = kInfDistance;
      stamp_[v] = epoch_;
    }
  }
  return dist_;
}

BidirectionalDijkstra::BidirectionalDijkstra(const Graph& g) : g_(g) {
  for (int side = 0; side < 2; ++side) {
    dist_[side].assign(g.NumVertices(), kInfDistance);
    stamp_[side].assign(g.NumVertices(), 0);
  }
}

Weight BidirectionalDijkstra::Distance(Vertex s, Vertex t) {
  STL_CHECK(s < g_.NumVertices() && t < g_.NumVertices());
  if (s == t) return 0;
  ++epoch_;
  heap_[0].clear();
  heap_[1].clear();
  last_settled_ = 0;
  auto get_dist = [&](int side, Vertex v) -> Weight {
    return stamp_[side][v] == epoch_ ? dist_[side][v] : kInfDistance;
  };
  auto set_dist = [&](int side, Vertex v, Weight d) {
    dist_[side][v] = d;
    stamp_[side][v] = epoch_;
  };
  set_dist(0, s, 0);
  set_dist(1, t, 0);
  heap_[0].Push(0, s);
  heap_[1].Push(0, t);
  Weight best = kInfDistance;
  // Alternate sides; stop when the smaller frontier minimum already
  // exceeds the best meeting distance found.
  while (!heap_[0].empty() || !heap_[1].empty()) {
    int side;
    if (heap_[0].empty()) {
      side = 1;
    } else if (heap_[1].empty()) {
      side = 0;
    } else {
      side = heap_[0].Top().key <= heap_[1].Top().key ? 0 : 1;
    }
    Weight frontier = heap_[side].Top().key;
    if (frontier >= best) break;
    auto [d, v] = heap_[side].Pop();
    if (d != get_dist(side, v)) continue;
    ++last_settled_;
    Weight other = get_dist(1 - side, v);
    if (other != kInfDistance) best = std::min(best, d + other);
    for (const Arc& a : g_.ArcsOf(v)) {
      Weight nd = d + a.weight;
      if (nd < get_dist(side, a.head)) {
        set_dist(side, a.head, nd);
        heap_[side].Push(nd, a.head);
      }
    }
  }
  return best;
}

std::vector<std::vector<Weight>> FloydWarshallAllPairs(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<std::vector<Weight>> d(n, std::vector<Weight>(n, kInfDistance));
  for (Vertex v = 0; v < n; ++v) d[v][v] = 0;
  for (const Edge& e : g.edges()) {
    d[e.u][e.v] = std::min(d[e.u][e.v], e.w);
    d[e.v][e.u] = std::min(d[e.v][e.u], e.w);
  }
  for (uint32_t k = 0; k < n; ++k) {
    for (uint32_t i = 0; i < n; ++i) {
      if (d[i][k] == kInfDistance) continue;
      for (uint32_t j = 0; j < n; ++j) {
        Weight via = d[i][k] + d[k][j];
        if (d[k][j] != kInfDistance && via < d[i][j]) d[i][j] = via;
      }
    }
  }
  return d;
}

}  // namespace stl
