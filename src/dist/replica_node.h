// The server side of a wire-connected replica: one ReplicaNode is what
// a replica_server process (examples/replica_server.cpp) or an
// in-process FrameServer serves. It bundles the query half — a
// ShardReplica ring answering boundary-row / point-query requests —
// with the replication half: an inner ShardedEngine that applies
// kInstall update batches shipped by the router.
//
// Replication is state-machine style: router and replica construct
// identical engines from the identical graph and options, so applying
// the identical coalesced update batches in the identical order yields
// bit-identical snapshots with identical epoch ids on both sides. The
// InstallRequest's expected_* epochs make that assumption checked, not
// trusted: any divergence nacks (the replica keeps serving the epochs
// it has) instead of silently serving different weights. Installs are
// sequence-numbered per replica; a gap nacks with the needed seq and
// the router replays from its bounded log.
#ifndef STL_DIST_REPLICA_NODE_H_
#define STL_DIST_REPLICA_NODE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "dist/replica.h"
#include "dist/wire.h"
#include "engine/sharded_engine.h"

namespace stl {

/// One served replica: ShardReplica (queries) + inner engine
/// (kInstall replication). See file comment. Thread-safe: Handle may
/// run concurrently from server worker threads.
class ReplicaNode {
 public:
  /// Builds the inner engine from `graph` — which MUST be the same
  /// graph, hierarchy and engine options the router was built with
  /// (epoch determinism is the replication contract) — and installs
  /// its initial snapshot into the replica ring.
  ReplicaNode(Graph graph, const HierarchyOptions& hierarchy_options,
              const ShardedEngineOptions& engine_options,
              const ShardReplicaOptions& replica_options = {});

  /// Serves one encoded request: kInstall goes to the replication
  /// path, the query kinds to ShardReplica::Handle. Always returns an
  /// encoded response (nack / kUnavailable on malformed input).
  /// Matches FrameServer::Handler.
  std::vector<uint8_t> Handle(const uint8_t* data, size_t size);

  /// The query-serving replica (test observability: counters, freeze).
  ShardReplica* replica() { return &replica_; }

  /// Installs applied (acked ok) so far. Relaxed; test assertions.
  uint64_t installs_applied() const {
    return installs_applied_.load(std::memory_order_relaxed);
  }

  /// Installs nacked (gap, divergence or malformed). Relaxed.
  uint64_t install_nacks() const {
    return install_nacks_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<uint8_t> HandleInstall(const uint8_t* data, size_t size);

  ShardedEngine engine_;
  ShardReplica replica_;

  std::mutex install_mu_;   // serializes the apply/verify/install step
  uint64_t next_seq_ = 0;   // guarded by install_mu_
  bool diverged_ = false;   // guarded by install_mu_; sticky

  std::atomic<uint64_t> installs_applied_{0};
  std::atomic<uint64_t> install_nacks_{0};
};

}  // namespace stl

#endif  // STL_DIST_REPLICA_NODE_H_
