// One shard replica of the distributed tier: holds a short ring of the
// most recently installed ShardedSnapshots and serves the two wire
// requests (boundary-distance rows, intra-cell point queries) against
// the exact snapshot whose shard_epoch the request pins. The replica
// never answers from a different epoch: a version it does not hold
// comes back as a typed kUnavailable so the router fails over to a
// sibling — epoch consistency is enforced where the data lives, not
// trusted to the caller.
//
// Snapshots are installed by the router's writer (the control plane;
// in-process for the loopback tier) and served concurrently by
// whatever thread the transport delivers requests on; a mutex guards
// only the ring itself — the served state is immutable, so the actual
// row/point computation runs outside the lock.
#ifndef STL_DIST_REPLICA_H_
#define STL_DIST_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/sharded_engine.h"

namespace stl {

/// Construction knobs for one shard replica.
struct ShardReplicaOptions {
  /// How many installed snapshots the replica keeps. A deeper ring lets
  /// long-running batches pinned to older epochs still be served; a
  /// ring of 1 models a replica that only ever holds the latest
  /// version (maximally strict staleness behaviour for tests).
  size_t epoch_ring = 8;
};

/// An in-process shard replica: the server side of the wire protocol
/// (dist/wire.h). Thread-safe: Install and Handle may run
/// concurrently from different threads.
class ShardReplica {
 public:
  /// A replica with an empty ring; Install() publishes versions to it.
  explicit ShardReplica(const ShardReplicaOptions& options = {});

  /// Installs `snap` as the newest held version, evicting the oldest
  /// beyond the epoch ring. No-op while frozen (SetFrozen).
  void Install(std::shared_ptr<const ShardedSnapshot> snap);

  /// Test hook: a frozen replica ignores Install, so it falls behind
  /// the writer and answers requests for newer epochs kUnavailable —
  /// the deterministic way to force staleness and sibling failover.
  void SetFrozen(bool frozen);

  /// Serves one encoded ShardRequest and returns the encoded
  /// ShardResponse. Malformed requests, unknown shards/vertices and
  /// epochs the ring does not hold all come back as kUnavailable
  /// responses (never a wrong-epoch answer). Matches
  /// LoopbackTransport::Handler.
  std::vector<uint8_t> Handle(const uint8_t* data, size_t size);

  /// Requests answered kOk so far (relaxed; test assertions).
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// Requests rejected because the pinned shard_epoch was not held
  /// (stale or ahead of this replica), or were malformed.
  uint64_t requests_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Snapshots installed so far (frozen installs are not counted).
  uint64_t installs() const {
    return installs_.load(std::memory_order_relaxed);
  }

 private:
  /// Newest-first scan of the ring for a snapshot serving `shard` at
  /// exactly `shard_epoch`; null when none is held.
  std::shared_ptr<const ShardedSnapshot> FindEpoch(
      uint32_t shard, uint64_t shard_epoch) const;

  const ShardReplicaOptions options_;
  mutable std::mutex mu_;
  /// Held versions, oldest first (guarded by mu_; entries immutable).
  std::deque<std::shared_ptr<const ShardedSnapshot>> ring_;
  bool frozen_ = false;  // guarded by mu_
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> installs_{0};
};

}  // namespace stl

#endif  // STL_DIST_REPLICA_H_
