// The unified serving surface: one ServingCore owns the reader thread
// pool, the single-writer update-queue protocol, the snapshot
// publication slot, the result cache and every serving-side counter —
// QueryEngine (flat) and ShardedEngine (partitioned) are thin Apply +
// Route policies on top of it, so the Submit/Stats/lifecycle plumbing
// exists exactly once.
//
//   callers                       ServingCore<Policy>
//   ───────────────────────────   ──────────────────────────────────────
//   Submit()        -> future     compat adapter: one promise per query
//   SubmitBatch()   -> ticket     pins ONE snapshot for the whole batch,
//                                 consults the epoch-keyed result cache,
//                                 groups the misses by Policy::
//                                 BatchSortKey and routes them in chunks
//                                 on the reader pool (Policy::RouteSpan)
//   SubmitTagged()  -> sink       completion-queue mode: no promise, no
//   SubmitBatchTagged()           future — the answer is pushed to a
//                                 CompletionSink with the caller's tag
//
// Consistency contract (inherited by both engines): every query is
// answered exactly for the weights of the single epoch snapshot it was
// served from; a batch is answered entirely from the one snapshot
// pinned at submission, so its answers are bit-identical to per-query
// serving on that same epoch. Completions are delivered exactly once
// per submitted tag, including across engine destruction (the pool
// drains before the writer joins).
//
// Overload hardening (ServingOptions): submission is bounded. When the
// admission queue is full, new work is rejected — or the oldest queued
// work is shed — with a typed util::Status (kOverloaded) instead of
// queueing without bound; per-query/per-batch deadlines expire queued
// work as kDeadlineExceeded at dequeue (and between route chunks)
// before it consumes reader time; a writer-stall watchdog flips the
// engine into a DEGRADED mode (still serving, from the pinned stale
// snapshot and the result cache, with `degraded`/`staleness_epochs`
// surfaced in EngineStats) and recovers on its own once the writer
// catches up; destruction drains with an optional deadline, failing
// residual queued tags as kOverloaded rather than hanging. Exactly-once
// delivery holds for shed and expired tags exactly as for served ones.
// Every degraded path is forceable deterministically through the
// FaultInjector sites (engine/fault_injector.h).
#ifndef STL_ENGINE_SERVING_CORE_H_
#define STL_ENGINE_SERVING_CORE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/atomic_shared_ptr.h"
#include "engine/fault_injector.h"
#include "engine/latency_histogram.h"
#include "engine/thread_pool.h"
#include "engine/update_queue.h"
#include "graph/updates.h"
#include "index/distance_index.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"
#include "workload/query_workload.h"

namespace stl {

/// Absolute deadline for a submitted query or batch. Work still queued
/// when its deadline passes completes with StatusCode::kDeadlineExceeded
/// instead of consuming reader time.
using Deadline = std::chrono::steady_clock::time_point;

/// The default deadline: never expires.
inline constexpr Deadline kNoDeadline = Deadline::max();

/// What happens to a submission when the admission queue is at its
/// configured limit (ServingOptions::max_queued_queries / _batches).
enum class AdmissionPolicy {
  /// The NEW submission completes immediately with kOverloaded; queued
  /// work keeps its place (favors work already waiting).
  kRejectNew,
  /// The OLDEST still-queued work is shed with kOverloaded and the new
  /// submission is admitted (favors fresh work — queued work is the
  /// most likely to miss its deadline anyway).
  kShedOldest,
};

/// Overload-hardening knobs shared by every serving engine. All
/// default to "off" (unbounded admission, no deadlines enforced beyond
/// the ones callers pass, no watchdog, drain-forever shutdown), which
/// is the pre-hardening behaviour.
struct ServingOptions {
  /// Admission bound on queued (submitted, not yet routing) single
  /// queries; 0 = unbounded. At the bound, admission_policy decides.
  size_t max_queued_queries = 0;
  /// Admission bound on in-flight (submitted, not yet done) batch
  /// tickets; 0 = unbounded.
  size_t max_queued_batches = 0;
  /// Reject-new vs shed-oldest at the admission bound.
  AdmissionPolicy admission_policy = AdmissionPolicy::kRejectNew;
  /// Writer-stall watchdog: if updates are pending and the writer has
  /// made no progress for this long, the engine enters degraded mode
  /// (EngineStats::degraded + staleness_epochs) until the writer
  /// catches up. 0 disables the watchdog.
  double writer_stall_ms = 0;
  /// Destruction drains for at most this long before failing residual
  /// queued work with kOverloaded (exactly-once still holds for the
  /// failed tags). 0 = drain without bound (the original contract).
  double shutdown_drain_ms = 0;
  /// Deterministic fault hooks (tests/chaos bench only; not owned,
  /// must outlive the engine). Null = no faults, one branch per site.
  FaultInjector* fault_injector = nullptr;
};

/// The Status equivalent of a serving-path StatusCode (failure
/// messages are fixed strings; the hot path never allocates for kOk).
inline Status ServingStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kOverloaded:
      return Status::Overloaded("shed by admission control");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("deadline passed before routing");
    case StatusCode::kUnavailable:
      return Status::Unavailable("no replica could serve the pinned epoch");
    default:
      return Status::Internal("unexpected serving status");
  }
}

/// How the writer picks the STL maintenance algorithm per batch (other
/// backends use their own single maintenance scheme and ignore this).
enum class StrategyMode {
  kAlwaysParetoSearch,  ///< STL-P for every batch.
  kAlwaysLabelSearch,   ///< STL-L for every batch.
  /// Per-batch choice: Label Search amortizes its per-ancestor searches
  /// over large batches (Table 3); Pareto Search wins on small ones.
  kAuto,
};

/// The per-batch STL maintenance choice for `mode` on a batch of
/// `batch_size` effective updates (`auto_threshold` only matters for
/// StrategyMode::kAuto). Shared by both serving engines.
inline MaintenanceStrategy ChooseStrategy(StrategyMode mode,
                                          size_t auto_threshold,
                                          size_t batch_size) {
  switch (mode) {
    case StrategyMode::kAlwaysParetoSearch:
      return MaintenanceStrategy::kParetoSearch;
    case StrategyMode::kAlwaysLabelSearch:
      return MaintenanceStrategy::kLabelSearch;
    case StrategyMode::kAuto:
      break;
  }
  return batch_size >= auto_threshold
             ? MaintenanceStrategy::kLabelSearch
             : MaintenanceStrategy::kParetoSearch;
}

/// Per-shard serving counters, reported by the sharded engine
/// (engine/sharded_engine.h). Always empty for the flat QueryEngine.
struct ShardStats {
  /// Cell id (index into the engine's shard layout).
  uint32_t shard = 0;
  /// Vertices owned by the cell (|C_i|).
  uint32_t cell_vertices = 0;
  /// Boundary vertices adjacent to the cell (|S_i|).
  uint32_t boundary_vertices = 0;
  /// Edges owned by the shard's subgraph.
  uint32_t subgraph_edges = 0;
  /// This shard's own epoch counter: bumps only when an update batch
  /// dirtied the shard (0 = still serving its initial publish).
  uint64_t shard_epoch = 0;
  /// Effective updates routed to this shard so far.
  uint64_t updates_applied = 0;
  /// Serving-view bytes unique to this shard (shared blocks counted
  /// once across the whole engine).
  uint64_t resident_bytes = 0;
};

/// Point-in-time engine counters and latency summary.
struct EngineStats {
  /// The index family serving the engine.
  BackendKind backend = BackendKind::kStl;
  uint64_t queries_served = 0;     ///< Queries answered so far.
  uint64_t updates_enqueued = 0;   ///< Updates ever enqueued.
  uint64_t updates_applied = 0;    ///< Effective updates (after coalescing).
  uint64_t updates_coalesced = 0;  ///< Duplicates / no-ops dropped.
  uint64_t epochs_published = 0;   ///< Snapshots published after epoch 0.
  uint64_t batches_pareto = 0;       ///< STL-P batches.
  uint64_t batches_label = 0;        ///< STL-L batches.
  uint64_t batches_incremental = 0;  ///< DCH / IncH2H batches.
  uint64_t batches_rebuild = 0;      ///< Static-backend full rebuilds.
  // Batched submission (SubmitBatch / SubmitBatchTagged).
  uint64_t query_batches_submitted = 0;  ///< Batch tickets issued.
  uint64_t batched_queries = 0;  ///< Queries that arrived inside a batch.
  // Epoch-keyed (s, t) result memo (EngineOptions::result_cache_entries;
  // zero when the cache is disabled).
  uint64_t result_cache_lookups = 0;  ///< Cache probes on the read path.
  uint64_t result_cache_hits = 0;     ///< Probes answered from the cache.
  double result_cache_hit_rate = 0;   ///< hits / lookups (0 when unused).
  // Copy-on-write publish economics. cow_bytes_cloned counts bytes of
  // label pages + graph weight chunks detached by maintenance (the true
  // per-epoch copy cost under structural sharing);
  // publish_bytes_deep_copied counts bytes copied by deep-copy publishes
  // (flat_publish baseline, and every CH/H2H epoch).
  uint64_t label_pages_cloned = 0;   ///< CoW label pages detached.
  uint64_t graph_chunks_cloned = 0;  ///< CoW graph weight chunks detached.
  uint64_t cow_bytes_cloned = 0;     ///< Bytes of the above clones.
  uint64_t publish_bytes_deep_copied = 0;  ///< Deep-copy publish bytes.
  double publish_total_micros = 0;  ///< Time inside snapshot publication.
  /// Actual resident bytes of the serving state (current snapshot's view
  /// + graph + any state shared with it), with every shared physical
  /// page/chunk counted exactly once (Table-4-style honest memory under
  /// page sharing). The STL master shares all but its not-yet-published
  /// dirty pages with the snapshot, so those appear here after the next
  /// publish.
  uint64_t resident_index_bytes = 0;
  // Sharded serving (engine/sharded_engine.h); zero / empty for the
  // flat QueryEngine.
  uint32_t num_shards = 0;           ///< Cells served (0 = unsharded).
  uint32_t boundary_vertices = 0;    ///< Overlay size |S|.
  uint64_t overlay_republishes = 0;  ///< Overlay tables published.
  /// Time spent rebuilding boundary cliques + the all-pairs overlay
  /// table (a subset of publish_total_micros).
  double overlay_rebuild_micros = 0;
  /// Time inside BoundaryOverlay::Publish alone (repair or fallback
  /// rebuild; a subset of overlay_rebuild_micros).
  double overlay_repair_micros = 0;
  /// Boundary rows recomputed by a per-source Dijkstra across all
  /// overlay publishes (n per full rebuild; the dirty-source set R per
  /// incremental repair).
  uint64_t overlay_rows_repaired = 0;
  /// Boundary rows published across all overlay publishes (n per
  /// publish) — the denominator for overlay_rows_repaired.
  uint64_t overlay_rows_total = 0;
  /// Overlay publishes that ran the from-scratch all-pairs rebuild
  /// (first publish, dirty set over threshold, or repair disallowed,
  /// e.g. FaultSite::kOverlayRepair).
  uint64_t overlay_full_rebuilds = 0;
  /// Shard clique entries recomputed by dirty-clique rebuilds (sum of
  /// |S_i| * (|S_i| - 1) / 2 over rebuilt shards, all epochs).
  uint64_t clique_entries_recomputed = 0;
  /// Payload bytes of overlay rows pointer-shared with the previous
  /// epoch instead of copied (full-table + packed copies).
  uint64_t overlay_bytes_shared = 0;
  // Epoch-keyed boundary-row cache
  // (ShardedEngineOptions::boundary_row_cache_entries; zero when off).
  uint64_t boundary_row_cache_lookups = 0;  ///< Row-cache probes.
  uint64_t boundary_row_cache_hits = 0;     ///< Probes served from cache.
  /// hits / lookups (0 when the cache is disabled or untouched).
  double boundary_row_cache_hit_rate = 0;
  std::vector<ShardStats> shards;    ///< Per-shard counters.
  // Overload & degradation (the ServingOptions robustness layer).
  /// True while the writer-stall watchdog holds the engine in degraded
  /// mode: updates are pending but the writer has made no progress for
  /// longer than ServingOptions::writer_stall_ms. Queries keep being
  /// served (exactly, from the pinned stale snapshot and the result
  /// cache); the flag tells operators the answers are aging.
  bool degraded = false;
  /// While degraded: roughly how many epochs behind the serving
  /// snapshot is (ceil(pending updates / max_batch_size)); 0 otherwise.
  uint64_t staleness_epochs = 0;
  /// Times the watchdog flipped the engine into degraded mode.
  uint64_t degraded_entries = 0;
  /// Queries completed with kOverloaded (admission rejects + sheds,
  /// including per-query members of shed batches and tags failed by
  /// the shutdown drain deadline).
  uint64_t queries_shed = 0;
  /// Batch tickets rejected or shed by admission control.
  uint64_t batches_shed = 0;
  /// Queries completed with kDeadlineExceeded (expired at dequeue or
  /// between route chunks, without consuming reader time).
  uint64_t queries_deadline_exceeded = 0;
  /// Queries the routing policy itself failed with kUnavailable: every
  /// replica of a required shard was unreachable or stale for the
  /// pinned epoch (dist/shard_router.h). Always zero for in-process
  /// engines, whose routing cannot fail.
  uint64_t queries_unavailable = 0;
  /// Coalesced update batches dropped by an injected apply failure
  /// (FaultSite::kApplyFailure); the master state stays untouched.
  uint64_t apply_failures = 0;
  /// Completion deliveries whose first attempt was dropped at
  /// FaultSite::kCompletionDropCandidate and redelivered by the
  /// exactly-once retry path.
  uint64_t completions_retried = 0;
  /// Point-in-time admission queue depth (submitted single queries not
  /// yet claimed by a reader); 0 when admission tracking is off.
  uint64_t queued_queries = 0;
  double wall_seconds = 0;           ///< Wall time since start / reset.
  double queries_per_second = 0;     ///< queries_served / wall_seconds.
  double latency_mean_micros = 0;    ///< Mean request latency.
  double latency_p50_micros = 0;     ///< Median request latency.
  double latency_p99_micros = 0;     ///< 99th-percentile latency.
  double latency_max_micros = 0;     ///< Largest observed latency.
};

/// One finished query in completion-queue delivery mode. Carries the
/// caller's tag instead of a snapshot pointer, so the high-qps path
/// allocates no promise and keeps no snapshot alive per query.
struct Completion {
  /// The tag the caller attached at submission (request id, slot index,
  /// pointer bits — opaque to the engine).
  uint64_t tag = 0;
  /// Exact distance for the serving snapshot's weights. Meaningful
  /// only when code == StatusCode::kOk (kInfDistance otherwise).
  Weight distance = kInfDistance;
  /// Epoch of the snapshot the query was served from.
  uint64_t epoch = 0;
  /// Submit-to-completion latency (queue wait included).
  double latency_micros = 0;
  /// kOk for an answered query; kOverloaded for work shed by admission
  /// control (or failed by the shutdown drain deadline);
  /// kDeadlineExceeded for work whose deadline passed before routing;
  /// kUnavailable when the routing policy itself failed (routed mode,
  /// every replica of a required shard unreachable or stale).
  /// Every submitted tag is delivered exactly once regardless of code.
  StatusCode code = StatusCode::kOk;
};

/// Where completion-mode answers go. Deliver() is called exactly once
/// per submitted tag, from a reader-pool thread (or from the submitting
/// thread for result-cache hits inside SubmitBatchTagged); it must be
/// thread-safe and should not block for long — it runs on the serving
/// path.
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;  ///< Sinks are caller-owned.

  /// Accepts one finished query. Called exactly once per tag.
  virtual void Deliver(const Completion& done) = 0;
};

/// The default sink: an unbounded MPMC completion queue the caller
/// drains with Poll() (non-blocking) or WaitPoll() (blocking). All
/// methods are thread-safe.
class CompletionQueue final : public CompletionSink {
 public:
  /// Pushes one completion and wakes one waiting poller.
  void Deliver(const Completion& done) override;

  /// Drains up to `max_completions` finished queries into `out` without
  /// blocking. Returns how many were written (0 when empty).
  size_t Poll(Completion* out, size_t max_completions);

  /// Blocks until at least one completion is available, then drains up
  /// to `max_completions` into `out`. Returns how many were written.
  size_t WaitPoll(Completion* out, size_t max_completions);

  /// Like WaitPoll, but gives up after `timeout` and returns 0 if no
  /// completion arrived. A zero or negative timeout (a deadline in the
  /// past) never blocks — it degenerates to Poll().
  size_t WaitPoll(Completion* out, size_t max_completions,
                  std::chrono::milliseconds timeout);

  /// Completions currently queued (point-in-time).
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<Completion> done_;
};

/// Epoch-keyed (s, t) distance memo shared by every submission path.
/// Invalidation is free: the serving epoch is part of the key, so a
/// published epoch's entries simply stop matching (the snapshot's epoch
/// id is unique for the engine's lifetime — it doubles as the pointer
/// identity of the published snapshot). Direct-mapped, fixed-size,
/// wait-free on both paths: slots are version-validated sequences of
/// relaxed atomics (a torn read fails validation and reads as a miss),
/// so lookups never lock and a contended insert is simply dropped.
class ResultCache {
 public:
  /// A cache with capacity for `entries` (s, t) pairs, rounded up to a
  /// power of two. 0 disables the cache (Lookup always misses, Insert
  /// is a no-op, no memory is allocated).
  explicit ResultCache(size_t entries);

  /// False iff constructed with 0 entries.
  bool enabled() const { return mask_ != 0 || slots_ != nullptr; }

  /// True iff the cache holds the exact distance for (s, t) under epoch
  /// `epoch`; writes it to `*distance`. Counts one lookup (and one hit
  /// on success).
  bool Lookup(Vertex s, Vertex t, uint64_t epoch, Weight* distance) const;

  /// Records the exact distance for (s, t) under `epoch`, overwriting
  /// whatever occupied the slot. Dropped silently when another thread
  /// is mid-insert on the same slot.
  void Insert(Vertex s, Vertex t, uint64_t epoch, Weight distance);

  /// Probes so far (relaxed; monitoring only).
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  /// Probes answered from the cache so far.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// Zeroes the hit/lookup counters (entries stay valid: they are
  /// epoch-keyed, so stale ones can never serve a wrong answer).
  void ResetCounters();

 private:
  struct Slot {
    // Even = stable, odd = an insert is in flight. Readers re-validate
    // the version after loading the payload; all fields are atomics so
    // the scheme is data-race-free (TSan-clean) and a torn read can
    // only produce a miss, never a wrong hit.
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> key{~uint64_t{0}};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint32_t> distance{0};
  };

  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> hits_{0};
};

/// The serving-side counter block shared by every engine: relaxed
/// atomics for monitoring, the latency histogram, and the wall clock.
/// Policies bump the maintenance/publish counters from the writer
/// thread; ServingCore bumps the query-side ones from the reader pool.
struct ServingCounters {
  std::atomic<uint64_t> queries_served{0};   ///< Queries answered.
  std::atomic<uint64_t> updates_applied{0};  ///< Effective updates.
  std::atomic<uint64_t> updates_coalesced{0};  ///< Dropped no-ops/dups.
  /// Snapshots published after epoch 0. Doubles as the epoch-id
  /// allocator, so it survives ResetStats().
  std::atomic<uint64_t> epochs_published{0};
  BatchExecutionCounters batch_counters;     ///< How batches executed.
  std::atomic<uint64_t> label_pages_cloned{0};   ///< CoW label pages.
  std::atomic<uint64_t> graph_chunks_cloned{0};  ///< CoW graph chunks.
  std::atomic<uint64_t> cow_bytes_cloned{0};     ///< Bytes CoW-cloned.
  /// Bytes copied by deep-copy publishes (flat_publish, CH/H2H epochs).
  std::atomic<uint64_t> publish_bytes_deep_copied{0};
  std::atomic<uint64_t> publish_nanos{0};  ///< Time inside publication.
  /// Batch tickets issued (SubmitBatch / SubmitBatchTagged).
  std::atomic<uint64_t> query_batches_submitted{0};
  /// Queries that arrived inside a batch.
  std::atomic<uint64_t> batched_queries{0};
  /// Queries completed with kOverloaded.
  std::atomic<uint64_t> queries_shed{0};
  /// Batch tickets rejected or shed by admission control.
  std::atomic<uint64_t> batches_shed{0};
  /// Queries completed with kDeadlineExceeded.
  std::atomic<uint64_t> queries_deadline_exceeded{0};
  /// Queries the routing policy failed with kUnavailable (routed-mode
  /// replica exhaustion; zero for in-process engines).
  std::atomic<uint64_t> queries_unavailable{0};
  /// Update batches dropped by an injected apply failure.
  std::atomic<uint64_t> apply_failures{0};
  /// Completion deliveries redelivered by the exactly-once retry path.
  std::atomic<uint64_t> completions_retried{0};
  /// Times the watchdog flipped the engine into degraded mode.
  std::atomic<uint64_t> degraded_entries{0};
  /// Submit-to-completion latency of ANSWERED (kOk) queries. Shed and
  /// expired work is excluded so overload cannot poison the served
  /// quantiles; its latencies travel in the Completion / result.
  LatencyHistogram latency;
  Timer wall;                ///< Serving wall clock (Restart on start).

  /// Copies the counter block into the matching EngineStats fields and
  /// derives the rates (qps, latency quantiles).
  void FillStats(EngineStats* s) const;

  /// Zeroes everything except epochs_published (the epoch-id allocator:
  /// snapshot epochs must stay unique for the engine's lifetime) and
  /// restarts the wall clock.
  void Reset();
};

/// A handle to one submitted batch. The whole batch is answered from
/// the single snapshot pinned when SubmitBatch was called, so every
/// distance is exact for that epoch — bit-identical to what per-query
/// Submit calls would have returned on the same snapshot. Cheap to copy
/// (shared state); default-constructed tickets are empty.
template <typename Snapshot>
class BatchTicket {
 public:
  /// An empty ticket (no queries; Wait() returns immediately).
  BatchTicket() = default;

  /// True iff this ticket came from a SubmitBatch call.
  bool valid() const { return state_ != nullptr; }

  /// Number of queries in the batch.
  size_t size() const { return state_ ? state_->distances.size() : 0; }

  /// Blocks until every query in the batch has been answered.
  void Wait() const {
    if (!state_) return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->done_cv.wait(lock, [this] { return state_->done; });
  }

  /// Exact distance of query i under the pinned epoch's weights
  /// (blocks until the batch is done). Meaningful only when
  /// code(i) == StatusCode::kOk; kInfDistance for shed/expired queries.
  Weight distance(size_t i) const {
    Wait();
    STL_CHECK(state_ != nullptr && i < state_->distances.size());
    return state_->distances[i];
  }

  /// Completion code of query i (blocks until the batch is done): kOk
  /// when answered, kOverloaded when shed by admission control or the
  /// shutdown drain, kDeadlineExceeded when the batch deadline passed
  /// before its chunk was routed, kUnavailable when the routing policy
  /// failed the query (routed-mode replica exhaustion).
  StatusCode code(size_t i) const {
    Wait();
    STL_CHECK(state_ != nullptr && i < state_->codes.size());
    return state_->codes[i];
  }

  /// Typed status of query i (ServingStatus(code(i))).
  Status status(size_t i) const { return ServingStatus(code(i)); }

  /// Epoch of the pinned snapshot.
  uint64_t epoch() const {
    STL_CHECK(state_ != nullptr);
    return state_->snapshot->epoch;
  }

  /// The snapshot the whole batch was served from (never null on a
  /// valid ticket); lets callers audit every answer against the exact
  /// weights of that one epoch.
  const std::shared_ptr<const Snapshot>& snapshot() const {
    STL_CHECK(state_ != nullptr);
    return state_->snapshot;
  }

  /// Submit-to-last-answer latency of the batch (blocks until done).
  double latency_micros() const {
    Wait();
    STL_CHECK(state_ != nullptr);
    return state_->latency_micros;
  }

 private:
  template <typename Policy>
  friend class ServingCore;

  struct State {
    std::vector<QueryPair> queries;
    std::vector<Weight> distances;
    // Per-query completion codes. A slot is written exactly once, by
    // whoever claims its chunk (reader, shedder or drain), before the
    // batch is marked done; readers look only after Wait().
    std::vector<StatusCode> codes;
    // Miss indices into `queries`, sorted by the policy's batch key so
    // same-group queries land in the same chunk. Immutable once the
    // chunks are enqueued.
    std::vector<uint32_t> order;
    // Chunk c covers order[chunk_begin[c] .. chunk_begin[c+1]); the
    // trailing entry is order.size(). Immutable once enqueued.
    std::vector<uint32_t> chunk_begin;
    // One claim flag per chunk: the reader that routes it, the
    // admission shedder, or the drain path — whoever wins the exchange
    // completes (and delivers) that chunk's queries exactly once.
    std::unique_ptr<std::atomic<bool>[]> chunk_claimed;
    // Set when admission control shed this batch; only claim winners
    // act on it, so it needs no ordering beyond the claim itself.
    std::atomic<bool> shed{false};
    // Set (after done) for cheap lock-free FIFO pruning.
    std::atomic<bool> finished{false};
    // True iff the ticket was registered with admission control (it
    // then holds an in-flight slot until its last chunk completes).
    bool tracked = false;
    Deadline deadline = kNoDeadline;
    // Completion-mode extras (empty / null for plain SubmitBatch).
    std::vector<uint64_t> tags;
    CompletionSink* sink = nullptr;
    std::shared_ptr<const Snapshot> snapshot;
    std::chrono::steady_clock::time_point submitted;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending_chunks = 0;  // guarded by mu
    double latency_micros = 0;  // guarded by mu until done
    bool done = false;          // guarded by mu
  };

  explicit BatchTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Construction knobs common to every serving engine (each engine's
/// options struct converts into one of these).
struct ServingCoreOptions {
  /// Reader threads.
  int num_query_threads = 4;
  /// Updates taken from the pending queue per epoch (larger batches mean
  /// fewer snapshot publishes but staler reads).
  size_t max_batch_size = 128;
  /// Capacity of the epoch-keyed (s, t) result memo; 0 disables it.
  size_t result_cache_entries = 0;
  /// Overload-hardening knobs (admission bounds, watchdog, drain
  /// deadline, fault hooks). Defaults to everything off.
  ServingOptions serving;
};

/// Detects Policy::kAsyncRoute (false when absent): async policies
/// route via RouteAsync/RouteSpanAsync continuations instead of
/// blocking Route/RouteSpan calls on the reader thread.
template <typename Policy, typename = void>
struct PolicyRoutesAsync : std::false_type {};

/// Specialization picked when the policy declares kAsyncRoute.
template <typename Policy>
struct PolicyRoutesAsync<Policy, std::void_t<decltype(Policy::kAsyncRoute)>>
    : std::bool_constant<Policy::kAsyncRoute> {};

/// The one serving core both engines are built on. Owns the reader
/// pool, the single-writer update queue, the snapshot slot, the result
/// cache and the counters; the Policy supplies what differs between
/// engines — how a coalesced batch is applied and published (Apply
/// side) and how a query is routed on a snapshot (Route side).
///
/// Policy requirements:
///   using Snapshot / Result   — the published epoch type (must expose
///       a uint64_t `epoch`) and the per-query result type (must expose
///       distance / epoch / latency_micros / snapshot / code fields).
///   void PublishInitial()     — build + Publish() the epoch-0 snapshot.
///   Weight ResolveOldWeight(EdgeId) — master weight authority for
///       coalescing.
///   void ApplyBatch(const UpdateBatch&) — apply one coalesced batch to
///       the master state and Publish() the next snapshot (writer
///       thread only).
///   uint32_t NumEdges()       — update validation bound.
///   Weight Route(const Snapshot&, Vertex, Vertex, StatusCode* code) —
///       answer one query. *code is pre-set to kOk; a policy whose
///       routing can fail (the distributed router) writes the failure
///       code and returns kInfDistance. In-process policies never
///       touch it.
///   static constexpr bool kGroupsBatches — whether batch misses are
///       sorted by BatchSortKey before chunking.
///   uint64_t BatchSortKey(const Snapshot&, const QueryPair&) — the
///       grouping key (cell pair, target) for batched routing.
///   void RouteSpan(const Snapshot&, const QueryPair* queries,
///                  const uint32_t* idx, size_t count, Weight* out,
///                  StatusCode* codes) —
///       answer queries[idx[j]] into out[idx[j]] for j < count,
///       reusing per-group state across the span. codes[idx[j]] is
///       pre-set to kOk; written only on per-query routing failure.
///   void AugmentStats(EngineStats*) — engine-specific stats fields
///       (backend, resident bytes, shard rows).
///
/// Async policies (static constexpr bool kAsyncRoute = true) replace
/// Route/RouteSpan with continuation-passing variants — the reader
/// thread that picks the query off the pool issues the request and
/// returns immediately instead of parking until the answer arrives, so
/// a fan-out of N remote RPCs blocks zero reader threads:
///   void RouteAsync(std::shared_ptr<const Snapshot>, Vertex s, Vertex t,
///                   std::function<void(Weight, StatusCode)> done) —
///       answer one query; invoke `done` exactly once, inline or from
///       any policy-owned thread.
///   void RouteSpanAsync(std::shared_ptr<const Snapshot>,
///                       const QueryPair* queries, const uint32_t* idx,
///                       size_t count, Weight* out, StatusCode* codes,
///                       std::function<void()> done) —
///       async RouteSpan: fill out[idx[j]] / codes[idx[j]] for j <
///       count, then invoke `done` exactly once. The arrays stay valid
///       until `done` runs (the core keeps the ticket alive).
/// The core tracks every issued continuation; its destructor waits for
/// all of them after the pool drains, so `done` may always touch the
/// arrays it was handed.
///
/// Thread-safety: Submit*/EnqueueUpdate*/Flush/Stats may be called from
/// any thread. Destruction drains: every submitted query is answered
/// and every enqueued update applied before the destructor returns.
template <typename Policy>
class ServingCore {
 public:
  /// The policy's published epoch type.
  using Snapshot = typename Policy::Snapshot;
  /// The policy's per-query result type.
  using Result = typename Policy::Result;
  /// The batch handle type returned by SubmitBatch.
  using Ticket = BatchTicket<Snapshot>;

  /// Binds to `policy` (not owned; must outlive the core) and starts
  /// the reader pool. The core is inert until Start(): the owning
  /// engine builds its master state first, then calls Start().
  ServingCore(Policy* policy, const ServingCoreOptions& options)
      : policy_(policy),
        options_(options),
        serving_(options.serving),
        faults_(options.serving.fault_injector),
        track_queries_(serving_.max_queued_queries > 0 ||
                       serving_.shutdown_drain_ms > 0),
        track_batches_(serving_.max_queued_batches > 0 ||
                       serving_.shutdown_drain_ms > 0),
        cache_(options.result_cache_entries),
        pool_(options.num_query_threads) {
    STL_CHECK_GE(options_.max_batch_size, size_t{1});
  }

  /// Drains: answers every submitted query and applies every enqueued
  /// update, then joins the workers and the writer. With
  /// ServingOptions::shutdown_drain_ms set, the query drain is bounded:
  /// work still queued when the drain deadline passes is claimed and
  /// failed kOverloaded (delivered exactly once like any other
  /// completion) instead of being answered.
  ~ServingCore() {
    if (serving_.shutdown_drain_ms > 0) DrainWithDeadline();
    if (watchdog_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(watchdog_mu_);
        watchdog_stop_ = true;
      }
      watchdog_cv_.notify_all();
      watchdog_.join();
    }
    // The writer must be gone before the pool: publish borrows the idle
    // reader pool for the dirty-clique recompute, so joining in the
    // other order races the writer's pool use against pool teardown.
    // Readers never wait on the writer, so stopping it first cannot
    // strand a query.
    updates_.Stop();
    if (writer_.joinable()) writer_.join();  // drains pending updates
    pool_.Shutdown();  // answer every query already submitted
    if constexpr (PolicyRoutesAsync<Policy>::value) {
      // Async policies may still owe continuations for queries the
      // drained pool tasks issued; every one touches ticket/result
      // state this core hands out, so wait them all out before any
      // member dies. The policy's transport must outlive this core
      // (it does: the owning engine declares the core last).
      std::unique_lock<std::mutex> lock(async_mu_);
      async_cv_.wait(lock, [this] { return async_inflight_ == 0; });
    }
  }

  ServingCore(const ServingCore&) = delete;             ///< Not copyable.
  ServingCore& operator=(const ServingCore&) = delete;  ///< Not copyable.

  /// Publishes epoch 0 through the policy, starts the writer thread
  /// (and the stall watchdog when writer_stall_ms is set) and restarts
  /// the serving wall clock. Call exactly once, at the end of the
  /// owning engine's constructor.
  void Start() {
    policy_->PublishInitial();
    STL_CHECK(current_.load() != nullptr)
        << "PublishInitial() must publish the epoch-0 snapshot";
    writer_ = std::thread([this] { WriterLoop(); });
    if (serving_.writer_stall_ms > 0) {
      watchdog_ = std::thread([this] { WatchdogLoop(); });
    }
    // Start the throughput clock after the (potentially long) index
    // build, so Stats() reports serving throughput, not build dilution.
    counters_.wall.Restart();
  }

  /// Schedules one distance query; the future resolves when a reader
  /// thread has answered it — or, under overload, when admission
  /// control sheds it (Result::code == kOverloaded) or `deadline`
  /// passes before a reader dequeues it (kDeadlineExceeded, without
  /// consuming routing time). Compatibility adapter over the completion
  /// machinery: allocates one promise per query — high-qps callers
  /// should prefer SubmitBatch or the tagged sink paths.
  std::future<Result> Submit(QueryPair query,
                             Deadline deadline = kNoDeadline) {
    auto promise = std::make_shared<std::promise<Result>>();
    std::future<Result> result = promise->get_future();
    const auto submitted = std::chrono::steady_clock::now();
    // Completes the future without an answer (admission shed, expired
    // deadline, or shutdown drain) — exactly once, via the unit claim.
    auto finish_failed = [this, promise, submitted](StatusCode code) {
      Result r;
      r.distance = kInfDistance;
      r.code = code;
      std::shared_ptr<const Snapshot> snap = current_.load();
      r.epoch = snap != nullptr ? snap->epoch : 0;
      r.latency_micros = static_cast<double>(NanosSince(submitted)) / 1e3;
      r.snapshot = std::move(snap);
      promise->set_value(std::move(r));
    };
    std::shared_ptr<QueryAdmission> unit;
    if (track_queries_) {
      unit = std::make_shared<QueryAdmission>();
      unit->fail = finish_failed;
      if (!AdmitQuery(unit)) {
        counters_.queries_shed.fetch_add(1, std::memory_order_relaxed);
        finish_failed(StatusCode::kOverloaded);
        return result;
      }
    }
    const bool accepted = pool_.Enqueue(
        [this, query, promise, submitted, deadline,
         finish_failed = std::move(finish_failed),
         unit = std::move(unit)] {
          if (unit != nullptr) {
            if (unit->claimed.exchange(true)) return;  // shed or drained
            queued_queries_.fetch_sub(1, std::memory_order_relaxed);
          }
          if (deadline != kNoDeadline &&
              std::chrono::steady_clock::now() >= deadline) {
            counters_.queries_deadline_exceeded.fetch_add(
                1, std::memory_order_relaxed);
            finish_failed(StatusCode::kDeadlineExceeded);
            return;
          }
          MaybeReaderDelay();
          // The entire read path: one atomic load, then const reads on
          // an immutable snapshot. Never blocks on maintenance work.
          std::shared_ptr<const Snapshot> snap = current_.load();
          if constexpr (PolicyRoutesAsync<Policy>::value) {
            // Issue-and-return: the continuation finishes the promise
            // whenever the policy answers; this reader is free now.
            RouteWithCacheAsync(
                snap, query.first, query.second,
                [this, promise, submitted, snap](Weight d,
                                                 StatusCode code) {
                  Result r;
                  r.distance = d;
                  r.code = code;
                  r.epoch = snap->epoch;
                  const uint64_t nanos = NanosSince(submitted);
                  r.latency_micros = static_cast<double>(nanos) / 1e3;
                  r.snapshot = snap;
                  if (code == StatusCode::kOk) {
                    counters_.latency.Record(nanos);
                    counters_.queries_served.fetch_add(
                        1, std::memory_order_relaxed);
                  } else {
                    counters_.queries_unavailable.fetch_add(
                        1, std::memory_order_relaxed);
                  }
                  promise->set_value(std::move(r));
                });
          } else {
            Result r;
            StatusCode code = StatusCode::kOk;
            r.distance =
                RouteWithCache(*snap, query.first, query.second, &code);
            r.code = code;
            r.epoch = snap->epoch;
            const uint64_t nanos = NanosSince(submitted);
            r.latency_micros = static_cast<double>(nanos) / 1e3;
            r.snapshot = std::move(snap);
            if (code == StatusCode::kOk) {
              counters_.latency.Record(nanos);
              counters_.queries_served.fetch_add(
                  1, std::memory_order_relaxed);
            } else {
              counters_.queries_unavailable.fetch_add(
                  1, std::memory_order_relaxed);
            }
            promise->set_value(std::move(r));
          }
        });
    STL_CHECK(accepted) << "Submit() on a shut-down engine";
    return result;
  }

  /// Schedules a batch of queries pinned to ONE snapshot: the current
  /// epoch is loaded once, result-cache hits are answered inline, and
  /// the misses are grouped by the policy's batch key and routed in
  /// chunks on the reader pool. The returned ticket resolves when every
  /// answer is in; answers are bit-identical to per-query Submit calls
  /// on the same pinned snapshot. Under overload the whole batch may be
  /// rejected or shed kOverloaded, and `deadline` expires chunks still
  /// queued when it passes as kDeadlineExceeded (per-query codes on the
  /// ticket).
  Ticket SubmitBatch(const std::vector<QueryPair>& queries,
                     Deadline deadline = kNoDeadline) {
    return SubmitBatchInternal(queries, nullptr, nullptr, deadline);
  }

  /// Completion-queue mode, single query: no promise, no future — the
  /// completion is delivered to `sink` exactly once with the caller's
  /// tag, whether the query was answered (code kOk), shed by admission
  /// control or the shutdown drain (kOverloaded), or expired at dequeue
  /// (kDeadlineExceeded).
  void SubmitTagged(QueryPair query, uint64_t tag, CompletionSink* sink,
                    Deadline deadline = kNoDeadline) {
    STL_CHECK(sink != nullptr);
    const auto submitted = std::chrono::steady_clock::now();
    // Delivers the tag without an answer — exactly once, via the claim.
    auto finish_failed = [this, tag, sink, submitted](StatusCode code) {
      Completion done;
      done.tag = tag;
      done.code = code;
      std::shared_ptr<const Snapshot> snap = current_.load();
      done.epoch = snap != nullptr ? snap->epoch : 0;
      done.latency_micros = static_cast<double>(NanosSince(submitted)) / 1e3;
      DeliverCompletion(sink, done);
    };
    std::shared_ptr<QueryAdmission> unit;
    if (track_queries_) {
      unit = std::make_shared<QueryAdmission>();
      unit->fail = finish_failed;
      if (!AdmitQuery(unit)) {
        counters_.queries_shed.fetch_add(1, std::memory_order_relaxed);
        finish_failed(StatusCode::kOverloaded);
        return;
      }
    }
    const bool accepted = pool_.Enqueue(
        [this, query, tag, sink, submitted, deadline,
         finish_failed = std::move(finish_failed),
         unit = std::move(unit)] {
          if (unit != nullptr) {
            if (unit->claimed.exchange(true)) return;  // shed or drained
            queued_queries_.fetch_sub(1, std::memory_order_relaxed);
          }
          if (deadline != kNoDeadline &&
              std::chrono::steady_clock::now() >= deadline) {
            counters_.queries_deadline_exceeded.fetch_add(
                1, std::memory_order_relaxed);
            finish_failed(StatusCode::kDeadlineExceeded);
            return;
          }
          MaybeReaderDelay();
          std::shared_ptr<const Snapshot> snap = current_.load();
          if constexpr (PolicyRoutesAsync<Policy>::value) {
            const uint64_t epoch = snap->epoch;
            RouteWithCacheAsync(
                std::move(snap), query.first, query.second,
                [this, tag, sink, submitted, epoch](Weight d,
                                                    StatusCode code) {
                  Completion done;
                  done.tag = tag;
                  done.distance = d;
                  done.code = code;
                  done.epoch = epoch;
                  const uint64_t nanos = NanosSince(submitted);
                  done.latency_micros = static_cast<double>(nanos) / 1e3;
                  if (code == StatusCode::kOk) {
                    counters_.latency.Record(nanos);
                    counters_.queries_served.fetch_add(
                        1, std::memory_order_relaxed);
                  } else {
                    counters_.queries_unavailable.fetch_add(
                        1, std::memory_order_relaxed);
                  }
                  DeliverCompletion(sink, done);
                });
          } else {
            Completion done;
            done.tag = tag;
            StatusCode code = StatusCode::kOk;
            done.distance =
                RouteWithCache(*snap, query.first, query.second, &code);
            done.code = code;
            done.epoch = snap->epoch;
            const uint64_t nanos = NanosSince(submitted);
            done.latency_micros = static_cast<double>(nanos) / 1e3;
            if (code == StatusCode::kOk) {
              counters_.latency.Record(nanos);
              counters_.queries_served.fetch_add(
                  1, std::memory_order_relaxed);
            } else {
              counters_.queries_unavailable.fetch_add(
                  1, std::memory_order_relaxed);
            }
            DeliverCompletion(sink, done);
          }
        });
    STL_CHECK(accepted) << "SubmitTagged() on a shut-down engine";
  }

  /// Completion-queue mode, batched: pins one snapshot like
  /// SubmitBatch and delivers `tags[i]` with query i's answer to `sink`
  /// exactly once (result-cache hits are delivered inline from the
  /// submitting thread). Also returns the ticket for callers that want
  /// to Wait() or audit against the pinned snapshot.
  Ticket SubmitBatchTagged(const std::vector<QueryPair>& queries,
                           const std::vector<uint64_t>& tags,
                           CompletionSink* sink,
                           Deadline deadline = kNoDeadline) {
    STL_CHECK(sink != nullptr);
    STL_CHECK_EQ(queries.size(), tags.size());
    return SubmitBatchInternal(queries, &tags, sink, deadline);
  }

  /// Records a desired new weight for an edge. The writer re-resolves
  /// the old weight from the master state at apply time, so callers
  /// need not know the current weight.
  void EnqueueUpdate(EdgeId edge, Weight new_weight) {
    STL_CHECK(edge < policy_->NumEdges());
    STL_CHECK(new_weight >= 1 && new_weight <= kMaxEdgeWeight);
    updates_.Enqueue(edge, new_weight);
  }

  /// Enqueues many updates atomically (one lock, one writer wakeup):
  /// the writer cannot pop a partial prefix, so up to max_batch_size of
  /// them land in the same maintenance batch / epoch.
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
    for (const WeightUpdate& u : updates) {
      STL_CHECK(u.edge < policy_->NumEdges());
      STL_CHECK(u.new_weight >= 1 && u.new_weight <= kMaxEdgeWeight);
    }
    updates_.EnqueueMany(updates);
  }

  /// Blocks until every update enqueued before the call has been
  /// applied and, if it changed any weight, published in a snapshot.
  void Flush() { updates_.Flush(); }

  /// Swaps `snap` in as the serving snapshot (writer thread or
  /// constructor only; readers pick it up on their next atomic load).
  void Publish(std::shared_ptr<const Snapshot> snap) {
    current_.store(std::move(snap));
  }

  /// The latest published snapshot (never null after Start()).
  std::shared_ptr<const Snapshot> CurrentSnapshot() const {
    return current_.load();
  }

  /// The shared counter block (policies bump the maintenance/publish
  /// counters through this).
  ServingCounters& counters() { return counters_; }

  /// Read-only view of the counter block.
  const ServingCounters& counters() const { return counters_; }

  /// Point-in-time counters and latency summary; the policy appends its
  /// engine-specific fields (backend, resident bytes, shard rows).
  EngineStats Stats() const {
    EngineStats s;
    counters_.FillStats(&s);
    s.updates_enqueued = updates_.enqueued();
    s.degraded = degraded_.load(std::memory_order_relaxed);
    s.staleness_epochs =
        staleness_epochs_.load(std::memory_order_relaxed);
    s.queued_queries = queued_queries_.load(std::memory_order_relaxed);
    s.result_cache_lookups = cache_.lookups();
    s.result_cache_hits = cache_.hits();
    s.result_cache_hit_rate =
        s.result_cache_lookups > 0
            ? static_cast<double>(s.result_cache_hits) /
                  static_cast<double>(s.result_cache_lookups)
            : 0;
    policy_->AugmentStats(&s);
    return s;
  }

  /// Zeroes counters (except the epoch allocator) and the latency
  /// histogram and restarts the wall clock (for bench warmup). Call
  /// only while no queries are in flight.
  void ResetStats() {
    counters_.Reset();
    cache_.ResetCounters();
  }

  /// Reader thread count.
  int num_query_threads() const { return pool_.num_threads(); }

  /// The reader pool. Policies may fan writer-side maintenance (e.g.
  /// the sharded engine's boundary-clique recompute) out across idle
  /// readers; Enqueue may return false during shutdown, so callers
  /// must keep an inline fallback.
  ThreadPool* pool() { return &pool_; }

 private:
  /// Nanoseconds elapsed since `start`.
  static uint64_t NanosSince(std::chrono::steady_clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  /// One query on `snap`, consulting the result cache around the
  /// policy's router. *code is pre-set kOk; only a failed routing
  /// attempt (routed-mode replica exhaustion) writes it, and failed
  /// answers are never cached — a retry on the same epoch may succeed.
  Weight RouteWithCache(const Snapshot& snap, Vertex s, Vertex t,
                        StatusCode* code) {
    Weight d;
    *code = StatusCode::kOk;
    if (cache_.enabled() && cache_.Lookup(s, t, snap.epoch, &d)) return d;
    d = policy_->Route(snap, s, t, code);
    if (cache_.enabled() && *code == StatusCode::kOk) {
      cache_.Insert(s, t, snap.epoch, d);
    }
    return d;
  }

  /// Async counterpart of RouteWithCache: a cache hit answers `done`
  /// inline; a miss issues Policy::RouteAsync and the continuation
  /// fills the cache before forwarding the verdict. `done` runs exactly
  /// once, inline or from a policy thread.
  template <typename Done>
  void RouteWithCacheAsync(std::shared_ptr<const Snapshot> snap, Vertex s,
                           Vertex t, Done done) {
    Weight d;
    if (cache_.enabled() && cache_.Lookup(s, t, snap->epoch, &d)) {
      done(d, StatusCode::kOk);
      return;
    }
    BeginAsyncOp();
    const uint64_t epoch = snap->epoch;
    policy_->RouteAsync(
        std::move(snap), s, t,
        [this, s, t, epoch, done = std::move(done)](Weight d,
                                                    StatusCode code) {
          if (cache_.enabled() && code == StatusCode::kOk) {
            cache_.Insert(s, t, epoch, d);
          }
          done(d, code);
          EndAsyncOp();
        });
  }

  /// Registers one issued async continuation (async policies only).
  /// The destructor waits for the matching EndAsyncOp of every Begin.
  void BeginAsyncOp() {
    std::lock_guard<std::mutex> lock(async_mu_);
    ++async_inflight_;
  }

  /// Retires one async continuation; wakes the destructor on the last.
  /// The notify happens UNDER async_mu_ on purpose: the destructor's
  /// predicate wait can only return once it reacquires the mutex, which
  /// serializes cv destruction after this broadcast finishes (notifying
  /// after unlock would let the destructor wake on the decrement and
  /// destroy the cv mid-notify).
  void EndAsyncOp() {
    std::lock_guard<std::mutex> lock(async_mu_);
    if (--async_inflight_ == 0) async_cv_.notify_all();
  }

  using TicketState = typename Ticket::State;

  /// The shared batch pipeline behind SubmitBatch / SubmitBatchTagged.
  Ticket SubmitBatchInternal(const std::vector<QueryPair>& queries,
                             const std::vector<uint64_t>* tags,
                             CompletionSink* sink, Deadline deadline) {
    counters_.query_batches_submitted.fetch_add(1,
                                                std::memory_order_relaxed);
    counters_.batched_queries.fetch_add(queries.size(),
                                        std::memory_order_relaxed);

    // Batch admission: decided before any work (in particular before
    // the cache pass delivers anything, so a rejected batch's tags are
    // failed exactly once, never answered-then-failed).
    if (track_batches_ && serving_.max_queued_batches > 0 &&
        inflight_batches_.load(std::memory_order_relaxed) >=
            serving_.max_queued_batches) {
      if (serving_.admission_policy == AdmissionPolicy::kRejectNew) {
        counters_.batches_shed.fetch_add(1, std::memory_order_relaxed);
        counters_.queries_shed.fetch_add(queries.size(),
                                         std::memory_order_relaxed);
        return RejectedBatch(queries, tags, sink);
      }
      ShedOldestBatches();
    }

    auto state = std::make_shared<TicketState>();
    state->queries = queries;
    state->distances.assign(queries.size(), kInfDistance);
    state->codes.assign(queries.size(), StatusCode::kOk);
    state->deadline = deadline;
    if (tags != nullptr) state->tags = *tags;
    state->sink = sink;
    state->submitted = std::chrono::steady_clock::now();
    state->snapshot = current_.load();
    const uint64_t epoch = state->snapshot->epoch;

    // Cache pass: hits are answered (and delivered) inline; only the
    // misses go to the reader pool.
    state->order.reserve(queries.size());
    size_t hits = 0;
    for (uint32_t i = 0; i < queries.size(); ++i) {
      Weight d;
      if (cache_.enabled() && cache_.Lookup(queries[i].first,
                                            queries[i].second, epoch, &d)) {
        state->distances[i] = d;
        ++hits;
        if (sink != nullptr) {
          Completion done;
          done.tag = state->tags[i];
          done.distance = d;
          done.epoch = epoch;
          done.latency_micros =
              static_cast<double>(NanosSince(state->submitted)) / 1e3;
          DeliverCompletion(sink, done);
        }
      } else {
        state->order.push_back(i);
      }
    }
    if (hits > 0) {
      const uint64_t nanos = NanosSince(state->submitted);
      for (size_t i = 0; i < hits; ++i) counters_.latency.Record(nanos);
      counters_.queries_served.fetch_add(hits, std::memory_order_relaxed);
    }

    // Group the misses so same-key queries land adjacently (and thus in
    // the same routing chunk, where the policy reuses per-group rows).
    // `keys` stays aligned with the sorted order for the chunker below.
    std::vector<uint64_t> keys;
    if (Policy::kGroupsBatches && state->order.size() > 1) {
      const Snapshot& snap = *state->snapshot;
      keys.resize(state->order.size());
      for (size_t j = 0; j < state->order.size(); ++j) {
        keys[j] = policy_->BatchSortKey(snap,
                                        state->queries[state->order[j]]);
      }
      std::vector<uint32_t> by_key(state->order.size());
      for (uint32_t j = 0; j < by_key.size(); ++j) by_key[j] = j;
      std::stable_sort(by_key.begin(), by_key.end(),
                       [&keys](uint32_t a, uint32_t b) {
                         return keys[a] < keys[b];
                       });
      std::vector<uint32_t> sorted(state->order.size());
      std::vector<uint64_t> sorted_keys(state->order.size());
      for (size_t j = 0; j < by_key.size(); ++j) {
        sorted[j] = state->order[by_key[j]];
        sorted_keys[j] = keys[by_key[j]];
      }
      state->order.swap(sorted);
      keys.swap(sorted_keys);
    }

    // Chunk the misses across the pool along GROUP boundaries: the
    // policy's RouteSpan reuses per-group state only within one chunk,
    // so a boundary inside a group forfeits that reuse and recomputes
    // the group row in both halves. Chunks grow to ~misses/threads and
    // then extend to the next group edge (a single group larger than
    // the target stays whole; a group-free policy chunks evenly).
    const size_t misses = state->order.size();
    const size_t threads =
        std::max<size_t>(static_cast<size_t>(pool_.num_threads()), 1);
    const size_t target =
        std::max<size_t>(1, (misses + threads - 1) / threads);
    state->chunk_begin.reserve(threads + 2);
    state->chunk_begin.push_back(0);
    size_t pos = 0;
    while (pos < misses) {
      size_t end = std::min(misses, pos + target);
      if (!keys.empty()) {
        while (end < misses && keys[end] == keys[end - 1]) ++end;
      }
      state->chunk_begin.push_back(static_cast<uint32_t>(end));
      pos = end;
    }
    const size_t num_chunks = state->chunk_begin.size() - 1;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->pending_chunks = num_chunks;
      if (num_chunks == 0) {
        state->done = true;
        state->latency_micros =
            static_cast<double>(NanosSince(state->submitted)) / 1e3;
      }
    }
    if (num_chunks == 0) {
      state->finished.store(true, std::memory_order_relaxed);
      state->done_cv.notify_all();
      return Ticket(std::move(state));
    }
    if (track_batches_) {
      // Register the ticket with admission control: a claim flag per
      // chunk lets a shedder (or the shutdown drain) fail whatever has
      // not started routing yet, exactly once per query.
      state->tracked = true;
      state->chunk_claimed.reset(new std::atomic<bool>[num_chunks]);
      for (size_t c = 0; c < num_chunks; ++c) {
        state->chunk_claimed[c].store(false, std::memory_order_relaxed);
      }
      inflight_batches_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(admit_mu_);
      while (!batch_fifo_.empty()) {  // lazily prune settled heads
        std::shared_ptr<TicketState> head = batch_fifo_.front().lock();
        if (head != nullptr &&
            !head->finished.load(std::memory_order_relaxed)) {
          break;
        }
        batch_fifo_.pop_front();
      }
      batch_fifo_.push_back(state);
    }
    for (size_t c = 0; c < num_chunks; ++c) {
      const bool accepted = pool_.Enqueue([this, state, c] {
        if (state->chunk_claimed != nullptr &&
            state->chunk_claimed[c].exchange(true)) {
          return;  // shed by admission control or the shutdown drain
        }
        const size_t begin = state->chunk_begin[c];
        const size_t end = state->chunk_begin[c + 1];
        if (state->deadline != kNoDeadline &&
            std::chrono::steady_clock::now() >= state->deadline) {
          counters_.queries_deadline_exceeded.fetch_add(
              end - begin, std::memory_order_relaxed);
          FailChunk(*state, c, StatusCode::kDeadlineExceeded);
          return;
        }
        MaybeReaderDelay();
        if constexpr (PolicyRoutesAsync<Policy>::value) {
          // Issue the whole span and return this reader to the pool;
          // the continuation finishes the chunk when the answers land.
          RunBatchChunkAsync(state, begin, end);
        } else {
          RunBatchChunk(*state, begin, end);
          CompleteChunk(*state);
        }
      });
      STL_CHECK(accepted) << "SubmitBatch() on a shut-down engine";
    }
    return Ticket(std::move(state));
  }

  /// A ticket that completes immediately with every query kOverloaded:
  /// admission rejected the whole batch before any routing. Tags are
  /// still delivered exactly once (with the failure code).
  Ticket RejectedBatch(const std::vector<QueryPair>& queries,
                       const std::vector<uint64_t>* tags,
                       CompletionSink* sink) {
    auto state = std::make_shared<TicketState>();
    state->queries = queries;
    state->distances.assign(queries.size(), kInfDistance);
    state->codes.assign(queries.size(), StatusCode::kOverloaded);
    state->submitted = std::chrono::steady_clock::now();
    state->snapshot = current_.load();
    state->shed.store(true, std::memory_order_relaxed);
    state->finished.store(true, std::memory_order_relaxed);
    state->done = true;
    if (tags != nullptr) state->tags = *tags;
    state->sink = sink;
    if (sink != nullptr) {
      for (size_t i = 0; i < state->tags.size(); ++i) {
        Completion done;
        done.tag = state->tags[i];
        done.code = StatusCode::kOverloaded;
        done.epoch = state->snapshot->epoch;
        DeliverCompletion(sink, done);
      }
    }
    return Ticket(std::move(state));
  }

  /// Routes state.order[begin..end) through the policy, fills the
  /// cache, records latency and delivers completions. Chunks touch
  /// disjoint distance slots, so no lock is needed for the answers.
  void RunBatchChunk(TicketState& state, size_t begin, size_t end) {
    const size_t count = end - begin;
    policy_->RouteSpan(*state.snapshot, state.queries.data(),
                       state.order.data() + begin, count,
                       state.distances.data(), state.codes.data());
    FinishBatchChunk(state, begin, end);
  }

  /// Async-policy counterpart of RunBatchChunk + CompleteChunk: issues
  /// the span and returns; the continuation (holding the ticket alive)
  /// runs the bookkeeping whenever the policy answers.
  void RunBatchChunkAsync(const std::shared_ptr<TicketState>& state,
                          size_t begin, size_t end) {
    BeginAsyncOp();
    const size_t count = end - begin;
    policy_->RouteSpanAsync(
        state->snapshot, state->queries.data(),
        state->order.data() + begin, count, state->distances.data(),
        state->codes.data(), [this, state, begin, end] {
          FinishBatchChunk(*state, begin, end);
          CompleteChunk(*state);
          EndAsyncOp();
        });
  }

  /// The post-routing half of a chunk: cache fills, latency/served
  /// counters, tagged completion delivery. Slots in [begin, end) must
  /// already hold the policy's answers.
  void FinishBatchChunk(TicketState& state, size_t begin, size_t end) {
    const Snapshot& snap = *state.snapshot;
    const uint64_t epoch = snap.epoch;
    const uint64_t nanos = NanosSince(state.submitted);
    size_t served = 0;
    for (size_t j = begin; j < end; ++j) {
      const uint32_t i = state.order[j];
      const QueryPair& q = state.queries[i];
      const StatusCode code = state.codes[i];
      if (code == StatusCode::kOk) {
        if (cache_.enabled()) {
          cache_.Insert(q.first, q.second, epoch, state.distances[i]);
        }
        counters_.latency.Record(nanos);
        ++served;
      } else {
        counters_.queries_unavailable.fetch_add(1,
                                                std::memory_order_relaxed);
      }
      if (state.sink != nullptr) {
        Completion done;
        done.tag = state.tags[i];
        done.distance = state.distances[i];
        done.epoch = epoch;
        done.code = code;
        done.latency_micros = static_cast<double>(nanos) / 1e3;
        DeliverCompletion(state.sink, done);
      }
    }
    counters_.queries_served.fetch_add(served, std::memory_order_relaxed);
  }

  /// Completes chunk `c` of a ticket without routing it: every query in
  /// the chunk gets kInfDistance and `code`, completions (if any) are
  /// delivered with that code, and the normal chunk bookkeeping runs.
  /// The caller must own the chunk (be its reader, or have won its
  /// claim), so each slot is written exactly once.
  void FailChunk(TicketState& state, size_t c, StatusCode code) {
    const uint64_t nanos = NanosSince(state.submitted);
    for (size_t j = state.chunk_begin[c]; j < state.chunk_begin[c + 1];
         ++j) {
      const uint32_t i = state.order[j];
      state.distances[i] = kInfDistance;
      state.codes[i] = code;
      if (state.sink != nullptr) {
        Completion done;
        done.tag = state.tags[i];
        done.code = code;
        done.epoch = state.snapshot->epoch;
        done.latency_micros = static_cast<double>(nanos) / 1e3;
        DeliverCompletion(state.sink, done);
      }
    }
    CompleteChunk(state);
  }

  /// The one chunk-completion path (answered or failed): decrements
  /// pending_chunks and, on the last chunk, marks the ticket done,
  /// wakes waiters and releases its admission slot.
  void CompleteChunk(TicketState& state) {
    const uint64_t nanos = NanosSince(state.submitted);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.pending_chunks == 0) {
        state.done = true;
        state.latency_micros = static_cast<double>(nanos) / 1e3;
        last = true;
      }
    }
    if (last) {
      state.finished.store(true, std::memory_order_relaxed);
      state.done_cv.notify_all();
      if (state.tracked) {
        inflight_batches_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  /// One tracked single-query submission: whoever wins the claim —
  /// the reader that dequeues it, an admission shedder, or the
  /// shutdown drain — completes the query, so it completes exactly
  /// once. `fail` finishes it without an answer (promise or sink).
  struct QueryAdmission {
    std::atomic<bool> claimed{false};       ///< Completion ownership.
    std::function<void(StatusCode)> fail;   ///< Failure completer.
  };

  /// Registers a tracked single query with admission control. Returns
  /// false when the bound is hit under kRejectNew (the caller fails
  /// the new unit); under kShedOldest the oldest still-queued queries
  /// are claimed and failed kOverloaded to make room and the new unit
  /// is admitted.
  bool AdmitQuery(const std::shared_ptr<QueryAdmission>& unit) {
    std::vector<std::shared_ptr<QueryAdmission>> shed;
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      while (!query_fifo_.empty() &&
             query_fifo_.front()->claimed.load(std::memory_order_relaxed)) {
        query_fifo_.pop_front();  // lazily prune claimed heads
      }
      if (serving_.max_queued_queries > 0 &&
          queued_queries_.load(std::memory_order_relaxed) >=
              serving_.max_queued_queries) {
        if (serving_.admission_policy == AdmissionPolicy::kRejectNew) {
          return false;
        }
        while (queued_queries_.load(std::memory_order_relaxed) >=
                   serving_.max_queued_queries &&
               !query_fifo_.empty()) {
          std::shared_ptr<QueryAdmission> oldest =
              std::move(query_fifo_.front());
          query_fifo_.pop_front();
          if (!oldest->claimed.exchange(true)) {
            queued_queries_.fetch_sub(1, std::memory_order_relaxed);
            shed.push_back(std::move(oldest));
          }
        }
      }
      query_fifo_.push_back(unit);
      queued_queries_.fetch_add(1, std::memory_order_relaxed);
    }
    // Fail the victims outside the lock: fail() runs caller code
    // (promise fulfilment / sink delivery).
    for (const std::shared_ptr<QueryAdmission>& u : shed) {
      counters_.queries_shed.fetch_add(1, std::memory_order_relaxed);
      u->fail(StatusCode::kOverloaded);
    }
    return true;
  }

  /// Sheds the oldest still-live batch tickets until the in-flight
  /// count makes room for one more (or the FIFO runs dry). Shedding
  /// claims a victim's not-yet-routing chunks and fails them
  /// kOverloaded; chunks already routing finish normally (their
  /// queries stay kOk) and release the slot when they do.
  void ShedOldestBatches() {
    std::vector<std::shared_ptr<TicketState>> victims;
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      const uint64_t inflight =
          inflight_batches_.load(std::memory_order_relaxed);
      size_t need = inflight + 1 > serving_.max_queued_batches
                        ? static_cast<size_t>(inflight + 1 -
                                              serving_.max_queued_batches)
                        : 0;
      while (need > 0 && !batch_fifo_.empty()) {
        std::shared_ptr<TicketState> s = batch_fifo_.front().lock();
        batch_fifo_.pop_front();
        if (s == nullptr || s->finished.load(std::memory_order_relaxed)) {
          continue;  // already settled; not a victim
        }
        victims.push_back(std::move(s));
        --need;
      }
    }
    for (const std::shared_ptr<TicketState>& s : victims) ShedTicket(*s);
  }

  /// Sheds one registered ticket: claims and fails (kOverloaded) every
  /// chunk that has not started routing. Used by shed-oldest admission
  /// and the shutdown drain.
  void ShedTicket(TicketState& state) {
    state.shed.store(true, std::memory_order_relaxed);
    counters_.batches_shed.fetch_add(1, std::memory_order_relaxed);
    const size_t num_chunks = state.chunk_begin.size() - 1;
    for (size_t c = 0; c < num_chunks; ++c) {
      if (!state.chunk_claimed[c].exchange(true)) {
        counters_.queries_shed.fetch_add(
            state.chunk_begin[c + 1] - state.chunk_begin[c],
            std::memory_order_relaxed);
        FailChunk(state, c, StatusCode::kOverloaded);
      }
    }
  }

  /// Bounded shutdown drain: waits up to shutdown_drain_ms for the
  /// admission queues to empty, then claims whatever is still queued
  /// and fails it kOverloaded. Exactly-once holds: a pool task that
  /// later dequeues a claimed unit or chunk returns without touching
  /// it, and chunks already routing finish normally.
  void DrainWithDeadline() {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                serving_.shutdown_drain_ms));
    while (std::chrono::steady_clock::now() < deadline) {
      if (queued_queries_.load(std::memory_order_relaxed) == 0 &&
          inflight_batches_.load(std::memory_order_relaxed) == 0) {
        return;  // drained in time — nothing to fail
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    std::vector<std::shared_ptr<QueryAdmission>> residual;
    std::vector<std::shared_ptr<TicketState>> residual_batches;
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      for (std::shared_ptr<QueryAdmission>& u : query_fifo_) {
        if (!u->claimed.exchange(true)) {
          queued_queries_.fetch_sub(1, std::memory_order_relaxed);
          residual.push_back(std::move(u));
        }
      }
      query_fifo_.clear();
      for (std::weak_ptr<TicketState>& w : batch_fifo_) {
        std::shared_ptr<TicketState> s = w.lock();
        if (s != nullptr && !s->finished.load(std::memory_order_relaxed)) {
          residual_batches.push_back(std::move(s));
        }
      }
      batch_fifo_.clear();
    }
    for (const std::shared_ptr<QueryAdmission>& u : residual) {
      counters_.queries_shed.fetch_add(1, std::memory_order_relaxed);
      u->fail(StatusCode::kOverloaded);
    }
    for (const std::shared_ptr<TicketState>& s : residual_batches) {
      ShedTicket(*s);
    }
  }

  /// FaultSite::kReaderDelay hook: sleeps the injector's delay when
  /// the site fires (no-op without an injector).
  void MaybeReaderDelay() {
    if (faults_ != nullptr && faults_->Fire(FaultSite::kReaderDelay)) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          faults_->DelayMicros(FaultSite::kReaderDelay)));
    }
  }

  /// The one path every completion takes to a caller sink. When
  /// FaultSite::kCompletionDropCandidate fires, the first delivery
  /// attempt is treated as dropped (and counted); the exactly-once
  /// retry then delivers it anyway — the invariant is exercised, never
  /// broken.
  void DeliverCompletion(CompletionSink* sink, const Completion& done) {
    if (faults_ != nullptr &&
        faults_->Fire(FaultSite::kCompletionDropCandidate)) {
      counters_.completions_retried.fetch_add(1,
                                              std::memory_order_relaxed);
    }
    sink->Deliver(done);
  }

  /// The stall-watchdog body: polls the writer's applied counter at a
  /// fraction of the stall threshold. Updates pending with no progress
  /// for writer_stall_ms flips degraded mode on (once per episode);
  /// any progress — or an empty backlog, so idle time can never trip
  /// it — flips it back off and refreshes the baseline.
  void WatchdogLoop() {
    const auto stall =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double, std::milli>(
                serving_.writer_stall_ms));
    const auto poll = std::max<std::chrono::nanoseconds>(
        stall / 4, std::chrono::microseconds(100));
    uint64_t last_applied = updates_.applied();
    auto last_progress = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(watchdog_mu_);
    while (!watchdog_stop_) {
      watchdog_cv_.wait_for(lock, poll,
                            [this] { return watchdog_stop_; });
      if (watchdog_stop_) break;
      const uint64_t applied = updates_.applied();
      const uint64_t pending = updates_.pending();
      const auto now = std::chrono::steady_clock::now();
      if (applied != last_applied || pending == 0) {
        last_applied = applied;
        last_progress = now;
        staleness_epochs_.store(0, std::memory_order_relaxed);
        degraded_.store(false, std::memory_order_relaxed);
      } else if (now - last_progress >= stall) {
        staleness_epochs_.store(
            (pending + options_.max_batch_size - 1) /
                options_.max_batch_size,
            std::memory_order_relaxed);
        if (!degraded_.exchange(true, std::memory_order_relaxed)) {
          counters_.degraded_entries.fetch_add(1,
                                               std::memory_order_relaxed);
        }
      }
    }
  }

  void WriterLoop() {
    // The drain/coalesce/Flush protocol lives in UpdateQueue; the
    // policy's apply step repairs the master state and publishes one
    // epoch per effective batch. An injected apply failure drops the
    // coalesced batch before the policy sees it — the master state is
    // untouched, so serving stays exact on the last good epoch.
    updates_.RunWriter(
        options_.max_batch_size,
        [this](EdgeId e) { return policy_->ResolveOldWeight(e); },
        [this](const UpdateBatch& batch) {
          if (faults_ != nullptr &&
              faults_->Fire(FaultSite::kApplyFailure)) {
            counters_.apply_failures.fetch_add(1,
                                               std::memory_order_relaxed);
            return;
          }
          policy_->ApplyBatch(batch);
        },
        &counters_.updates_coalesced, faults_);
  }

  Policy* const policy_;
  const ServingCoreOptions options_;
  const ServingOptions serving_;  // overload-hardening knobs (copy)
  FaultInjector* const faults_;   // null = no fault hooks
  // Whether single queries / batch tickets carry admission tracking
  // (needed for bounds and for the bounded shutdown drain).
  const bool track_queries_;
  const bool track_batches_;

  AtomicSharedPtr<const Snapshot> current_;

  // Pending-update queue (writer input; one protocol for every engine).
  UpdateQueue updates_;

  ServingCounters counters_;
  ResultCache cache_;

  // Admission state: FIFOs of claimable work (pruned lazily) plus the
  // point-in-time depth counters the bounds are enforced against.
  std::mutex admit_mu_;
  std::deque<std::shared_ptr<QueryAdmission>> query_fifo_;
  std::deque<std::weak_ptr<TicketState>> batch_fifo_;
  std::atomic<uint64_t> queued_queries_{0};
  std::atomic<uint64_t> inflight_batches_{0};

  // Outstanding async-policy continuations (see BeginAsyncOp); the
  // destructor waits for zero after the pool drains.
  std::mutex async_mu_;
  std::condition_variable async_cv_;
  uint64_t async_inflight_ = 0;  // guarded by async_mu_

  // Degraded-mode state (written by the watchdog, read by Stats()).
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> staleness_epochs_{0};
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by watchdog_mu_
  std::thread watchdog_;

  std::thread writer_;

  ThreadPool pool_;  // last member: workers die before state they touch
};

}  // namespace stl

#endif  // STL_ENGINE_SERVING_CORE_H_
