// Sharded query-serving engine: the partition tree machinery that makes
// the paper's hierarchy stable also carves the serving layer into k
// independently-updatable shards.
//
//   readers (ThreadPool)               single writer thread
//   ─────────────────────              ────────────────────────────────
//   load the current                ┌─ accumulate EnqueueUpdate()s,
//   ShardedSnapshot (one atomic     │  coalesce, then PARTITION the
//   pointer: k shard views +        │  batch by owning cell: repair and
//   one overlay table), route       │  republish only the dirtied
//   the query (below)               │  shards (other shards' serving
//                                   │  pointers are re-shared), rebuild
//                                   └─ the overlay, swap the snapshot
//
// Construction: PartitionCells (partition/cells.h) cuts the graph into
// k connected cells isolated by the separator set S; BuildShardPlan
// (index/overlay.h) derives per-cell subgraphs on C_i ∪ S_i; one
// DistanceIndex backend (any of STL/CH/H2H/HC2L) is built per cell; a
// BoundaryOverlay maintains the exact S×S distance table D.
//
// Query routing (all answers exact — bit-identical to a flat engine on
// the same weights, guarded by bench_sharded_scaling --check):
//   * s == t                     -> 0
//   * both endpoints boundary    -> D[s][t]
//   * same cell                  -> min(shard-local distance,
//                                       min_{b1,b2} ds[b1] + D[b1][b2] + dt[b2])
//   * different cells / boundary -> min_{b1,b2} ds[b1] + D[b1][b2] + dt[b2]
// where ds/dt are the shard-local distances from each endpoint to its
// cell's boundary set S_i, and the inner minimum over b2 runs on the
// overlay's per-shard packed rows through the util/simd.h min-plus
// kernels. Correctness rests on S being a vertex separator: a shortest
// path leaves a cell only through S, its first/last boundary vertices
// split it into shard-local prefix/suffix plus a boundary-to-boundary
// middle, and D is exact for the middle (index/overlay.h).
//
// Update locality: a batch that only touches edges inside cell i
// republishes shard i's epoch and the overlay; every other shard's
// ShardServing pointer in the next snapshot is the SAME object
// (asserted in tests/sharded_engine_test.cc).
#ifndef STL_ENGINE_SHARDED_ENGINE_H_
#define STL_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/atomic_shared_ptr.h"
#include "engine/latency_histogram.h"
#include "engine/query_engine.h"
#include "engine/thread_pool.h"
#include "index/overlay.h"
#include "util/timer.h"

namespace stl {

/// One shard's published serving state: an immutable backend view plus
/// the shard's own epoch counter. Re-shared by pointer across global
/// snapshots while the shard stays clean.
struct ShardServing {
  /// Cell id this serving state belongs to.
  uint32_t shard = 0;
  /// Per-shard epoch: number of times this shard has republished
  /// (0 = the initial build).
  uint64_t shard_epoch = 0;
  /// The shard backend's immutable query surface.
  std::shared_ptr<const IndexView> view;
};

/// One immutable published version of the sharded serving state. A
/// query loads exactly one ShardedSnapshot, so it always sees a
/// mutually consistent set of shard views and overlay table.
struct ShardedSnapshot {
  /// Global epoch (bumps on every effective update batch).
  uint64_t epoch = 0;
  /// Full-network weights as of this epoch (copy-on-write chunk share
  /// with neighbouring epochs); the per-epoch ground truth that
  /// Dijkstra audits run against.
  Graph graph;
  /// The shared shard layout (vertex/edge ownership, boundary maps).
  std::shared_ptr<const ShardLayout> layout;
  /// Per-cell serving state; entries are pointer-shared with the
  /// previous snapshot for every shard the producing batch left clean.
  std::vector<std::shared_ptr<const ShardServing>> shards;
  /// The epoch's boundary-to-boundary distance table.
  std::shared_ptr<const OverlayTable> overlay;

  /// Exact distance under this epoch's weights; kInfDistance when
  /// unreachable. Thread-safe for concurrent readers.
  Weight Query(Vertex s, Vertex t) const;
};

/// Answer to one query submitted to the sharded engine.
struct ShardedQueryResult {
  /// Exact distance for the serving snapshot's weights.
  Weight distance = kInfDistance;
  /// Global epoch of the serving snapshot.
  uint64_t epoch = 0;
  /// Submit-to-completion latency (queue wait included).
  double latency_micros = 0;
  /// The snapshot the query was served from; lets callers audit the
  /// answer against that epoch's exact weights.
  std::shared_ptr<const ShardedSnapshot> snapshot;
};

/// Construction options for the sharded engine.
struct ShardedEngineOptions {
  /// Index family built per shard (index/distance_index.h).
  BackendKind backend = BackendKind::kStl;
  /// Requested cell count; the layout may produce more (extra connected
  /// components) or fewer (graph too small to cut). 1 = a single shard
  /// with an empty overlay.
  uint32_t target_shards = 4;
  /// Reader threads.
  int num_query_threads = 4;
  /// Updates taken from the pending queue per global epoch.
  size_t max_batch_size = 128;
  /// Per-shard-batch STL maintenance choice (non-STL backends ignore).
  StrategyMode strategy = StrategyMode::kAuto;
  /// kAuto: shard batches with at least this many effective updates use
  /// Label Search.
  size_t auto_label_search_threshold = 16;
};

/// Concurrent sharded serving engine. Thread-safe: Submit/SubmitBatch/
/// EnqueueUpdate/Flush/Stats may be called from any thread. Mirrors
/// QueryEngine's API; the difference is inside the writer (per-shard
/// repair + overlay rebuild) and the read path (shard routing).
class ShardedEngine {
 public:
  /// Takes ownership of the graph, partitions it, builds one backend
  /// index per cell plus the boundary overlay, starts the workers, and
  /// publishes epoch 0.
  ShardedEngine(Graph graph, const HierarchyOptions& hierarchy_options,
                const ShardedEngineOptions& options = {});

  /// Drains: answers every submitted query and applies every enqueued
  /// update before returning.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;  ///< Not copyable.
  /// Not copyable.
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Schedules one distance query; the future resolves when a reader
  /// thread has answered it.
  std::future<ShardedQueryResult> Submit(QueryPair query);

  /// Schedules many queries (one future each).
  std::vector<std::future<ShardedQueryResult>> SubmitBatch(
      const std::vector<QueryPair>& queries);

  /// Records a desired new weight for an edge of the FULL graph (global
  /// edge ids; the writer routes it to the owning shard or the
  /// overlay). The old weight is re-resolved at apply time.
  void EnqueueUpdate(const WeightUpdate& update);
  /// Convenience overload of EnqueueUpdate(const WeightUpdate&).
  void EnqueueUpdate(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one lock, one writer wakeup).
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been
  /// applied and, if effective, published.
  void Flush();

  /// The latest published snapshot (never null after construction).
  std::shared_ptr<const ShardedSnapshot> CurrentSnapshot() const {
    return current_.load();
  }

  /// Global epoch of the latest snapshot.
  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  /// The backend family each shard runs.
  BackendKind backend() const { return options_.backend; }
  /// Capabilities of the shard backends (identical across shards).
  const BackendCapabilities& capabilities() const { return capabilities_; }
  /// Number of cells actually produced by the partition.
  uint32_t num_shards() const { return layout_->num_shards(); }
  /// The immutable shard layout (cell assignment, edge ownership,
  /// boundary bookkeeping).
  const ShardLayout& layout() const { return *layout_; }

  /// Point-in-time counters; `shards` carries the per-shard rows.
  EngineStats Stats() const;

  /// Zeroes counters (except the epoch allocators) and the latency
  /// histogram and restarts the wall clock (for bench warmup). Call
  /// only while no queries are in flight.
  void ResetStats();

  /// Reader thread count.
  int num_query_threads() const { return pool_.num_threads(); }

 private:
  /// Writer-owned mutable state of one shard.
  struct ShardState {
    std::unique_ptr<Graph> graph;          // shard master subgraph
    std::unique_ptr<DistanceIndex> index;  // shard master index
    uint64_t shard_epoch = 0;
  };

  void WriterLoop();
  /// Applies one coalesced batch (already partitioned by the caller into
  /// per-shard / overlay updates), republishes dirty shards + overlay,
  /// and swaps in the next snapshot. Writer thread only.
  void ApplyAndPublish(const UpdateBatch& batch);
  /// Builds and publishes the epoch-0 snapshot (constructor only).
  void PublishInitialSnapshot();

  const ShardedEngineOptions options_;

  // Master state, owned by the writer after construction.
  std::unique_ptr<Graph> graph_;  // full network (weights kept current)
  std::shared_ptr<const ShardLayout> layout_;
  std::vector<ShardState> states_;
  std::unique_ptr<BoundaryOverlay> overlay_;
  // Writer-side copy of the serving vector (next snapshot = this vector
  // with dirty entries replaced).
  std::vector<std::shared_ptr<const ShardServing>> serving_;
  BackendCapabilities capabilities_;

  AtomicSharedPtr<const ShardedSnapshot> current_;

  // Pending-update queue (writer input; shared protocol with the flat
  // engine — engine/update_queue.h).
  UpdateQueue updates_;

  std::thread writer_;

  // Last-harvested cumulative CoW counters of the master FULL graph
  // only (shard subgraphs are never snapshotted, so their writes don't
  // clone; shard-side label copy cost arrives via PublishInfo). Only
  // the publishing thread touches these.
  uint64_t harvested_graph_chunks_ = 0;
  uint64_t harvested_graph_bytes_ = 0;

  // Serving-side stats (relaxed atomics: monitoring, not coordination).
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_coalesced_{0};
  std::atomic<uint64_t> epochs_published_{0};
  BatchExecutionCounters batch_counters_;
  std::atomic<uint64_t> label_pages_cloned_{0};
  std::atomic<uint64_t> graph_chunks_cloned_{0};
  std::atomic<uint64_t> cow_bytes_cloned_{0};
  std::atomic<uint64_t> publish_bytes_deep_copied_{0};
  std::atomic<uint64_t> publish_nanos_{0};
  std::atomic<uint64_t> overlay_nanos_{0};
  std::atomic<uint64_t> overlay_republishes_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> shard_updates_;
  LatencyHistogram latency_;
  Timer wall_;

  ThreadPool pool_;  // last member: workers die before state they touch
};

}  // namespace stl

#endif  // STL_ENGINE_SHARDED_ENGINE_H_
