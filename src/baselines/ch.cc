#include "baselines/ch.h"

#include <algorithm>

#include "util/timer.h"

namespace stl {

namespace {

/// Normalized 64-bit key for an unordered vertex pair.
uint64_t PairKey(Vertex a, Vertex b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

ChIndex ChIndex::Build(Graph* g) {
  STL_CHECK(g != nullptr);
  Timer timer;
  ChIndex ch;
  ch.g_ = g;
  const uint32_t n = g->NumVertices();

  // Working contracted graph: adjacency with current derived weights.
  std::vector<std::unordered_map<Vertex, Weight>> adj(n);
  for (const Edge& e : g->edges()) {
    auto [itu, newu] = adj[e.u].try_emplace(e.v, e.w);
    if (!newu) itu->second = std::min(itu->second, e.w);
    auto [itv, newv] = adj[e.v].try_emplace(e.u, e.w);
    if (!newv) itv->second = std::min(itv->second, e.w);
  }

  // CH edge registry. Original edges first so graph-edge -> CH-edge is
  // trivial to record; shortcuts are appended during contraction.
  std::unordered_map<uint64_t, uint32_t> pair_id;
  std::vector<std::vector<Vertex>> supports;
  ch.ch_edge_of_graph_edge_.resize(g->NumEdges());
  for (EdgeId id = 0; id < g->NumEdges(); ++id) {
    const Edge& e = g->edges()[id];
    uint64_t key = PairKey(e.u, e.v);
    auto it = pair_id.find(key);
    if (it == pair_id.end()) {
      uint32_t cid = static_cast<uint32_t>(ch.edges_.size());
      pair_id.emplace(key, cid);
      ch.edges_.push_back(ChEdge{e.u, e.v, e.w, e.w});
      supports.emplace_back();
      ch.ch_edge_of_graph_edge_[id] = cid;
    } else {
      ch.ch_edge_of_graph_edge_[id] = it->second;
    }
  }

  // Lazy-update contraction order by edge difference.
  std::vector<uint8_t> contracted(n, 0);
  std::vector<uint32_t> contracted_neighbours(n, 0);
  auto live_neighbours = [&](Vertex x) {
    std::vector<Vertex> out;
    out.reserve(adj[x].size());
    for (const auto& [u, w] : adj[x]) {
      if (!contracted[u]) out.push_back(u);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto priority = [&](Vertex x) -> int64_t {
    auto nb = live_neighbours(x);
    int64_t added = 0;
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        if (adj[nb[i]].find(nb[j]) == adj[nb[i]].end()) ++added;
      }
    }
    return added - static_cast<int64_t>(nb.size()) +
           2 * static_cast<int64_t>(contracted_neighbours[x]);
  };

  MinHeap<int64_t, Vertex> order_heap;
  for (Vertex v = 0; v < n; ++v) order_heap.Push(priority(v), v);
  ch.rank_.assign(n, 0);
  ch.by_rank_.assign(n, 0);
  uint32_t next_rank = 0;
  while (!order_heap.empty()) {
    auto [prio, x] = order_heap.Pop();
    if (contracted[x]) continue;
    int64_t fresh = priority(x);
    if (!order_heap.empty() && fresh > order_heap.Top().key) {
      order_heap.Push(fresh, x);  // lazy re-insert with updated priority
      continue;
    }
    // Contract x: connect every pair of live neighbours.
    auto nb = live_neighbours(x);
    for (size_t i = 0; i < nb.size(); ++i) {
      Vertex u = nb[i];
      Weight wxu = adj[x][u];
      for (size_t j = i + 1; j < nb.size(); ++j) {
        Vertex v = nb[j];
        Weight cand = SaturatingAdd(wxu, adj[x][v]);
        uint64_t key = PairKey(u, v);
        auto [it, inserted] =
            pair_id.emplace(key, static_cast<uint32_t>(ch.edges_.size()));
        uint32_t cid = it->second;
        if (inserted) {
          ch.edges_.push_back(ChEdge{u, v, cand, kInfDistance});
          supports.emplace_back();
          ++ch.num_pure_shortcuts_;
          adj[u][v] = cand;
          adj[v][u] = cand;
        } else if (cand < ch.edges_[cid].weight) {
          ch.edges_[cid].weight = cand;
          adj[u][v] = cand;
          adj[v][u] = cand;
        }
        // x always joins the support set: after weight changes its path
        // u-x-v may become the minimum even if it is not now.
        supports[cid].push_back(x);
      }
      ++contracted_neighbours[u];
    }
    contracted[x] = 1;
    ch.rank_[x] = next_rank;
    ch.by_rank_[next_rank] = x;
    ++next_rank;
  }
  STL_CHECK_EQ(next_rank, n);

  // Orient edges by rank and build upward structures.
  std::vector<uint32_t> up_degree(n, 0);
  for (uint32_t cid = 0; cid < ch.edges_.size(); ++cid) {
    ChEdge& e = ch.edges_[cid];
    if (ch.rank_[e.lo] > ch.rank_[e.hi]) std::swap(e.lo, e.hi);
    ++up_degree[e.lo];
  }
  ch.up_offset_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) ch.up_offset_[v + 1] = ch.up_offset_[v] + up_degree[v];
  ch.up_pool_.resize(ch.edges_.size());
  {
    std::vector<uint32_t> cursor(ch.up_offset_.begin(),
                                 ch.up_offset_.end() - 1);
    for (uint32_t cid = 0; cid < ch.edges_.size(); ++cid) {
      ch.up_pool_[cursor[ch.edges_[cid].lo]++] = cid;
    }
  }
  // Sorted by high-endpoint id so EdgeIdBetween can binary-search.
  for (Vertex v = 0; v < n; ++v) {
    std::sort(ch.up_pool_.begin() + ch.up_offset_[v],
              ch.up_pool_.begin() + ch.up_offset_[v + 1],
              [&ch](uint32_t a, uint32_t b) {
                return ch.edges_[a].hi < ch.edges_[b].hi;
              });
  }

  // Flatten supports, and build the endpoint-keyed inverted index: for a
  // pair (c, d) supported by x, a change of w(x, c) or w(x, d) dirties
  // the pair, so x's slice holds (c, pair) and (d, pair).
  size_t total_supports = 0;
  for (const auto& s : supports) total_supports += s.size();
  ch.support_pool_.reserve(total_supports);
  std::vector<uint64_t> idx_count(n, 0);
  for (uint32_t cid = 0; cid < ch.edges_.size(); ++cid) {
    ch.edges_[cid].supports_begin =
        static_cast<uint32_t>(ch.support_pool_.size());
    ch.support_pool_.insert(ch.support_pool_.end(), supports[cid].begin(),
                            supports[cid].end());
    ch.edges_[cid].supports_end =
        static_cast<uint32_t>(ch.support_pool_.size());
    for (Vertex x : supports[cid]) idx_count[x] += 2;
  }
  ch.supported_off_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    ch.supported_off_[v + 1] = ch.supported_off_[v] + idx_count[v];
  }
  ch.supported_index_.resize(2 * total_supports);
  {
    std::vector<uint64_t> cursor(ch.supported_off_.begin(),
                                 ch.supported_off_.end() - 1);
    for (uint32_t cid = 0; cid < ch.edges_.size(); ++cid) {
      const ChEdge& e = ch.edges_[cid];
      for (Vertex x : supports[cid]) {
        ch.supported_index_[cursor[x]++] = {e.lo, cid};
        ch.supported_index_[cursor[x]++] = {e.hi, cid};
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      std::sort(ch.supported_index_.begin() + ch.supported_off_[v],
                ch.supported_index_.begin() + ch.supported_off_[v + 1]);
    }
  }

  ch.old_weight_.assign(ch.edges_.size(), 0);
  ch.old_stamp_.assign(ch.edges_.size(), 0);
  ch.done_stamp_.assign(ch.edges_.size(), 0);
  ch.build_seconds_ = timer.ElapsedSeconds();
  return ch;
}

Weight ChIndex::Query(Vertex s, Vertex t, ChQueryContext* ctx) const {
  if (s == t) return 0;
  const uint32_t n = static_cast<uint32_t>(rank_.size());
  if (ctx->dist[0].size() != n) {
    for (int side = 0; side < 2; ++side) {
      ctx->dist[side].assign(n, kInfDistance);
      ctx->stamp[side].assign(n, 0);
      ctx->heap[side].clear();
    }
    ctx->epoch = 0;
  }
  ++ctx->epoch;
  auto& qdist_ = ctx->dist;
  auto& qstamp_ = ctx->stamp;
  auto& qheap_ = ctx->heap;
  const uint32_t qepoch_ = ctx->epoch;
  qheap_[0].clear();
  qheap_[1].clear();
  auto get = [&](int side, Vertex v) -> Weight {
    return qstamp_[side][v] == qepoch_ ? qdist_[side][v] : kInfDistance;
  };
  auto set = [&](int side, Vertex v, Weight d) {
    qdist_[side][v] = d;
    qstamp_[side][v] = qepoch_;
  };
  set(0, s, 0);
  set(1, t, 0);
  qheap_[0].Push(0, s);
  qheap_[1].Push(0, t);
  Weight best = kInfDistance;
  while (!qheap_[0].empty() || !qheap_[1].empty()) {
    int side;
    if (qheap_[0].empty()) {
      side = 1;
    } else if (qheap_[1].empty()) {
      side = 0;
    } else {
      side = qheap_[0].Top().key <= qheap_[1].Top().key ? 0 : 1;
    }
    if (qheap_[side].Top().key >= best) {
      // This side can no longer improve; drain the other or stop.
      qheap_[side].clear();
      continue;
    }
    auto [d, v] = qheap_[side].Pop();
    if (d != get(side, v)) continue;
    Weight other = get(1 - side, v);
    if (other != kInfDistance) best = std::min(best, SaturatingAdd(d, other));
    for (uint32_t cid : UpEdges(v)) {
      const ChEdge& e = edges_[cid];
      Weight nd = SaturatingAdd(d, e.weight);
      if (nd < get(side, e.hi)) {
        set(side, e.hi, nd);
        qheap_[side].Push(nd, e.hi);
      }
    }
  }
  return best;
}

Weight ChIndex::RecomputeEdgeWeight(const ChEdge& e) const {
  Weight w = e.base;
  for (uint32_t i = e.supports_begin; i < e.supports_end; ++i) {
    Vertex x = support_pool_[i];
    uint32_t exl = EdgeIdBetween(x, e.lo);
    uint32_t exh = EdgeIdBetween(x, e.hi);
    STL_DCHECK(exl != UINT32_MAX && exh != UINT32_MAX);
    w = std::min(w,
                 SaturatingAdd(edges_[exl].weight, edges_[exh].weight));
  }
  return w;
}

uint32_t ChIndex::EdgeIdBetween(Vertex a, Vertex b) const {
  if (rank_[a] > rank_[b]) std::swap(a, b);
  const uint32_t* begin = up_pool_.data() + up_offset_[a];
  const uint32_t* end = up_pool_.data() + up_offset_[a + 1];
  auto it = std::lower_bound(begin, end, b, [this](uint32_t cid, Vertex v) {
    return edges_[cid].hi < v;
  });
  return (it != end && edges_[*it].hi == b) ? *it : UINT32_MAX;
}

const std::vector<ChIndex::ChangedEdge>& ChIndex::ApplyUpdate(
    const WeightUpdate& update) {
  changed_.clear();
  ++update_epoch_;
  const uint32_t cid = ch_edge_of_graph_edge_[update.edge];
  const bool increase = update.new_weight > edges_[cid].base;
  g_->SetEdgeWeight(update.edge, update.new_weight);

  // Pre-update weight of a CH edge within this update.
  auto old_of = [this](uint32_t id) -> Weight {
    return old_stamp_[id] == update_epoch_ ? old_weight_[id]
                                           : edges_[id].weight;
  };
  auto record_change = [&](uint32_t id, Weight new_w) {
    if (old_stamp_[id] != update_epoch_) {
      old_stamp_[id] = update_epoch_;
      old_weight_[id] = edges_[id].weight;
      changed_.push_back(ChangedEdge{id, edges_[id].weight});
    }
    edges_[id].weight = new_w;
  };
  // Queue dependents of a changed edge (lo,hi): pairs supported by lo
  // with hi as an endpoint — lo's inverted-index slice keyed by hi.
  auto propagate = [this](uint32_t id) {
    const ChEdge& e = edges_[id];
    auto begin = supported_index_.begin() + supported_off_[e.lo];
    auto end = supported_index_.begin() + supported_off_[e.lo + 1];
    auto it = std::lower_bound(begin, end,
                               std::make_pair(e.hi, uint32_t{0}));
    for (; it != end && it->first == e.hi; ++it) {
      dirty_.Push(rank_[edges_[it->second].lo],
                  (static_cast<uint64_t>(it->second) << 32) | e.lo);
    }
  };

  // Seed: the base change itself.
  {
    ChEdge& e = edges_[cid];
    const Weight old_base = e.base;
    e.base = update.new_weight;
    if (!increase) {
      if (update.new_weight < e.weight) {
        record_change(cid, update.new_weight);
        propagate(cid);
      }
    } else if (old_base == e.weight) {
      Weight w = RecomputeEdgeWeight(e);
      if (w != e.weight) {
        record_change(cid, w);
        propagate(cid);
      }
    }
  }

  // Process triggers in ascending rank of the pair's lower endpoint: a
  // pair's supports have strictly smaller keys, so they are final.
  while (!dirty_.empty()) {
    auto [key, packed] = dirty_.Pop();
    (void)key;
    const uint32_t id = static_cast<uint32_t>(packed >> 32);
    const Vertex x = static_cast<Vertex>(packed & 0xffffffffu);
    ChEdge& e = edges_[id];
    const uint32_t leg1 = EdgeIdBetween(x, e.lo);
    const uint32_t leg2 = EdgeIdBetween(x, e.hi);
    STL_DCHECK(leg1 != UINT32_MAX && leg2 != UINT32_MAX);
    if (!increase) {
      Weight cand =
          SaturatingAdd(edges_[leg1].weight, edges_[leg2].weight);
      if (cand < e.weight) {
        record_change(id, cand);
        propagate(id);
      }
    } else {
      if (done_stamp_[id] == update_epoch_) continue;  // already settled
      // Only a support that realized the old minimum can raise it.
      Weight old_path = SaturatingAdd(old_of(leg1), old_of(leg2));
      if (old_path != old_of(id) || old_path == kInfDistance) continue;
      done_stamp_[id] = update_epoch_;
      Weight w = RecomputeEdgeWeight(e);
      if (w != e.weight) {
        record_change(id, w);
        propagate(id);
      }
    }
  }
  return changed_;
}

bool ChIndex::ValidateWeights() {
  for (uint32_t r = 0; r < by_rank_.size(); ++r) {
    Vertex v = by_rank_[r];
    for (uint32_t cid : UpEdges(v)) {
      if (RecomputeEdgeWeight(edges_[cid]) != edges_[cid].weight) {
        return false;
      }
    }
  }
  return true;
}

ChIndex ChIndex::PublishCopy() const {
  ChIndex copy;
  // Query state only: Query() reads rank_ (vertex count), edges_ and the
  // upward adjacency. Everything else exists for maintenance, which a
  // published epoch never does.
  copy.rank_ = rank_;
  copy.edges_ = edges_;
  copy.up_offset_ = up_offset_;
  copy.up_pool_ = up_pool_;
  copy.num_pure_shortcuts_ = num_pure_shortcuts_;
  copy.build_seconds_ = build_seconds_;
  return copy;
}

uint64_t ChIndex::MemoryBytes() const {
  return rank_.capacity() * sizeof(uint32_t) +
         by_rank_.capacity() * sizeof(Vertex) +
         edges_.capacity() * sizeof(ChEdge) +
         support_pool_.capacity() * sizeof(Vertex) +
         supported_off_.capacity() * sizeof(uint64_t) +
         supported_index_.capacity() * sizeof(supported_index_[0]) +
         up_offset_.capacity() * sizeof(uint32_t) +
         up_pool_.capacity() * sizeof(uint32_t) +
         ch_edge_of_graph_edge_.capacity() * sizeof(uint32_t);
}

}  // namespace stl
