// Backend shootout: the SAME mixed query + update workload driven
// through the engine for every DistanceIndex backend (STL, CH, H2H,
// HC2L), apples-to-apples under concurrent load.
//
// Per backend: build a QueryEngine, then stream update batches from a
// driver thread while closed-loop waves of distance queries run on the
// reader pool. Reports queries/sec, p50/p99 latency, publish
// micros/epoch, maintenance micros/epoch (wall time between Flush
// boundaries), resident bytes, build seconds, and batch-execution
// counters — and verifies EVERY answer against a Dijkstra recomputation
// on the exact epoch snapshot it was served from. Emits
// BENCH_backends.json.
//
// --check turns the run into a CI guard (structural, no timing): all
// four backends must be present, publish >= 1 epoch, and answer with
// zero mismatches.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "index/distance_index.h"
#include "util/rng.h"
#include "util/timer.h"

namespace stl {
namespace {

struct ShootoutSizes {
  uint32_t grid_side;
  size_t queries;
  size_t wave;
  size_t update_rounds;
  size_t batch_size;
};

ShootoutSizes SizesForScale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmall:
      return {40, 6000, 150, 16, 8};
    case BenchScale::kMedium:
      return {70, 20000, 250, 30, 16};
    case BenchScale::kLarge:
      return {100, 60000, 400, 60, 32};
  }
  return {40, 6000, 150, 16, 8};
}

struct BackendRow {
  BackendKind kind;
  double build_seconds = 0;
  double qps = 0;
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
  uint64_t epochs = 0;
  uint64_t updates_applied = 0;
  double publish_micros_per_epoch = 0;
  uint64_t cow_bytes_cloned = 0;
  uint64_t deep_copied_bytes = 0;
  uint64_t resident_index_bytes = 0;
  uint64_t batches_pareto = 0;
  uint64_t batches_label = 0;
  uint64_t batches_incremental = 0;
  uint64_t batches_rebuild = 0;
  uint64_t mismatches = 0;
};

BackendRow RunBackend(BackendKind kind, const Graph& base,
                      const ShootoutSizes& sizes) {
  BackendRow row;
  row.kind = kind;

  EngineOptions opt;
  opt.backend = kind;
  opt.num_query_threads = 4;
  opt.max_batch_size = sizes.batch_size;
  opt.strategy = StrategyMode::kAuto;
  Timer build_timer;
  QueryEngine engine(base, HierarchyOptions{}, opt);
  row.build_seconds = build_timer.ElapsedSeconds();
  engine.ResetStats();  // exclude build time from throughput

  const uint32_t n = base.NumVertices();
  const uint32_t m = base.NumEdges();

  // Identical workload for every backend: same query pairs, same update
  // stream (seeds fixed independently of the backend).
  Rng qrng(2024);
  std::vector<QueryPair> pairs;
  pairs.reserve(sizes.queries);
  for (size_t i = 0; i < sizes.queries; ++i) {
    pairs.emplace_back(static_cast<Vertex>(qrng.NextBounded(n)),
                       static_cast<Vertex>(qrng.NextBounded(n)));
  }

  // Update driver: alternating increase / restore batches on random
  // edges (factor 4, Figure 8's model), streamed while queries run.
  std::shared_ptr<const EngineSnapshot> base_snap = engine.CurrentSnapshot();
  const Graph& base_graph = base_snap->graph;
  std::thread updater([&] {
    Rng urng(4048);
    for (size_t round = 0; round < sizes.update_rounds; ++round) {
      std::vector<WeightUpdate> batch;
      batch.reserve(sizes.batch_size);
      const bool restore = round % 2 == 1;
      Rng ering(5000 + 11 * (round / 2));  // restore reuses the edges
      for (size_t i = 0; i < sizes.batch_size; ++i) {
        const EdgeId e = static_cast<EdgeId>(ering.NextBounded(m));
        const Weight w0 = base_graph.EdgeWeight(e);
        const Weight target =
            restore ? w0 : std::min<Weight>(w0 * 4, kMaxEdgeWeight);
        batch.push_back(WeightUpdate{e, 0, target});
      }
      engine.EnqueueUpdates(batch);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  // Query driver: closed-loop waves so in-flight work stays bounded and
  // latency measures serving, not backlog drain.
  std::vector<QueryResult> results;
  results.reserve(pairs.size());
  std::vector<std::future<QueryResult>> wave_futures;
  wave_futures.reserve(sizes.wave);
  for (size_t i = 0; i < pairs.size(); i += sizes.wave) {
    const size_t end = std::min(pairs.size(), i + sizes.wave);
    wave_futures.clear();
    for (size_t j = i; j < end; ++j) {
      wave_futures.push_back(engine.Submit(pairs[j]));
    }
    for (auto& f : wave_futures) results.push_back(f.get());
  }
  updater.join();
  engine.Flush();

  EngineStats stats = engine.Stats();
  row.qps = stats.queries_per_second;
  row.p50 = stats.latency_p50_micros;
  row.p99 = stats.latency_p99_micros;
  row.mean = stats.latency_mean_micros;
  row.epochs = stats.epochs_published;
  row.updates_applied = stats.updates_applied;
  row.publish_micros_per_epoch =
      stats.epochs_published > 0
          ? stats.publish_total_micros /
                static_cast<double>(stats.epochs_published)
          : 0;
  row.cow_bytes_cloned = stats.cow_bytes_cloned;
  row.deep_copied_bytes = stats.publish_bytes_deep_copied;
  row.resident_index_bytes = stats.resident_index_bytes;
  row.batches_pareto = stats.batches_pareto;
  row.batches_label = stats.batches_label;
  row.batches_incremental = stats.batches_incremental;
  row.batches_rebuild = stats.batches_rebuild;

  // Ground-truth audit: every answer vs Dijkstra on the exact epoch
  // snapshot it was served from.
  std::map<uint64_t, std::shared_ptr<const EngineSnapshot>> snapshots;
  for (const QueryResult& r : results) snapshots.emplace(r.epoch, r.snapshot);
  std::map<uint64_t, std::unique_ptr<Dijkstra>> oracle;
  for (auto& [epoch, snap] : snapshots) {
    oracle.emplace(epoch, std::make_unique<Dijkstra>(snap->graph));
  }
  for (size_t i = 0; i < results.size(); ++i) {
    const QueryResult& r = results[i];
    if (r.distance !=
        oracle.at(r.epoch)->Distance(pairs[i].first, pairs[i].second)) {
      ++row.mismatches;
    }
  }
  return row;
}

void WriteJson(const char* path, const bench::BenchConfig& cfg,
               uint32_t side, uint32_t vertices, uint32_t edges,
               const ShootoutSizes& sizes,
               const std::vector<BackendRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"backend_shootout\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", bench::ScaleName(cfg.scale));
  std::fprintf(f,
               "  \"network\": {\"grid_side\": %u, \"vertices\": %u, "
               "\"edges\": %u},\n",
               side, vertices, edges);
  std::fprintf(f,
               "  \"workload\": {\"queries\": %zu, \"update_rounds\": %zu, "
               "\"batch_size\": %zu, \"query_threads\": 4},\n",
               sizes.queries, sizes.update_rounds, sizes.batch_size);
  std::fprintf(f, "  \"backends\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BackendRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"build_seconds\": %.3f, \"qps\": %.1f, "
        "\"latency_p50_micros\": %.2f, \"latency_p99_micros\": %.2f, "
        "\"latency_mean_micros\": %.2f, \"epochs\": %" PRIu64
        ", \"updates_applied\": %" PRIu64
        ", \"publish_micros_per_epoch\": %.3f, \"cow_bytes_cloned\": %" PRIu64
        ", \"deep_copied_bytes\": %" PRIu64
        ", \"resident_index_bytes\": %" PRIu64
        ", \"batches\": {\"pareto\": %" PRIu64 ", \"label\": %" PRIu64
        ", \"incremental\": %" PRIu64 ", \"rebuild\": %" PRIu64
        "}, \"mismatches\": %" PRIu64 "}%s\n",
        BackendName(r.kind), r.build_seconds, r.qps, r.p50, r.p99, r.mean,
        r.epochs, r.updates_applied, r.publish_micros_per_epoch,
        r.cow_bytes_cloned, r.deep_copied_bytes, r.resident_index_bytes,
        r.batches_pareto, r.batches_label, r.batches_incremental,
        r.batches_rebuild, r.mismatches,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace stl

int main(int argc, char** argv) {
  using namespace stl;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  const bench::BenchConfig cfg = bench::MakeConfig();
  ShootoutSizes sizes = SizesForScale(cfg.scale);
  if (check) {
    // CI guard: keep the HC2L rebuild-per-batch cost bounded.
    sizes.grid_side = std::min<uint32_t>(sizes.grid_side, 30);
    sizes.queries = std::min<size_t>(sizes.queries, 3000);
    sizes.update_rounds = std::min<size_t>(sizes.update_rounds, 10);
  }

  RoadNetworkOptions net;
  net.width = sizes.grid_side;
  net.height = sizes.grid_side;
  net.seed = 7;
  Graph base = GenerateRoadNetwork(net);

  std::printf("== backend shootout: one engine workload, four indexes ==\n");
  std::printf(
      "scale=%s grid=%ux%u vertices=%u edges=%u queries=%zu "
      "update_rounds=%zu batch=%zu\n\n",
      bench::ScaleName(cfg.scale), sizes.grid_side, sizes.grid_side,
      base.NumVertices(), base.NumEdges(), sizes.queries,
      sizes.update_rounds, sizes.batch_size);

  std::printf("%-6s %9s %10s %8s %8s %8s %10s %12s %10s\n", "backend",
              "build s", "qps", "p50 us", "p99 us", "epochs", "publish us",
              "resident B", "mismatch");
  std::vector<BackendRow> rows;
  for (BackendKind kind : kAllBackends) {
    BackendRow row = RunBackend(kind, base, sizes);
    std::printf("%-6s %9.3f %10.1f %8.2f %8.2f %8" PRIu64
                " %10.3f %12" PRIu64 " %10" PRIu64 "\n",
                BackendName(row.kind), row.build_seconds, row.qps, row.p50,
                row.p99, row.epochs, row.publish_micros_per_epoch,
                row.resident_index_bytes, row.mismatches);
    rows.push_back(row);
  }

  WriteJson("BENCH_backends.json", cfg, sizes.grid_side, base.NumVertices(),
            base.NumEdges(), sizes, rows);

  if (!check) return 0;

  // ---- CI guard: structural invariants only, no timing flakiness. ----
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GUARD FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(rows.size() == std::size(kAllBackends),
         "every backend must produce a row");
  for (const BackendRow& r : rows) {
    expect(r.mismatches == 0,
           "every answer must match Dijkstra on its serving epoch");
    expect(r.epochs >= 1, "every backend must publish at least one epoch");
    expect(r.resident_index_bytes > 0,
           "resident bytes must be accounted for");
  }
  if (failures == 0) std::printf("\nall backend guards passed\n");
  return failures == 0 ? 0 : 1;
}
