// DistanceIndex: the backend abstraction the serving engine is generic
// over. The paper positions STL against CH, H2H and HC2L; this layer
// puts all four behind one capability surface so QueryEngine can serve
// concurrent traffic from any of them (and benchmarks can race them on
// identical workloads — see bench/bench_backend_shootout.cc).
//
// Split mirrors the engine's serving/maintenance split:
//
//   DistanceIndex  — the master, owned by the writer thread. Applies
//                    update batches (incrementally, or by full rebuild
//                    for static backends) and publishes IndexViews.
//   IndexView      — one immutable published epoch. Readers answer
//                    queries from it with pure const reads; it must stay
//                    correct and byte-stable while the writer keeps
//                    mutating the master.
//
// Publication cost is backend-shaped: STL shares label pages and the
// stable hierarchy copy-on-write (O(touched pages), the PR 2 fast
// path), CH/H2H deep-copy their weight-carrying state (their structures
// mutate in place), and HC2L republishes an immutable shared_ptr for
// free because every update batch already rebuilt a fresh index.
#ifndef STL_INDEX_DISTANCE_INDEX_H_
#define STL_INDEX_DISTANCE_INDEX_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/labelling.h"
#include "core/stl_index.h"
#include "core/tree_hierarchy.h"
#include "graph/graph.h"
#include "graph/updates.h"

/// Stable Tree Labelling: the dynamic shortest-path index, its
/// baselines, and the concurrent serving engines built on top.
namespace stl {

/// The four serveable index families.
enum class BackendKind {
  kStl,   ///< Stable Tree Labelling (the paper's index; dynamic, CoW).
  kCh,    ///< Contraction Hierarchy (CH-W + DCH maintenance).
  kH2h,   ///< H2H tree-decomposition labels (IncH2H maintenance).
  kHc2l,  ///< Hierarchical Cut 2-hop Labelling (static; rebuilds).
};

/// Short lowercase name, for logs / JSON / CLI flags.
const char* BackendName(BackendKind kind);

/// All four kinds, in presentation order.
inline constexpr BackendKind kAllBackends[] = {
    BackendKind::kStl, BackendKind::kCh, BackendKind::kH2h,
    BackendKind::kHc2l};

/// What a backend can do; the engine adapts (e.g. counts rebuild batches
/// separately, skips path queries) instead of special-casing kinds.
struct BackendCapabilities {
  /// False: every update batch triggers a full index rebuild (published
  /// as a new epoch like any other).
  bool incremental_updates = false;
  /// QueryShortestPath returns actual paths (else always empty).
  bool path_queries = false;
  /// Publishing shares structure with the master copy-on-write instead
  /// of deep-copying (STL's O(touched pages) publish).
  bool cow_snapshots = false;
  /// Point queries are label lookups (a few cache lines per query)
  /// rather than graph searches. The sharded engine's clique recompute
  /// prefers |S_i|^2 / 2 view queries over |S_i| full Dijkstras when
  /// this is set (index/overlay.h RebuildClique overloads).
  bool fast_point_queries = false;
};

/// One immutable published epoch of a backend. Thread-safe for any
/// number of concurrent readers; never mutated after publication.
class IndexView {
 public:
  virtual ~IndexView() = default;  ///< Views are owned via shared_ptr.

  /// Exact distance under this epoch's weights; kInfDistance if
  /// unreachable.
  virtual Weight Query(Vertex s, Vertex t) const = 0;

  /// An actual shortest path s .. t under this epoch's weights (`g` must
  /// be the epoch's graph). Empty when unreachable — or unsupported
  /// (capabilities().path_queries false).
  virtual std::vector<Vertex> QueryShortestPath(const Graph& g, Vertex s,
                                                Vertex t) const {
    (void)g;
    (void)s;
    (void)t;
    return {};
  }

  /// Adds this view's resident bytes to a running total, counting each
  /// physically shared block once across every call made with the same
  /// `seen` set. Returns the bytes newly added.
  virtual uint64_t AddResidentBytes(
      std::unordered_set<const void*>* seen) const = 0;

  /// STL-backend label introspection for tests and benches; null on
  /// every other backend.
  virtual const Labelling* StlLabels() const { return nullptr; }
  /// STL-backend hierarchy introspection; null on other backends.
  virtual const TreeHierarchy* StlHierarchy() const { return nullptr; }
};

/// How a backend executed one update batch (engine batch counters).
enum class BatchExecution {
  kParetoSearch,  ///< STL-P incremental repair.
  kLabelSearch,   ///< STL-L incremental repair.
  kIncremental,   ///< Backend-specific incremental repair (DCH / IncH2H).
  kFullRebuild,   ///< Static backend: index rebuilt from the new weights.
};

/// Physical copy work done to isolate the published epoch (fills the
/// engine's CoW / deep-copy economics counters).
struct PublishInfo {
  /// CoW label pages detached since the last publish.
  uint64_t label_pages_cloned = 0;
  /// Bytes of those detached pages.
  uint64_t label_bytes_cloned = 0;
  /// Bytes deep-copied by this publish.
  uint64_t deep_bytes_copied = 0;
};

/// A master index the engine's writer thread drives. Implementations
/// keep a non-owning Graph* to the engine's master graph: ApplyBatch
/// mutates the graph's weights and repairs (or rebuilds) the index in
/// one step, so graph and index never diverge. Not thread-safe — the
/// single-writer discipline of engine/query_engine.h applies; published
/// IndexViews are what readers touch.
class DistanceIndex {
 public:
  virtual ~DistanceIndex() = default;  ///< Owned by the engine's writer.

  /// Which index family this master is.
  virtual BackendKind kind() const = 0;
  /// What this backend supports (the engine adapts to it).
  virtual BackendCapabilities capabilities() const = 0;

  /// Applies a batch of weight updates on distinct edges. `strategy` is
  /// the engine's per-batch STL maintenance choice; non-STL backends
  /// ignore it. Returns how the batch was executed.
  virtual BatchExecution ApplyBatch(const UpdateBatch& batch,
                                    MaintenanceStrategy strategy) = 0;

  /// Publishes the current state as an immutable view and reports the
  /// copy work done. `flat_publish` forces the deep-copy baseline where
  /// a CoW fast path exists (no-op for backends that always deep-copy).
  virtual std::shared_ptr<const IndexView> PublishView(
      bool flat_publish, PublishInfo* info) = 0;

  /// Master index footprint in bytes (labels/edges + hierarchy/tree).
  virtual uint64_t MemoryBytes() const = 0;

  /// Seconds spent building the master index.
  virtual double BuildSeconds() const = 0;
};

/// Builds the master index of `kind` over `*g` (which must stay alive
/// and be mutated only through the returned index). `options` shapes the
/// STL / HC2L hierarchies and is also kept for HC2L rebuilds; CH and H2H
/// only read its num_threads-independent defaults.
std::unique_ptr<DistanceIndex> MakeDistanceIndex(
    BackendKind kind, Graph* g, const HierarchyOptions& options);

}  // namespace stl

#endif  // STL_INDEX_DISTANCE_INDEX_H_
