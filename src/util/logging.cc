#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace stl {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "STL_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace stl
