// Concurrent query-serving engine, generic over DistanceIndex backends
// (STL, CH, H2H, HC2L — see index/distance_index.h).
//
// Architecture (the serving/maintenance split of Section 1's "dynamic
// road network" setting, engineered for concurrency):
//
//   readers (ThreadPool)              single writer thread
//   ─────────────────────             ─────────────────────────────
//   load current snapshot  ◄───────┐  accumulate EnqueueUpdate()s
//   answer from its view           │  coalesce into a distinct-edge
//   (pure const reads, never       │  batch, apply it to the master
//    blocked by maintenance)       │  backend (incremental repair, or a
//                                  │  full rebuild for static backends),
//                                  └─ publish a new EngineSnapshot
//
// Epoch-versioned snapshots: every published EngineSnapshot is
// immutable. The per-epoch graph is always shared structurally (weights
// live in copy-on-write chunks, graph/graph.h). The index side is
// backend-shaped: STL shares the stable hierarchy across all epochs
// (the paper's central property — weight updates never change it) and
// label pages copy-on-write, so publishing an epoch copies page
// pointers, not entries — O(touched pages), the in-memory mirror of the
// paper's bounded blast radius. CH and H2H mutate their structures in
// place, so each of their epochs is a deep copy of the weight-carrying
// state; HC2L rebuilds on update and publishes the fresh immutable
// index by pointer share. Publication is one atomic pointer swap
// (engine/atomic_shared_ptr.h); a query holds its snapshot alive via
// shared_ptr for exactly as long as it runs, so the writer never waits
// for readers and readers never observe a half-applied batch. (EngineOptions::flat_publish
// restores STL's deep-copy-per-epoch behaviour as a benchmark
// baseline.)
//
// Consistency contract (all backends): a query submitted at time t is
// answered from some epoch published at or after the epoch current at
// t; the answer is exact for that epoch's weights (verified against
// Dijkstra per backend in tests/engine_test.cc and
// bench_backend_shootout).
#ifndef STL_ENGINE_QUERY_ENGINE_H_
#define STL_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/atomic_shared_ptr.h"
#include "engine/latency_histogram.h"
#include "engine/thread_pool.h"
#include "graph/updates.h"
#include "index/distance_index.h"
#include "util/timer.h"
#include "workload/query_workload.h"

namespace stl {

/// One immutable published version of the serving state: the graph
/// weights as of this epoch (chunk-shared copy-on-write with
/// neighbouring epochs) plus the backend's index view.
struct EngineSnapshot {
  uint64_t epoch = 0;
  Graph graph;  // weights as of this epoch
  std::shared_ptr<const IndexView> view;
  // CoW work that isolated this epoch from the previous one: label pages
  // detached by the producing maintenance batch, and total bytes cloned
  // (label pages + graph weight chunks). Zero for epoch 0 and for
  // backends without CoW snapshots.
  uint64_t label_pages_cloned = 0;
  uint64_t cow_bytes_cloned = 0;

  Weight Query(Vertex s, Vertex t) const { return view->Query(s, t); }
  /// Empty when t is unreachable — or when the backend does not support
  /// path queries (BackendCapabilities::path_queries).
  std::vector<Vertex> QueryShortestPath(Vertex s, Vertex t) const {
    return view->QueryShortestPath(graph, s, t);
  }

  // STL-backend introspection (CoW audits, publish benches); null views
  // on other backends.
  const Labelling* StlLabels() const { return view->StlLabels(); }
  const TreeHierarchy* StlHierarchy() const { return view->StlHierarchy(); }
};

/// Answer to one submitted query.
struct QueryResult {
  Weight distance = kInfDistance;
  uint64_t epoch = 0;
  double latency_micros = 0;  // submit-to-completion (queue wait included)
  // The snapshot the query was served from; lets callers audit the
  // answer against the exact weights of that epoch.
  std::shared_ptr<const EngineSnapshot> snapshot;
};

/// How the writer picks the STL maintenance algorithm per batch (other
/// backends use their own single maintenance scheme and ignore this).
enum class StrategyMode {
  kAlwaysParetoSearch,  // STL-P for every batch
  kAlwaysLabelSearch,   // STL-L for every batch
  // Per-batch choice: Label Search amortizes its per-ancestor searches
  // over large batches (Table 3); Pareto Search wins on small ones.
  kAuto,
};

struct EngineOptions {
  /// Which index family serves this engine (index/distance_index.h).
  BackendKind backend = BackendKind::kStl;
  int num_query_threads = 4;
  /// Updates taken from the pending queue per epoch (larger batches mean
  /// fewer snapshot publishes but staler reads).
  size_t max_batch_size = 128;
  StrategyMode strategy = StrategyMode::kAuto;
  /// kAuto: batches with at least this many effective updates use Label
  /// Search.
  size_t auto_label_search_threshold = 16;
  /// Benchmark baseline: publish every epoch as a full deep copy of the
  /// graph weights and labels (the pre-CoW behaviour) instead of a
  /// structural share. Keep false outside bench_snapshot_publish; only
  /// meaningful for backends with CoW snapshots (STL).
  bool flat_publish = false;
};

/// Point-in-time engine counters and latency summary.
struct EngineStats {
  BackendKind backend = BackendKind::kStl;
  uint64_t queries_served = 0;
  uint64_t updates_enqueued = 0;
  uint64_t updates_applied = 0;    // effective updates (after coalescing)
  uint64_t updates_coalesced = 0;  // duplicates / no-ops dropped
  uint64_t epochs_published = 0;
  uint64_t batches_pareto = 0;       // STL-P batches
  uint64_t batches_label = 0;        // STL-L batches
  uint64_t batches_incremental = 0;  // DCH / IncH2H batches
  uint64_t batches_rebuild = 0;      // static-backend full rebuilds
  // Copy-on-write publish economics. cow_bytes_cloned counts bytes of
  // label pages + graph weight chunks detached by maintenance (the true
  // per-epoch copy cost under structural sharing);
  // publish_bytes_deep_copied counts bytes copied by deep-copy publishes
  // (flat_publish baseline, and every CH/H2H epoch).
  uint64_t label_pages_cloned = 0;
  uint64_t graph_chunks_cloned = 0;
  uint64_t cow_bytes_cloned = 0;
  uint64_t publish_bytes_deep_copied = 0;
  double publish_total_micros = 0;  // time inside PublishSnapshot
  // Actual resident bytes of the serving state (current snapshot's view
  // + graph + any state shared with it), with every shared physical
  // page/chunk counted exactly once (Table-4-style honest memory under
  // page sharing). The STL master shares all but its not-yet-published
  // dirty pages with the snapshot, so those appear here after the next
  // publish.
  uint64_t resident_index_bytes = 0;
  double wall_seconds = 0;
  double queries_per_second = 0;
  double latency_mean_micros = 0;
  double latency_p50_micros = 0;
  double latency_p99_micros = 0;
  double latency_max_micros = 0;
};

/// Concurrent query-serving engine. Thread-safe: Submit/SubmitBatch/
/// EnqueueUpdate/Flush/Stats may be called from any thread.
class QueryEngine {
 public:
  /// Takes ownership of the graph, builds the backend selected by
  /// `options.backend`, starts the workers, and publishes epoch 0.
  QueryEngine(Graph graph, const HierarchyOptions& hierarchy_options,
              const EngineOptions& options = {});

  /// Drains: answers every submitted query and applies every enqueued
  /// update before returning.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Schedules one distance query; the future resolves when a reader
  /// thread has answered it.
  std::future<QueryResult> Submit(QueryPair query);

  /// Schedules many queries (one future each).
  std::vector<std::future<QueryResult>> SubmitBatch(
      const std::vector<QueryPair>& queries);

  /// Records a desired new weight for an edge. The writer re-resolves
  /// the old weight from the master graph at apply time, so callers need
  /// not know the current weight (update.old_weight is ignored).
  void EnqueueUpdate(const WeightUpdate& update);
  void EnqueueUpdate(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one lock, one writer wakeup): the
  /// writer cannot pop a partial prefix, so up to max_batch_size of them
  /// land in the same maintenance batch / epoch.
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been applied
  /// and, if it changed any weight, published in a snapshot.
  void Flush();

  /// The latest published snapshot (never null after construction).
  std::shared_ptr<const EngineSnapshot> CurrentSnapshot() const {
    return current_.load();
  }

  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  BackendKind backend() const { return options_.backend; }
  const BackendCapabilities& capabilities() const { return capabilities_; }

  EngineStats Stats() const;

  /// Zeroes counters (except the epoch allocator) and the latency
  /// histogram and restarts the wall clock (for bench warmup). Call only
  /// while no queries are in flight.
  void ResetStats();

  int num_query_threads() const { return pool_.num_threads(); }

 private:
  void WriterLoop();
  /// Publishes the master index state as epoch `epoch`. Called only by
  /// the writer thread (or the constructor, before concurrency starts).
  void PublishSnapshot(uint64_t epoch);

  const EngineOptions options_;

  // Master state, owned by the writer after construction (no other
  // thread reads it: queries and Stats() work off published snapshots).
  // graph_ is heap-allocated so its address stays stable for the
  // backend's non-owning pointer.
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<DistanceIndex> index_;
  BackendCapabilities capabilities_;

  AtomicSharedPtr<const EngineSnapshot> current_;

  // Pending-update queue (writer input).
  struct PendingUpdate {
    EdgeId edge;
    Weight new_weight;
  };
  mutable std::mutex update_mu_;
  std::condition_variable update_cv_;  // writer wakeup
  std::condition_variable flush_cv_;   // Flush() wakeup
  std::deque<PendingUpdate> pending_;
  uint64_t enqueue_seq_ = 0;  // updates ever enqueued
  uint64_t applied_seq_ = 0;  // updates taken and fully applied
  bool stop_writer_ = false;

  std::thread writer_;

  // Last-harvested cumulative CoW counters of the master graph; only the
  // publishing thread touches these, so per-epoch deltas need no
  // synchronization. (The label-side harvest lives in the STL backend.)
  uint64_t harvested_graph_chunks_ = 0;
  uint64_t harvested_graph_bytes_ = 0;

  // Serving-side stats (relaxed atomics: monitoring, not coordination).
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_coalesced_{0};
  std::atomic<uint64_t> epochs_published_{0};
  std::atomic<uint64_t> batches_pareto_{0};
  std::atomic<uint64_t> batches_label_{0};
  std::atomic<uint64_t> batches_incremental_{0};
  std::atomic<uint64_t> batches_rebuild_{0};
  std::atomic<uint64_t> label_pages_cloned_{0};
  std::atomic<uint64_t> graph_chunks_cloned_{0};
  std::atomic<uint64_t> cow_bytes_cloned_{0};
  std::atomic<uint64_t> publish_bytes_deep_copied_{0};
  std::atomic<uint64_t> publish_nanos_{0};
  LatencyHistogram latency_;
  Timer wall_;

  ThreadPool pool_;  // last member: workers die before state they touch
};

}  // namespace stl

#endif  // STL_ENGINE_QUERY_ENGINE_H_
