#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "util/min_heap.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/table.h"

namespace stl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng base(42);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
  // Forking with the same id from the same state is reproducible.
  Rng base2(42);
  Rng a2 = base2.Fork(1);
  Rng base3(42);
  Rng a3 = base3.Fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a2.Next(), a3.Next());
}

TEST(MinHeapTest, PopsInKeyOrder) {
  MinHeap<uint32_t, uint32_t> h;
  const uint32_t keys[] = {5, 1, 9, 1, 7, 0, 3};
  for (uint32_t k : keys) h.Push(k, 100 + k);
  uint32_t prev = 0;
  size_t count = 0;
  while (!h.empty()) {
    auto [k, v] = h.Pop();
    EXPECT_GE(k, prev);
    EXPECT_EQ(v, 100 + k);
    prev = k;
    ++count;
  }
  EXPECT_EQ(count, 7u);
}

TEST(MinHeapTest, TieBreaksByPayload) {
  MinHeap<uint32_t, uint32_t> h;
  h.Push(4, 30);
  h.Push(4, 10);
  h.Push(4, 20);
  EXPECT_EQ(h.Pop().payload, 10u);
  EXPECT_EQ(h.Pop().payload, 20u);
  EXPECT_EQ(h.Pop().payload, 30u);
}

TEST(ParetoHeapTest, DistanceAscThenLevelDesc) {
  // Equal distance: the entry with LARGER max_level pops first
  // (Section 5.2: Pareto-optimal tuples met before dominated ones).
  ParetoHeap h;
  h.Push(ParetoEntry{10, 0, 2, 1});
  h.Push(ParetoEntry{10, 0, 7, 2});
  h.Push(ParetoEntry{5, 0, 1, 3});
  h.Push(ParetoEntry{10, 0, 4, 4});
  EXPECT_EQ(h.Pop().vertex, 3u);  // smallest distance first
  EXPECT_EQ(h.Pop().vertex, 2u);  // then max_level 7
  EXPECT_EQ(h.Pop().vertex, 4u);  // then 4
  EXPECT_EQ(h.Pop().vertex, 1u);  // then 2
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Name", "Value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "234"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header line and rule line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowWidthMismatchDies) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row width mismatch");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Bytes(512), "512.00 B");
  EXPECT_EQ(TablePrinter::Bytes(2048), "2.00 KB");
  EXPECT_EQ(TablePrinter::Bytes(3ull << 30), "3.00 GB");
  EXPECT_EQ(TablePrinter::Count(42), "42");
  EXPECT_EQ(TablePrinter::Count(1500), "1.50 K");
  EXPECT_EQ(TablePrinter::Count(2500000), "2.50 M");
  EXPECT_EQ(TablePrinter::Count(9200000000ull), "9.20 B");
}

TEST(SerializeTest, PodAndVectorRoundTrip) {
  const std::string path = TempPath("ser_roundtrip.bin");
  std::vector<uint32_t> vec = {1, 2, 3, 0xffffffffu};
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0xabcd1234, 3).ok());
    ASSERT_TRUE(w.WritePod<uint64_t>(77).ok());
    ASSERT_TRUE(w.WriteVector(vec).ok());
    ASSERT_TRUE(w.WriteString("hello").ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0xabcd1234, 3).ok());
  EXPECT_EQ(r.version(), 3u);
  uint64_t x = 0;
  ASSERT_TRUE(r.ReadPod(&x).ok());
  EXPECT_EQ(x, 77u);
  std::vector<uint32_t> got;
  ASSERT_TRUE(r.ReadVector(&got).ok());
  EXPECT_EQ(got, vec);
  std::string s;
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(s, "hello");
}

TEST(SerializeTest, BadMagicRejected) {
  const std::string path = TempPath("ser_magic.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x11111111, 1).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  Status s = r.Open(path, 0x22222222, 1);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(SerializeTest, NewerVersionRejected) {
  const std::string path = TempPath("ser_version.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x33333333, 9).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  Status s = r.Open(path, 0x33333333, 8);
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
}

TEST(SerializeTest, TruncatedFileIsCorruption) {
  const std::string path = TempPath("ser_trunc.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x44444444, 1).ok());
    ASSERT_TRUE(w.WritePod<uint32_t>(5).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0x44444444, 1).ok());
  uint64_t too_big = 0;
  EXPECT_TRUE(r.ReadPod(&too_big).ok() == false);
}

TEST(SerializeTest, ImplausibleVectorLengthIsCorruption) {
  const std::string path = TempPath("ser_len.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x55555555, 1).ok());
    ASSERT_TRUE(w.WritePod<uint64_t>(UINT64_MAX).ok());  // fake huge length
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0x55555555, 1).ok());
  std::vector<uint64_t> v;
  Status s = r.ReadVector(&v);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(SerializeTest, MissingFileIsIOError) {
  BinaryReader r;
  Status s = r.Open(TempPath("does_not_exist.bin"), 1, 1);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace stl
