// Dataset registry for the experiment harnesses.
//
// The paper's Table 2 uses nine DIMACS USA networks plus PTV Western
// Europe. Offline we substitute deterministic synthetic road networks
// with the same ~1.5x size progression, named after their role models
// (NY-S = "NY-scaled" etc.). See DESIGN.md §3 for why this preserves the
// trends. STL_BENCH_SCALE=small|medium|large controls how many datasets
// (and how much workload) the bench binaries run, so the default suite
// finishes in minutes on a laptop.
#ifndef STL_WORKLOAD_DATASETS_H_
#define STL_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace stl {

/// Benchmark effort level, from the STL_BENCH_SCALE environment variable.
enum class BenchScale { kSmall, kMedium, kLarge };

/// Reads STL_BENCH_SCALE (default kSmall).
BenchScale ScaleFromEnv();

/// One synthetic dataset recipe.
struct DatasetSpec {
  std::string name;      // e.g. "NY-S"
  std::string mirrors;   // the paper dataset it stands in for
  uint32_t width;
  uint32_t height;
  uint64_t seed;
};

/// The full registry (10 datasets, increasing size).
const std::vector<DatasetSpec>& AllDatasets();

/// The registry prefix appropriate for `scale` (4 / 7 / 10 datasets).
std::vector<DatasetSpec> DatasetsForScale(BenchScale scale);

/// Materializes the dataset (deterministic in the spec).
Graph LoadDataset(const DatasetSpec& spec);

}  // namespace stl

#endif  // STL_WORKLOAD_DATASETS_H_
