// Conformance suite for the replicated shard-router tier (src/dist/):
// the router over a loopback transport must be BIT-IDENTICAL to the
// direct in-process ShardedEngine on every epoch — same distances, same
// bytes — across all four backends and replica counts {1, 2, 3}, while
// audited against per-epoch Dijkstra ground truth. Plus the epoch
// invariants: a batch pins ONE epoch across all shards even while a
// writer republishes, and replicas only ever answer the pinned
// shard_epoch.
#include "dist/shard_router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "dist/replica_node.h"
#include "dist/socket_transport.h"
#include "graph/dijkstra.h"
#include "net/server.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::SmallRoadNetwork;

// Backend × replica-count grid: the full conformance matrix.
class RouterConformanceTest
    : public ::testing::TestWithParam<std::tuple<BackendKind, uint32_t>> {
 protected:
  BackendKind backend() const { return std::get<0>(GetParam()); }
  uint32_t replicas() const { return std::get<1>(GetParam()); }
};

ShardedEngineOptions EngineOpts(BackendKind backend) {
  ShardedEngineOptions opt;
  opt.backend = backend;
  opt.target_shards = 4;
  opt.num_query_threads = 2;
  opt.max_batch_size = 8;
  return opt;
}

ShardRouterOptions RouterOpts(BackendKind backend) {
  ShardRouterOptions opt;
  opt.engine = EngineOpts(backend);
  opt.num_query_threads = 2;
  opt.max_batch_size = 8;
  return opt;
}

// The tentpole invariant: lockstep identical updates into a direct
// ShardedEngine and a routed tier, and every epoch's batch answers must
// match bitwise — and match per-epoch Dijkstra ground truth.
TEST_P(RouterConformanceTest, LockstepBitIdenticalToDirectEngine) {
  Graph g = SmallRoadNetwork(7, 211);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  Graph g_router = g;  // same weights, same ids

  ShardedEngine direct(std::move(g), HierarchyOptions{},
                       EngineOpts(backend()));
  LoopbackCluster cluster = MakeLoopbackCluster(replicas());
  ShardRouter router(std::move(g_router), HierarchyOptions{},
                     RouterOpts(backend()), cluster.transport.get(),
                     cluster.replica_ptrs());
  ASSERT_EQ(router.num_shards(), direct.num_shards());

  Rng rng(211);
  testing_util::EpochOracle oracle;
  uint64_t mismatches = 0;
  for (int round = 0; round < 6; ++round) {
    if (round > 0) {
      // The SAME batch into both tiers, flushed so both serve it.
      std::vector<WeightUpdate> updates;
      for (int i = 0; i < 3; ++i) {
        updates.push_back(
            WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                         1 + static_cast<Weight>(rng.NextBounded(500))});
      }
      direct.EnqueueUpdates(updates);
      router.EnqueueUpdates(updates);
      direct.Flush();
      router.Flush();
    }
    std::vector<QueryPair> batch;
    for (int i = 0; i < 48; ++i) {
      batch.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))});
    }
    ShardedEngine::Ticket dt = direct.SubmitBatch(batch);
    ShardRouter::Ticket rt = router.SubmitBatch(batch);
    dt.Wait();
    rt.Wait();
    // Both tiers are quiescent (flushed, no concurrent writer), so the
    // pinned epochs line up round for round.
    ASSERT_EQ(rt.epoch(), dt.epoch()) << "round=" << round;
    Dijkstra& audit = oracle.For(rt.epoch(), rt.snapshot()->graph);
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(dt.code(i), StatusCode::kOk);
      ASSERT_EQ(rt.code(i), StatusCode::kOk)
          << "round=" << round << " i=" << i;
      if (rt.distance(i) != dt.distance(i)) ++mismatches;
      ASSERT_EQ(rt.distance(i),
                audit.Distance(batch[i].first, batch[i].second))
          << BackendName(backend()) << " replicas=" << replicas()
          << " round=" << round << " i=" << i;
    }
  }
  EXPECT_EQ(mismatches, 0u)
      << BackendName(backend()) << " replicas=" << replicas();

  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.replicas, replicas());
  EXPECT_GT(stats.rpcs_sent, 0u);
  EXPECT_EQ(stats.serving.queries_unavailable, 0u);
  // Every replica holds every published epoch (installed before the
  // router's readers could pin it).
  for (const auto& replica : cluster.replicas) {
    EXPECT_EQ(replica->installs(), stats.serving.epochs_published + 1);
  }
}

// Per-query Submit must agree with the reference router on the pinned
// snapshot (which the direct engine's suite already audits against
// Dijkstra), replica count notwithstanding.
TEST_P(RouterConformanceTest, PerQuerySubmitMatchesSnapshotReference) {
  Graph g = SmallRoadNetwork(6, 223);
  const uint32_t n = g.NumVertices();
  LoopbackCluster cluster = MakeLoopbackCluster(replicas());
  ShardRouter router(std::move(g), HierarchyOptions{},
                     RouterOpts(backend()), cluster.transport.get(),
                     cluster.replica_ptrs());
  Rng rng(223);
  for (int i = 0; i < 64; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ShardedQueryResult r = router.Submit({s, t}).get();
    ASSERT_EQ(r.code, StatusCode::kOk);
    ASSERT_NE(r.snapshot, nullptr);
    ASSERT_EQ(r.distance, r.snapshot->Query(s, t))
        << BackendName(backend()) << " replicas=" << replicas()
        << " s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllReplicaCounts, RouterConformanceTest,
    ::testing::Combine(::testing::Values(BackendKind::kStl,
                                         BackendKind::kCh,
                                         BackendKind::kH2h,
                                         BackendKind::kHc2l),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(BackendName(std::get<0>(info.param))) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------ epoch pinning

// A batch pins ONE epoch across all shards even while a concurrent
// writer republishes underneath it: every answered query of a ticket is
// exact for the ticket's single pinned snapshot, audited per epoch
// against Dijkstra. This is the TSan workload for the routed tier.
TEST(RouterEpochPinningTest, BatchPinsSingleEpochUnderConcurrentWriter) {
  Graph g = SmallRoadNetwork(7, 307);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  ShardRouterOptions opt = RouterOpts(BackendKind::kStl);
  opt.num_query_threads = 4;
  opt.max_batch_size = 4;  // force several epochs
  // 48 updates can publish at most 48 epochs; a ring deeper than that
  // means a pinned epoch is never evicted mid-flight, so every query
  // must come back kOk even when the sanitizer slows the fan-out far
  // behind the racing writer (ring eviction is covered separately by
  // ShardReplicaTest.RingRefusesEvictedEpochs).
  ShardReplicaOptions deep_ring;
  deep_ring.epoch_ring = 64;
  LoopbackCluster cluster = MakeLoopbackCluster(2, deep_ring);
  ShardRouter router(std::move(g), HierarchyOptions{}, opt,
                     cluster.transport.get(), cluster.replica_ptrs());

  // Writer races the readers: 48 updates trickled through the router.
  std::atomic<bool> done{false};
  std::thread updater([&router, m, &done] {
    Rng rng(307);
    for (int i = 0; i < 48; ++i) {
      router.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                           1 + static_cast<Weight>(rng.NextBounded(400)));
      if (i % 6 == 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    done.store(true);
  });

  Rng rng(308);
  std::vector<std::vector<QueryPair>> waves;
  std::vector<ShardRouter::Ticket> tickets;
  size_t total = 0;
  while (!done.load() || total < 600) {
    std::vector<QueryPair> wave;
    for (int i = 0; i < 24; ++i) {
      wave.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n))});
    }
    tickets.push_back(router.SubmitBatch(wave));
    total += wave.size();
    waves.push_back(std::move(wave));
    if (total >= 3000) break;  // safety valve
  }
  updater.join();
  router.Flush();
  // 48 random re-weights cannot all be no-ops: the router republished.
  ASSERT_GT(router.CurrentEpoch(), 0u);
  // One post-flush wave necessarily pins a later epoch than wave 0 did,
  // so the multi-epoch assertion below cannot go vacuous on a machine
  // where the whole racing phase lands inside one epoch.
  {
    std::vector<QueryPair> wave;
    for (int i = 0; i < 24; ++i) {
      wave.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                      static_cast<Vertex>(rng.NextBounded(n))});
    }
    tickets.push_back(router.SubmitBatch(wave));
    waves.push_back(std::move(wave));
  }

  std::set<uint64_t> epochs_seen;
  testing_util::EpochOracle oracle;
  for (size_t w = 0; w < tickets.size(); ++w) {
    ShardRouter::Ticket& ticket = tickets[w];
    ticket.Wait();
    ASSERT_NE(ticket.snapshot(), nullptr);
    ASSERT_EQ(ticket.epoch(), ticket.snapshot()->epoch);
    epochs_seen.insert(ticket.epoch());
    Dijkstra& audit = oracle.For(ticket.epoch(), ticket.snapshot()->graph);
    for (size_t i = 0; i < waves[w].size(); ++i) {
      const auto [s, t] = waves[w][i];
      ASSERT_EQ(ticket.code(i), StatusCode::kOk)
          << "wave=" << w << " i=" << i << " epoch=" << ticket.epoch();
      // Exact for the ONE pinned epoch: if any shard had served a
      // different shard_epoch, the mixed-epoch distance would disagree
      // with this epoch's ground truth.
      ASSERT_EQ(ticket.distance(i), audit.Distance(s, t))
          << "wave=" << w << " i=" << i << " epoch=" << ticket.epoch();
    }
  }
  // The writer actually republished while we served (several distinct
  // epochs were pinned), so the invariant was exercised, not vacuous.
  EXPECT_GT(epochs_seen.size(), 1u);
  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.serving.queries_unavailable, 0u);
  EXPECT_GE(stats.serving.epochs_published, 1u);
  EXPECT_EQ(stats.rpc_failovers, 0u);  // healthy replicas: no failover
}

// ------------------------------------------------- completion delivery

// A sink that records every delivery under a lock (tests only).
class RecordingSink : public CompletionSink {
 public:
  void Deliver(const Completion& done) override {
    std::lock_guard<std::mutex> lock(mu_);
    completions_.push_back(done);
  }
  std::vector<Completion> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return completions_;
  }

 private:
  std::mutex mu_;
  std::vector<Completion> completions_;
};

// Tagged submission through the routed tier: every tag delivered
// exactly once, every answer exact for its completion's epoch.
TEST(RouterCompletionTest, TaggedDeliveryExactlyOnceAndExact) {
  Graph g = SmallRoadNetwork(6, 401);
  const uint32_t n = g.NumVertices();
  LoopbackCluster cluster = MakeLoopbackCluster(2);
  ShardRouter router(std::move(g), HierarchyOptions{},
                     RouterOpts(BackendKind::kStl),
                     cluster.transport.get(), cluster.replica_ptrs());
  // No updates in this test: epoch 0 is the ground truth throughout.
  const std::shared_ptr<const ShardedSnapshot> snap0 =
      router.CurrentSnapshot();
  Dijkstra audit(snap0->graph);

  RecordingSink sink;
  Rng rng(401);
  std::vector<QueryPair> queries;
  std::vector<uint64_t> tags;
  for (uint64_t i = 0; i < 128; ++i) {
    queries.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))});
    tags.push_back(1000 + i);
  }
  ShardRouter::Ticket ticket =
      router.SubmitBatchTagged(queries, tags, &sink);
  ticket.Wait();

  std::map<uint64_t, Completion> by_tag;
  for (const Completion& done : sink.Take()) {
    ASSERT_TRUE(by_tag.emplace(done.tag, done).second)
        << "tag " << done.tag << " delivered twice";
  }
  ASSERT_EQ(by_tag.size(), tags.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Completion& done = by_tag.at(tags[i]);
    ASSERT_EQ(done.code, StatusCode::kOk);
    ASSERT_EQ(done.distance,
              audit.Distance(queries[i].first, queries[i].second));
  }
}

// ------------------------------------------------- replica epoch ring

// A replica holds only its ring of recent epochs: requests pinning a
// version outside the ring are refused (kUnavailable), never answered
// from a different epoch.
TEST(ShardReplicaTest, RingRefusesEvictedEpochs) {
  Graph g = SmallRoadNetwork(6, 503);
  const uint32_t m = g.NumEdges();
  ShardRouterOptions opt = RouterOpts(BackendKind::kStl);
  ShardReplicaOptions ring1;
  ring1.epoch_ring = 1;  // strictest: only the newest version is held
  LoopbackCluster cluster = MakeLoopbackCluster(1, ring1);
  ShardRouter router(std::move(g), HierarchyOptions{}, opt,
                     cluster.transport.get(), cluster.replica_ptrs());

  // Hold the epoch-0 snapshot, then advance past the ring.
  std::shared_ptr<const ShardedSnapshot> old_snap =
      router.CurrentSnapshot();
  Rng rng(503);
  for (int round = 0; round < 3; ++round) {
    router.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                         1 + static_cast<Weight>(rng.NextBounded(300)));
    router.Flush();
  }
  ASSERT_GT(router.CurrentEpoch(), old_snap->epoch);

  // A request hand-pinned to the evicted epoch must be refused.
  ShardRequest req;
  req.kind = WireKind::kBoundaryRow;
  req.shard = 0;
  req.shard_epoch = old_snap->shards[0]->shard_epoch;
  // Pick a vertex owned by shard 0.
  const ShardLayout& lay = *old_snap->layout;
  Vertex owned = 0;
  for (Vertex v = 0; v < lay.shard_of_vertex.size(); ++v) {
    if (lay.shard_of_vertex[v] == 0) {
      owned = v;
      break;
    }
  }
  req.u = owned;
  // Only refused if shard 0 actually republished since epoch 0;
  // otherwise the ring's newest entry still serves that shard_epoch.
  const uint64_t current_se =
      router.CurrentSnapshot()->shards[0]->shard_epoch;
  const std::vector<uint8_t> bytes = req.Encode();
  std::vector<uint8_t> resp_bytes =
      cluster.replicas[0]->Handle(bytes.data(), bytes.size());
  ShardResponse resp;
  ASSERT_TRUE(
      ShardResponse::Decode(resp_bytes.data(), resp_bytes.size(), &resp)
          .ok());
  if (current_se != req.shard_epoch) {
    EXPECT_EQ(resp.code, StatusCode::kUnavailable);
  } else {
    EXPECT_EQ(resp.code, StatusCode::kOk);
  }
  // Current-epoch requests keep working either way.
  req.shard_epoch = current_se;
  const std::vector<uint8_t> bytes2 = req.Encode();
  resp_bytes = cluster.replicas[0]->Handle(bytes2.data(), bytes2.size());
  ASSERT_TRUE(
      ShardResponse::Decode(resp_bytes.data(), resp_bytes.size(), &resp)
          .ok());
  EXPECT_EQ(resp.code, StatusCode::kOk);
}

// ---------------------------------------------- socket skeleton shape

// The socket transport is a skeleton: a router configured against it
// degrades exactly like a router whose replicas are all unreachable —
// typed kUnavailable, never a crash, never a wrong answer.
TEST(SocketTransportTest, RouterDegradesToTypedUnavailable) {
  Graph g = SmallRoadNetwork(5, 601);
  const uint32_t n = g.NumVertices();
  SocketTransport transport({"127.0.0.1:7001", "127.0.0.1:7002"});
  ShardRouter router(std::move(g), HierarchyOptions{},
                     RouterOpts(BackendKind::kStl), &transport, {});

  Rng rng(601);
  uint64_t unavailable = 0;
  for (int i = 0; i < 32; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ShardedQueryResult r = router.Submit({s, t}).get();
    if (r.code == StatusCode::kUnavailable) {
      ++unavailable;
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    } else {
      // Only queries that never need a replica (s == t, both endpoints
      // boundary) can still answer — and they answer exactly.
      ASSERT_EQ(r.code, StatusCode::kOk);
      ASSERT_EQ(r.distance, r.snapshot->Query(s, t));
    }
  }
  EXPECT_GT(unavailable, 0u);
  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.serving.queries_unavailable, unavailable);
  EXPECT_GT(stats.rpc_stale_responses, 0u);
}

// ------------------------------------------- conformance over real TCP

// An in-process socket cluster: N ReplicaNodes, each served by its own
// FrameServer on an ephemeral localhost port. The router reaches them
// ONLY through a SocketTransport (empty in-process replica list), so
// queries AND the kInstall replication stream cross real sockets.
struct SocketCluster {
  std::vector<std::unique_ptr<ReplicaNode>> nodes;
  std::vector<std::unique_ptr<FrameServer>> servers;  // after nodes: die first
  std::vector<std::string> endpoints;
};

SocketCluster MakeSocketCluster(uint32_t num_nodes, uint32_t side,
                                uint64_t seed, BackendKind backend) {
  SocketCluster cluster;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    // The identical graph + engine options the router is built with:
    // the state-machine replication contract.
    auto node = std::make_unique<ReplicaNode>(
        SmallRoadNetwork(side, seed), HierarchyOptions{}, EngineOpts(backend));
    ReplicaNode* raw = node.get();
    auto server = std::make_unique<FrameServer>(
        FrameServer::Options{}, [raw](const uint8_t* data, size_t size) {
          return raw->Handle(data, size);
        });
    EXPECT_TRUE(server->Start().ok());
    cluster.endpoints.push_back("127.0.0.1:" +
                                std::to_string(server->port()));
    cluster.nodes.push_back(std::move(node));
    cluster.servers.push_back(std::move(server));
  }
  return cluster;
}

class SocketConformanceTest
    : public ::testing::TestWithParam<std::tuple<BackendKind, uint32_t>> {
 protected:
  BackendKind backend() const { return std::get<0>(GetParam()); }
  uint32_t replicas() const { return std::get<1>(GetParam()); }
};

// The PR-9 lockstep invariant over the wire: a router whose replicas
// are ReplicaNode processes-in-miniature behind real TCP sockets must
// be bit-identical to the direct in-process engine on every epoch —
// with updates replicated as kInstall sequences, zero kUnavailable,
// and every wire install acked.
TEST_P(SocketConformanceTest, LockstepBitIdenticalOverRealTcp) {
  const uint32_t side = 7;
  const uint64_t seed = 211;
  Graph g = SmallRoadNetwork(side, seed);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  Graph g_router = g;

  ShardedEngine direct(std::move(g), HierarchyOptions{},
                       EngineOpts(backend()));
  SocketCluster cluster = MakeSocketCluster(replicas(), side, seed, backend());
  SocketTransport transport(cluster.endpoints);
  ShardRouter router(std::move(g_router), HierarchyOptions{},
                     RouterOpts(backend()), &transport, {});
  ASSERT_EQ(router.num_shards(), direct.num_shards());

  Rng rng(211);
  testing_util::EpochOracle oracle;
  for (int round = 0; round < 5; ++round) {
    if (round > 0) {
      std::vector<WeightUpdate> updates;
      for (int i = 0; i < 3; ++i) {
        updates.push_back(
            WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                         1 + static_cast<Weight>(rng.NextBounded(500))});
      }
      direct.EnqueueUpdates(updates);
      router.EnqueueUpdates(updates);
      direct.Flush();
      router.Flush();
    }
    std::vector<QueryPair> batch;
    for (int i = 0; i < 48; ++i) {
      batch.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))});
    }
    ShardedEngine::Ticket dt = direct.SubmitBatch(batch);
    ShardRouter::Ticket rt = router.SubmitBatch(batch);
    dt.Wait();
    rt.Wait();
    ASSERT_EQ(rt.epoch(), dt.epoch()) << "round=" << round;
    Dijkstra& audit = oracle.For(rt.epoch(), rt.snapshot()->graph);
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(dt.code(i), StatusCode::kOk);
      ASSERT_EQ(rt.code(i), StatusCode::kOk)
          << "round=" << round << " i=" << i;
      ASSERT_EQ(rt.distance(i), dt.distance(i))
          << "round=" << round << " i=" << i;
      ASSERT_EQ(rt.distance(i),
                audit.Distance(batch[i].first, batch[i].second))
          << BackendName(backend()) << " replicas=" << replicas()
          << " round=" << round << " i=" << i;
    }
  }

  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.replicas, replicas());
  EXPECT_GT(stats.rpcs_sent, 0u);
  EXPECT_EQ(stats.serving.queries_unavailable, 0u);
  // Replication flowed over the wire (seq 0 plus one per published
  // epoch, to every endpoint) and every install was acked.
  EXPECT_EQ(stats.wire_installs, stats.serving.epochs_published + 1);
  EXPECT_EQ(stats.install_failures, 0u);
  for (const auto& node : cluster.nodes) {
    EXPECT_EQ(node->installs_applied(), stats.wire_installs);
    EXPECT_EQ(node->install_nacks(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsOverTcp, SocketConformanceTest,
    ::testing::Combine(::testing::Values(BackendKind::kStl,
                                         BackendKind::kCh,
                                         BackendKind::kH2h,
                                         BackendKind::kHc2l),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::string(BackendName(std::get<0>(info.param))) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

// Tagged completion-queue mode over real sockets: exactly-once per
// tag, every answer exact — the loopback contract survives the wire.
TEST(SocketConformanceTest2, TaggedDeliveryExactlyOnceOverTcp) {
  const uint32_t side = 6;
  const uint64_t seed = 401;
  Graph g = SmallRoadNetwork(side, seed);
  const uint32_t n = g.NumVertices();
  SocketCluster cluster =
      MakeSocketCluster(2, side, seed, BackendKind::kStl);
  SocketTransport transport(cluster.endpoints);
  ShardRouter router(std::move(g), HierarchyOptions{},
                     RouterOpts(BackendKind::kStl), &transport, {});
  const std::shared_ptr<const ShardedSnapshot> snap0 =
      router.CurrentSnapshot();
  Dijkstra audit(snap0->graph);

  RecordingSink sink;
  Rng rng(401);
  std::vector<QueryPair> queries;
  std::vector<uint64_t> tags;
  for (uint64_t i = 0; i < 96; ++i) {
    queries.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))});
    tags.push_back(5000 + i);
  }
  ShardRouter::Ticket ticket =
      router.SubmitBatchTagged(queries, tags, &sink);
  ticket.Wait();

  std::map<uint64_t, Completion> by_tag;
  for (const Completion& done : sink.Take()) {
    ASSERT_TRUE(by_tag.emplace(done.tag, done).second)
        << "tag " << done.tag << " delivered twice";
  }
  ASSERT_EQ(by_tag.size(), tags.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Completion& done = by_tag.at(tags[i]);
    ASSERT_EQ(done.code, StatusCode::kOk);
    ASSERT_EQ(done.distance,
              audit.Distance(queries[i].first, queries[i].second));
  }
}

// --------------------------------------------- non-blocking fan-out

// A transport that parks every Send until released — in-flight RPCs
// exist but never complete, so the test can observe what the router's
// reader threads do while a fan-out is outstanding.
class HoldingTransport final : public Transport {
 public:
  explicit HoldingTransport(Transport* inner) : inner_(inner) {}
  ~HoldingTransport() override { Release(); }

  uint32_t NumEndpoints() const override { return inner_->NumEndpoints(); }

  void Send(uint32_t endpoint, uint64_t tag,
            std::shared_ptr<const std::vector<uint8_t>> request,
            TransportSink* sink) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (holding_) {
        held_.push_back(Held{endpoint, tag, std::move(request), sink});
        return;
      }
    }
    inner_->Send(endpoint, tag, std::move(request), sink);
  }

  size_t held() {
    std::lock_guard<std::mutex> lock(mu_);
    return held_.size();
  }

  /// Forwards everything held and stops holding. Idempotent.
  void Release() {
    std::vector<Held> drain;
    {
      std::lock_guard<std::mutex> lock(mu_);
      holding_ = false;
      drain.swap(held_);
    }
    for (Held& h : drain) {
      inner_->Send(h.endpoint, h.tag, std::move(h.request), h.sink);
    }
  }

 private:
  struct Held {
    uint32_t endpoint;
    uint64_t tag;
    std::shared_ptr<const std::vector<uint8_t>> request;
    TransportSink* sink;
  };
  Transport* const inner_;
  std::mutex mu_;
  bool holding_ = true;
  std::vector<Held> held_;
};

// The async acceptance criterion: a fan-out of in-flight RPCs parks NO
// reader thread. With a single reader and a fan-out held in the
// transport, a second query that needs no RPC must still complete —
// under the old parked-reader design the lone reader would be blocked
// inside the first query's mailbox wait and the second could never run.
TEST(RouterAsyncTest, FanoutParksNoReaderThread) {
  Graph g = SmallRoadNetwork(7, 811);
  const uint32_t n = g.NumVertices();
  ShardRouterOptions opt = RouterOpts(BackendKind::kStl);
  opt.num_query_threads = 1;  // the whole reader pool is ONE thread
  LoopbackCluster cluster = MakeLoopbackCluster(1);
  HoldingTransport holding(cluster.transport.get());
  ShardRouter router(std::move(g), HierarchyOptions{}, opt, &holding,
                     cluster.replica_ptrs());

  // Find a query that actually fans out (lands at least one RPC in the
  // holding transport). Trivial ones (s == t, both-boundary pairs)
  // complete with no RPC and are skipped.
  Rng rng(811);
  std::future<ShardedQueryResult> first;
  QueryPair first_q{0, 0};
  bool held_one = false;
  for (int attempt = 0; attempt < 64 && !held_one; ++attempt) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    if (s == t) continue;
    std::future<ShardedQueryResult> f = router.Submit({s, t});
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (holding.held() > 0) {
        held_one = true;
        break;
      }
      if (f.wait_for(std::chrono::milliseconds(1)) ==
          std::future_status::ready) {
        break;  // needed no RPC; try another pair
      }
    }
    if (held_one) {
      first = std::move(f);
      first_q = {s, t};
    } else {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(5)),
                std::future_status::ready);
      f.get();
    }
  }
  ASSERT_TRUE(held_one) << "no query produced an in-flight fan-out";

  // The fan-out is parked in the transport; the single reader must
  // already be back in the pool: an RPC-free query completes now.
  std::future<ShardedQueryResult> second = router.Submit({3, 3});
  ASSERT_EQ(second.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "reader thread was parked by the in-flight fan-out";
  ShardedQueryResult trivial = second.get();
  EXPECT_EQ(trivial.code, StatusCode::kOk);
  EXPECT_EQ(trivial.distance, 0u);
  EXPECT_NE(first.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "first query completed although its RPCs are held";

  // Release: the held responses flow, the fan-out completes, and the
  // answer is exact on its pinned snapshot.
  holding.Release();
  ShardedQueryResult r = first.get();
  ASSERT_EQ(r.code, StatusCode::kOk);
  ASSERT_NE(r.snapshot, nullptr);
  EXPECT_EQ(r.distance, r.snapshot->Query(first_q.first, first_q.second));
}

}  // namespace
}  // namespace stl
