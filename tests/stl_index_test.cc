#include "core/stl_index.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::RandomUpdate;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(StlIndexTest, BuildAndQuery) {
  Graph g = testing_util::SmallRoadNetwork(12, 1);
  Graph ref = g;
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Dijkstra dij(ref);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    EXPECT_EQ(idx.Query(s, t), dij.Distance(s, t));
  }
  EXPECT_GT(idx.MemoryBytes(), 0u);
  EXPECT_GT(idx.build_info().total_seconds, 0.0);
  EXPECT_GE(idx.build_info().total_seconds,
            idx.build_info().labelling_seconds);
}

TEST(StlIndexTest, BothStrategiesMaintainCorrectness) {
  Graph g = testing_util::SmallRoadNetwork(10, 2);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Rng rng(2);
  for (int round = 0; round < 12; ++round) {
    WeightUpdate u = RandomUpdate(g, &rng);
    idx.ApplyUpdate(u, round % 2 == 0 ? MaintenanceStrategy::kParetoSearch
                                      : MaintenanceStrategy::kLabelSearch);
    Dijkstra dij(g);
    for (int i = 0; i < 50; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      ASSERT_EQ(idx.Query(s, t), dij.Distance(s, t)) << "round " << round;
    }
  }
  EXPECT_GT(idx.MaintenanceStatsTotal().queue_pops, 0u);
}

TEST(StlIndexTest, ApplyBatchMixed) {
  Graph g = testing_util::SmallRoadNetwork(10, 3);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Rng rng(3);
  UpdateBatch batch;
  std::vector<bool> used(g.NumEdges(), false);
  while (batch.size() < 12) {
    WeightUpdate u = RandomUpdate(g, &rng);
    if (used[u.edge]) continue;
    used[u.edge] = true;
    batch.push_back(u);
  }
  idx.ApplyBatch(batch, MaintenanceStrategy::kLabelSearch);
  Dijkstra dij(g);
  for (int i = 0; i < 100; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    ASSERT_EQ(idx.Query(s, t), dij.Distance(s, t));
  }
}

TEST(StlIndexTest, MoveCarriesMaintenanceStatsAndSurvivesSelfMove) {
  Graph g = testing_util::SmallRoadNetwork(10, 9);
  Graph ref = g;
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Rng rng(9);
  // Accumulate work on both engines so the carried total is non-trivial.
  for (int i = 0; i < 6; ++i) {
    idx.ApplyUpdate(RandomUpdate(g, &rng), MaintenanceStrategy::kParetoSearch);
    idx.ApplyUpdate(RandomUpdate(g, &rng), MaintenanceStrategy::kLabelSearch);
  }
  const MaintenanceStats before = idx.MaintenanceStatsTotal();
  ASSERT_GT(before.label_writes, 0u);
  ASSERT_GT(before.queue_pops, 0u);

  // Self-move-assignment is a no-op: state and stats are untouched.
  StlIndex* self = &idx;
  idx = std::move(*self);
  EXPECT_EQ(idx.MaintenanceStatsTotal().label_writes, before.label_writes);
  EXPECT_EQ(idx.MaintenanceStatsTotal().queue_pops, before.queue_pops);

  // Move construction and move assignment both carry cumulative stats.
  StlIndex moved = std::move(idx);
  EXPECT_EQ(moved.MaintenanceStatsTotal().label_writes, before.label_writes);
  Graph g2 = ref;
  StlIndex other = StlIndex::Build(&g2, HierarchyOptions{});
  other = std::move(moved);
  EXPECT_EQ(other.MaintenanceStatsTotal().label_writes, before.label_writes);
  EXPECT_EQ(other.MaintenanceStatsTotal().affected_pairs,
            before.affected_pairs);

  // The moved-into index still maintains correctly and keeps counting.
  // (It took over `g`, which the earlier updates mutated in place, so the
  // oracle runs on `g` itself after the update.)
  other.ApplyUpdate(RandomUpdate(g, &rng));
  Dijkstra dij(g);
  for (int i = 0; i < 100; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    ASSERT_EQ(other.Query(s, t), dij.Distance(s, t));
  }
  EXPECT_GE(other.MaintenanceStatsTotal().label_writes,
            before.label_writes);
}

TEST(StlIndexTest, SaveLoadRoundTrip) {
  Graph g = testing_util::SmallRoadNetwork(9, 4);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  const std::string path = TempPath("idx.stl");
  ASSERT_TRUE(idx.Save(path).ok());
  Result<StlIndex> loaded = StlIndex::Load(&g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Rng rng(4);
  for (int i = 0; i < 150; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    EXPECT_EQ(loaded.value().Query(s, t), idx.Query(s, t));
  }
}

TEST(StlIndexTest, LoadedIndexSupportsUpdates) {
  Graph g = testing_util::SmallRoadNetwork(9, 5);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  const std::string path = TempPath("idx_upd.stl");
  ASSERT_TRUE(idx.Save(path).ok());
  Result<StlIndex> loaded = StlIndex::Load(&g, path);
  ASSERT_TRUE(loaded.ok());
  Rng rng(5);
  for (int round = 0; round < 6; ++round) {
    WeightUpdate u = RandomUpdate(g, &rng);
    loaded.value().ApplyUpdate(u);
    Dijkstra dij(g);
    for (int i = 0; i < 40; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      ASSERT_EQ(loaded.value().Query(s, t), dij.Distance(s, t));
    }
  }
}

TEST(StlIndexTest, LoadRejectsDifferentGraph) {
  Graph g = testing_util::SmallRoadNetwork(9, 6);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  const std::string path = TempPath("idx_other.stl");
  ASSERT_TRUE(idx.Save(path).ok());
  Graph other = testing_util::SmallRoadNetwork(11, 7);
  Result<StlIndex> loaded = StlIndex::Load(&other, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(StlIndexTest, LoadRejectsMissingAndCorruptFiles) {
  Graph g = testing_util::SmallRoadNetwork(8, 8);
  Result<StlIndex> missing = StlIndex::Load(&g, TempPath("nope.stl"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);

  const std::string path = TempPath("garbage.stl");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not an index";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Result<StlIndex> corrupt = StlIndex::Load(&g, path);
  ASSERT_FALSE(corrupt.ok());
}

TEST(StlIndexTest, BetaAffectsHierarchyShape) {
  Graph g = testing_util::SmallRoadNetwork(14, 9);
  HierarchyOptions shallow;
  shallow.beta = 0.45;
  HierarchyOptions skewed;
  skewed.beta = 0.05;
  Graph g2 = g;
  StlIndex a = StlIndex::Build(&g, shallow);
  StlIndex b = StlIndex::Build(&g2, skewed);
  // Both must answer identically regardless of shape.
  Dijkstra dij(g);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Weight want = dij.Distance(s, t);
    EXPECT_EQ(a.Query(s, t), want);
    EXPECT_EQ(b.Query(s, t), want);
  }
}

}  // namespace
}  // namespace stl
