// Deterministic pseudo-random number generation. All randomized components
// of the library (generators, workloads, partitioner multi-start) are
// seeded explicitly so that every experiment is reproducible bit-for-bit.
#ifndef STL_UTIL_RNG_H_
#define STL_UTIL_RNG_H_

#include <cstdint>

#include "util/logging.h"

namespace stl {

/// splitmix64: tiny, fast, high-quality 64-bit generator. Used both as a
/// generator and to derive independent streams from one master seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    STL_DCHECK(bound > 0);
    // Rejection-free modulo is fine here: bound << 2^64 in all our uses,
    // so modulo bias is negligible for experiments, and determinism is
    // what matters.
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    STL_DCHECK(lo <= hi);
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Derives an independent child stream (e.g. one per dataset / batch).
  Rng Fork(uint64_t stream_id) {
    uint64_t mixed = state_ ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    Rng child(mixed);
    child.Next();  // decorrelate from the raw seed
    return child;
  }

 private:
  uint64_t state_;
};

}  // namespace stl

#endif  // STL_UTIL_RNG_H_
