#include "net/conn.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace stl {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Conn::Conn(EventLoop* loop, Callbacks callbacks, FaultInjector* faults)
    : loop_(loop), callbacks_(std::move(callbacks)), faults_(faults) {}

Conn::~Conn() {
  // Normal teardown goes through Fail()/Shutdown(); this only runs for
  // conns destroyed after their loop stopped. Closing the fd drops any
  // stale epoll registration with it.
  if (fd_ >= 0) ::close(fd_);
}

std::shared_ptr<Conn> Conn::Connect(EventLoop* loop, const std::string& host,
                                    uint16_t port, Callbacks callbacks,
                                    FaultInjector* faults) {
  std::shared_ptr<Conn> conn(new Conn(loop, std::move(callbacks), faults));
  loop->RunInLoop([conn, host, port] { conn->StartConnect(host, port); });
  return conn;
}

std::shared_ptr<Conn> Conn::Adopt(EventLoop* loop, int fd,
                                  Callbacks callbacks, FaultInjector* faults) {
  STL_DCHECK(loop->InLoopThread());
  std::shared_ptr<Conn> conn(new Conn(loop, std::move(callbacks), faults));
  SetNonBlocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  conn->fd_ = fd;
  conn->state_ = State::kOpen;
  conn->Register(EPOLLIN);
  return conn;
}

void Conn::StartConnect(const std::string& host, uint16_t port) {
  STL_DCHECK(loop_->InLoopThread());
  if (state_ == State::kClosed) return;  // shut down before we got here

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    Fail("connect: unresolvable host " + host);
    return;
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0 || !SetNonBlocking(fd_)) {
    Fail("connect: socket setup failed");
    return;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  const int rc =
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc == 0) {
    // Same-host connects can complete synchronously.
    state_ = State::kOpen;
    Register(EPOLLIN | (write_pos_ < write_buf_.size() ? EPOLLOUT : 0u));
    FlushWrites();
    if (state_ == State::kOpen && callbacks_.on_connected) {
      callbacks_.on_connected();
    }
    return;
  }
  if (errno != EINPROGRESS) {
    Fail(std::string("connect: ") + std::strerror(errno));
    return;
  }
  // In-progress: EPOLLOUT readiness signals the handshake outcome.
  Register(EPOLLOUT);
}

void Conn::Register(uint32_t events) {
  auto self = shared_from_this();
  loop_->RegisterFd(fd_, events,
                    [self](uint32_t ready) { self->OnEvents(ready); });
  registered_ = true;
}

void Conn::OnEvents(uint32_t events) {
  if (state_ == State::kClosed) return;
  if (state_ == State::kConnecting) {
    // Any readiness (including EPOLLERR/EPOLLHUP) resolves the
    // handshake; SO_ERROR distinguishes success from refusal.
    FinishConnect();
    return;
  }
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) HandleReadable();
  if (state_ == State::kOpen && (events & EPOLLOUT)) HandleWritable();
}

void Conn::FinishConnect() {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    err = errno;
  }
  if (err != 0) {
    Fail(std::string("connect: ") + std::strerror(err));
    return;
  }
  state_ = State::kOpen;
  UpdateInterest();
  FlushWrites();
  if (state_ == State::kOpen && callbacks_.on_connected) {
    callbacks_.on_connected();
  }
}

void Conn::HandleReadable() {
  uint8_t chunk[kReadChunk];
  while (state_ == State::kOpen) {
    const size_t want = ClampIo(sizeof chunk);
    if (want == 0) {
      Fail("fault: forced disconnect (read)");
      return;
    }
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n > 0) {
      read_buf_.insert(read_buf_.end(), chunk, chunk + n);
      // Reassemble every complete frame now buffered.
      size_t off = 0;
      while (state_ == State::kOpen) {
        WireFrame frame;
        size_t consumed = 0;
        const Status s = DecodeFrame(read_buf_.data() + off,
                                     read_buf_.size() - off, &frame,
                                     &consumed);
        if (s.ok()) {
          off += consumed;
          if (callbacks_.on_frame) callbacks_.on_frame(std::move(frame));
          continue;
        }
        if (s.code() == StatusCode::kUnavailable) break;  // need more bytes
        Fail("stream corruption: " + s.ToString());
        return;
      }
      if (off > 0) read_buf_.erase(read_buf_.begin(), read_buf_.begin() + off);
      if (static_cast<size_t>(n) < want) return;  // kernel buffer drained
      continue;
    }
    if (n == 0) {
      Fail("peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    Fail(std::string("read: ") + std::strerror(errno));
    return;
  }
}

void Conn::HandleWritable() {
  FlushWrites();
}

void Conn::SendFrame(uint64_t tag, const std::vector<uint8_t>& payload) {
  STL_DCHECK(loop_->InLoopThread());
  if (state_ == State::kClosed) return;
  EncodeFrame(tag, payload, &write_buf_);
  if (state_ == State::kOpen) FlushWrites();
}

void Conn::FlushWrites() {
  while (state_ == State::kOpen && write_pos_ < write_buf_.size()) {
    const size_t want = ClampIo(write_buf_.size() - write_pos_);
    if (want == 0) {
      Fail("fault: forced disconnect (write)");
      return;
    }
    const ssize_t n = ::send(fd_, write_buf_.data() + write_pos_, want,
                             MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    Fail(std::string("write: ") + std::strerror(errno));
    return;
  }
  if (write_pos_ == write_buf_.size()) {
    write_buf_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > kReadChunk) {
    // Keep the pending tail compact under sustained partial writes.
    write_buf_.erase(write_buf_.begin(), write_buf_.begin() + write_pos_);
    write_pos_ = 0;
  }
  if (state_ == State::kOpen) UpdateInterest();
}

void Conn::UpdateInterest() {
  if (!registered_ || state_ != State::kOpen) return;
  const uint32_t events =
      EPOLLIN | (write_pos_ < write_buf_.size() ? EPOLLOUT : 0u);
  loop_->UpdateFd(fd_, events);
}

void Conn::Shutdown() {
  STL_DCHECK(loop_->InLoopThread());
  Fail("shutdown");
}

void Conn::Fail(const std::string& reason) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (registered_) {
    loop_->UnregisterFd(fd_);
    registered_ = false;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (callbacks_.on_close) callbacks_.on_close(reason);
}

size_t Conn::ClampIo(size_t want) {
  if (faults_ == nullptr || want == 0) return want;
  if (!faults_->Fire(FaultSite::kSocketShortIo)) return want;
  ++short_io_firings_;
  if (short_io_firings_ % 8 == 0) return 0;  // sever mid-stream
  return 1;  // forced one-byte read/write
}

}  // namespace stl
