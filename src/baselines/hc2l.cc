#include "baselines/hc2l.h"

#include <algorithm>
#include <unordered_map>

#include "util/min_heap.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/timer.h"

namespace stl {

namespace {

/// Weighted arc in the dynamic (shortcut-growing) adjacency.
struct WArc {
  Vertex head;
  Weight weight;
};

/// Builder state shared by the recursive bisection over the augmented
/// graph. Works on a mutable adjacency that grows boundary-clique
/// shortcuts as regions are cut.
class Hc2lBuilder {
 public:
  Hc2lBuilder(const Graph& g, const HierarchyOptions& options)
      : g_(g),
        options_(options),
        adj_(g.NumVertices()),
        region_stamp_(g.NumVertices(), 0),
        visit_stamp_(g.NumVertices(), 0),
        side_(g.NumVertices(), 0),
        dist_(g.NumVertices(), kInfDistance),
        dist_stamp_(g.NumVertices(), 0) {
    for (const Edge& e : g.edges()) {
      adj_[e.u].push_back(WArc{e.v, e.w});
      adj_[e.v].push_back(WArc{e.u, e.w});
    }
  }

  PartitionTree BuildTree() {
    std::vector<Vertex> all(g_.NumVertices());
    for (Vertex v = 0; v < g_.NumVertices(); ++v) all[v] = v;
    if (!all.empty()) tree_.root = Recurse(std::move(all), UINT32_MAX);
    return std::move(tree_);
  }

  /// Labels over the final augmented adjacency: per node, distances from
  /// each cut vertex over the node's (subtree) region. Shortcuts carry
  /// exact distances, so every label entry equals the global distance.
  Labelling BuildLabels(const TreeHierarchy& h) {
    Labelling labels = Labelling::AllocateFor(h);
    // Subtree regions via a postorder accumulation would need O(n log n)
    // memory; instead collect each node's region by walking its subtree.
    std::vector<uint32_t> sub_stack;
    std::vector<Vertex> region;
    for (uint32_t nid = 0; nid < h.NumNodes(); ++nid) {
      region.clear();
      sub_stack.push_back(nid);
      while (!sub_stack.empty()) {
        uint32_t id = sub_stack.back();
        sub_stack.pop_back();
        const auto& node = h.GetNode(id);
        for (Vertex v : h.VerticesOf(id)) region.push_back(v);
        if (node.left != TreeHierarchy::kNoNode) {
          sub_stack.push_back(node.left);
        }
        if (node.right != TreeHierarchy::kNoNode) {
          sub_stack.push_back(node.right);
        }
      }
      ++region_epoch_;
      for (Vertex v : region) region_stamp_[v] = region_epoch_;
      for (Vertex r : h.VerticesOf(nid)) {
        FillColumn(h, r, &labels);
      }
    }
    return labels;
  }

  uint64_t shortcuts_added() const { return shortcuts_added_; }

 private:
  bool InRegion(Vertex v) const { return region_stamp_[v] == region_epoch_; }

  void MarkRegion(const std::vector<Vertex>& region) {
    ++region_epoch_;
    for (Vertex v : region) region_stamp_[v] = region_epoch_;
  }

  /// BFS order of the (marked) region from start.
  void BfsOrder(Vertex start, std::vector<Vertex>* order) {
    ++visit_epoch_;
    order->clear();
    order->push_back(start);
    visit_stamp_[start] = visit_epoch_;
    for (size_t head = 0; head < order->size(); ++head) {
      Vertex v = (*order)[head];
      for (const WArc& a : adj_[v]) {
        if (InRegion(a.head) && visit_stamp_[a.head] != visit_epoch_) {
          visit_stamp_[a.head] = visit_epoch_;
          order->push_back(a.head);
        }
      }
    }
  }

  std::vector<std::vector<Vertex>> Components(
      const std::vector<Vertex>& region) {
    MarkRegion(region);
    std::vector<std::vector<Vertex>> comps;
    ++visit_epoch_;
    for (Vertex s : region) {
      if (visit_stamp_[s] == visit_epoch_) continue;
      comps.emplace_back();
      auto& comp = comps.back();
      comp.push_back(s);
      visit_stamp_[s] = visit_epoch_;
      for (size_t head = 0; head < comp.size(); ++head) {
        for (const WArc& a : adj_[comp[head]]) {
          if (InRegion(a.head) && visit_stamp_[a.head] != visit_epoch_) {
            visit_stamp_[a.head] = visit_epoch_;
            comp.push_back(a.head);
          }
        }
      }
    }
    return comps;
  }

  /// BFS-half split + greedy cover, like partition/separator.cc but over
  /// the augmented adjacency. Region must be marked and connected.
  bool TrySplit(Vertex start, size_t region_size,
                std::vector<Vertex>* separator, std::vector<Vertex>* left,
                std::vector<Vertex>* right) {
    std::vector<Vertex> order;
    BfsOrder(start, &order);
    if (order.size() != region_size) return false;
    const size_t half = (order.size() + 1) / 2;
    ++side_epoch_;
    for (size_t i = 0; i < order.size(); ++i) {
      side_[order[i]] = side_epoch_ * 2 + (i < half ? 0 : 1);
    }
    std::vector<std::pair<Vertex, Vertex>> cut;
    for (size_t i = 0; i < half; ++i) {
      Vertex v = order[i];
      for (const WArc& a : adj_[v]) {
        if (InRegion(a.head) && side_[a.head] == side_epoch_ * 2 + 1) {
          cut.emplace_back(v, a.head);
        }
      }
    }
    if (cut.empty()) return false;
    std::unordered_map<Vertex, uint32_t> deg;
    for (const auto& [a, b] : cut) {
      ++deg[a];
      ++deg[b];
    }
    std::vector<uint8_t> covered(cut.size(), 0);
    separator->clear();
    size_t remaining = cut.size();
    while (remaining > 0) {
      Vertex best = UINT32_MAX;
      uint32_t best_deg = 0;
      for (const auto& [v, d] : deg) {
        if (d > best_deg || (d == best_deg && v < best)) {
          best = v;
          best_deg = d;
        }
      }
      separator->push_back(best);
      for (size_t i = 0; i < cut.size(); ++i) {
        if (covered[i]) continue;
        if (cut[i].first == best || cut[i].second == best) {
          covered[i] = 1;
          --remaining;
          --deg[cut[i].first];
          --deg[cut[i].second];
        }
      }
      deg.erase(best);
    }
    std::sort(separator->begin(), separator->end());
    auto in_sep = [separator](Vertex v) {
      return std::binary_search(separator->begin(), separator->end(), v);
    };
    left->clear();
    right->clear();
    for (size_t i = 0; i < order.size(); ++i) {
      if (in_sep(order[i])) continue;
      (i < half ? left : right)->push_back(order[i]);
    }
    return true;
  }

  /// Restricted Dijkstra over the marked region; `settled_` collects the
  /// reached vertices so callers never scan the whole vertex set.
  void RegionDijkstra(Vertex s) {
    ++dist_epoch_;
    heap_.clear();
    settled_.clear();
    dist_[s] = 0;
    dist_stamp_[s] = dist_epoch_;
    heap_.Push(0, s);
    while (!heap_.empty()) {
      auto [d, v] = heap_.Pop();
      if (dist_stamp_[v] != dist_epoch_ || d != dist_[v]) continue;
      settled_.push_back(v);
      for (const WArc& a : adj_[v]) {
        if (!InRegion(a.head)) continue;
        Weight nd = SaturatingAdd(d, a.weight);
        if (dist_stamp_[a.head] != dist_epoch_ || nd < dist_[a.head]) {
          dist_[a.head] = nd;
          dist_stamp_[a.head] = dist_epoch_;
          heap_.Push(nd, a.head);
        }
      }
    }
  }

  Weight DistOf(Vertex v) const {
    return dist_stamp_[v] == dist_epoch_ ? dist_[v] : kInfDistance;
  }

  /// Adds / tightens an undirected shortcut (a, b, w).
  void AddShortcut(Vertex a, Vertex b, Weight w) {
    for (WArc& arc : adj_[a]) {
      if (arc.head == b) {
        if (w < arc.weight) {
          arc.weight = w;
          for (WArc& rev : adj_[b]) {
            if (rev.head == a) rev.weight = std::min(rev.weight, w);
          }
        }
        return;
      }
    }
    adj_[a].push_back(WArc{b, w});
    adj_[b].push_back(WArc{a, w});
    ++shortcuts_added_;
  }

  /// Distance-preserving augmentation: one boundary clique per *side*.
  /// `region` is the parent region H (marked), `separator` its cut.
  ///
  /// For x, y on the same side, any H-shortest path that leaves the side
  /// exits and re-enters through side vertices adjacent to the cut (the
  /// boundary), so a clique over the side's boundary weighted with d_H
  /// preserves all side-internal distances — including pairs in different
  /// components of the side, which reconnect through the clique. This is
  /// what keeps every region metrically equal to G and makes the
  /// LCA-node-only query (Equation 2) exact.
  void AugmentSides(const std::vector<Vertex>& separator,
                    const std::vector<Vertex>& left,
                    const std::vector<Vertex>& right) {
    auto in_sep = [&separator](Vertex v) {
      return std::binary_search(separator.begin(), separator.end(), v);
    };
    // side_[v] parity marks which side v is on (valid for this epoch).
    ++side_epoch_;
    for (Vertex v : left) side_[v] = side_epoch_ * 2;
    for (Vertex v : right) side_[v] = side_epoch_ * 2 + 1;
    std::vector<Vertex> boundary;
    {
      ++visit_epoch_;
      for (Vertex c : separator) {
        for (const WArc& a : adj_[c]) {
          if (InRegion(a.head) && !in_sep(a.head) &&
              visit_stamp_[a.head] != visit_epoch_) {
            visit_stamp_[a.head] = visit_epoch_;
            boundary.push_back(a.head);
          }
        }
      }
    }
    if (boundary.size() < 2) return;
    for (size_t i = 0; i < boundary.size(); ++i) {
      Vertex b = boundary[i];
      RegionDijkstra(b);  // over the whole region H, through-cut paths too
      for (size_t j = i + 1; j < boundary.size(); ++j) {
        Vertex b2 = boundary[j];
        if (side_[b2] != side_[b]) continue;  // cliques stay side-internal
        Weight d = DistOf(b2);
        if (d < kInfDistance) AddShortcut(b, b2, d);
      }
    }
  }

  uint32_t NewNode(uint32_t parent, std::vector<Vertex> vertices) {
    std::sort(vertices.begin(), vertices.end());
    uint32_t id = static_cast<uint32_t>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    tree_.nodes.back().parent = parent;
    tree_.nodes.back().vertices = std::move(vertices);
    return id;
  }

  uint32_t Recurse(std::vector<Vertex> region, uint32_t parent) {
    if (region.size() <= options_.leaf_size) {
      return NewNode(parent, std::move(region));
    }
    std::vector<Vertex> separator, left, right;
    auto comps = Components(region);
    if (comps.size() == 1) {
      // Multi-start split on the marked region.
      MarkRegion(region);
      std::vector<Vertex> bs, bl, br;
      size_t best = SIZE_MAX;
      Rng rng(options_.seed ^ (region.size() * 0x9e3779b9u));
      for (int attempt = 0; attempt < options_.num_starts; ++attempt) {
        Vertex start = region[rng.NextBounded(region.size())];
        if (attempt == 0) {
          // Peripheral start via double BFS.
          std::vector<Vertex> order;
          BfsOrder(region[0], &order);
          start = order.back();
        }
        if (TrySplit(start, region.size(), &bs, &bl, &br) &&
            bs.size() < best) {
          best = bs.size();
          separator = bs;
          left = bl;
          right = br;
        }
      }
      STL_CHECK(best != SIZE_MAX) << "no balanced cut found";
      AugmentSides(separator, left, right);
    } else {
      std::sort(comps.begin(), comps.end(),
                [](const auto& a, const auto& b) {
                  if (a.size() != b.size()) return a.size() > b.size();
                  return a.front() < b.front();
                });
      for (auto& comp : comps) {
        auto& side = left.size() <= right.size() ? left : right;
        side.insert(side.end(), comp.begin(), comp.end());
      }
      auto& bigger = left.size() >= right.size() ? left : right;
      separator.push_back(bigger.back());
      bigger.pop_back();
      std::sort(separator.begin(), separator.end());
    }
    if (separator.empty() || (left.empty() && right.empty())) {
      return NewNode(parent, std::move(region));
    }
    region.clear();
    region.shrink_to_fit();
    uint32_t id = NewNode(parent, std::move(separator));
    if (!left.empty()) {
      uint32_t child = Recurse(std::move(left), id);
      tree_.nodes[id].left = child;
    }
    if (!right.empty()) {
      uint32_t child = Recurse(std::move(right), id);
      tree_.nodes[id].right = child;
    }
    return id;
  }

  /// Fills label column tau(r) with region distances (= global distances
  /// thanks to the augmentation) for descendants of r.
  void FillColumn(const TreeHierarchy& h, Vertex r, Labelling* labels) {
    RegionDijkstra(r);
    const uint32_t col = h.Tau(r);
    for (Vertex v : settled_) {
      if (h.Tau(v) < col) continue;  // earlier cut members of this node
      labels->Set(v, col, dist_[v]);
    }
  }

  const Graph& g_;
  const HierarchyOptions& options_;
  std::vector<std::vector<WArc>> adj_;
  PartitionTree tree_;
  std::vector<uint32_t> region_stamp_;
  uint32_t region_epoch_ = 0;
  std::vector<uint32_t> visit_stamp_;
  uint32_t visit_epoch_ = 0;
  std::vector<uint64_t> side_;
  uint64_t side_epoch_ = 0;
  std::vector<Weight> dist_;
  std::vector<uint32_t> dist_stamp_;
  uint32_t dist_epoch_ = 0;
  std::vector<Vertex> settled_;
  MinHeap<Weight, Vertex> heap_;
  uint64_t shortcuts_added_ = 0;
};

}  // namespace

Hc2lIndex Hc2lIndex::Build(const Graph& g, const HierarchyOptions& options) {
  Timer timer;
  Hc2lIndex index;
  Hc2lBuilder builder(g, options);
  PartitionTree tree = builder.BuildTree();
  index.hierarchy_ = TreeHierarchy::FromPartitionTree(g, tree);
  index.labels_ = builder.BuildLabels(index.hierarchy_);
  index.shortcuts_added_ = builder.shortcuts_added();
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

Weight Hc2lIndex::Query(Vertex s, Vertex t) const {
  if (s == t) return 0;
  const auto& node = hierarchy_.GetNode(hierarchy_.LcaNode(s, t));
  const uint32_t lo = node.cum_vertices - node.num_vertices;
  const uint32_t hi =
      std::min(node.cum_vertices,
               std::min(hierarchy_.Tau(s), hierarchy_.Tau(t)) + 1);
  if (hi <= lo) return kInfDistance;
  const Weight* ls = labels_.Data(s);
  const Weight* lt = labels_.Data(t);
  const Weight best = MinPlusReduce(ls + lo, lt + lo, hi - lo);
  return best >= kInfDistance ? kInfDistance : best;
}

}  // namespace stl
