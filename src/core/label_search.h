// Label Search maintenance (Section 5.1, Algorithms 1 and 2): the
// ancestor-centric strategy. For every ancestor label position r that an
// updated edge can affect, one pruned Dijkstra-style search repairs
// column r of the labels.
//
// Decrease (Algorithm 1): new distances are known as soon as a queue entry
// is popped, so labels are repaired on the fly.
//
// Increase (Algorithm 2): the search first *identifies* affected vertices
// (old shortest paths through the updated edge, Lemma 5.2), then the
// Repair pass recomputes their distances from distance bounds obtained
// from unaffected neighbours (Definition 5.4 / Lemma 5.5).
//
// Implementation note: the paper interleaves search and repair per
// ancestor; we run all detection searches against the old weights, then
// apply the new weights, then run all repairs. Columns are independent,
// so the result is identical, and batches need no special-casing.
//
// CoW contract: every label write goes through Labelling::Set (which
// detaches shared pages on first touch) and no label pointer is cached
// across writes, so running this engine on the master labelling never
// mutates a page still reachable from a published engine snapshot.
#ifndef STL_CORE_LABEL_SEARCH_H_
#define STL_CORE_LABEL_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/labelling.h"
#include "core/tree_hierarchy.h"
#include "graph/updates.h"
#include "util/min_heap.h"

namespace stl {

/// Counters describing the work one maintenance call performed.
struct MaintenanceStats {
  uint64_t queue_pops = 0;
  uint64_t label_writes = 0;
  uint64_t affected_pairs = 0;  // (vertex, ancestor) pairs touched

  void Reset() { *this = MaintenanceStats(); }
  void Add(const MaintenanceStats& o) {
    queue_pops += o.queue_pops;
    label_writes += o.label_writes;
    affected_pairs += o.affected_pairs;
  }
};

/// Ancestor-centric maintenance engine (STL-L in the paper's tables).
/// Holds scratch buffers sized to the graph; reuse across updates.
class LabelSearch {
 public:
  /// The engine mutates both the graph weights and the labels.
  LabelSearch(Graph* g, const TreeHierarchy& h, Labelling* labels);

  /// Applies a batch of pure weight decreases (Algorithm 1). Every
  /// update's new_weight must be < old_weight.
  void ApplyDecreaseBatch(const UpdateBatch& batch);

  /// Applies a batch of pure weight increases (Algorithm 2). Every
  /// update's new_weight must be > old_weight.
  void ApplyIncreaseBatch(const UpdateBatch& batch);

  /// Convenience: splits a mixed batch and applies decreases then
  /// increases.
  void ApplyBatch(const UpdateBatch& batch);

  const MaintenanceStats& stats() const { return stats_; }

 private:
  /// Lower-tau endpoint first (Lemma 5.3 guarantees comparability).
  std::pair<Vertex, Vertex> OrientedEndpoints(EdgeId e) const;

  /// Runs the decrease search for ancestor column r from pre-seeded
  /// queue entries.
  void RunDecreaseColumn(uint32_t r);

  /// Runs the increase detection for ancestor column r; fills
  /// affected_[r].
  void RunDetectColumn(uint32_t r, std::vector<Vertex>* affected);

  /// Repairs column r for the given affected set (new weights applied).
  void RepairColumn(uint32_t r, const std::vector<Vertex>& affected);

  Graph* g_;
  const TreeHierarchy& h_;
  Labelling* labels_;

  MinHeap<Weight, Vertex> heap_;
  // Affected-set membership, stamped per (column) repair pass.
  std::vector<uint32_t> aff_stamp_;
  uint32_t aff_epoch_ = 0;
  // Visited marks for the detection pass.
  std::vector<uint32_t> visit_stamp_;
  uint32_t visit_epoch_ = 0;

  MaintenanceStats stats_;
};

}  // namespace stl

#endif  // STL_CORE_LABEL_SEARCH_H_
