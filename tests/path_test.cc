// Tests for shortest-path reconstruction (QueryPath) and parallel label
// construction.
#include <gtest/gtest.h>

#include "core/stl_index.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::LabelDiffCount;
using testing_util::RandomUpdate;

/// Checks that `path` is a real s-t walk in g with total weight `want`.
void ExpectValidPath(const Graph& g, const std::vector<Vertex>& path,
                     Vertex s, Vertex t, Weight want) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), s);
  EXPECT_EQ(path.back(), t);
  uint64_t total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto e = g.FindEdge(path[i], path[i + 1]);
    ASSERT_TRUE(e.has_value())
        << "no edge " << path[i] << "-" << path[i + 1];
    total += g.EdgeWeight(*e);
  }
  EXPECT_EQ(total, want);
}

TEST(QueryPathTest, TrivialCases) {
  Graph g = testing_util::SmallRoadNetwork(8, 1);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  auto self = idx.QueryShortestPath(3, 3);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], 3u);
}

TEST(QueryPathTest, UnreachableIsEmpty) {
  Graph g = testing_util::TwoComponentGraph();
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  EXPECT_TRUE(idx.QueryShortestPath(0, 4).empty());
  EXPECT_FALSE(idx.QueryShortestPath(0, 2).empty());
}

class PathSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathSeeds, PathsAreValidShortestPaths) {
  Graph g = testing_util::SmallRoadNetwork(12, GetParam());
  Graph ref = g;
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Dijkstra dij(ref);
  Rng rng(GetParam() * 17 + 1);
  for (int i = 0; i < 150; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Weight want = dij.Distance(s, t);
    auto path = idx.QueryShortestPath(s, t);
    if (want == kInfDistance) {
      EXPECT_TRUE(path.empty());
    } else if (s == t) {
      EXPECT_EQ(path.size(), 1u);
    } else {
      ExpectValidPath(g, path, s, t, want);
    }
  }
}

TEST_P(PathSeeds, PathsStayValidUnderUpdates) {
  Graph g = testing_util::SmallRoadNetwork(9, GetParam());
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Rng rng(GetParam() * 23 + 5);
  for (int round = 0; round < 6; ++round) {
    idx.ApplyUpdate(RandomUpdate(g, &rng));
    Dijkstra dij(g);
    for (int i = 0; i < 40; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      if (s == t) continue;
      Weight want = dij.Distance(s, t);
      if (want == kInfDistance) continue;
      ExpectValidPath(g, idx.QueryShortestPath(s, t), s, t, want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(QueryPathTest, WorksOnRandomTopology) {
  Graph g = GenerateRandomConnectedGraph(150, 130, 1, 30, 9);
  Graph ref = g;
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Dijkstra dij(ref);
  Rng rng(9);
  for (int i = 0; i < 120; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    if (s == t) continue;
    ExpectValidPath(g, idx.QueryShortestPath(s, t), s, t,
                    dij.Distance(s, t));
  }
}

TEST(ParallelBuildTest, ThreadsProduceIdenticalLabels) {
  Graph g = testing_util::SmallRoadNetwork(16, 44);
  HierarchyOptions opt;
  TreeHierarchy h = TreeHierarchy::Build(g, opt);
  Labelling serial = BuildLabelling(g, h, 1);
  for (int threads : {2, 3, 4}) {
    Labelling parallel = BuildLabelling(g, h, threads);
    EXPECT_EQ(LabelDiffCount(serial, parallel), 0u) << threads;
  }
}

TEST(ParallelBuildTest, IndexBuildWithThreads) {
  Graph g1 = testing_util::SmallRoadNetwork(12, 45);
  Graph g2 = g1;
  HierarchyOptions serial;
  HierarchyOptions parallel;
  parallel.num_threads = 2;
  StlIndex a = StlIndex::Build(&g1, serial);
  StlIndex b = StlIndex::Build(&g2, parallel);
  EXPECT_EQ(LabelDiffCount(a.labels(), b.labels()), 0u);
}

}  // namespace
}  // namespace stl
