#include "core/pareto_search.h"

#include <algorithm>

namespace stl {

ParetoSearch::ParetoSearch(Graph* g, const TreeHierarchy& h,
                           Labelling* labels)
    : g_(g),
      h_(h),
      labels_(labels),
      level_(g->NumVertices(), 0),
      level_stamp_(g->NumVertices(), 0),
      aff_min_(g->NumVertices(), 0),
      aff_max_(g->NumVertices(), 0),
      aff_stamp_(g->NumVertices(), 0) {
  STL_CHECK_EQ(g->NumVertices(), h.NumVertices());
}

void ParetoSearch::AddAffected(Vertex v, uint32_t i) {
  if (aff_stamp_[v] != aff_epoch_) {
    aff_stamp_[v] = aff_epoch_;
    aff_min_[v] = i;
    aff_max_[v] = i;
    aff_list_.push_back(v);
  } else {
    aff_min_[v] = std::min(aff_min_[v], i);
    aff_max_[v] = std::max(aff_max_[v], i);
  }
}

void ParetoSearch::ApplyDecrease(EdgeId e, Weight new_weight) {
  const Edge& edge = g_->GetEdge(e);
  STL_CHECK(new_weight < edge.w) << "not a decrease";
  Vertex u = edge.u, v = edge.v;
  g_->SetEdgeWeight(e, new_weight);
  // Two searches, one per endpoint (Algorithm 3 lines 2-3).
  SearchAndRepairDecrease(u, v, new_weight);
  SearchAndRepairDecrease(v, u, new_weight);
}

void ParetoSearch::SearchAndRepairDecrease(Vertex root, Vertex start,
                                           Weight phi) {
  ResetLevels();
  queue_.clear();
  const uint32_t rmin = std::min(h_.Tau(root), h_.Tau(start));
  queue_.Push(ParetoEntry{phi, 0, rmin, start});
  while (!queue_.empty()) {
    ParetoEntry e = queue_.Pop();
    ++stats_.queue_pops;
    const Vertex v = e.vertex;
    uint32_t amax = std::min(e.max_level, h_.Tau(v));
    uint32_t amin = std::max(e.min_level, LevelOf(v));
    if (amin > amax) continue;
    SetLevel(v, amax + 1);
    // Find the improving positions with const reads first: most popped
    // vertices improve nothing, and detaching (cloning) their CoW page
    // for a pure read would charge untouched pages to this epoch.
    // L(root) is re-fetched per pop (and again after the detach below):
    // an earlier write may have detached the page it lives in, and the
    // search must observe its own updates to L(root).
    const Weight* lroot = labels_->Data(root);
    uint32_t nmin = UINT32_MAX, nmax = 0;
    const Weight* lv = labels_->Data(v);
    for (uint32_t i = amin; i <= amax; ++i) {
      Weight cand = SaturatingAdd(e.dist, lroot[i]);
      if (cand < lv[i]) {
        if (nmin == UINT32_MAX) nmin = i;
        nmax = i;
      }
    }
    if (nmin == UINT32_MAX) continue;
    // Now there is something to write: detach and apply. The detach may
    // move both v's and root's page; re-fetch both pointers.
    Weight* wlv = labels_->MutableData(v);
    lroot = labels_->Data(root);
    for (uint32_t i = nmin; i <= nmax; ++i) {
      Weight cand = SaturatingAdd(e.dist, lroot[i]);
      if (cand < wlv[i]) {
        wlv[i] = cand;
        ++stats_.label_writes;
        ++stats_.affected_pairs;
      }
    }
    for (const Arc& a : g_->ArcsOf(v)) {
      Weight nd = SaturatingAdd(e.dist, a.weight);
      if (nd >= kInfDistance) continue;
      queue_.Push(ParetoEntry{nd, nmin, nmax, a.head});
    }
  }
}

void ParetoSearch::ApplyIncrease(EdgeId e, Weight new_weight) {
  const Edge& edge = g_->GetEdge(e);
  const Weight old_weight = edge.w;
  STL_CHECK(new_weight > old_weight) << "not an increase";
  const Weight delta = new_weight - old_weight;
  Vertex u = edge.u, v = edge.v;

  ++aff_epoch_;
  aff_list_.clear();
  bumped_.clear();
  // Detection against the old weights (Algorithm 4 lines 3-4), with the
  // updated edge's contribution supplied via the seed distance phi.
  SearchIncrease(u, v, old_weight, delta);
  SearchIncrease(v, u, old_weight, delta);
  g_->SetEdgeWeight(e, new_weight);
  RepairIncrease();
}

void ParetoSearch::SearchIncrease(Vertex root, Vertex start, Weight phi,
                                  Weight delta) {
  ResetLevels();
  queue_.clear();
  const uint32_t rmin = std::min(h_.Tau(root), h_.Tau(start));
  queue_.Push(ParetoEntry{phi, 0, rmin, start});
  while (!queue_.empty()) {
    ParetoEntry e = queue_.Pop();
    ++stats_.queue_pops;
    const Vertex v = e.vertex;
    uint32_t amax = std::min(e.max_level, h_.Tau(v));
    uint32_t amin = std::max(e.min_level, LevelOf(v));
    if (amin > amax) continue;
    SetLevel(v, amax + 1);
    // Detection pass with const reads (same CoW rationale as the
    // decrease search: only a real bump may detach v's page; lroot is
    // re-fetched per pop and after the detach, see there).
    const Weight* lroot = labels_->Data(root);
    uint32_t nmin = UINT32_MAX, nmax = 0;
    bool needs_bump = false;
    const Weight* lv = labels_->Data(v);
    for (uint32_t i = amin; i <= amax; ++i) {
      if (lroot[i] >= kInfDistance) continue;
      Weight cand = SaturatingAdd(e.dist, lroot[i]);
      if (cand >= kInfDistance) continue;
      const bool already = IsBumped(v, i);
      // Pre-bump reference value: the first search may have bumped this
      // label; equality is against the old (pre-update) distance.
      Weight ref = already ? lv[i] - delta : lv[i];
      if (cand != ref) continue;
      needs_bump = needs_bump || !already;
      if (nmin == UINT32_MAX) nmin = i;
      nmax = i;
    }
    if (nmin == UINT32_MAX) continue;
    if (needs_bump) {
      Weight* wlv = labels_->MutableData(v);
      lroot = labels_->Data(root);
      for (uint32_t i = nmin; i <= nmax; ++i) {
        if (lroot[i] >= kInfDistance) continue;
        Weight cand = SaturatingAdd(e.dist, lroot[i]);
        if (cand >= kInfDistance) continue;
        if (IsBumped(v, i) || cand != wlv[i]) continue;
        // Upper-bound bump (Algorithm 4 line 18). Plain addition, not
        // saturating: wlv[i] == cand < kInfDistance here, the sum fits
        // in 32 bits, and the bump must be exactly recoverable as -delta
        // for the second search's equality test.
        wlv[i] = wlv[i] + delta;
        MarkBumped(v, i);
        AddAffected(v, i);
        ++stats_.label_writes;
        ++stats_.affected_pairs;
      }
    }
    for (const Arc& a : g_->ArcsOf(v)) {
      Weight nd = SaturatingAdd(e.dist, a.weight);
      if (nd >= kInfDistance) continue;
      queue_.Push(ParetoEntry{nd, nmin, nmax, a.head});
    }
  }
}

void ParetoSearch::RepairIncrease() {
  if (aff_list_.empty()) return;
  repair_heap_.clear();
  auto pack = [](Vertex v, uint32_t i) {
    return (static_cast<uint64_t>(v) << 32) | i;
  };
  // Seed distance bounds from neighbours (Algorithm 5 lines 2-6). The
  // bumped labels are upper bounds, so a neighbour whose label (correct or
  // bumped) plus the arc beats L_v[i] witnesses an improvement.
  for (Vertex v : aff_list_) {
    const Weight* lv = labels_->Data(v);
    for (const Arc& a : g_->ArcsOf(v)) {
      const uint32_t tn = h_.Tau(a.head);
      const Weight* ln = labels_->Data(a.head);
      const uint32_t hi = std::min(aff_max_[v], tn);
      for (uint32_t i = aff_min_[v]; i <= hi; ++i) {
        Weight cand = SaturatingAdd(ln[i], a.weight);
        if (cand < lv[i]) repair_heap_.Push(cand, pack(v, i));
      }
    }
  }
  // Settle in distance order (Algorithm 5 lines 7-12).
  while (!repair_heap_.empty()) {
    auto [d, packed] = repair_heap_.Pop();
    ++stats_.queue_pops;
    const Vertex v = static_cast<Vertex>(packed >> 32);
    const uint32_t i = static_cast<uint32_t>(packed & 0xffffffffu);
    if (d >= labels_->At(v, i)) continue;
    labels_->Set(v, i, d);
    ++stats_.label_writes;
    for (const Arc& a : g_->ArcsOf(v)) {
      const Vertex n = a.head;
      if (aff_stamp_[n] != aff_epoch_) continue;  // only affected labels move
      if (i < aff_min_[n] || i > aff_max_[n]) continue;
      Weight nd = SaturatingAdd(d, a.weight);
      if (nd < labels_->At(n, i)) repair_heap_.Push(nd, pack(n, i));
    }
  }
}

void ParetoSearch::ApplyBatch(const UpdateBatch& batch) {
  for (const WeightUpdate& u : batch) {
    const Weight current = g_->EdgeWeight(u.edge);
    if (u.new_weight < current) {
      ApplyDecrease(u.edge, u.new_weight);
    } else if (u.new_weight > current) {
      ApplyIncrease(u.edge, u.new_weight);
    }
  }
}

}  // namespace stl
