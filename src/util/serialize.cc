#include "util/serialize.h"

#include <cstring>

namespace stl {

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::Open(const std::string& path, uint32_t magic,
                          uint32_t version) {
  if (file_ != nullptr) return Status::Internal("writer already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  Status s = WritePod(magic);
  if (s.ok()) s = WritePod(version);
  return s;
}

Status BinaryWriter::WriteString(const std::string& s) {
  Status st = WritePod<uint64_t>(s.size());
  if (!st.ok()) return st;
  if (!s.empty()) return WriteBytes(s.data(), s.size());
  return Status::OK();
}

Status BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("writer not open");
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::Internal("writer not open");
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("fclose failed");
  return Status::OK();
}

BinaryReader::~BinaryReader() { Close(); }

Status BinaryReader::Open(const std::string& path, uint32_t magic,
                          uint32_t max_version) {
  if (file_ != nullptr) return Status::Internal("reader already open");
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  uint32_t got_magic = 0;
  Status s = ReadPod(&got_magic);
  if (s.ok() && got_magic != magic) {
    s = Status::Corruption("bad magic number in " + path);
  }
  if (s.ok()) s = ReadPod(&version_);
  if (s.ok() && version_ > max_version) {
    s = Status::NotSupported("file version newer than library: " + path);
  }
  if (!s.ok()) Close();
  return s;
}

Status BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  Status st = ReadPod(&n);
  if (!st.ok()) return st;
  if (n > (1ULL << 32)) return Status::Corruption("string length too large");
  s->resize(n);
  if (n != 0) return ReadBytes(s->data(), n);
  return Status::OK();
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("reader not open");
  if (std::fread(data, 1, n, file_) != n) {
    return Status::Corruption("unexpected end of file");
  }
  return Status::OK();
}

void BinaryReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

WireWriter::WireWriter(uint32_t magic, uint32_t version) {
  buf_.reserve(64);
  WritePod(magic);
  WritePod(version);
}

void WireWriter::WriteBytes(const void* data, size_t n) {
  if (n == 0) return;
  const size_t base = buf_.size();
  buf_.resize(base + n);
  std::memcpy(buf_.data() + base, data, n);
}

WireReader::WireReader(const uint8_t* data, size_t size)
    : data_(data), size_(size) {}

Status WireReader::ReadHeader(uint32_t magic, uint32_t max_version) {
  uint32_t got_magic = 0;
  Status s = ReadPod(&got_magic);
  if (s.ok() && got_magic != magic) {
    s = Status::Corruption("wire: bad magic number");
  }
  if (s.ok()) s = ReadPod(&version_);
  if (s.ok() && version_ > max_version) {
    s = Status::NotSupported("wire: message version newer than library");
  }
  return s;
}

Status WireReader::ReadBytes(void* data, size_t n) {
  if (n > remaining()) {
    return Status::Corruption("wire: unexpected end of buffer");
  }
  std::memcpy(data, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace stl
