#include "partition/cells.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "index/overlay.h"
#include "tests/test_util.h"

namespace stl {
namespace {

/// Structural invariants every CellPartition must satisfy for its graph:
/// totality, the separator property, connectivity of each cell, and the
/// exactness of the per-cell boundary sets.
void ExpectValidPartition(const Graph& g, const CellPartition& part) {
  ASSERT_EQ(part.cell_of.size(), g.NumVertices());
  ASSERT_EQ(part.cells.size(), part.num_cells);
  ASSERT_EQ(part.cell_boundary.size(), part.num_cells);

  // Totality: every vertex in exactly one cell or on the boundary.
  std::vector<int> seen(g.NumVertices(), 0);
  for (uint32_t c = 0; c < part.num_cells; ++c) {
    for (Vertex v : part.cells[c]) {
      ++seen[v];
      EXPECT_EQ(part.cell_of[v], c);
    }
    EXPECT_TRUE(std::is_sorted(part.cells[c].begin(), part.cells[c].end()));
  }
  for (Vertex b : part.boundary) {
    ++seen[b];
    EXPECT_EQ(part.cell_of[b], CellPartition::kBoundaryCell);
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(seen[v], 1) << "vertex " << v;
  }
  EXPECT_TRUE(std::is_sorted(part.boundary.begin(), part.boundary.end()));

  // Separator property: no edge connects two different cells.
  for (const Edge& e : g.edges()) {
    const uint32_t cu = part.cell_of[e.u];
    const uint32_t cv = part.cell_of[e.v];
    EXPECT_TRUE(cu == cv || cu == CellPartition::kBoundaryCell ||
                cv == CellPartition::kBoundaryCell)
        << "edge " << e.u << "-" << e.v;
  }

  // Each cell is connected in its induced subgraph.
  for (uint32_t c = 0; c < part.num_cells; ++c) {
    const auto& cell = part.cells[c];
    ASSERT_FALSE(cell.empty());
    std::set<Vertex> members(cell.begin(), cell.end());
    std::set<Vertex> visited;
    std::vector<Vertex> stack = {cell.front()};
    visited.insert(cell.front());
    while (!stack.empty()) {
      Vertex v = stack.back();
      stack.pop_back();
      for (const Arc& a : g.ArcsOf(v)) {
        if (members.count(a.head) && visited.insert(a.head).second) {
          stack.push_back(a.head);
        }
      }
    }
    EXPECT_EQ(visited.size(), cell.size()) << "cell " << c;
  }

  // cell_boundary[i] is exactly the boundary vertices adjacent to cell i.
  for (uint32_t c = 0; c < part.num_cells; ++c) {
    std::set<Vertex> want;
    for (Vertex v : part.cells[c]) {
      for (const Arc& a : g.ArcsOf(v)) {
        if (part.cell_of[a.head] == CellPartition::kBoundaryCell) {
          want.insert(a.head);
        }
      }
    }
    std::set<Vertex> got(part.cell_boundary[c].begin(),
                         part.cell_boundary[c].end());
    EXPECT_EQ(got, want) << "cell " << c;
  }
}

TEST(PartitionCellsTest, RoadNetworkHitsRequestedCellCounts) {
  Graph g = testing_util::SmallRoadNetwork(12, 17);
  for (uint32_t k : {1u, 2u, 4u, 8u}) {
    CellPartition part = PartitionCells(g, k, HierarchyOptions{});
    ExpectValidPartition(g, part);
    EXPECT_GE(part.num_cells, k) << "k=" << k;
    if (k == 1) {
      // Connected graph, one region, no cut requested.
      EXPECT_EQ(part.num_cells, 1u);
      EXPECT_TRUE(part.boundary.empty());
    } else {
      EXPECT_FALSE(part.boundary.empty());
      // Road-like graphs have small separators: the boundary must stay a
      // modest fraction of the graph.
      EXPECT_LT(part.boundary.size(), g.NumVertices() / 2);
    }
  }
}

TEST(PartitionCellsTest, DeterministicInSeed) {
  Graph g = testing_util::SmallRoadNetwork(10, 5);
  CellPartition a = PartitionCells(g, 4, HierarchyOptions{});
  CellPartition b = PartitionCells(g, 4, HierarchyOptions{});
  EXPECT_EQ(a.cell_of, b.cell_of);
  EXPECT_EQ(a.boundary, b.boundary);
}

TEST(PartitionCellsTest, SingleVertexGraph) {
  Graph g = testing_util::MakeGraph(1, {});
  CellPartition part = PartitionCells(g, 4, HierarchyOptions{});
  ExpectValidPartition(g, part);
  EXPECT_EQ(part.num_cells, 1u);
  EXPECT_TRUE(part.boundary.empty());
}

TEST(PartitionCellsTest, EmptyGraph) {
  Graph g = testing_util::MakeGraph(0, {});
  CellPartition part = PartitionCells(g, 2, HierarchyOptions{});
  EXPECT_EQ(part.num_cells, 0u);
  EXPECT_TRUE(part.boundary.empty());
}

TEST(PartitionCellsTest, DisconnectedComponentsBecomeCells) {
  Graph g = testing_util::TwoComponentGraph();
  // Even with target 1, disconnected inputs yield one cell per component
  // (cells must be connected) and no boundary.
  CellPartition one = PartitionCells(g, 1, HierarchyOptions{});
  ExpectValidPartition(g, one);
  EXPECT_EQ(one.num_cells, 2u);
  EXPECT_TRUE(one.boundary.empty());

  CellPartition four = PartitionCells(g, 4, HierarchyOptions{});
  ExpectValidPartition(g, four);
  EXPECT_GE(four.num_cells, 2u);
}

TEST(PartitionCellsTest, GraphSmallerThanTargetStopsEarly) {
  // A 2-path can be cut at most into separator {mid} + 2 cells; asking
  // for 8 cells must terminate and keep the invariants.
  Graph g = GeneratePath(3, 4);
  CellPartition part = PartitionCells(g, 8, HierarchyOptions{});
  ExpectValidPartition(g, part);
  EXPECT_GE(part.num_cells, 1u);
  EXPECT_LE(part.num_cells + part.boundary.size(), 3u + 0u);
}

// ------------------------------------------------------------ ShardPlan

TEST(ShardPlanTest, LayoutMapsAreConsistent) {
  Graph g = testing_util::SmallRoadNetwork(10, 23);
  CellPartition cells = PartitionCells(g, 4, HierarchyOptions{});
  ShardPlan plan = BuildShardPlan(g, cells);
  const ShardLayout& lay = plan.layout;
  ASSERT_EQ(lay.num_shards(), cells.num_cells);
  ASSERT_EQ(plan.shard_graphs.size(), cells.num_cells);

  // Vertex maps: every cell vertex round-trips through its shard.
  for (uint32_t c = 0; c < lay.num_shards(); ++c) {
    const auto& shard = lay.shards[c];
    ASSERT_EQ(shard.to_global.size(),
              cells.cells[c].size() + cells.cell_boundary[c].size());
    EXPECT_EQ(plan.shard_graphs[c].NumVertices(), shard.to_global.size());
    for (uint32_t local = 0; local < shard.num_cell_vertices; ++local) {
      const Vertex v = shard.to_global[local];
      EXPECT_EQ(lay.shard_of_vertex[v], c);
      EXPECT_EQ(lay.local_of_vertex[v], local);
    }
    // Boundary locals point at S_c in order.
    ASSERT_EQ(shard.boundary_local.size(), cells.cell_boundary[c].size());
    for (uint32_t i = 0; i < shard.boundary_local.size(); ++i) {
      EXPECT_EQ(shard.to_global[shard.boundary_local[i]],
                cells.cell_boundary[c][i]);
      EXPECT_EQ(cells.boundary[shard.boundary_pos[i]],
                cells.cell_boundary[c][i]);
    }
  }

  // Edge ownership: every global edge is owned by exactly one shard (or
  // the overlay), and the shard copy preserves endpoints and weight.
  std::vector<int> edge_seen(g.NumEdges(), 0);
  for (uint32_t c = 0; c < lay.num_shards(); ++c) {
    const auto& shard = lay.shards[c];
    for (EdgeId local = 0; local < shard.edge_to_global.size(); ++local) {
      const EdgeId e = shard.edge_to_global[local];
      ++edge_seen[e];
      EXPECT_EQ(lay.shard_of_edge[e], c);
      EXPECT_EQ(lay.local_of_edge[e], local);
      const Edge& ge = g.GetEdge(e);
      const Edge& se = plan.shard_graphs[c].GetEdge(local);
      EXPECT_EQ(se.w, ge.w);
      std::set<Vertex> want = {ge.u, ge.v};
      std::set<Vertex> got = {shard.to_global[se.u], shard.to_global[se.v]};
      EXPECT_EQ(got, want);
    }
  }
  for (const auto& de : lay.direct_edges) {
    ++edge_seen[de.global_edge];
    EXPECT_EQ(lay.shard_of_edge[de.global_edge], ShardLayout::kOverlayShard);
    const Edge& ge = g.GetEdge(de.global_edge);
    std::set<uint32_t> want = {lay.boundary_pos_of_vertex[ge.u],
                               lay.boundary_pos_of_vertex[ge.v]};
    EXPECT_EQ((std::set<uint32_t>{de.a_pos, de.b_pos}), want);
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(edge_seen[e], 1) << "edge " << e;
  }

  // Memberships invert boundary_pos.
  ASSERT_EQ(lay.memberships.size(), cells.boundary.size());
  for (uint32_t p = 0; p < lay.memberships.size(); ++p) {
    for (const auto& [c, idx] : lay.memberships[p]) {
      EXPECT_EQ(lay.shards[c].boundary_pos[idx], p);
    }
  }
}

}  // namespace
}  // namespace stl
