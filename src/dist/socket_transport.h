// The over-the-wire Transport: one multiplexed framed TCP connection
// per endpoint, driven by a single owned EventLoop (net/event_loop.h).
// Send() posts the request to the loop; responses are tag-correlated
// back to the caller's TransportSink from the loop thread. Every
// failure mode — connect refusal/timeout, mid-stream disconnect,
// request timeout, endpoint in backoff — surfaces as the same typed
// kUnavailable the router's sibling-failover path already handles, so
// the routed tier degrades over real sockets exactly as it does over a
// fault-injected loopback.
//
// Reconnection is channel-level: a Conn is one-shot, and when it dies
// the channel fails its in-flight tags, backs off exponentially
// (capped), then redials lazily on the next Send — a dead endpoint
// costs callers one fast typed failure per backoff window rather than
// a connect timeout per request.
#ifndef STL_DIST_SOCKET_TRANSPORT_H_
#define STL_DIST_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/transport.h"
#include "engine/fault_injector.h"
#include "net/conn.h"
#include "net/event_loop.h"
#include "net/frame.h"  // WireFrame / EncodeFrame / DecodeFrame re-export
#include "util/status.h"

namespace stl {

/// Timeouts and backoff for the socket transport.
struct SocketTransportOptions {
  /// Budget for one TCP connect handshake before the attempt fails.
  std::chrono::milliseconds connect_timeout{1000};
  /// Budget from Send() to response delivery; an expired tag fails
  /// kUnavailable and a late response is dropped as a duplicate.
  std::chrono::milliseconds request_timeout{5000};
  /// First reconnect backoff after a connection dies; doubles per
  /// consecutive failure up to backoff_max.
  std::chrono::milliseconds backoff_initial{10};
  /// Backoff ceiling.
  std::chrono::milliseconds backoff_max{1000};
  /// Optional fault injector (not owned): arms kSocketShortIo on the
  /// transport's client connections.
  FaultInjector* faults = nullptr;
};

/// The socket-backed Transport (see file comment). Thread-safe: Send
/// may run from any thread; all connection state lives on the owned
/// event loop's thread.
class SocketTransport final : public Transport {
 public:
  /// Dials `endpoints` ("host:port" per entry, numeric IPv4 or
  /// "localhost") lazily on first Send to each.
  explicit SocketTransport(std::vector<std::string> endpoints,
                           SocketTransportOptions options = {});

  /// Fails every in-flight tag with kUnavailable, then stops and joins
  /// the loop thread. Callers' sinks must still be alive (the router
  /// drains its in-flight RPCs before its transport is destroyed).
  ~SocketTransport() override;

  uint32_t NumEndpoints() const override;

  /// Posts the framed request to the endpoint's channel. Delivery to
  /// `sink` is exactly once per attempt, always from the loop thread:
  /// the endpoint's reply on success, typed kUnavailable on connect
  /// failure, disconnect, request timeout or backoff fast-fail.
  void Send(uint32_t endpoint, uint64_t tag,
            std::shared_ptr<const std::vector<uint8_t>> request,
            TransportSink* sink) override;

  /// Times a connected endpoint's connection died (each triggers a
  /// backoff + redial cycle). Relaxed; bench/test observability.
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-endpoint connection state machine. Loop-thread only.
  struct Channel {
    enum class State { kIdle, kConnecting, kConnected, kBackoff };

    std::string host;
    uint16_t port = 0;
    State state = State::kIdle;
    std::shared_ptr<Conn> conn;
    uint64_t generation = 0;  // guards stale Conn callbacks
    std::chrono::milliseconds backoff{0};
    /// Tag -> (sink, deadline) for requests written to the wire (or
    /// queued below) and not yet answered.
    struct Pending {
      TransportSink* sink = nullptr;
      EventLoop::TimePoint deadline;
    };
    std::unordered_map<uint64_t, Pending> in_flight;
    /// Requests accepted while the connect handshake is in progress.
    std::vector<std::pair<uint64_t, std::shared_ptr<const std::vector<uint8_t>>>>
        queued;
    uint64_t timeout_timer = 0;  // 0 = no sweep scheduled
    uint64_t connect_timer = 0;  // 0 = none pending
  };

  void ChannelSend(uint32_t index, uint64_t tag,
                   std::shared_ptr<const std::vector<uint8_t>> request,
                   TransportSink* sink);
  void StartConnect(uint32_t index);
  void OnChannelConnected(uint32_t index);
  void OnChannelFrame(uint32_t index, WireFrame frame);
  void OnChannelClosed(uint32_t index, const std::string& reason);
  void FailAll(Channel* ch, const std::string& reason);
  void ArmTimeoutSweep(uint32_t index);
  void SweepTimeouts(uint32_t index);

  const SocketTransportOptions options_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::atomic<uint64_t> reconnects_{0};
  EventLoop loop_;
};

}  // namespace stl

#endif  // STL_DIST_SOCKET_TRANSPORT_H_
