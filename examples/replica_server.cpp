// A standalone shard-replica daemon: one ReplicaNode (dist/
// replica_node.h) served over TCP by a FrameServer (net/server.h).
//
// The process builds its inner ShardedEngine from the SAME generated
// graph and options the router uses — epoch determinism is the
// replication contract — then serves boundary-row / point-query
// requests and applies the router's kInstall update stream, until
// SIGTERM/SIGINT.
//
//   replica_server --port=0 --grid-side=7 --graph-seed=211 --backend=stl
//
// With --port=0 the kernel picks an ephemeral port; the daemon prints
// "LISTENING <port>" on stdout once it serves, which is how the
// multi-process integration test (tests/replica_process_test.cc) and
// scripts discover where to connect.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dist/replica_node.h"
#include "graph/generators.h"
#include "index/distance_index.h"
#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

/// --flag=value parser; returns the value or `fallback`.
const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

long FlagInt(int argc, char** argv, const char* name, long fallback) {
  const char* v = FlagValue(argc, argv, name, nullptr);
  return v != nullptr ? std::strtol(v, nullptr, 10) : fallback;
}

stl::BackendKind ParseBackend(const char* name) {
  for (stl::BackendKind kind : stl::kAllBackends) {
    if (std::strcmp(name, stl::BackendName(kind)) == 0) return kind;
  }
  std::fprintf(stderr, "unknown --backend=%s (stl|ch|h2h|hc2l)\n", name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const char* host = FlagValue(argc, argv, "host", "127.0.0.1");
  const long port = FlagInt(argc, argv, "port", 0);
  const long grid_side = FlagInt(argc, argv, "grid-side", 7);
  const long graph_seed = FlagInt(argc, argv, "graph-seed", 211);
  const long target_shards = FlagInt(argc, argv, "target-shards", 4);
  const long max_batch = FlagInt(argc, argv, "max-batch", 8);
  const long threads = FlagInt(argc, argv, "threads", 0);
  const long epoch_ring = FlagInt(argc, argv, "epoch-ring", 8);
  const stl::BackendKind backend =
      ParseBackend(FlagValue(argc, argv, "backend", "stl"));

  // The identical graph + options the router was built with (see
  // tests/replica_process_test.cc): determinism is what makes the
  // kInstall stream verifiable.
  stl::RoadNetworkOptions road;
  road.width = static_cast<uint32_t>(grid_side);
  road.height = static_cast<uint32_t>(grid_side);
  road.seed = static_cast<uint64_t>(graph_seed);
  stl::Graph graph = stl::GenerateRoadNetwork(road);

  stl::ShardedEngineOptions engine_opt;
  engine_opt.backend = backend;
  engine_opt.target_shards = static_cast<uint32_t>(target_shards);
  engine_opt.num_query_threads = 2;
  engine_opt.max_batch_size = static_cast<size_t>(max_batch);

  stl::ShardReplicaOptions replica_opt;
  replica_opt.epoch_ring = static_cast<size_t>(epoch_ring);

  stl::ReplicaNode node(std::move(graph), stl::HierarchyOptions{},
                        engine_opt, replica_opt);

  stl::FrameServer::Options server_opt;
  server_opt.host = host;
  server_opt.port = static_cast<uint16_t>(port);
  server_opt.worker_threads = static_cast<int>(threads);
  stl::FrameServer server(server_opt,
                          [&node](const uint8_t* data, size_t size) {
                            return node.Handle(data, size);
                          });
  stl::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  // The parent (test harness, script) reads this line to learn the
  // ephemeral port; keep the format stable.
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    // Sleep until any signal; the handlers above set g_stop.
    sigsuspend(&empty);
  }

  server.Stop();
  std::fprintf(stderr,
               "replica_server: served %llu connections, %llu installs\n",
               static_cast<unsigned long long>(
                   server.connections_accepted()),
               static_cast<unsigned long long>(node.installs_applied()));
  return 0;
}
