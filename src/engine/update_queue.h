// The single-writer update-queue protocol shared by QueryEngine and
// ShardedEngine: thread-safe enqueue, slice draining, per-edge
// coalescing (later enqueues win, no-ops dropped), and the Flush()
// contract — callers of Flush() block until every update enqueued
// before the call has been fully applied by the writer.
//
// Factored out so the concurrency-sensitive part of the writer exists
// exactly once; the engines differ only in what "apply" means (one
// master index vs. per-shard repair + overlay rebuild).
#ifndef STL_ENGINE_UPDATE_QUEUE_H_
#define STL_ENGINE_UPDATE_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "engine/fault_injector.h"
#include "graph/updates.h"
#include "index/distance_index.h"

namespace stl {

/// Thread-safe pending-update queue plus the writer-side drain loop.
/// Any thread may Enqueue/EnqueueMany/Flush/Stop; exactly one thread
/// runs RunWriter.
class UpdateQueue {
 public:
  /// Records one desired (edge, new weight) pair and wakes the writer.
  /// Validation (edge range, weight bounds) is the caller's job.
  void Enqueue(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one lock, one writer wakeup):
  /// the writer cannot drain a partial prefix, so up to max_batch of
  /// them land in the same maintenance batch.
  void EnqueueMany(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been taken
  /// and fully applied by the writer.
  void Flush();

  /// Updates ever enqueued (for EngineStats::updates_enqueued).
  uint64_t enqueued() const;

  /// Updates taken from the queue and fully processed by the writer
  /// (applied, dropped as no-ops, or discarded by an injected apply
  /// failure). enqueued() - applied() is the writer's backlog — the
  /// signal the stall watchdog ages.
  uint64_t applied() const;

  /// Point-in-time writer backlog (enqueued() - applied()).
  uint64_t pending() const;

  /// Asks RunWriter to return once the queue is drained; wakes it.
  void Stop();

  /// The writer-thread body. Repeatedly: waits for work, takes a slice
  /// of up to `max_batch` pending updates, coalesces it to one update
  /// per edge (later enqueues win; old weights resolved through
  /// `resolve_old`, the caller's master source of truth; updates whose
  /// old and new weight agree are dropped), counts the dropped
  /// duplicates/no-ops into `coalesced`, and hands every non-empty
  /// batch to `apply`. Returns when Stop() was called and the queue is
  /// fully drained — so every Flush() issued before Stop() completes.
  /// When `faults` is non-null, the writer consults it at
  /// FaultSite::kWriterStall after taking each slice and sleeps the
  /// injector's delay when it fires (the stall the watchdog detects).
  void RunWriter(size_t max_batch,
                 const std::function<Weight(EdgeId)>& resolve_old,
                 const std::function<void(const UpdateBatch&)>& apply,
                 std::atomic<uint64_t>* coalesced,
                 FaultInjector* faults = nullptr);

 private:
  struct PendingUpdate {
    EdgeId edge;
    Weight new_weight;
  };

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // writer wakeup
  std::condition_variable flush_cv_;  // Flush() wakeup
  std::deque<PendingUpdate> pending_;
  uint64_t enqueue_seq_ = 0;  // updates ever enqueued
  uint64_t applied_seq_ = 0;  // updates taken and fully applied
  bool stop_ = false;
};

/// Counters for how update batches were executed, shared by the
/// engines' stats plumbing (relaxed atomics: monitoring only).
struct BatchExecutionCounters {
  std::atomic<uint64_t> pareto{0};       ///< STL-P batches.
  std::atomic<uint64_t> label{0};        ///< STL-L batches.
  std::atomic<uint64_t> incremental{0};  ///< DCH / IncH2H batches.
  std::atomic<uint64_t> rebuild{0};      ///< Static-backend rebuilds.

  /// Bumps the counter matching `executed`.
  void Count(BatchExecution executed) {
    switch (executed) {
      case BatchExecution::kParetoSearch:
        pareto.fetch_add(1, std::memory_order_relaxed);
        break;
      case BatchExecution::kLabelSearch:
        label.fetch_add(1, std::memory_order_relaxed);
        break;
      case BatchExecution::kIncremental:
        incremental.fetch_add(1, std::memory_order_relaxed);
        break;
      case BatchExecution::kFullRebuild:
        rebuild.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  /// Zeroes every counter.
  void Reset() {
    pareto.store(0, std::memory_order_relaxed);
    label.store(0, std::memory_order_relaxed);
    incremental.store(0, std::memory_order_relaxed);
    rebuild.store(0, std::memory_order_relaxed);
  }
};

}  // namespace stl

#endif  // STL_ENGINE_UPDATE_QUEUE_H_
