#include "dist/socket_transport.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace stl {

namespace {

/// Splits "host:port"; CHECK-fails on malformed endpoint strings
/// (endpoint lists are configuration, not untrusted input).
void ParseEndpoint(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  STL_CHECK(colon != std::string::npos && colon + 1 < endpoint.size())
      << "bad endpoint: " << endpoint;
  *host = endpoint.substr(0, colon);
  const long parsed = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
  STL_CHECK(parsed > 0 && parsed <= 65535) << "bad port in: " << endpoint;
  *port = static_cast<uint16_t>(parsed);
}

}  // namespace

SocketTransport::SocketTransport(std::vector<std::string> endpoints,
                                 SocketTransportOptions options)
    : options_(options) {
  channels_.reserve(endpoints.size());
  for (const std::string& e : endpoints) {
    auto ch = std::make_unique<Channel>();
    ParseEndpoint(e, &ch->host, &ch->port);
    channels_.push_back(std::move(ch));
  }
  loop_.Start();
}

SocketTransport::~SocketTransport() {
  loop_.Post([this] {
    for (size_t i = 0; i < channels_.size(); ++i) {
      Channel* ch = channels_[i].get();
      // Bump the generation so close callbacks from the Shutdown below
      // (and any pending timers) become stale no-ops.
      ++ch->generation;
      FailAll(ch, "transport shutdown");
      if (ch->conn) {
        ch->conn->Shutdown();
        ch->conn.reset();
      }
      ch->state = Channel::State::kIdle;
    }
  });
  loop_.Stop();
}

uint32_t SocketTransport::NumEndpoints() const {
  return static_cast<uint32_t>(channels_.size());
}

void SocketTransport::Send(uint32_t endpoint, uint64_t tag,
                           std::shared_ptr<const std::vector<uint8_t>> request,
                           TransportSink* sink) {
  STL_CHECK(endpoint < channels_.size());
  STL_CHECK(sink != nullptr);
  STL_CHECK(request != nullptr);
  loop_.Post([this, endpoint, tag, request = std::move(request), sink] {
    ChannelSend(endpoint, tag, std::move(request), sink);
  });
}

void SocketTransport::ChannelSend(
    uint32_t index, uint64_t tag,
    std::shared_ptr<const std::vector<uint8_t>> request,
    TransportSink* sink) {
  Channel* ch = channels_[index].get();
  if (ch->state == Channel::State::kBackoff) {
    // Fast-fail while the endpoint cools down: callers get their typed
    // verdict in microseconds instead of a connect timeout each.
    sink->OnResponse(tag, Status::Unavailable("socket: endpoint in backoff"),
                     {});
    return;
  }
  ch->in_flight[tag] = Channel::Pending{
      sink, std::chrono::steady_clock::now() + options_.request_timeout};
  ArmTimeoutSweep(index);
  switch (ch->state) {
    case Channel::State::kConnected:
      ch->conn->SendFrame(tag, *request);
      break;
    case Channel::State::kConnecting:
      ch->queued.emplace_back(tag, std::move(request));
      break;
    case Channel::State::kIdle:
      ch->queued.emplace_back(tag, std::move(request));
      StartConnect(index);
      break;
    case Channel::State::kBackoff:
      break;  // unreachable (handled above)
  }
}

void SocketTransport::StartConnect(uint32_t index) {
  Channel* ch = channels_[index].get();
  ch->state = Channel::State::kConnecting;
  const uint64_t gen = ++ch->generation;

  Conn::Callbacks cb;
  cb.on_connected = [this, index, gen] {
    if (channels_[index]->generation == gen) OnChannelConnected(index);
  };
  cb.on_frame = [this, index, gen](WireFrame frame) {
    if (channels_[index]->generation == gen) {
      OnChannelFrame(index, std::move(frame));
    }
  };
  cb.on_close = [this, index, gen](const std::string& reason) {
    if (channels_[index]->generation == gen) OnChannelClosed(index, reason);
  };
  ch->conn = Conn::Connect(&loop_, ch->host, ch->port, std::move(cb),
                           options_.faults);
  ch->connect_timer = loop_.AddTimer(
      std::chrono::steady_clock::now() + options_.connect_timeout,
      [this, index, gen] {
        Channel* c = channels_[index].get();
        if (c->generation != gen) return;
        c->connect_timer = 0;
        if (c->state == Channel::State::kConnecting && c->conn) {
          c->conn->Shutdown();  // surfaces as on_close("shutdown")
        }
      });
}

void SocketTransport::OnChannelConnected(uint32_t index) {
  Channel* ch = channels_[index].get();
  ch->state = Channel::State::kConnected;
  ch->backoff = std::chrono::milliseconds{0};
  if (ch->connect_timer != 0) {
    loop_.CancelTimer(ch->connect_timer);
    ch->connect_timer = 0;
  }
  // Flush what queued during the handshake; tags the timeout sweep
  // already expired are skipped (their sinks were answered).
  auto queued = std::move(ch->queued);
  ch->queued.clear();
  for (auto& [tag, request] : queued) {
    if (ch->state != Channel::State::kConnected) break;  // died mid-flush
    if (ch->in_flight.count(tag) == 0) continue;
    ch->conn->SendFrame(tag, *request);
  }
}

void SocketTransport::OnChannelFrame(uint32_t index, WireFrame frame) {
  Channel* ch = channels_[index].get();
  auto it = ch->in_flight.find(frame.tag);
  if (it == ch->in_flight.end()) return;  // late reply after timeout
  TransportSink* sink = it->second.sink;
  ch->in_flight.erase(it);
  sink->OnResponse(frame.tag, Status::OK(), std::move(frame.payload));
}

void SocketTransport::OnChannelClosed(uint32_t index,
                                      const std::string& reason) {
  Channel* ch = channels_[index].get();
  if (ch->connect_timer != 0) {
    loop_.CancelTimer(ch->connect_timer);
    ch->connect_timer = 0;
  }
  if (ch->state == Channel::State::kConnected) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  FailAll(ch, "socket: " + reason);
  ch->conn.reset();
  ch->state = Channel::State::kBackoff;
  ch->backoff = ch->backoff.count() == 0
                    ? options_.backoff_initial
                    : std::min(ch->backoff * 2, options_.backoff_max);
  const uint64_t gen = ch->generation;
  loop_.AddTimer(std::chrono::steady_clock::now() + ch->backoff,
                 [this, index, gen] {
                   Channel* c = channels_[index].get();
                   if (c->generation != gen) return;
                   if (c->state == Channel::State::kBackoff) {
                     c->state = Channel::State::kIdle;  // redial on next Send
                   }
                 });
}

void SocketTransport::FailAll(Channel* ch, const std::string& reason) {
  auto in_flight = std::move(ch->in_flight);
  ch->in_flight.clear();
  ch->queued.clear();
  for (auto& [tag, pending] : in_flight) {
    pending.sink->OnResponse(tag, Status::Unavailable(reason), {});
  }
}

void SocketTransport::ArmTimeoutSweep(uint32_t index) {
  Channel* ch = channels_[index].get();
  if (ch->timeout_timer != 0 || ch->in_flight.empty()) return;
  EventLoop::TimePoint next = ch->in_flight.begin()->second.deadline;
  for (const auto& [tag, pending] : ch->in_flight) {
    next = std::min(next, pending.deadline);
  }
  ch->timeout_timer =
      loop_.AddTimer(next, [this, index] { SweepTimeouts(index); });
}

void SocketTransport::SweepTimeouts(uint32_t index) {
  Channel* ch = channels_[index].get();
  ch->timeout_timer = 0;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::pair<uint64_t, TransportSink*>> expired;
  for (const auto& [tag, pending] : ch->in_flight) {
    if (pending.deadline <= now) expired.emplace_back(tag, pending.sink);
  }
  for (const auto& [tag, sink] : expired) {
    ch->in_flight.erase(tag);
    sink->OnResponse(tag, Status::Unavailable("socket: request timeout"),
                     {});
  }
  ArmTimeoutSweep(index);
}

}  // namespace stl
