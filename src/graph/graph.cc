#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace stl {

void Graph::Chunk(uint32_t num_vertices, std::vector<Edge> edges,
                  std::vector<uint32_t> adj_offset, std::vector<Arc> arcs,
                  std::vector<uint32_t> arc_pos) {
  auto topo = std::make_shared<Topology>();
  topo->num_vertices = num_vertices;
  topo->num_edges = static_cast<uint32_t>(edges.size());
  topo->adj_offset = std::move(adj_offset);
  topo->arc_pos = std::move(arc_pos);

  // Edge table: fixed-size chunks.
  edges_.Clear();
  for (size_t start = 0; start < edges.size(); start += kEdgeChunkSize) {
    const size_t end = std::min(edges.size(), start + kEdgeChunkSize);
    edges_.Append(std::vector<Edge>(edges.begin() + start,
                                    edges.begin() + end));
  }

  // Arc mirror: chunks cut at vertex boundaries (so ArcsOf(v) is one
  // contiguous span within one chunk), targeting kEdgeChunkSize arcs. A
  // vertex with more arcs than the target gets a dedicated larger chunk.
  topo->vertex_chunk.resize(num_vertices);
  arcs_.Clear();
  uint32_t chunk_start = 0;
  auto close_chunk = [&](uint32_t end) {
    topo->arc_chunk_base.push_back(chunk_start);
    arcs_.Append(std::vector<Arc>(arcs.begin() + chunk_start,
                                  arcs.begin() + end));
    chunk_start = end;
  };
  for (Vertex v = 0; v < num_vertices; ++v) {
    if (topo->adj_offset[v + 1] - chunk_start > kEdgeChunkSize &&
        topo->adj_offset[v] > chunk_start) {
      close_chunk(topo->adj_offset[v]);
    }
    topo->vertex_chunk[v] =
        static_cast<uint32_t>(topo->arc_chunk_base.size());
  }
  if (num_vertices > 0) close_chunk(topo->adj_offset[num_vertices]);

  topo_ = std::move(topo);
}

Result<Graph> Graph::FromEdges(uint32_t num_vertices,
                               std::vector<Edge> edges) {
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u >= num_vertices || e.v >= num_vertices) {
      return Status::InvalidArgument("edge " + std::to_string(i) +
                                     " endpoint out of range");
    }
    if (e.u == e.v) {
      return Status::InvalidArgument("edge " + std::to_string(i) +
                                     " is a self-loop");
    }
    if (e.w == 0 || e.w > kMaxEdgeWeight) {
      return Status::InvalidArgument("edge " + std::to_string(i) +
                                     " has invalid weight " +
                                     std::to_string(e.w));
    }
  }
  // Detect duplicates via a sorted copy of normalized endpoint pairs.
  {
    std::vector<uint64_t> keys;
    keys.reserve(edges.size());
    for (const Edge& e : edges) {
      Vertex a = std::min(e.u, e.v), b = std::max(e.u, e.v);
      keys.push_back((static_cast<uint64_t>(a) << 32) | b);
    }
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      return Status::InvalidArgument("duplicate edge in edge list");
    }
  }

  // Build the flat CSR arrays first, then chunk them.
  std::vector<uint32_t> adj_offset(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    ++adj_offset[e.u + 1];
    ++adj_offset[e.v + 1];
  }
  std::partial_sum(adj_offset.begin(), adj_offset.end(),
                   adj_offset.begin());
  std::vector<Arc> arcs(2 * edges.size());
  std::vector<uint32_t> arc_pos(2 * edges.size());
  std::vector<uint32_t> cursor(adj_offset.begin(), adj_offset.end() - 1);
  for (EdgeId id = 0; id < edges.size(); ++id) {
    const Edge& e = edges[id];
    uint32_t pu = cursor[e.u]++;
    uint32_t pv = cursor[e.v]++;
    arcs[pu] = Arc{e.v, e.w, id};
    arcs[pv] = Arc{e.u, e.w, id};
    arc_pos[2 * id] = pu;
    arc_pos[2 * id + 1] = pv;
  }
  // Sort each adjacency list by head for deterministic iteration and
  // binary-searchable FindEdge; fix up arc_pos afterwards.
  for (Vertex v = 0; v < num_vertices; ++v) {
    std::sort(arcs.begin() + adj_offset[v], arcs.begin() + adj_offset[v + 1],
              [](const Arc& a, const Arc& b) {
                if (a.head != b.head) return a.head < b.head;
                return a.edge < b.edge;
              });
  }
  for (uint32_t pos = 0; pos < arcs.size(); ++pos) {
    const Arc& a = arcs[pos];
    // Each edge has exactly two arcs; assign this position to the slot
    // whose tail matches.
    const Edge& e = edges[a.edge];
    Vertex tail = (a.head == e.v) ? e.u : e.v;
    arc_pos[2 * a.edge + (tail == e.u ? 0 : 1)] = pos;
  }

  Graph g;
  g.Chunk(num_vertices, std::move(edges), std::move(adj_offset),
          std::move(arcs), std::move(arc_pos));
  return g;
}

void Graph::SetEdgeWeight(EdgeId id, Weight w) {
  STL_CHECK(id < NumEdges());
  STL_CHECK(w > 0 && w <= kMaxEdgeWeight)
      << "weight " << w << " out of range";
  Edge& e = edges_.Writable(id >> kEdgeChunkShift)[id & kEdgeChunkMask];
  e.w = w;
  // arc_pos[2*id] lives in u's adjacency list, arc_pos[2*id+1] in v's
  // (see FromEdges), which pins down the owning chunk without a search.
  const uint32_t cu = topo_->vertex_chunk[e.u];
  arcs_.Writable(cu)[topo_->arc_pos[2 * id] - topo_->arc_chunk_base[cu]]
      .weight = w;
  const uint32_t cv = topo_->vertex_chunk[e.v];
  arcs_.Writable(cv)[topo_->arc_pos[2 * id + 1] -
                     topo_->arc_chunk_base[cv]]
      .weight = w;
}

std::optional<EdgeId> Graph::FindEdge(Vertex u, Vertex v) const {
  if (u >= NumVertices() || v >= NumVertices() || u == v) {
    return std::nullopt;
  }
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto arcs = ArcsOf(u);
  auto it = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& a, Vertex head) { return a.head < head; });
  if (it != arcs.end() && it->head == v) return it->edge;
  return std::nullopt;
}

uint64_t Graph::MemoryBytes() const {
  if (!topo_) return 0;
  return topo_->MemoryBytes() + edges_.MemoryBytes() + arcs_.MemoryBytes();
}

uint64_t Graph::AddResidentBytes(
    std::unordered_set<const void*>* seen) const {
  if (!topo_) return 0;
  uint64_t bytes = edges_.AddResidentBytes(seen);
  bytes += arcs_.AddResidentBytes(seen);
  if (seen->insert(topo_.get()).second) bytes += topo_->MemoryBytes();
  return bytes;
}

Graph Graph::DeepCopy() const {
  Graph copy;
  copy.topo_ = topo_;
  copy.edges_ = edges_.DeepCopy();
  copy.arcs_ = arcs_.DeepCopy();
  return copy;
}

std::pair<std::vector<uint32_t>, uint32_t> ConnectedComponents(
    const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  std::vector<Vertex> stack;
  uint32_t num_comps = 0;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != UINT32_MAX) continue;
    comp[s] = num_comps;
    stack.push_back(s);
    while (!stack.empty()) {
      Vertex v = stack.back();
      stack.pop_back();
      for (const Arc& a : g.ArcsOf(v)) {
        if (comp[a.head] == UINT32_MAX) {
          comp[a.head] = num_comps;
          stack.push_back(a.head);
        }
      }
    }
    ++num_comps;
  }
  return {std::move(comp), num_comps};
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return ConnectedComponents(g).second == 1;
}

std::pair<Graph, std::vector<uint32_t>> ExtractLargestComponent(
    const Graph& g) {
  auto [comp, num_comps] = ConnectedComponents(g);
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> size(num_comps, 0);
  for (Vertex v = 0; v < n; ++v) ++size[comp[v]];
  uint32_t best =
      static_cast<uint32_t>(std::max_element(size.begin(), size.end()) -
                            size.begin());
  std::vector<uint32_t> remap(n, UINT32_MAX);
  uint32_t next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (comp[v] == best) remap[v] = next++;
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) {
    if (remap[e.u] != UINT32_MAX && remap[e.v] != UINT32_MAX) {
      edges.push_back(Edge{remap[e.u], remap[e.v], e.w});
    }
  }
  Result<Graph> sub = Graph::FromEdges(next, std::move(edges));
  STL_CHECK(sub.ok()) << sub.status().ToString();
  return {std::move(sub).value(), std::move(remap)};
}

}  // namespace stl
