#include "workload/datasets.h"

#include <cstdlib>
#include <cstring>

namespace stl {

BenchScale ScaleFromEnv() {
  const char* s = std::getenv("STL_BENCH_SCALE");
  if (s == nullptr) return BenchScale::kSmall;
  if (std::strcmp(s, "large") == 0) return BenchScale::kLarge;
  if (std::strcmp(s, "medium") == 0) return BenchScale::kMedium;
  return BenchScale::kSmall;
}

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* kDatasets =
      new std::vector<DatasetSpec>{
          {"NY-S", "New York City", 55, 55, 101},
          {"BAY-S", "San Francisco", 68, 68, 102},
          {"COL-S", "Colorado", 85, 85, 103},
          {"FLA-S", "Florida", 106, 106, 104},
          {"CAL-S", "California", 132, 132, 105},
          {"E-S", "Eastern USA", 164, 164, 106},
          {"W-S", "Western USA", 204, 204, 107},
          {"CTR-S", "Central USA", 254, 254, 108},
          {"USA-S", "United States", 316, 316, 109},
          {"EUR-S", "Western Europe", 296, 296, 110},
      };
  return *kDatasets;
}

std::vector<DatasetSpec> DatasetsForScale(BenchScale scale) {
  const auto& all = AllDatasets();
  size_t count;
  switch (scale) {
    case BenchScale::kSmall:
      count = 4;
      break;
    case BenchScale::kMedium:
      count = 7;
      break;
    case BenchScale::kLarge:
      count = all.size();
      break;
    default:
      count = 4;
  }
  return {all.begin(), all.begin() + count};
}

Graph LoadDataset(const DatasetSpec& spec) {
  RoadNetworkOptions opt;
  opt.width = spec.width;
  opt.height = spec.height;
  opt.seed = spec.seed;
  return GenerateRoadNetwork(opt);
}

}  // namespace stl
