// Serving demo: the concurrent query engine under live traffic,
// exercising every submission path of the unified serving API.
//
// Builds a QueryEngine over a synthetic city, then plays both roles of a
// production deployment at once: application threads submitting distance
// queries — as one-snapshot batches (SubmitBatch tickets), through the
// completion queue (SubmitTagged, no promise per query), and as plain
// futures — and a traffic feed pushing weight updates (congestion, then
// recovery) through the single writer. Shows that readers never block,
// that answers are exact for the epoch they were served from, how the
// epoch-keyed result cache pays off on repeated routes, and what the
// engine's stats report looks like. A closing overload drill pushes a
// deliberately tiny deployment past its admission bound to show the
// hardened failure modes: surplus queries shed with kOverloaded,
// expired deadlines failed without consuming reader time, and a
// stalled writer flipping the engine into self-clearing degraded mode.
//
// The engine is generic over DistanceIndex backends; pass one of
// stl | ch | h2h | hc2l to serve the same traffic from another index
// family (path steps are printed only where the backend supports path
// queries).
//
//   $ ./serve_demo [backend]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>

#include "engine/fault_injector.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "index/distance_index.h"
#include "util/rng.h"

using namespace stl;

namespace {

// Usage/help derived from the actual backend registry, so a new
// BackendKind shows up here without touching the demo.
void PrintUsage(std::FILE* out, const char* prog) {
  std::fprintf(out, "usage: %s [backend]\n\n", prog);
  std::fprintf(out,
               "Serves a synthetic city from the concurrent query engine "
               "while a traffic\nfeed streams weight updates.\n\n"
               "valid backends (default: %s):\n",
               BackendName(BackendKind::kStl));
  for (BackendKind kind : kAllBackends) {
    std::fprintf(out, "  %-5s", BackendName(kind));
    switch (kind) {
      case BackendKind::kStl:
        std::fprintf(out, "Stable Tree Labelling (the paper's index)\n");
        break;
      case BackendKind::kCh:
        std::fprintf(out, "Contraction Hierarchy (CH-W + DCH)\n");
        break;
      case BackendKind::kH2h:
        std::fprintf(out, "H2H tree-decomposition labels (IncH2H)\n");
        break;
      case BackendKind::kHc2l:
        std::fprintf(out, "Hierarchical Cut 2-hop Labelling (static)\n");
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BackendKind backend = BackendKind::kStl;
  if (argc > 1) {
    if (std::strcmp(argv[1], "-h") == 0 ||
        std::strcmp(argv[1], "--help") == 0) {
      PrintUsage(stdout, argv[0]);
      return 0;
    }
    bool known = false;
    for (BackendKind kind : kAllBackends) {
      if (std::strcmp(argv[1], BackendName(kind)) == 0) {
        backend = kind;
        known = true;
      }
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown backend '%s'\n\n", argv[1]);
      PrintUsage(stderr, argv[0]);
      return 1;
    }
  }

  // 1. A road network and an engine serving it: 4 reader threads, one
  //    writer, maintenance strategy chosen per batch.
  RoadNetworkOptions net;
  net.width = 40;
  net.height = 40;
  net.seed = 2026;
  Graph g = GenerateRoadNetwork(net);
  const uint32_t n = g.NumVertices();
  std::printf("network: %u intersections, %u road segments\n", n,
              g.NumEdges());

  EngineOptions opt;
  opt.backend = backend;
  opt.num_query_threads = 4;
  opt.result_cache_entries = 1 << 14;  // epoch-keyed (s, t) memo
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  std::printf("engine up: backend %s, %d reader threads, epoch %llu\n",
              BackendName(engine.backend()), engine.num_query_threads(),
              static_cast<unsigned long long>(engine.CurrentEpoch()));

  // 2. A burst of queries on the clean network: ONE batch, one pinned
  //    snapshot, one ticket — no promise per query. Repeating the same
  //    batch on the same epoch is answered from the result cache.
  Rng rng(2026);
  std::vector<QueryPair> burst;
  for (int i = 0; i < 500; ++i) {
    burst.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n)));
  }
  QueryEngine::Ticket ticket = engine.SubmitBatch(burst);
  ticket.Wait();
  std::printf("batch of %zu queries served from pinned epoch %llu in "
              "%.0f us\n",
              ticket.size(),
              static_cast<unsigned long long>(ticket.epoch()),
              ticket.latency_micros());
  QueryEngine::Ticket repeat = engine.SubmitBatch(burst);
  repeat.Wait();
  {
    EngineStats cs = engine.Stats();
    std::printf("repeat batch: %.0f us, result cache hit rate %.1f%% "
                "(%llu/%llu probes)\n",
                repeat.latency_micros(), 100.0 * cs.result_cache_hit_rate,
                static_cast<unsigned long long>(cs.result_cache_hits),
                static_cast<unsigned long long>(cs.result_cache_lookups));
  }

  // 2b. The completion-queue front: tag each request, poll finished
  //     answers — the high-qps path (no future, no promise, no
  //     per-query snapshot retention).
  CompletionQueue cq;
  for (size_t i = 0; i < 200; ++i) {
    engine.SubmitTagged(burst[i], /*tag=*/i, &cq);
  }
  size_t completed = 0;
  Completion buf[64];
  while (completed < 200) {
    const size_t got = cq.WaitPoll(buf, 64);
    completed += got;
  }
  std::printf("completion queue: %zu tagged queries delivered\n",
              completed);

  // 3. Traffic: congestion on the edges of one popular route, while
  //    queries keep flowing. Readers stay on the old epoch until the
  //    writer publishes; nobody waits.
  auto snap = engine.CurrentSnapshot();
  Vertex s = burst[0].first, t = burst[0].second;
  // Congest the popular route's own segments where the backend can
  // reconstruct it; otherwise a random set of segments.
  std::vector<EdgeId> congested_edges;
  if (engine.capabilities().path_queries) {
    std::vector<Vertex> route = snap->QueryShortestPath(s, t);
    std::printf("route %u -> %u: %zu hops, d = %u\n", s, t, route.size(),
                snap->Query(s, t));
    for (size_t i = 0; i + 1 < route.size(); ++i) {
      congested_edges.push_back(*snap->graph.FindEdge(route[i], route[i + 1]));
    }
  } else {
    std::printf("route %u -> %u: d = %u (backend %s has no path queries)\n",
                s, t, snap->Query(s, t), BackendName(engine.backend()));
    for (int i = 0; i < 12; ++i) {
      congested_edges.push_back(
          static_cast<EdgeId>(rng.NextBounded(snap->graph.NumEdges())));
    }
  }
  for (EdgeId e : congested_edges) {
    engine.EnqueueUpdate(e, std::min<Weight>(
                                snap->graph.EdgeWeight(e) * 5,
                                kMaxEdgeWeight));
  }
  QueryEngine::Ticket during = engine.SubmitBatch(burst);  // racing the writer
  during.Wait();  // pinned to whichever epoch was current at submission
  engine.Flush();
  auto congested = engine.CurrentSnapshot();
  std::printf("congestion published (epoch %llu): d(%u, %u) = %u\n",
              static_cast<unsigned long long>(congested->epoch), s, t,
              congested->Query(s, t));

  // 4. The old snapshot is untouched — time-travel debugging for free.
  std::printf("epoch %llu still answers d(%u, %u) = %u\n",
              static_cast<unsigned long long>(snap->epoch), s, t,
              snap->Query(s, t));

  // 5. Recovery: put the original weights back.
  for (EdgeId e : congested_edges) {
    engine.EnqueueUpdate(e, snap->graph.EdgeWeight(e));
  }
  engine.Flush();
  std::printf("recovery published (epoch %llu): d(%u, %u) = %u\n",
              static_cast<unsigned long long>(engine.CurrentEpoch()), s, t,
              engine.CurrentSnapshot()->Query(s, t));

  // 6. Spot-check an answer against Dijkstra on its serving epoch.
  QueryResult r = engine.Submit({s, t}).get();
  Dijkstra oracle(r.snapshot->graph);
  std::printf("audit: engine %u vs dijkstra %u on epoch %llu — %s\n",
              r.distance, oracle.Distance(s, t),
              static_cast<unsigned long long>(r.epoch),
              r.distance == oracle.Distance(s, t) ? "exact" : "MISMATCH");

  // 7. The ops view.
  EngineStats st = engine.Stats();
  std::printf(
      "stats: %llu queries (%.0f qps; %llu batched across %llu tickets), "
      "p50 %.1f us, p99 %.1f us, result cache hit rate %.1f%%, "
      "%llu updates applied in %llu epochs (%llu pareto / %llu label / "
      "%llu incremental / %llu rebuild batches)\n",
      static_cast<unsigned long long>(st.queries_served),
      st.queries_per_second,
      static_cast<unsigned long long>(st.batched_queries),
      static_cast<unsigned long long>(st.query_batches_submitted),
      st.latency_p50_micros, st.latency_p99_micros,
      100.0 * st.result_cache_hit_rate,
      static_cast<unsigned long long>(st.updates_applied),
      static_cast<unsigned long long>(st.epochs_published),
      static_cast<unsigned long long>(st.batches_pareto),
      static_cast<unsigned long long>(st.batches_label),
      static_cast<unsigned long long>(st.batches_incremental),
      static_cast<unsigned long long>(st.batches_rebuild));

  // 8. Overload drill: the same engine in a deliberately tiny
  //    deployment — ONE reader thread whose every dequeue is slowed by
  //    an injected 2 ms fault, and an admission queue bounded at 8
  //    queries — pushed well past its limits. The hardened engine
  //    fails fast and precisely instead of queueing without bound.
  std::printf("\n-- overload drill (1 reader, queue bound 8, 2 ms "
              "injected service floor) --\n");
  SeededFaultInjector faults(2026);
  faults.SetRate(FaultSite::kReaderDelay, 1.0);
  faults.SetDelayMicros(FaultSite::kReaderDelay, 2000);
  RoadNetworkOptions tiny;
  tiny.width = 12;
  tiny.height = 12;
  tiny.seed = 7;
  EngineOptions hot_opt;
  hot_opt.backend = backend;
  hot_opt.num_query_threads = 1;
  hot_opt.serving.max_queued_queries = 8;
  hot_opt.serving.admission_policy = AdmissionPolicy::kRejectNew;
  hot_opt.serving.writer_stall_ms = 10;
  hot_opt.serving.fault_injector = &faults;
  QueryEngine hot(GenerateRoadNetwork(tiny), HierarchyOptions{}, hot_opt);
  const uint32_t hn = hot.CurrentSnapshot()->graph.NumVertices();

  // 8a. 64 submissions against a queue bounded at 8: the surplus
  //     completes immediately with kOverloaded — shedding at admission
  //     is cheap, so rejected callers can retry elsewhere at once.
  std::vector<std::future<QueryResult>> inflight;
  for (int i = 0; i < 64; ++i) {
    inflight.push_back(
        hot.Submit({static_cast<Vertex>(rng.NextBounded(hn)),
                    static_cast<Vertex>(rng.NextBounded(hn))}));
  }
  size_t ok = 0, shed = 0;
  for (auto& f : inflight) {
    QueryResult r = f.get();
    if (r.code == StatusCode::kOk) {
      ++ok;
    } else {
      ++shed;
    }
  }
  std::printf("admission: 64 submitted against a bound of 8 -> %zu "
              "served, %zu shed with kOverloaded\n",
              ok, shed);

  // 8b. Deadlines: a query whose deadline has already passed is failed
  //     at dequeue with kDeadlineExceeded — no reader time spent
  //     routing an answer nobody is waiting for.
  const Deadline expired =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  QueryResult late =
      hot.Submit({0, static_cast<Vertex>(hn - 1)}, expired).get();
  std::printf("deadline: already-expired query -> %s\n",
              late.status().ToString().c_str());

  // 8c. Graceful degradation: stall the writer (100 ms injected fault
  //     per update slice) and watch the 10 ms watchdog flip the engine
  //     into degraded mode — reads keep flowing from the last published
  //     epoch, the staleness is REPORTED, and clearing the fault
  //     recovers without intervention.
  faults.SetRate(FaultSite::kWriterStall, 1.0);
  faults.SetDelayMicros(FaultSite::kWriterStall, 100000);
  hot.EnqueueUpdate(0, kMaxEdgeWeight);
  while (!hot.Stats().degraded) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EngineStats mid = hot.Stats();
  std::printf("degraded: writer stalled -> degraded=%s, %llu pending "
              "epoch(s) of staleness (queries still served)\n",
              mid.degraded ? "true" : "false",
              static_cast<unsigned long long>(mid.staleness_epochs));
  faults.Clear();
  hot.Flush();
  while (hot.Stats().degraded) {  // watchdog clears asynchronously
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The overload ops view: every failure mode above is a first-class
  // counter, not a log line.
  EngineStats hs = hot.Stats();
  std::printf("overload stats: %llu served, %llu shed, %llu deadline-"
              "exceeded, degraded=%s (entered %llu time(s))\n",
              static_cast<unsigned long long>(hs.queries_served),
              static_cast<unsigned long long>(hs.queries_shed),
              static_cast<unsigned long long>(hs.queries_deadline_exceeded),
              hs.degraded ? "true" : "false",
              static_cast<unsigned long long>(hs.degraded_entries));

  // 9. Sharded serving: the same network cut into cells, each served
  //    by its own index, glued by the boundary overlay. A localized
  //    congestion wave (all changes inside one neighbourhood) shows
  //    the incremental overlay economics: only a few boundary rows are
  //    re-run per epoch, the rest pointer-share with the previous
  //    table, and repeated routes hit the epoch-keyed boundary-row
  //    cache.
  std::printf("\n-- sharded serving (incremental overlay repair) --\n");
  Graph sharded_net = GenerateRoadNetwork(net);
  ShardedEngineOptions sopt;
  sopt.backend = backend;
  sopt.target_shards = 4;
  sopt.num_query_threads = 4;
  ShardedEngine city(std::move(sharded_net), HierarchyOptions{}, sopt);
  std::printf("city up: %u shards, %u boundary intersections\n",
              city.num_shards(),
              static_cast<uint32_t>(city.layout().partition.boundary.size()));
  // Congest a handful of streets inside one cell, a few epochs in a
  // row, with route batches in between (the second pass of each batch
  // re-reads the same boundary rows).
  std::vector<QueryPair> routes;
  for (int i = 0; i < 200; ++i) {
    routes.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                        static_cast<Vertex>(rng.NextBounded(n)));
  }
  const uint32_t cell = 0;
  std::vector<EdgeId> cell_edges;
  const ShardLayout& layout = city.layout();
  for (EdgeId e = 0; e < city.CurrentSnapshot()->graph.NumEdges(); ++e) {
    if (layout.shard_of_edge[e] == cell) cell_edges.push_back(e);
  }
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::vector<WeightUpdate> wave;
    for (int i = 0; i < 4 && !cell_edges.empty(); ++i) {
      const EdgeId e = cell_edges[rng.NextBounded(cell_edges.size())];
      wave.push_back(WeightUpdate{
          e, 0, 1 + static_cast<Weight>(rng.NextBounded(200))});
    }
    city.EnqueueUpdates(wave);
    city.Flush();
    ShardedEngine::Ticket tk = city.SubmitBatch(routes);
    tk.Wait();
    ShardedEngine::Ticket again = city.SubmitBatch(routes);
    again.Wait();
  }
  EngineStats ss = city.Stats();
  std::printf(
      "overlay: %llu/%llu boundary rows re-run across %llu publishes "
      "(%llu full rebuilds), %llu clique entries recomputed, "
      "%.1f KiB of rows pointer-shared across epochs\n",
      static_cast<unsigned long long>(ss.overlay_rows_repaired),
      static_cast<unsigned long long>(ss.overlay_rows_total),
      static_cast<unsigned long long>(ss.overlay_republishes),
      static_cast<unsigned long long>(ss.overlay_full_rebuilds),
      static_cast<unsigned long long>(ss.clique_entries_recomputed),
      ss.overlay_bytes_shared / 1024.0);
  std::printf(
      "boundary-row cache: hit rate %.1f%% (%llu/%llu probes)\n",
      100.0 * ss.boundary_row_cache_hit_rate,
      static_cast<unsigned long long>(ss.boundary_row_cache_hits),
      static_cast<unsigned long long>(ss.boundary_row_cache_lookups));
  return 0;
}
