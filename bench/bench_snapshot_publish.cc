// Snapshot-publication economics: copy-on-write structural sharing vs.
// the flat deep-copy baseline (EngineOptions::flat_publish).
//
// For each publish mode and update-batch size, drives the engine's
// writer with random weight updates and reports, per epoch: bytes
// physically copied (CoW page/chunk clones, or the full deep copy),
// label pages detached, time inside PublishSnapshot, and the sustained
// epochs/sec of the enqueue->maintain->publish loop. Emits
// BENCH_snapshot.json so future PRs have a machine-readable perf
// trajectory to regress against.
//
// --check turns the run into a CI guard (structural, no timing): fails
// unless (1) CoW publish deep-copies nothing, (2) CoW clone bytes are
// bounded by dirty_pages * page_size (+ the graph's chunk equivalent),
// and (3) CoW copies >= 10x fewer bytes than the flat baseline for
// single-edge batches.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"

namespace stl {
namespace {

struct RunResult {
  const char* mode;
  size_t batch_size;
  uint64_t epochs = 0;
  double bytes_per_epoch = 0;
  double pages_per_epoch = 0;
  double publish_micros_per_epoch = 0;
  double epochs_per_sec = 0;
  uint64_t label_pages_cloned = 0;
  uint64_t graph_chunks_cloned = 0;
  uint64_t deep_copied_bytes = 0;
  uint64_t resident_index_bytes = 0;
  // Largest physical label page (>= kPageEntries * 4 only when a label
  // longer than a page owns a dedicated one); the guard's per-page cap.
  uint64_t max_label_page_bytes = 0;
};

uint32_t GridSideForScale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmall:
      return 100;
    case BenchScale::kMedium:
      return 141;
    case BenchScale::kLarge:
      return 200;
  }
  return 100;
}

RunResult RunMode(const Graph& base, bool flat, size_t batch_size,
                  size_t num_epochs, uint64_t seed) {
  EngineOptions opt;
  opt.num_query_threads = 1;  // the writer path is what we measure
  opt.max_batch_size = batch_size;
  opt.flat_publish = flat;
  QueryEngine engine(base, HierarchyOptions{}, opt);
  const uint32_t m = base.NumEdges();
  Rng rng(seed);
  engine.ResetStats();
  Timer wall;
  std::vector<WeightUpdate> round_updates;
  for (size_t round = 0; round < num_epochs; ++round) {
    round_updates.clear();
    for (size_t i = 0; i < batch_size; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.NextBounded(m));
      const Weight old = engine.CurrentSnapshot()->graph.EdgeWeight(e);
      Weight nw;
      do {
        nw = 1 + static_cast<Weight>(rng.NextBounded(2 * old + 2));
      } while (nw == old);
      round_updates.push_back(WeightUpdate{e, old, nw});
    }
    // Atomic bulk enqueue: the writer pops the whole round as one batch,
    // so each row's epochs really carry batch_size updates.
    engine.EnqueueUpdates(round_updates);
    engine.Flush();  // one maintained + published epoch per round
  }
  const double seconds = wall.ElapsedSeconds();
  EngineStats stats = engine.Stats();

  RunResult r;
  r.mode = flat ? "flat" : "cow";
  r.batch_size = batch_size;
  r.epochs = stats.epochs_published;
  const double epochs = r.epochs > 0 ? static_cast<double>(r.epochs) : 1;
  // Bytes physically copied to isolate epochs: CoW clones always; plus
  // the full deep copies in flat mode.
  const uint64_t copied =
      stats.cow_bytes_cloned + stats.publish_bytes_deep_copied;
  r.bytes_per_epoch = static_cast<double>(copied) / epochs;
  r.pages_per_epoch =
      static_cast<double>(stats.label_pages_cloned) / epochs;
  r.publish_micros_per_epoch = stats.publish_total_micros / epochs;
  r.epochs_per_sec =
      seconds > 0 ? static_cast<double>(r.epochs) / seconds : 0;
  r.label_pages_cloned = stats.label_pages_cloned;
  r.graph_chunks_cloned = stats.graph_chunks_cloned;
  r.deep_copied_bytes = stats.publish_bytes_deep_copied;
  r.resident_index_bytes = stats.resident_index_bytes;
  r.max_label_page_bytes =
      engine.CurrentSnapshot()->StlLabels()->MaxPageBytes();
  return r;
}

void WriteJson(const char* path, const bench::BenchConfig& cfg, uint32_t side,
               uint32_t vertices, uint32_t edges,
               const std::vector<RunResult>& runs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"snapshot_publish\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", bench::ScaleName(cfg.scale));
  std::fprintf(f, "  \"page_entries\": %u,\n", Labelling::kPageEntries);
  std::fprintf(f, "  \"page_bytes\": %zu,\n",
               Labelling::kPageEntries * sizeof(Weight));
  std::fprintf(f, "  \"edge_chunk_entries\": %u,\n", Graph::kEdgeChunkSize);
  std::fprintf(f,
               "  \"network\": {\"grid_side\": %u, \"vertices\": %u, "
               "\"edges\": %u},\n",
               side, vertices, edges);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"batch_size\": %zu, \"epochs\": %" PRIu64
        ", \"bytes_copied_per_epoch\": %.1f, \"pages_cloned_per_epoch\": "
        "%.2f, \"publish_micros_per_epoch\": %.3f, \"epochs_per_sec\": "
        "%.1f, \"label_pages_cloned\": %" PRIu64
        ", \"graph_chunks_cloned\": %" PRIu64
        ", \"deep_copied_bytes\": %" PRIu64
        ", \"resident_index_bytes\": %" PRIu64 "}%s\n",
        r.mode, r.batch_size, r.epochs, r.bytes_per_epoch,
        r.pages_per_epoch, r.publish_micros_per_epoch, r.epochs_per_sec,
        r.label_pages_cloned, r.graph_chunks_cloned, r.deep_copied_bytes,
        r.resident_index_bytes, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace stl

int main(int argc, char** argv) {
  using namespace stl;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  const bench::BenchConfig cfg = bench::MakeConfig();
  const uint32_t side = GridSideForScale(cfg.scale);
  RoadNetworkOptions net;
  net.width = side;
  net.height = side;
  net.seed = 7;
  Graph base = GenerateRoadNetwork(net);
  std::printf("== snapshot publish: CoW structural share vs flat copy ==\n");
  std::printf(
      "scale=%s grid=%ux%u vertices=%u edges=%u page=%u entries "
      "(%zu B), edge chunk=%u\n\n",
      bench::ScaleName(cfg.scale), side, side, base.NumVertices(),
      base.NumEdges(), Labelling::kPageEntries,
      Labelling::kPageEntries * sizeof(Weight), Graph::kEdgeChunkSize);

  const size_t batch_sizes[] = {1, 4, 16, 64};
  const size_t epochs_per_run = check ? 40 : 120;
  std::vector<RunResult> runs;
  std::printf("%-5s %6s %8s %16s %12s %14s %12s\n", "mode", "batch",
              "epochs", "bytes/epoch", "pages/epoch", "publish us", "epochs/s");
  for (size_t batch : batch_sizes) {
    for (bool flat : {false, true}) {
      RunResult r = RunMode(base, flat, batch, epochs_per_run,
                            1000 + batch);
      std::printf("%-5s %6zu %8" PRIu64 " %16.0f %12.2f %14.3f %12.1f\n",
                  r.mode, r.batch_size, r.epochs, r.bytes_per_epoch,
                  r.pages_per_epoch, r.publish_micros_per_epoch,
                  r.epochs_per_sec);
      runs.push_back(r);
    }
  }

  WriteJson("BENCH_snapshot.json", cfg, side, base.NumVertices(),
            base.NumEdges(), runs);

  // Single-edge-batch comparison (the acceptance headline).
  const RunResult* cow1 = nullptr;
  const RunResult* flat1 = nullptr;
  for (const RunResult& r : runs) {
    if (r.batch_size != 1) continue;
    if (std::strcmp(r.mode, "cow") == 0) cow1 = &r;
    if (std::strcmp(r.mode, "flat") == 0) flat1 = &r;
  }
  if (cow1 != nullptr && flat1 != nullptr && cow1->bytes_per_epoch > 0) {
    std::printf(
        "\nsingle-edge epochs: flat copies %.0f B/epoch, CoW %.0f "
        "B/epoch -> %.1fx fewer bytes\n",
        flat1->bytes_per_epoch, cow1->bytes_per_epoch,
        flat1->bytes_per_epoch / cow1->bytes_per_epoch);
  }

  if (!check) return 0;

  // ---- CI guard: structural invariants only, no timing flakiness. ----
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GUARD FAILED: %s\n", what);
      ++failures;
    }
  };
  for (const RunResult& r : runs) {
    if (std::strcmp(r.mode, "cow") != 0) continue;
    expect(r.deep_copied_bytes == 0,
           "CoW publish must deep-copy nothing");
    // Bytes cloned are bounded by the dirty granularity: label pages
    // (each at most the largest physical page — kPageEntries entries,
    // or one oversized dedicated-page label) plus graph chunks (edge
    // chunks <= 256 Edge, arc chunks vertex-aligned around 256 Arc; max
    // degree bounds the overshoot, 4x is far beyond any road
    // network's).
    const uint64_t page_bytes =
        std::max<uint64_t>(Labelling::kPageEntries * sizeof(Weight),
                           r.max_label_page_bytes);
    const uint64_t bound =
        r.label_pages_cloned * page_bytes +
        r.graph_chunks_cloned * uint64_t{4} * Graph::kEdgeChunkSize *
            sizeof(Arc);
    const uint64_t cloned = static_cast<uint64_t>(
        r.bytes_per_epoch * static_cast<double>(r.epochs) + 0.5);
    expect(cloned <= bound,
           "CoW bytes cloned exceed dirty_pages * page_size bound");
  }
  expect(cow1 != nullptr && flat1 != nullptr,
         "missing single-edge-batch runs");
  if (cow1 != nullptr && flat1 != nullptr) {
    expect(cow1->bytes_per_epoch * 10.0 <= flat1->bytes_per_epoch,
           "CoW must copy >= 10x fewer bytes than flat for single-edge "
           "batches");
  }
  if (failures == 0) std::printf("\nall publish guards passed\n");
  return failures == 0 ? 0 : 1;
}
