// Reproduces Table 4: labelling sizes, construction times, label entry
// counts, and tree heights for STL, HC2L, and the H2H family (IncH2H /
// DTDHL share the same index; they differ in maintenance and auxiliary
// data, so "IncH2H" memory includes the full DCH support machinery while
// "DTDHL" counts its lighter auxiliary state).
//
// Expected shape (paper): STL labels smallest, HC2L next (no shortcuts in
// STL -> smaller cuts), IncH2H by far the largest; STL tree height about
// half of H2H's; STL construction faster than HC2L.
#include "baselines/h2h.h"
#include "baselines/hc2l.h"
#include "bench/bench_common.h"
#include "core/stl_index.h"
#include "util/table.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Table 4 — labelling sizes and construction times", cfg);
  TablePrinter size_table({"Network", "STL", "HC2L", "IncH2H", "DTDHL"});
  TablePrinter time_table({"Network", "STL [s]", "HC2L [s]", "H2H [s]"});
  TablePrinter entry_table(
      {"Network", "STL entries", "HC2L entries", "IncH2H entries",
       "STL height", "IncH2H height"});
  for (const auto& spec : cfg.datasets) {
    Graph g_stl = LoadDataset(spec);
    Graph g_h2h = g_stl;
    const Graph g_ref = g_stl;

    StlIndex stl_idx = StlIndex::Build(&g_stl, HierarchyOptions{});
    Hc2lIndex hc2l = Hc2lIndex::Build(g_ref, HierarchyOptions{});
    H2hIndex h2h = H2hIndex::Build(&g_h2h);

    size_table.AddRow(
        {spec.name, TablePrinter::Bytes(stl_idx.MemoryBytes()),
         TablePrinter::Bytes(hc2l.MemoryBytes()),
         TablePrinter::Bytes(h2h.MemoryBytes(H2hIndex::Maintenance::kIncH2H)),
         TablePrinter::Bytes(
             h2h.MemoryBytes(H2hIndex::Maintenance::kDTDHL))});
    time_table.AddRow(
        {spec.name, TablePrinter::Fixed(stl_idx.build_info().total_seconds, 2),
         TablePrinter::Fixed(hc2l.build_seconds(), 2),
         TablePrinter::Fixed(h2h.build_seconds(), 2)});
    entry_table.AddRow(
        {spec.name,
         TablePrinter::Count(stl_idx.hierarchy().TotalLabelEntries()),
         TablePrinter::Count(hc2l.TotalLabelEntries()),
         TablePrinter::Count(h2h.TotalLabelEntries()),
         std::to_string(stl_idx.hierarchy().MaxLabelSize()),
         std::to_string(h2h.TreeHeight())});
  }
  std::printf("Labelling Size\n");
  size_table.Print();
  std::printf("\nConstruction Time\n");
  time_table.Print();
  std::printf("\n# Label Entries / Tree Height\n");
  entry_table.Print();
  return 0;
}
