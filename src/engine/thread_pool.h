// Fixed-size worker pool for the query-serving engine.
//
// Semantics chosen for a serving system:
//  * Enqueue never blocks (unbounded queue); admission control lives in
//    the caller, which knows its latency budget.
//  * Shutdown() drains: no new work is accepted, but every task enqueued
//    before the call runs to completion before the workers join. This is
//    what lets QueryEngine guarantee that every submitted query is
//    answered, even across destruction.
#ifndef STL_ENGINE_THREAD_POOL_H_
#define STL_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stl {

/// Fixed-size thread pool with drain-on-shutdown semantics.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains and joins (equivalent to Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;             ///< Not copyable.
  ThreadPool& operator=(const ThreadPool&) = delete;  ///< Not copyable.

  /// Schedules `task`. Returns false (and drops the task) iff Shutdown()
  /// was already called.
  bool Enqueue(std::function<void()> task);

  /// Stops accepting work, runs every task already enqueued, joins the
  /// workers. Idempotent; safe to call from at most one thread at a time.
  void Shutdown();

  /// Worker thread count.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks fully executed so far (monotone; exact after Shutdown()).
  uint64_t tasks_executed() const;

  /// Tasks enqueued and not yet started (point-in-time).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  uint64_t tasks_executed_ = 0;
  bool shutting_down_ = false;
};

}  // namespace stl

#endif  // STL_ENGINE_THREAD_POOL_H_
