#include "graph/dimacs.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace stl {

namespace {

Result<Graph> ParseDimacsStream(std::istream& in) {
  std::string line;
  uint64_t declared_vertices = 0;
  uint64_t declared_arcs = 0;
  bool saw_problem = false;
  // Undirected dedupe: (min,max) endpoint key -> min weight.
  std::map<uint64_t, Weight> edge_map;
  uint64_t arc_count = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    char tag = line[0];
    if (tag == 'c') continue;  // comment
    if (tag == 'p') {
      char kind[16] = {0};
      unsigned long long nv = 0, na = 0;
      if (std::sscanf(line.c_str(), "p %15s %llu %llu", kind, &nv, &na) != 3 ||
          std::strcmp(kind, "sp") != 0) {
        return Status::Corruption("bad problem line at line " +
                                  std::to_string(line_no));
      }
      if (saw_problem) {
        return Status::Corruption("duplicate problem line");
      }
      saw_problem = true;
      declared_vertices = nv;
      declared_arcs = na;
      continue;
    }
    if (tag == 'a') {
      if (!saw_problem) {
        return Status::Corruption("arc line before problem line");
      }
      unsigned long long u = 0, v = 0, w = 0;
      if (std::sscanf(line.c_str(), "a %llu %llu %llu", &u, &v, &w) != 3) {
        return Status::Corruption("bad arc line at line " +
                                  std::to_string(line_no));
      }
      if (u == 0 || v == 0 || u > declared_vertices ||
          v > declared_vertices) {
        return Status::Corruption("arc endpoint out of range at line " +
                                  std::to_string(line_no));
      }
      ++arc_count;  // self-loops count toward the declared arc total
      if (u == v) continue;  // ...but are dropped from the graph
      if (w == 0 || w > kMaxEdgeWeight) {
        return Status::Corruption("arc weight out of range at line " +
                                  std::to_string(line_no));
      }
      uint32_t a = static_cast<uint32_t>(std::min(u, v)) - 1;
      uint32_t b = static_cast<uint32_t>(std::max(u, v)) - 1;
      uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
      auto [it, inserted] = edge_map.try_emplace(key, static_cast<Weight>(w));
      if (!inserted) it->second = std::min(it->second, static_cast<Weight>(w));
      continue;
    }
    return Status::Corruption("unknown line tag '" + std::string(1, tag) +
                              "' at line " + std::to_string(line_no));
  }
  if (!saw_problem) return Status::Corruption("missing problem line");
  if (declared_arcs != 0 && arc_count != declared_arcs) {
    return Status::Corruption("arc count mismatch: declared " +
                              std::to_string(declared_arcs) + ", found " +
                              std::to_string(arc_count));
  }
  std::vector<Edge> edges;
  edges.reserve(edge_map.size());
  for (const auto& [key, w] : edge_map) {
    edges.push_back(Edge{static_cast<Vertex>(key >> 32),
                         static_cast<Vertex>(key & 0xffffffffu), w});
  }
  return Graph::FromEdges(static_cast<uint32_t>(declared_vertices),
                          std::move(edges));
}

}  // namespace

Result<Graph> ReadDimacs(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseDimacsStream(in);
}

Result<Graph> ParseDimacs(const std::string& text) {
  std::istringstream in(text);
  return ParseDimacsStream(in);
}

std::string DimacsToString(const Graph& g, const std::string& comment) {
  std::string out;
  if (!comment.empty()) {
    out += "c " + comment + "\n";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "p sp %u %u\n", g.NumVertices(),
                2 * g.NumEdges());
  out += buf;
  for (const Edge& e : g.edges()) {
    std::snprintf(buf, sizeof(buf), "a %u %u %u\na %u %u %u\n", e.u + 1,
                  e.v + 1, e.w, e.v + 1, e.u + 1, e.w);
    out += buf;
  }
  return out;
}

Status WriteDimacs(const Graph& g, const std::string& path,
                   const std::string& comment) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << DimacsToString(g, comment);
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace stl
