#include "workload/query_workload.h"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.h"
#include "util/rng.h"

namespace stl {

std::vector<QueryPair> RandomQueryPairs(const Graph& g, size_t count,
                                        uint64_t seed) {
  STL_CHECK_GT(g.NumVertices(), 0u);
  Rng rng(seed);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(
        static_cast<Vertex>(rng.NextBounded(g.NumVertices())),
        static_cast<Vertex>(rng.NextBounded(g.NumVertices())));
  }
  return pairs;
}

std::vector<QueryPair> HotSpotQueryPairs(const Graph& g, size_t count,
                                         double hot_fraction,
                                         size_t hot_pairs, uint64_t seed) {
  STL_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  if (hot_fraction <= 0.0 || hot_pairs == 0) {
    return RandomQueryPairs(g, count, seed);
  }
  // The hot pool comes from a decorrelated stream so changing the pool
  // size does not reshuffle the uniform tail.
  const std::vector<QueryPair> hot =
      RandomQueryPairs(g, hot_pairs, seed ^ 0x9e3779b97f4a7c15ULL);
  Rng rng(seed);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (rng.NextDouble() < hot_fraction) {
      pairs.push_back(hot[rng.NextBounded(hot.size())]);
    } else {
      pairs.emplace_back(
          static_cast<Vertex>(rng.NextBounded(g.NumVertices())),
          static_cast<Vertex>(rng.NextBounded(g.NumVertices())));
    }
  }
  return pairs;
}

Weight ApproximateDiameter(const Graph& g) {
  if (g.NumVertices() == 0) return 0;
  Dijkstra dij(g);
  auto farthest = [&dij, &g](Vertex s) {
    const auto& dist = dij.AllDistances(s);
    Vertex best = s;
    Weight best_d = 0;
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      if (dist[v] != kInfDistance && dist[v] > best_d) {
        best_d = dist[v];
        best = v;
      }
    }
    return std::make_pair(best, best_d);
  };
  auto [p1, d1] = farthest(0);
  (void)d1;
  auto [p2, d2] = farthest(p1);
  (void)p2;
  return std::max<Weight>(d2, 1);
}

std::vector<std::vector<QueryPair>> StratifiedQuerySets(const Graph& g,
                                                        size_t per_set,
                                                        uint64_t seed) {
  constexpr int kNumSets = 10;
  std::vector<std::vector<QueryPair>> sets(kNumSets);
  const Weight lmax = ApproximateDiameter(g);
  // l_min = l_max / 2^10: buckets double in distance, mirroring the
  // paper's geometric progression.
  const double lmin = std::max(1.0, static_cast<double>(lmax) / 1024.0);
  const double x = std::pow(static_cast<double>(lmax) / lmin, 1.0 / kNumSets);
  auto bucket_of = [&](Weight d) -> int {
    if (d == 0 || d == kInfDistance) return -1;
    if (d <= lmin) return 0;
    int b = static_cast<int>(std::ceil(std::log(d / lmin) / std::log(x))) - 1;
    return std::min(std::max(b, 0), kNumSets - 1);
  };

  Rng rng(seed);
  Dijkstra dij(g);
  std::vector<std::vector<Vertex>> candidates(kNumSets);
  size_t filled = 0;
  size_t sources = 0;
  const size_t max_sources = 40 * kNumSets + per_set;
  // Per source, take a few targets per bucket so sources stay diverse.
  const size_t take_per_bucket = std::max<size_t>(2, per_set / 50);
  while (filled < static_cast<size_t>(kNumSets) && sources < max_sources) {
    ++sources;
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    const auto& dist = dij.AllDistances(s);
    for (auto& c : candidates) c.clear();
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      int b = bucket_of(dist[t]);
      if (b >= 0) candidates[b].push_back(t);
    }
    filled = 0;
    for (int b = 0; b < kNumSets; ++b) {
      auto& set = sets[b];
      auto& cand = candidates[b];
      size_t take = std::min(take_per_bucket, cand.size());
      for (size_t k = 0; k < take && set.size() < per_set; ++k) {
        Vertex t = cand[rng.NextBounded(cand.size())];
        set.emplace_back(s, t);
      }
      if (set.size() >= per_set) ++filled;
    }
  }
  return sets;
}

}  // namespace stl
