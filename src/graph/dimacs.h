// Reader/writer for the 9th DIMACS Implementation Challenge shortest-path
// graph format (.gr): the format of the paper's road-network datasets.
//
//   c <comment>
//   p sp <num_vertices> <num_arcs>
//   a <u> <v> <weight>        (1-based vertex ids)
//
// DIMACS files list both directions of each undirected road segment; the
// reader collapses them to single undirected edges, keeping the minimum
// weight if the two directions disagree (rare, but present in the USA
// data). The writer emits both directions, so write+read round-trips.
#ifndef STL_GRAPH_DIMACS_H_
#define STL_GRAPH_DIMACS_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace stl {

/// Parses a DIMACS .gr file into a Graph.
Result<Graph> ReadDimacs(const std::string& path);

/// Parses DIMACS-format text (for tests and in-memory use).
Result<Graph> ParseDimacs(const std::string& text);

/// Writes `g` in DIMACS .gr format (both directions per edge).
Status WriteDimacs(const Graph& g, const std::string& path,
                   const std::string& comment = "");

/// Renders `g` as DIMACS-format text.
std::string DimacsToString(const Graph& g, const std::string& comment = "");

}  // namespace stl

#endif  // STL_GRAPH_DIMACS_H_
