// Copy-on-write chunk vector: the shared storage protocol behind the
// paged Labelling and the chunked Graph weight tables.
//
// A CowChunks holds fixed conceptual chunks of T, each in a shared_ptr.
// Copying a CowChunks copies chunk pointers (refcount bumps, zero
// element copies); Writable(c) detaches (clones) chunk c only if some
// other copy still shares it. Single-writer discipline: one copy is
// mutated at a time, while any number of other copies sharing its
// chunks may be read — or destroyed, from any thread. The sole-owner
// check pairs a use_count() load with an acquire fence so a reader
// thread's final release of a chunk happens-before the writer's
// in-place stores.
//
// A raw data-pointer mirror keeps reads at two dependent loads (no
// shared_ptr control-block chasing on hot paths).
#ifndef STL_UTIL_COW_CHUNKS_H_
#define STL_UTIL_COW_CHUNKS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

namespace stl {

/// Cumulative copy-on-write counters (monotone; copies inherit and then
/// diverge).
struct CowChunkStats {
  uint64_t chunks_cloned = 0;
  uint64_t bytes_cloned = 0;

  CowChunkStats& operator+=(const CowChunkStats& o) {
    chunks_cloned += o.chunks_cloned;
    bytes_cloned += o.bytes_cloned;
    return *this;
  }
};

template <typename T>
class CowChunks {
 public:
  CowChunks() = default;

  // Copies share every chunk; writes to either side detach on demand.
  CowChunks(const CowChunks&) = default;
  CowChunks& operator=(const CowChunks&) = default;
  CowChunks(CowChunks&&) noexcept = default;
  CowChunks& operator=(CowChunks&&) noexcept = default;

  void Clear() {
    chunks_.clear();
    data_.clear();
    stats_ = CowChunkStats();
  }

  void Reserve(size_t n) {
    chunks_.reserve(n);
    data_.reserve(n);
  }

  /// Appends one chunk (build time; the new chunk is sole-owned).
  void Append(std::vector<T> chunk) {
    chunks_.push_back(std::make_shared<std::vector<T>>(std::move(chunk)));
    data_.push_back(chunks_.back()->data());
  }

  uint32_t NumChunks() const {
    return static_cast<uint32_t>(chunks_.size());
  }
  size_t ChunkSize(uint32_t c) const { return chunks_[c]->size(); }

  /// Read pointer to chunk c's elements. Stable until a write detaches
  /// the chunk (never happens through a sharing copy).
  const T* Data(uint32_t c) const { return data_[c]; }

  /// Writable pointer to chunk c: detaches (clones) it first unless
  /// this CowChunks is the sole owner. Single-writer only.
  T* Writable(uint32_t c) {
    auto& chunk = chunks_[c];
    if (chunk.use_count() > 1) {
      chunk = std::make_shared<std::vector<T>>(*chunk);
      data_[c] = chunk->data();
      ++stats_.chunks_cloned;
      stats_.bytes_cloned += chunk->size() * sizeof(T);
    } else {
      // Pair with the release decrement of a reader thread dropping the
      // last shared reference to this chunk: its reads must complete
      // before our in-place writes. No-op fence on x86.
      std::atomic_thread_fence(std::memory_order_acquire);
    }
    return data_[c];
  }

  const CowChunkStats& stats() const { return stats_; }

  /// A fully detached copy: every chunk cloned, counters reset.
  CowChunks DeepCopy() const {
    CowChunks copy;
    copy.Reserve(chunks_.size());
    for (const auto& chunk : chunks_) copy.Append(*chunk);
    return copy;
  }

  /// Element bytes only (what DeepCopy physically copies).
  uint64_t PayloadBytes() const {
    uint64_t bytes = 0;
    for (const auto& chunk : chunks_) bytes += chunk->size() * sizeof(T);
    return bytes;
  }

  /// Element bytes of the largest chunk (0 if empty) — the worst-case
  /// clone cost of one write.
  uint64_t MaxChunkBytes() const {
    uint64_t bytes = 0;
    for (const auto& chunk : chunks_) {
      bytes = std::max<uint64_t>(bytes, chunk->size() * sizeof(T));
    }
    return bytes;
  }

  /// Resident bytes of this copy alone: chunk capacities plus the
  /// per-copy pointer tables.
  uint64_t MemoryBytes() const {
    uint64_t bytes = PointerTableBytes();
    for (const auto& chunk : chunks_) {
      bytes += chunk->capacity() * sizeof(T);
    }
    return bytes;
  }

  /// Adds this copy's resident bytes to a running total, counting each
  /// physical chunk once across every call sharing the same `seen` set.
  /// Returns the bytes newly added.
  uint64_t AddResidentBytes(std::unordered_set<const void*>* seen) const {
    uint64_t bytes = PointerTableBytes();  // per-copy, never shared
    for (uint32_t c = 0; c < chunks_.size(); ++c) {
      if (seen->insert(data_[c]).second) {
        bytes += chunks_[c]->capacity() * sizeof(T);
      }
    }
    return bytes;
  }

 private:
  uint64_t PointerTableBytes() const {
    return chunks_.capacity() * sizeof(std::shared_ptr<std::vector<T>>) +
           data_.capacity() * sizeof(T*);
  }

  std::vector<std::shared_ptr<std::vector<T>>> chunks_;
  std::vector<T*> data_;  // raw mirror of chunks_[c]->data()
  CowChunkStats stats_;
};

}  // namespace stl

#endif  // STL_UTIL_COW_CHUNKS_H_
