// Sharded-scaling bench: the SAME mixed query + update workload served
// by the flat single-index engine and by the sharded engine at k ∈
// {2, 4, 8}, for multiple backends. Three phases per configuration:
//
//   lockstep  — update batch, Flush, evaluate a fixed query set on the
//               published snapshot. Answers must be BIT-IDENTICAL to
//               the flat engine's on the same weights (both are exact);
//               any divergence is a routing/overlay bug.
//   throughput— an updater thread streams batches while closed-loop
//               query waves run on the reader pool; reports qps,
//               p50/p99, publish + overlay micros per epoch, resident
//               bytes — and Dijkstra-audits every answer on the exact
//               epoch snapshot it was served from.
//   batched   — the same pairs through SubmitBatch tickets (one pinned
//               snapshot + grouped row-reusing routing per wave);
//               reports qps_batch and the result-cache hit rate, and
//               audits every batched answer against Dijkstra AND the
//               per-query router on the pinned epoch (bit-identity).
//   localized — sharded only: every batch touches edges of ONE cell
//               (alternating congest / restore), the regime the
//               incremental overlay repair is built for. Reports
//               localized overlay/repair micros per epoch, rows
//               repaired per epoch and the boundary-row cache hit
//               rate, and Dijkstra-audits every answer on its epoch.
//
// Emits BENCH_sharded.json. --check turns the run into a CI guard
// (structural, no timing): zero lockstep, audit, batch and localized
// mismatches for every (backend, k) configuration, and single-cell
// epochs at k >= 4 must mostly take the repair path (strictly fewer
// rows recomputed than the table has), with the workload clamped
// small.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/query_workload.h"

namespace stl {
namespace {

// Serving-traffic skew for the throughput phases (same rationale as
// bench_engine_throughput): a hot-pool fraction makes the epoch-keyed
// result cache earn a measurable hit rate.
constexpr double kHotFraction = 0.25;
constexpr size_t kHotPairs = 512;

struct ShardedSizes {
  uint32_t grid_side;
  size_t lockstep_rounds;
  size_t lockstep_queries;
  size_t queries;
  size_t wave;
  size_t update_rounds;
  size_t batch_size;
};

ShardedSizes SizesForScale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmall:
      return {40, 8, 400, 6000, 150, 16, 8};
    case BenchScale::kMedium:
      return {70, 10, 600, 20000, 250, 30, 16};
    case BenchScale::kLarge:
      return {100, 12, 800, 60000, 400, 60, 32};
  }
  return {40, 8, 400, 6000, 150, 16, 8};
}

/// The deterministic lockstep update stream: alternating congest /
/// restore batches on seeded random edges, identical for every engine.
std::vector<WeightUpdate> LockstepBatch(const Graph& base, size_t round,
                                        size_t batch_size) {
  std::vector<WeightUpdate> batch;
  batch.reserve(batch_size);
  const bool restore = round % 2 == 1;
  Rng ering(9000 + 17 * (round / 2));  // restore reuses the edges
  for (size_t i = 0; i < batch_size; ++i) {
    const EdgeId e =
        static_cast<EdgeId>(ering.NextBounded(base.NumEdges()));
    const Weight w0 = base.EdgeWeight(e);
    const Weight target =
        restore ? w0 : std::min<Weight>(w0 * 4, kMaxEdgeWeight);
    batch.push_back(WeightUpdate{e, 0, target});
  }
  return batch;
}

struct ConfigRow {
  BackendKind kind;
  uint32_t target_shards = 0;  // 0 = flat engine
  uint32_t num_shards = 0;
  uint32_t boundary_vertices = 0;
  double build_seconds = 0;
  double qps = 0;        // per-query (Submit futures) phase
  double p50 = 0;
  double p99 = 0;
  double qps_batch = 0;  // batched (SubmitBatch tickets) phase
  double cache_hit_rate = 0;
  uint64_t epochs = 0;
  double publish_micros_per_epoch = 0;
  double overlay_micros_per_epoch = 0;
  uint64_t resident_bytes = 0;
  uint64_t lockstep_mismatches = 0;
  uint64_t audit_mismatches = 0;
  uint64_t batch_mismatches = 0;  // batched vs Dijkstra AND vs the
                                  // per-query path on the pinned epoch
  // Localized (single-cell) phase, sharded configurations only.
  double localized_overlay_micros = 0;  // clique + publish, per epoch
  double localized_repair_micros = 0;   // publish (repair) share
  double localized_rows_repaired = 0;   // Dijkstra re-runs per epoch
  double localized_rows_total = 0;      // table rows (n) per epoch
  double boundary_row_cache_hit_rate = 0;
  uint64_t localized_epochs = 0;
  uint64_t localized_repaired_epochs = 0;  // avoided the full rebuild
  uint64_t localized_mismatches = 0;
};

/// Phase 1 answers of the flat reference engine (per round, per pair).
using LockstepAnswers = std::vector<std::vector<Weight>>;

template <typename Engine>
LockstepAnswers RunLockstep(Engine& engine, const Graph& base,
                            const ShardedSizes& sizes,
                            const std::vector<QueryPair>& pairs) {
  LockstepAnswers answers;
  answers.reserve(sizes.lockstep_rounds);
  for (size_t round = 0; round < sizes.lockstep_rounds; ++round) {
    engine.EnqueueUpdates(LockstepBatch(base, round, sizes.batch_size));
    engine.Flush();
    auto snap = engine.CurrentSnapshot();
    std::vector<Weight> row;
    row.reserve(pairs.size());
    for (const QueryPair& q : pairs) {
      row.push_back(snap->Query(q.first, q.second));
    }
    answers.push_back(std::move(row));
  }
  return answers;
}

uint64_t CountMismatches(const LockstepAnswers& a, const LockstepAnswers& b) {
  uint64_t mismatches = 0;
  for (size_t r = 0; r < a.size() && r < b.size(); ++r) {
    for (size_t i = 0; i < a[r].size(); ++i) {
      mismatches += a[r][i] != b[r][i];
    }
  }
  return mismatches;
}

/// Phase 2: concurrent mixed workload with the per-epoch Dijkstra audit.
template <typename Engine, typename Result>
void RunThroughput(Engine& engine, const Graph& base,
                   const ShardedSizes& sizes, ConfigRow* row) {
  engine.ResetStats();
  // ResetStats keeps the epoch-id allocator (epochs must stay unique),
  // so per-epoch averages below divide by this phase's epoch delta.
  const uint64_t epochs_before = engine.Stats().epochs_published;
  std::vector<QueryPair> pairs = HotSpotQueryPairs(
      base, sizes.queries, kHotFraction, kHotPairs, 4242);

  std::thread updater([&] {
    for (size_t round = 0; round < sizes.update_rounds; ++round) {
      engine.EnqueueUpdates(LockstepBatch(base, round, sizes.batch_size));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<Result> results;
  results.reserve(pairs.size());
  std::vector<std::future<Result>> wave_futures;
  wave_futures.reserve(sizes.wave);
  for (size_t i = 0; i < pairs.size(); i += sizes.wave) {
    const size_t end = std::min(pairs.size(), i + sizes.wave);
    wave_futures.clear();
    for (size_t j = i; j < end; ++j) {
      wave_futures.push_back(engine.Submit(pairs[j]));
    }
    for (auto& f : wave_futures) results.push_back(f.get());
  }
  // Harvest throughput at the end of the SERVING window (last answer in
  // hand): the writer's post-serving maintenance drain must not dilute
  // queries/sec (epoch and publish accounting still reads the
  // post-Flush stats below).
  {
    EngineStats serving = engine.Stats();
    row->qps = serving.queries_per_second;
    row->p50 = serving.latency_p50_micros;
    row->p99 = serving.latency_p99_micros;
  }
  updater.join();
  engine.Flush();

  EngineStats stats = engine.Stats();
  const uint64_t epochs = stats.epochs_published - epochs_before;
  row->epochs = epochs;
  row->publish_micros_per_epoch =
      epochs > 0
          ? stats.publish_total_micros / static_cast<double>(epochs)
          : 0;
  row->overlay_micros_per_epoch =
      epochs > 0
          ? stats.overlay_rebuild_micros / static_cast<double>(epochs)
          : 0;
  row->resident_bytes = stats.resident_index_bytes;

  // Ground-truth audit: every answer vs Dijkstra on its serving epoch.
  std::map<uint64_t, decltype(results.front().snapshot)> snapshots;
  for (const Result& r : results) snapshots.emplace(r.epoch, r.snapshot);
  std::map<uint64_t, std::unique_ptr<Dijkstra>> oracle;
  for (auto& [epoch, snap] : snapshots) {
    oracle.emplace(epoch, std::make_unique<Dijkstra>(snap->graph));
  }
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    if (r.distance !=
        oracle.at(r.epoch)->Distance(pairs[i].first, pairs[i].second)) {
      ++row->audit_mismatches;
    }
  }

  // Phase 3: the same pairs through SubmitBatch tickets (one pinned
  // snapshot + grouped, row-reusing routing per wave) against a fresh
  // copy of the update stream. Audited twice per answer: vs Dijkstra on
  // the pinned epoch, and vs the per-query router on the SAME pinned
  // snapshot — the batch path must be bit-identical.
  engine.ResetStats();
  std::thread batch_updater([&] {
    for (size_t round = 0; round < sizes.update_rounds; ++round) {
      engine.EnqueueUpdates(LockstepBatch(base, round, sizes.batch_size));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  std::vector<typename Engine::Ticket> tickets;
  std::vector<size_t> ticket_begin;
  for (size_t i = 0; i < pairs.size(); i += sizes.wave) {
    const size_t end = std::min(pairs.size(), i + sizes.wave);
    std::vector<QueryPair> wave(pairs.begin() + i, pairs.begin() + end);
    auto ticket = engine.SubmitBatch(wave);
    ticket.Wait();  // closed loop, like phase 2
    ticket_begin.push_back(i);
    tickets.push_back(std::move(ticket));
  }
  // Same harvest point as the per-query phase: serving window only.
  {
    EngineStats serving = engine.Stats();
    row->qps_batch = serving.queries_per_second;
    row->cache_hit_rate = serving.result_cache_hit_rate;
  }
  batch_updater.join();
  engine.Flush();

  std::map<uint64_t, std::unique_ptr<Dijkstra>> batch_oracle;
  for (size_t w = 0; w < tickets.size(); ++w) {
    const auto& ticket = tickets[w];
    auto [it, fresh] = batch_oracle.try_emplace(ticket.epoch());
    if (fresh) {
      it->second = std::make_unique<Dijkstra>(ticket.snapshot()->graph);
    }
    for (size_t i = 0; i < ticket.size(); ++i) {
      const QueryPair& q = pairs[ticket_begin[w] + i];
      const Weight got = ticket.distance(i);
      if (got != it->second->Distance(q.first, q.second) ||
          got != ticket.snapshot()->Query(q.first, q.second)) {
        ++row->batch_mismatches;
      }
    }
  }
}

/// The localized update stream: alternating congest / restore batches
/// drawn from ONE shard's edge pool, so every epoch dirties a single
/// cell — the workload incremental overlay repair is built for.
std::vector<WeightUpdate> LocalizedBatch(const Graph& base,
                                         const std::vector<EdgeId>& pool,
                                         size_t round, size_t batch_size) {
  std::vector<WeightUpdate> batch;
  batch.reserve(batch_size);
  const bool restore = round % 2 == 1;
  Rng ering(12000 + 31 * (round / 2));  // restore reuses the edges
  for (size_t i = 0; i < batch_size; ++i) {
    const EdgeId e = pool[ering.NextBounded(pool.size())];
    const Weight w0 = base.EdgeWeight(e);
    const Weight target =
        restore ? w0 : std::min<Weight>(w0 * 2, kMaxEdgeWeight);
    batch.push_back(WeightUpdate{e, 0, target});
  }
  return batch;
}

/// Phase 4 (sharded only): single-cell update epochs with a hot query
/// mix between publishes. Per-round stat deltas separate repaired
/// epochs from full-rebuild fallbacks; every answer is Dijkstra-audited
/// on its serving epoch.
void RunLocalized(ShardedEngine& engine, const Graph& base,
                  const ShardedSizes& sizes, ConfigRow* row) {
  const ShardLayout& lay = engine.layout();
  const uint32_t k = lay.num_shards();
  // Update the shard with the smallest boundary set (ties broken by
  // more edges): a peripheral cell whose clique entries sit on few
  // cross-boundary shortest paths, so the increase-affected row set
  // stays small — the locality the repair path is built to exploit. A
  // fixed target keeps every epoch single-cell.
  std::vector<uint32_t> edge_count(k, 0);
  for (const uint32_t owner : lay.shard_of_edge) {
    if (owner != ShardLayout::kOverlayShard) ++edge_count[owner];
  }
  uint32_t target = 0;
  for (uint32_t c = 1; c < k; ++c) {
    const size_t bc = lay.shards[c].boundary_local.size();
    const size_t bt = lay.shards[target].boundary_local.size();
    if (edge_count[c] == 0) continue;
    if (edge_count[target] == 0 || bc < bt ||
        (bc == bt && edge_count[c] > edge_count[target])) {
      target = c;
    }
  }
  std::vector<EdgeId> pool;
  pool.reserve(edge_count[target]);
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    if (lay.shard_of_edge[e] == target) pool.push_back(e);
  }
  if (pool.empty()) return;
  // A handful of edges per epoch: one congested road segment, not a
  // region-wide event.
  const size_t batch_size = std::min<size_t>(sizes.batch_size, 4);

  // The same hot-skewed pairs every round: clean-shard boundary rows
  // stay valid across epochs (shard-epoch keying), so repeats measure
  // the boundary-row cache's cross-epoch hit rate.
  std::vector<QueryPair> pairs =
      HotSpotQueryPairs(base, 300, kHotFraction, 64, 515151);

  engine.ResetStats();
  EngineStats prev = engine.Stats();
  std::vector<ShardedQueryResult> results;
  results.reserve(pairs.size() * sizes.update_rounds);
  std::vector<std::future<ShardedQueryResult>> futures;
  futures.reserve(pairs.size());
  for (size_t round = 0; round < sizes.update_rounds; ++round) {
    engine.EnqueueUpdates(LocalizedBatch(base, pool, round, batch_size));
    engine.Flush();
    const EngineStats now = engine.Stats();
    const uint64_t epochs = now.epochs_published - prev.epochs_published;
    const uint64_t rebuilds =
        now.overlay_full_rebuilds - prev.overlay_full_rebuilds;
    const uint64_t repaired =
        now.overlay_rows_repaired - prev.overlay_rows_repaired;
    const uint64_t total = now.overlay_rows_total - prev.overlay_rows_total;
    row->localized_epochs += epochs;
    if (epochs > 0 && rebuilds == 0 && repaired < total) {
      row->localized_repaired_epochs += epochs;
    }
    prev = now;
    futures.clear();
    for (const QueryPair& q : pairs) futures.push_back(engine.Submit(q));
    for (auto& f : futures) results.push_back(f.get());
  }

  const EngineStats stats = engine.Stats();
  const double epochs =
      row->localized_epochs > 0 ? static_cast<double>(row->localized_epochs)
                                : 1.0;
  row->localized_overlay_micros = stats.overlay_rebuild_micros / epochs;
  row->localized_repair_micros = stats.overlay_repair_micros / epochs;
  row->localized_rows_repaired =
      static_cast<double>(stats.overlay_rows_repaired) / epochs;
  row->localized_rows_total =
      static_cast<double>(stats.overlay_rows_total) / epochs;
  row->boundary_row_cache_hit_rate = stats.boundary_row_cache_hit_rate;

  // Ground-truth audit on every served epoch (results arrive
  // round-major, so result i queried pairs[i % pairs.size()]).
  std::map<uint64_t, decltype(results.front().snapshot)> snapshots;
  for (const ShardedQueryResult& r : results) {
    snapshots.emplace(r.epoch, r.snapshot);
  }
  std::map<uint64_t, std::unique_ptr<Dijkstra>> oracle;
  for (auto& [epoch, snap] : snapshots) {
    oracle.emplace(epoch, std::make_unique<Dijkstra>(snap->graph));
  }
  for (size_t i = 0; i < results.size(); ++i) {
    const QueryPair& q = pairs[i % pairs.size()];
    if (results[i].distance !=
        oracle.at(results[i].epoch)->Distance(q.first, q.second)) {
      ++row->localized_mismatches;
    }
  }
}

void WriteJson(const char* path, const bench::BenchConfig& cfg,
               uint32_t side, uint32_t vertices, uint32_t edges,
               const ShardedSizes& sizes,
               const std::vector<ConfigRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sharded_scaling\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", bench::ScaleName(cfg.scale));
  std::fprintf(f,
               "  \"network\": {\"grid_side\": %u, \"vertices\": %u, "
               "\"edges\": %u},\n",
               side, vertices, edges);
  std::fprintf(
      f,
      "  \"workload\": {\"lockstep_rounds\": %zu, \"lockstep_queries\": "
      "%zu, \"queries\": %zu, \"update_rounds\": %zu, \"batch_size\": "
      "%zu, \"query_threads\": 4, \"hot_fraction\": %.2f, "
      "\"hot_pairs\": %zu},\n",
      sizes.lockstep_rounds, sizes.lockstep_queries, sizes.queries,
      sizes.update_rounds, sizes.batch_size, kHotFraction, kHotPairs);
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"mode\": \"%s\", \"target_shards\": "
        "%u, \"shards\": %u, \"boundary_vertices\": %u, "
        "\"build_seconds\": %.3f, \"qps\": %.1f, \"qps_batch\": %.1f, "
        "\"result_cache_hit_rate\": %.4f, \"latency_p50_micros\": "
        "%.2f, \"latency_p99_micros\": %.2f, \"epochs\": %" PRIu64
        ", \"publish_micros_per_epoch\": %.3f, "
        "\"overlay_micros_per_epoch\": %.3f, \"resident_bytes\": %" PRIu64
        ", \"lockstep_mismatches\": %" PRIu64
        ", \"audit_mismatches\": %" PRIu64
        ", \"batch_mismatches\": %" PRIu64
        ", \"localized_overlay_micros_per_epoch\": %.3f, "
        "\"overlay_repair_micros_per_epoch\": %.3f, "
        "\"rows_repaired_per_epoch\": %.2f, "
        "\"rows_total_per_epoch\": %.2f, "
        "\"boundary_row_cache_hit_rate\": %.4f, "
        "\"localized_epochs\": %" PRIu64
        ", \"localized_repaired_epochs\": %" PRIu64
        ", \"localized_mismatches\": %" PRIu64 "}%s\n",
        BackendName(r.kind), r.target_shards == 0 ? "flat" : "sharded",
        r.target_shards, r.num_shards, r.boundary_vertices,
        r.build_seconds, r.qps, r.qps_batch, r.cache_hit_rate, r.p50,
        r.p99, r.epochs, r.publish_micros_per_epoch,
        r.overlay_micros_per_epoch, r.resident_bytes,
        r.lockstep_mismatches, r.audit_mismatches, r.batch_mismatches,
        r.localized_overlay_micros, r.localized_repair_micros,
        r.localized_rows_repaired, r.localized_rows_total,
        r.boundary_row_cache_hit_rate, r.localized_epochs,
        r.localized_repaired_epochs, r.localized_mismatches,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace stl

int main(int argc, char** argv) {
  using namespace stl;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  const bench::BenchConfig cfg = bench::MakeConfig();
  ShardedSizes sizes = SizesForScale(cfg.scale);
  if (check) {
    // CI guard: bound the build and audit cost (6 sharded engines + 2
    // flat ones are constructed below).
    sizes.grid_side = std::min<uint32_t>(sizes.grid_side, 24);
    sizes.lockstep_rounds = std::min<size_t>(sizes.lockstep_rounds, 6);
    sizes.lockstep_queries = std::min<size_t>(sizes.lockstep_queries, 300);
    sizes.queries = std::min<size_t>(sizes.queries, 2000);
    sizes.update_rounds = std::min<size_t>(sizes.update_rounds, 8);
  }

  RoadNetworkOptions net;
  net.width = sizes.grid_side;
  net.height = sizes.grid_side;
  net.seed = 7;
  Graph base = GenerateRoadNetwork(net);
  const uint32_t n = base.NumVertices();

  // Fixed lockstep query pairs shared by every configuration.
  Rng prng(1117);
  std::vector<QueryPair> lockstep_pairs;
  lockstep_pairs.reserve(sizes.lockstep_queries);
  for (size_t i = 0; i < sizes.lockstep_queries; ++i) {
    lockstep_pairs.emplace_back(static_cast<Vertex>(prng.NextBounded(n)),
                                static_cast<Vertex>(prng.NextBounded(n)));
  }

  const BackendKind backends[] = {BackendKind::kStl, BackendKind::kCh};
  const uint32_t shard_counts[] = {2, 4, 8};

  std::printf("== sharded scaling: flat vs k-way sharded serving ==\n");
  std::printf(
      "scale=%s grid=%ux%u vertices=%u edges=%u lockstep=%zux%zu "
      "queries=%zu update_rounds=%zu batch=%zu\n\n",
      bench::ScaleName(cfg.scale), sizes.grid_side, sizes.grid_side, n,
      base.NumEdges(), sizes.lockstep_rounds, sizes.lockstep_queries,
      sizes.queries, sizes.update_rounds, sizes.batch_size);
  std::printf("%-6s %6s %7s %9s %10s %10s %8s %8s %11s %11s %9s %9s %6s\n",
              "backend", "mode", "shards", "build s", "qps", "qps batch",
              "p50 us", "p99 us", "publish us", "overlay us", "lockstep",
              "audit", "batch");

  std::vector<ConfigRow> rows;
  for (BackendKind kind : backends) {
    // Flat reference: the single-index engine on the same workload.
    ConfigRow flat_row;
    flat_row.kind = kind;
    EngineOptions fopt;
    fopt.backend = kind;
    fopt.num_query_threads = 4;
    fopt.max_batch_size = sizes.batch_size;
    fopt.result_cache_entries = 1 << 15;
    Timer flat_build;
    QueryEngine flat(base, HierarchyOptions{}, fopt);
    flat_row.build_seconds = flat_build.ElapsedSeconds();
    const LockstepAnswers reference =
        RunLockstep(flat, base, sizes, lockstep_pairs);
    RunThroughput<QueryEngine, QueryResult>(flat, base, sizes, &flat_row);
    std::printf("%-6s %6s %7u %9.3f %10.1f %10.1f %8.2f %8.2f %11.3f "
                "%11.3f %9" PRIu64 " %9" PRIu64 " %6" PRIu64 "\n",
                BackendName(kind), "flat", 1, flat_row.build_seconds,
                flat_row.qps, flat_row.qps_batch, flat_row.p50,
                flat_row.p99, flat_row.publish_micros_per_epoch, 0.0,
                flat_row.lockstep_mismatches, flat_row.audit_mismatches,
                flat_row.batch_mismatches);
    rows.push_back(flat_row);

    for (uint32_t k : shard_counts) {
      ConfigRow row;
      row.kind = kind;
      row.target_shards = k;
      ShardedEngineOptions sopt;
      sopt.backend = kind;
      sopt.target_shards = k;
      sopt.num_query_threads = 4;
      sopt.max_batch_size = sizes.batch_size;
      sopt.result_cache_entries = 1 << 15;
      Timer build_timer;
      ShardedEngine engine(base, HierarchyOptions{}, sopt);
      row.build_seconds = build_timer.ElapsedSeconds();
      row.num_shards = engine.num_shards();
      row.boundary_vertices = engine.layout().num_boundary();

      const LockstepAnswers got =
          RunLockstep(engine, base, sizes, lockstep_pairs);
      row.lockstep_mismatches = CountMismatches(reference, got);
      RunThroughput<ShardedEngine, ShardedQueryResult>(engine, base, sizes,
                                                       &row);
      RunLocalized(engine, base, sizes, &row);
      std::printf("%-6s %6s %7u %9.3f %10.1f %10.1f %8.2f %8.2f %11.3f "
                  "%11.3f %9" PRIu64 " %9" PRIu64 " %6" PRIu64 "\n",
                  BackendName(kind), "shard", row.num_shards,
                  row.build_seconds, row.qps, row.qps_batch, row.p50,
                  row.p99, row.publish_micros_per_epoch,
                  row.overlay_micros_per_epoch, row.lockstep_mismatches,
                  row.audit_mismatches, row.batch_mismatches);
      std::printf("    localized: overlay us/epoch=%.1f repair us=%.1f "
                  "rows repaired=%.1f of %.0f  repaired epochs=%" PRIu64
                  "/%" PRIu64 "  row cache hit=%.2f  mismatches=%" PRIu64
                  "\n",
                  row.localized_overlay_micros, row.localized_repair_micros,
                  row.localized_rows_repaired, row.localized_rows_total,
                  row.localized_repaired_epochs, row.localized_epochs,
                  row.boundary_row_cache_hit_rate,
                  row.localized_mismatches);
      rows.push_back(row);
    }
  }

  WriteJson("BENCH_sharded.json", cfg, sizes.grid_side, n,
            base.NumEdges(), sizes, rows);

  if (!check) return 0;

  // ---- CI guard: structural invariants only, no timing flakiness. ----
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GUARD FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(rows.size() == std::size(backends) * (1 + std::size(shard_counts)),
         "every configuration must produce a row");
  for (const ConfigRow& r : rows) {
    expect(r.lockstep_mismatches == 0,
           "sharded answers must be bit-identical to the flat engine");
    expect(r.audit_mismatches == 0,
           "every concurrent answer must match Dijkstra on its epoch");
    expect(r.batch_mismatches == 0,
           "the batch path must be bit-identical to per-query serving "
           "on its pinned epoch");
    expect(r.epochs >= 1, "every configuration must publish epochs");
    if (r.target_shards > 0) {
      expect(r.num_shards >= r.target_shards,
             "the partition must reach the requested shard count");
      expect(r.boundary_vertices > 0,
             "a multi-shard cut must produce boundary vertices");
      expect(r.localized_mismatches == 0,
             "localized (repaired) epochs must serve exact answers");
      expect(r.localized_epochs >= 1,
             "the localized phase must publish epochs");
      if (r.num_shards >= 4) {
        // At k >= 4 one cell's boundary set is a small fraction of S,
        // so single-cell epochs must mostly take the repair path and
        // recompute strictly fewer rows than the table has. (At k = 2
        // a single cell touches most of S and the threshold fallback
        // is the correct behaviour.)
        expect(r.localized_repaired_epochs * 2 >= r.localized_epochs,
               "single-cell epochs at k >= 4 must mostly repair "
               "(strictly fewer rows recomputed than n) instead of "
               "rebuilding from scratch");
      }
    }
  }
  if (failures == 0) std::printf("\nall sharded guards passed\n");
  return failures == 0 ? 0 : 1;
}
