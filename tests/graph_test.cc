#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace stl {
namespace {

using testing_util::MakeGraph;
using testing_util::TwoComponentGraph;

TEST(GraphTest, EmptyGraph) {
  Result<Graph> g = Graph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumVertices(), 0u);
  EXPECT_EQ(g.value().NumEdges(), 0u);
  EXPECT_TRUE(IsConnected(g.value()));
}

TEST(GraphTest, BasicAccessors) {
  Graph g = MakeGraph(4, {{0, 1, 5}, {1, 2, 7}, {0, 2, 3}, {2, 3, 1}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.Degree(3), 1u);
}

TEST(GraphTest, AdjacencySortedByHead) {
  Graph g = MakeGraph(5, {{2, 4, 1}, {2, 0, 1}, {2, 3, 1}, {2, 1, 1}});
  auto arcs = g.ArcsOf(2);
  ASSERT_EQ(arcs.size(), 4u);
  for (size_t i = 0; i + 1 < arcs.size(); ++i) {
    EXPECT_LT(arcs[i].head, arcs[i + 1].head);
  }
}

TEST(GraphTest, ArcWeightsMirrorEdges) {
  Graph g = MakeGraph(3, {{0, 1, 5}, {1, 2, 9}});
  for (Vertex v = 0; v < 3; ++v) {
    for (const Arc& a : g.ArcsOf(v)) {
      EXPECT_EQ(a.weight, g.EdgeWeight(a.edge));
    }
  }
}

TEST(GraphTest, SetEdgeWeightUpdatesBothDirections) {
  Graph g = MakeGraph(3, {{0, 1, 5}, {1, 2, 9}});
  auto e = g.FindEdge(0, 1);
  ASSERT_TRUE(e.has_value());
  g.SetEdgeWeight(*e, 100);
  EXPECT_EQ(g.EdgeWeight(*e), 100u);
  for (const Arc& a : g.ArcsOf(0)) {
    if (a.head == 1) {
      EXPECT_EQ(a.weight, 100u);
    }
  }
  for (const Arc& a : g.ArcsOf(1)) {
    if (a.head == 0) {
      EXPECT_EQ(a.weight, 100u);
    }
  }
}

TEST(GraphTest, FindEdgeBothDirectionsAndMissing) {
  Graph g = MakeGraph(4, {{0, 1, 5}, {1, 2, 9}});
  EXPECT_TRUE(g.FindEdge(0, 1).has_value());
  EXPECT_TRUE(g.FindEdge(1, 0).has_value());
  EXPECT_EQ(g.FindEdge(0, 1), g.FindEdge(1, 0));
  EXPECT_FALSE(g.FindEdge(0, 2).has_value());
  EXPECT_FALSE(g.FindEdge(0, 0).has_value());
  EXPECT_FALSE(g.FindEdge(0, 99).has_value());
}

TEST(GraphTest, RejectsSelfLoop) {
  Result<Graph> g = Graph::FromEdges(3, {{1, 1, 5}});
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 3, 5}});
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsZeroWeight) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 1, 0}});
  ASSERT_FALSE(g.ok());
}

TEST(GraphTest, RejectsOversizedWeight) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 1, kMaxEdgeWeight + 1}});
  ASSERT_FALSE(g.ok());
}

TEST(GraphTest, RejectsDuplicateEdges) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 1, 5}, {1, 0, 7}});
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("duplicate"), std::string::npos);
}

TEST(GraphDeathTest, SetEdgeWeightValidatesRange) {
  Graph g = MakeGraph(3, {{0, 1, 5}});
  EXPECT_DEATH(g.SetEdgeWeight(0, 0), "out of range");
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = TwoComponentGraph();
  auto [comp, num] = ConnectedComponents(g);
  EXPECT_EQ(num, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(IsConnected(g));
}

TEST(GraphTest, ExtractLargestComponent) {
  Graph g = TwoComponentGraph();
  auto [largest, remap] = ExtractLargestComponent(g);
  EXPECT_EQ(largest.NumVertices(), 3u);
  EXPECT_EQ(largest.NumEdges(), 3u);
  EXPECT_TRUE(IsConnected(largest));
  EXPECT_EQ(remap[3], UINT32_MAX);
  EXPECT_EQ(remap[4], UINT32_MAX);
  EXPECT_NE(remap[0], UINT32_MAX);
}

TEST(GraphTest, IsolatedVerticesAreComponents) {
  Graph g = MakeGraph(4, {{0, 1, 2}});
  auto [comp, num] = ConnectedComponents(g);
  (void)comp;
  EXPECT_EQ(num, 3u);
}

TEST(GraphTest, MemoryBytesNonTrivial) {
  Graph g = MakeGraph(3, {{0, 1, 5}, {1, 2, 9}});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(GraphTest, CopyOnWriteIsolatesCopiesFromWeightWrites) {
  Graph g = testing_util::SmallRoadNetwork(12, 41);
  const uint32_t m = g.NumEdges();
  Rng rng(41);
  std::vector<Graph> copies;
  std::vector<std::vector<Weight>> frozen;
  for (int round = 0; round < 6; ++round) {
    copies.push_back(g);  // structural share: chunk refcount bumps
    std::vector<Weight> w(m);
    for (EdgeId e = 0; e < m; ++e) w[e] = g.EdgeWeight(e);
    frozen.push_back(std::move(w));
    for (int i = 0; i < 20; ++i) {
      g.SetEdgeWeight(static_cast<EdgeId>(rng.NextBounded(m)),
                      1 + static_cast<Weight>(rng.NextBounded(900)));
    }
    // Every older copy still reads its captured weights, through both
    // the edge table and the mirrored arcs.
    for (size_t c = 0; c < copies.size(); ++c) {
      for (EdgeId e = 0; e < m; ++e) {
        ASSERT_EQ(copies[c].EdgeWeight(e), frozen[c][e]) << "copy " << c;
      }
      for (Vertex v = 0; v < copies[c].NumVertices(); v += 7) {
        for (const Arc& a : copies[c].ArcsOf(v)) {
          ASSERT_EQ(a.weight, frozen[c][a.edge]);
        }
      }
    }
  }
  EXPECT_GT(g.cow_stats().chunks_cloned, 0u);
  EXPECT_GT(g.cow_stats().bytes_cloned, 0u);
}

TEST(GraphTest, SoleOwnerWritesDoNotClone) {
  Graph g = testing_util::SmallRoadNetwork(8, 43);
  const uint64_t cloned0 = g.cow_stats().chunks_cloned;
  g.SetEdgeWeight(0, 123);
  // No copy shares the chunks, so the write lands in place.
  EXPECT_EQ(g.cow_stats().chunks_cloned, cloned0);
  {
    Graph copy = g;
    g.SetEdgeWeight(0, 124);  // now shared: must clone
    EXPECT_GT(g.cow_stats().chunks_cloned, cloned0);
    EXPECT_EQ(copy.EdgeWeight(0), 123u);
  }
  // The copy died; the next write touches already-detached chunks.
  const uint64_t cloned1 = g.cow_stats().chunks_cloned;
  g.SetEdgeWeight(0, 125);
  EXPECT_EQ(g.cow_stats().chunks_cloned, cloned1);
}

TEST(GraphTest, DeepCopyDetachesEverything) {
  Graph g = testing_util::SmallRoadNetwork(8, 44);
  Graph deep = g.DeepCopy();
  g.SetEdgeWeight(1, 777);
  EXPECT_NE(deep.EdgeWeight(1), 777u);
  // A deep copy triggers no CoW clone on the source's next write.
  EXPECT_EQ(g.cow_stats().chunks_cloned, 0u);
}

TEST(GraphTest, ResidentBytesDeduplicatesSharedChunks) {
  Graph g = testing_util::SmallRoadNetwork(12, 45);
  std::unordered_set<const void*> seen;
  const uint64_t solo = g.AddResidentBytes(&seen);
  EXPECT_GT(solo, 0u);
  Graph copy = g;  // shares everything
  const uint64_t extra = copy.AddResidentBytes(&seen);
  // Only the per-copy pointer tables are new.
  EXPECT_LT(extra, solo / 4);
  g.SetEdgeWeight(0, 42);  // detaches a few chunks
  std::unordered_set<const void*> seen2;
  uint64_t both = g.AddResidentBytes(&seen2);
  both += copy.AddResidentBytes(&seen2);
  EXPECT_GT(both, solo);          // the detached chunks are extra
  EXPECT_LT(both, 2 * solo);      // but far from a full second graph
}

TEST(GraphTest, EdgeViewMatchesGetEdge) {
  Graph g = testing_util::SmallRoadNetwork(9, 46);
  EdgeId id = 0;
  for (const Edge& e : g.edges()) {
    const Edge& want = g.GetEdge(id);
    ASSERT_EQ(e.u, want.u);
    ASSERT_EQ(e.v, want.v);
    ASSERT_EQ(e.w, want.w);
    ASSERT_EQ(&e, &g.edges()[id]);  // references point into the chunks
    ++id;
  }
  EXPECT_EQ(id, g.NumEdges());
  EXPECT_EQ(g.edges().size(), g.NumEdges());
}

}  // namespace
}  // namespace stl
