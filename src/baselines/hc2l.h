// HC2L baseline [12]: Hierarchical Cut 2-hop Labelling, the static
// state of the art the paper compares against (Section 3.2).
//
// Differences from STL, mirrored here faithfully:
//   * When a cut C splits a region H, each component keeps *distance-
//     preserving shortcuts*: a clique over the component's boundary
//     vertices weighted with d_H, so that distances inside the component
//     equal distances in G. Cuts at deeper levels are computed on the
//     augmented (denser) subgraphs — hence larger cuts and labels.
//   * Labels store distances in the *full graph* (equal to distances in
//     the augmented subgraphs).
//   * A query scans only the hubs of the LCA *node's* cut (Equation 2) —
//     fewer hubs than STL's all-common-ancestors scan, which is why HC2L
//     wins slightly on short/medium queries (Figure 9).
//   * The shortcut weights depend on the edge weights, so the hierarchy is
//     not stable under weight updates: HC2L is a static index (the paper
//     gives no maintenance algorithm for it, and neither do we).
//
// Tail pruning from [12] is omitted (DESIGN.md §3).
#ifndef STL_BASELINES_HC2L_H_
#define STL_BASELINES_HC2L_H_

#include <cstdint>
#include <vector>

#include "core/labelling.h"
#include "core/tree_hierarchy.h"
#include "graph/graph.h"
#include "partition/bisection.h"

namespace stl {

/// Static HC2L index.
class Hc2lIndex {
 public:
  /// Builds the index (hierarchy over augmented subgraphs + labels).
  static Hc2lIndex Build(const Graph& g, const HierarchyOptions& options);

  /// Distance query over the LCA node's cut (Equation 2).
  Weight Query(Vertex s, Vertex t) const;

  const TreeHierarchy& hierarchy() const { return hierarchy_; }
  uint64_t TotalLabelEntries() const { return labels_.TotalEntries(); }
  uint64_t MemoryBytes() const {
    return labels_.MemoryBytes() + hierarchy_.MemoryBytes();
  }
  uint64_t NumShortcutsAdded() const { return shortcuts_added_; }
  double build_seconds() const { return build_seconds_; }

 private:
  Hc2lIndex() = default;

  TreeHierarchy hierarchy_;
  Labelling labels_;
  uint64_t shortcuts_added_ = 0;
  double build_seconds_ = 0;
};

}  // namespace stl

#endif  // STL_BASELINES_HC2L_H_
