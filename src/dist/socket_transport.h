// Over-the-wire transport skeleton. The frame format and its codec are
// real and tested (tests/util_test.cc): every message crosses the
// stream as [u32 length][u64 tag][payload bytes], length covering the
// tag and payload, so a receiver can re-segment a byte stream into
// (tag, payload) pairs without understanding the payload. Actual
// socket plumbing (connect, epoll loop, reconnect) is intentionally
// not wired yet — Send fails with a typed kUnavailable so a router
// configured against it degrades exactly like a router whose replicas
// are all unreachable, and the conformance suite pins the behaviour
// until the real implementation lands (ROADMAP "distributed shard
// tier").
#ifndef STL_DIST_SOCKET_TRANSPORT_H_
#define STL_DIST_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dist/transport.h"
#include "util/status.h"

namespace stl {

/// One decoded stream frame: the opaque tag plus the message payload.
struct WireFrame {
  uint64_t tag = 0;              ///< Echoed request/response tag.
  std::vector<uint8_t> payload;  ///< Encoded ShardRequest/ShardResponse.
};

/// Encodes one frame as [u32 length][u64 tag][payload], appending to
/// `out` (stream framing: frames concatenate back-to-back).
void EncodeFrame(uint64_t tag, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out);

/// Decodes the first complete frame of `[data, data + size)` into
/// `*frame` and sets `*consumed` to its encoded length. An incomplete
/// prefix (short read mid-stream) returns kUnavailable with
/// `*consumed == 0` — retry with more bytes; a malformed length
/// returns kCorruption.
Status DecodeFrame(const uint8_t* data, size_t size, WireFrame* frame,
                   size_t* consumed);

/// The socket-backed Transport. Currently a skeleton: endpoints are
/// named (host:port strings) but never dialled, and Send fails every
/// attempt with a typed kUnavailable — the router's replica-exhaustion
/// path, proven against LoopbackTransport, covers this degradation
/// unchanged.
class SocketTransport final : public Transport {
 public:
  /// A transport that will dial `endpoints` (host:port per entry) once
  /// socket plumbing lands; until then every Send fails kUnavailable.
  explicit SocketTransport(std::vector<std::string> endpoints);

  uint32_t NumEndpoints() const override;

  /// Frames the request (EncodeFrame) and fails the attempt with a
  /// typed kUnavailable: no connection machinery exists yet. Delivery
  /// is inline and exactly once per attempt, like a connect timeout.
  void Send(uint32_t endpoint, uint64_t tag, std::vector<uint8_t> request,
            TransportSink* sink) override;

 private:
  std::vector<std::string> endpoints_;
};

}  // namespace stl

#endif  // STL_DIST_SOCKET_TRANSPORT_H_
