#include "partition/separator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "partition/bisection.h"
#include "tests/test_util.h"

namespace stl {
namespace {

std::vector<Vertex> AllVertices(const Graph& g) {
  std::vector<Vertex> v(g.NumVertices());
  for (Vertex i = 0; i < g.NumVertices(); ++i) v[i] = i;
  return v;
}

/// No edge may connect the two sides once the separator is removed.
void ExpectSeparates(const Graph& g, const SeparatorResult& r) {
  std::set<Vertex> left(r.left.begin(), r.left.end());
  std::set<Vertex> right(r.right.begin(), r.right.end());
  for (const Edge& e : g.edges()) {
    bool lu = left.count(e.u), ru = right.count(e.u);
    bool lv = left.count(e.v), rv = right.count(e.v);
    EXPECT_FALSE((lu && rv) || (ru && lv))
        << "edge " << e.u << "-" << e.v << " crosses the cut";
  }
}

void ExpectPartitions(const std::vector<Vertex>& region,
                      const SeparatorResult& r) {
  std::vector<Vertex> all;
  all.insert(all.end(), r.separator.begin(), r.separator.end());
  all.insert(all.end(), r.left.begin(), r.left.end());
  all.insert(all.end(), r.right.begin(), r.right.end());
  std::sort(all.begin(), all.end());
  std::vector<Vertex> want = region;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(all, want);  // disjoint cover (duplicates would break equality)
}

class SeparatorSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeparatorSeeds, SeparatesAndBalances) {
  Graph g = testing_util::SmallRoadNetwork(14, GetParam());
  SeparatorFinder finder(g, GetParam());
  auto region = AllVertices(g);
  SeparatorResult r = finder.Find(region, 3);
  EXPECT_FALSE(r.separator.empty());
  ExpectSeparates(g, r);
  ExpectPartitions(region, r);
  // BFS-half splitting guarantees both sides at most ~half the region.
  EXPECT_LE(r.left.size(), (region.size() + 1) / 2);
  EXPECT_LE(r.right.size(), (region.size() + 1) / 2);
  // Road-like regions have small separators.
  EXPECT_LT(r.separator.size(), region.size() / 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparatorSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SeparatorTest, TinyRegionOfTwo) {
  Graph g = testing_util::MakeGraph(2, {{0, 1, 3}});
  SeparatorFinder finder(g, 1);
  SeparatorResult r = finder.Find({0, 1}, 2);
  EXPECT_EQ(r.separator.size(), 1u);
  EXPECT_EQ(r.left.size() + r.right.size(), 1u);
}

TEST(SeparatorTest, StarGraphCutsCenter) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v <= 8; ++v) edges.push_back({0, v, 1});
  Graph g = testing_util::MakeGraph(9, edges);
  SeparatorFinder finder(g, 1);
  auto region = AllVertices(g);
  SeparatorResult r = finder.Find(region, 3);
  ExpectSeparates(g, r);
  // The centre is the only vertex cover of any star cut.
  EXPECT_EQ(r.separator.size(), 1u);
  EXPECT_EQ(r.separator[0], 0u);
}

TEST(SeparatorTest, SubRegionOnly) {
  Graph g = testing_util::SmallRoadNetwork(10, 4);
  SeparatorFinder finder(g, 2);
  // Region = first half of the vertices that are connected; use a BFS ball.
  std::vector<Vertex> region;
  auto comps = finder.RegionComponents(AllVertices(g));
  ASSERT_EQ(comps.size(), 1u);
  region.assign(comps[0].begin(), comps[0].begin() + comps[0].size() / 2);
  auto sub = finder.RegionComponents(region);
  // Operate on the largest connected chunk of that region.
  std::sort(sub.begin(), sub.end(), [](const auto& a, const auto& b) {
    return a.size() > b.size();
  });
  if (sub[0].size() >= 2) {
    SeparatorResult r = finder.Find(sub[0], 2);
    ExpectPartitions(sub[0], r);
  }
}

TEST(SeparatorTest, RegionComponentsOnDisconnectedRegion) {
  Graph g = testing_util::TwoComponentGraph();
  SeparatorFinder finder(g, 1);
  auto comps = finder.RegionComponents({0, 1, 2, 3, 4});
  ASSERT_EQ(comps.size(), 2u);
  std::set<size_t> sizes = {comps[0].size(), comps[1].size()};
  EXPECT_TRUE(sizes.count(3) && sizes.count(2));
}

TEST(BisectionTest, EveryVertexInExactlyOneNode) {
  Graph g = testing_util::SmallRoadNetwork(12, 9);
  PartitionTree tree = BuildPartitionTree(g, HierarchyOptions{});
  std::vector<int> seen(g.NumVertices(), 0);
  for (const auto& node : tree.nodes) {
    EXPECT_FALSE(node.vertices.empty());
    for (Vertex v : node.vertices) ++seen[v];
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) EXPECT_EQ(seen[v], 1);
}

TEST(BisectionTest, BalanceRespectsBeta) {
  Graph g = testing_util::SmallRoadNetwork(16, 3);
  HierarchyOptions opt;
  opt.beta = 0.2;
  PartitionTree tree = BuildPartitionTree(g, opt);
  // Subtree vertex counts: child <= (1 - beta) * parent (+1 slack for the
  // vertex-count vs node-count difference in Definition 4.1).
  std::vector<uint64_t> subtree(tree.nodes.size(), 0);
  for (uint32_t id = static_cast<uint32_t>(tree.nodes.size()); id-- > 0;) {
    const auto& n = tree.nodes[id];
    subtree[id] = n.vertices.size();
    if (n.left != PartitionTree::kNoChild) subtree[id] += subtree[n.left];
    if (n.right != PartitionTree::kNoChild) subtree[id] += subtree[n.right];
  }
  for (uint32_t id = 0; id < tree.nodes.size(); ++id) {
    const auto& n = tree.nodes[id];
    for (uint32_t child : {n.left, n.right}) {
      if (child == PartitionTree::kNoChild) continue;
      EXPECT_LE(subtree[child], (1.0 - opt.beta) * subtree[id] + 1)
          << "node " << id;
    }
  }
}

TEST(BisectionTest, DisconnectedGraphHandled) {
  Graph g = testing_util::TwoComponentGraph();
  PartitionTree tree = BuildPartitionTree(g, HierarchyOptions{});
  size_t total = 0;
  for (const auto& n : tree.nodes) total += n.vertices.size();
  EXPECT_EQ(total, g.NumVertices());
}

TEST(BisectionTest, LeafSizeRespected) {
  Graph g = testing_util::SmallRoadNetwork(10, 6);
  HierarchyOptions opt;
  opt.leaf_size = 4;
  PartitionTree tree = BuildPartitionTree(g, opt);
  for (const auto& n : tree.nodes) {
    bool is_leaf = n.left == PartitionTree::kNoChild &&
                   n.right == PartitionTree::kNoChild;
    if (!is_leaf) continue;
    EXPECT_LE(n.vertices.size(), 4u + 1);  // degenerate-split leaves allowed
  }
}

TEST(BisectionTest, SingleVertexGraphIsOneLeaf) {
  Graph g = testing_util::MakeGraph(1, {});
  PartitionTree tree = BuildPartitionTree(g, HierarchyOptions{});
  ASSERT_EQ(tree.nodes.size(), 1u);
  EXPECT_EQ(tree.nodes[0].vertices, std::vector<Vertex>{0});
  EXPECT_EQ(tree.nodes[0].left, PartitionTree::kNoChild);
  EXPECT_EQ(tree.nodes[0].right, PartitionTree::kNoChild);
}

TEST(BisectionTest, EmptyGraphGivesEmptyTree) {
  Graph g = testing_util::MakeGraph(0, {});
  PartitionTree tree = BuildPartitionTree(g, HierarchyOptions{});
  EXPECT_TRUE(tree.nodes.empty());
}

TEST(BisectionTest, GraphSmallerThanLeafCutoffIsOneLeaf) {
  // The whole graph fits under leaf_size: no separator is ever searched
  // and the tree is a single leaf holding every vertex.
  Graph g = GeneratePath(3, 5);
  HierarchyOptions opt;
  opt.leaf_size = 8;
  PartitionTree tree = BuildPartitionTree(g, opt);
  ASSERT_EQ(tree.nodes.size(), 1u);
  EXPECT_EQ(tree.nodes[0].vertices, (std::vector<Vertex>{0, 1, 2}));
}

TEST(BisectionTest, TwoVertexGraphAtMinimumLeafSize) {
  Graph g = testing_util::MakeGraph(2, {{0, 1, 7}});
  HierarchyOptions opt;
  opt.leaf_size = 1;
  PartitionTree tree = BuildPartitionTree(g, opt);
  size_t total = 0;
  for (const auto& n : tree.nodes) total += n.vertices.size();
  EXPECT_EQ(total, 2u);
}

TEST(BisectionTest, PathGraphGivesLogDepth) {
  Graph g = GeneratePath(256, 2);
  PartitionTree tree = BuildPartitionTree(g, HierarchyOptions{});
  // Depth should be logarithmic, far below n.
  std::vector<uint32_t> depth(tree.nodes.size(), 0);
  uint32_t max_depth = 0;
  for (uint32_t id = 0; id < tree.nodes.size(); ++id) {
    const auto& n = tree.nodes[id];
    if (n.parent != PartitionTree::kNoChild) {
      depth[id] = depth[n.parent] + 1;
    }
    max_depth = std::max(max_depth, depth[id]);
  }
  EXPECT_LE(max_depth, 24u);
}

}  // namespace
}  // namespace stl
