// Edge-weight update primitives shared by all dynamic indexes.
//
// The paper considers two update kinds (Section 3): weight increases and
// weight decreases. Structural changes (edge/vertex insert/delete) are
// reduced to weight updates per Section 8: deletion = increase to
// "effectively infinite", insertion requires hierarchy repair and is out
// of scope for the maintenance algorithms benchmarked here.
#ifndef STL_GRAPH_UPDATES_H_
#define STL_GRAPH_UPDATES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace stl {

/// One edge weight change. `old_weight` is the weight before the change;
/// callers fill it so batches can be reverted exactly.
struct WeightUpdate {
  EdgeId edge;
  Weight old_weight;
  Weight new_weight;

  bool IsIncrease() const { return new_weight > old_weight; }
  bool IsDecrease() const { return new_weight < old_weight; }
};

using UpdateBatch = std::vector<WeightUpdate>;

/// Applies all updates to the graph (sets new weights).
void ApplyBatch(Graph* g, const UpdateBatch& batch);

/// Reverts all updates (sets old weights).
void RevertBatch(Graph* g, const UpdateBatch& batch);

/// Returns the batch that undoes `batch` (old and new weights swapped,
/// order reversed so overlapping edges unwind correctly).
UpdateBatch InverseBatch(const UpdateBatch& batch);

/// Splits a batch into its decrease and increase parts (no-ops dropped).
std::pair<UpdateBatch, UpdateBatch> SplitByDirection(
    const UpdateBatch& batch);

}  // namespace stl

#endif  // STL_GRAPH_UPDATES_H_
