// Closed-loop overload bench for the hardened serving core: measures
// what the engine does when offered MORE work than it can serve.
//
// Three phases on one engine (deterministic capacity via an injected
// per-query reader delay, so the numbers do not depend on host speed):
//
//   capacity — closed-loop waves of Submit() futures measure the
//              sustainable qps under the injected service floor.
//   overload — an open-loop submitter paces tagged queries at 2x the
//              measured capacity against a bounded admission queue
//              (reject-new) with a deadline on part of the traffic,
//              while a collector drains the completion queue. Reports
//              shed rate, deadline-miss rate, served/shed latency
//              percentiles, and audits every SERVED answer against
//              Dijkstra (the epoch never moves in this phase).
//   stall    — a 100% writer-stall fault makes the watchdog flip
//              degraded mode; clearing the fault must recover it, and
//              a final audited batch proves serving stayed exact.
//
// Emits BENCH_overload.json. --check turns the run into a CI guard:
//   * zero lost tags, zero double deliveries (exactly-once under shed)
//   * zero served mismatches (overload never corrupts answers)
//   * shed rate > 0 at 2x load (admission control actually engaged)
//   * p99(shed) < p50(served) (rejection is cheaper than service)
//   * degraded mode entered AND recovered around the writer stall
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/fault_injector.h"
#include "engine/query_engine.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace stl {
namespace bench {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Engine shape (recorded in the JSON). Two reader threads with an
// injected 200us service floor give a deterministic capacity around
// 2 / 200us = ~10k qps regardless of host speed.
constexpr int kQueryThreads = 2;
constexpr uint64_t kReaderDelayMicros = 200;
constexpr size_t kQueueBound = 256;
constexpr double kDeadlineFraction = 0.25;  // every 4th query
constexpr int kDeadlineMs = 5;

struct OverloadSizes {
  uint32_t grid_side;
  size_t capacity_queries;  // phase 1 closed-loop total
  size_t overload_queries;  // phase 2 open-loop total
};

OverloadSizes SizesForScale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmall:
      return {24, 3000, 8000};
    case BenchScale::kMedium:
      return {40, 6000, 16000};
    case BenchScale::kLarge:
      return {60, 10000, 32000};
  }
  return {24, 3000, 8000};
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * (v.size() - 1));
  return v[idx];
}

struct OverloadReport {
  double capacity_qps = 0;
  double target_qps = 0;
  size_t submitted = 0;
  size_t served = 0;
  size_t shed = 0;
  size_t deadline_expired = 0;
  double p50_served = 0;
  double p99_served = 0;
  double p50_shed = 0;
  double p99_shed = 0;
  size_t lost_tags = 0;
  size_t double_deliveries = 0;
  size_t served_mismatches = 0;
  bool degraded_entered = false;
  bool recovered = false;
  uint64_t staleness_epochs_peak = 0;
  size_t final_batch_mismatches = 0;
};

void WriteJson(const char* path, const BenchConfig& cfg,
               const OverloadSizes& sizes, uint32_t vertices,
               const OverloadReport& r) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"overload\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", ScaleName(cfg.scale));
  std::fprintf(
      f,
      "  \"workload\": {\"grid_side\": %u, \"vertices\": %u, "
      "\"query_threads\": %d, \"reader_delay_micros\": %" PRIu64
      ", \"max_queued_queries\": %zu, \"admission_policy\": "
      "\"reject_new\", \"deadline_fraction\": %.2f, \"deadline_ms\": %d, "
      "\"capacity_queries\": %zu, \"overload_queries\": %zu},\n",
      sizes.grid_side, vertices, kQueryThreads, kReaderDelayMicros,
      kQueueBound, kDeadlineFraction, kDeadlineMs, sizes.capacity_queries,
      sizes.overload_queries);
  std::fprintf(f, "  \"capacity_qps\": %.1f,\n", r.capacity_qps);
  std::fprintf(f, "  \"target_qps\": %.1f,\n", r.target_qps);
  std::fprintf(
      f,
      "  \"overload\": {\"submitted\": %zu, \"served\": %zu, \"shed\": "
      "%zu, \"deadline_expired\": %zu, \"shed_rate\": %.4f, "
      "\"deadline_miss_rate\": %.4f, \"latency_p50_served_micros\": "
      "%.2f, \"latency_p99_served_micros\": %.2f, "
      "\"latency_p50_shed_micros\": %.2f, \"latency_p99_shed_micros\": "
      "%.2f, \"lost_tags\": %zu, \"double_deliveries\": %zu, "
      "\"served_mismatches\": %zu},\n",
      r.submitted, r.served, r.shed, r.deadline_expired,
      r.submitted > 0 ? static_cast<double>(r.shed) / r.submitted : 0.0,
      r.submitted > 0
          ? static_cast<double>(r.deadline_expired) / r.submitted
          : 0.0,
      r.p50_served, r.p99_served, r.p50_shed, r.p99_shed, r.lost_tags,
      r.double_deliveries, r.served_mismatches);
  std::fprintf(
      f,
      "  \"stall\": {\"degraded_entered\": %s, \"recovered\": %s, "
      "\"staleness_epochs_peak\": %" PRIu64
      ", \"final_batch_mismatches\": %zu}\n",
      r.degraded_entered ? "true" : "false",
      r.recovered ? "true" : "false", r.staleness_epochs_peak,
      r.final_batch_mismatches);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main(bool check) {
  BenchConfig cfg = MakeConfig();
  PrintHeader("Overload: bounded admission, deadlines and degraded mode "
              "at 2x capacity",
              cfg);
  OverloadSizes sizes = SizesForScale(cfg.scale);
  if (check) {
    sizes.grid_side = std::min<uint32_t>(sizes.grid_side, 24);
    sizes.capacity_queries = std::min<size_t>(sizes.capacity_queries, 2000);
    sizes.overload_queries = std::min<size_t>(sizes.overload_queries, 6000);
  }

  RoadNetworkOptions net;
  net.width = sizes.grid_side;
  net.height = sizes.grid_side;
  net.seed = 71;
  Graph base = GenerateRoadNetwork(net);
  const uint32_t n = base.NumVertices();

  SeededFaultInjector faults(71);
  faults.SetRate(FaultSite::kReaderDelay, 1.0);
  faults.SetDelayMicros(FaultSite::kReaderDelay, kReaderDelayMicros);

  EngineOptions opt;
  opt.num_query_threads = kQueryThreads;
  opt.result_cache_entries = 0;  // measure routing, not the memo
  opt.serving.max_queued_queries = kQueueBound;
  opt.serving.admission_policy = AdmissionPolicy::kRejectNew;
  opt.serving.writer_stall_ms = 10;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(base, HierarchyOptions{}, opt);

  OverloadReport report;

  // ---- Phase 1: capacity under the injected service floor.
  // Closed-loop waves well under the admission bound: nothing sheds,
  // the measured qps is what the reader pool can actually sustain.
  {
    engine.ResetStats();
    Rng rng(711);
    std::vector<std::future<QueryResult>> wave;
    constexpr size_t kWave = 64;
    for (size_t i = 0; i < sizes.capacity_queries; i += kWave) {
      const size_t end = std::min(sizes.capacity_queries, i + kWave);
      wave.clear();
      for (size_t j = i; j < end; ++j) {
        wave.push_back(
            engine.Submit({static_cast<Vertex>(rng.NextBounded(n)),
                           static_cast<Vertex>(rng.NextBounded(n))}));
      }
      for (auto& f : wave) f.get();
    }
    report.capacity_qps = engine.Stats().queries_per_second;
  }
  report.target_qps = 2 * report.capacity_qps;
  std::printf("capacity %.0f qps under %" PRIu64
              "us injected service floor; overload target %.0f qps\n",
              report.capacity_qps, kReaderDelayMicros, report.target_qps);

  // ---- Phase 2: open-loop tagged submission at 2x capacity.
  {
    engine.ResetStats();
    Rng rng(712);
    std::vector<QueryPair> pairs;
    pairs.reserve(sizes.overload_queries);
    for (size_t i = 0; i < sizes.overload_queries; ++i) {
      pairs.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n)));
    }
    report.submitted = pairs.size();

    CompletionQueue queue;
    // Collector: drains completions concurrently so the sink never
    // backs up; stops once every tag has been seen (or a 5s silence
    // reports the missing tags as lost instead of hanging the bench).
    std::vector<StatusCode> code(pairs.size(), StatusCode::kOk);
    std::vector<Weight> answer(pairs.size(), kInfDistance);
    std::vector<double> latency(pairs.size(), 0);
    std::vector<uint64_t> epoch_of(pairs.size(), 0);
    std::vector<uint8_t> deliveries(pairs.size(), 0);
    std::atomic<size_t> received{0};
    std::thread collector([&] {
      Completion out[128];
      while (received.load() < pairs.size()) {
        const size_t got = queue.WaitPoll(out, 128, milliseconds(5000));
        if (got == 0) return;  // silence: remaining tags are lost
        for (size_t i = 0; i < got; ++i) {
          const uint64_t tag = out[i].tag;
          if (tag >= pairs.size() || ++deliveries[tag] > 1) {
            ++report.double_deliveries;
            continue;
          }
          code[tag] = out[i].code;
          answer[tag] = out[i].distance;
          latency[tag] = out[i].latency_micros;
          epoch_of[tag] = out[i].epoch;
        }
        received.fetch_add(got);
      }
    });

    // Pace the submitter: a burst every 500us sized for 2x capacity.
    const size_t burst = std::max<size_t>(
        1, static_cast<size_t>(report.target_qps / 2000.0));
    auto next_tick = steady_clock::now();
    for (size_t i = 0; i < pairs.size(); i += burst) {
      const size_t end = std::min(pairs.size(), i + burst);
      for (size_t tag = i; tag < end; ++tag) {
        const Deadline dl = (tag % 4 == 3)
                                ? steady_clock::now() +
                                      milliseconds(kDeadlineMs)
                                : kNoDeadline;
        engine.SubmitTagged(pairs[tag], tag, &queue, dl);
      }
      next_tick += microseconds(500);
      std::this_thread::sleep_until(next_tick);
    }
    collector.join();
    report.lost_tags = pairs.size() - received.load();

    std::vector<double> served_lat, shed_lat;
    for (size_t tag = 0; tag < pairs.size(); ++tag) {
      if (deliveries[tag] == 0) continue;
      switch (code[tag]) {
        case StatusCode::kOk:
          ++report.served;
          served_lat.push_back(latency[tag]);
          break;
        case StatusCode::kOverloaded:
          ++report.shed;
          shed_lat.push_back(latency[tag]);
          break;
        case StatusCode::kDeadlineExceeded:
          ++report.deadline_expired;
          break;
        default:
          break;
      }
    }
    report.p50_served = Percentile(served_lat, 0.5);
    report.p99_served = Percentile(served_lat, 0.99);
    report.p50_shed = Percentile(shed_lat, 0.5);
    report.p99_shed = Percentile(shed_lat, 0.99);

    // Audit every served answer. No updates ran in this phase, so all
    // answers come from the one current snapshot.
    auto snap = engine.CurrentSnapshot();
    Dijkstra dij(snap->graph);
    for (size_t tag = 0; tag < pairs.size(); ++tag) {
      if (deliveries[tag] == 0 || code[tag] != StatusCode::kOk) continue;
      if (epoch_of[tag] != snap->epoch ||
          answer[tag] !=
              dij.Distance(pairs[tag].first, pairs[tag].second)) {
        ++report.served_mismatches;
      }
    }
  }

  // ---- Phase 3: writer stall -> degraded -> recovery.
  {
    faults.Clear();  // drop the reader delay; arm only the stall
    faults.SetRate(FaultSite::kWriterStall, 1.0);
    faults.SetDelayMicros(FaultSite::kWriterStall, 100000);  // 100ms
    engine.EnqueueUpdate(0, std::min<Weight>(
                                base.EdgeWeight(0) * 2 + 1, kMaxEdgeWeight));
    const auto deadline = steady_clock::now() + milliseconds(5000);
    while (steady_clock::now() < deadline) {
      EngineStats s = engine.Stats();
      if (s.degraded) {
        report.degraded_entered = true;
        report.staleness_epochs_peak =
            std::max(report.staleness_epochs_peak, s.staleness_epochs);
        break;
      }
      std::this_thread::sleep_for(milliseconds(1));
    }
    faults.Clear();  // the stall passes
    engine.Flush();
    const auto rec_deadline = steady_clock::now() + milliseconds(5000);
    while (steady_clock::now() < rec_deadline) {
      if (!engine.Stats().degraded) {
        report.recovered = true;
        break;
      }
      std::this_thread::sleep_for(milliseconds(1));
    }

    // Recovery proof: a post-stall batch is fully served and exact for
    // the NEW weights.
    Rng rng(713);
    std::vector<QueryPair> final_pairs;
    for (int i = 0; i < 200; ++i) {
      final_pairs.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                               static_cast<Vertex>(rng.NextBounded(n)));
    }
    QueryEngine::Ticket t = engine.SubmitBatch(final_pairs);
    t.Wait();
    Dijkstra dij(t.snapshot()->graph);
    for (size_t i = 0; i < t.size(); ++i) {
      if (t.code(i) != StatusCode::kOk ||
          t.distance(i) !=
              dij.Distance(final_pairs[i].first, final_pairs[i].second)) {
        ++report.final_batch_mismatches;
      }
    }
  }

  const double shed_rate =
      report.submitted > 0
          ? static_cast<double>(report.shed) / report.submitted
          : 0;
  const double miss_rate =
      report.submitted > 0
          ? static_cast<double>(report.deadline_expired) / report.submitted
          : 0;
  std::printf(
      "\n2x overload: %zu submitted -> %zu served, %zu shed (%.1f%%), "
      "%zu expired (%.1f%%)\n",
      report.submitted, report.served, report.shed, 100 * shed_rate,
      report.deadline_expired, 100 * miss_rate);
  std::printf("served p50/p99 %.0f/%.0f us; shed p50/p99 %.0f/%.0f us\n",
              report.p50_served, report.p99_served, report.p50_shed,
              report.p99_shed);
  std::printf(
      "lost tags %zu, double deliveries %zu, served mismatches %zu\n",
      report.lost_tags, report.double_deliveries,
      report.served_mismatches);
  std::printf(
      "stall: degraded=%s recovered=%s staleness_peak=%" PRIu64
      " final batch mismatches %zu\n",
      report.degraded_entered ? "yes" : "no",
      report.recovered ? "yes" : "no", report.staleness_epochs_peak,
      report.final_batch_mismatches);

  WriteJson("BENCH_overload.json", cfg, sizes, n, report);

  if (!check) return 0;

  // ---- CI guard: the robustness contract, not timing. ----
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GUARD FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(report.lost_tags == 0,
         "every submitted tag must be delivered (zero lost tags)");
  expect(report.double_deliveries == 0,
         "no tag may be delivered twice (exactly-once under shed)");
  expect(report.served_mismatches == 0,
         "overload must never corrupt a served answer");
  expect(report.shed > 0,
         "2x load against a bounded queue must shed work");
  expect(report.served > 0, "admitted work must still be answered");
  expect(report.p99_shed < report.p50_served,
         "rejection must be cheaper than service (p99 shed < p50 served)");
  expect(report.degraded_entered,
         "the writer stall must flip degraded mode");
  expect(report.recovered,
         "clearing the stall must recover from degraded mode");
  expect(report.final_batch_mismatches == 0,
         "post-recovery serving must be exact");
  if (failures == 0) std::printf("\nall overload guards passed\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace stl

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  return stl::bench::Main(check);
}
