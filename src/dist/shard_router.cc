#include "dist/shard_router.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "partition/cells.h"
#include "util/logging.h"
#include "util/simd.h"

namespace stl {

namespace {

/// Saturates the three-term routing sums back into the Weight range —
/// the same clamp as the in-process router (bit-identity requires the
/// identical arithmetic range).
inline Weight ClampInf(uint64_t d) {
  return d >= kInfDistance ? kInfDistance : static_cast<Weight>(d);
}

ServingCoreOptions RouterCoreOptions(const ShardRouterOptions& options) {
  ServingCoreOptions core;
  core.num_query_threads = options.num_query_threads;
  core.max_batch_size = options.max_batch_size;
  core.result_cache_entries = options.result_cache_entries;
  core.serving = options.serving;
  return core;
}

}  // namespace

// --------------------------------------------------------- RouterScratch

// Per-call (Route) / per-chunk (RouteSpan) memo of replica-fetched rows
// and the current group's inner vector — the routed twin of the
// in-process BatchRouteScratch. A fetch that exhausted every replica is
// memoised too (nullopt), so one dead shard fails each query of the
// group once instead of re-fanning per query.
struct ShardRouter::RouterScratch {
  // (vertex << 32 | shard) -> fetched row; nullopt = replica-exhausted.
  std::unordered_map<uint64_t, std::optional<std::vector<Weight>>> rows;
  // The last group's inner vector min_{b2} D[b1][b2] + dt[b2].
  uint64_t inner_cs = ~uint64_t{0};
  uint64_t inner_ct = ~uint64_t{0};
  Vertex inner_t = 0;
  bool inner_ok = false;
  std::vector<Weight> inner;

  const std::vector<Weight>* Row(ShardRouter* router,
                                 const ShardedSnapshot& snap,
                                 uint32_t shard, Vertex v) {
    const uint64_t key = (static_cast<uint64_t>(v) << 32) | shard;
    auto [it, fresh] = rows.try_emplace(key);
    if (fresh) {
      std::vector<Weight> row;
      if (router->FetchRow(snap, shard, v, &row)) {
        it->second = std::move(row);
      }
    }
    return it->second ? &*it->second : nullptr;
  }

  const std::vector<Weight>* Inner(ShardRouter* router,
                                   const ShardedSnapshot& snap,
                                   uint32_t cs, uint32_t ct, Vertex t) {
    if (inner_cs != cs || inner_ct != ct || inner_t != t) {
      inner_cs = cs;
      inner_ct = ct;
      inner_t = t;
      inner_ok = false;
      const std::vector<Weight>* dt = Row(router, snap, ct, t);
      if (dt != nullptr) {
        const ShardLayout::Shard& sshard = snap.layout->shards[cs];
        inner.resize(sshard.boundary_pos.size());
        // Same packed-row min-plus entry point as the in-process
        // batched router: identical arithmetic, identical bytes.
        snap.overlay->MinPlusRowsInto(
            ct, sshard.boundary_pos.data(),
            static_cast<uint32_t>(sshard.boundary_pos.size()), dt->data(),
            inner.data());
        inner_ok = true;
      }
    }
    return inner_ok ? &inner : nullptr;
  }
};

// -------------------------------------------------------------- Mailbox

uint64_t ShardRouter::Mailbox::Register(std::shared_ptr<Call> call) {
  const uint64_t tag = next_tag_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  calls_.emplace(tag, std::move(call));
  return tag;
}

void ShardRouter::Mailbox::Wait(Call* call) {
  std::unique_lock<std::mutex> lock(call->mu);
  call->cv.wait(lock, [call] { return call->done; });
}

void ShardRouter::Mailbox::OnResponse(uint64_t tag, Status transport_status,
                                      std::vector<uint8_t> payload) {
  std::shared_ptr<Call> call;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = calls_.find(tag);
    if (it == calls_.end()) {
      // The tag was already settled: a transport duplicate. The
      // one-shot claim (erase-on-first-delivery) absorbs it here, so
      // it can never double-complete a user query.
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    call = std::move(it->second);
    calls_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(call->mu);
    call->status = std::move(transport_status);
    call->payload = std::move(payload);
    call->done = true;
  }
  call->cv.notify_all();
}

// ---------------------------------------------------------- ShardRouter

ShardRouter::ShardRouter(Graph graph,
                         const HierarchyOptions& hierarchy_options,
                         const ShardRouterOptions& options,
                         Transport* transport,
                         std::vector<ShardReplica*> replicas)
    : options_(options),
      transport_(transport),
      replicas_(std::move(replicas)),
      engine_(std::move(graph), hierarchy_options, options.engine),
      core_(&policy_, RouterCoreOptions(options)) {
  STL_CHECK(transport_ != nullptr);
  core_.Start();  // installs + publishes the inner epoch 0
}

ShardRouter::~ShardRouter() = default;  // core_ drains first, then engine_

std::future<ShardedQueryResult> ShardRouter::Submit(QueryPair query,
                                                    Deadline deadline) {
  return core_.Submit(query, deadline);
}

ShardRouter::Ticket ShardRouter::SubmitBatch(
    const std::vector<QueryPair>& queries, Deadline deadline) {
  return core_.SubmitBatch(queries, deadline);
}

void ShardRouter::SubmitTagged(QueryPair query, uint64_t tag,
                               CompletionSink* sink, Deadline deadline) {
  core_.SubmitTagged(query, tag, sink, deadline);
}

ShardRouter::Ticket ShardRouter::SubmitBatchTagged(
    const std::vector<QueryPair>& queries,
    const std::vector<uint64_t>& tags, CompletionSink* sink,
    Deadline deadline) {
  return core_.SubmitBatchTagged(queries, tags, sink, deadline);
}

void ShardRouter::EnqueueUpdate(EdgeId edge, Weight new_weight) {
  core_.EnqueueUpdate(edge, new_weight);
}

void ShardRouter::EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
  core_.EnqueueUpdates(updates);
}

void ShardRouter::Flush() { core_.Flush(); }

std::shared_ptr<const ShardedSnapshot> ShardRouter::CurrentSnapshot()
    const {
  return core_.CurrentSnapshot();
}

RouterStats ShardRouter::Stats() const {
  RouterStats s;
  s.serving = core_.Stats();
  s.replicas = transport_->NumEndpoints();
  s.rpcs_sent = rpcs_sent_.load(std::memory_order_relaxed);
  s.rpc_retries = rpc_retries_.load(std::memory_order_relaxed);
  s.rpc_stale_responses = rpc_stale_.load(std::memory_order_relaxed);
  s.rpc_failovers = rpc_failovers_.load(std::memory_order_relaxed);
  s.rpc_duplicates_dropped = mailbox_.duplicates_dropped();
  return s;
}

void ShardRouter::ResetStats() {
  core_.ResetStats();
  rpcs_sent_.store(0, std::memory_order_relaxed);
  rpc_retries_.store(0, std::memory_order_relaxed);
  rpc_stale_.store(0, std::memory_order_relaxed);
  rpc_failovers_.store(0, std::memory_order_relaxed);
  mailbox_.ResetCounters();
}

void ShardRouter::InstallAndPublish(
    std::shared_ptr<const ShardedSnapshot> snap) {
  // Install BEFORE publish: once a reader can pin this epoch, every
  // replica already holds it, so a fresh query never fails on a
  // version that merely hasn't propagated yet.
  for (ShardReplica* r : replicas_) r->Install(snap);
  core_.Publish(std::move(snap));
}

bool ShardRouter::CallReplica(const ShardRequest& req,
                              ShardResponse* resp) {
  const uint32_t n = transport_->NumEndpoints();
  if (n == 0) return false;
  const std::vector<uint8_t> encoded = req.Encode();
  // Round-robin fan-out start spreads load across siblings; every
  // replica still gets tried before the query gives up.
  const uint32_t start =
      next_replica_.fetch_add(1, std::memory_order_relaxed) % n;
  for (uint32_t k = 0; k < n; ++k) {
    const uint32_t endpoint = (start + k) % n;
    rpcs_sent_.fetch_add(1, std::memory_order_relaxed);
    if (k > 0) rpc_retries_.fetch_add(1, std::memory_order_relaxed);
    auto call = std::make_shared<Mailbox::Call>();
    const uint64_t tag = mailbox_.Register(call);
    transport_->Send(endpoint, tag, encoded, &mailbox_);
    Mailbox::Wait(call.get());
    if (call->status.ok()) {
      ShardResponse r;
      const Status decoded =
          ShardResponse::Decode(call->payload.data(),
                                call->payload.size(), &r);
      // Only a kOk answer at the EXACT pinned (shard, shard_epoch) is
      // usable — anything else (stale replica, malformed bytes) fails
      // over to the next sibling.
      if (decoded.ok() && r.code == StatusCode::kOk &&
          r.shard == req.shard && r.shard_epoch == req.shard_epoch) {
        if (k > 0) rpc_failovers_.fetch_add(1, std::memory_order_relaxed);
        *resp = std::move(r);
        return true;
      }
    }
    rpc_stale_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

bool ShardRouter::FetchRow(const ShardedSnapshot& snap, uint32_t shard,
                           Vertex global, std::vector<Weight>* out) {
  ShardRequest req;
  req.kind = WireKind::kBoundaryRow;
  req.shard = shard;
  req.shard_epoch = snap.shards[shard]->shard_epoch;  // the pinned epoch
  req.u = global;
  ShardResponse resp;
  if (!CallReplica(req, &resp)) return false;
  const size_t width = snap.layout->shards[shard].boundary_local.size();
  if (resp.row.size() != width) return false;  // malformed: wrong |S_i|
  *out = std::move(resp.row);
  return true;
}

bool ShardRouter::FetchPoint(const ShardedSnapshot& snap, uint32_t shard,
                             Vertex s, Vertex t, Weight* out) {
  ShardRequest req;
  req.kind = WireKind::kPointQuery;
  req.shard = shard;
  req.shard_epoch = snap.shards[shard]->shard_epoch;  // the pinned epoch
  req.u = s;
  req.v = t;
  ShardResponse resp;
  if (!CallReplica(req, &resp)) return false;
  *out = resp.distance;
  return true;
}

Weight ShardRouter::RouteOne(const ShardedSnapshot& snap, Vertex s,
                             Vertex t, RouterScratch* scratch,
                             StatusCode* code) {
  // The in-process router's decomposition verbatim (bit-identity), with
  // ds/dt rows and the same-cell point distance fetched from replicas
  // at the snapshot's pinned per-shard epochs. The overlay reduction
  // runs router-side on the pinned epoch's table.
  const ShardLayout& lay = *snap.layout;
  STL_DCHECK(s < lay.shard_of_vertex.size());
  STL_DCHECK(t < lay.shard_of_vertex.size());
  if (s == t) return 0;
  const uint32_t cs = lay.shard_of_vertex[s];
  const uint32_t ct = lay.shard_of_vertex[t];
  const bool s_boundary = cs == CellPartition::kBoundaryCell;
  const bool t_boundary = ct == CellPartition::kBoundaryCell;

  if (s_boundary && t_boundary) {
    // Both endpoints are separator vertices: the pinned overlay already
    // holds the exact distance — no replica involved.
    return snap.overlay->At(lay.boundary_pos_of_vertex[s],
                            lay.boundary_pos_of_vertex[t]);
  }

  uint64_t best = kInfDistance;
  if (!s_boundary && !t_boundary && cs == ct) {
    // Same cell: the shard-internal distance comes from a replica; the
    // boundary-detour alternative is still covered by the general case
    // below (D[b][b] = 0 makes touch-and-return a special case of it).
    Weight d = kInfDistance;
    if (!FetchPoint(snap, cs, s, t, &d)) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    best = d;
  }

  if (s_boundary) {
    const std::vector<Weight>* dt = scratch->Row(this, snap, ct, t);
    if (dt == nullptr) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    const uint32_t pos = lay.boundary_pos_of_vertex[s];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(ct, pos), dt->data(),
                            static_cast<uint32_t>(dt->size())));
  } else if (t_boundary) {
    const std::vector<Weight>* ds = scratch->Row(this, snap, cs, s);
    if (ds == nullptr) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    const uint32_t pos = lay.boundary_pos_of_vertex[t];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(cs, pos), ds->data(),
                            static_cast<uint32_t>(ds->size())));
  } else {
    const std::vector<Weight>* ds = scratch->Row(this, snap, cs, s);
    const std::vector<Weight>* inner =
        scratch->Inner(this, snap, cs, ct, t);
    if (ds == nullptr || inner == nullptr) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    best = std::min<uint64_t>(
        best, MinPlusReduce(ds->data(), inner->data(),
                            static_cast<uint32_t>(ds->size())));
  }
  return ClampInf(best);
}

// ----------------------------------------------------- the router policy

void ShardRouter::Policy::PublishInitial() {
  auto snap = router->engine_.CurrentSnapshot();
  router->last_published_epoch_ = snap->epoch;
  router->InstallAndPublish(std::move(snap));
}

Weight ShardRouter::Policy::ResolveOldWeight(EdgeId e) const {
  // The router is the inner engine's only update source and ApplyBatch
  // flushes synchronously, so the inner snapshot's weights are current
  // as of every batch already routed through us.
  return router->engine_.CurrentSnapshot()->graph.EdgeWeight(e);
}

void ShardRouter::Policy::ApplyBatch(const UpdateBatch& batch) {
  ShardRouter* r = router;
  r->engine_.EnqueueUpdates(batch);
  r->engine_.Flush();
  auto snap = r->engine_.CurrentSnapshot();
  if (snap->epoch == r->last_published_epoch_) return;  // coalesced no-op
  r->last_published_epoch_ = snap->epoch;
  // Router-tier publish accounting (the inner engine allocated the
  // epoch id; this counter is the router's own publish count).
  r->core_.counters().epochs_published.fetch_add(
      1, std::memory_order_relaxed);
  r->InstallAndPublish(std::move(snap));
}

uint32_t ShardRouter::Policy::NumEdges() const {
  return router->engine_.CurrentSnapshot()->graph.NumEdges();
}

Weight ShardRouter::Policy::Route(const ShardedSnapshot& snap, Vertex s,
                                  Vertex t, StatusCode* code) const {
  RouterScratch scratch;
  return router->RouteOne(snap, s, t, &scratch, code);
}

uint64_t ShardRouter::Policy::BatchSortKey(const ShardedSnapshot& snap,
                                           const QueryPair& q) const {
  // Same grouping as the in-process batched router: (source cell,
  // target cell, target) adjacency maximises row/inner reuse.
  const ShardLayout& lay = *snap.layout;
  const uint64_t cs = lay.shard_of_vertex[q.first] & 0xffff;
  const uint64_t ct = lay.shard_of_vertex[q.second] & 0xffff;
  return (cs << 48) | (ct << 32) | q.second;
}

void ShardRouter::Policy::RouteSpan(const ShardedSnapshot& snap,
                                    const QueryPair* queries,
                                    const uint32_t* idx, size_t count,
                                    Weight* out, StatusCode* codes) const {
  RouterScratch scratch;  // shared across the sorted chunk
  for (size_t j = 0; j < count; ++j) {
    const QueryPair& q = queries[idx[j]];
    out[idx[j]] =
        router->RouteOne(snap, q.first, q.second, &scratch, &codes[idx[j]]);
  }
}

void ShardRouter::Policy::AugmentStats(EngineStats* s) const {
  s->backend = router->engine_.backend();
  s->num_shards = router->engine_.num_shards();
  s->boundary_vertices = router->engine_.layout().num_boundary();
}

// ------------------------------------------------------ LoopbackCluster

std::vector<ShardReplica*> LoopbackCluster::replica_ptrs() const {
  std::vector<ShardReplica*> ptrs;
  ptrs.reserve(replicas.size());
  for (const auto& r : replicas) ptrs.push_back(r.get());
  return ptrs;
}

LoopbackCluster MakeLoopbackCluster(
    uint32_t num_replicas, const ShardReplicaOptions& replica_options,
    FaultInjector* faults) {
  LoopbackCluster cluster;
  cluster.transport = std::make_unique<LoopbackTransport>(faults);
  cluster.replicas.reserve(num_replicas);
  for (uint32_t i = 0; i < num_replicas; ++i) {
    cluster.replicas.push_back(
        std::make_unique<ShardReplica>(replica_options));
    ShardReplica* replica = cluster.replicas.back().get();
    cluster.transport->AddEndpoint(
        [replica](const uint8_t* data, size_t size) {
          return replica->Handle(data, size);
        });
  }
  return cluster;
}

}  // namespace stl
