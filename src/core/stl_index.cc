#include "core/stl_index.h"

#include "util/timer.h"

namespace stl {

namespace {
constexpr uint32_t kIndexMagic = 0x53544c31;  // "STL1"
constexpr uint32_t kIndexVersion = 1;
}  // namespace

StlIndex StlIndex::Build(Graph* g, const HierarchyOptions& options) {
  STL_CHECK(g != nullptr);
  StlIndex index(g);
  Timer total;
  Timer phase;
  index.hierarchy_ = TreeHierarchy::Build(*g, options);
  index.build_info_.hierarchy_seconds = phase.ElapsedSeconds();
  phase.Restart();
  index.labels_ =
      BuildLabelling(*g, index.hierarchy_, options.num_threads);
  index.build_info_.labelling_seconds = phase.ElapsedSeconds();
  index.build_info_.total_seconds = total.ElapsedSeconds();
  index.InitEngines();
  return index;
}

void StlIndex::InitEngines() {
  label_search_ = std::make_unique<LabelSearch>(g_, hierarchy_, &labels_);
  pareto_search_ = std::make_unique<ParetoSearch>(g_, hierarchy_, &labels_);
}

void StlIndex::ApplyUpdate(const WeightUpdate& update,
                           MaintenanceStrategy strategy) {
  ApplyBatch(UpdateBatch{update}, strategy);
}

void StlIndex::ApplyBatch(const UpdateBatch& batch,
                          MaintenanceStrategy strategy) {
  switch (strategy) {
    case MaintenanceStrategy::kLabelSearch:
      label_search_->ApplyBatch(batch);
      return;
    case MaintenanceStrategy::kParetoSearch:
      pareto_search_->ApplyBatch(batch);
      return;
  }
  STL_CHECK(false) << "unknown maintenance strategy";
}

UpdateBatch StlIndex::CloseRoad(EdgeId e, MaintenanceStrategy strategy) {
  UpdateBatch closure;
  const Weight w = g_->EdgeWeight(e);
  if (w < kMaxEdgeWeight) {
    closure.push_back(WeightUpdate{e, w, kMaxEdgeWeight});
    ApplyBatch(closure, strategy);
  }
  return closure;
}

UpdateBatch StlIndex::CloseIntersection(Vertex v,
                                        MaintenanceStrategy strategy) {
  UpdateBatch closure;
  for (const Arc& a : g_->ArcsOf(v)) {
    if (a.weight < kMaxEdgeWeight) {
      closure.push_back(WeightUpdate{a.edge, a.weight, kMaxEdgeWeight});
    }
  }
  ApplyBatch(closure, strategy);
  return closure;
}

void StlIndex::ReopenRoads(const UpdateBatch& closure,
                           MaintenanceStrategy strategy) {
  ApplyBatch(InverseBatch(closure), strategy);
}

MaintenanceStats StlIndex::MaintenanceStatsTotal() const {
  MaintenanceStats total = carried_stats_;
  total.Add(label_search_->stats());
  total.Add(pareto_search_->stats());
  return total;
}

Status StlIndex::Save(const std::string& path) const {
  BinaryWriter w;
  Status s = w.Open(path, kIndexMagic, kIndexVersion);
  if (s.ok()) s = w.WritePod(g_->NumVertices());
  if (s.ok()) s = w.WritePod(g_->NumEdges());
  if (s.ok()) s = hierarchy_.Serialize(&w);
  if (s.ok()) s = labels_.Serialize(&w);
  if (s.ok()) s = w.Close();
  return s;
}

Result<StlIndex> StlIndex::Load(Graph* g, const std::string& path) {
  STL_CHECK(g != nullptr);
  BinaryReader r;
  Status s = r.Open(path, kIndexMagic, kIndexVersion);
  if (!s.ok()) return s;
  uint32_t n = 0, m = 0;
  s = r.ReadPod(&n);
  if (s.ok()) s = r.ReadPod(&m);
  if (!s.ok()) return s;
  if (n != g->NumVertices() || m != g->NumEdges()) {
    return Status::InvalidArgument(
        "index file was built for a different graph");
  }
  StlIndex index(g);
  s = index.hierarchy_.Deserialize(&r);
  if (s.ok()) s = index.labels_.Deserialize(&r);
  if (!s.ok()) return s;
  if (index.hierarchy_.NumVertices() != n ||
      index.labels_.NumVertices() != n) {
    return Status::Corruption("index vertex count mismatch");
  }
  index.InitEngines();
  return index;
}

}  // namespace stl
