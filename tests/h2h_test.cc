#include "baselines/h2h.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::RandomUpdate;

TEST(H2hTest, TinyGraphQueries) {
  Graph g = testing_util::MakeGraph(
      4, {{0, 1, 1}, {1, 2, 2}, {0, 2, 5}, {2, 3, 1}});
  H2hIndex h2h = H2hIndex::Build(&g);
  EXPECT_EQ(h2h.Query(0, 0), 0u);
  EXPECT_EQ(h2h.Query(0, 2), 3u);
  EXPECT_EQ(h2h.Query(0, 3), 4u);
  EXPECT_EQ(h2h.Query(3, 1), 3u);
}

TEST(H2hTest, InitialLabelsValidate) {
  Graph g = testing_util::SmallRoadNetwork(10, 1);
  H2hIndex h2h = H2hIndex::Build(&g);
  EXPECT_TRUE(h2h.ValidateLabels());
  EXPECT_GT(h2h.TreeHeight(), 2u);
  EXPECT_GT(h2h.TotalLabelEntries(), g.NumVertices());
}

class H2hSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(H2hSeeds, QueriesMatchDijkstra) {
  Graph g = testing_util::SmallRoadNetwork(12, GetParam());
  Graph ref = g;
  H2hIndex h2h = H2hIndex::Build(&g);
  Dijkstra dij(ref);
  Rng rng(GetParam() * 3 + 2);
  for (int i = 0; i < 250; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    ASSERT_EQ(h2h.Query(s, t), dij.Distance(s, t)) << "s=" << s << " t=" << t;
  }
}

TEST_P(H2hSeeds, IncH2HMaintenanceExact) {
  Graph g = testing_util::SmallRoadNetwork(10, GetParam());
  H2hIndex h2h = H2hIndex::Build(&g);
  Rng rng(GetParam() * 5 + 1);
  for (int round = 0; round < 10; ++round) {
    WeightUpdate u = RandomUpdate(g, &rng);
    h2h.ApplyUpdate(u, H2hIndex::Maintenance::kIncH2H);
    ASSERT_TRUE(h2h.ValidateLabels()) << "round " << round;
  }
}

TEST_P(H2hSeeds, DtdhlMaintenanceExact) {
  Graph g = testing_util::SmallRoadNetwork(10, GetParam());
  H2hIndex h2h = H2hIndex::Build(&g);
  Rng rng(GetParam() * 7 + 3);
  for (int round = 0; round < 10; ++round) {
    WeightUpdate u = RandomUpdate(g, &rng);
    h2h.ApplyUpdate(u, H2hIndex::Maintenance::kDTDHL);
    ASSERT_TRUE(h2h.ValidateLabels()) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, H2hSeeds, ::testing::Values(1, 2, 3, 4, 5));

TEST(H2hTest, IncAndDtdhlProduceSameLabels) {
  Graph g1 = testing_util::SmallRoadNetwork(10, 9);
  Graph g2 = g1;
  H2hIndex a = H2hIndex::Build(&g1);
  H2hIndex b = H2hIndex::Build(&g2);
  Rng rng(9);
  for (int round = 0; round < 10; ++round) {
    WeightUpdate u = RandomUpdate(g1, &rng);
    a.ApplyUpdate(u, H2hIndex::Maintenance::kIncH2H);
    b.ApplyUpdate(u, H2hIndex::Maintenance::kDTDHL);
    Dijkstra dij(g1);
    for (int i = 0; i < 50; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g1.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g1.NumVertices()));
      Weight want = dij.Distance(s, t);
      ASSERT_EQ(a.Query(s, t), want) << "round " << round;
      ASSERT_EQ(b.Query(s, t), want) << "round " << round;
    }
  }
}

TEST(H2hTest, QueriesAfterUpdatesMatchDijkstra) {
  Graph g = testing_util::SmallRoadNetwork(11, 12);
  H2hIndex h2h = H2hIndex::Build(&g);
  Rng rng(12);
  for (int round = 0; round < 8; ++round) {
    WeightUpdate u = RandomUpdate(g, &rng);
    h2h.ApplyUpdate(u, round % 2 ? H2hIndex::Maintenance::kDTDHL
                                 : H2hIndex::Maintenance::kIncH2H);
    Dijkstra dij(g);
    for (int i = 0; i < 60; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      ASSERT_EQ(h2h.Query(s, t), dij.Distance(s, t)) << "round " << round;
    }
  }
}

TEST(H2hTest, IncMemoryLargerThanDtdhl) {
  Graph g = testing_util::SmallRoadNetwork(12, 13);
  H2hIndex h2h = H2hIndex::Build(&g);
  EXPECT_GT(h2h.MemoryBytes(H2hIndex::Maintenance::kIncH2H),
            h2h.MemoryBytes(H2hIndex::Maintenance::kDTDHL));
}

TEST(H2hTest, StatsAccumulate) {
  Graph g = testing_util::SmallRoadNetwork(10, 14);
  H2hIndex h2h = H2hIndex::Build(&g);
  Rng rng(14);
  WeightUpdate u = RandomUpdate(g, &rng);
  h2h.ApplyUpdate(u, H2hIndex::Maintenance::kIncH2H);
  EXPECT_GT(h2h.stats().queue_pops, 0u);
}

TEST(H2hTest, WorksOnRandomTopology) {
  Graph g = GenerateRandomConnectedGraph(120, 90, 1, 25, 15);
  Graph ref = g;
  H2hIndex h2h = H2hIndex::Build(&g);
  Dijkstra dij(ref);
  Rng rng(15);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    ASSERT_EQ(h2h.Query(s, t), dij.Distance(s, t));
  }
}

}  // namespace
}  // namespace stl
