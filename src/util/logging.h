// CHECK-style invariant macros. STL_CHECK is always on; STL_DCHECK only in
// debug builds. Failing a check prints the condition and location and
// aborts — these guard internal invariants, not user input (user input
// errors return Status).
#ifndef STL_UTIL_LOGGING_H_
#define STL_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace stl {
namespace internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Collects an optional streamed message for a failed check, then aborts on
/// destruction. Usage is via the STL_CHECK macro only.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckFailStream() { CheckFailed(file_, line_, expr_, out_.str()); }

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace stl

#define STL_CHECK(cond)                                             \
  if (cond) {                                                       \
  } else /* NOLINT */                                               \
    ::stl::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define STL_CHECK_EQ(a, b) STL_CHECK((a) == (b))
#define STL_CHECK_NE(a, b) STL_CHECK((a) != (b))
#define STL_CHECK_LT(a, b) STL_CHECK((a) < (b))
#define STL_CHECK_LE(a, b) STL_CHECK((a) <= (b))
#define STL_CHECK_GT(a, b) STL_CHECK((a) > (b))
#define STL_CHECK_GE(a, b) STL_CHECK((a) >= (b))

#ifdef NDEBUG
#define STL_DCHECK(cond) \
  if (true) {            \
  } else /* NOLINT */    \
    ::stl::internal::CheckFailStream(__FILE__, __LINE__, #cond)
#else
#define STL_DCHECK(cond) STL_CHECK(cond)
#endif

#endif  // STL_UTIL_LOGGING_H_
