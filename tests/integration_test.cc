// End-to-end tests: every index built over the same network, subjected to
// the same update storm, cross-checked against Dijkstra after each step —
// the full pipeline the benchmarks rely on.
#include <gtest/gtest.h>

#include "baselines/ch.h"
#include "baselines/h2h.h"
#include "baselines/hc2l.h"
#include "core/stl_index.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/query_workload.h"
#include "workload/update_workload.h"

namespace stl {
namespace {

using testing_util::LabelDiffCount;
using testing_util::RandomUpdate;

TEST(IntegrationTest, AllIndexesAgreeStatic) {
  Graph base = testing_util::SmallRoadNetwork(18, 100);
  Graph g_stl = base, g_ch = base, g_h2h = base;
  StlIndex stl_idx = StlIndex::Build(&g_stl, HierarchyOptions{});
  ChIndex ch = ChIndex::Build(&g_ch);
  H2hIndex h2h = H2hIndex::Build(&g_h2h);
  Hc2lIndex hc2l = Hc2lIndex::Build(base, HierarchyOptions{});
  Dijkstra dij(base);
  Rng rng(100);
  for (int i = 0; i < 400; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(base.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(base.NumVertices()));
    Weight want = dij.Distance(s, t);
    ASSERT_EQ(stl_idx.Query(s, t), want);
    ASSERT_EQ(ch.Query(s, t), want);
    ASSERT_EQ(h2h.Query(s, t), want);
    ASSERT_EQ(hc2l.Query(s, t), want);
  }
}

TEST(IntegrationTest, DynamicIndexesAgreeUnderUpdateStorm) {
  Graph base = testing_util::SmallRoadNetwork(13, 200);
  Graph g_p = base, g_l = base, g_h = base;
  StlIndex pareto = StlIndex::Build(&g_p, HierarchyOptions{});
  StlIndex label = StlIndex::Build(&g_l, HierarchyOptions{});
  H2hIndex h2h = H2hIndex::Build(&g_h);
  Rng rng(200);
  Graph shadow = base;  // reference graph receiving the same updates
  for (int round = 0; round < 20; ++round) {
    WeightUpdate u = RandomUpdate(shadow, &rng);
    ApplyBatch(&shadow, {u});
    pareto.ApplyUpdate(u, MaintenanceStrategy::kParetoSearch);
    label.ApplyUpdate(u, MaintenanceStrategy::kLabelSearch);
    h2h.ApplyUpdate(u, H2hIndex::Maintenance::kIncH2H);
    Dijkstra dij(shadow);
    for (int i = 0; i < 40; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(shadow.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(shadow.NumVertices()));
      Weight want = dij.Distance(s, t);
      ASSERT_EQ(pareto.Query(s, t), want) << "round " << round;
      ASSERT_EQ(label.Query(s, t), want) << "round " << round;
      ASSERT_EQ(h2h.Query(s, t), want) << "round " << round;
    }
  }
  // Both STL engines end with byte-identical labels.
  EXPECT_EQ(LabelDiffCount(pareto.labels(), label.labels()), 0u);
}

TEST(IntegrationTest, PaperWorkflowIncreaseThenRestore) {
  // The experimental procedure of Section 7: a batch of x2 increases, then
  // the restoring decreases; the index must return to its original state.
  Graph g = testing_util::SmallRoadNetwork(14, 300);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Labelling original = idx.labels();
  auto edges = SampleDistinctEdges(g, 60, 300);
  UpdateBatch inc = MakeIncreaseBatch(g, edges, 2.0);
  idx.ApplyBatch(inc, MaintenanceStrategy::kParetoSearch);
  UpdateBatch dec = MakeRestoreBatch(inc);
  idx.ApplyBatch(dec, MaintenanceStrategy::kParetoSearch);
  EXPECT_EQ(LabelDiffCount(idx.labels(), original), 0u);

  idx.ApplyBatch(inc, MaintenanceStrategy::kLabelSearch);
  idx.ApplyBatch(dec, MaintenanceStrategy::kLabelSearch);
  EXPECT_EQ(LabelDiffCount(idx.labels(), original), 0u);
}

TEST(IntegrationTest, StratifiedQueriesAnsweredIdentically) {
  Graph base = testing_util::SmallRoadNetwork(16, 400);
  Graph g_stl = base, g_h2h = base;
  StlIndex stl_idx = StlIndex::Build(&g_stl, HierarchyOptions{});
  H2hIndex h2h = H2hIndex::Build(&g_h2h);
  Hc2lIndex hc2l = Hc2lIndex::Build(base, HierarchyOptions{});
  auto sets = StratifiedQuerySets(base, 40, 400);
  Dijkstra dij(base);
  for (const auto& set : sets) {
    for (auto [s, t] : set) {
      Weight want = dij.Distance(s, t);
      ASSERT_EQ(stl_idx.Query(s, t), want);
      ASSERT_EQ(h2h.Query(s, t), want);
      ASSERT_EQ(hc2l.Query(s, t), want);
    }
  }
}

TEST(IntegrationTest, DeterministicBuildAcrossRuns) {
  Graph g1 = testing_util::SmallRoadNetwork(12, 500);
  Graph g2 = testing_util::SmallRoadNetwork(12, 500);
  StlIndex a = StlIndex::Build(&g1, HierarchyOptions{});
  StlIndex b = StlIndex::Build(&g2, HierarchyOptions{});
  EXPECT_TRUE(a.hierarchy() == b.hierarchy());
  EXPECT_EQ(LabelDiffCount(a.labels(), b.labels()), 0u);
}

TEST(IntegrationTest, EdgeDeletionViaLargeIncrease) {
  // Section 8: edge deletion = weight increase to "effectively infinite"
  // (the max edge weight; the label search handles it like any increase).
  Graph g = testing_util::SmallRoadNetwork(10, 600);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Rng rng(600);
  for (int round = 0; round < 5; ++round) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.NumEdges()));
    Weight w = g.EdgeWeight(e);
    if (w >= kMaxEdgeWeight) continue;
    idx.ApplyUpdate(WeightUpdate{e, w, kMaxEdgeWeight},
                    MaintenanceStrategy::kLabelSearch);
    Dijkstra dij(g);
    for (int i = 0; i < 40; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      ASSERT_EQ(idx.Query(s, t), dij.Distance(s, t));
    }
    // Restore.
    idx.ApplyUpdate(WeightUpdate{e, kMaxEdgeWeight, w},
                    MaintenanceStrategy::kParetoSearch);
  }
}

TEST(IntegrationTest, MediumNetworkSanity) {
  // One larger build to catch scaling-only bugs (still < 1s).
  Graph base = testing_util::SmallRoadNetwork(32, 700);
  Graph g = base;
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  EXPECT_GT(idx.hierarchy().Depth(), 5u);
  BidirectionalDijkstra bi(base);
  Rng rng(700);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    ASSERT_EQ(idx.Query(s, t), bi.Distance(s, t));
  }
}

}  // namespace
}  // namespace stl
