// Lock-free latency histogram for the serving path.
//
// HDR-style bucketing: values below 16 ns are exact; above that, each
// power-of-two octave is split into 16 linear sub-buckets, giving a
// worst-case quantile error of ~6% across the full uint64 nanosecond
// range. All counters are relaxed atomics, so Record() is wait-free and
// safe from any number of reader threads; quantile reads see a slightly
// stale but always-consistent-enough view (the usual monitoring
// contract).
#ifndef STL_ENGINE_LATENCY_HISTOGRAM_H_
#define STL_ENGINE_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace stl {

/// Concurrent nanosecond-latency histogram with ~6% quantile resolution.
class LatencyHistogram {
 public:
  /// 16 exact buckets + 16 sub-buckets per octave for msb 4..62.
  static constexpr int kNumBuckets = (62 - 3) * 16 + 16;

  /// An empty histogram.
  LatencyHistogram() = default;

  /// Records one sample. Wait-free; callable concurrently.
  void Record(uint64_t nanos);

  /// Samples recorded so far.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean of all recorded samples in microseconds (0 when empty).
  double MeanMicros() const {
    uint64_t c = Count();
    if (c == 0) return 0.0;
    return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
           (1e3 * static_cast<double>(c));
  }

  /// Largest recorded sample in microseconds (exact, not bucketed).
  double MaxMicros() const {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
           1e3;
  }

  /// Value at quantile q in [0, 1] (q=0.5 is the median). Returns the
  /// geometric midpoint of the bucket holding the q-th sample; 0 when
  /// empty.
  double QuantileMicros(double q) const;

  /// Zeroes every counter. Not atomic with respect to concurrent
  /// Record() calls; call during quiescence (e.g. between bench phases).
  void Reset();

  /// Bucket index of a nanosecond value (exposed for tests).
  static int BucketIndex(uint64_t nanos);
  /// Smallest nanosecond value mapping to bucket `b` (exposed for tests).
  static uint64_t BucketLowerBound(int b);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
};

}  // namespace stl

#endif  // STL_ENGINE_LATENCY_HISTOGRAM_H_
