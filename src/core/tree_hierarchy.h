// Stable tree hierarchy (Definition 4.1): the compact, query-ready form of
// the partition tree.
//
// A stable tree hierarchy is a binary tree T = (N, E, ell) where
//   * ell : V -> N is total and surjective (every vertex sits in exactly
//     one node; every node holds at least one vertex),
//   * children subtrees are balanced (beta-bounded),
//   * every shortest path between s and t passes through a common
//     ancestor of ell(s) and ell(t)  (the separator property).
//
// The hierarchy induces the vertex partial order `⪯` (Definition 4.3):
// w ⪯ v iff ell(w) is a strict ancestor of ell(v), or ell(w) = ell(v) and
// w precedes v in the node's internal order. tau(v) = |{w : w ≺ v}| is
// the label index (Definition 4.4); the label of v has tau(v)+1 entries.
//
// Query machinery: each node carries a 128-bit root-path bitstring
// (bit d = direction taken at depth d). The level of the lowest common
// ancestor of two nodes is the length of the common prefix of their
// bitstrings (computed in O(1) with XOR + count-trailing-zeros), exactly
// the scheme of HC2L [12] that the paper reuses (Section 4).
#ifndef STL_CORE_TREE_HIERARCHY_H_
#define STL_CORE_TREE_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "partition/bisection.h"
#include "util/serialize.h"
#include "util/status.h"

namespace stl {

/// Compact stable tree hierarchy with O(1) LCA-level queries.
class TreeHierarchy {
 public:
  static constexpr uint32_t kNoNode = UINT32_MAX;
  /// Maximum supported tree depth (bitstring capacity).
  static constexpr uint32_t kMaxDepth = 128;

  /// One tree node. Trivially copyable (serialized as a POD block).
  struct Node {
    uint32_t parent;
    uint32_t left;
    uint32_t right;
    uint32_t level;         // root = 0
    uint32_t first_vertex;  // offset into the vertex pool
    uint32_t num_vertices;  // >= 1 (ell is surjective)
    uint32_t cum_vertices;  // vertices on the root path incl. this node
    uint32_t path_offset;   // offset into the node-path pool (level+1 ids)
    uint64_t bits[2];       // root-path bitstring, bit d = turn at depth d
  };

  TreeHierarchy() = default;

  /// Compacts a partition tree into a hierarchy. Checks depth <= kMaxDepth
  /// and surjectivity.
  static TreeHierarchy FromPartitionTree(const Graph& g,
                                         const PartitionTree& tree);

  /// Builds the hierarchy of `g` directly (bisection + compaction).
  static TreeHierarchy Build(const Graph& g, const HierarchyOptions& options);

  uint32_t NumNodes() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t NumVertices() const {
    return static_cast<uint32_t>(node_of_.size());
  }

  const Node& GetNode(uint32_t id) const {
    STL_DCHECK(id < nodes_.size());
    return nodes_[id];
  }
  uint32_t root() const { return root_; }

  /// ell(v): the node holding v.
  uint32_t NodeOf(Vertex v) const {
    STL_DCHECK(v < node_of_.size());
    return node_of_[v];
  }

  /// Label index tau(v) = number of strict predecessors of v under ⪯.
  uint32_t Tau(Vertex v) const {
    STL_DCHECK(v < tau_.size());
    return tau_[v];
  }

  /// Number of entries in v's label: tau(v) + 1 (self entry included).
  uint32_t LabelSize(Vertex v) const { return Tau(v) + 1; }

  /// Vertices mapped to node `id`, in the node-internal ⪯t order.
  std::span<const Vertex> VerticesOf(uint32_t id) const {
    const Node& n = GetNode(id);
    return {vertex_pool_.data() + n.first_vertex,
            vertex_pool_.data() + n.first_vertex + n.num_vertices};
  }

  /// Root path of node `id`: node ids from the root (index 0) down to
  /// `id` itself (index level).
  std::span<const uint32_t> PathOf(uint32_t id) const {
    const Node& n = GetNode(id);
    return {node_path_pool_.data() + n.path_offset,
            node_path_pool_.data() + n.path_offset + n.level + 1};
  }

  /// Level of the lowest common ancestor of ell(s) and ell(t): the common
  /// prefix length of their bitstrings. O(1).
  uint32_t LcaLevel(Vertex s, Vertex t) const;

  /// The LCA node itself.
  uint32_t LcaNode(Vertex s, Vertex t) const {
    return PathOf(NodeOf(s))[LcaLevel(s, t)];
  }

  /// |Anc(s) ∩ Anc(t)|: the number of hub entries a query must scan —
  /// the closed form min(tau(s)+1, tau(t)+1, cum(LCA node)).
  uint32_t CommonAncestorCount(Vertex s, Vertex t) const {
    uint32_t cum = GetNode(LcaNode(s, t)).cum_vertices;
    uint32_t k = std::min(Tau(s), Tau(t)) + 1;
    return std::min(k, cum);
  }

  /// The ancestor vertex at label position `i` of v (i <= tau(v)).
  /// O(log depth) — used by maintenance diagnostics and tests, never on
  /// the query fast path.
  Vertex AncestorAt(Vertex v, uint32_t i) const;

  /// Maximum label size over all vertices: the `h` of Section 6 and the
  /// "Tree Height" column of Table 4.
  uint32_t MaxLabelSize() const { return max_label_size_; }

  /// Number of tree levels (max node level + 1).
  uint32_t Depth() const { return depth_; }

  /// Total label entries sum(tau(v) + 1) — Table 4's "# Label Entries".
  uint64_t TotalLabelEntries() const { return total_label_entries_; }

  uint64_t MemoryBytes() const;

  Status Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

  /// Structural equality (used by serialization tests).
  bool operator==(const TreeHierarchy& o) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Vertex> vertex_pool_;      // grouped by node
  std::vector<uint32_t> node_path_pool_; // concatenated root paths
  std::vector<uint32_t> node_of_;        // per vertex
  std::vector<uint32_t> tau_;            // per vertex
  uint32_t root_ = 0;
  uint32_t depth_ = 0;
  uint32_t max_label_size_ = 0;
  uint64_t total_label_entries_ = 0;
};

}  // namespace stl

#endif  // STL_CORE_TREE_HIERARCHY_H_
