#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace stl {

QueryEngine::QueryEngine(Graph graph,
                         const HierarchyOptions& hierarchy_options,
                         const EngineOptions& options)
    : options_(options), pool_(options.num_query_threads) {
  STL_CHECK_GE(options_.max_batch_size, size_t{1});
  graph_ = std::make_unique<Graph>(std::move(graph));
  index_ = MakeDistanceIndex(options_.backend, graph_.get(),
                             hierarchy_options);
  capabilities_ = index_->capabilities();
  // Epoch 0's baseline: graph chunk clones before the first publish
  // (e.g. from the build itself) are not publish cost.
  harvested_graph_chunks_ = graph_->cow_stats().chunks_cloned;
  harvested_graph_bytes_ = graph_->cow_stats().bytes_cloned;
  PublishSnapshot(0);
  writer_ = std::thread([this] { WriterLoop(); });
  // Start the throughput clock after the (potentially long) index
  // build, so Stats() reports serving throughput, not build dilution.
  wall_.Restart();
}

QueryEngine::~QueryEngine() {
  pool_.Shutdown();  // answer every query already submitted
  updates_.Stop();
  if (writer_.joinable()) writer_.join();  // drains pending updates
}

std::future<QueryResult> QueryEngine::Submit(QueryPair query) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> result = promise->get_future();
  const auto submitted = std::chrono::steady_clock::now();
  const bool accepted =
      pool_.Enqueue([this, query, promise = std::move(promise), submitted] {
        // The entire read path: one atomic load, then const reads on an
        // immutable snapshot. Never blocks on maintenance work.
        std::shared_ptr<const EngineSnapshot> snap = current_.load();
        QueryResult r;
        r.distance = snap->Query(query.first, query.second);
        r.epoch = snap->epoch;
        const uint64_t nanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - submitted)
                .count());
        r.latency_micros = static_cast<double>(nanos) / 1e3;
        r.snapshot = std::move(snap);
        latency_.Record(nanos);
        queries_served_.fetch_add(1, std::memory_order_relaxed);
        promise->set_value(std::move(r));
      });
  STL_CHECK(accepted) << "Submit() on a shut-down engine";
  return result;
}

std::vector<std::future<QueryResult>> QueryEngine::SubmitBatch(
    const std::vector<QueryPair>& queries) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const QueryPair& q : queries) futures.push_back(Submit(q));
  return futures;
}

void QueryEngine::EnqueueUpdate(const WeightUpdate& update) {
  EnqueueUpdate(update.edge, update.new_weight);
}

void QueryEngine::EnqueueUpdate(EdgeId edge, Weight new_weight) {
  STL_CHECK(edge < graph_->NumEdges());
  STL_CHECK(new_weight >= 1 && new_weight <= kMaxEdgeWeight);
  updates_.Enqueue(edge, new_weight);
}

void QueryEngine::EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
  for (const WeightUpdate& u : updates) {
    STL_CHECK(u.edge < graph_->NumEdges());
    STL_CHECK(u.new_weight >= 1 && u.new_weight <= kMaxEdgeWeight);
  }
  updates_.EnqueueMany(updates);
}

void QueryEngine::Flush() { updates_.Flush(); }

void QueryEngine::WriterLoop() {
  // The drain/coalesce/Flush protocol lives in UpdateQueue (shared with
  // the sharded engine); this engine's apply step is: pick the per-batch
  // STL-P/STL-L strategy (backends with a single maintenance scheme
  // ignore it), repair the master index, publish one epoch.
  updates_.RunWriter(
      options_.max_batch_size,
      [this](EdgeId e) { return graph_->EdgeWeight(e); },
      [this](const UpdateBatch& batch) {
        const MaintenanceStrategy strategy =
            ChooseStrategy(options_.strategy,
                           options_.auto_label_search_threshold,
                           batch.size());
        batch_counters_.Count(index_->ApplyBatch(batch, strategy));
        updates_applied_.fetch_add(batch.size(),
                                   std::memory_order_relaxed);
        const uint64_t epoch =
            epochs_published_.fetch_add(1, std::memory_order_relaxed) + 1;
        PublishSnapshot(epoch);
      },
      &updates_coalesced_);
}

void QueryEngine::PublishSnapshot(uint64_t epoch) {
  Timer publish_timer;
  auto snap = std::make_shared<EngineSnapshot>();
  snap->epoch = epoch;
  PublishInfo info;
  snap->view = index_->PublishView(options_.flat_publish, &info);
  // Harvest the graph-side CoW clone counters accumulated since the last
  // publish; together with the backend's label-side report they are the
  // real byte cost of isolating the previous epoch from this one.
  const CowChunkStats gc = graph_->cow_stats();
  snap->label_pages_cloned = info.label_pages_cloned;
  snap->cow_bytes_cloned =
      info.label_bytes_cloned + (gc.bytes_cloned - harvested_graph_bytes_);
  label_pages_cloned_.fetch_add(info.label_pages_cloned,
                                std::memory_order_relaxed);
  graph_chunks_cloned_.fetch_add(gc.chunks_cloned - harvested_graph_chunks_,
                                 std::memory_order_relaxed);
  cow_bytes_cloned_.fetch_add(snap->cow_bytes_cloned,
                              std::memory_order_relaxed);
  harvested_graph_chunks_ = gc.chunks_cloned;
  harvested_graph_bytes_ = gc.bytes_cloned;

  if (options_.flat_publish) {
    // Baseline: the pre-CoW deep copy, O(graph weights) per epoch. Count
    // only the payload bytes DeepCopy physically copies (shared
    // topology/layout and pointer tables are excluded).
    snap->graph = graph_->DeepCopy();
    info.deep_bytes_copied += snap->graph.CowPayloadBytes();
  } else {
    // Structural share: O(chunks) pointer copies + refcount bumps, zero
    // entry copies. Untouched chunks stay physically shared with every
    // older epoch still alive.
    snap->graph = *graph_;
  }
  publish_bytes_deep_copied_.fetch_add(info.deep_bytes_copied,
                                       std::memory_order_relaxed);
  publish_nanos_.fetch_add(publish_timer.ElapsedNanos(),
                           std::memory_order_relaxed);
  current_.store(std::move(snap));
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.backend = options_.backend;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.updates_enqueued = updates_.enqueued();
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.updates_coalesced = updates_coalesced_.load(std::memory_order_relaxed);
  s.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  s.batches_pareto = batch_counters_.pareto.load(std::memory_order_relaxed);
  s.batches_label = batch_counters_.label.load(std::memory_order_relaxed);
  s.batches_incremental =
      batch_counters_.incremental.load(std::memory_order_relaxed);
  s.batches_rebuild =
      batch_counters_.rebuild.load(std::memory_order_relaxed);
  s.label_pages_cloned =
      label_pages_cloned_.load(std::memory_order_relaxed);
  s.graph_chunks_cloned =
      graph_chunks_cloned_.load(std::memory_order_relaxed);
  s.cow_bytes_cloned = cow_bytes_cloned_.load(std::memory_order_relaxed);
  s.publish_bytes_deep_copied =
      publish_bytes_deep_copied_.load(std::memory_order_relaxed);
  s.publish_total_micros =
      static_cast<double>(publish_nanos_.load(std::memory_order_relaxed)) /
      1e3;
  {
    // Honest resident memory of the serving state, wait-free: the
    // current snapshot is immutable (for CoW backends, a structural copy
    // of the master as of its publish — they share every page the batch
    // did not dirty), so walking the snapshot counts each physical
    // page/chunk exactly once without touching — or locking against —
    // the writer. Pages the writer cloned since that publish appear at
    // the next publish.
    std::shared_ptr<const EngineSnapshot> snap = CurrentSnapshot();
    std::unordered_set<const void*> seen;
    uint64_t bytes = snap->view->AddResidentBytes(&seen);
    bytes += snap->graph.AddResidentBytes(&seen);
    s.resident_index_bytes = bytes;
  }
  s.wall_seconds = wall_.ElapsedSeconds();
  s.queries_per_second =
      s.wall_seconds > 0
          ? static_cast<double>(s.queries_served) / s.wall_seconds
          : 0;
  s.latency_mean_micros = latency_.MeanMicros();
  s.latency_p50_micros = latency_.QuantileMicros(0.5);
  s.latency_p99_micros = latency_.QuantileMicros(0.99);
  s.latency_max_micros = latency_.MaxMicros();
  return s;
}

void QueryEngine::ResetStats() {
  queries_served_.store(0, std::memory_order_relaxed);
  updates_applied_.store(0, std::memory_order_relaxed);
  updates_coalesced_.store(0, std::memory_order_relaxed);
  // epochs_published_ is deliberately not reset: it doubles as the epoch
  // id allocator, and snapshot epochs must stay unique for the lifetime
  // of the engine.
  batch_counters_.Reset();
  label_pages_cloned_.store(0, std::memory_order_relaxed);
  graph_chunks_cloned_.store(0, std::memory_order_relaxed);
  cow_bytes_cloned_.store(0, std::memory_order_relaxed);
  publish_bytes_deep_copied_.store(0, std::memory_order_relaxed);
  publish_nanos_.store(0, std::memory_order_relaxed);
  latency_.Reset();
  wall_.Restart();
}

}  // namespace stl
