// The replicated shard-router tier: ShardedEngine's Submit/SubmitBatch/
// SubmitTagged surface served by fanning per-cell boundary-row fetches
// and intra-cell point queries out to N interchangeable shard replicas
// over a pluggable Transport, with the overlay min-plus reduction run
// router-side on the fetched rows.
//
//   callers          ShardRouter (ServingCore<RouterPolicy>)
//   ─────────────    ────────────────────────────────────────────────
//   Submit*          pin ONE ShardedSnapshot; enumerate every unique
//                    ds/dt row and same-cell point the span needs,
//                    issue ALL of them concurrently (pinning each
//                    shard's shard_epoch on the wire), and reduce
//                    through the pinned epoch's OverlayTable min-plus
//                    kernels when the last fetch lands — the reader
//                    thread issues and returns; no thread parks per RPC
//
//   updates          router writer -> inner ShardedEngine (the
//                    authoritative writer tier) -> new snapshot is
//                    installed on every replica — directly for
//                    in-process replicas, or as a kInstall wire message
//                    applied by each ReplicaNode's own engine — THEN
//                    published to the router's readers
//
// Epoch-consistent fan-out is the hard invariant: a batch pins one
// snapshot, every row request carries that snapshot's per-shard
// shard_epoch, and a replica that does not hold the pinned version
// answers kUnavailable instead of a different epoch's bytes. The
// router then retries the sibling replicas (round-robin start, all N
// tried); only when every replica fails does the query complete with
// a typed kUnavailable — delivered exactly once per user tag through
// the same one-shot-claim completion machinery as every other serving
// path.
//
// The fan-out is asynchronous end to end (Policy::kAsyncRoute): a
// reader thread enumerates the span's unique fetches, issues them all,
// and returns to the pool; each RPC's answer arrives through the
// tag-keyed Mailbox (from the transport's delivery thread), sibling
// failover chains through PendingCall without blocking anyone, and the
// LAST arrival runs the sequential min-plus compute phase — so the
// answer bytes are produced by one thread in deterministic order,
// bit-identical to the synchronous in-process router, while a fan-out
// of N RPCs blocks zero reader threads.
//
// Bit-identity (the conformance contract, tests/router_test.cc and
// bench_router_fanout --check): replica-served rows are computed by
// the same FillShardBoundaryRow on the same immutable shard views the
// in-process engine reads, and the router's reduction is the same
// MinPlusReduce/MinPlusRowsInto arithmetic on the same pinned overlay
// — so every routed answer is byte-identical to ShardedEngine on the
// same epoch.
#ifndef STL_DIST_SHARD_ROUTER_H_
#define STL_DIST_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dist/loopback_transport.h"
#include "dist/replica.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "engine/sharded_engine.h"

namespace stl {

/// Construction options for the router tier.
struct ShardRouterOptions {
  /// The inner authoritative engine (writer tier): partitioning,
  /// per-shard backend, maintenance strategy. Its serving-side knobs
  /// (threads, caches) apply to the inner engine only; the router has
  /// its own below.
  ShardedEngineOptions engine;
  /// Router reader threads (the tier that fans queries out).
  int num_query_threads = 4;
  /// Updates taken per router epoch (forwarded to the inner writer in
  /// one atomic enqueue, so they land in few inner epochs).
  size_t max_batch_size = 128;
  /// Router-side epoch-keyed (s, t) result memo; 0 disables it.
  size_t result_cache_entries = 0;
  /// Overload-hardening knobs of the ROUTER core (admission, deadlines,
  /// watchdog, drain, fault hooks). The transport fault sites fire in
  /// the transport itself (LoopbackTransport's injector), not here.
  ServingOptions serving;
  /// Budget for one wire-install ack (kInstall replication to socket
  /// replicas; unused with in-process replicas).
  std::chrono::milliseconds install_timeout{2000};
  /// Send attempts per endpoint before a wire install gives up on it
  /// (the router publishes anyway; the lagging replica answers the new
  /// epochs kUnavailable until a later install catches it up).
  int install_attempts = 3;
  /// Installs kept for nack-triggered replay to lagging replicas.
  size_t install_log_entries = 256;
};

/// Router-tier counters: the router core's serving stats plus the RPC
/// fan-out accounting.
struct RouterStats {
  /// The router core's serving-side stats (queries served/unavailable,
  /// latency quantiles, cache rates; epochs_published counts router
  /// publishes).
  EngineStats serving;
  /// Replica endpoints the transport reaches.
  uint32_t replicas = 0;
  /// RPC attempts sent (every Send, including retries).
  uint64_t rpcs_sent = 0;
  /// RPC attempts beyond the first for their fetch (sibling retries).
  uint64_t rpc_retries = 0;
  /// Replica answers rejected for not holding the pinned shard_epoch
  /// (or failing/corrupt), each triggering a sibling retry.
  uint64_t rpc_stale_responses = 0;
  /// Fetches that succeeded on a sibling after at least one failed
  /// attempt (the failover path working as designed).
  uint64_t rpc_failovers = 0;
  /// Responses delivered under an already-settled tag (transport
  /// duplicates) and absorbed by the one-shot claim.
  uint64_t rpc_duplicates_dropped = 0;
  /// kInstall sequences shipped over the wire (0 with in-process
  /// replicas, which are installed directly).
  uint64_t wire_installs = 0;
  /// Publishes where at least one endpoint failed to ack its install
  /// (the router published anyway; see install_attempts).
  uint64_t install_failures = 0;
};

/// The replicated router over a pluggable transport. Mirrors
/// ShardedEngine's public serving API (same submission paths, same
/// exactly-once completion contract); updates flow through the inner
/// authoritative engine and re-publish to every replica before the
/// router's readers see the new epoch. Thread-safe like the engines.
class ShardRouter {
 public:
  /// Batch handle type returned by SubmitBatch (one pinned snapshot
  /// per batch; see engine/serving_core.h).
  using Ticket = BatchTicket<ShardedSnapshot>;

  /// Builds the inner engine from `graph`, installs the initial epoch
  /// on the replicas and starts the router core. `transport` (not
  /// owned) must route endpoint i to replica i. Two deployment shapes:
  /// in-process — `replicas` (not owned; must outlive the router) are
  /// installed directly and MakeLoopbackCluster wires the transport;
  /// over the wire — `replicas` is empty and every transport endpoint
  /// is a ReplicaNode (e.g. behind a FrameServer or a replica_server
  /// process), kept in sync by kInstall replication.
  ShardRouter(Graph graph, const HierarchyOptions& hierarchy_options,
              const ShardRouterOptions& options, Transport* transport,
              std::vector<ShardReplica*> replicas);

  /// Drains the router core (answers or fails every submitted query,
  /// including every in-flight async fan-out), then the inner engine.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;  ///< Not copyable.
  ShardRouter& operator=(const ShardRouter&) = delete;  ///< Not copyable.

  /// Schedules one distance query through the routed tier; the future
  /// resolves with code kOk (answered), kOverloaded/kDeadlineExceeded
  /// (overload machinery, same as the engines) or kUnavailable (every
  /// replica failed the pinned epoch).
  std::future<ShardedQueryResult> Submit(QueryPair query,
                                         Deadline deadline = kNoDeadline);

  /// Schedules a batch pinned to ONE snapshot — and therefore one
  /// shard_epoch per shard on the wire. Answers are bit-identical to
  /// ShardedEngine on the same epoch; per-query failure codes ride the
  /// ticket (BatchTicket::code).
  Ticket SubmitBatch(const std::vector<QueryPair>& queries,
                     Deadline deadline = kNoDeadline);

  /// Completion-queue mode: delivers the caller's tag to `sink`
  /// exactly once — answered, shed, expired or unavailable.
  void SubmitTagged(QueryPair query, uint64_t tag, CompletionSink* sink,
                    Deadline deadline = kNoDeadline);

  /// Batched completion-queue mode; pins one snapshot like SubmitBatch.
  Ticket SubmitBatchTagged(const std::vector<QueryPair>& queries,
                           const std::vector<uint64_t>& tags,
                           CompletionSink* sink,
                           Deadline deadline = kNoDeadline);

  /// Records a desired new weight for a global edge; applied by the
  /// inner engine and re-published to every replica before the
  /// router's next epoch serves.
  void EnqueueUpdate(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one router epoch's worth lands
  /// in few inner epochs).
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been
  /// applied by the inner engine, installed on every replica, and
  /// published to the router's readers.
  void Flush();

  /// The latest router-published snapshot (never null). Every replica
  /// already holds it (unless its install failed; see RouterStats).
  std::shared_ptr<const ShardedSnapshot> CurrentSnapshot() const;

  /// Global epoch of the latest router-published snapshot.
  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  /// Number of cells of the inner engine's partition.
  uint32_t num_shards() const { return engine_.num_shards(); }

  /// Point-in-time router-tier counters.
  RouterStats Stats() const;

  /// Zeroes the router core's counters and the RPC counters (bench
  /// warmup). Call only while no queries are in flight.
  void ResetStats();

  /// Router reader thread count.
  int num_query_threads() const { return core_.num_query_threads(); }

 private:
  struct SpanFanout;
  struct PendingCall;

  // The routed Route policy over the shared ServingCore (see the
  // policy contract in engine/serving_core.h).
  struct Policy {
    using Snapshot = ShardedSnapshot;
    using Result = ShardedQueryResult;
    // Batched misses sort by (source cell, target cell, target) so
    // fetched rows and inner vectors are deduplicated across each
    // group — the same grouping (and the same arithmetic) as
    // ShardedEngine.
    static constexpr bool kGroupsBatches = true;
    // Continuation-passing routing: the fan-out parks no reader thread
    // (see the async contract in engine/serving_core.h).
    static constexpr bool kAsyncRoute = true;

    ShardRouter* router;

    void PublishInitial();
    Weight ResolveOldWeight(EdgeId e) const;
    void ApplyBatch(const UpdateBatch& batch);
    uint32_t NumEdges() const;
    void RouteAsync(std::shared_ptr<const ShardedSnapshot> snap, Vertex s,
                    Vertex t,
                    std::function<void(Weight, StatusCode)> done) const;
    uint64_t BatchSortKey(const ShardedSnapshot& snap,
                          const QueryPair& q) const;
    void RouteSpanAsync(std::shared_ptr<const ShardedSnapshot> snap,
                        const QueryPair* queries, const uint32_t* idx,
                        size_t count, Weight* out, StatusCode* codes,
                        std::function<void()> done) const;
    void AugmentStats(EngineStats* s) const;
  };

  /// The router side of the transport: a tag-keyed registry of
  /// response callbacks. OnResponse settles the tag's callback exactly
  /// once (invoked outside the lock, on the transport's delivery
  /// thread); a delivery for an unknown — already-settled — tag is a
  /// transport duplicate and is counted and dropped: the one-shot
  /// claim at RPC granularity.
  class Mailbox final : public TransportSink {
   public:
    /// One in-flight RPC's continuation.
    using Callback = std::function<void(Status, std::vector<uint8_t>)>;

    /// Registers a fresh tag -> callback binding and returns the tag.
    uint64_t Register(Callback callback);

    void OnResponse(uint64_t tag, Status transport_status,
                    std::vector<uint8_t> payload) override;

    /// Transport duplicates absorbed so far (relaxed).
    uint64_t duplicates_dropped() const {
      return duplicates_.load(std::memory_order_relaxed);
    }
    /// Zeroes the duplicate counter (ResetStats).
    void ResetCounters() {
      duplicates_.store(0, std::memory_order_relaxed);
    }

   private:
    std::mutex mu_;
    std::unordered_map<uint64_t, Callback> calls_;  // guarded by mu_
    std::atomic<uint64_t> next_tag_{1};
    std::atomic<uint64_t> duplicates_{0};
  };

  /// One pinned-epoch RPC with asynchronous sibling failover: encodes
  /// the request ONCE (the buffer is shared across every sibling
  /// attempt) and tries replica endpoints round-robin until one serves
  /// it at the pinned shard_epoch. `done` runs exactly once — from the
  /// transport's delivery thread (or inline for a synchronous
  /// transport) — with ok=false after every endpoint failed.
  void CallReplicaAsync(const ShardRequest& req,
                        std::function<void(bool, ShardResponse)> done);

  /// The one routed query implementation: ShardedEngine's
  /// decomposition, reading rows/points the fan-out already fetched
  /// and reducing through the pinned overlay's min-plus kernels.
  /// Writes kUnavailable to *code (and returns kInfDistance) when a
  /// needed fetch exhausted every replica.
  Weight RouteOne(const ShardedSnapshot& snap, Vertex s, Vertex t,
                  SpanFanout* fan, StatusCode* code);

  /// Installs `snap` on every replica — in-process directly, or over
  /// the wire as the kInstall sequence carrying `updates` — then
  /// publishes it to the router core. Healthy path: install strictly
  /// before publish, so a reader-pinned epoch is always held by the
  /// replicas. A failed wire install is counted and published anyway:
  /// the lagging replica answers the new epochs with typed
  /// kUnavailable (never wrong bytes) until replay catches it up.
  void InstallAndPublish(std::shared_ptr<const ShardedSnapshot> snap,
                         const UpdateBatch& updates);

  /// Drives `endpoint` to the newest install log entry (replaying
  /// earlier entries on a sequence-gap nack). Writer thread only.
  /// False when the endpoint cannot be caught up within the attempt
  /// budget (or nacked a seq it should have accepted — divergence).
  bool WireInstallEndpoint(uint32_t endpoint);

  /// One blocking RPC (writer thread only — the install path is the
  /// single place the router blocks on the wire). False on transport
  /// failure or install_timeout.
  bool BlockingRpc(uint32_t endpoint,
                   std::shared_ptr<const std::vector<uint8_t>> bytes,
                   std::vector<uint8_t>* payload);

  const ShardRouterOptions options_;
  Transport* const transport_;           // not owned
  std::vector<ShardReplica*> replicas_;  // not owned

  Mailbox mailbox_;
  std::atomic<uint32_t> next_replica_{0};  // round-robin fan-out start
  // Inner epoch of the last snapshot handed to InstallAndPublish
  // (router writer thread only; skips republishing coalesced no-ops —
  // wire replicas skip the identical no-ops, so the streams stay
  // aligned).
  uint64_t last_published_epoch_ = 0;

  /// One wire-install log entry: the sequence number and the
  /// encoded-once InstallRequest shared by every (re)send.
  struct InstallLogEntry {
    uint64_t seq = 0;
    std::shared_ptr<const std::vector<uint8_t>> encoded;
  };
  // Wire-install replication state (writer thread only).
  std::deque<InstallLogEntry> install_log_;
  uint64_t install_log_base_ = 0;  // seq of install_log_.front()
  uint64_t next_install_seq_ = 0;

  // RPC accounting (relaxed; surfaced through Stats()).
  std::atomic<uint64_t> rpcs_sent_{0};
  std::atomic<uint64_t> rpc_retries_{0};
  std::atomic<uint64_t> rpc_stale_{0};
  std::atomic<uint64_t> rpc_failovers_{0};
  std::atomic<uint64_t> wire_installs_{0};
  std::atomic<uint64_t> install_failures_{0};

  ShardedEngine engine_;  // the authoritative writer tier
  Policy policy_{this};
  ServingCore<Policy> core_;  // last member: its readers die first
};

/// An in-process cluster: N replicas plus a LoopbackTransport wired so
/// endpoint i serves from replica i — everything a test or bench needs
/// to stand up the routed tier deterministically.
struct LoopbackCluster {
  /// The replicas, owned by the cluster (endpoint order).
  std::vector<std::unique_ptr<ShardReplica>> replicas;
  /// The transport routing endpoint i to replicas[i]->Handle.
  std::unique_ptr<LoopbackTransport> transport;

  /// Non-owning replica pointers in endpoint order (ShardRouter's
  /// constructor shape).
  std::vector<ShardReplica*> replica_ptrs() const;
};

/// Builds `num_replicas` replicas (each with `replica_options`) behind
/// one loopback transport; `faults` (not owned, may be null) arms the
/// transport fault sites.
LoopbackCluster MakeLoopbackCluster(
    uint32_t num_replicas, const ShardReplicaOptions& replica_options = {},
    FaultInjector* faults = nullptr);

}  // namespace stl

#endif  // STL_DIST_SHARD_ROUTER_H_
