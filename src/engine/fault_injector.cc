#include "engine/fault_injector.h"

#include "util/logging.h"

namespace stl {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kReaderDelay:
      return "reader_delay";
    case FaultSite::kWriterStall:
      return "writer_stall";
    case FaultSite::kApplyFailure:
      return "apply_failure";
    case FaultSite::kCompletionDropCandidate:
      return "completion_drop_candidate";
    case FaultSite::kOverlayRepair:
      return "overlay_repair";
    case FaultSite::kTransportDrop:
      return "transport_drop";
    case FaultSite::kTransportDelay:
      return "transport_delay";
    case FaultSite::kTransportDuplicate:
      return "transport_duplicate";
    case FaultSite::kSocketShortIo:
      return "socket_short_io";
  }
  return "unknown";
}

namespace {

/// splitmix64 finalizer: one 64-bit hash per (seed, site, visit), so
/// the fire schedule is a pure function of the seed and the per-site
/// visit number — deterministic across runs and thread interleavings.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SeededFaultInjector::SeededFaultInjector(uint64_t seed) : seed_(seed) {}

void SeededFaultInjector::SetRate(FaultSite site, double rate) {
  STL_CHECK(rate >= 0.0 && rate <= 1.0);
  const double scaled = rate * 4294967296.0;  // 2^32
  const uint32_t threshold =
      scaled >= 4294967295.0 ? 0xffffffffu : static_cast<uint32_t>(scaled);
  sites_[static_cast<int>(site)].threshold.store(
      threshold, std::memory_order_relaxed);
}

void SeededFaultInjector::SetDelayMicros(FaultSite site, uint64_t micros) {
  sites_[static_cast<int>(site)].delay_micros.store(
      micros, std::memory_order_relaxed);
}

uint64_t SeededFaultInjector::fired(FaultSite site) const {
  return sites_[static_cast<int>(site)].fired.load(
      std::memory_order_relaxed);
}

void SeededFaultInjector::Clear() {
  for (SiteState& s : sites_) {
    s.threshold.store(0, std::memory_order_relaxed);
  }
}

bool SeededFaultInjector::Fire(FaultSite site) {
  SiteState& s = sites_[static_cast<int>(site)];
  const uint32_t threshold = s.threshold.load(std::memory_order_relaxed);
  // Count the visit even while disarmed so re-arming continues the
  // same deterministic sequence.
  const uint64_t visit = s.visits.fetch_add(1, std::memory_order_relaxed);
  if (threshold == 0) return false;
  if (threshold == 0xffffffffu) {
    s.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const uint64_t h =
      Mix(seed_ ^ (static_cast<uint64_t>(site) << 56) ^ visit);
  const bool fire = static_cast<uint32_t>(h) < threshold;
  if (fire) s.fired.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

uint64_t SeededFaultInjector::DelayMicros(FaultSite site) {
  return sites_[static_cast<int>(site)].delay_micros.load(
      std::memory_order_relaxed);
}

}  // namespace stl
