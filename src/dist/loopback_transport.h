// In-process transport: endpoints are registered handler functions and
// Send() runs request handling inline on the calling thread. Fully
// deterministic (no sockets, no background threads, no reordering), so
// the bit-identity conformance suite and the CI chaos tests can drive
// the whole distributed tier without network flake. The transport
// fault sites (FaultSite::kTransportDrop / kTransportDelay /
// kTransportDuplicate) hook every Send, making replica failover,
// routed tail latency and duplicate-response absorption forceable on a
// deterministic schedule.
#ifndef STL_DIST_LOOPBACK_TRANSPORT_H_
#define STL_DIST_LOOPBACK_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dist/transport.h"
#include "engine/fault_injector.h"

namespace stl {

/// The deterministic in-process Transport used by tests, benches and
/// CI. Thread-safe once serving starts: AddEndpoint is
/// construction-time only; Send may run from any reader thread.
class LoopbackTransport final : public Transport {
 public:
  /// One endpoint's server side: decodes the request bytes and returns
  /// the encoded response bytes (ShardReplica::Handle bound in tests).
  /// Must be thread-safe.
  using Handler =
      std::function<std::vector<uint8_t>(const uint8_t* data, size_t size)>;

  /// A transport with no endpoints and no fault hooks; `faults` (not
  /// owned, may be null) arms the kTransport* sites.
  explicit LoopbackTransport(FaultInjector* faults = nullptr);

  /// Registers the next endpoint (ids are assigned 0, 1, ... in call
  /// order) and returns its id. Call before serving starts — not
  /// thread-safe against concurrent Send.
  uint32_t AddEndpoint(Handler handler);

  uint32_t NumEndpoints() const override;

  /// Runs the endpoint's handler inline and delivers the response to
  /// `sink` before returning. Fault sites, in consult order:
  /// kTransportDelay blocks DelayMicros first; kTransportDrop loses
  /// the request (the sink sees a typed kUnavailable, modelling the
  /// caller's timeout having fired — deterministic, no real waiting);
  /// kTransportDuplicate delivers the response a second time under the
  /// same tag, which the receiver's one-shot claim must absorb.
  void Send(uint32_t endpoint, uint64_t tag,
            std::shared_ptr<const std::vector<uint8_t>> request,
            TransportSink* sink) override;

 private:
  std::vector<Handler> endpoints_;
  FaultInjector* const faults_;
};

}  // namespace stl

#endif  // STL_DIST_LOOPBACK_TRANSPORT_H_
