// Overload-hardening and fault-injection tests for the serving stack:
// bounded admission (reject-new / shed-oldest), per-query and per-batch
// deadlines, the writer-stall watchdog / degraded mode, the bounded
// shutdown drain, completion-queue teardown, and the chaos suite that
// arms every FaultSite at once across all four backends and asserts the
// robustness invariants: every tag delivered exactly once, every
// ANSWERED query exact for its epoch, and full recovery once the
// faults clear. Runs under TSan in CI (fixed seeds).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "dist/replica_node.h"
#include "dist/shard_router.h"
#include "dist/socket_transport.h"
#include "engine/fault_injector.h"
#include "net/server.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// --------------------------------------------------- fault injector

TEST(FaultInjectorTest, DisarmedNeverFires) {
  SeededFaultInjector faults(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(faults.Fire(FaultSite::kReaderDelay));
  }
  EXPECT_EQ(faults.fired(FaultSite::kReaderDelay), 0u);
}

TEST(FaultInjectorTest, RateOneAlwaysFires) {
  SeededFaultInjector faults(2);
  faults.SetRate(FaultSite::kApplyFailure, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(faults.Fire(FaultSite::kApplyFailure));
  }
  EXPECT_EQ(faults.fired(FaultSite::kApplyFailure), 100u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  SeededFaultInjector a(42), b(42), c(43);
  for (SeededFaultInjector* f : {&a, &b, &c}) {
    f->SetRate(FaultSite::kWriterStall, 0.3);
  }
  std::vector<bool> fa, fb, fc;
  for (int i = 0; i < 2000; ++i) {
    fa.push_back(a.Fire(FaultSite::kWriterStall));
    fb.push_back(b.Fire(FaultSite::kWriterStall));
    fc.push_back(c.Fire(FaultSite::kWriterStall));
  }
  EXPECT_EQ(fa, fb);           // same seed -> identical schedule
  EXPECT_NE(fa, fc);           // different seed -> different schedule
  // The rate is roughly honoured (0.3 +- generous slack on 2000 visits).
  EXPECT_GT(a.fired(FaultSite::kWriterStall), 400u);
  EXPECT_LT(a.fired(FaultSite::kWriterStall), 800u);
}

TEST(FaultInjectorTest, VisitsCountWhileDisarmedSoReArmingContinues) {
  // The fire schedule is a pure function of (seed, site, visit index):
  // a run that disarms the site for a while and re-arms it must see the
  // same decisions at the same visit indices as an always-armed run.
  SeededFaultInjector armed(7), gated(7);
  armed.SetRate(FaultSite::kReaderDelay, 0.5);
  std::vector<bool> expected;
  for (int i = 0; i < 300; ++i) {
    expected.push_back(armed.Fire(FaultSite::kReaderDelay));
  }
  gated.SetRate(FaultSite::kReaderDelay, 0.5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gated.Fire(FaultSite::kReaderDelay), expected[i]) << i;
  }
  gated.Clear();  // disarm: visits 100..199 never fire but still count
  for (int i = 100; i < 200; ++i) {
    EXPECT_FALSE(gated.Fire(FaultSite::kReaderDelay));
  }
  gated.SetRate(FaultSite::kReaderDelay, 0.5);
  for (int i = 200; i < 300; ++i) {
    EXPECT_EQ(gated.Fire(FaultSite::kReaderDelay), expected[i]) << i;
  }
}

// ------------------------------------------------- completion queue

TEST(CompletionQueueTest, TimedWaitPollPastDeadlineNeverBlocks) {
  CompletionQueue queue;
  Completion out[4];
  // Empty queue + zero / negative timeout: returns immediately with 0.
  EXPECT_EQ(queue.WaitPoll(out, 4, milliseconds(0)), 0u);
  EXPECT_EQ(queue.WaitPoll(out, 4, milliseconds(-50)), 0u);
  // Non-empty queue + past deadline: degenerates to Poll().
  Completion done;
  done.tag = 9;
  queue.Deliver(done);
  EXPECT_EQ(queue.WaitPoll(out, 4, milliseconds(0)), 1u);
  EXPECT_EQ(out[0].tag, 9u);
}

TEST(CompletionQueueTest, TimedWaitPollTimesOutEmpty) {
  CompletionQueue queue;
  Completion out[1];
  const auto start = steady_clock::now();
  EXPECT_EQ(queue.WaitPoll(out, 1, milliseconds(30)), 0u);
  EXPECT_GE(steady_clock::now() - start, milliseconds(25));
}

TEST(CompletionQueueTest, TimedWaitPollWakesOnDelivery) {
  CompletionQueue queue;
  std::thread producer([&queue] {
    std::this_thread::sleep_for(milliseconds(10));
    Completion done;
    done.tag = 5;
    queue.Deliver(done);
  });
  Completion out[1];
  EXPECT_EQ(queue.WaitPoll(out, 1, milliseconds(5000)), 1u);
  EXPECT_EQ(out[0].tag, 5u);
  producer.join();
}

TEST(CompletionQueueTest, TeardownWithUndrainedCompletions) {
  // Completions left in the queue at destruction are simply dropped —
  // no leak, no crash, no touching freed state (ASan/TSan guard this).
  auto queue = std::make_unique<CompletionQueue>();
  for (uint64_t i = 0; i < 64; ++i) {
    Completion done;
    done.tag = i;
    queue->Deliver(done);
  }
  EXPECT_EQ(queue->size(), 64u);
  queue.reset();
}

TEST(CompletionQueueTest, EngineTeardownDeliversEveryPendingTag) {
  // Destroy an engine with tagged work still in flight; the queue
  // outlives it and must end up with every tag exactly once.
  Graph g = testing_util::SmallRoadNetwork(5, 91);
  const uint32_t n = g.NumVertices();
  CompletionQueue queue;
  constexpr uint64_t kTags = 200;
  {
    EngineOptions opt;
    opt.num_query_threads = 2;
    QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
    Rng rng(91);
    for (uint64_t tag = 0; tag < kTags; ++tag) {
      engine.SubmitTagged({static_cast<Vertex>(rng.NextBounded(n)),
                           static_cast<Vertex>(rng.NextBounded(n))},
                          tag, &queue);
    }
    // Engine destructor drains: every submitted tag must be delivered
    // before the readers join.
  }
  std::set<uint64_t> seen;
  Completion out[32];
  size_t got;
  while ((got = queue.Poll(out, 32)) > 0) {
    for (size_t i = 0; i < got; ++i) {
      EXPECT_TRUE(seen.insert(out[i].tag).second)
          << "tag " << out[i].tag << " delivered twice";
    }
  }
  EXPECT_EQ(seen.size(), kTags);
}

// -------------------------------------------------------- admission

// A sink that records every delivery under a lock (tests only).
class RecordingSink : public CompletionSink {
 public:
  void Deliver(const Completion& done) override {
    std::lock_guard<std::mutex> lock(mu_);
    completions_.push_back(done);
  }
  std::vector<Completion> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return completions_;
  }
  size_t size() {
    std::lock_guard<std::mutex> lock(mu_);
    return completions_.size();
  }

 private:
  std::mutex mu_;
  std::vector<Completion> completions_;
};

// One slow reader + a tight admission bound: the overflow must complete
// kOverloaded instead of queueing without bound, and every future must
// still resolve (exactly-once for promises).
TEST(AdmissionTest, RejectNewShedsOverflowQueries) {
  Graph g = testing_util::SmallRoadNetwork(5, 17);
  const uint32_t n = g.NumVertices();
  SeededFaultInjector faults(17);
  faults.SetRate(FaultSite::kReaderDelay, 1.0);
  faults.SetDelayMicros(FaultSite::kReaderDelay, 3000);
  EngineOptions opt;
  opt.num_query_threads = 1;
  opt.serving.max_queued_queries = 4;
  opt.serving.admission_policy = AdmissionPolicy::kRejectNew;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  Rng rng(17);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(
        engine.Submit({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))}));
  }
  size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    QueryResult r = f.get();
    if (r.code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.code, StatusCode::kOverloaded);
      EXPECT_EQ(r.distance, kInfDistance);
      EXPECT_FALSE(r.status().ok());
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 64u);
  EXPECT_GT(shed, 0u) << "bound 4 + 3ms/query reader must overflow";
  EXPECT_GT(ok, 0u) << "admitted work must still be answered";
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_shed, shed);
  EXPECT_EQ(stats.queries_served, ok);
}

TEST(AdmissionTest, ShedOldestFavorsFreshQueries) {
  Graph g = testing_util::SmallRoadNetwork(5, 18);
  const uint32_t n = g.NumVertices();
  SeededFaultInjector faults(18);
  faults.SetRate(FaultSite::kReaderDelay, 1.0);
  faults.SetDelayMicros(FaultSite::kReaderDelay, 3000);
  EngineOptions opt;
  opt.num_query_threads = 1;
  opt.serving.max_queued_queries = 4;
  opt.serving.admission_policy = AdmissionPolicy::kShedOldest;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  Rng rng(18);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(
        engine.Submit({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))}));
  }
  std::vector<StatusCode> codes;
  for (auto& f : futures) codes.push_back(f.get().code);
  const size_t shed = static_cast<size_t>(
      std::count(codes.begin(), codes.end(), StatusCode::kOverloaded));
  EXPECT_GT(shed, 0u);
  // Shed-oldest sheds work from the FRONT of the queue: the last
  // submissions are the freshest and must survive to be answered.
  EXPECT_EQ(codes.back(), StatusCode::kOk);
}

TEST(AdmissionTest, RejectNewFailsWholeBatchExactlyOnce) {
  Graph g = testing_util::SmallRoadNetwork(5, 19);
  SeededFaultInjector faults(19);
  faults.SetRate(FaultSite::kReaderDelay, 1.0);
  faults.SetDelayMicros(FaultSite::kReaderDelay, 5000);
  EngineOptions opt;
  opt.num_query_threads = 1;
  opt.serving.max_queued_batches = 1;
  opt.serving.admission_policy = AdmissionPolicy::kRejectNew;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  std::vector<QueryPair> queries(16, {0, 1});
  RecordingSink sink;
  std::vector<uint64_t> tags_a, tags_b;
  for (uint64_t i = 0; i < queries.size(); ++i) {
    tags_a.push_back(i);
    tags_b.push_back(100 + i);
  }
  // Batch A occupies the single in-flight slot (slow readers keep it
  // alive); batch B must be rejected outright.
  QueryEngine::Ticket a = engine.SubmitBatchTagged(queries, tags_a, &sink);
  QueryEngine::Ticket b = engine.SubmitBatchTagged(queries, tags_b, &sink);
  b.Wait();
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.code(i), StatusCode::kOverloaded);
    EXPECT_EQ(b.distance(i), kInfDistance);
  }
  a.Wait();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.code(i), StatusCode::kOk);
  }
  // Exactly-once: every tag of both batches delivered once.
  std::map<uint64_t, int> count;
  for (const Completion& done : sink.Take()) ++count[done.tag];
  EXPECT_EQ(count.size(), 32u);
  for (const auto& [tag, c] : count) {
    EXPECT_EQ(c, 1) << "tag " << tag;
  }
  EXPECT_EQ(engine.Stats().batches_shed, 1u);
}

TEST(AdmissionTest, ShedOldestClaimsUnstartedChunksOfOldestBatch) {
  Graph g = testing_util::SmallRoadNetwork(5, 20);
  SeededFaultInjector faults(20);
  faults.SetRate(FaultSite::kReaderDelay, 1.0);
  faults.SetDelayMicros(FaultSite::kReaderDelay, 5000);
  EngineOptions opt;
  opt.num_query_threads = 1;
  opt.serving.max_queued_batches = 1;
  opt.serving.admission_policy = AdmissionPolicy::kShedOldest;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  // Occupy the single reader with a slow query FIRST (pool FIFO), so
  // batch A's chunk is still queued-unclaimed when B arrives — the
  // shed is then deterministic under any thread schedule.
  std::future<QueryResult> plug = engine.Submit({0, 2});
  std::vector<QueryPair> queries(16, {0, 1});
  QueryEngine::Ticket a = engine.SubmitBatch(queries);
  QueryEngine::Ticket b = engine.SubmitBatch(queries);
  a.Wait();
  b.Wait();
  plug.get();
  // A was the oldest in-flight ticket when B arrived: its unstarted
  // chunk was shed, while B was admitted and fully answered.
  size_t a_shed = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.code(i) == StatusCode::kOverloaded) ++a_shed;
  }
  EXPECT_GT(a_shed, 0u);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.code(i), StatusCode::kOk) << i;
  }
  EXPECT_GE(engine.Stats().batches_shed, 1u);
}

// -------------------------------------------------------- deadlines

TEST(DeadlineTest, PastDeadlineExpiresAtDequeueWithoutRouting) {
  Graph g = testing_util::SmallRoadNetwork(5, 21);
  EngineOptions opt;
  opt.num_query_threads = 2;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  const Deadline past = steady_clock::now() - milliseconds(10);
  QueryResult r = engine.Submit({0, 7}, past).get();
  EXPECT_EQ(r.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.distance, kInfDistance);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.Stats().queries_deadline_exceeded, 1u);
  // Future deadlines do not interfere with normal serving.
  QueryResult ok =
      engine.Submit({0, 7}, steady_clock::now() + milliseconds(5000)).get();
  EXPECT_EQ(ok.code, StatusCode::kOk);
}

TEST(DeadlineTest, BatchDeadlineExpiresQueuedChunks) {
  Graph g = testing_util::SmallRoadNetwork(6, 22);
  const uint32_t n = g.NumVertices();
  EngineOptions opt;
  opt.num_query_threads = 2;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  Rng rng(22);
  std::vector<QueryPair> queries;
  for (int i = 0; i < 64; ++i) {
    queries.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n)));
  }
  const Deadline past = steady_clock::now() - milliseconds(1);
  QueryEngine::Ticket t = engine.SubmitBatch(queries, past);
  t.Wait();
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.code(i), StatusCode::kDeadlineExceeded) << i;
    EXPECT_EQ(t.distance(i), kInfDistance) << i;
  }
  EXPECT_EQ(engine.Stats().queries_deadline_exceeded, queries.size());
  // A generous deadline leaves the batch fully answered.
  QueryEngine::Ticket ok =
      engine.SubmitBatch(queries, steady_clock::now() + milliseconds(5000));
  ok.Wait();
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok.code(i), StatusCode::kOk) << i;
  }
}

// ------------------------------------------- degraded mode / faults

TEST(DegradedModeTest, WriterStallFlipsDegradedAndRecovers) {
  Graph g = testing_util::SmallRoadNetwork(5, 23);
  SeededFaultInjector faults(23);
  faults.SetRate(FaultSite::kWriterStall, 1.0);
  faults.SetDelayMicros(FaultSite::kWriterStall, 200000);  // 200ms stall
  EngineOptions opt;
  opt.num_query_threads = 2;
  opt.serving.writer_stall_ms = 20;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  EXPECT_FALSE(engine.Stats().degraded);

  const Weight before = engine.Submit({0, 7}).get().distance;
  engine.EnqueueUpdate(0, 1);
  // The stalled writer makes no progress with one update pending: the
  // watchdog must flip degraded within the 200ms stall window.
  bool entered = false;
  const auto deadline = steady_clock::now() + milliseconds(5000);
  while (steady_clock::now() < deadline) {
    EngineStats s = engine.Stats();
    if (s.degraded) {
      entered = true;
      EXPECT_GE(s.staleness_epochs, 1u);
      break;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(entered) << "watchdog never flipped degraded";
  // Degraded mode still SERVES — exactly, from the pinned stale epoch.
  EXPECT_EQ(engine.Submit({0, 7}).get().distance, before);
  // The stall passes, the writer applies, the watchdog recovers.
  engine.Flush();
  bool recovered = false;
  const auto rec_deadline = steady_clock::now() + milliseconds(5000);
  while (steady_clock::now() < rec_deadline) {
    EngineStats s = engine.Stats();
    if (!s.degraded) {
      recovered = true;
      EXPECT_EQ(s.staleness_epochs, 0u);
      break;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(recovered) << "degraded mode never cleared";
  EXPECT_GE(engine.Stats().degraded_entries, 1u);
}

TEST(FaultTest, ApplyFailureDropsBatchButServingStaysExact) {
  Graph g = testing_util::SmallRoadNetwork(5, 24);
  Graph ref = g;
  SeededFaultInjector faults(24);
  faults.SetRate(FaultSite::kApplyFailure, 1.0);
  EngineOptions opt;
  opt.num_query_threads = 2;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  engine.EnqueueUpdate(0, ref.EdgeWeight(0) + 5);
  engine.Flush();
  EngineStats stats = engine.Stats();
  EXPECT_GE(stats.apply_failures, 1u);
  EXPECT_EQ(stats.epochs_published, 0u) << "dropped batch must not publish";
  // The master state was untouched: answers still match epoch 0.
  Dijkstra dij(ref);
  QueryResult r = engine.Submit({0, ref.NumVertices() - 1}).get();
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(r.distance, dij.Distance(0, ref.NumVertices() - 1));
  // The fault clears; the next update applies and publishes.
  faults.Clear();
  engine.EnqueueUpdate(0, ref.EdgeWeight(0) + 5);
  engine.Flush();
  EXPECT_EQ(engine.Stats().epochs_published, 1u);
}

TEST(FaultTest, CompletionDropCandidateStillDeliversExactlyOnce) {
  Graph g = testing_util::SmallRoadNetwork(5, 25);
  const uint32_t n = g.NumVertices();
  SeededFaultInjector faults(25);
  faults.SetRate(FaultSite::kCompletionDropCandidate, 1.0);
  EngineOptions opt;
  opt.num_query_threads = 2;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  CompletionQueue queue;
  constexpr uint64_t kTags = 300;
  Rng rng(25);
  for (uint64_t tag = 0; tag < kTags; ++tag) {
    engine.SubmitTagged({static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n))},
                        tag, &queue);
  }
  std::set<uint64_t> seen;
  Completion out[32];
  while (seen.size() < kTags) {
    const size_t got = queue.WaitPoll(out, 32);
    for (size_t i = 0; i < got; ++i) {
      EXPECT_TRUE(seen.insert(out[i].tag).second)
          << "tag " << out[i].tag << " delivered twice";
    }
  }
  // Every delivery's first attempt was a drop candidate; the retry
  // path redelivered all of them.
  EXPECT_EQ(engine.Stats().completions_retried, kTags);
}

// --------------------------------------------------- shutdown drain

TEST(ShutdownDrainTest, DeadlineFailsResidualTagsAsOverloaded) {
  Graph g = testing_util::SmallRoadNetwork(5, 26);
  const uint32_t n = g.NumVertices();
  SeededFaultInjector faults(26);
  faults.SetRate(FaultSite::kReaderDelay, 1.0);
  faults.SetDelayMicros(FaultSite::kReaderDelay, 20000);  // 20ms/query
  CompletionQueue queue;
  constexpr uint64_t kTags = 32;
  {
    EngineOptions opt;
    opt.num_query_threads = 1;
    opt.serving.shutdown_drain_ms = 30;  // << 32 queries x 20ms
    opt.serving.fault_injector = &faults;
    QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
    Rng rng(26);
    for (uint64_t tag = 0; tag < kTags; ++tag) {
      engine.SubmitTagged({static_cast<Vertex>(rng.NextBounded(n)),
                           static_cast<Vertex>(rng.NextBounded(n))},
                          tag, &queue);
    }
    // Destructor: drains for <= 30ms, then fails the residual queue.
  }
  std::map<uint64_t, StatusCode> seen;
  Completion out[32];
  size_t got;
  while ((got = queue.Poll(out, 32)) > 0) {
    for (size_t i = 0; i < got; ++i) {
      EXPECT_TRUE(seen.emplace(out[i].tag, out[i].code).second)
          << "tag " << out[i].tag << " delivered twice";
    }
  }
  ASSERT_EQ(seen.size(), kTags) << "every tag delivered despite the drain";
  size_t failed = 0;
  for (const auto& [tag, code] : seen) {
    if (code == StatusCode::kOverloaded) ++failed;
  }
  EXPECT_GT(failed, 0u) << "30ms drain cannot answer 32 x 20ms queries";
}

// ------------------------------------------------------------ chaos

// The full chaos matrix, per backend: every fault site armed at once,
// tight admission bounds, deadlines on part of the traffic, one updater
// thread streaming weight changes — and at the end, the invariants:
// every tag delivered exactly once, every ANSWERED batch query exact
// for its pinned epoch (Dijkstra audit), and clean recovery (faults
// cleared -> a final batch is fully answered and exact).
class ChaosBackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(ChaosBackendTest, InvariantsHoldUnderAllFaults) {
  Graph g = testing_util::SmallRoadNetwork(6, 27);
  Graph ref = g;
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  SeededFaultInjector faults(1234);
  faults.SetRate(FaultSite::kReaderDelay, 0.05);
  faults.SetDelayMicros(FaultSite::kReaderDelay, 500);
  faults.SetRate(FaultSite::kWriterStall, 0.2);
  faults.SetDelayMicros(FaultSite::kWriterStall, 2000);
  faults.SetRate(FaultSite::kApplyFailure, 0.3);
  faults.SetRate(FaultSite::kCompletionDropCandidate, 0.2);
  // Armed for completeness of the matrix; the site lives on the
  // sharded writer, so it never fires on the flat engine. The sharded
  // test below asserts that it fires and that the fallback stays exact.
  faults.SetRate(FaultSite::kOverlayRepair, 0.5);

  EngineOptions opt;
  opt.backend = GetParam();
  opt.num_query_threads = 2;
  opt.max_batch_size = 8;
  opt.result_cache_entries = 1u << 10;
  opt.serving.max_queued_queries = 32;
  opt.serving.max_queued_batches = 4;
  opt.serving.admission_policy = AdmissionPolicy::kShedOldest;
  opt.serving.writer_stall_ms = 5;
  opt.serving.fault_injector = &faults;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);

  std::atomic<bool> stop{false};
  std::thread updater([&engine, m, &stop] {
    Rng urng(4321);
    while (!stop.load()) {
      engine.EnqueueUpdate(static_cast<EdgeId>(urng.NextBounded(m)),
                           1 + static_cast<Weight>(urng.NextBounded(50)));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  CompletionQueue queue;
  Rng rng(27);
  uint64_t next_tag = 0;
  std::vector<QueryEngine::Ticket> tickets;
  std::vector<std::vector<QueryPair>> ticket_queries;
  // 40 waves: single tagged queries (some with tight deadlines)
  // interleaved with audited batches.
  for (int wave = 0; wave < 40; ++wave) {
    for (int i = 0; i < 8; ++i) {
      const Deadline dl =
          i % 4 == 3 ? steady_clock::now() + std::chrono::microseconds(200)
                     : kNoDeadline;
      engine.SubmitTagged({static_cast<Vertex>(rng.NextBounded(n)),
                           static_cast<Vertex>(rng.NextBounded(n))},
                          next_tag++, &queue, dl);
    }
    std::vector<QueryPair> batch;
    for (int i = 0; i < 12; ++i) {
      batch.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n)));
    }
    tickets.push_back(engine.SubmitBatch(batch));
    ticket_queries.push_back(std::move(batch));
  }
  stop.store(true);
  updater.join();

  // Invariant 1: every single-query tag delivered exactly once, no
  // matter how it completed.
  std::set<uint64_t> seen;
  Completion out[64];
  while (seen.size() < next_tag) {
    const size_t got = queue.WaitPoll(out, 64, milliseconds(5000));
    ASSERT_GT(got, 0u) << "lost tags: " << seen.size() << "/" << next_tag;
    for (size_t i = 0; i < got; ++i) {
      EXPECT_TRUE(seen.insert(out[i].tag).second)
          << "tag " << out[i].tag << " delivered twice";
    }
  }

  // Invariant 2: every ANSWERED batch query is exact for the weights of
  // its ticket's pinned epoch (shed/expired queries carry their code).
  testing_util::EpochOracle oracle;
  for (size_t w = 0; w < tickets.size(); ++w) {
    QueryEngine::Ticket& t = tickets[w];
    t.Wait();
    Dijkstra& audit = oracle.For(t.epoch(), t.snapshot()->graph);
    for (size_t i = 0; i < t.size(); ++i) {
      if (t.code(i) != StatusCode::kOk) continue;
      const QueryPair& q = ticket_queries[w][i];
      ASSERT_EQ(t.distance(i), audit.Distance(q.first, q.second))
          << "backend " << static_cast<int>(GetParam()) << " wave " << w
          << " query " << i << " epoch " << t.epoch();
    }
  }

  // Invariant 3: recovery. Faults cleared, backlog flushed: a final
  // batch is fully answered and exact, and the engine is not degraded.
  faults.Clear();
  engine.Flush();
  std::vector<QueryPair> final_batch;
  for (int i = 0; i < 32; ++i) {
    final_batch.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                             static_cast<Vertex>(rng.NextBounded(n)));
  }
  QueryEngine::Ticket final_ticket = engine.SubmitBatch(final_batch);
  final_ticket.Wait();
  Dijkstra final_dij(final_ticket.snapshot()->graph);
  for (size_t i = 0; i < final_ticket.size(); ++i) {
    ASSERT_EQ(final_ticket.code(i), StatusCode::kOk) << i;
    ASSERT_EQ(final_ticket.distance(i),
              final_dij.Distance(final_batch[i].first,
                                 final_batch[i].second))
        << i;
  }
  const auto rec_deadline = steady_clock::now() + milliseconds(5000);
  while (engine.Stats().degraded && steady_clock::now() < rec_deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_FALSE(engine.Stats().degraded);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ChaosBackendTest,
    ::testing::Values(BackendKind::kStl, BackendKind::kCh,
                      BackendKind::kH2h, BackendKind::kHc2l));

// The sharded engine inherits the same hardening through ServingCore:
// one combined smoke over admission + deadlines + faults + teardown.
TEST(ShardedRobustnessTest, OverloadMachineryWorksThroughShardedEngine) {
  Graph g = testing_util::SmallRoadNetwork(6, 28);
  Graph ref = g;
  const uint32_t n = g.NumVertices();
  SeededFaultInjector faults(28);
  faults.SetRate(FaultSite::kCompletionDropCandidate, 1.0);
  ShardedEngineOptions opt;
  opt.target_shards = 2;
  opt.num_query_threads = 2;
  opt.serving.max_queued_queries = 16;
  opt.serving.admission_policy = AdmissionPolicy::kRejectNew;
  opt.serving.writer_stall_ms = 50;
  opt.serving.shutdown_drain_ms = 2000;
  opt.serving.fault_injector = &faults;
  ShardedEngine engine(std::move(g), HierarchyOptions{}, opt);

  // Past deadline expires through the sharded submission path too.
  ShardedQueryResult expired =
      engine.Submit({0, 7}, steady_clock::now() - milliseconds(1)).get();
  EXPECT_EQ(expired.code, StatusCode::kDeadlineExceeded);

  // Tagged traffic with the drop-candidate site armed: exactly once.
  CompletionQueue queue;
  constexpr uint64_t kTags = 100;
  Rng rng(28);
  for (uint64_t tag = 0; tag < kTags; ++tag) {
    engine.SubmitTagged({static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n))},
                        tag, &queue);
  }
  std::set<uint64_t> seen;
  Completion out[32];
  while (seen.size() < kTags) {
    const size_t got = queue.WaitPoll(out, 32, milliseconds(5000));
    ASSERT_GT(got, 0u);
    for (size_t i = 0; i < got; ++i) {
      EXPECT_TRUE(seen.insert(out[i].tag).second);
    }
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.completions_retried, kTags);
  EXPECT_EQ(stats.queries_deadline_exceeded, 1u);
  // Served answers stayed exact (epoch 0: no updates were enqueued).
  Dijkstra dij(ref);
  ShardedEngine::Ticket t =
      engine.SubmitBatch({{0, n - 1}, {3, 11}, {5, 5}});
  t.Wait();
  EXPECT_EQ(t.distance(0), dij.Distance(0, n - 1));
  EXPECT_EQ(t.distance(1), dij.Distance(3, 11));
  EXPECT_EQ(t.distance(2), 0u);
}

// kOverlayRepair: the sharded writer treats incremental overlay repair
// as infeasible whenever the site fires and takes the from-scratch
// fallback instead. Both paths publish the same exact table, so every
// epoch must stay Dijkstra-exact through a fault schedule that flips
// between them — and once the fault clears, repair resumes (full
// rebuilds stop accumulating under localized updates).
TEST(ShardedRobustnessTest, OverlayRepairFaultFallsBackExactly) {
  Graph g = testing_util::SmallRoadNetwork(7, 29);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  SeededFaultInjector faults(29);
  faults.SetRate(FaultSite::kOverlayRepair, 0.6);
  ShardedEngineOptions opt;
  opt.target_shards = 4;
  opt.num_query_threads = 2;
  opt.max_batch_size = 4;
  opt.serving.fault_injector = &faults;
  ShardedEngine engine(std::move(g), HierarchyOptions{}, opt);
  Rng rng(29);
  auto audit_epoch = [&](const char* phase) {
    auto snap = engine.CurrentSnapshot();
    Dijkstra dij(snap->graph);
    for (int i = 0; i < 30; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      ASSERT_EQ(snap->Query(s, t), dij.Distance(s, t))
          << phase << " s=" << s << " t=" << t;
    }
  };
  for (int round = 0; round < 10; ++round) {
    std::vector<WeightUpdate> updates;
    for (int i = 0; i < 2; ++i) {
      updates.push_back(
          WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                       1 + static_cast<Weight>(rng.NextBounded(300))});
    }
    engine.EnqueueUpdates(updates);
    engine.Flush();
    audit_epoch("faulted");
  }
  EXPECT_GT(faults.fired(FaultSite::kOverlayRepair), 0u);
  EngineStats stats = engine.Stats();
  EXPECT_GT(stats.overlay_full_rebuilds, 0u);
  EXPECT_GT(stats.overlay_rows_total, 0u);

  // Recovery: fault cleared, localized updates repair incrementally
  // again — the full-rebuild counter stays flat.
  faults.Clear();
  const uint64_t rebuilds_at_clear = stats.overlay_full_rebuilds;
  const uint64_t fired_at_clear = faults.fired(FaultSite::kOverlayRepair);
  for (int round = 0; round < 6; ++round) {
    const EdgeId e = static_cast<EdgeId>(rng.NextBounded(m));
    engine.EnqueueUpdates({WeightUpdate{
        e, 0, 1 + static_cast<Weight>(rng.NextBounded(300))}});
    engine.Flush();
    audit_epoch("recovered");
  }
  EXPECT_EQ(faults.fired(FaultSite::kOverlayRepair), fired_at_clear);
  stats = engine.Stats();
  EXPECT_GT(stats.epochs_published, 10u);
  EXPECT_LT(stats.overlay_full_rebuilds - rebuilds_at_clear, 6u)
      << "repair never resumed after the fault cleared";
}

// ------------------------------------------------- transport chaos

// Edges owned by a cell (neither endpoint on the separator): updating
// one forces that shard to republish, so a frozen replica falls behind
// the pinned shard_epoch DETERMINISTICALLY — boundary-edge updates only
// touch the overlay, which the router serves locally.
std::vector<EdgeId> IntraCellEdges(const ShardedSnapshot& snap,
                                   size_t max_edges) {
  std::vector<EdgeId> out;
  const ShardLayout& lay = *snap.layout;
  for (EdgeId e = 0; e < snap.graph.NumEdges() && out.size() < max_edges;
       ++e) {
    const Edge& edge = snap.graph.GetEdge(e);
    if (lay.shard_of_vertex[edge.u] != CellPartition::kBoundaryCell &&
        lay.shard_of_vertex[edge.v] != CellPartition::kBoundaryCell) {
      out.push_back(e);
    }
  }
  return out;
}

// Routed tier under a hostile transport (drops, delays, duplicates all
// armed at once): every submitted tag still completes exactly once,
// every ANSWERED query is exact for its epoch, and failures are the
// typed kUnavailable — never a lost tag, never a doubled one, never a
// wrong distance.
TEST(TransportChaosTest, TagsExactlyOnceUnderDropDelayDuplicate) {
  Graph g = testing_util::SmallRoadNetwork(6, 811);
  const uint32_t n = g.NumVertices();
  SeededFaultInjector faults(811);
  faults.SetRate(FaultSite::kTransportDrop, 0.25);
  faults.SetRate(FaultSite::kTransportDelay, 0.2);
  faults.SetDelayMicros(FaultSite::kTransportDelay, 200);
  faults.SetRate(FaultSite::kTransportDuplicate, 0.25);
  LoopbackCluster cluster =
      MakeLoopbackCluster(2, ShardReplicaOptions{}, &faults);
  ShardRouterOptions opt;
  opt.engine.target_shards = 4;
  opt.engine.num_query_threads = 2;
  opt.num_query_threads = 4;
  ShardRouter router(std::move(g), HierarchyOptions{}, opt,
                     cluster.transport.get(), cluster.replica_ptrs());
  const std::shared_ptr<const ShardedSnapshot> snap0 =
      router.CurrentSnapshot();
  Dijkstra audit(snap0->graph);  // no updates: epoch 0 throughout

  CompletionQueue queue;
  Rng rng(812);
  constexpr uint64_t kTags = 512;
  std::map<uint64_t, QueryPair> submitted;
  {
    std::vector<QueryPair> queries;
    std::vector<uint64_t> tags;
    for (uint64_t i = 0; i < kTags; ++i) {
      QueryPair q{static_cast<Vertex>(rng.NextBounded(n)),
                  static_cast<Vertex>(rng.NextBounded(n))};
      queries.push_back(q);
      tags.push_back(i);
      submitted.emplace(i, q);
    }
    router.SubmitBatchTagged(queries, tags, &queue).Wait();
  }

  // Invariant 1: every tag exactly once — nothing lost, nothing doubled,
  // transport duplicates notwithstanding.
  std::set<uint64_t> seen;
  uint64_t unavailable = 0;
  Completion out[64];
  while (seen.size() < kTags) {
    const size_t got = queue.WaitPoll(out, 64, milliseconds(5000));
    ASSERT_GT(got, 0u) << "completion queue starved with "
                       << (kTags - seen.size()) << " tags outstanding";
    for (size_t i = 0; i < got; ++i) {
      ASSERT_TRUE(seen.insert(out[i].tag).second)
          << "tag " << out[i].tag << " delivered twice";
      // Invariant 2: answered queries are exact; failed ones carry the
      // typed kUnavailable, nothing else (no overload knobs are armed).
      const QueryPair q = submitted.at(out[i].tag);
      if (out[i].code == StatusCode::kOk) {
        ASSERT_EQ(out[i].distance, audit.Distance(q.first, q.second))
            << "tag " << out[i].tag;
      } else {
        ASSERT_EQ(out[i].code, StatusCode::kUnavailable);
        ++unavailable;
      }
    }
  }
  EXPECT_EQ(queue.size(), 0u);

  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.serving.queries_served + stats.serving.queries_unavailable,
            kTags);
  EXPECT_EQ(stats.serving.queries_unavailable, unavailable);
  // The chaos actually happened and the machinery absorbed it.
  EXPECT_GT(faults.fired(FaultSite::kTransportDrop), 0u);
  EXPECT_GT(faults.fired(FaultSite::kTransportDuplicate), 0u);
  EXPECT_GT(stats.rpc_duplicates_dropped, 0u);
  EXPECT_GT(stats.rpc_failovers, 0u);  // dropped sends recovered on a sibling
  EXPECT_GT(stats.rpc_retries, 0u);
}

// Deterministic failover: one replica frozen before an update falls
// behind the pinned epoch; every query still answers (the sibling
// serves), and the stale replica's refusals are visible in the stats.
TEST(TransportChaosTest, StaleReplicaFailsOverToSibling) {
  Graph g = testing_util::SmallRoadNetwork(6, 823);
  const uint32_t n = g.NumVertices();
  LoopbackCluster cluster = MakeLoopbackCluster(2);
  ShardRouterOptions opt;
  opt.engine.target_shards = 4;
  opt.engine.num_query_threads = 2;
  opt.num_query_threads = 2;
  ShardRouter router(std::move(g), HierarchyOptions{}, opt,
                     cluster.transport.get(), cluster.replica_ptrs());

  // Freeze replica 0, then republish a shard: it now misses the epoch.
  cluster.replicas[0]->SetFrozen(true);
  Rng rng(823);
  const std::vector<EdgeId> dirty =
      IntraCellEdges(*router.CurrentSnapshot(), 4);
  ASSERT_FALSE(dirty.empty());
  const std::shared_ptr<const ShardedSnapshot> before =
      router.CurrentSnapshot();
  std::vector<WeightUpdate> updates;
  for (EdgeId e : dirty) {
    // old + 1: guaranteed effective, so the shard definitely republishes.
    updates.push_back(WeightUpdate{e, 0, before->graph.EdgeWeight(e) + 1});
  }
  router.EnqueueUpdates(updates);
  router.Flush();
  ASSERT_GT(router.CurrentEpoch(), 0u);

  const std::shared_ptr<const ShardedSnapshot> snap =
      router.CurrentSnapshot();
  Dijkstra audit(snap->graph);
  for (int i = 0; i < 64; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ShardedQueryResult r = router.Submit({s, t}).get();
    ASSERT_EQ(r.code, StatusCode::kOk) << "s=" << s << " t=" << t;
    ASSERT_EQ(r.distance, audit.Distance(s, t)) << "s=" << s << " t=" << t;
  }

  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.serving.queries_unavailable, 0u);
  // Round-robin landed some fetches on the stale replica first; every
  // one of those refused (kUnavailable at the pinned epoch) and failed
  // over to the live sibling.
  EXPECT_GT(stats.rpc_failovers, 0u);
  EXPECT_GT(stats.rpc_stale_responses, 0u);
  EXPECT_GT(cluster.replicas[0]->requests_rejected(), 0u);
  EXPECT_GT(cluster.replicas[1]->requests_served(), 0u);
}

// kUnavailable is reserved for total replica failure: with EVERY
// replica frozen behind the pinned epoch, RPC-dependent queries fail
// typed (and only those — local-only routes still answer exactly).
TEST(TransportChaosTest, AllReplicasStaleYieldTypedUnavailable) {
  Graph g = testing_util::SmallRoadNetwork(6, 827);
  const uint32_t n = g.NumVertices();
  LoopbackCluster cluster = MakeLoopbackCluster(2);
  ShardRouterOptions opt;
  opt.engine.target_shards = 4;
  opt.engine.num_query_threads = 2;
  opt.num_query_threads = 2;
  ShardRouter router(std::move(g), HierarchyOptions{}, opt,
                     cluster.transport.get(), cluster.replica_ptrs());

  for (auto& replica : cluster.replicas) replica->SetFrozen(true);
  Rng rng(827);
  const std::vector<EdgeId> dirty =
      IntraCellEdges(*router.CurrentSnapshot(), 1);
  ASSERT_FALSE(dirty.empty());
  // old + 1: guaranteed effective, so the shard definitely republishes.
  router.EnqueueUpdate(
      dirty[0], router.CurrentSnapshot()->graph.EdgeWeight(dirty[0]) + 1);
  router.Flush();
  ASSERT_GT(router.CurrentEpoch(), 0u);

  uint64_t unavailable = 0;
  for (int i = 0; i < 48; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ShardedQueryResult r = router.Submit({s, t}).get();
    if (r.code == StatusCode::kUnavailable) {
      ++unavailable;
    } else {
      // Only routes that never touch a replica (s == t, both endpoints
      // boundary) may still answer — and they answer exactly.
      ASSERT_EQ(r.code, StatusCode::kOk);
      ASSERT_EQ(r.distance, r.snapshot->Query(s, t));
    }
  }
  EXPECT_GT(unavailable, 0u);
  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.serving.queries_unavailable, unavailable);

  // Thaw: replicas resume installing on the next publish and service
  // recovers completely.
  for (auto& replica : cluster.replicas) replica->SetFrozen(false);
  router.EnqueueUpdate(
      dirty[0], router.CurrentSnapshot()->graph.EdgeWeight(dirty[0]) + 1);
  router.Flush();
  const std::shared_ptr<const ShardedSnapshot> snap =
      router.CurrentSnapshot();
  Dijkstra audit(snap->graph);
  for (int i = 0; i < 32; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ShardedQueryResult r = router.Submit({s, t}).get();
    ASSERT_EQ(r.code, StatusCode::kOk);
    ASSERT_EQ(r.distance, audit.Distance(s, t));
  }
}

// ------------------------------------------------------ socket chaos

// The routed tier over REAL sockets with kSocketShortIo armed on both
// sides of the wire: every client and server I/O may be clamped to one
// byte, and every eighth firing per connection severs the stream
// mid-frame. The invariants are the same as the loopback chaos matrix:
// every tag completes exactly once, every answered query is exact for
// its epoch, failures are the typed kUnavailable — and once the fault
// clears, service recovers completely over fresh connections.
TEST(SocketChaosTest, TagsExactlyOnceUnderShortIoAndDisconnects) {
  Graph g = testing_util::SmallRoadNetwork(6, 907);
  const uint32_t n = g.NumVertices();
  SeededFaultInjector faults(907);
  faults.SetRate(FaultSite::kSocketShortIo, 0.02);

  // Two ReplicaNodes behind FrameServers whose accepted connections are
  // ALSO fault-armed, so partial I/O and severs hit both directions.
  ShardedEngineOptions engine_opt;
  engine_opt.target_shards = 4;
  engine_opt.num_query_threads = 2;
  engine_opt.max_batch_size = 8;
  std::vector<std::unique_ptr<ReplicaNode>> nodes;
  std::vector<std::unique_ptr<FrameServer>> servers;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<ReplicaNode>(
        testing_util::SmallRoadNetwork(6, 907), HierarchyOptions{},
        engine_opt));
    ReplicaNode* raw = nodes.back().get();
    FrameServer::Options server_opt;
    server_opt.faults = &faults;
    servers.push_back(std::make_unique<FrameServer>(
        server_opt, [raw](const uint8_t* data, size_t size) {
          return raw->Handle(data, size);
        }));
    ASSERT_TRUE(servers.back()->Start().ok());
    endpoints.push_back("127.0.0.1:" +
                        std::to_string(servers.back()->port()));
  }

  SocketTransportOptions transport_opt;
  transport_opt.faults = &faults;
  transport_opt.backoff_initial = milliseconds(1);
  transport_opt.backoff_max = milliseconds(10);
  SocketTransport transport(endpoints, transport_opt);

  ShardRouterOptions opt;
  opt.engine = engine_opt;
  opt.num_query_threads = 4;
  ShardRouter router(std::move(g), HierarchyOptions{}, opt, &transport, {});
  const std::shared_ptr<const ShardedSnapshot> snap0 =
      router.CurrentSnapshot();
  Dijkstra audit(snap0->graph);  // no updates: epoch 0 throughout

  CompletionQueue queue;
  Rng rng(908);
  constexpr uint64_t kTags = 256;
  std::map<uint64_t, QueryPair> submitted;
  {
    std::vector<QueryPair> queries;
    std::vector<uint64_t> tags;
    for (uint64_t i = 0; i < kTags; ++i) {
      QueryPair q{static_cast<Vertex>(rng.NextBounded(n)),
                  static_cast<Vertex>(rng.NextBounded(n))};
      queries.push_back(q);
      tags.push_back(i);
      submitted.emplace(i, q);
    }
    router.SubmitBatchTagged(queries, tags, &queue).Wait();
  }

  // Exactly once per tag, exact or typed — zero lost, zero doubled,
  // socket severs notwithstanding.
  std::set<uint64_t> seen;
  uint64_t unavailable = 0;
  Completion out[64];
  while (seen.size() < kTags) {
    const size_t got = queue.WaitPoll(out, 64, milliseconds(10000));
    ASSERT_GT(got, 0u) << "completion queue starved with "
                       << (kTags - seen.size()) << " tags outstanding";
    for (size_t i = 0; i < got; ++i) {
      ASSERT_TRUE(seen.insert(out[i].tag).second)
          << "tag " << out[i].tag << " delivered twice";
      const QueryPair q = submitted.at(out[i].tag);
      if (out[i].code == StatusCode::kOk) {
        ASSERT_EQ(out[i].distance, audit.Distance(q.first, q.second))
            << "tag " << out[i].tag;
      } else {
        ASSERT_EQ(out[i].code, StatusCode::kUnavailable);
        ++unavailable;
      }
    }
  }
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_GT(faults.fired(FaultSite::kSocketShortIo), 0u)
      << "short-I/O schedule never fired; the chaos was vacuous";
  RouterStats mid = router.Stats();
  EXPECT_EQ(mid.serving.queries_served + mid.serving.queries_unavailable,
            kTags);
  EXPECT_EQ(mid.serving.queries_unavailable, unavailable);

  // Fault clears: the transport redials severed channels lazily and
  // every query answers exactly again.
  faults.Clear();
  for (int i = 0; i < 64; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ShardedQueryResult r = router.Submit({s, t}).get();
    ASSERT_EQ(r.code, StatusCode::kOk) << "post-recovery i=" << i;
    ASSERT_EQ(r.distance, audit.Distance(s, t)) << "post-recovery i=" << i;
  }
}

}  // namespace
}  // namespace stl
