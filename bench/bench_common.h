// Shared helpers for the benchmark harnesses. Each bench binary
// regenerates one table or figure of the paper on the synthetic dataset
// registry (see DESIGN.md §4 for the experiment index and the expected
// shapes). STL_BENCH_SCALE=small|medium|large selects dataset count and
// workload sizes.
#ifndef STL_BENCH_BENCH_COMMON_H_
#define STL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"

namespace stl {
namespace bench {

/// Workload sizes per scale.
struct BenchConfig {
  BenchScale scale;
  std::vector<DatasetSpec> datasets;
  size_t query_count;       // random queries for Table 5
  size_t batch_size;        // updates per batch for Table 3
  size_t num_batches;       // batches for Table 3
  size_t per_query_set;     // pairs per Q_i for Figure 9
};

inline BenchConfig MakeConfig() {
  BenchConfig cfg;
  cfg.scale = ScaleFromEnv();
  cfg.datasets = DatasetsForScale(cfg.scale);
  switch (cfg.scale) {
    case BenchScale::kSmall:
      cfg.query_count = 100000;
      cfg.batch_size = 100;
      cfg.num_batches = 3;
      cfg.per_query_set = 2000;
      break;
    case BenchScale::kMedium:
      cfg.query_count = 300000;
      cfg.batch_size = 300;
      cfg.num_batches = 5;
      cfg.per_query_set = 5000;
      break;
    case BenchScale::kLarge:
      cfg.query_count = 1000000;
      cfg.batch_size = 1000;
      cfg.num_batches = 10;
      cfg.per_query_set = 10000;
      break;
  }
  return cfg;
}

inline const char* ScaleName(BenchScale s) {
  switch (s) {
    case BenchScale::kSmall:
      return "small";
    case BenchScale::kMedium:
      return "medium";
    case BenchScale::kLarge:
      return "large";
  }
  return "?";
}

inline void PrintHeader(const char* what, const BenchConfig& cfg) {
  std::printf("== %s ==\n", what);
  std::printf(
      "scale=%s (STL_BENCH_SCALE), datasets=%zu — synthetic stand-ins for "
      "the paper's DIMACS/PTV networks (DESIGN.md §3)\n\n",
      ScaleName(cfg.scale), cfg.datasets.size());
}

/// Keeps `value` observable so the compiler cannot elide the computation
/// that produced it (same idea as benchmark::DoNotOptimize, dependency-
/// free so the table harnesses need not link google-benchmark).
inline void DoNotOptimize(uint64_t value) {
  asm volatile("" : : "r"(value) : "memory");
}

/// Mean time per query in microseconds over the pair list.
template <typename QueryFn>
double TimeQueriesMicros(const std::vector<QueryPair>& pairs, QueryFn&& fn) {
  // One warmup pass keeps first-touch cache effects out of the numbers.
  uint64_t sink = 0;
  for (size_t i = 0; i < pairs.size() && i < 1000; ++i) {
    sink += fn(pairs[i].first, pairs[i].second);
  }
  Timer t;
  for (const auto& [s, u] : pairs) sink += fn(s, u);
  DoNotOptimize(sink);
  return pairs.empty() ? 0.0 : t.ElapsedMicros() / pairs.size();
}

}  // namespace bench
}  // namespace stl

#endif  // STL_BENCH_BENCH_COMMON_H_
