#include "dist/shard_router.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "partition/cells.h"
#include "util/logging.h"
#include "util/simd.h"

namespace stl {

namespace {

/// Saturates the three-term routing sums back into the Weight range —
/// the same clamp as the in-process router (bit-identity requires the
/// identical arithmetic range).
inline Weight ClampInf(uint64_t d) {
  return d >= kInfDistance ? kInfDistance : static_cast<Weight>(d);
}

ServingCoreOptions RouterCoreOptions(const ShardRouterOptions& options) {
  ServingCoreOptions core;
  core.num_query_threads = options.num_query_threads;
  core.max_batch_size = options.max_batch_size;
  core.result_cache_entries = options.result_cache_entries;
  core.serving = options.serving;
  return core;
}

/// Key of a fetched boundary row: which vertex's row, on which shard.
inline uint64_t RowKey(uint32_t shard, Vertex v) {
  return (static_cast<uint64_t>(v) << 32) | shard;
}

/// Key of a fetched same-cell point distance (the owning shard is a
/// function of s, so (s, t) identifies the fetch).
inline uint64_t PointKey(Vertex s, Vertex t) {
  return (static_cast<uint64_t>(s) << 32) | t;
}

}  // namespace

// ------------------------------------------------------------ SpanFanout

// The scatter-gather state of one routed span (a batch chunk, or a
// single query in RouteAsync's one-element mode). Two phases:
//
//   scatter — enumerate every UNIQUE row/point fetch the span's
//     decompositions need (slots pre-created so the map never rehashes
//     under concurrent arrivals), then issue them all through
//     CallReplicaAsync. Each arrival writes only its own slot; no lock.
//
//   gather — the LAST arrival (pending counter, acq_rel so every
//     slot write happens-before the read side) runs Compute(): a
//     sequential pass over the span in submission-sorted order, doing
//     the exact min-plus arithmetic of the in-process router on the
//     prefetched rows. One thread, deterministic order, bit-identical
//     answers.
//
// Kept alive by the shared_ptr each in-flight callback captures; the
// issuing reader thread returns as soon as the scatter loop finishes.
struct ShardRouter::SpanFanout
    : public std::enable_shared_from_this<ShardRouter::SpanFanout> {
  ShardRouter* router = nullptr;
  std::shared_ptr<const ShardedSnapshot> snap;
  const QueryPair* queries = nullptr;
  const uint32_t* idx = nullptr;
  size_t count = 0;
  Weight* out = nullptr;
  StatusCode* codes = nullptr;
  std::function<void()> done;

  // Single-query mode (RouteAsync): the span pointers alias these.
  QueryPair one_query{0, 0};
  uint32_t one_idx = 0;
  Weight one_out = kInfDistance;
  StatusCode one_code = StatusCode::kOk;

  // (vertex << 32 | shard) -> fetched row; nullopt = replica-exhausted
  // (or malformed width). Slots pre-created before any issue.
  std::unordered_map<uint64_t, std::optional<std::vector<Weight>>> rows;
  // (s << 32 | t) -> same-cell distance; nullopt = replica-exhausted.
  std::unordered_map<uint64_t, std::optional<Weight>> points;

  // Outstanding fetches + 1 (the scatter loop's own guard, dropped
  // after the last issue so an all-inline transport cannot fire the
  // gather before enumeration finishes).
  std::atomic<size_t> pending{1};

  // Compute-phase memo of the current group's inner vector
  // min_{b2} D[b1][b2] + dt[b2] (sequential; same reuse as the
  // in-process BatchRouteScratch).
  uint64_t inner_cs = ~uint64_t{0};
  uint64_t inner_ct = ~uint64_t{0};
  Vertex inner_t = 0;
  bool inner_ok = false;
  std::vector<Weight> inner;

  void Start() {
    const ShardLayout& lay = *snap->layout;
    // Pass 1: pre-create every unique slot (mirrors RouteOne's needs).
    for (size_t j = 0; j < count; ++j) {
      const QueryPair& q = queries[idx[j]];
      const Vertex s = q.first;
      const Vertex t = q.second;
      if (s == t) continue;
      const uint32_t cs = lay.shard_of_vertex[s];
      const uint32_t ct = lay.shard_of_vertex[t];
      const bool sb = cs == CellPartition::kBoundaryCell;
      const bool tb = ct == CellPartition::kBoundaryCell;
      if (sb && tb) continue;  // overlay-only: no replica involved
      if (!sb && !tb && cs == ct) points.try_emplace(PointKey(s, t));
      if (sb) {
        rows.try_emplace(RowKey(ct, t));
      } else if (tb) {
        rows.try_emplace(RowKey(cs, s));
      } else {
        rows.try_emplace(RowKey(cs, s));
        rows.try_emplace(RowKey(ct, t));
      }
    }
    // Pass 2: issue everything. From here on arrivals may run (inline
    // for a synchronous transport) on any thread; they only write
    // their own pre-created slot and decrement pending.
    pending.store(rows.size() + points.size() + 1,
                  std::memory_order_relaxed);
    auto self = shared_from_this();
    for (auto& [key, slot] : rows) {
      const uint32_t shard = static_cast<uint32_t>(key & 0xffffffffu);
      const Vertex v = static_cast<Vertex>(key >> 32);
      ShardRequest req;
      req.kind = WireKind::kBoundaryRow;
      req.shard = shard;
      req.shard_epoch = snap->shards[shard]->shard_epoch;  // pinned
      req.u = v;
      auto* slot_ptr = &slot;
      router->CallReplicaAsync(
          req, [self, slot_ptr, shard](bool ok, ShardResponse resp) {
            if (ok) {
              // Width guard: a malformed |S_i| row is as unusable as no
              // row (and, like the sync router, is not retried on
              // siblings — CallReplicaAsync already settled).
              const size_t width = self->snap->layout->shards[shard]
                                       .boundary_local.size();
              if (resp.row.size() == width) *slot_ptr = std::move(resp.row);
            }
            self->Arrive();
          });
    }
    for (auto& [key, slot] : points) {
      const Vertex s = static_cast<Vertex>(key >> 32);
      const Vertex t = static_cast<Vertex>(key & 0xffffffffu);
      ShardRequest req;
      req.kind = WireKind::kPointQuery;
      req.shard = lay.shard_of_vertex[s];
      req.shard_epoch = snap->shards[req.shard]->shard_epoch;  // pinned
      req.u = s;
      req.v = t;
      auto* slot_ptr = &slot;
      router->CallReplicaAsync(req,
                               [self, slot_ptr](bool ok, ShardResponse resp) {
                                 if (ok) *slot_ptr = resp.distance;
                                 self->Arrive();
                               });
    }
    Arrive();  // drop the scatter guard
  }

  /// One fetch landed (or the scatter loop finished): the last arrival
  /// runs the gather phase and the caller's continuation.
  void Arrive() {
    if (pending.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    Compute();
    // Run-and-release: `fn` may capture the ticket (or the single-mode
    // result slots through `this`, which outlives the call because the
    // invoking callback still holds its shared_ptr).
    std::function<void()> fn = std::move(done);
    done = nullptr;
    fn();
  }

  /// The sequential compute phase: exact RouteOne per query, reading
  /// the prefetched slots. Chunks touch disjoint out/codes slots.
  void Compute() {
    for (size_t j = 0; j < count; ++j) {
      const QueryPair& q = queries[idx[j]];
      out[idx[j]] =
          router->RouteOne(*snap, q.first, q.second, this, &codes[idx[j]]);
    }
  }

  /// The prefetched row of (shard, v); null when every replica failed.
  const std::vector<Weight>* Row(uint32_t shard, Vertex v) const {
    auto it = rows.find(RowKey(shard, v));
    STL_DCHECK(it != rows.end()) << "row not enumerated";
    return it->second ? &*it->second : nullptr;
  }

  /// The prefetched same-cell distance; false when every replica
  /// failed.
  bool Point(Vertex s, Vertex t, Weight* d) const {
    auto it = points.find(PointKey(s, t));
    STL_DCHECK(it != points.end()) << "point not enumerated";
    if (!it->second) return false;
    *d = *it->second;
    return true;
  }

  /// The current group's inner vector (memoised across the sequential
  /// span; same MinPlusRowsInto arithmetic as the in-process router).
  const std::vector<Weight>* Inner(uint32_t cs, uint32_t ct, Vertex t) {
    if (inner_cs != cs || inner_ct != ct || inner_t != t) {
      inner_cs = cs;
      inner_ct = ct;
      inner_t = t;
      inner_ok = false;
      const std::vector<Weight>* dt = Row(ct, t);
      if (dt != nullptr) {
        const ShardLayout::Shard& sshard = snap->layout->shards[cs];
        inner.resize(sshard.boundary_pos.size());
        snap->overlay->MinPlusRowsInto(
            ct, sshard.boundary_pos.data(),
            static_cast<uint32_t>(sshard.boundary_pos.size()), dt->data(),
            inner.data());
        inner_ok = true;
      }
    }
    return inner_ok ? &inner : nullptr;
  }
};

// ----------------------------------------------------------- PendingCall

// One RPC's failover chain: attempt k targets endpoint (start + k) % n
// with a fresh tag; a usable answer settles `done`, anything else
// chains to attempt k + 1 from whatever thread delivered the verdict.
// The encoded request is shared (encode once) across all attempts.
// Depth is bounded by n even with an inline-delivering transport.
struct ShardRouter::PendingCall
    : public std::enable_shared_from_this<ShardRouter::PendingCall> {
  ShardRouter* router = nullptr;
  std::shared_ptr<const std::vector<uint8_t>> encoded;
  uint32_t shard = 0;
  uint64_t shard_epoch = 0;
  uint32_t start = 0;
  uint32_t n = 0;
  std::function<void(bool, ShardResponse)> done;

  void TryNext(uint32_t k) {
    if (k == n) {
      // Replica exhaustion: the caller completes the query with a
      // typed kUnavailable.
      std::function<void(bool, ShardResponse)> fn = std::move(done);
      fn(false, ShardResponse{});
      return;
    }
    router->rpcs_sent_.fetch_add(1, std::memory_order_relaxed);
    if (k > 0) router->rpc_retries_.fetch_add(1, std::memory_order_relaxed);
    auto self = shared_from_this();
    const uint64_t tag = router->mailbox_.Register(
        [self, k](Status st, std::vector<uint8_t> payload) {
          self->OnReply(k, std::move(st), std::move(payload));
        });
    router->transport_->Send((start + k) % n, tag, encoded,
                             &router->mailbox_);
  }

  void OnReply(uint32_t k, Status st, std::vector<uint8_t> payload) {
    if (st.ok()) {
      ShardResponse r;
      const Status decoded =
          ShardResponse::Decode(payload.data(), payload.size(), &r);
      // Only a kOk answer at the EXACT pinned (shard, shard_epoch) is
      // usable — anything else (stale replica, malformed bytes) fails
      // over to the next sibling.
      if (decoded.ok() && r.code == StatusCode::kOk && r.shard == shard &&
          r.shard_epoch == shard_epoch) {
        if (k > 0) {
          router->rpc_failovers_.fetch_add(1, std::memory_order_relaxed);
        }
        std::function<void(bool, ShardResponse)> fn = std::move(done);
        fn(true, std::move(r));
        return;
      }
    }
    router->rpc_stale_.fetch_add(1, std::memory_order_relaxed);
    TryNext(k + 1);
  }
};

// -------------------------------------------------------------- Mailbox

uint64_t ShardRouter::Mailbox::Register(Callback callback) {
  const uint64_t tag = next_tag_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  calls_.emplace(tag, std::move(callback));
  return tag;
}

void ShardRouter::Mailbox::OnResponse(uint64_t tag, Status transport_status,
                                      std::vector<uint8_t> payload) {
  Callback callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = calls_.find(tag);
    if (it == calls_.end()) {
      // The tag was already settled: a transport duplicate. The
      // one-shot claim (erase-on-first-delivery) absorbs it here, so
      // it can never double-complete a user query.
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    callback = std::move(it->second);
    calls_.erase(it);
  }
  // Outside the lock: the callback may register the next failover
  // attempt (which takes mu_ again) or run the whole gather phase.
  callback(std::move(transport_status), std::move(payload));
}

// ---------------------------------------------------------- ShardRouter

ShardRouter::ShardRouter(Graph graph,
                         const HierarchyOptions& hierarchy_options,
                         const ShardRouterOptions& options,
                         Transport* transport,
                         std::vector<ShardReplica*> replicas)
    : options_(options),
      transport_(transport),
      replicas_(std::move(replicas)),
      engine_(std::move(graph), hierarchy_options, options.engine),
      core_(&policy_, RouterCoreOptions(options)) {
  STL_CHECK(transport_ != nullptr);
  core_.Start();  // installs + publishes the inner epoch 0
}

ShardRouter::~ShardRouter() = default;  // core_ drains first, then engine_

std::future<ShardedQueryResult> ShardRouter::Submit(QueryPair query,
                                                    Deadline deadline) {
  return core_.Submit(query, deadline);
}

ShardRouter::Ticket ShardRouter::SubmitBatch(
    const std::vector<QueryPair>& queries, Deadline deadline) {
  return core_.SubmitBatch(queries, deadline);
}

void ShardRouter::SubmitTagged(QueryPair query, uint64_t tag,
                               CompletionSink* sink, Deadline deadline) {
  core_.SubmitTagged(query, tag, sink, deadline);
}

ShardRouter::Ticket ShardRouter::SubmitBatchTagged(
    const std::vector<QueryPair>& queries,
    const std::vector<uint64_t>& tags, CompletionSink* sink,
    Deadline deadline) {
  return core_.SubmitBatchTagged(queries, tags, sink, deadline);
}

void ShardRouter::EnqueueUpdate(EdgeId edge, Weight new_weight) {
  core_.EnqueueUpdate(edge, new_weight);
}

void ShardRouter::EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
  core_.EnqueueUpdates(updates);
}

void ShardRouter::Flush() { core_.Flush(); }

std::shared_ptr<const ShardedSnapshot> ShardRouter::CurrentSnapshot()
    const {
  return core_.CurrentSnapshot();
}

RouterStats ShardRouter::Stats() const {
  RouterStats s;
  s.serving = core_.Stats();
  s.replicas = transport_->NumEndpoints();
  s.rpcs_sent = rpcs_sent_.load(std::memory_order_relaxed);
  s.rpc_retries = rpc_retries_.load(std::memory_order_relaxed);
  s.rpc_stale_responses = rpc_stale_.load(std::memory_order_relaxed);
  s.rpc_failovers = rpc_failovers_.load(std::memory_order_relaxed);
  s.rpc_duplicates_dropped = mailbox_.duplicates_dropped();
  s.wire_installs = wire_installs_.load(std::memory_order_relaxed);
  s.install_failures = install_failures_.load(std::memory_order_relaxed);
  return s;
}

void ShardRouter::ResetStats() {
  core_.ResetStats();
  rpcs_sent_.store(0, std::memory_order_relaxed);
  rpc_retries_.store(0, std::memory_order_relaxed);
  rpc_stale_.store(0, std::memory_order_relaxed);
  rpc_failovers_.store(0, std::memory_order_relaxed);
  mailbox_.ResetCounters();
}

void ShardRouter::InstallAndPublish(
    std::shared_ptr<const ShardedSnapshot> snap,
    const UpdateBatch& updates) {
  // Install BEFORE publish: once a reader can pin this epoch, every
  // replica already holds it, so a fresh query never fails on a
  // version that merely hasn't propagated yet.
  if (!replicas_.empty()) {
    for (ShardReplica* r : replicas_) r->Install(snap);
  } else if (transport_->NumEndpoints() > 0) {
    // Wire replication: ship the coalesced batch as the next kInstall
    // sequence; every ReplicaNode applies it to its own (identical)
    // engine and must arrive at these exact epochs before acking.
    InstallRequest req;
    req.seq = next_install_seq_++;
    req.expected_engine_epoch = snap->epoch;
    req.expected_shard_epochs.reserve(snap->shards.size());
    for (const auto& sh : snap->shards) {
      req.expected_shard_epochs.push_back(sh->shard_epoch);
    }
    req.updates = updates;
    install_log_.push_back(InstallLogEntry{
        req.seq,
        std::make_shared<const std::vector<uint8_t>>(req.Encode())});
    while (install_log_.size() > options_.install_log_entries) {
      install_log_.pop_front();
      ++install_log_base_;
    }
    wire_installs_.fetch_add(1, std::memory_order_relaxed);
    bool all_ok = true;
    for (uint32_t e = 0; e < transport_->NumEndpoints(); ++e) {
      if (!WireInstallEndpoint(e)) all_ok = false;
    }
    if (!all_ok) {
      // Publish anyway: the lagging replica answers the new epochs
      // with typed kUnavailable (never wrong bytes) and the NEXT
      // install's replay catches it up.
      install_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  core_.Publish(std::move(snap));
}

bool ShardRouter::WireInstallEndpoint(uint32_t endpoint) {
  if (install_log_.empty()) return true;
  const uint64_t target = next_install_seq_;
  int attempts = options_.install_attempts;
  uint64_t need = target - 1;  // newest first; nacks say where to replay
  while (attempts > 0) {
    if (need < install_log_base_) return false;  // evicted: can't catch up
    const InstallLogEntry& entry =
        install_log_[static_cast<size_t>(need - install_log_base_)];
    std::vector<uint8_t> payload;
    if (!BlockingRpc(endpoint, entry.encoded, &payload)) {
      --attempts;
      continue;
    }
    InstallAck ack;
    if (!InstallAck::Decode(payload.data(), payload.size(), &ack).ok()) {
      --attempts;
      continue;
    }
    if (ack.ok) {
      if (ack.next_seq >= target) return true;  // fully caught up
      need = ack.next_seq;  // keep replaying forward
      continue;
    }
    if (ack.next_seq >= entry.seq) {
      // The replica refused the very seq it expects (decode failure or
      // sticky divergence) — replay cannot help.
      return false;
    }
    need = ack.next_seq;  // sequence gap: replay from what it needs
    --attempts;
  }
  return false;
}

bool ShardRouter::BlockingRpc(
    uint32_t endpoint, std::shared_ptr<const std::vector<uint8_t>> bytes,
    std::vector<uint8_t>* payload) {
  struct Cell {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  // guarded by mu
    Status status;
    std::vector<uint8_t> payload;
  };
  auto cell = std::make_shared<Cell>();
  const uint64_t tag = mailbox_.Register(
      [cell](Status st, std::vector<uint8_t> p) {
        std::lock_guard<std::mutex> lock(cell->mu);
        cell->status = std::move(st);
        cell->payload = std::move(p);
        cell->done = true;
        cell->cv.notify_all();
      });
  rpcs_sent_.fetch_add(1, std::memory_order_relaxed);
  transport_->Send(endpoint, tag, std::move(bytes), &mailbox_);
  std::unique_lock<std::mutex> lock(cell->mu);
  // The transports guarantee exactly-once delivery per Send (a socket
  // request that outlives its request_timeout fails kUnavailable), so
  // this local deadline only guards a misconfigured install_timeout <
  // transport timeout; a late delivery writes a cell nobody reads.
  if (!cell->cv.wait_for(lock, options_.install_timeout,
                         [&] { return cell->done; })) {
    return false;
  }
  if (!cell->status.ok()) return false;
  *payload = std::move(cell->payload);
  return true;
}

void ShardRouter::CallReplicaAsync(
    const ShardRequest& req, std::function<void(bool, ShardResponse)> done) {
  const uint32_t n = transport_->NumEndpoints();
  if (n == 0) {
    done(false, ShardResponse{});
    return;
  }
  auto call = std::make_shared<PendingCall>();
  call->router = this;
  // Encode ONCE; the buffer is shared by every sibling attempt instead
  // of being re-encoded per retry.
  call->encoded =
      std::make_shared<const std::vector<uint8_t>>(req.Encode());
  call->shard = req.shard;
  call->shard_epoch = req.shard_epoch;
  // Round-robin fan-out start spreads load across siblings; every
  // replica still gets tried before the query gives up.
  call->start = next_replica_.fetch_add(1, std::memory_order_relaxed) % n;
  call->n = n;
  call->done = std::move(done);
  call->TryNext(0);
}

Weight ShardRouter::RouteOne(const ShardedSnapshot& snap, Vertex s,
                             Vertex t, SpanFanout* fan, StatusCode* code) {
  // The in-process router's decomposition verbatim (bit-identity), with
  // ds/dt rows and the same-cell point distance read from the fan-out's
  // prefetched replica answers at the snapshot's pinned per-shard
  // epochs. The overlay reduction runs router-side on the pinned
  // epoch's table.
  const ShardLayout& lay = *snap.layout;
  STL_DCHECK(s < lay.shard_of_vertex.size());
  STL_DCHECK(t < lay.shard_of_vertex.size());
  if (s == t) return 0;
  const uint32_t cs = lay.shard_of_vertex[s];
  const uint32_t ct = lay.shard_of_vertex[t];
  const bool s_boundary = cs == CellPartition::kBoundaryCell;
  const bool t_boundary = ct == CellPartition::kBoundaryCell;

  if (s_boundary && t_boundary) {
    // Both endpoints are separator vertices: the pinned overlay already
    // holds the exact distance — no replica involved.
    return snap.overlay->At(lay.boundary_pos_of_vertex[s],
                            lay.boundary_pos_of_vertex[t]);
  }

  uint64_t best = kInfDistance;
  if (!s_boundary && !t_boundary && cs == ct) {
    // Same cell: the shard-internal distance comes from a replica; the
    // boundary-detour alternative is still covered by the general case
    // below (D[b][b] = 0 makes touch-and-return a special case of it).
    Weight d = kInfDistance;
    if (!fan->Point(s, t, &d)) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    best = d;
  }

  if (s_boundary) {
    const std::vector<Weight>* dt = fan->Row(ct, t);
    if (dt == nullptr) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    const uint32_t pos = lay.boundary_pos_of_vertex[s];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(ct, pos), dt->data(),
                            static_cast<uint32_t>(dt->size())));
  } else if (t_boundary) {
    const std::vector<Weight>* ds = fan->Row(cs, s);
    if (ds == nullptr) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    const uint32_t pos = lay.boundary_pos_of_vertex[t];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(cs, pos), ds->data(),
                            static_cast<uint32_t>(ds->size())));
  } else {
    const std::vector<Weight>* ds = fan->Row(cs, s);
    const std::vector<Weight>* inner = fan->Inner(cs, ct, t);
    if (ds == nullptr || inner == nullptr) {
      *code = StatusCode::kUnavailable;
      return kInfDistance;
    }
    best = std::min<uint64_t>(
        best, MinPlusReduce(ds->data(), inner->data(),
                            static_cast<uint32_t>(ds->size())));
  }
  return ClampInf(best);
}

// ----------------------------------------------------- the router policy

void ShardRouter::Policy::PublishInitial() {
  auto snap = router->engine_.CurrentSnapshot();
  router->last_published_epoch_ = snap->epoch;
  // Seq 0 carries no updates: it only verifies the replicas built the
  // identical epoch-0 state from the identical graph.
  router->InstallAndPublish(std::move(snap), UpdateBatch{});
}

Weight ShardRouter::Policy::ResolveOldWeight(EdgeId e) const {
  // The router is the inner engine's only update source and ApplyBatch
  // flushes synchronously, so the inner snapshot's weights are current
  // as of every batch already routed through us.
  return router->engine_.CurrentSnapshot()->graph.EdgeWeight(e);
}

void ShardRouter::Policy::ApplyBatch(const UpdateBatch& batch) {
  ShardRouter* r = router;
  r->engine_.EnqueueUpdates(batch);
  r->engine_.Flush();
  auto snap = r->engine_.CurrentSnapshot();
  if (snap->epoch == r->last_published_epoch_) return;  // coalesced no-op
  r->last_published_epoch_ = snap->epoch;
  // Router-tier publish accounting (the inner engine allocated the
  // epoch id; this counter is the router's own publish count).
  r->core_.counters().epochs_published.fetch_add(
      1, std::memory_order_relaxed);
  r->InstallAndPublish(std::move(snap), batch);
}

uint32_t ShardRouter::Policy::NumEdges() const {
  return router->engine_.CurrentSnapshot()->graph.NumEdges();
}

void ShardRouter::Policy::RouteAsync(
    std::shared_ptr<const ShardedSnapshot> snap, Vertex s, Vertex t,
    std::function<void(Weight, StatusCode)> done) const {
  // One-element span: the fan-out's pointers alias its own storage.
  auto fan = std::make_shared<SpanFanout>();
  fan->router = router;
  fan->snap = std::move(snap);
  fan->one_query = QueryPair{s, t};
  fan->queries = &fan->one_query;
  fan->idx = &fan->one_idx;
  fan->count = 1;
  fan->out = &fan->one_out;
  fan->codes = &fan->one_code;
  SpanFanout* raw = fan.get();
  // Capturing the raw pointer (not the shared_ptr) avoids a
  // fan->done->fan cycle; Arrive() invokes `done` while its calling
  // callback still holds a shared_ptr, so `raw` is alive.
  fan->done = [raw, done = std::move(done)] {
    done(raw->one_out, raw->one_code);
  };
  raw->Start();
}

uint64_t ShardRouter::Policy::BatchSortKey(const ShardedSnapshot& snap,
                                           const QueryPair& q) const {
  // Same grouping as the in-process batched router: (source cell,
  // target cell, target) adjacency maximises row/inner reuse.
  const ShardLayout& lay = *snap.layout;
  const uint64_t cs = lay.shard_of_vertex[q.first] & 0xffff;
  const uint64_t ct = lay.shard_of_vertex[q.second] & 0xffff;
  return (cs << 48) | (ct << 32) | q.second;
}

void ShardRouter::Policy::RouteSpanAsync(
    std::shared_ptr<const ShardedSnapshot> snap, const QueryPair* queries,
    const uint32_t* idx, size_t count, Weight* out, StatusCode* codes,
    std::function<void()> done) const {
  auto fan = std::make_shared<SpanFanout>();
  fan->router = router;
  fan->snap = std::move(snap);
  fan->queries = queries;
  fan->idx = idx;
  fan->count = count;
  fan->out = out;
  fan->codes = codes;
  fan->done = std::move(done);  // the core's continuation (no cycle)
  fan->Start();
}

void ShardRouter::Policy::AugmentStats(EngineStats* s) const {
  s->backend = router->engine_.backend();
  s->num_shards = router->engine_.num_shards();
  s->boundary_vertices = router->engine_.layout().num_boundary();
}

// ------------------------------------------------------ LoopbackCluster

std::vector<ShardReplica*> LoopbackCluster::replica_ptrs() const {
  std::vector<ShardReplica*> ptrs;
  ptrs.reserve(replicas.size());
  for (const auto& r : replicas) ptrs.push_back(r.get());
  return ptrs;
}

LoopbackCluster MakeLoopbackCluster(
    uint32_t num_replicas, const ShardReplicaOptions& replica_options,
    FaultInjector* faults) {
  LoopbackCluster cluster;
  cluster.transport = std::make_unique<LoopbackTransport>(faults);
  cluster.replicas.reserve(num_replicas);
  for (uint32_t i = 0; i < num_replicas; ++i) {
    cluster.replicas.push_back(
        std::make_unique<ShardReplica>(replica_options));
    ShardReplica* replica = cluster.replicas.back().get();
    cluster.transport->AddEndpoint(
        [replica](const uint8_t* data, size_t size) {
          return replica->Handle(data, size);
        });
  }
  return cluster;
}

}  // namespace stl
