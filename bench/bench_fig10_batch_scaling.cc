// Reproduces Figure 10: total maintenance time for update groups of
// increasing size (paper: 500..8000; scaled per STL_BENCH_SCALE) against
// the cost of rebuilding the labelling from scratch.
//
// Expected shape (paper): even the largest group maintains faster than a
// full reconstruction; increase passes cost more than decrease passes.
#include "bench/bench_common.h"
#include "core/stl_index.h"
#include "util/table.h"
#include "workload/update_workload.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Figure 10 — batch maintenance vs reconstruction", cfg);
  // Group sizes: 1/16 .. 1x of the paper's 500..8000, scaled down for
  // small/medium runs.
  double scale_factor = cfg.scale == BenchScale::kLarge
                            ? 1.0
                            : (cfg.scale == BenchScale::kMedium ? 0.25 : 0.1);
  std::vector<size_t> groups;
  for (size_t base : {500, 1000, 2000, 4000, 8000}) {
    groups.push_back(static_cast<size_t>(base * scale_factor));
  }
  size_t first = cfg.datasets.size() >= 3 ? cfg.datasets.size() - 3 : 0;
  for (size_t di = first; di < cfg.datasets.size(); ++di) {
    const auto& spec = cfg.datasets[di];
    Graph g = LoadDataset(spec);
    StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
    const double rebuild_s = idx.build_info().total_seconds;

    std::printf("(%s) reconstruction time: %.2f s\n", spec.name.c_str(),
                rebuild_s);
    TablePrinter table(
        {"#updates", "STL-P+ [s]", "STL-P- [s]", "total [s]", "vs rebuild"});
    for (size_t group : groups) {
      auto edges = SampleDistinctEdges(g, group, spec.seed * 131 + group);
      UpdateBatch inc = MakeIncreaseBatch(g, edges, 2.0);
      UpdateBatch dec = MakeRestoreBatch(inc);
      Timer t;
      idx.ApplyBatch(inc, MaintenanceStrategy::kParetoSearch);
      double inc_s = t.ElapsedSeconds();
      t.Restart();
      idx.ApplyBatch(dec, MaintenanceStrategy::kParetoSearch);
      double dec_s = t.ElapsedSeconds();
      double total = inc_s + dec_s;
      table.AddRow({std::to_string(inc.size()),
                    TablePrinter::Fixed(inc_s, 3),
                    TablePrinter::Fixed(dec_s, 3),
                    TablePrinter::Fixed(total, 3),
                    TablePrinter::Fixed(total / rebuild_s, 2) + "x"});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
