#include "engine/latency_histogram.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"

namespace stl {

int LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < 16) return static_cast<int>(nanos);
  int msb = 63 - std::countl_zero(nanos);  // >= 4
  if (msb > 62) msb = 62;                  // clamp astronomically large
  int sub = static_cast<int>((nanos >> (msb - 4)) & 0xF);
  return (msb - 3) * 16 + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(int b) {
  STL_DCHECK(b >= 0 && b < kNumBuckets);
  if (b < 16) return static_cast<uint64_t>(b);
  int msb = b / 16 + 3;
  uint64_t sub = static_cast<uint64_t>(b % 16);
  return (uint64_t{1} << msb) | (sub << (msb - 4));
}

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t prev = max_nanos_.load(std::memory_order_relaxed);
  while (prev < nanos && !max_nanos_.compare_exchange_weak(
                             prev, nanos, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::QuantileMicros(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th sample, 1-based, clamped into [1, total].
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      uint64_t lo = BucketLowerBound(b);
      uint64_t hi =
          b + 1 < kNumBuckets ? BucketLowerBound(b + 1) : lo + 1;
      // The bucket midpoint can overshoot the largest sample actually
      // recorded (it may sit in the bucket's lower half); clamp so
      // quantiles never exceed the observed max.
      return std::min(static_cast<double>(lo + hi) / (2.0 * 1e3),
                      MaxMicros());
    }
  }
  return MaxMicros();  // unreachable unless racing with Record()
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace stl
