// Command-line tool over DIMACS .gr road networks: build an STL index,
// answer queries, apply updates, save/load the index.
//
//   dimacs_tool <graph.gr> query <s> <t> [more pairs...]
//   dimacs_tool <graph.gr> update <u> <v> <new_weight> query <s> <t>
//   dimacs_tool <graph.gr> save <index_file>
//   dimacs_tool <graph.gr> load <index_file> query <s> <t>
//   dimacs_tool selftest          (generates, writes, reloads, queries)
//
// Vertex ids on the command line are 1-based, as in the DIMACS format.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/stl_index.h"
#include "graph/dijkstra.h"
#include "graph/dimacs.h"
#include "graph/generators.h"

using namespace stl;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dimacs_tool <graph.gr> [build-only|save <f>|load <f>] "
               "[query <s> <t>]... [update <u> <v> <w>]...\n"
               "       dimacs_tool selftest\n");
  return 2;
}

int SelfTest() {
  RoadNetworkOptions net;
  net.width = 24;
  net.height = 24;
  net.seed = 31;
  Graph g = GenerateRoadNetwork(net);
  const std::string gr = "/tmp/dimacs_tool_selftest.gr";
  Status s = WriteDimacs(g, gr, "dimacs_tool selftest network");
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Result<Graph> back = ReadDimacs(gr);
  if (!back.ok()) {
    std::fprintf(stderr, "read failed: %s\n", back.status().ToString().c_str());
    return 1;
  }
  Graph g2 = std::move(back).value();
  StlIndex index = StlIndex::Build(&g2, HierarchyOptions{});
  Dijkstra dij(g2);
  int bad = 0;
  for (Vertex v = 0; v < g2.NumVertices(); v += 37) {
    bad += index.Query(0, v) != dij.Distance(0, v);
  }
  std::printf("selftest: wrote %s (%u vertices), %s\n", gr.c_str(),
              g2.NumVertices(), bad == 0 ? "all queries agree" : "FAILED");
  return bad != 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "selftest") == 0) return SelfTest();
  if (argc < 3) return Usage();

  Result<Graph> loaded = ReadDimacs(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                 loaded.status().ToString().c_str());
    return 1;
  }
  Graph g = std::move(loaded).value();
  std::printf("loaded %s: %u vertices, %u edges\n", argv[1], g.NumVertices(),
              g.NumEdges());

  StlIndex index = StlIndex::Build(&g, HierarchyOptions{});
  std::printf("index: %.2f MB, built in %.2f s\n",
              index.MemoryBytes() / 1048576.0,
              index.build_info().total_seconds);

  int i = 2;
  auto next_vertex = [&](Vertex* out) {
    if (i >= argc) return false;
    long v = std::strtol(argv[i++], nullptr, 10);
    if (v < 1 || static_cast<uint64_t>(v) > g.NumVertices()) return false;
    *out = static_cast<Vertex>(v - 1);
    return true;
  };
  while (i < argc) {
    const char* cmd = argv[i++];
    if (std::strcmp(cmd, "build-only") == 0) {
      continue;
    } else if (std::strcmp(cmd, "query") == 0) {
      Vertex s, t;
      if (!next_vertex(&s) || !next_vertex(&t)) return Usage();
      Weight d = index.Query(s, t);
      if (d == kInfDistance) {
        std::printf("d(%u, %u) = unreachable\n", s + 1, t + 1);
      } else {
        std::printf("d(%u, %u) = %u\n", s + 1, t + 1, d);
      }
    } else if (std::strcmp(cmd, "update") == 0) {
      Vertex u, v;
      if (!next_vertex(&u) || !next_vertex(&v) || i >= argc) return Usage();
      Weight w = static_cast<Weight>(std::strtoul(argv[i++], nullptr, 10));
      auto e = g.FindEdge(u, v);
      if (!e.has_value()) {
        std::fprintf(stderr, "no edge %u-%u\n", u + 1, v + 1);
        return 1;
      }
      Weight old = g.EdgeWeight(*e);
      if (w == old) {
        std::printf("edge %u-%u already has weight %u\n", u + 1, v + 1, w);
        continue;
      }
      index.ApplyUpdate(WeightUpdate{*e, old, w});
      std::printf("edge %u-%u: %u -> %u\n", u + 1, v + 1, old, w);
    } else if (std::strcmp(cmd, "save") == 0) {
      if (i >= argc) return Usage();
      Status s = index.Save(argv[i++]);
      if (!s.ok()) {
        std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("saved index\n");
    } else if (std::strcmp(cmd, "load") == 0) {
      if (i >= argc) return Usage();
      Result<StlIndex> r = StlIndex::Load(&g, argv[i++]);
      if (!r.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      index = std::move(r).value();
      std::printf("loaded index\n");
    } else {
      return Usage();
    }
  }
  return 0;
}
