// Stable Tree Labelling storage, construction and querying
// (Definitions 4.4–4.6, Lemma 4.7, Equation 3).
//
// The label of v is the flat array L(v) = [d_{w1}(v,w1), ..., d_{wk}(v,wk)]
// over v's ancestors w1 ⪯ ... ⪯ wk (wk = v itself, entry 0). The crucial
// design of the paper: entry i stores the distance *within the subgraph*
// G[Desc(w_i)], not the distance in G. Lemma 4.7 shows this still covers
// every shortest path, and it is what restricts the blast radius of a
// weight update to the subgraphs containing the updated edge.
//
// Storage is paged with copy-on-write: label entries live in fixed-size
// pages (kPageEntries entries each) held by shared_ptr. Copying a
// Labelling shares every page by refcount bump (O(pages) pointer copies,
// zero entry copies); the first write to a page whose refcount is > 1
// clones just that page. This is what makes epoch publication in
// engine/query_engine.h O(touched pages) instead of O(index size): the
// blast-radius property above means a small update batch dirties few
// pages, and every untouched page is shared structurally across epochs.
// Packing never lets one vertex's label straddle a page boundary (a page
// is closed early, or an oversized label gets a dedicated page), so
// Data(v) stays a contiguous pointer — the query hot path is unchanged.
//
// Thread-safety of the CoW discipline: one writer mutates a Labelling at
// a time; any number of other Labellings sharing its pages may be read
// (or destroyed) concurrently. The writer clones a page unless it is the
// sole owner, so readers never observe a write to a page they can reach.
#ifndef STL_CORE_LABELLING_H_
#define STL_CORE_LABELLING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/tree_hierarchy.h"
#include "graph/graph.h"
#include "util/cow_chunks.h"
#include "util/serialize.h"
#include "util/simd.h"

namespace stl {

/// Adds two distances, saturating at kInfDistance (so "unreachable"
/// propagates instead of wrapping).
inline Weight SaturatingAdd(Weight a, Weight b) {
  Weight s = a + b;  // both <= kInfDistance, no uint32 overflow
  return s >= kInfDistance ? kInfDistance : s;
}

/// Paged distance labels: one contiguous uint32 block per vertex,
/// |L(v)| = tau(v) + 1, hub entries of any query contiguous in memory.
/// Pages are shared copy-on-write across copies (see file comment).
class Labelling {
 public:
  /// Entries per page: 1024 * sizeof(Weight) = 4 KiB, the classic page
  /// size. Larger pages amortize refcount overhead but coarsen the CoW
  /// granularity (more bytes cloned per dirtied cell); smaller pages do
  /// the reverse. Labels longer than this get a dedicated page.
  static constexpr uint32_t kPageEntries = 1024;

  Labelling() = default;

  // Copying shares every page (refcount bump); the layout is immutable
  // and always shared. Writes to either copy detach pages on demand.
  Labelling(const Labelling&) = default;
  Labelling& operator=(const Labelling&) = default;
  Labelling(Labelling&&) noexcept = default;
  Labelling& operator=(Labelling&&) noexcept = default;

  /// Allocates labels shaped by the hierarchy, all entries kInfDistance
  /// except each vertex's self entry (0).
  static Labelling AllocateFor(const TreeHierarchy& h);

  uint32_t NumVertices() const {
    return layout_ ? static_cast<uint32_t>(layout_->offset.size() - 1) : 0;
  }

  uint32_t LabelSize(Vertex v) const {
    return static_cast<uint32_t>(layout_->offset[v + 1] -
                                 layout_->offset[v]);
  }

  Weight At(Vertex v, uint32_t i) const {
    STL_DCHECK(i < LabelSize(v));
    return Data(v)[i];
  }
  void Set(Vertex v, uint32_t i, Weight d) {
    STL_DCHECK(i < LabelSize(v));
    MutableData(v)[i] = d;
  }

  /// Raw pointer to L(v) — the query hot path. Stable until a write
  /// detaches v's page (never happens on a shared snapshot copy).
  const Weight* Data(Vertex v) const {
    return pages_.Data(layout_->page_of[v]) + layout_->slot_of[v];
  }

  /// Writable pointer to L(v). Detaches (clones) v's page if any other
  /// Labelling shares it; the returned pointer stays valid and private
  /// until this Labelling is next copied. Single-writer only.
  Weight* MutableData(Vertex v) {
    return pages_.Writable(layout_->page_of[v]) + layout_->slot_of[v];
  }

  uint64_t TotalEntries() const {
    return layout_ ? layout_->offset.back() : 0;
  }

  /// Resident bytes of this Labelling alone: every physical page counted
  /// once (pages are never duplicated within one Labelling) plus the
  /// shared layout and the page-pointer tables. For bytes across several
  /// page-sharing Labellings, use AddResidentBytes with one shared set.
  uint64_t MemoryBytes() const;

  /// Adds this Labelling's resident bytes to a running total, counting
  /// each physical page and each shared layout once across every call
  /// made with the same `seen` set. Returns the bytes newly added.
  uint64_t AddResidentBytes(std::unordered_set<const void*>* seen) const;

  /// Physical pages currently backing the labels.
  uint32_t PageCount() const { return pages_.NumChunks(); }

  /// Bytes of the largest physical page: kPageEntries * sizeof(Weight)
  /// unless some label is longer than a page and owns a dedicated one.
  /// The worst-case clone cost of a single write.
  uint64_t MaxPageBytes() const { return pages_.MaxChunkBytes(); }

  /// Entry bytes only — exactly what DeepCopy physically copies.
  uint64_t PayloadBytes() const { return pages_.PayloadBytes(); }

  /// Cumulative CoW page-clone counters (monotone over this Labelling's
  /// lifetime; copies inherit and then diverge). chunks_cloned counts
  /// pages here.
  const CowChunkStats& cow_stats() const { return pages_.stats(); }

  /// A fully detached copy: every page cloned, nothing shared, CoW
  /// counters reset. The flat-copy publish baseline and tests use this.
  Labelling DeepCopy() const;

  // On-disk format is the flat layout (offset vector + entry vector),
  // unchanged from the pre-paging index files.
  Status Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

  bool operator==(const Labelling& o) const;

 private:
  /// Immutable page layout, shared by every copy of a Labelling (and
  /// across all engine epochs). offset is the logical flat layout the
  /// serialization format and TotalEntries speak; page_of/slot_of map a
  /// vertex to its physical page and position.
  struct Layout {
    std::vector<uint64_t> offset;     // size n+1, logical flat offsets
    std::vector<uint32_t> page_of;    // size n
    std::vector<uint32_t> slot_of;    // size n
    std::vector<uint32_t> page_size;  // entries per physical page

    uint64_t MemoryBytes() const {
      return offset.capacity() * sizeof(uint64_t) +
             page_of.capacity() * sizeof(uint32_t) +
             slot_of.capacity() * sizeof(uint32_t) +
             page_size.capacity() * sizeof(uint32_t);
    }
  };

  /// Packs labels (sizes given by consecutive offset differences) into
  /// pages such that no label straddles a page: a page is closed early
  /// when the next label does not fit, and a label longer than
  /// kPageEntries gets a dedicated page of exactly its size.
  static std::shared_ptr<const Layout> BuildLayout(
      std::vector<uint64_t> offset);

  /// Allocates physical pages for `layout` filled with `fill`.
  void AllocatePages(std::shared_ptr<const Layout> layout, Weight fill);

  std::shared_ptr<const Layout> layout_;
  // The CoW detach protocol (sole-owner check + acquire fence, clone
  // counters, raw data mirror) lives in CowChunks.
  CowChunks<Weight> pages_;
};

/// Builds the STL labels of `g` over hierarchy `h`: for each cut vertex r
/// (in hierarchy order), a Dijkstra restricted to Desc(r) fills column
/// tau(r) of every descendant's label (Remark 1). By Lemma 5.3 the
/// restriction is the test tau(neighbour) > tau(r).
///
/// Columns are embarrassingly parallel: distinct cut vertices write
/// disjoint (vertex, column) cells (equal tau implies disjoint Desc
/// sets), so num_threads > 1 splits the cut vertices across threads.
/// (Concurrent writes land in freshly allocated, unshared pages, so the
/// CoW detach never triggers during a build.)
Labelling BuildLabelling(const Graph& g, const TreeHierarchy& h,
                         int num_threads = 1);

// The min-plus reduction kernels (MinPlusReduce and friends) live in
// util/simd.h, shared with the H2H and HC2L baseline query paths.

/// Answers a distance query from the labels (Equation 3): scans the first
/// CommonAncestorCount(s, t) entries of both labels. Returns kInfDistance
/// if unreachable. Pure function of (h, labels): stateless and safe to
/// call from concurrent readers on an immutable snapshot.
Weight QueryDistance(const TreeHierarchy& h, const Labelling& labels,
                     Vertex s, Vertex t);

/// Reconstructs an actual shortest path s .. t (inclusive endpoints):
/// picks the tight hub r of Equation 3 and unpacks both sides by greedy
/// descent along label-consistent arcs inside G[Desc(r)]. Returns an
/// empty vector iff t is unreachable from s. O(|path| * max degree).
std::vector<Vertex> QueryPath(const Graph& g, const TreeHierarchy& h,
                              const Labelling& labels, Vertex s, Vertex t);

/// Recomputes the label column of a single ancestor position from scratch
/// (restricted Dijkstra). Used by tests and by index repair tooling.
void RebuildColumn(const Graph& g, const TreeHierarchy& h, Vertex r,
                   Labelling* labels);

}  // namespace stl

#endif  // STL_CORE_LABELLING_H_
