#include "core/labelling.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "util/min_heap.h"

namespace stl {

std::shared_ptr<const Labelling::Layout> Labelling::BuildLayout(
    std::vector<uint64_t> offset) {
  auto layout = std::make_shared<Layout>();
  const size_t n = offset.size() - 1;
  layout->page_of.resize(n);
  layout->slot_of.resize(n);
  uint32_t used = 0;  // entries assigned to the open page
  for (Vertex v = 0; v < n; ++v) {
    const uint64_t ls = offset[v + 1] - offset[v];
    // Close the open page if the label would straddle its boundary.
    if (used > 0 && used + ls > kPageEntries) {
      layout->page_size.push_back(used);
      used = 0;
    }
    layout->page_of[v] = static_cast<uint32_t>(layout->page_size.size());
    layout->slot_of[v] = used;
    used += static_cast<uint32_t>(ls);
    // An oversized label became a dedicated page; close it immediately.
    if (used >= kPageEntries) {
      layout->page_size.push_back(used);
      used = 0;
    }
  }
  if (used > 0) layout->page_size.push_back(used);
  layout->offset = std::move(offset);
  return layout;
}

void Labelling::AllocatePages(std::shared_ptr<const Layout> layout,
                              Weight fill) {
  layout_ = std::move(layout);
  pages_.Clear();
  pages_.Reserve(layout_->page_size.size());
  for (uint32_t sz : layout_->page_size) {
    pages_.Append(std::vector<Weight>(sz, fill));
  }
}

Labelling Labelling::AllocateFor(const TreeHierarchy& h) {
  const uint32_t n = h.NumVertices();
  std::vector<uint64_t> offset(n + 1);
  offset[0] = 0;
  for (Vertex v = 0; v < n; ++v) {
    offset[v + 1] = offset[v] + h.LabelSize(v);
  }
  Labelling l;
  l.AllocatePages(BuildLayout(std::move(offset)), kInfDistance);
  for (Vertex v = 0; v < n; ++v) {
    l.MutableData(v)[h.Tau(v)] = 0;  // self distance
  }
  return l;
}

uint64_t Labelling::MemoryBytes() const {
  if (!layout_) return 0;
  return layout_->MemoryBytes() + pages_.MemoryBytes();
}

uint64_t Labelling::AddResidentBytes(
    std::unordered_set<const void*>* seen) const {
  if (!layout_) return 0;
  uint64_t bytes = pages_.AddResidentBytes(seen);
  if (seen->insert(layout_.get()).second) bytes += layout_->MemoryBytes();
  return bytes;
}

Labelling Labelling::DeepCopy() const {
  Labelling copy;
  copy.layout_ = layout_;
  copy.pages_ = pages_.DeepCopy();
  return copy;
}

Status Labelling::Serialize(BinaryWriter* w) const {
  // Flat format for compatibility with pre-paging index files: the
  // logical offset vector followed by every entry in vertex order.
  static const std::vector<uint64_t> kEmptyOffset;
  const std::vector<uint64_t>& offset =
      layout_ ? layout_->offset : kEmptyOffset;
  Status s = w->WriteVector(offset);
  if (!s.ok()) return s;
  std::vector<Weight> entries(TotalEntries());
  for (Vertex v = 0; v < NumVertices(); ++v) {
    std::memcpy(entries.data() + layout_->offset[v], Data(v),
                LabelSize(v) * sizeof(Weight));
  }
  return w->WriteVector(entries);
}

Status Labelling::Deserialize(BinaryReader* r) {
  std::vector<uint64_t> offset;
  std::vector<Weight> entries;
  Status s = r->ReadVector(&offset);
  if (s.ok()) s = r->ReadVector(&entries);
  if (!s.ok()) return s;
  if (offset.empty() || offset.back() != entries.size()) {
    return Status::Corruption("labelling: offset/entry mismatch");
  }
  for (size_t v = 0; v + 1 < offset.size(); ++v) {
    // Strictly increasing: every real label has at least its self entry,
    // and zero-length labels would create vertices pointing past the
    // page table (the layout packer never emits a page for them).
    if (offset[v] >= offset[v + 1]) {
      return Status::Corruption("labelling: offsets not strictly increasing");
    }
  }
  AllocatePages(BuildLayout(std::move(offset)), kInfDistance);
  for (Vertex v = 0; v < NumVertices(); ++v) {
    std::memcpy(MutableData(v), entries.data() + layout_->offset[v],
                LabelSize(v) * sizeof(Weight));
  }
  return Status::OK();
}

bool Labelling::operator==(const Labelling& o) const {
  if (NumVertices() != o.NumVertices()) return false;
  // Either side may be empty: default-constructed (null layout) or an
  // allocated 0-vertex labelling; both hold zero entries.
  if (!layout_ || !o.layout_) return true;
  if (layout_->offset != o.layout_->offset) return false;
  for (Vertex v = 0; v < NumVertices(); ++v) {
    if (std::memcmp(Data(v), o.Data(v), LabelSize(v) * sizeof(Weight)) !=
        0) {
      return false;
    }
  }
  return true;
}

namespace {

/// Dijkstra from cut vertex r restricted to Desc(r), writing column
/// tau(r) of every settled vertex's label. Reusable buffers live in the
/// caller (ColumnBuilder) so the per-column cost is output-sensitive.
class ColumnBuilder {
 public:
  ColumnBuilder(const Graph& g, const TreeHierarchy& h)
      : g_(g), h_(h), dist_(g.NumVertices(), kInfDistance),
        stamp_(g.NumVertices(), 0) {}

  void FillColumn(Vertex r, Labelling* labels) {
    const uint32_t col = h_.Tau(r);
    ++epoch_;
    heap_.clear();
    dist_[r] = 0;
    stamp_[r] = epoch_;
    heap_.Push(0, r);
    while (!heap_.empty()) {
      auto [d, v] = heap_.Pop();
      if (stamp_[v] != epoch_ || d != dist_[v]) continue;
      labels->Set(v, col, d);
      for (const Arc& a : g_.ArcsOf(v)) {
        // Desc(r) membership: every edge joins ⪯-comparable vertices
        // (Lemma 5.3), so staying at tau > tau(r) keeps the search inside
        // the subgraph G[Desc(r)].
        if (h_.Tau(a.head) <= col) continue;
        Weight nd = SaturatingAdd(d, a.weight);
        if (stamp_[a.head] != epoch_ || nd < dist_[a.head]) {
          dist_[a.head] = nd;
          stamp_[a.head] = epoch_;
          heap_.Push(nd, a.head);
        }
      }
    }
  }

 private:
  const Graph& g_;
  const TreeHierarchy& h_;
  std::vector<Weight> dist_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  MinHeap<Weight, Vertex> heap_;
};

}  // namespace

Labelling BuildLabelling(const Graph& g, const TreeHierarchy& h,
                         int num_threads) {
  STL_CHECK_EQ(g.NumVertices(), h.NumVertices());
  STL_CHECK_GE(num_threads, 1);
  Labelling labels = Labelling::AllocateFor(h);
  if (num_threads == 1) {
    ColumnBuilder builder(g, h);
    for (uint32_t nid = 0; nid < h.NumNodes(); ++nid) {
      for (Vertex r : h.VerticesOf(nid)) {
        builder.FillColumn(r, &labels);
      }
    }
    return labels;
  }
  // Parallel: cut vertices are independent work items writing disjoint
  // label cells. Work-steal via one atomic cursor over the node order.
  std::vector<Vertex> cuts;
  cuts.reserve(g.NumVertices());
  for (uint32_t nid = 0; nid < h.NumNodes(); ++nid) {
    for (Vertex r : h.VerticesOf(nid)) cuts.push_back(r);
  }
  std::atomic<size_t> cursor{0};
  auto worker = [&]() {
    ColumnBuilder builder(g, h);
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= cuts.size()) break;
      builder.FillColumn(cuts[i], &labels);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
  return labels;
}

void RebuildColumn(const Graph& g, const TreeHierarchy& h, Vertex r,
                   Labelling* labels) {
  // Reset the column first: the restricted Dijkstra only writes settled
  // vertices, and an update may have disconnected part of the subgraph.
  const uint32_t col = h.Tau(r);
  // Collect Desc(r) by the same restricted traversal, ignoring weights.
  std::vector<Vertex> stack = {r};
  std::vector<uint8_t> seen(g.NumVertices(), 0);
  seen[r] = 1;
  while (!stack.empty()) {
    Vertex v = stack.back();
    stack.pop_back();
    labels->Set(v, col, v == r ? 0 : kInfDistance);
    for (const Arc& a : g.ArcsOf(v)) {
      if (h.Tau(a.head) > col && !seen[a.head]) {
        seen[a.head] = 1;
        stack.push_back(a.head);
      }
    }
  }
  ColumnBuilder builder(g, h);
  builder.FillColumn(r, labels);
}

namespace {

/// Appends the vertices strictly between `v` and the ancestor at label
/// position `col` (exclusive of both) walking v -> ancestor by greedy
/// descent: each step takes an arc (v, n) with
///   L_v[col] == w(v, n) + d_col(n),
/// where d_col(n) is 0 at the ancestor itself and L_n[col] inside the
/// subgraph. Exactness of the labels guarantees progress.
void UnpackTowardsAncestor(const Graph& g, const TreeHierarchy& h,
                           const Labelling& labels, Vertex v, uint32_t col,
                           std::vector<Vertex>* out) {
  const uint32_t n_limit = g.NumVertices();
  uint32_t steps = 0;
  while (labels.At(v, col) != 0) {
    STL_CHECK(++steps <= n_limit) << "path unpacking did not converge";
    const Weight dv = labels.At(v, col);
    Vertex next = UINT32_MAX;
    for (const Arc& a : g.ArcsOf(v)) {
      const uint32_t tn = h.Tau(a.head);
      if (tn < col) continue;  // outside Desc(ancestor)
      const Weight dn = (tn == col) ? 0 : labels.At(a.head, col);
      if (dn != kInfDistance && SaturatingAdd(dn, a.weight) == dv) {
        next = a.head;
        break;
      }
    }
    STL_CHECK(next != UINT32_MAX) << "no label-consistent arc";
    v = next;
    if (labels.At(v, col) != 0) out->push_back(v);
  }
}

}  // namespace

std::vector<Vertex> QueryPath(const Graph& g, const TreeHierarchy& h,
                              const Labelling& labels, Vertex s, Vertex t) {
  if (s == t) return {s};
  // Locate the tight hub of Equation 3.
  const uint32_t k = h.CommonAncestorCount(s, t);
  const Weight* ls = labels.Data(s);
  const Weight* lt = labels.Data(t);
  uint32_t best = kInfDistance + kInfDistance;
  uint32_t best_i = 0;
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t cand = ls[i] + lt[i];
    if (cand < best) {
      best = cand;
      best_i = i;
    }
  }
  if (best >= kInfDistance) return {};
  const Vertex r = h.AncestorAt(s, best_i);
  // s .. r (forward), then r .. t (built backward, reversed in place).
  std::vector<Vertex> path;
  path.push_back(s);
  if (r != s) {
    UnpackTowardsAncestor(g, h, labels, s, best_i, &path);
    path.push_back(r);
  }
  if (r != t) {
    std::vector<Vertex> back;
    UnpackTowardsAncestor(g, h, labels, t, best_i, &back);
    path.insert(path.end(), back.rbegin(), back.rend());
    path.push_back(t);
  }
  return path;
}

Weight QueryDistance(const TreeHierarchy& h, const Labelling& labels,
                     Vertex s, Vertex t) {
  if (s == t) return 0;
  const uint32_t k = h.CommonAncestorCount(s, t);
  const Weight best = MinPlusReduce(labels.Data(s), labels.Data(t), k);
  return best >= kInfDistance ? kInfDistance : best;
}

}  // namespace stl
