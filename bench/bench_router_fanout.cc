// Router fan-out bench: the SAME mixed query + update workload served
// by the direct sharded engine and by the replicated ShardRouter tier
// (loopback transport) at 1, 2 and 3 replicas per cell. Two phases per
// configuration:
//
//   lockstep  — update batch, Flush, evaluate a fixed query set. Router
//               answers must be BIT-IDENTICAL to the direct engine's on
//               the same weights (both are exact); any divergence is a
//               fan-out / wire / epoch-pinning bug.
//   throughput— an updater thread streams batches at a fixed rate while
//               closed-loop query waves run on the router's reader
//               pool; reports qps, p50/p99, the RPC ledger (sent,
//               retries, stale, failovers, duplicates dropped) — and
//               Dijkstra-audits every answer on the exact epoch
//               snapshot it was served from.
//
// --transport=socket appends a third tier: the same workload through a
// SocketTransport against ReplicaNodes served over real localhost TCP
// (kInstall replication included), reporting socket qps/p99 plus the
// transport's reconnect count.
//
// Emits BENCH_router.json. --check turns the run into a CI guard
// (structural, no timing): zero lockstep and audit mismatches at every
// replica count, zero unavailable answers (loopback replicas are
// always installed before publish), and a non-trivial RPC volume, with
// the workload clamped small. The guard stays on loopback — the socket
// tier is measurement, not CI surface.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "dist/replica_node.h"
#include "dist/shard_router.h"
#include "dist/socket_transport.h"
#include "engine/sharded_engine.h"
#include "net/server.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/query_workload.h"

namespace stl {
namespace {

constexpr double kHotFraction = 0.25;
constexpr size_t kHotPairs = 256;
constexpr uint32_t kTargetShards = 4;

struct FanoutSizes {
  uint32_t grid_side;
  size_t lockstep_rounds;
  size_t lockstep_queries;
  size_t queries;
  size_t wave;
  size_t update_rounds;
  size_t batch_size;
};

FanoutSizes SizesForScale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmall:
      return {30, 6, 300, 4000, 100, 12, 8};
    case BenchScale::kMedium:
      return {50, 8, 400, 12000, 200, 24, 16};
    case BenchScale::kLarge:
      return {80, 10, 600, 30000, 300, 48, 32};
  }
  return {30, 6, 300, 4000, 100, 12, 8};
}

/// The deterministic lockstep update stream: alternating congest /
/// restore batches on seeded random edges, identical for every tier.
std::vector<WeightUpdate> LockstepBatch(const Graph& base, size_t round,
                                        size_t batch_size) {
  std::vector<WeightUpdate> batch;
  batch.reserve(batch_size);
  const bool restore = round % 2 == 1;
  Rng ering(21000 + 13 * (round / 2));  // restore reuses the edges
  for (size_t i = 0; i < batch_size; ++i) {
    const EdgeId e =
        static_cast<EdgeId>(ering.NextBounded(base.NumEdges()));
    const Weight w0 = base.EdgeWeight(e);
    const Weight target =
        restore ? w0 : std::min<Weight>(w0 * 4, kMaxEdgeWeight);
    batch.push_back(WeightUpdate{e, 0, target});
  }
  return batch;
}

struct TierRow {
  const char* mode = "direct";  // "direct" | "router" | "socket"
  uint32_t replicas = 0;        // 0 = direct engine (no transport)
  double build_seconds = 0;
  double qps = 0;
  double p50 = 0;
  double p99 = 0;
  uint64_t epochs = 0;
  uint64_t unavailable = 0;
  uint64_t rpcs_sent = 0;
  uint64_t rpc_retries = 0;
  uint64_t rpc_stale = 0;
  uint64_t rpc_failovers = 0;
  uint64_t rpc_duplicates = 0;
  uint64_t reconnects = 0;  // socket tier only: died-and-redialed count
  uint64_t lockstep_mismatches = 0;
  uint64_t audit_mismatches = 0;
};

/// Phase 1 answers (per round, per pair).
using LockstepAnswers = std::vector<std::vector<Weight>>;

template <typename Engine>
LockstepAnswers RunLockstep(Engine& engine, const Graph& base,
                            const FanoutSizes& sizes,
                            const std::vector<QueryPair>& pairs) {
  LockstepAnswers answers;
  answers.reserve(sizes.lockstep_rounds);
  for (size_t round = 0; round < sizes.lockstep_rounds; ++round) {
    engine.EnqueueUpdates(LockstepBatch(base, round, sizes.batch_size));
    engine.Flush();
    std::vector<Weight> row;
    row.reserve(pairs.size());
    for (const QueryPair& q : pairs) {
      row.push_back(engine.Submit(q).get().distance);
    }
    answers.push_back(std::move(row));
  }
  return answers;
}

uint64_t CountMismatches(const LockstepAnswers& a,
                         const LockstepAnswers& b) {
  uint64_t mismatches = 0;
  for (size_t r = 0; r < a.size() && r < b.size(); ++r) {
    for (size_t i = 0; i < a[r].size(); ++i) {
      mismatches += a[r][i] != b[r][i];
    }
  }
  return mismatches;
}

/// Phase 2: concurrent mixed workload with the per-epoch Dijkstra audit.
template <typename Engine>
void RunThroughput(Engine& engine, const Graph& base,
                   const FanoutSizes& sizes, TierRow* row) {
  engine.ResetStats();
  std::vector<QueryPair> pairs = HotSpotQueryPairs(
      base, sizes.queries, kHotFraction, kHotPairs, 6161);

  std::thread updater([&] {
    for (size_t round = 0; round < sizes.update_rounds; ++round) {
      engine.EnqueueUpdates(LockstepBatch(base, round, sizes.batch_size));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<ShardedQueryResult> results;
  results.reserve(pairs.size());
  std::vector<std::future<ShardedQueryResult>> wave;
  wave.reserve(sizes.wave);
  for (size_t i = 0; i < pairs.size(); i += sizes.wave) {
    const size_t end = std::min(pairs.size(), i + sizes.wave);
    wave.clear();
    for (size_t j = i; j < end; ++j) wave.push_back(engine.Submit(pairs[j]));
    for (auto& f : wave) results.push_back(f.get());
  }
  updater.join();
  engine.Flush();

  // Ground-truth audit: every answer vs Dijkstra on its serving epoch.
  std::map<uint64_t, std::shared_ptr<const ShardedSnapshot>> snapshots;
  for (const ShardedQueryResult& r : results) {
    snapshots.emplace(r.epoch, r.snapshot);
  }
  std::map<uint64_t, std::unique_ptr<Dijkstra>> oracle;
  for (auto& [epoch, snap] : snapshots) {
    oracle.emplace(epoch, std::make_unique<Dijkstra>(snap->graph));
  }
  for (size_t i = 0; i < results.size(); ++i) {
    const ShardedQueryResult& r = results[i];
    if (r.code != StatusCode::kOk ||
        r.distance !=
            oracle.at(r.epoch)->Distance(pairs[i].first, pairs[i].second)) {
      ++row->audit_mismatches;
    }
  }
}

void HarvestDirect(ShardedEngine& engine, TierRow* row) {
  const EngineStats stats = engine.Stats();
  row->qps = stats.queries_per_second;
  row->p50 = stats.latency_p50_micros;
  row->p99 = stats.latency_p99_micros;
  row->epochs = stats.epochs_published;
  row->unavailable = stats.queries_unavailable;
}

void HarvestRouter(ShardRouter& router, TierRow* row) {
  const RouterStats stats = router.Stats();
  row->qps = stats.serving.queries_per_second;
  row->p50 = stats.serving.latency_p50_micros;
  row->p99 = stats.serving.latency_p99_micros;
  row->epochs = stats.serving.epochs_published;
  row->unavailable = stats.serving.queries_unavailable;
  row->rpcs_sent = stats.rpcs_sent;
  row->rpc_retries = stats.rpc_retries;
  row->rpc_stale = stats.rpc_stale_responses;
  row->rpc_failovers = stats.rpc_failovers;
  row->rpc_duplicates = stats.rpc_duplicates_dropped;
}

void WriteJson(const char* path, const bench::BenchConfig& cfg,
               uint32_t side, uint32_t vertices, uint32_t edges,
               const FanoutSizes& sizes, const std::vector<TierRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"router_fanout\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", bench::ScaleName(cfg.scale));
  std::fprintf(f,
               "  \"network\": {\"grid_side\": %u, \"vertices\": %u, "
               "\"edges\": %u, \"target_shards\": %u},\n",
               side, vertices, edges, kTargetShards);
  std::fprintf(
      f,
      "  \"workload\": {\"lockstep_rounds\": %zu, \"lockstep_queries\": "
      "%zu, \"queries\": %zu, \"update_rounds\": %zu, \"batch_size\": "
      "%zu, \"query_threads\": 4, \"hot_fraction\": %.2f, "
      "\"hot_pairs\": %zu},\n",
      sizes.lockstep_rounds, sizes.lockstep_queries, sizes.queries,
      sizes.update_rounds, sizes.batch_size, kHotFraction, kHotPairs);
  std::fprintf(f, "  \"tiers\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const TierRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"replicas\": %u, \"build_seconds\": "
        "%.3f, \"qps\": %.1f, \"latency_p50_micros\": %.2f, "
        "\"latency_p99_micros\": %.2f, \"epochs\": %" PRIu64
        ", \"queries_unavailable\": %" PRIu64 ", \"rpcs_sent\": %" PRIu64
        ", \"rpc_retries\": %" PRIu64 ", \"rpc_stale_responses\": %" PRIu64
        ", \"rpc_failovers\": %" PRIu64
        ", \"rpc_duplicates_dropped\": %" PRIu64
        ", \"reconnects\": %" PRIu64
        ", \"lockstep_mismatches\": %" PRIu64
        ", \"audit_mismatches\": %" PRIu64 "}%s\n",
        r.mode, r.replicas, r.build_seconds, r.qps, r.p50, r.p99,
        r.epochs, r.unavailable, r.rpcs_sent, r.rpc_retries, r.rpc_stale,
        r.rpc_failovers, r.rpc_duplicates, r.reconnects,
        r.lockstep_mismatches, r.audit_mismatches,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace stl

int main(int argc, char** argv) {
  using namespace stl;
  bool check = false;
  bool socket_tier = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--transport=socket") == 0) socket_tier = true;
  }
  // The CI guard is deterministic loopback only; socket timing is a
  // measurement phase, not a pass/fail surface.
  if (check) socket_tier = false;
  const bench::BenchConfig cfg = bench::MakeConfig();
  FanoutSizes sizes = SizesForScale(cfg.scale);
  if (check) {
    // CI guard: bound the build and audit cost (one direct engine plus
    // three router tiers, each embedding its own engine).
    sizes.grid_side = std::min<uint32_t>(sizes.grid_side, 20);
    sizes.lockstep_rounds = std::min<size_t>(sizes.lockstep_rounds, 4);
    sizes.lockstep_queries = std::min<size_t>(sizes.lockstep_queries, 200);
    sizes.queries = std::min<size_t>(sizes.queries, 1500);
    sizes.update_rounds = std::min<size_t>(sizes.update_rounds, 6);
  }

  RoadNetworkOptions net;
  net.width = sizes.grid_side;
  net.height = sizes.grid_side;
  net.seed = 7;
  Graph base = GenerateRoadNetwork(net);
  const uint32_t n = base.NumVertices();

  // Fixed lockstep query pairs shared by every tier.
  Rng prng(2223);
  std::vector<QueryPair> lockstep_pairs;
  lockstep_pairs.reserve(sizes.lockstep_queries);
  for (size_t i = 0; i < sizes.lockstep_queries; ++i) {
    lockstep_pairs.emplace_back(static_cast<Vertex>(prng.NextBounded(n)),
                                static_cast<Vertex>(prng.NextBounded(n)));
  }

  ShardedEngineOptions engine_opt;
  engine_opt.backend = BackendKind::kStl;
  engine_opt.target_shards = kTargetShards;
  engine_opt.num_query_threads = 4;
  engine_opt.max_batch_size = sizes.batch_size;

  std::printf("== router fan-out: direct engine vs replicated tier ==\n");
  std::printf(
      "scale=%s grid=%ux%u vertices=%u edges=%u shards=%u lockstep=%zux%zu "
      "queries=%zu update_rounds=%zu batch=%zu\n\n",
      bench::ScaleName(cfg.scale), sizes.grid_side, sizes.grid_side, n,
      base.NumEdges(), kTargetShards, sizes.lockstep_rounds,
      sizes.lockstep_queries, sizes.queries, sizes.update_rounds,
      sizes.batch_size);
  std::printf("%-7s %9s %9s %10s %8s %8s %10s %9s %9s %8s %6s\n", "mode",
              "replicas", "build s", "qps", "p50 us", "p99 us", "rpcs",
              "failover", "lockstep", "audit", "unav");

  std::vector<TierRow> rows;

  // Direct tier: the embedded engine without a transport in the path.
  TierRow direct_row;
  Timer direct_build;
  ShardedEngine direct(base, HierarchyOptions{}, engine_opt);
  direct_row.build_seconds = direct_build.ElapsedSeconds();
  const LockstepAnswers reference =
      RunLockstep(direct, base, sizes, lockstep_pairs);
  RunThroughput(direct, base, sizes, &direct_row);
  HarvestDirect(direct, &direct_row);
  std::printf("%-7s %9u %9.3f %10.1f %8.2f %8.2f %10" PRIu64 " %9" PRIu64
              " %9" PRIu64 " %8" PRIu64 " %6" PRIu64 "\n",
              "direct", 0u, direct_row.build_seconds, direct_row.qps,
              direct_row.p50, direct_row.p99, direct_row.rpcs_sent,
              direct_row.rpc_failovers, direct_row.lockstep_mismatches,
              direct_row.audit_mismatches, direct_row.unavailable);
  rows.push_back(direct_row);

  for (uint32_t replicas : {1u, 2u, 3u}) {
    TierRow row;
    row.mode = "router";
    row.replicas = replicas;
    LoopbackCluster cluster = MakeLoopbackCluster(replicas);
    ShardRouterOptions ropt;
    ropt.engine = engine_opt;
    ropt.num_query_threads = 4;
    ropt.max_batch_size = sizes.batch_size;
    Timer build_timer;
    ShardRouter router(base, HierarchyOptions{}, ropt,
                       cluster.transport.get(), cluster.replica_ptrs());
    row.build_seconds = build_timer.ElapsedSeconds();

    const LockstepAnswers got =
        RunLockstep(router, base, sizes, lockstep_pairs);
    row.lockstep_mismatches = CountMismatches(reference, got);
    RunThroughput(router, base, sizes, &row);
    HarvestRouter(router, &row);
    std::printf("%-7s %9u %9.3f %10.1f %8.2f %8.2f %10" PRIu64 " %9" PRIu64
                " %9" PRIu64 " %8" PRIu64 " %6" PRIu64 "\n",
                "router", replicas, row.build_seconds, row.qps, row.p50,
                row.p99, row.rpcs_sent, row.rpc_failovers,
                row.lockstep_mismatches, row.audit_mismatches,
                row.unavailable);
    rows.push_back(row);
  }

  if (socket_tier) {
    // The over-the-wire tier: 2 ReplicaNodes served by FrameServers on
    // ephemeral localhost ports, reached ONLY through a SocketTransport
    // — queries and kInstall replication both cross real TCP.
    constexpr uint32_t kSocketReplicas = 2;
    TierRow row;
    row.mode = "socket";
    row.replicas = kSocketReplicas;
    std::vector<std::unique_ptr<ReplicaNode>> nodes;
    std::vector<std::unique_ptr<FrameServer>> servers;
    std::vector<std::string> endpoints;
    Timer build_timer;
    for (uint32_t i = 0; i < kSocketReplicas; ++i) {
      nodes.push_back(std::make_unique<ReplicaNode>(base, HierarchyOptions{},
                                                    engine_opt));
      ReplicaNode* raw = nodes.back().get();
      servers.push_back(std::make_unique<FrameServer>(
          FrameServer::Options{}, [raw](const uint8_t* data, size_t size) {
            return raw->Handle(data, size);
          }));
      if (!servers.back()->Start().ok()) {
        std::fprintf(stderr, "socket tier: server start failed\n");
        return 1;
      }
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(servers.back()->port()));
    }
    SocketTransport transport(endpoints);
    ShardRouterOptions ropt;
    ropt.engine = engine_opt;
    ropt.num_query_threads = 4;
    ropt.max_batch_size = sizes.batch_size;
    {
      ShardRouter router(base, HierarchyOptions{}, ropt, &transport, {});
      row.build_seconds = build_timer.ElapsedSeconds();

      const LockstepAnswers got =
          RunLockstep(router, base, sizes, lockstep_pairs);
      row.lockstep_mismatches = CountMismatches(reference, got);
      RunThroughput(router, base, sizes, &row);
      HarvestRouter(router, &row);
    }  // drain the router's fan-outs before the transport/servers die
    row.reconnects = transport.reconnects();
    std::printf("%-7s %9u %9.3f %10.1f %8.2f %8.2f %10" PRIu64 " %9" PRIu64
                " %9" PRIu64 " %8" PRIu64 " %6" PRIu64 "\n",
                "socket", kSocketReplicas, row.build_seconds, row.qps,
                row.p50, row.p99, row.rpcs_sent, row.rpc_failovers,
                row.lockstep_mismatches, row.audit_mismatches,
                row.unavailable);
    rows.push_back(row);
  }

  WriteJson("BENCH_router.json", cfg, sizes.grid_side, n, base.NumEdges(),
            sizes, rows);

  if (!check) return 0;

  // ---- CI guard: structural invariants only, no timing flakiness. ----
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GUARD FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(rows.size() == 4, "direct + three replica tiers must report");
  for (const TierRow& r : rows) {
    expect(r.lockstep_mismatches == 0,
           "router answers must be bit-identical to the direct engine");
    expect(r.audit_mismatches == 0,
           "every concurrent answer must match Dijkstra on its epoch");
    expect(r.unavailable == 0,
           "loopback replicas are installed before publish: no "
           "unavailable answers without faults");
    expect(r.epochs >= 1, "every tier must publish epochs");
    if (r.replicas > 0) {
      expect(r.rpcs_sent > 0, "the router tier must fan out over RPC");
      expect(r.rpc_duplicates == 0,
             "no duplicate deliveries without fault injection");
    }
  }
  if (failures == 0) std::printf("\nall router fan-out guards passed\n");
  return failures == 0 ? 0 : 1;
}
