// Reproduces Table 2: the dataset summary (name, |V|, |E|, graph memory).
// Our datasets are synthetic stand-ins for the paper's DIMACS/PTV
// networks at laptop scale; the ~1.5x size progression is preserved.
#include "bench/bench_common.h"
#include "util/table.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Table 2 — summary of datasets", cfg);
  TablePrinter table({"Network", "Stands in for", "|V|", "|E|", "Memory"});
  for (const auto& spec : cfg.datasets) {
    Graph g = LoadDataset(spec);
    table.AddRow({spec.name, spec.mirrors, std::to_string(g.NumVertices()),
                  std::to_string(g.NumEdges()),
                  TablePrinter::Bytes(g.MemoryBytes())});
  }
  table.Print();
  return 0;
}
