// Min-plus reduction kernels shared by every label-scanning query path:
// STL's common-ancestor scan (core/labelling.h), HC2L's LCA-cut scan
// (baselines/hc2l.cc) and H2H's position-array scan (baselines/h2h.cc).
//
// Two shapes:
//   * contiguous:  min over i < k of a[i] + b[i]
//   * gathered:    min over p < k of a[idx[p]] + b[idx[p]]
// Both dispatch at runtime to an AVX2 kernel when the CPU supports it,
// with uint32 wrap-around semantics identical to the scalar loops, so
// the vector and scalar paths are bit-for-bit interchangeable on every
// input (equivalence-tested on adversarial labels in
// tests/labelling_test.cc). Real label entries are <= kInfDistance, so
// genuine queries never wrap.
#ifndef STL_UTIL_SIMD_H_
#define STL_UTIL_SIMD_H_

#include <algorithm>
#include <cstdint>

#include "graph/graph.h"  // Weight, kInfDistance

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define STL_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#endif

namespace stl {

/// min over i < k of a[i] + b[i] — the portable reference reduction
/// (also the non-x86 fallback). Returns 2 * kInfDistance for k == 0.
inline Weight MinPlusReduceScalar(const Weight* a, const Weight* b,
                                  uint32_t k) {
  Weight best = kInfDistance + kInfDistance;  // fits in uint32
  for (uint32_t i = 0; i < k; ++i) {
    best = std::min(best, a[i] + b[i]);
  }
  return best;
}

/// min over p < k of a[idx[p]] + b[idx[p]] — the portable reference for
/// the gathered shape. Returns 2 * kInfDistance for k == 0.
inline Weight MinPlusGatherReduceScalar(const Weight* a, const Weight* b,
                                        const uint32_t* idx, uint32_t k) {
  Weight best = kInfDistance + kInfDistance;
  for (uint32_t p = 0; p < k; ++p) {
    const uint32_t i = idx[p];
    best = std::min(best, a[i] + b[i]);
  }
  return best;
}

#ifdef STL_HAVE_AVX2_KERNEL

namespace simd_internal {

/// Horizontal unsigned min of eight uint32 lanes.
__attribute__((target("avx2"))) inline Weight HorizontalMinU32(
    __m256i best8) {
  __m128i best4 = _mm_min_epu32(_mm256_castsi256_si128(best8),
                                _mm256_extracti128_si256(best8, 1));
  best4 = _mm_min_epu32(best4,
                        _mm_shuffle_epi32(best4, _MM_SHUFFLE(1, 0, 3, 2)));
  best4 = _mm_min_epu32(best4,
                        _mm_shuffle_epi32(best4, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<Weight>(_mm_cvtsi128_si32(best4));
}

/// Eight lanes of min(a[i] + b[i]) per iteration. Addition wraps mod
/// 2^32 exactly like the scalar loop, and _mm256_min_epu32 is the
/// unsigned min, so the result is bit-identical to MinPlusReduceScalar
/// for arbitrary inputs.
__attribute__((target("avx2"))) inline Weight MinPlusReduceAvx2(
    const Weight* a, const Weight* b, uint32_t k) {
  __m256i best8 =
      _mm256_set1_epi32(static_cast<int>(kInfDistance + kInfDistance));
  uint32_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    best8 = _mm256_min_epu32(best8, _mm256_add_epi32(va, vb));
  }
  Weight best = HorizontalMinU32(best8);
  for (; i < k; ++i) {
    best = std::min(best, a[i] + b[i]);
  }
  return best;
}

/// Gathered variant: eight lanes of min(a[idx[p]] + b[idx[p]]).
__attribute__((target("avx2"))) inline Weight MinPlusGatherReduceAvx2(
    const Weight* a, const Weight* b, const uint32_t* idx, uint32_t k) {
  __m256i best8 =
      _mm256_set1_epi32(static_cast<int>(kInfDistance + kInfDistance));
  uint32_t p = 0;
  for (; p + 8 <= k; p += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + p));
    const __m256i va = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(a), vidx, sizeof(Weight));
    const __m256i vb = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(b), vidx, sizeof(Weight));
    best8 = _mm256_min_epu32(best8, _mm256_add_epi32(va, vb));
  }
  Weight best = HorizontalMinU32(best8);
  for (; p < k; ++p) {
    const uint32_t i = idx[p];
    best = std::min(best, a[i] + b[i]);
  }
  return best;
}

}  // namespace simd_internal

/// True iff the reductions dispatch to the AVX2 kernels on this machine.
inline bool MinPlusReduceUsesAvx2() {
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  return use_avx2;
}

inline Weight MinPlusReduce(const Weight* a, const Weight* b, uint32_t k) {
  if (k >= 8 && MinPlusReduceUsesAvx2()) {
    return simd_internal::MinPlusReduceAvx2(a, b, k);
  }
  return MinPlusReduceScalar(a, b, k);
}

inline Weight MinPlusGatherReduce(const Weight* a, const Weight* b,
                                  const uint32_t* idx, uint32_t k) {
  if (k >= 8 && MinPlusReduceUsesAvx2()) {
    return simd_internal::MinPlusGatherReduceAvx2(a, b, idx, k);
  }
  return MinPlusGatherReduceScalar(a, b, idx, k);
}

#else  // !STL_HAVE_AVX2_KERNEL

inline bool MinPlusReduceUsesAvx2() { return false; }

inline Weight MinPlusReduce(const Weight* a, const Weight* b, uint32_t k) {
  return MinPlusReduceScalar(a, b, k);
}

inline Weight MinPlusGatherReduce(const Weight* a, const Weight* b,
                                  const uint32_t* idx, uint32_t k) {
  return MinPlusGatherReduceScalar(a, b, idx, k);
}

#endif  // STL_HAVE_AVX2_KERNEL

}  // namespace stl

#endif  // STL_UTIL_SIMD_H_
