#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace stl {

Result<Graph> Graph::FromEdges(uint32_t num_vertices,
                               std::vector<Edge> edges) {
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u >= num_vertices || e.v >= num_vertices) {
      return Status::InvalidArgument("edge " + std::to_string(i) +
                                     " endpoint out of range");
    }
    if (e.u == e.v) {
      return Status::InvalidArgument("edge " + std::to_string(i) +
                                     " is a self-loop");
    }
    if (e.w == 0 || e.w > kMaxEdgeWeight) {
      return Status::InvalidArgument("edge " + std::to_string(i) +
                                     " has invalid weight " +
                                     std::to_string(e.w));
    }
  }
  // Detect duplicates via a sorted copy of normalized endpoint pairs.
  {
    std::vector<uint64_t> keys;
    keys.reserve(edges.size());
    for (const Edge& e : edges) {
      Vertex a = std::min(e.u, e.v), b = std::max(e.u, e.v);
      keys.push_back((static_cast<uint64_t>(a) << 32) | b);
    }
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      return Status::InvalidArgument("duplicate edge in edge list");
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.edges_ = std::move(edges);
  g.adj_offset_.assign(num_vertices + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.adj_offset_[e.u + 1];
    ++g.adj_offset_[e.v + 1];
  }
  std::partial_sum(g.adj_offset_.begin(), g.adj_offset_.end(),
                   g.adj_offset_.begin());
  g.arcs_.resize(2 * g.edges_.size());
  g.arc_pos_.resize(2 * g.edges_.size());
  std::vector<uint32_t> cursor(g.adj_offset_.begin(),
                               g.adj_offset_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    uint32_t pu = cursor[e.u]++;
    uint32_t pv = cursor[e.v]++;
    g.arcs_[pu] = Arc{e.v, e.w, id};
    g.arcs_[pv] = Arc{e.u, e.w, id};
    g.arc_pos_[2 * id] = pu;
    g.arc_pos_[2 * id + 1] = pv;
  }
  // Sort each adjacency list by head for deterministic iteration and
  // binary-searchable FindEdge; fix up arc_pos_ afterwards.
  for (Vertex v = 0; v < num_vertices; ++v) {
    std::sort(g.arcs_.begin() + g.adj_offset_[v],
              g.arcs_.begin() + g.adj_offset_[v + 1],
              [](const Arc& a, const Arc& b) {
                if (a.head != b.head) return a.head < b.head;
                return a.edge < b.edge;
              });
  }
  for (uint32_t pos = 0; pos < g.arcs_.size(); ++pos) {
    const Arc& a = g.arcs_[pos];
    // Each edge has exactly two arcs; assign this position to the slot
    // whose tail matches.
    const Edge& e = g.edges_[a.edge];
    Vertex tail = (a.head == e.v) ? e.u : e.v;
    g.arc_pos_[2 * a.edge + (tail == e.u ? 0 : 1)] = pos;
  }
  return g;
}

void Graph::SetEdgeWeight(EdgeId id, Weight w) {
  STL_CHECK(id < edges_.size());
  STL_CHECK(w > 0 && w <= kMaxEdgeWeight)
      << "weight " << w << " out of range";
  edges_[id].w = w;
  arcs_[arc_pos_[2 * id]].weight = w;
  arcs_[arc_pos_[2 * id + 1]].weight = w;
}

std::optional<EdgeId> Graph::FindEdge(Vertex u, Vertex v) const {
  if (u >= num_vertices_ || v >= num_vertices_ || u == v) return std::nullopt;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto arcs = ArcsOf(u);
  auto it = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& a, Vertex head) { return a.head < head; });
  if (it != arcs.end() && it->head == v) return it->edge;
  return std::nullopt;
}

uint64_t Graph::MemoryBytes() const {
  return edges_.capacity() * sizeof(Edge) +
         adj_offset_.capacity() * sizeof(uint32_t) +
         arcs_.capacity() * sizeof(Arc) +
         arc_pos_.capacity() * sizeof(uint32_t);
}

std::pair<std::vector<uint32_t>, uint32_t> ConnectedComponents(
    const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  std::vector<Vertex> stack;
  uint32_t num_comps = 0;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != UINT32_MAX) continue;
    comp[s] = num_comps;
    stack.push_back(s);
    while (!stack.empty()) {
      Vertex v = stack.back();
      stack.pop_back();
      for (const Arc& a : g.ArcsOf(v)) {
        if (comp[a.head] == UINT32_MAX) {
          comp[a.head] = num_comps;
          stack.push_back(a.head);
        }
      }
    }
    ++num_comps;
  }
  return {std::move(comp), num_comps};
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return ConnectedComponents(g).second == 1;
}

std::pair<Graph, std::vector<uint32_t>> ExtractLargestComponent(
    const Graph& g) {
  auto [comp, num_comps] = ConnectedComponents(g);
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> size(num_comps, 0);
  for (Vertex v = 0; v < n; ++v) ++size[comp[v]];
  uint32_t best =
      static_cast<uint32_t>(std::max_element(size.begin(), size.end()) -
                            size.begin());
  std::vector<uint32_t> remap(n, UINT32_MAX);
  uint32_t next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (comp[v] == best) remap[v] = next++;
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) {
    if (remap[e.u] != UINT32_MAX && remap[e.v] != UINT32_MAX) {
      edges.push_back(Edge{remap[e.u], remap[e.v], e.w});
    }
  }
  Result<Graph> sub = Graph::FromEdges(next, std::move(edges));
  STL_CHECK(sub.ok()) << sub.status().ToString();
  return {std::move(sub).value(), std::move(remap)};
}

}  // namespace stl
