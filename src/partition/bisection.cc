#include "partition/bisection.h"

#include <algorithm>

#include "partition/separator.h"
#include "util/logging.h"

namespace stl {

namespace {

/// Recursive builder; regions move down the recursion, so peak memory is
/// one root-to-leaf path (a geometric series, ~5n vertices at beta = 0.2).
class Bisector {
 public:
  Bisector(const Graph& g, const HierarchyOptions& options)
      : options_(options), finder_(g, options.seed) {}

  PartitionTree Build(std::vector<Vertex> all) {
    if (!all.empty()) {
      tree_.root = Recurse(std::move(all), PartitionTree::kNoChild);
    }
    return std::move(tree_);
  }

 private:
  uint32_t NewNode(uint32_t parent, std::vector<Vertex> vertices) {
    std::sort(vertices.begin(), vertices.end());
    uint32_t id = static_cast<uint32_t>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    tree_.nodes.back().parent = parent;
    tree_.nodes.back().vertices = std::move(vertices);
    return id;
  }

  uint32_t Recurse(std::vector<Vertex> region, uint32_t parent) {
    if (region.size() <= options_.leaf_size) {
      return NewNode(parent, std::move(region));
    }

    std::vector<Vertex> separator, left, right;
    auto comps = finder_.RegionComponents(region);
    if (comps.size() == 1) {
      SeparatorResult res = finder_.Find(region, options_.num_starts);
      separator = std::move(res.separator);
      left = std::move(res.left);
      right = std::move(res.right);
    } else {
      // Disconnected region. If one component dominates, split it with a
      // separator and pack the remaining components onto the smaller side;
      // otherwise pack components into two halves and promote one vertex
      // to keep the ell mapping surjective (the node must be non-empty).
      std::sort(comps.begin(), comps.end(),
                [](const auto& a, const auto& b) {
                  if (a.size() != b.size()) return a.size() > b.size();
                  return a.front() < b.front();
                });
      double limit = (1.0 - options_.beta) * static_cast<double>(region.size());
      if (static_cast<double>(comps[0].size()) > limit &&
          comps[0].size() > options_.leaf_size) {
        SeparatorResult res = finder_.Find(comps[0], options_.num_starts);
        separator = std::move(res.separator);
        left = std::move(res.left);
        right = std::move(res.right);
        for (size_t i = 1; i < comps.size(); ++i) {
          auto& side = left.size() <= right.size() ? left : right;
          side.insert(side.end(), comps[i].begin(), comps[i].end());
        }
      } else {
        for (auto& comp : comps) {
          auto& side = left.size() <= right.size() ? left : right;
          side.insert(side.end(), comp.begin(), comp.end());
        }
        auto& bigger = left.size() >= right.size() ? left : right;
        separator.push_back(bigger.back());
        bigger.pop_back();
      }
    }

    if (separator.empty() || (left.empty() && right.empty())) {
      // Degenerate split; close off as a leaf.
      return NewNode(parent, std::move(region));
    }
    region.clear();
    region.shrink_to_fit();

    uint32_t id = NewNode(parent, std::move(separator));
    if (!left.empty()) {
      uint32_t child = Recurse(std::move(left), id);
      tree_.nodes[id].left = child;
    }
    if (!right.empty()) {
      uint32_t child = Recurse(std::move(right), id);
      tree_.nodes[id].right = child;
    }
    return id;
  }

  const HierarchyOptions& options_;
  SeparatorFinder finder_;
  PartitionTree tree_;
};

}  // namespace

PartitionTree BuildPartitionTree(const Graph& g,
                                 const HierarchyOptions& options) {
  STL_CHECK(options.beta > 0.0 && options.beta <= 0.5);
  STL_CHECK_GE(options.leaf_size, 1u);
  std::vector<Vertex> all(g.NumVertices());
  for (Vertex v = 0; v < g.NumVertices(); ++v) all[v] = v;
  Bisector bisector(g, options);
  PartitionTree tree = bisector.Build(std::move(all));
  // Invariant: the ell mapping is total — every vertex in exactly one node.
  size_t total = 0;
  for (const auto& node : tree.nodes) total += node.vertices.size();
  STL_CHECK_EQ(total, g.NumVertices());
  return tree;
}

}  // namespace stl
