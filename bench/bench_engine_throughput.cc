// Engine throughput under a mixed query + update workload, measured
// through BOTH submission paths of the unified serving API:
//
//   per-query — Submit() futures in closed-loop waves (the
//               compatibility adapter: one promise per query)
//   batched   — SubmitBatch() tickets over the same pairs (one pinned
//               snapshot + one allocation per WAVE, grouped routing)
//
// For each dataset: build a QueryEngine (>= 4 reader threads) with the
// epoch-keyed result cache enabled, then drive each phase while a
// driver thread streams weight-update batches (increase then restore,
// the paper's update model) into the writer. Reports per-query and
// per-batch queries/sec, p50/p99/mean latency, epochs published, the
// result-cache hit rate — and, the part that makes the numbers
// trustworthy, verifies EVERY answer against a Dijkstra recomputation
// on the exact epoch snapshot it was served from, plus every batched
// answer against the per-query path on its ticket's pinned snapshot
// (bit-identity). Emits BENCH_engine.json.
//
//   STL_BENCH_SCALE=small|medium|large ./bench_engine_throughput
//   ./bench_engine_throughput --check   # CI guard: zero mismatches on
//                                       # both paths, workload clamped
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "graph/dijkstra.h"
#include "util/table.h"
#include "workload/query_workload.h"
#include "workload/update_workload.h"

namespace stl {
namespace bench {
namespace {

// Engine shape shared by every dataset run (and recorded in the JSON).
constexpr int kQueryThreads = 4;
constexpr size_t kResultCacheEntries = 1u << 15;
// Serving-traffic skew: a quarter of the pairs repeat from a fixed hot
// pool, so the epoch-keyed result cache sees the hit pattern it exists
// for (uniform pairs on a big network essentially never repeat inside
// one epoch, which would leave result_cache_hit_rate pinned at 0).
constexpr double kHotFraction = 0.25;
constexpr size_t kHotPairs = 512;

struct EngineBenchSizes {
  size_t queries;        // total queries submitted per phase
  size_t wave;           // queries per submitted wave / batch
  size_t update_batches; // update batches streamed by the driver
  size_t batch_size;     // updates per batch
};

EngineBenchSizes SizesForScale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmall:
      return {4000, 100, 30, 12};
    case BenchScale::kMedium:
      return {20000, 250, 60, 25};
    case BenchScale::kLarge:
      return {100000, 500, 120, 50};
  }
  return {4000, 100, 30, 12};
}

struct EngineBenchRow {
  std::string dataset;
  uint32_t vertices = 0;
  double qps = 0;        // per-query (Submit futures) phase
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
  double qps_batch = 0;  // batched (SubmitBatch tickets) phase
  double p99_batch = 0;
  double cache_hit_rate = 0;
  uint64_t epochs = 0;
  uint64_t updates_applied = 0;
  uint64_t mismatches = 0;        // per-query answers vs Dijkstra
  uint64_t batch_mismatches = 0;  // batched vs Dijkstra AND vs the
                                  // per-query path on the pinned epoch
};

/// Streams `update_batches` alternating increase / restore batches on
/// distinct random edges (Figure 8's model, factor 4). Weights are
/// enqueued by target value against the epoch-0 snapshot, so each
/// restore batch reuses its increase batch's edges and puts back the
/// original weights.
void StreamUpdates(QueryEngine& engine, const Graph& base,
                   const EngineBenchSizes& sizes, uint64_t seed) {
  for (size_t b = 0; b < sizes.update_batches; ++b) {
    std::vector<EdgeId> edges = SampleDistinctEdges(
        base, sizes.batch_size, seed + 7 * (b / 2));
    const bool restore = b % 2 == 1;
    for (EdgeId e : edges) {
      const Weight w0 = base.EdgeWeight(e);
      const Weight target =
          restore ? w0 : std::min<Weight>(w0 * 4, kMaxEdgeWeight);
      engine.EnqueueUpdate(e, target);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

EngineBenchRow RunDataset(const DatasetSpec& spec,
                          const EngineBenchSizes& sizes) {
  EngineBenchRow row;
  row.dataset = spec.name;
  Graph g = LoadDataset(spec);
  row.vertices = g.NumVertices();

  std::vector<QueryPair> pairs = HotSpotQueryPairs(
      g, sizes.queries, kHotFraction, kHotPairs, spec.seed);

  EngineOptions opt;
  opt.num_query_threads = kQueryThreads;
  opt.max_batch_size = sizes.batch_size;
  opt.strategy = StrategyMode::kAuto;
  opt.result_cache_entries = kResultCacheEntries;
  QueryEngine engine(std::move(g), HierarchyOptions{}, opt);
  engine.ResetStats();  // exclude build time from throughput

  std::shared_ptr<const EngineSnapshot> base_snap = engine.CurrentSnapshot();
  const Graph& base = base_snap->graph;

  // ---- Phase 1: per-query serving (Submit futures). Closed-loop
  // waves — submit one wave, harvest it, submit the next — so in-flight
  // work stays bounded at `wave` and latency measures serving (queue
  // wait within a wave), not the drain of a bench-sized backlog.
  std::thread updater(
      [&] { StreamUpdates(engine, base, sizes, spec.seed); });
  std::vector<QueryResult> results;
  results.reserve(pairs.size());
  std::vector<std::future<QueryResult>> wave_futures;
  wave_futures.reserve(sizes.wave);
  for (size_t i = 0; i < pairs.size(); i += sizes.wave) {
    const size_t end = std::min(pairs.size(), i + sizes.wave);
    wave_futures.clear();
    for (size_t j = i; j < end; ++j) {
      wave_futures.push_back(engine.Submit(pairs[j]));
    }
    for (auto& f : wave_futures) results.push_back(f.get());
  }
  // Harvest the throughput numbers at the end of the SERVING window
  // (last answer in hand): queries/sec must not be diluted by how long
  // the writer takes to drain its remaining maintenance afterwards —
  // that drain time varies per dataset and has nothing to do with the
  // read path under measurement.
  {
    EngineStats serving = engine.Stats();
    row.qps = serving.queries_per_second;
    row.p50 = serving.latency_p50_micros;
    row.p99 = serving.latency_p99_micros;
    row.mean = serving.latency_mean_micros;
  }
  updater.join();
  engine.Flush();

  EngineStats stats = engine.Stats();
  row.epochs = stats.epochs_published;
  row.updates_applied = stats.updates_applied;

  // Ground-truth audit: group answers by epoch, Dijkstra on that epoch's
  // snapshot graph.
  {
    std::map<uint64_t, std::shared_ptr<const EngineSnapshot>> snapshots;
    for (const QueryResult& r : results) {
      snapshots.emplace(r.epoch, r.snapshot);
    }
    std::map<uint64_t, std::unique_ptr<Dijkstra>> oracle;
    for (auto& [epoch, snap] : snapshots) {
      oracle.emplace(epoch, std::make_unique<Dijkstra>(snap->graph));
    }
    for (size_t i = 0; i < results.size(); ++i) {
      const QueryResult& r = results[i];
      if (r.distance !=
          oracle.at(r.epoch)->Distance(pairs[i].first, pairs[i].second)) {
        ++row.mismatches;
      }
    }
  }

  // ---- Phase 2: batched serving (SubmitBatch tickets) over the same
  // pairs, against a fresh update stream. One snapshot pin + one ticket
  // per wave instead of `wave` promises.
  engine.ResetStats();
  // ResetStats keeps epochs_published (it doubles as the epoch-id
  // allocator), so the phase-2 epoch count is a delta.
  const uint64_t epochs_before_batch = engine.Stats().epochs_published;
  std::thread batch_updater(
      [&] { StreamUpdates(engine, base, sizes, spec.seed + 1000); });
  std::vector<QueryEngine::Ticket> tickets;
  tickets.reserve(pairs.size() / sizes.wave + 1);
  std::vector<size_t> ticket_begin;
  for (size_t i = 0; i < pairs.size(); i += sizes.wave) {
    const size_t end = std::min(pairs.size(), i + sizes.wave);
    std::vector<QueryPair> wave(pairs.begin() + i, pairs.begin() + end);
    QueryEngine::Ticket t = engine.SubmitBatch(wave);
    t.Wait();  // closed loop, same as phase 1
    ticket_begin.push_back(i);
    tickets.push_back(std::move(t));
  }
  // Same harvest point as phase 1: serving window only.
  {
    EngineStats serving = engine.Stats();
    row.qps_batch = serving.queries_per_second;
    row.p99_batch = serving.latency_p99_micros;
    row.cache_hit_rate = serving.result_cache_hit_rate;
  }
  batch_updater.join();
  engine.Flush();

  EngineStats batch_stats = engine.Stats();
  row.epochs += batch_stats.epochs_published - epochs_before_batch;
  row.updates_applied += batch_stats.updates_applied;

  // Batched audit: every ticket answer vs Dijkstra on the pinned epoch
  // AND vs the per-query path on the same pinned snapshot (the batch
  // path must be bit-identical to per-query serving).
  {
    std::map<uint64_t, std::unique_ptr<Dijkstra>> oracle;
    for (size_t w = 0; w < tickets.size(); ++w) {
      const QueryEngine::Ticket& t = tickets[w];
      auto [it, fresh] = oracle.try_emplace(t.epoch());
      if (fresh) {
        it->second = std::make_unique<Dijkstra>(t.snapshot()->graph);
      }
      for (size_t i = 0; i < t.size(); ++i) {
        const QueryPair& q = pairs[ticket_begin[w] + i];
        const Weight got = t.distance(i);
        if (got != it->second->Distance(q.first, q.second) ||
            got != t.snapshot()->Query(q.first, q.second)) {
          ++row.batch_mismatches;
        }
      }
    }
  }
  return row;
}

void WriteJson(const char* path, const BenchConfig& cfg,
               const EngineBenchSizes& sizes,
               const std::vector<EngineBenchRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_throughput\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", ScaleName(cfg.scale));
  std::fprintf(
      f,
      "  \"workload\": {\"queries\": %zu, \"wave\": %zu, "
      "\"update_batches\": %zu, \"update_batch_size\": %zu, "
      "\"query_threads\": %d, \"result_cache_entries\": %zu, "
      "\"hot_fraction\": %.2f, \"hot_pairs\": %zu},\n",
      sizes.queries, sizes.wave, sizes.update_batches, sizes.batch_size,
      kQueryThreads, kResultCacheEntries, kHotFraction, kHotPairs);
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineBenchRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"vertices\": %u, \"qps\": %.1f, "
        "\"qps_batch\": %.1f, \"latency_p50_micros\": %.2f, "
        "\"latency_p99_micros\": %.2f, \"latency_mean_micros\": %.2f, "
        "\"latency_p99_batch_micros\": "
        "%.2f, \"result_cache_hit_rate\": %.4f, \"epochs\": %" PRIu64
        ", \"updates_applied\": %" PRIu64 ", \"mismatches\": %" PRIu64
        ", \"batch_mismatches\": %" PRIu64 "}%s\n",
        r.dataset.c_str(), r.vertices, r.qps, r.qps_batch, r.p50, r.p99,
        r.mean, r.p99_batch, r.cache_hit_rate, r.epochs,
        r.updates_applied, r.mismatches, r.batch_mismatches,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main(bool check) {
  BenchConfig cfg = MakeConfig();
  PrintHeader("Engine throughput: per-query vs batched submission under "
              "streaming updates",
              cfg);
  EngineBenchSizes sizes = SizesForScale(cfg.scale);
  if (check) {
    // CI guard: bound the build + double-audit cost.
    sizes.queries = std::min<size_t>(sizes.queries, 2000);
    sizes.update_batches = std::min<size_t>(sizes.update_batches, 12);
  }
  std::printf(
      "4 reader threads + 1 writer; %zu queries per phase in waves of "
      "%zu, %zu update batches x %zu edges (increase/restore, factor "
      "4)\n\n",
      sizes.queries, sizes.wave, sizes.update_batches, sizes.batch_size);

  TablePrinter table({"Dataset", "|V|", "qps", "qps batch", "p50 us",
                      "p99 us", "cache hit", "epochs", "mism", "b mism"});
  std::vector<EngineBenchRow> rows;
  bool all_exact = true;
  for (const DatasetSpec& spec : cfg.datasets) {
    EngineBenchRow row = RunDataset(spec, sizes);
    all_exact =
        all_exact && row.mismatches == 0 && row.batch_mismatches == 0;
    table.AddRow({row.dataset, std::to_string(row.vertices),
                  TablePrinter::Fixed(row.qps, 0),
                  TablePrinter::Fixed(row.qps_batch, 0),
                  TablePrinter::Fixed(row.p50, 1),
                  TablePrinter::Fixed(row.p99, 1),
                  TablePrinter::Fixed(row.cache_hit_rate, 3),
                  std::to_string(row.epochs),
                  std::to_string(row.mismatches),
                  std::to_string(row.batch_mismatches)});
    rows.push_back(row);
  }
  table.Print();
  WriteJson("BENCH_engine.json", cfg, sizes, rows);
  if (!all_exact) {
    std::printf("\nFAIL: served answers diverged from ground truth "
                "(per-query vs Dijkstra, or batched vs per-query on the "
                "pinned epoch)\n");
    return 1;
  }
  std::printf("\nall answers exact on their serving epoch; batch path "
              "bit-identical to per-query\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace stl

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  return stl::bench::Main(check);
}
