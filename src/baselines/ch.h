// Contraction Hierarchy baseline in the CH-W flavour [21, 22]: vertices
// are contracted in a heuristic order and a shortcut is added between
// *every* pair of not-yet-contracted neighbours (no witness search). The
// resulting shortcut structure depends only on the topology, never on the
// weights — the property that makes dynamic maintenance (DCH [22]) and the
// H2H tree decomposition possible.
//
// Query: bidirectional upward Dijkstra over the CH-W graph.
//
// Maintenance (DCH-style): every CH-W edge (original or shortcut) has
//   w(u,v) = min( phi(u,v),  min_{x in supports(u,v)} w(x,u) + w(x,v) )
// where supports(u,v) are the contracted vertices that created/witnessed
// the shortcut. A base weight change dirties its edge; dirty edges are
// reprocessed in contraction-rank order of their lower endpoint, and a
// changed edge dirties the shortcuts it supports.
#ifndef STL_BASELINES_CH_H_
#define STL_BASELINES_CH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/labelling.h"  // SaturatingAdd
#include "graph/graph.h"
#include "graph/updates.h"
#include "util/min_heap.h"

namespace stl {

/// Reusable scratch for one ChIndex::Query caller. Queries on a const
/// ChIndex are thread-safe as long as each thread brings its own context
/// (the same contract as the engine's per-reader snapshots).
struct ChQueryContext {
  std::vector<Weight> dist[2];
  std::vector<uint32_t> stamp[2];
  uint32_t epoch = 0;
  MinHeap<Weight, Vertex> heap[2];
};

/// Contraction-hierarchy index with DCH weight maintenance.
class ChIndex {
 public:
  /// Empty index; assign from Build before use.
  ChIndex() = default;

  /// One CH-W edge (original road edge and/or shortcut).
  struct ChEdge {
    Vertex lo;          // lower contraction rank
    Vertex hi;          // higher contraction rank
    Weight weight;      // current derived weight
    Weight base;        // original edge weight, kInfDistance for shortcuts
    uint32_t supports_begin = 0;  // into support_pool_
    uint32_t supports_end = 0;
  };

  /// Builds the CH-W structure over `*g`. The graph must stay alive;
  /// updates must go through ApplyUpdate so graph and index stay in sync.
  static ChIndex Build(Graph* g);

  /// Distance query via bidirectional upward search. The const overload
  /// uses caller-provided scratch and is safe from concurrent readers;
  /// the convenience overload reuses internal scratch (single-threaded).
  Weight Query(Vertex s, Vertex t, ChQueryContext* ctx) const;
  Weight Query(Vertex s, Vertex t) { return Query(s, t, &query_scratch_); }

  /// One CH edge whose derived weight changed during maintenance.
  struct ChangedEdge {
    uint32_t id;
    Weight old_weight;
  };

  /// Applies a base edge weight change, updates the graph and all derived
  /// shortcut weights. Returns the CH edges whose weight changed with
  /// their previous weights (consumed by H2H label maintenance).
  const std::vector<ChangedEdge>& ApplyUpdate(const WeightUpdate& update);

  uint32_t rank(Vertex v) const { return rank_[v]; }
  uint32_t NumChEdges() const { return static_cast<uint32_t>(edges_.size()); }
  const ChEdge& GetChEdge(uint32_t id) const { return edges_[id]; }

  /// Upward CH-edge ids of v (edges to higher-ranked vertices) — exactly
  /// the X(v) \ {v} set of the H2H tree decomposition.
  std::span<const uint32_t> UpEdges(Vertex v) const {
    return {up_pool_.data() + up_offset_[v],
            up_pool_.data() + up_offset_[v + 1]};
  }

  uint64_t MemoryBytes() const;
  uint64_t NumShortcutsOnly() const { return num_pure_shortcuts_; }
  double build_seconds() const { return build_seconds_; }

  /// Test hook: recomputes every CH edge weight from scratch (rank order)
  /// and returns true iff nothing changed (i.e. maintenance was exact).
  bool ValidateWeights();

  /// A detached copy for publication as an immutable serving epoch:
  /// keeps exactly the query state (ranks, CH edges, upward adjacency)
  /// and sheds the maintenance-only structures (support lists, graph
  /// pointer, scratch). The copy answers Query() but must never be
  /// maintained — ApplyUpdate/ValidateWeights on it are undefined.
  ChIndex PublishCopy() const;

 private:
  Weight RecomputeEdgeWeight(const ChEdge& e) const;
  uint32_t EdgeIdBetween(Vertex a, Vertex b) const;  // UINT32_MAX if none

  Graph* g_ = nullptr;
  std::vector<uint32_t> rank_;      // contraction order, 0 = first
  std::vector<Vertex> by_rank_;     // inverse of rank_
  std::vector<ChEdge> edges_;
  std::vector<Vertex> support_pool_;
  // Pairs supported by x, indexed by endpoint: when w(x, u) changes, the
  // dirty shortcuts are exactly supported_index_[x] entries keyed by u.
  // CSR of (endpoint, pair id) sorted by endpoint per supporter.
  std::vector<uint64_t> supported_off_;                    // per vertex
  std::vector<std::pair<Vertex, uint32_t>> supported_index_;
  // (hi vertex, edge id) sorted by hi, per lo vertex; recompute lookups.
  std::vector<uint32_t> up_offset_;
  std::vector<uint32_t> up_pool_;
  // EdgeId (graph) -> CH edge id.
  std::vector<uint32_t> ch_edge_of_graph_edge_;
  uint64_t num_pure_shortcuts_ = 0;
  double build_seconds_ = 0;

  // Scratch backing the convenience (non-const) Query overload.
  ChQueryContext query_scratch_;

  // Maintenance scratch. Dirty work items are (pair, supporter) triggers
  // keyed by the pair's lo rank, so supports settle before dependents.
  // Weight changes are monotone per update (one direction), which allows
  // O(1) relaxation per trigger on decrease and a full support scan only
  // when a changed support realized the old minimum on increase.
  MinHeap<uint64_t, uint64_t> dirty_;  // payload packs (pair id, supporter)
  std::vector<Weight> old_weight_;     // pre-update weight per CH edge
  std::vector<uint32_t> old_stamp_;
  std::vector<uint32_t> done_stamp_;   // recompute dedupe (increase case)
  uint32_t update_epoch_ = 0;
  std::vector<ChangedEdge> changed_;
};

}  // namespace stl

#endif  // STL_BASELINES_CH_H_
