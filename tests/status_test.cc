#include "util/status.h"

#include <gtest/gtest.h>

namespace stl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::IOError("c"), StatusCode::kIOError, "IOError"},
      {Status::Corruption("d"), StatusCode::kCorruption, "Corruption"},
      {Status::NotSupported("e"), StatusCode::kNotSupported, "NotSupported"},
      {Status::OutOfRange("f"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.status.code())), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  EXPECT_EQ(Status::IOError("disk on fire").ToString(),
            "IOError: disk on fire");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

}  // namespace
}  // namespace stl
