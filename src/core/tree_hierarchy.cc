#include "core/tree_hierarchy.h"

#include <algorithm>
#include <bit>

namespace stl {

TreeHierarchy TreeHierarchy::FromPartitionTree(const Graph& g,
                                               const PartitionTree& tree) {
  TreeHierarchy h;
  const uint32_t num_nodes = static_cast<uint32_t>(tree.nodes.size());
  STL_CHECK_GT(num_nodes, 0u);
  h.nodes_.resize(num_nodes);
  h.node_of_.assign(g.NumVertices(), kNoNode);
  h.tau_.assign(g.NumVertices(), 0);
  h.vertex_pool_.reserve(g.NumVertices());
  h.root_ = tree.root;

  // Preorder walk from the root assigns levels, bitstrings, cumulative
  // counts, pools. Partition tree nodes are already parent-before-child,
  // but we walk explicitly to be independent of construction order.
  struct Item {
    uint32_t id;
    uint32_t parent;
    uint32_t level;
    uint64_t bits[2];
    uint32_t cum_before;
  };
  std::vector<Item> stack;
  stack.push_back(Item{tree.root, kNoNode, 0, {0, 0}, 0});
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    const PartitionTree::Node& src = tree.nodes[it.id];
    STL_CHECK(!src.vertices.empty()) << "ell must be surjective";
    STL_CHECK_LT(it.level, kMaxDepth) << "hierarchy too deep for bitstrings";

    Node& dst = h.nodes_[it.id];
    dst.parent = it.parent;
    dst.left = src.left;
    dst.right = src.right;
    dst.level = it.level;
    dst.first_vertex = static_cast<uint32_t>(h.vertex_pool_.size());
    dst.num_vertices = static_cast<uint32_t>(src.vertices.size());
    dst.cum_vertices = it.cum_before + dst.num_vertices;
    dst.bits[0] = it.bits[0];
    dst.bits[1] = it.bits[1];
    dst.path_offset = static_cast<uint32_t>(h.node_path_pool_.size());
    // Root path = parent's path + self.
    if (it.parent == kNoNode) {
      h.node_path_pool_.push_back(it.id);
    } else {
      const Node& p = h.nodes_[it.parent];
      for (uint32_t l = 0; l <= p.level; ++l) {
        h.node_path_pool_.push_back(
            h.node_path_pool_[p.path_offset + l]);
      }
      h.node_path_pool_.push_back(it.id);
    }

    for (uint32_t p = 0; p < dst.num_vertices; ++p) {
      Vertex v = src.vertices[p];
      STL_CHECK(h.node_of_[v] == kNoNode) << "vertex in two nodes";
      h.node_of_[v] = it.id;
      h.tau_[v] = it.cum_before + p;
      h.vertex_pool_.push_back(v);
    }

    h.depth_ = std::max(h.depth_, it.level + 1);

    auto child_bits = [&it](int dir) {
      uint64_t b[2] = {it.bits[0], it.bits[1]};
      if (dir == 1) {
        if (it.level < 64) {
          b[0] |= (1ULL << it.level);
        } else {
          b[1] |= (1ULL << (it.level - 64));
        }
      }
      return std::pair<uint64_t, uint64_t>{b[0], b[1]};
    };
    if (src.right != PartitionTree::kNoChild) {
      auto [b0, b1] = child_bits(1);
      stack.push_back(
          Item{src.right, it.id, it.level + 1, {b0, b1}, dst.cum_vertices});
    }
    if (src.left != PartitionTree::kNoChild) {
      auto [b0, b1] = child_bits(0);
      stack.push_back(
          Item{src.left, it.id, it.level + 1, {b0, b1}, dst.cum_vertices});
    }
  }

  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    STL_CHECK(h.node_of_[v] != kNoNode) << "vertex not assigned to a node";
    h.max_label_size_ = std::max(h.max_label_size_, h.tau_[v] + 1);
    h.total_label_entries_ += h.tau_[v] + 1;
  }
  return h;
}

TreeHierarchy TreeHierarchy::Build(const Graph& g,
                                   const HierarchyOptions& options) {
  return FromPartitionTree(g, BuildPartitionTree(g, options));
}

uint32_t TreeHierarchy::LcaLevel(Vertex s, Vertex t) const {
  const Node& a = GetNode(NodeOf(s));
  const Node& b = GetNode(NodeOf(t));
  uint32_t limit = std::min(a.level, b.level);
  uint64_t x0 = a.bits[0] ^ b.bits[0];
  uint64_t x1 = a.bits[1] ^ b.bits[1];
  uint32_t prefix;
  if (x0 != 0) {
    prefix = static_cast<uint32_t>(std::countr_zero(x0));
  } else if (x1 != 0) {
    prefix = 64 + static_cast<uint32_t>(std::countr_zero(x1));
  } else {
    prefix = kMaxDepth;
  }
  return std::min(prefix, limit);
}

Vertex TreeHierarchy::AncestorAt(Vertex v, uint32_t i) const {
  STL_CHECK_LE(i, Tau(v));
  auto path = PathOf(NodeOf(v));
  // Binary search the first node on the path with cum_vertices > i.
  uint32_t lo = 0, hi = static_cast<uint32_t>(path.size()) - 1;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (GetNode(path[mid]).cum_vertices > i) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const Node& n = GetNode(path[lo]);
  uint32_t before = n.cum_vertices - n.num_vertices;
  STL_DCHECK(i >= before && i < n.cum_vertices);
  return vertex_pool_[n.first_vertex + (i - before)];
}

uint64_t TreeHierarchy::MemoryBytes() const {
  return nodes_.capacity() * sizeof(Node) +
         vertex_pool_.capacity() * sizeof(Vertex) +
         node_path_pool_.capacity() * sizeof(uint32_t) +
         node_of_.capacity() * sizeof(uint32_t) +
         tau_.capacity() * sizeof(uint32_t);
}

Status TreeHierarchy::Serialize(BinaryWriter* w) const {
  Status s = w->WriteVector(nodes_);
  if (s.ok()) s = w->WriteVector(vertex_pool_);
  if (s.ok()) s = w->WriteVector(node_path_pool_);
  if (s.ok()) s = w->WriteVector(node_of_);
  if (s.ok()) s = w->WriteVector(tau_);
  if (s.ok()) s = w->WritePod(root_);
  if (s.ok()) s = w->WritePod(depth_);
  if (s.ok()) s = w->WritePod(max_label_size_);
  if (s.ok()) s = w->WritePod(total_label_entries_);
  return s;
}

Status TreeHierarchy::Deserialize(BinaryReader* r) {
  Status s = r->ReadVector(&nodes_);
  if (s.ok()) s = r->ReadVector(&vertex_pool_);
  if (s.ok()) s = r->ReadVector(&node_path_pool_);
  if (s.ok()) s = r->ReadVector(&node_of_);
  if (s.ok()) s = r->ReadVector(&tau_);
  if (s.ok()) s = r->ReadPod(&root_);
  if (s.ok()) s = r->ReadPod(&depth_);
  if (s.ok()) s = r->ReadPod(&max_label_size_);
  if (s.ok()) s = r->ReadPod(&total_label_entries_);
  if (!s.ok()) return s;
  // Cheap structural sanity checks against corrupted files.
  if (nodes_.empty() || root_ >= nodes_.size()) {
    return Status::Corruption("hierarchy: bad root");
  }
  for (const Node& n : nodes_) {
    if (n.first_vertex + n.num_vertices > vertex_pool_.size() ||
        n.num_vertices == 0 ||
        static_cast<uint64_t>(n.path_offset) + n.level + 1 >
            node_path_pool_.size()) {
      return Status::Corruption("hierarchy: node out of bounds");
    }
  }
  for (uint32_t nid : node_of_) {
    if (nid >= nodes_.size()) {
      return Status::Corruption("hierarchy: node_of out of bounds");
    }
  }
  return Status::OK();
}

bool TreeHierarchy::operator==(const TreeHierarchy& o) const {
  auto node_eq = [](const Node& a, const Node& b) {
    return a.parent == b.parent && a.left == b.left && a.right == b.right &&
           a.level == b.level && a.first_vertex == b.first_vertex &&
           a.num_vertices == b.num_vertices &&
           a.cum_vertices == b.cum_vertices &&
           a.path_offset == b.path_offset && a.bits[0] == b.bits[0] &&
           a.bits[1] == b.bits[1];
  };
  if (nodes_.size() != o.nodes_.size()) return false;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!node_eq(nodes_[i], o.nodes_[i])) return false;
  }
  return vertex_pool_ == o.vertex_pool_ &&
         node_path_pool_ == o.node_path_pool_ && node_of_ == o.node_of_ &&
         tau_ == o.tau_ && root_ == o.root_ && depth_ == o.depth_ &&
         max_label_size_ == o.max_label_size_ &&
         total_label_entries_ == o.total_label_entries_;
}

}  // namespace stl
