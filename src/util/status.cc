#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace stl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on failed result: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace stl
