#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"

namespace stl {
namespace {

TEST(GeneratorsTest, RoadNetworkIsConnected) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = testing_util::SmallRoadNetwork(16, seed);
    EXPECT_TRUE(IsConnected(g)) << "seed " << seed;
    EXPECT_GT(g.NumVertices(), 16u * 16u * 9 / 10);
  }
}

TEST(GeneratorsTest, DeterministicInSeed) {
  RoadNetworkOptions opt;
  opt.width = 14;
  opt.height = 11;
  opt.seed = 99;
  Graph a = GenerateRoadNetwork(opt);
  Graph b = GenerateRoadNetwork(opt);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.GetEdge(e).u, b.GetEdge(e).u);
    EXPECT_EQ(a.GetEdge(e).v, b.GetEdge(e).v);
    EXPECT_EQ(a.GetEdge(e).w, b.GetEdge(e).w);
  }
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  RoadNetworkOptions opt;
  opt.width = 14;
  opt.height = 14;
  opt.seed = 1;
  Graph a = GenerateRoadNetwork(opt);
  opt.seed = 2;
  Graph b = GenerateRoadNetwork(opt);
  // Either sizes differ or some weight differs.
  bool differ = a.NumEdges() != b.NumEdges();
  if (!differ) {
    for (EdgeId e = 0; e < a.NumEdges() && !differ; ++e) {
      differ = a.GetEdge(e).w != b.GetEdge(e).w ||
               a.GetEdge(e).u != b.GetEdge(e).u;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorsTest, DegreeBounded) {
  Graph g = testing_util::SmallRoadNetwork(20, 5);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(g.Degree(v), 8u);  // grid + at most a few chords
  }
}

TEST(GeneratorsTest, HighwaysAreFaster) {
  RoadNetworkOptions opt;
  opt.width = 33;
  opt.height = 33;
  opt.seed = 4;
  opt.edge_keep_prob = 1.0;
  opt.chord_prob = 0.0;
  Graph g = GenerateRoadNetwork(opt);
  // Row 0 is a highway (index 0 % highway_every == 0): its horizontal
  // edges should be much cheaper than the local maximum.
  uint64_t highway_total = 0, highway_count = 0;
  for (const Edge& e : g.edges()) {
    // With keep prob 1.0 and no chords, vertex ids match grid ids.
    if (e.u / 33 == 0 && e.v / 33 == 0) {
      highway_total += e.w;
      ++highway_count;
    }
  }
  ASSERT_GT(highway_count, 0u);
  double avg = static_cast<double>(highway_total) / highway_count;
  EXPECT_LT(avg, opt.local_min_weight);
}

TEST(GeneratorsTest, WeightsWithinConfiguredRange) {
  RoadNetworkOptions opt;
  opt.width = 12;
  opt.height = 12;
  opt.seed = 8;
  Graph g = GenerateRoadNetwork(opt);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 1u);
    // Chords can be 1.5x the local max.
    EXPECT_LE(e.w, opt.local_max_weight + opt.local_max_weight / 2);
  }
}

TEST(GeneratorsTest, PathGraph) {
  Graph g = GeneratePath(5, 7);
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 4u);
  Dijkstra dij(g);
  EXPECT_EQ(dij.Distance(0, 4), 28u);
}

TEST(GeneratorsTest, SingleVertexPath) {
  Graph g = GeneratePath(1, 3);
  EXPECT_EQ(g.NumVertices(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GeneratorsTest, RandomConnectedGraphIsConnected) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = GenerateRandomConnectedGraph(120, 80, 1, 50, seed);
    EXPECT_EQ(g.NumVertices(), 120u);
    EXPECT_TRUE(IsConnected(g));
    EXPECT_GE(g.NumEdges(), 119u);  // spanning tree at minimum
  }
}

TEST(GeneratorsTest, RandomConnectedGraphWeightRange) {
  Graph g = GenerateRandomConnectedGraph(60, 40, 10, 20, 3);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 10u);
    EXPECT_LE(e.w, 20u);
  }
}

}  // namespace
}  // namespace stl
