// Sharding layer: how one road network becomes k independently-served
// index shards plus a boundary overlay.
//
// Built on a CellPartition (partition/cells.h) whose separator set S
// isolates the cells from each other:
//
//   shard i     — the subgraph on C_i ∪ S_i (cell vertices plus the
//                 boundary vertices adjacent to the cell), holding every
//                 edge with at least one endpoint in C_i. One
//                 DistanceIndex (any backend) serves it.
//   overlay     — owns the remaining edges (both endpoints in S) and,
//                 per cell, a clique of shard-local boundary-to-boundary
//                 distances. Running Dijkstra over that small graph
//                 yields D[b1][b2]: the EXACT full-graph distance
//                 between every pair of boundary vertices.
//
// Why this is exact: S is a vertex separator, so any path decomposes
// into maximal segments whose interiors each lie inside one cell. Each
// segment is either an S–S edge (a direct overlay edge) or a
// through-one-cell walk (bounded below by that shard's clique entry),
// so shortest paths in the overlay graph equal shortest paths in G
// restricted to boundary endpoints. Query routing then sums
// shard-local distances with overlay rows (engine/sharded_engine.h).
//
// Update locality: a weight change inside cell i touches shard i's
// index and the overlay only — every other shard's published epoch
// stays byte-identical and is re-shared by pointer.
#ifndef STL_INDEX_OVERLAY_H_
#define STL_INDEX_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "index/distance_index.h"
#include "partition/cells.h"

namespace stl {

/// Immutable mapping between the full graph and its shards: vertex and
/// edge ownership, local renumberings, and the boundary bookkeeping the
/// overlay and the query router share. Built once per engine; every
/// published snapshot holds it by shared_ptr.
struct ShardLayout {
  /// `shard_of_edge` value for edges owned by the overlay (both
  /// endpoints in S).
  static constexpr uint32_t kOverlayShard = UINT32_MAX;

  /// Static (weight-independent) description of one shard.
  struct Shard {
    /// Local vertex id -> global vertex id. Cell vertices come first
    /// (locals [0, num_cell_vertices)), then S_i in ascending global
    /// order.
    std::vector<Vertex> to_global;
    /// Number of cell-owned vertices (locals below this are C_i).
    uint32_t num_cell_vertices = 0;
    /// Local edge id -> global edge id.
    std::vector<EdgeId> edge_to_global;
    /// Local vertex ids of S_i, aligned with
    /// CellPartition::cell_boundary[i].
    std::vector<Vertex> boundary_local;
    /// Positions of S_i in the global boundary order (indexes into
    /// OverlayTable rows), aligned with `boundary_local`.
    std::vector<uint32_t> boundary_pos;
  };

  /// One direct overlay edge: a graph edge with both endpoints in S.
  struct DirectEdge {
    uint32_t a_pos = 0;       ///< Position of one endpoint in `boundary`.
    uint32_t b_pos = 0;       ///< Position of the other endpoint.
    EdgeId global_edge = 0;   ///< The owning graph edge.
  };

  /// The cell partition this layout was derived from.
  CellPartition partition;
  /// Per-shard static description, indexed by cell id.
  std::vector<Shard> shards;
  /// Global vertex -> owning shard (CellPartition::kBoundaryCell for
  /// boundary vertices).
  std::vector<uint32_t> shard_of_vertex;
  /// Global vertex -> local id within its owning shard (meaningless for
  /// boundary vertices).
  std::vector<Vertex> local_of_vertex;
  /// Global edge -> owning shard, or kOverlayShard for S–S edges.
  std::vector<uint32_t> shard_of_edge;
  /// Global edge -> local edge id in its shard, or index into
  /// `direct_edges` when overlay-owned.
  std::vector<uint32_t> local_of_edge;
  /// Global vertex -> position in CellPartition::boundary (UINT32_MAX
  /// for non-boundary vertices).
  std::vector<uint32_t> boundary_pos_of_vertex;
  /// The overlay's own edge set (S–S graph edges).
  std::vector<DirectEdge> direct_edges;
  /// Per boundary position: the shards listing that vertex in S_i, as
  /// (shard, index into that shard's boundary_local/boundary_pos).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> memberships;

  /// Number of shards.
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards.size());
  }
  /// Number of boundary vertices (the overlay's vertex count).
  uint32_t num_boundary() const {
    return static_cast<uint32_t>(partition.boundary.size());
  }
  /// Resident bytes of the layout tables.
  uint64_t MemoryBytes() const;
};

/// A freshly computed layout plus the per-shard subgraphs seeded with
/// the master graph's current weights. The engine takes ownership of
/// the graphs (they become each shard's mutable master) and freezes the
/// layout behind a shared_ptr.
struct ShardPlan {
  /// The immutable mapping tables.
  ShardLayout layout;
  /// Per-shard subgraph, aligned with layout.shards. Local vertex v of
  /// shard i is layout.shards[i].to_global[v].
  std::vector<Graph> shard_graphs;
};

/// Computes the shard layout and subgraphs of `g` under `cells`.
/// Dies if `cells` does not describe `g` (sizes, separator property).
ShardPlan BuildShardPlan(const Graph& g, const CellPartition& cells);

/// One immutable published epoch of the boundary overlay: the exact
/// full-graph distance between every pair of boundary vertices, plus
/// per-shard packed copies of the rows so the router's inner min-plus
/// loop reads contiguous memory (util/simd.h kernels).
class OverlayTable {
 public:
  /// An empty table (no boundary vertices; k == 1 layouts).
  OverlayTable() = default;

  /// Number of boundary vertices.
  uint32_t num_boundary() const { return n_; }

  /// Exact distance between boundary positions a and b (kInfDistance
  /// when unreachable).
  Weight At(uint32_t a, uint32_t b) const {
    STL_DCHECK(a < n_ && b < n_);
    return d_[static_cast<size_t>(a) * n_ + b];
  }

  /// Row a of the full table (n entries).
  const Weight* Row(uint32_t a) const {
    STL_DCHECK(a < n_);
    return d_.data() + static_cast<size_t>(a) * n_;
  }

  /// Row a restricted to shard `s`'s boundary set, packed contiguously
  /// in the order of ShardLayout::Shard::boundary_pos (|S_s| entries).
  const Weight* PackedRow(uint32_t s, uint32_t a) const {
    STL_DCHECK(s < packed_.size());
    STL_DCHECK(a < n_);
    const PackedBlock& blk = packed_[s];
    return blk.values.data() + static_cast<size_t>(a) * blk.width;
  }

  /// The packed-row batch entry point for batched routing: for each of
  /// the `nrows` boundary positions in `rows`, writes
  /// `out[i] = min_j PackedRow(s, rows[i])[j] + b[j]` over shard `s`'s
  /// packed width (the SIMD min-plus kernel per row). `b` must hold
  /// that width's entries — a shard-local boundary-distance row. Batched
  /// submission computes one such inner vector per (source-cell,
  /// target-cell, target) group and reuses it across every source in
  /// the group (engine/sharded_engine.h).
  void MinPlusRowsInto(uint32_t s, const uint32_t* rows, uint32_t nrows,
                       const Weight* b, Weight* out) const;

  /// Resident bytes of the table and its packed copies.
  uint64_t MemoryBytes() const;

 private:
  friend class BoundaryOverlay;

  /// Per-shard packed column block: n rows of |S_i| entries.
  struct PackedBlock {
    uint32_t width = 0;
    std::vector<Weight> values;
  };

  uint32_t n_ = 0;
  std::vector<Weight> d_;            // n x n, row-major
  std::vector<PackedBlock> packed_;  // one block per shard
};

/// The writer-owned overlay master. Holds the mutable inputs — direct
/// S–S edge weights and one distance clique per shard — and publishes
/// immutable OverlayTables by running an all-pairs Dijkstra over the
/// small overlay graph. Not thread-safe; the engine's single-writer
/// discipline applies.
class BoundaryOverlay {
 public:
  /// Binds to `layout` (not owned; must outlive the overlay) and seeds
  /// the direct edge weights from `g`'s current weights. Cliques start
  /// empty; call RebuildClique for every shard before the first
  /// Publish.
  BoundaryOverlay(const ShardLayout* layout, const Graph& g);

  /// Updates the weight of direct overlay edge `direct_slot` (an index
  /// into ShardLayout::direct_edges).
  void SetDirectWeight(uint32_t direct_slot, Weight w);

  /// Recomputes shard `s`'s boundary-to-boundary distance clique by
  /// querying its freshly published view (|S_s|^2 / 2 queries).
  void RebuildClique(uint32_t s, const IndexView& view);

  /// Runs the all-pairs overlay Dijkstra over the current direct
  /// weights and cliques, and returns the resulting immutable table.
  std::shared_ptr<const OverlayTable> Publish() const;

  /// Resident bytes of the mutable overlay state.
  uint64_t MemoryBytes() const;

 private:
  const ShardLayout* layout_;
  std::vector<Weight> direct_weight_;  // aligned with layout->direct_edges
  // Per shard: |S_i| x |S_i| row-major distance clique through that
  // shard only (kInfDistance where disconnected inside the shard).
  std::vector<std::vector<Weight>> clique_;
};

}  // namespace stl

#endif  // STL_INDEX_OVERLAY_H_
