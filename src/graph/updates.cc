#include "graph/updates.h"

#include <algorithm>

namespace stl {

void ApplyBatch(Graph* g, const UpdateBatch& batch) {
  for (const WeightUpdate& u : batch) {
    g->SetEdgeWeight(u.edge, u.new_weight);
  }
}

void RevertBatch(Graph* g, const UpdateBatch& batch) {
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    g->SetEdgeWeight(it->edge, it->old_weight);
  }
}

UpdateBatch InverseBatch(const UpdateBatch& batch) {
  UpdateBatch inv;
  inv.reserve(batch.size());
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    inv.push_back(WeightUpdate{it->edge, it->new_weight, it->old_weight});
  }
  return inv;
}

std::pair<UpdateBatch, UpdateBatch> SplitByDirection(
    const UpdateBatch& batch) {
  UpdateBatch dec, inc;
  for (const WeightUpdate& u : batch) {
    if (u.IsDecrease()) {
      dec.push_back(u);
    } else if (u.IsIncrease()) {
      inc.push_back(u);
    }
  }
  return {std::move(dec), std::move(inc)};
}

}  // namespace stl
