#include "baselines/h2h.h"

#include <algorithm>
#include <bit>

#include "util/simd.h"
#include "util/timer.h"

namespace stl {

H2hIndex H2hIndex::Build(Graph* g) {
  STL_CHECK(g != nullptr);
  Timer timer;
  H2hIndex h;
  h.g_ = g;
  h.ch_ = ChIndex::Build(g);
  const uint32_t n = g->NumVertices();

  // Tree decomposition: parent of v = lowest-ranked member of X(v)\{v}.
  h.parent_.assign(n, kNoParent);
  for (Vertex v = 0; v < n; ++v) {
    uint32_t best_rank = UINT32_MAX;
    Vertex best = kNoParent;
    for (uint32_t cid : h.ch_.UpEdges(v)) {
      Vertex u = h.ch_.GetChEdge(cid).hi;
      if (h.ch_.rank(u) < best_rank) {
        best_rank = h.ch_.rank(u);
        best = u;
      }
    }
    h.parent_[v] = best;  // kNoParent only for the top-ranked vertex
  }
  uint32_t roots = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (h.parent_[v] == kNoParent) {
      h.root_ = v;
      ++roots;
    }
  }
  STL_CHECK_EQ(roots, 1u) << "H2H requires a connected graph";

  // Children CSR and depths via BFS from the root.
  std::vector<uint32_t> child_count(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (h.parent_[v] != kNoParent) ++child_count[h.parent_[v]];
  }
  h.child_off_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    h.child_off_[v + 1] = h.child_off_[v] + child_count[v];
  }
  h.child_pool_.resize(n - 1);
  {
    std::vector<uint32_t> cursor(h.child_off_.begin(), h.child_off_.end() - 1);
    for (Vertex v = 0; v < n; ++v) {
      if (h.parent_[v] != kNoParent) {
        h.child_pool_[cursor[h.parent_[v]]++] = v;
      }
    }
  }
  h.depth_.assign(n, 0);
  std::vector<Vertex> bfs;  // top-down order
  bfs.reserve(n);
  bfs.push_back(h.root_);
  for (size_t i = 0; i < bfs.size(); ++i) {
    Vertex v = bfs[i];
    h.tree_height_ = std::max(h.tree_height_, h.depth_[v] + 1);
    for (uint32_t c = h.child_off_[v]; c < h.child_off_[v + 1]; ++c) {
      Vertex u = h.child_pool_[c];
      h.depth_[u] = h.depth_[v] + 1;
      bfs.push_back(u);
    }
  }
  STL_CHECK_EQ(bfs.size(), static_cast<size_t>(n));

  // Label storage: ancestor + distance arrays of length depth(v)+1.
  h.off_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    h.off_[v + 1] = h.off_[v] + h.depth_[v] + 1;
  }
  h.anc_pool_.resize(h.off_[n]);
  h.dist_pool_.assign(h.off_[n], kInfDistance);
  for (Vertex v : bfs) {
    Vertex* anc = h.anc_pool_.data() + h.off_[v];
    if (h.parent_[v] != kNoParent) {
      const Vertex* panc = h.anc_pool_.data() + h.off_[h.parent_[v]];
      std::copy(panc, panc + h.depth_[v], anc);
    }
    anc[h.depth_[v]] = v;
  }

  // Position arrays: depths of X(v) members (including v), sorted.
  h.pos_off_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    h.pos_off_[v + 1] =
        h.pos_off_[v] +
        static_cast<uint32_t>(h.ch_.UpEdges(v).size()) + 1;
  }
  h.pos_pool_.resize(h.pos_off_[n]);
  for (Vertex v = 0; v < n; ++v) {
    uint32_t* pos = h.pos_pool_.data() + h.pos_off_[v];
    uint32_t k = 0;
    for (uint32_t cid : h.ch_.UpEdges(v)) {
      pos[k++] = h.depth_[h.ch_.GetChEdge(cid).hi];
    }
    pos[k++] = h.depth_[v];
    std::sort(pos, pos + k);
  }

  // Distance arrays, top-down DP (Section 3.1 construction).
  for (Vertex v : bfs) {
    Weight* dist = h.dist_pool_.data() + h.off_[v];
    for (uint32_t j = 0; j < h.depth_[v]; ++j) {
      dist[j] = h.RecomputeCell(v, j);
    }
    dist[h.depth_[v]] = 0;
  }

  // Euler tour + sparse table for O(1) LCA.
  h.euler_first_.assign(n, UINT32_MAX);
  h.euler_vertex_.reserve(2 * n);
  h.euler_depth_.reserve(2 * n);
  {
    // Iterative DFS emitting a vertex on entry and after each child.
    std::vector<std::pair<Vertex, uint32_t>> stack;  // (vertex, child idx)
    stack.emplace_back(h.root_, 0);
    auto emit = [&h](Vertex v) {
      if (h.euler_first_[v] == UINT32_MAX) {
        h.euler_first_[v] = static_cast<uint32_t>(h.euler_vertex_.size());
      }
      h.euler_vertex_.push_back(v);
      h.euler_depth_.push_back(h.depth_[v]);
    };
    emit(h.root_);
    while (!stack.empty()) {
      auto& [v, ci] = stack.back();
      uint32_t child_begin = h.child_off_[v];
      if (child_begin + ci < h.child_off_[v + 1]) {
        Vertex u = h.child_pool_[child_begin + ci];
        ++ci;
        emit(u);
        stack.emplace_back(u, 0);
      } else {
        stack.pop_back();
        if (!stack.empty()) emit(stack.back().first);
      }
    }
  }
  {
    const uint32_t m = static_cast<uint32_t>(h.euler_vertex_.size());
    uint32_t logm = 1;
    while ((1u << logm) <= m) ++logm;
    h.sparse_.assign(logm, std::vector<uint32_t>(m));
    for (uint32_t i = 0; i < m; ++i) h.sparse_[0][i] = i;
    for (uint32_t k = 1; k < logm; ++k) {
      uint32_t half = 1u << (k - 1);
      if (m < (1u << k)) break;
      for (uint32_t i = 0; i + (1u << k) <= m; ++i) {
        uint32_t a = h.sparse_[k - 1][i];
        uint32_t b = h.sparse_[k - 1][i + half];
        h.sparse_[k][i] = h.euler_depth_[a] <= h.euler_depth_[b] ? a : b;
      }
    }
  }

  h.anchor_stamp_.assign(n, 0);
  h.below_stamp_.assign(n, 0);
  h.dirty_count_.assign(h.tree_height_, 0);
  h.build_seconds_ = timer.ElapsedSeconds();
  return h;
}

Weight H2hIndex::RecomputeCell(Vertex v, uint32_t j) const {
  if (j == depth_[v]) return 0;
  const Vertex a = anc_pool_[off_[v] + j];
  Weight best = kInfDistance;
  for (uint32_t cid : ch_.UpEdges(v)) {
    const ChIndex::ChEdge& e = ch_.GetChEdge(cid);
    const Vertex u = e.hi;
    Weight du;
    if (u == a) {
      du = 0;
    } else if (depth_[u] > j) {
      du = dist_pool_[off_[u] + j];  // u is deeper than the ancestor
    } else {
      du = dist_pool_[off_[a] + depth_[u]];  // the ancestor is deeper
    }
    best = std::min(best, SaturatingAdd(e.weight, du));
  }
  return best;
}

uint32_t H2hIndex::Lca(Vertex s, Vertex t) const {
  uint32_t i = euler_first_[s], j = euler_first_[t];
  if (i > j) std::swap(i, j);
  uint32_t len = j - i + 1;
  uint32_t k = 31 - static_cast<uint32_t>(std::countl_zero(len));
  uint32_t a = sparse_[k][i];
  uint32_t b = sparse_[k][j + 1 - (1u << k)];
  return euler_vertex_[euler_depth_[a] <= euler_depth_[b] ? a : b];
}

Weight H2hIndex::Query(Vertex s, Vertex t) const {
  if (s == t) return 0;
  const Vertex lca = Lca(s, t);
  const Weight* ds = dist_pool_.data() + off_[s];
  const Weight* dt = dist_pool_.data() + off_[t];
  const Weight best = MinPlusGatherReduce(
      ds, dt, pos_pool_.data() + pos_off_[lca],
      pos_off_[lca + 1] - pos_off_[lca]);
  return best >= kInfDistance ? kInfDistance : best;
}

void H2hIndex::ApplyUpdate(const WeightUpdate& update, Maintenance mode) {
  const bool increase = update.new_weight > g_->EdgeWeight(update.edge);
  const auto& changed = ch_.ApplyUpdate(update);
  LabelPhase(changed, mode, increase);
}

void H2hIndex::LabelPhase(
    const std::vector<ChIndex::ChangedEdge>& changed_edges, Maintenance mode,
    bool increase) {
  if (changed_edges.empty()) return;
  ++epoch_;
  // Anchors: low endpoints of changed CH edges. A weight update changes
  // all derived CH weights in one direction, so per anchor we know
  // exactly which columns can move: the inherited dirty columns, plus —
  // for a decrease — columns improvable through a changed incident edge,
  // or — for an increase — columns whose old value was supported by a
  // changed incident edge. Changes then flow down the tree.
  std::vector<Vertex> anchors;
  std::unordered_map<Vertex, std::vector<ChIndex::ChangedEdge>> anchor_edges;
  for (const auto& ce : changed_edges) {
    Vertex v = ch_.GetChEdge(ce.id).lo;
    if (anchor_stamp_[v] != epoch_) {
      anchor_stamp_[v] = epoch_;
      anchors.push_back(v);
    }
    anchor_edges[v].push_back(ce);
  }
  // Mark "anchor in subtree" on every ancestor of an anchor.
  for (Vertex a : anchors) {
    Vertex v = a;
    while (v != kNoParent && below_stamp_[v] != epoch_) {
      below_stamp_[v] = epoch_;
      v = parent_[v];
    }
  }
  std::sort(anchors.begin(), anchors.end(), [this](Vertex a, Vertex b) {
    return depth_[a] < depth_[b];
  });

  // Top-down repair from each topmost anchor. dirty_count_ tracks, per
  // ancestor column, how many path ancestors contributed a change; the
  // recursion carries the set via enter/exit deltas.
  active_cols_.clear();
  std::vector<uint8_t> visited(g_->NumVertices(), 0);

  struct Frame {
    Vertex v;
    uint32_t child_idx;
    std::vector<uint32_t> added_cols;  // dirty columns this frame added
  };
  std::vector<Frame> stack;

  auto add_col = [this](uint32_t c, std::vector<uint32_t>* added) {
    if (dirty_count_[c]++ == 0) active_cols_.push_back(c);
    added->push_back(c);
  };
  auto remove_cols = [this](const std::vector<uint32_t>& added) {
    for (uint32_t c : added) {
      if (--dirty_count_[c] == 0) {
        active_cols_.erase(
            std::find(active_cols_.begin(), active_cols_.end(), c));
      }
    }
  };

  auto process_vertex = [&](Vertex v, std::vector<uint32_t>* added) {
    const bool is_anchor = anchor_stamp_[v] == epoch_;
    Weight* dist = dist_pool_.data() + off_[v];
    const Vertex* anc = anc_pool_.data() + off_[v];
    std::vector<uint32_t> changed_cols;
    auto check_col = [&](uint32_t j) {
      Weight nw = RecomputeCell(v, j);
      ++stats_.queue_pops;
      if (nw != dist[j]) {
        dist[j] = nw;
        ++stats_.label_writes;
        changed_cols.push_back(j);
      }
    };
    // Current distance between a changed incident edge's high endpoint u
    // and v's ancestor at depth j (the DP flip lookup).
    auto dist_via = [&](Vertex u, uint32_t j) -> Weight {
      const Vertex a = anc[j];
      if (u == a) return 0;
      return depth_[u] > j ? dist_pool_[off_[u] + j]
                           : dist_pool_[off_[a] + depth_[u]];
    };
    if (mode == Maintenance::kDTDHL) {
      // Vertex-level: any dirt above (or being an anchor) recomputes the
      // whole array.
      if (is_anchor || !active_cols_.empty()) {
        for (uint32_t j = 0; j < depth_[v]; ++j) check_col(j);
      }
    } else {
      // Column-level (IncH2H style). Inherited dirty columns get the full
      // DP; the anchor's other columns get the O(#changed edges) test.
      for (uint32_t c : active_cols_) {
        if (c < depth_[v]) check_col(c);
      }
      if (is_anchor) {
        const auto& incident = anchor_edges[v];
        for (uint32_t j = 0; j < depth_[v]; ++j) {
          if (j < dirty_count_.size() && dirty_count_[j] > 0) {
            continue;  // already handled as an inherited column
          }
          if (!increase) {
            Weight cand = kInfDistance;
            for (const auto& ce : incident) {
              const ChIndex::ChEdge& e = ch_.GetChEdge(ce.id);
              cand = std::min(cand,
                              SaturatingAdd(e.weight, dist_via(e.hi, j)));
            }
            ++stats_.queue_pops;
            if (cand < dist[j]) {
              dist[j] = cand;
              ++stats_.label_writes;
              changed_cols.push_back(j);
            }
          } else {
            // Old value supported by a changed edge? Ancestor labels at
            // non-dirty columns are unchanged, so the test is exact.
            bool supported = false;
            for (const auto& ce : incident) {
              const ChIndex::ChEdge& e = ch_.GetChEdge(ce.id);
              if (SaturatingAdd(ce.old_weight, dist_via(e.hi, j)) ==
                  dist[j]) {
                supported = true;
                break;
              }
            }
            ++stats_.queue_pops;
            if (supported) check_col(j);
          }
        }
      }
    }
    if (!changed_cols.empty()) {
      ++stats_.affected_pairs;
      for (uint32_t c : changed_cols) add_col(c, added);
      // A changed cell (v, j) is also read as "distance to ancestor v"
      // by descendants, at their column depth(v).
      add_col(depth_[v], added);
    }
    return !changed_cols.empty();
  };

  for (Vertex top : anchors) {
    if (visited[top]) continue;
    stack.push_back(Frame{top, 0, {}});
    visited[top] = 1;
    process_vertex(top, &stack.back().added_cols);
    while (!stack.empty()) {
      Frame& f = stack.back();
      const uint32_t child_begin = child_off_[f.v];
      const uint32_t child_end = child_off_[f.v + 1];
      bool descended = false;
      while (child_begin + f.child_idx < child_end) {
        Vertex c = child_pool_[child_begin + f.child_idx];
        ++f.child_idx;
        const bool anchor_below = below_stamp_[c] == epoch_;
        if (active_cols_.empty() && !anchor_below) continue;
        visited[c] = 1;
        stack.push_back(Frame{c, 0, {}});
        process_vertex(c, &stack.back().added_cols);
        descended = true;
        break;
      }
      if (!descended) {
        remove_cols(f.added_cols);
        stack.pop_back();
      }
    }
  }
}

bool H2hIndex::ValidateLabels() {
  bool ok = true;
  // Top-down order: parents validated (and correct) before children.
  std::vector<Vertex> bfs;
  bfs.push_back(root_);
  for (size_t i = 0; i < bfs.size(); ++i) {
    Vertex v = bfs[i];
    for (uint32_t j = 0; j < depth_[v]; ++j) {
      if (RecomputeCell(v, j) != dist_pool_[off_[v] + j]) ok = false;
    }
    for (uint32_t c = child_off_[v]; c < child_off_[v + 1]; ++c) {
      bfs.push_back(child_pool_[c]);
    }
  }
  return ok;
}

H2hIndex H2hIndex::PublishCopy() const {
  H2hIndex copy;
  // Query state only: LCA tables + labels + position arrays. The tree
  // links, ancestor arrays, the embedded CH index and all maintenance
  // scratch exist to repair labels, which a published epoch never does.
  copy.depth_ = depth_;  // small; keeps the Depth()/TreeHeight() surface
  copy.root_ = root_;
  copy.tree_height_ = tree_height_;
  copy.off_ = off_;
  copy.dist_pool_ = dist_pool_;
  copy.pos_off_ = pos_off_;
  copy.pos_pool_ = pos_pool_;
  copy.euler_first_ = euler_first_;
  copy.euler_vertex_ = euler_vertex_;
  copy.euler_depth_ = euler_depth_;
  copy.sparse_ = sparse_;
  copy.build_seconds_ = build_seconds_;
  return copy;
}

uint64_t H2hIndex::MemoryBytes(Maintenance mode) const {
  uint64_t labels = off_.capacity() * sizeof(uint64_t) +
                    anc_pool_.capacity() * sizeof(Vertex) +
                    dist_pool_.capacity() * sizeof(Weight) +
                    pos_off_.capacity() * sizeof(uint32_t) +
                    pos_pool_.capacity() * sizeof(uint32_t);
  uint64_t tree = parent_.capacity() * sizeof(uint32_t) +
                  depth_.capacity() * sizeof(uint32_t) +
                  child_off_.capacity() * sizeof(uint32_t) +
                  child_pool_.capacity() * sizeof(Vertex);
  uint64_t lca = euler_first_.capacity() * sizeof(uint32_t) +
                 euler_vertex_.capacity() * sizeof(uint32_t) +
                 euler_depth_.capacity() * sizeof(uint32_t);
  for (const auto& row : sparse_) lca += row.capacity() * sizeof(uint32_t);
  if (mode == Maintenance::kDTDHL) {
    // DTDHL tracks far less auxiliary data: labels + tree + the CH edge
    // weights it maintains (no support machinery accounted).
    return labels + tree + lca +
           ch_.NumChEdges() * static_cast<uint64_t>(sizeof(ChIndex::ChEdge));
  }
  return labels + tree + lca + ch_.MemoryBytes();
}

}  // namespace stl
