#include "index/overlay.h"

#include <algorithm>

#include "util/logging.h"
#include "util/min_heap.h"
#include "util/simd.h"

namespace stl {

uint64_t ShardLayout::MemoryBytes() const {
  uint64_t bytes = shard_of_vertex.capacity() * sizeof(uint32_t) +
                   local_of_vertex.capacity() * sizeof(Vertex) +
                   shard_of_edge.capacity() * sizeof(uint32_t) +
                   local_of_edge.capacity() * sizeof(uint32_t) +
                   boundary_pos_of_vertex.capacity() * sizeof(uint32_t) +
                   direct_edges.capacity() * sizeof(DirectEdge);
  for (const Shard& s : shards) {
    bytes += s.to_global.capacity() * sizeof(Vertex) +
             s.edge_to_global.capacity() * sizeof(EdgeId) +
             s.boundary_local.capacity() * sizeof(Vertex) +
             s.boundary_pos.capacity() * sizeof(uint32_t);
  }
  for (const auto& m : memberships) {
    bytes += m.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
  }
  return bytes;
}

ShardPlan BuildShardPlan(const Graph& g, const CellPartition& cells) {
  STL_CHECK_EQ(cells.cell_of.size(), g.NumVertices());
  ShardPlan plan;
  ShardLayout& layout = plan.layout;
  layout.partition = cells;
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  const uint32_t k = cells.num_cells;

  layout.shard_of_vertex = cells.cell_of;
  layout.local_of_vertex.assign(n, UINT32_MAX);
  layout.boundary_pos_of_vertex.assign(n, UINT32_MAX);
  for (uint32_t p = 0; p < cells.boundary.size(); ++p) {
    layout.boundary_pos_of_vertex[cells.boundary[p]] = p;
  }

  layout.shards.resize(k);
  std::vector<std::vector<Edge>> shard_edges(k);
  for (uint32_t c = 0; c < k; ++c) {
    ShardLayout::Shard& shard = layout.shards[c];
    shard.num_cell_vertices = static_cast<uint32_t>(cells.cells[c].size());
    shard.to_global = cells.cells[c];
    shard.to_global.insert(shard.to_global.end(),
                           cells.cell_boundary[c].begin(),
                           cells.cell_boundary[c].end());
    for (uint32_t local = 0; local < shard.to_global.size(); ++local) {
      const Vertex v = shard.to_global[local];
      if (cells.cell_of[v] != CellPartition::kBoundaryCell) {
        layout.local_of_vertex[v] = local;
      }
    }
    shard.boundary_local.reserve(cells.cell_boundary[c].size());
    shard.boundary_pos.reserve(cells.cell_boundary[c].size());
    for (uint32_t i = 0; i < cells.cell_boundary[c].size(); ++i) {
      shard.boundary_local.push_back(shard.num_cell_vertices + i);
      shard.boundary_pos.push_back(
          layout.boundary_pos_of_vertex[cells.cell_boundary[c][i]]);
    }
  }

  // Boundary vertices appear in several shards; resolve their per-shard
  // local id through a scratch map rebuilt per shard below. (Cell
  // vertices use layout.local_of_vertex directly.)
  std::vector<Vertex> local_in_shard(n, UINT32_MAX);

  layout.shard_of_edge.assign(m, ShardLayout::kOverlayShard);
  layout.local_of_edge.assign(m, UINT32_MAX);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = g.GetEdge(e);
    const uint32_t cu = cells.cell_of[edge.u];
    const uint32_t cv = cells.cell_of[edge.v];
    if (cu == CellPartition::kBoundaryCell &&
        cv == CellPartition::kBoundaryCell) {
      // Overlay-owned: both endpoints on the boundary.
      layout.local_of_edge[e] =
          static_cast<uint32_t>(layout.direct_edges.size());
      layout.direct_edges.push_back(ShardLayout::DirectEdge{
          layout.boundary_pos_of_vertex[edge.u],
          layout.boundary_pos_of_vertex[edge.v], e});
      continue;
    }
    STL_CHECK(cu == cv || cu == CellPartition::kBoundaryCell ||
              cv == CellPartition::kBoundaryCell)
        << "cell partition is not a separator: edge " << edge.u << "-"
        << edge.v;
    const uint32_t owner = cu != CellPartition::kBoundaryCell ? cu : cv;
    layout.shard_of_edge[e] = owner;
    layout.local_of_edge[e] =
        static_cast<uint32_t>(shard_edges[owner].size());
    shard_edges[owner].push_back(edge);  // endpoints remapped below
    layout.shards[owner].edge_to_global.push_back(e);
  }

  // Build each shard's subgraph with locally renumbered endpoints.
  plan.shard_graphs.reserve(k);
  for (uint32_t c = 0; c < k; ++c) {
    ShardLayout::Shard& shard = layout.shards[c];
    for (uint32_t local = 0; local < shard.to_global.size(); ++local) {
      local_in_shard[shard.to_global[local]] = local;
    }
    std::vector<Edge> local_edges;
    local_edges.reserve(shard_edges[c].size());
    for (const Edge& edge : shard_edges[c]) {
      local_edges.push_back(Edge{local_in_shard[edge.u],
                                 local_in_shard[edge.v], edge.w});
    }
    Result<Graph> sub = Graph::FromEdges(
        static_cast<uint32_t>(shard.to_global.size()),
        std::move(local_edges));
    STL_CHECK(sub.ok()) << "shard " << c
                        << " subgraph: " << sub.status().ToString();
    plan.shard_graphs.push_back(std::move(sub).value());
    for (Vertex v : shard.to_global) local_in_shard[v] = UINT32_MAX;
  }
  // FromEdges keeps the edge order it was given, so local edge ids
  // assigned above line up with edge_to_global.
  for (uint32_t c = 0; c < k; ++c) {
    STL_CHECK_EQ(layout.shards[c].edge_to_global.size(),
                 plan.shard_graphs[c].NumEdges());
  }

  layout.memberships.assign(cells.boundary.size(), {});
  for (uint32_t c = 0; c < k; ++c) {
    const ShardLayout::Shard& shard = layout.shards[c];
    for (uint32_t i = 0; i < shard.boundary_pos.size(); ++i) {
      layout.memberships[shard.boundary_pos[i]].emplace_back(c, i);
    }
  }
  return plan;
}

// -------------------------------------------------------- OverlayTable

uint64_t OverlayTable::MemoryBytes() const {
  uint64_t bytes = d_.capacity() * sizeof(Weight);
  for (const PackedBlock& blk : packed_) {
    bytes += blk.values.capacity() * sizeof(Weight);
  }
  return bytes;
}

void OverlayTable::MinPlusRowsInto(uint32_t s, const uint32_t* rows,
                                   uint32_t nrows, const Weight* b,
                                   Weight* out) const {
  STL_DCHECK(s < packed_.size());
  const PackedBlock& blk = packed_[s];
  const uint32_t width = blk.width;
  for (uint32_t i = 0; i < nrows; ++i) {
    STL_DCHECK(rows[i] < n_);
    const Weight* row =
        blk.values.data() + static_cast<size_t>(rows[i]) * width;
    out[i] = MinPlusReduce(row, b, width);
  }
}

// ----------------------------------------------------- BoundaryOverlay

BoundaryOverlay::BoundaryOverlay(const ShardLayout* layout, const Graph& g)
    : layout_(layout) {
  STL_CHECK(layout != nullptr);
  direct_weight_.reserve(layout->direct_edges.size());
  for (const ShardLayout::DirectEdge& de : layout->direct_edges) {
    direct_weight_.push_back(g.EdgeWeight(de.global_edge));
  }
  clique_.resize(layout->num_shards());
}

void BoundaryOverlay::SetDirectWeight(uint32_t direct_slot, Weight w) {
  STL_CHECK_LT(direct_slot, direct_weight_.size());
  direct_weight_[direct_slot] = w;
}

void BoundaryOverlay::RebuildClique(uint32_t s, const IndexView& view) {
  STL_CHECK_LT(s, clique_.size());
  const ShardLayout::Shard& shard = layout_->shards[s];
  const uint32_t w = static_cast<uint32_t>(shard.boundary_local.size());
  clique_[s].assign(static_cast<size_t>(w) * w, 0);
  for (uint32_t i = 0; i < w; ++i) {
    for (uint32_t j = i + 1; j < w; ++j) {
      const Weight d =
          view.Query(shard.boundary_local[i], shard.boundary_local[j]);
      clique_[s][static_cast<size_t>(i) * w + j] = d;
      clique_[s][static_cast<size_t>(j) * w + i] = d;
    }
  }
}

std::shared_ptr<const OverlayTable> BoundaryOverlay::Publish() const {
  auto table = std::make_shared<OverlayTable>();
  const uint32_t n = layout_->num_boundary();
  table->n_ = n;
  table->d_.assign(static_cast<size_t>(n) * n, kInfDistance);
  if (n > 0) {
    // Direct adjacency, deduplicated to the minimum parallel weight
    // (the graph has no parallel edges, but positions don't care).
    std::vector<std::vector<std::pair<uint32_t, Weight>>> direct(n);
    for (uint32_t i = 0; i < layout_->direct_edges.size(); ++i) {
      const ShardLayout::DirectEdge& de = layout_->direct_edges[i];
      direct[de.a_pos].emplace_back(de.b_pos, direct_weight_[i]);
      direct[de.b_pos].emplace_back(de.a_pos, direct_weight_[i]);
    }

    // One Dijkstra per boundary vertex over the overlay graph: direct
    // S–S edges plus, for every shard listing the settled vertex in
    // S_i, that shard's clique row.
    std::vector<Weight> dist(n);
    std::vector<uint32_t> stamp(n, 0);
    uint32_t epoch = 0;
    MinHeap<Weight, uint32_t> heap;
    for (uint32_t src = 0; src < n; ++src) {
      ++epoch;
      heap.clear();
      Weight* row = table->d_.data() + static_cast<size_t>(src) * n;
      auto relax = [&](uint32_t v, Weight d) {
        if (stamp[v] != epoch || d < dist[v]) {
          stamp[v] = epoch;
          dist[v] = d;
          heap.Push(d, v);
        }
      };
      relax(src, 0);
      while (!heap.empty()) {
        const auto top = heap.Pop();
        const uint32_t u = top.payload;
        if (top.key != dist[u] || stamp[u] != epoch) continue;
        row[u] = top.key;
        for (const auto& [v, w] : direct[u]) {
          if (stamp[v] == epoch && dist[v] <= top.key + w) continue;
          relax(v, top.key + w);
        }
        for (const auto& [s, idx] : layout_->memberships[u]) {
          const ShardLayout::Shard& shard = layout_->shards[s];
          const uint32_t width =
              static_cast<uint32_t>(shard.boundary_pos.size());
          STL_DCHECK(clique_[s].size() ==
                     static_cast<size_t>(width) * width);
          const Weight* crow =
              clique_[s].data() + static_cast<size_t>(idx) * width;
          for (uint32_t j = 0; j < width; ++j) {
            if (crow[j] >= kInfDistance) continue;
            const Weight cand = top.key + crow[j];
            const uint32_t v = shard.boundary_pos[j];
            if (stamp[v] == epoch && dist[v] <= cand) continue;
            relax(v, cand);
          }
        }
      }
    }
  }

  // Packed per-shard column blocks for the router's contiguous min-plus.
  table->packed_.resize(layout_->num_shards());
  for (uint32_t s = 0; s < layout_->num_shards(); ++s) {
    const ShardLayout::Shard& shard = layout_->shards[s];
    OverlayTable::PackedBlock& blk = table->packed_[s];
    blk.width = static_cast<uint32_t>(shard.boundary_pos.size());
    blk.values.resize(static_cast<size_t>(n) * blk.width);
    for (uint32_t a = 0; a < n; ++a) {
      const Weight* row = table->d_.data() + static_cast<size_t>(a) * n;
      Weight* out = blk.values.data() + static_cast<size_t>(a) * blk.width;
      for (uint32_t j = 0; j < blk.width; ++j) {
        out[j] = row[shard.boundary_pos[j]];
      }
    }
  }
  return table;
}

uint64_t BoundaryOverlay::MemoryBytes() const {
  uint64_t bytes = direct_weight_.capacity() * sizeof(Weight);
  for (const auto& c : clique_) bytes += c.capacity() * sizeof(Weight);
  return bytes;
}

}  // namespace stl
