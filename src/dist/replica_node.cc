#include "dist/replica_node.h"

#include <utility>

namespace stl {

ReplicaNode::ReplicaNode(Graph graph,
                         const HierarchyOptions& hierarchy_options,
                         const ShardedEngineOptions& engine_options,
                         const ShardReplicaOptions& replica_options)
    : engine_(std::move(graph), hierarchy_options, engine_options),
      replica_(replica_options) {
  // Epoch 0 is servable immediately; the router's seq-0 install only
  // verifies it.
  replica_.Install(engine_.CurrentSnapshot());
}

std::vector<uint8_t> ReplicaNode::Handle(const uint8_t* data, size_t size) {
  WireKind kind = WireKind::kBoundaryRow;
  if (PeekWireKind(data, size, &kind).ok() && kind == WireKind::kInstall) {
    return HandleInstall(data, size);
  }
  // Query kinds — and malformed bytes, which ShardReplica::Handle
  // already answers with a typed kUnavailable response.
  return replica_.Handle(data, size);
}

std::vector<uint8_t> ReplicaNode::HandleInstall(const uint8_t* data,
                                                size_t size) {
  InstallAck ack;
  InstallRequest req;
  std::lock_guard<std::mutex> lock(install_mu_);
  ack.next_seq = next_seq_;
  ack.engine_epoch = engine_.CurrentSnapshot()->epoch;
  if (!InstallRequest::Decode(data, size, &req).ok() || diverged_) {
    install_nacks_.fetch_add(1, std::memory_order_relaxed);
    return ack.Encode();
  }
  if (req.seq < next_seq_) {
    // Already applied (router retry after a lost ack): idempotent ok.
    ack.ok = true;
    return ack.Encode();
  }
  if (req.seq > next_seq_) {
    // Gap: the router must replay from next_seq_.
    install_nacks_.fetch_add(1, std::memory_order_relaxed);
    return ack.Encode();
  }

  if (!req.updates.empty()) {
    engine_.EnqueueUpdates(req.updates);
    engine_.Flush();
  }
  auto snap = engine_.CurrentSnapshot();
  bool matches = snap->epoch == req.expected_engine_epoch &&
                 req.expected_shard_epochs.size() == snap->shards.size();
  if (matches) {
    for (size_t i = 0; i < snap->shards.size(); ++i) {
      if (snap->shards[i]->shard_epoch != req.expected_shard_epochs[i]) {
        matches = false;
        break;
      }
    }
  }
  ack.engine_epoch = snap->epoch;
  if (!matches) {
    // The state machines diverged — by construction this cannot happen
    // with identical (graph, options, update stream); if it does, stop
    // applying and keep serving the epochs already held (never wrong
    // bytes, only typed staleness).
    diverged_ = true;
    install_nacks_.fetch_add(1, std::memory_order_relaxed);
    return ack.Encode();
  }
  replica_.Install(std::move(snap));
  ++next_seq_;
  ack.ok = true;
  ack.next_seq = next_seq_;
  installs_applied_.fetch_add(1, std::memory_order_relaxed);
  return ack.Encode();
}

}  // namespace stl
