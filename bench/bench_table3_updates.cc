// Reproduces Table 3: mean per-update maintenance time [ms] for the
// weight-decrease and weight-increase cases, for STL-P (Pareto Search),
// STL-L (Label Search), IncH2H, and DTDHL.
//
// Procedure (Section 7 test input generation): per batch, every sampled
// edge's weight is doubled (increase pass) and then restored (decrease
// pass); we report mean milliseconds per update over all batches. All
// four algorithms process identical batches.
//
// Expected shape (paper): STL-P fastest on both directions (gap grows
// with network size); STL-L comparable to IncH2H on decrease, slower on
// increase; DTDHL one or more orders of magnitude slower.
#include "baselines/h2h.h"
#include "bench/bench_common.h"
#include "core/stl_index.h"
#include "util/table.h"
#include "workload/update_workload.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Table 3 — update times (ms per update)", cfg);
  std::printf("batches=%zu x %zu updates, increase x2 then restore\n\n",
              cfg.num_batches, cfg.batch_size);
  TablePrinter dec_table(
      {"Network", "STL-P-", "STL-L-", "IncH2H-", "DTDHL-"});
  TablePrinter inc_table(
      {"Network", "STL-P+", "STL-L+", "IncH2H+", "DTDHL+"});
  for (const auto& spec : cfg.datasets) {
    Graph g_stl = LoadDataset(spec);
    Graph g_h2h = g_stl;
    StlIndex stl_idx = StlIndex::Build(&g_stl, HierarchyOptions{});
    H2hIndex h2h = H2hIndex::Build(&g_h2h);

    double ms[2][4] = {{0, 0, 0, 0}, {0, 0, 0, 0}};  // [dec/inc][algo]
    size_t updates_total = 0;
    for (size_t b = 0; b < cfg.num_batches; ++b) {
      auto edges =
          SampleDistinctEdges(g_stl, cfg.batch_size, spec.seed * 31 + b);
      UpdateBatch inc = MakeIncreaseBatch(g_stl, edges, 2.0);
      UpdateBatch dec = MakeRestoreBatch(inc);
      updates_total += inc.size();

      // Each algorithm sees the same increase-then-restore cycle, so the
      // graph state is identical at every timed section.
      auto run_stl = [&](MaintenanceStrategy strat, int algo) {
        Timer t;
        stl_idx.ApplyBatch(inc, strat);
        ms[1][algo] += t.ElapsedMillis();
        t.Restart();
        stl_idx.ApplyBatch(dec, strat);
        ms[0][algo] += t.ElapsedMillis();
      };
      run_stl(MaintenanceStrategy::kParetoSearch, 0);
      run_stl(MaintenanceStrategy::kLabelSearch, 1);
      auto run_h2h = [&](H2hIndex::Maintenance mode, int algo) {
        Timer t;
        for (const WeightUpdate& u : inc) h2h.ApplyUpdate(u, mode);
        ms[1][algo] += t.ElapsedMillis();
        t.Restart();
        for (const WeightUpdate& u : dec) h2h.ApplyUpdate(u, mode);
        ms[0][algo] += t.ElapsedMillis();
      };
      run_h2h(H2hIndex::Maintenance::kIncH2H, 2);
      run_h2h(H2hIndex::Maintenance::kDTDHL, 3);
    }
    auto cell = [&](int dir, int algo) {
      return TablePrinter::Fixed(ms[dir][algo] / updates_total, 3);
    };
    dec_table.AddRow(
        {spec.name, cell(0, 0), cell(0, 1), cell(0, 2), cell(0, 3)});
    inc_table.AddRow(
        {spec.name, cell(1, 0), cell(1, 1), cell(1, 2), cell(1, 3)});
  }
  std::printf("Update Time - Decrease [ms]\n");
  dec_table.Print();
  std::printf("\nUpdate Time - Increase [ms]\n");
  inc_table.Print();
  return 0;
}
