// Minimal binary serialization: little-endian PODs and vectors with a
// magic/version header, explicit Status on every failure path (truncated
// file, bad magic, version skew). Used to persist built indexes.
// WireWriter/WireReader are the in-memory counterparts (append to /
// decode from a byte buffer) used for the distributed tier's RPC
// messages (src/dist/wire.h).
#ifndef STL_UTIL_SERIALIZE_H_
#define STL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace stl {

/// Buffered binary writer. Create, Write*, then Close (checks flush).
class BinaryWriter {
 public:
  BinaryWriter() = default;
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Opens `path` for writing and writes the header (magic + version).
  Status Open(const std::string& path, uint32_t magic, uint32_t version);

  template <typename T>
  Status WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Status s = WritePod<uint64_t>(v.size());
    if (!s.ok()) return s;
    if (!v.empty()) return WriteBytes(v.data(), v.size() * sizeof(T));
    return Status::OK();
  }

  Status WriteString(const std::string& s);
  Status WriteBytes(const void* data, size_t n);

  /// Flushes and closes; the file is valid only if Close returns OK.
  Status Close();

 private:
  std::FILE* file_ = nullptr;
};

/// Buffered binary reader mirroring BinaryWriter.
class BinaryReader {
 public:
  BinaryReader() = default;
  ~BinaryReader();
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Opens `path`, validates magic, and rejects versions > `max_version`.
  Status Open(const std::string& path, uint32_t magic, uint32_t max_version);

  /// Version read from the header (valid after Open succeeds).
  uint32_t version() const { return version_; }

  template <typename T>
  Status ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    Status s = ReadPod(&n);
    if (!s.ok()) return s;
    if (n > (1ULL << 40) / sizeof(T)) {
      return Status::Corruption("vector length implausibly large");
    }
    v->resize(n);
    if (n != 0) return ReadBytes(v->data(), n * sizeof(T));
    return Status::OK();
  }

  Status ReadString(std::string* s);
  Status ReadBytes(void* data, size_t n);

  void Close();

 private:
  std::FILE* file_ = nullptr;
  uint32_t version_ = 0;
};

/// In-memory binary writer: appends little-endian PODs and
/// length-prefixed vectors to a growable byte buffer. Mirrors
/// BinaryWriter but never fails (memory append only), so there are no
/// Status paths to thread through message encoders.
class WireWriter {
 public:
  /// Starts the buffer with a magic/version header, exactly like
  /// BinaryWriter::Open does for files.
  WireWriter(uint32_t magic, uint32_t version);

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(v.size());
    if (!v.empty()) WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Appends `n` raw bytes.
  void WriteBytes(const void* data, size_t n);

  /// The encoded buffer so far (header + payload).
  const std::vector<uint8_t>& buffer() const { return buf_; }

  /// Moves the encoded buffer out (the writer is spent afterwards).
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// In-memory binary reader over a caller-owned byte span. Every read is
/// bounds-checked: a truncated or corrupted buffer surfaces as a typed
/// Status (kCorruption), never as an out-of-bounds access.
class WireReader {
 public:
  /// Binds to `[data, data + size)`; the bytes must outlive the reader.
  WireReader(const uint8_t* data, size_t size);

  /// Validates the magic/version header; rejects wrong magic and
  /// versions > `max_version`. Call first, like BinaryReader::Open.
  Status ReadHeader(uint32_t magic, uint32_t max_version);

  /// Version read from the header (valid after ReadHeader succeeds).
  uint32_t version() const { return version_; }

  template <typename T>
  Status ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    Status s = ReadPod(&n);
    if (!s.ok()) return s;
    // A length that cannot fit in the remaining bytes is corruption,
    // caught before the resize can allocate an implausible amount.
    if (n > remaining() / sizeof(T)) {
      return Status::Corruption("wire: vector length exceeds buffer");
    }
    v->resize(n);
    if (n != 0) return ReadBytes(v->data(), n * sizeof(T));
    return Status::OK();
  }

  /// Copies `n` bytes out; kCorruption if fewer remain.
  Status ReadBytes(void* data, size_t n);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint32_t version_ = 0;
};

}  // namespace stl

#endif  // STL_UTIL_SERIALIZE_H_
