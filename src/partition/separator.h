// Balanced vertex-separator search on induced subgraphs.
//
// The stable tree hierarchy (Definition 4.1) needs, at every level, a small
// set of vertices C whose removal splits the current region into parts of
// at most (1 - beta) of its size. Road networks have ~sqrt(n) balanced
// separators; we find them with the classic engineering recipe:
//   1. order the region by BFS from a peripheral vertex,
//   2. take the first half as side A, the rest as side B,
//   3. cover the A-B cut edges with a greedy minimum vertex cover,
//   4. repeat from several start vertices and keep the smallest cover.
// No shortcut edges are added at any point — that is the property that
// makes the hierarchy "stable" (structurally independent of weights) and
// distinguishes STL from HC2L.
#ifndef STL_PARTITION_SEPARATOR_H_
#define STL_PARTITION_SEPARATOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace stl {

/// Output of one separator computation on a region.
struct SeparatorResult {
  std::vector<Vertex> separator;  // the cut C
  std::vector<Vertex> left;       // one side, C removed
  std::vector<Vertex> right;      // other side, C removed
};

/// Reusable separator finder; buffers are sized to the host graph once.
class SeparatorFinder {
 public:
  SeparatorFinder(const Graph& g, uint64_t seed);

  /// Finds a balanced separator of the subgraph induced by `region`,
  /// which must be connected and contain at least 2 vertices. Tries
  /// `num_starts` BFS roots and returns the smallest separator found.
  SeparatorResult Find(const std::vector<Vertex>& region, int num_starts);

  /// Connected components of the subgraph induced by `region`
  /// (each inner vector is one component).
  std::vector<std::vector<Vertex>> RegionComponents(
      const std::vector<Vertex>& region);

 private:
  /// Marks `region` as the active region (stamp-based membership).
  void MarkRegion(const std::vector<Vertex>& region);
  bool InRegion(Vertex v) const { return region_stamp_[v] == epoch_; }

  /// BFS order of the region from `start` (region must be marked).
  void BfsOrder(Vertex start, const std::vector<Vertex>& region,
                std::vector<Vertex>* order);

  /// One bisection attempt from `start`; returns separator size or
  /// UINT32_MAX on failure. Fills out on success.
  uint32_t TrySplit(Vertex start, const std::vector<Vertex>& region,
                    SeparatorResult* out);

  const Graph& g_;
  Rng rng_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> region_stamp_;
  uint32_t side_epoch_ = 0;
  std::vector<uint32_t> side_stamp_;   // stamped when side is assigned
  std::vector<uint8_t> side_;          // 0 = A, 1 = B (valid when stamped)
  std::vector<uint32_t> visit_stamp_;  // BFS visited marks
  uint32_t visit_epoch_ = 0;
  std::vector<Vertex> queue_;
};

}  // namespace stl

#endif  // STL_PARTITION_SEPARATOR_H_
