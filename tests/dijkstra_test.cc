#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

TEST(DijkstraTest, TinyGraphByHand) {
  Graph g = testing_util::MakeGraph(
      4, {{0, 1, 1}, {1, 2, 2}, {0, 2, 5}, {2, 3, 1}});
  Dijkstra dij(g);
  EXPECT_EQ(dij.Distance(0, 0), 0u);
  EXPECT_EQ(dij.Distance(0, 1), 1u);
  EXPECT_EQ(dij.Distance(0, 2), 3u);
  EXPECT_EQ(dij.Distance(0, 3), 4u);
  EXPECT_EQ(dij.Distance(3, 0), 4u);
}

TEST(DijkstraTest, UnreachableIsInf) {
  Graph g = testing_util::TwoComponentGraph();
  Dijkstra dij(g);
  EXPECT_EQ(dij.Distance(0, 3), kInfDistance);
  EXPECT_EQ(dij.Distance(4, 2), kInfDistance);
  EXPECT_EQ(dij.Distance(3, 4), 7u);
}

TEST(DijkstraTest, AllDistancesMatchesPointQueries) {
  Graph g = testing_util::SmallRoadNetwork(10, 21);
  Dijkstra a(g), b(g);
  const auto& dist = a.AllDistances(5);
  for (Vertex t = 0; t < g.NumVertices(); t += 7) {
    EXPECT_EQ(dist[t], b.Distance(5, t));
  }
}

TEST(DijkstraTest, ReusableAcrossCalls) {
  Graph g = testing_util::SmallRoadNetwork(8, 2);
  Dijkstra dij(g);
  Weight d1 = dij.Distance(0, 10);
  dij.Distance(3, 7);
  EXPECT_EQ(dij.Distance(0, 10), d1);  // epoch reuse must not corrupt
}

TEST(DijkstraTest, RadiusLimitedSearch) {
  Graph g = GeneratePath(10, 5);
  Dijkstra dij(g);
  const auto& dist = dij.DistancesWithin(0, 12);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 5u);
  EXPECT_EQ(dist[2], 10u);
  EXPECT_EQ(dist[3], kInfDistance);  // 15 > 12
  EXPECT_EQ(dist[9], kInfDistance);
}

TEST(DijkstraTest, SettledCounterAdvances) {
  Graph g = testing_util::SmallRoadNetwork(8, 2);
  Dijkstra dij(g);
  dij.Distance(0, g.NumVertices() - 1);
  EXPECT_GT(dij.last_settled(), 0u);
}

class OracleAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleAgreement, DijkstraMatchesFloydWarshall) {
  const uint64_t seed = GetParam();
  Graph g = GenerateRandomConnectedGraph(60, 50, 1, 30, seed);
  auto fw = FloydWarshallAllPairs(g);
  Dijkstra dij(g);
  for (Vertex s = 0; s < g.NumVertices(); s += 9) {
    const auto& dist = dij.AllDistances(s);
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      EXPECT_EQ(dist[t], fw[s][t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(OracleAgreement, BidirectionalMatchesUnidirectional) {
  const uint64_t seed = GetParam();
  Graph g = testing_util::SmallRoadNetwork(12, seed);
  Dijkstra dij(g);
  BidirectionalDijkstra bi(g);
  Rng rng(seed * 31 + 1);
  for (int i = 0; i < 150; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    EXPECT_EQ(bi.Distance(s, t), dij.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(BidirectionalDijkstraTest, UnreachableIsInf) {
  Graph g = testing_util::TwoComponentGraph();
  BidirectionalDijkstra bi(g);
  EXPECT_EQ(bi.Distance(0, 4), kInfDistance);
  EXPECT_EQ(bi.Distance(1, 2), 5u);
}

TEST(FloydWarshallTest, HandGraph) {
  Graph g = testing_util::MakeGraph(3, {{0, 1, 2}, {1, 2, 2}, {0, 2, 10}});
  auto fw = FloydWarshallAllPairs(g);
  EXPECT_EQ(fw[0][2], 4u);
  EXPECT_EQ(fw[2][0], 4u);
  EXPECT_EQ(fw[1][1], 0u);
}

}  // namespace
}  // namespace stl
