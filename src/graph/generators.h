// Synthetic road-network generators.
//
// The paper evaluates on DIMACS USA road networks and the PTV Western
// Europe network, which are not redistributable here. These generators
// produce deterministic stand-ins with the structural properties that
// drive every trend in the paper: planar-like topology, degree <= 6,
// small balanced separators (~sqrt(n)), and a road-class weight hierarchy
// (local streets, arterials, highways) so shortest paths concentrate on a
// sparse backbone, as in real travel-time networks.
#ifndef STL_GRAPH_GENERATORS_H_
#define STL_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace stl {

/// Options for the grid-based road network generator.
struct RoadNetworkOptions {
  /// Grid dimensions before edge deletion; final vertex count is the
  /// largest connected component (usually > 97% of width * height).
  uint32_t width = 64;
  uint32_t height = 64;
  /// Probability that each grid edge is kept (roads have dead ends and
  /// irregular blocks; deletion also desynchronizes separator structure).
  double edge_keep_prob = 0.93;
  /// Fraction of vertices that get one extra chord to a nearby vertex
  /// (overpasses / diagonal streets); keeps the graph from being exactly
  /// bipartite-grid regular.
  double chord_prob = 0.03;
  /// Every arterial_every-th row/column is an arterial (faster), and
  /// every highway_every-th an even faster highway.
  uint32_t arterial_every = 5;
  uint32_t highway_every = 16;
  /// Base travel-time weight range for local streets (uniform).
  Weight local_min_weight = 600;
  Weight local_max_weight = 1800;
  uint64_t seed = 42;
};

/// Generates a road-like network; the result is connected (largest
/// component, renumbered) and deterministic in the options + seed.
Graph GenerateRoadNetwork(const RoadNetworkOptions& options);

/// Uniform random connected graph: a random spanning tree plus
/// `extra_edges` random chords, weights uniform in [min_w, max_w].
/// Not road-like; used by tests to exercise non-planar corner cases.
Graph GenerateRandomConnectedGraph(uint32_t num_vertices,
                                   uint32_t extra_edges, Weight min_w,
                                   Weight max_w, uint64_t seed);

/// A path graph 0-1-...-(n-1) with the given uniform weight; the simplest
/// hierarchy corner case (cuts of size 1 everywhere).
Graph GeneratePath(uint32_t num_vertices, Weight weight);

}  // namespace stl

#endif  // STL_GRAPH_GENERATORS_H_
