#include "engine/serving_core.h"

namespace stl {

// ----------------------------------------------------- CompletionQueue

void CompletionQueue::Deliver(const Completion& done) {
  std::lock_guard<std::mutex> lock(mu_);
  done_.push_back(done);
  // Notify while holding the lock: a poller can then not consume the
  // last completion and destroy this queue before the notify call has
  // finished touching the condition variable (the caller-owned-queue
  // teardown race).
  ready_cv_.notify_one();
}

size_t CompletionQueue::Poll(Completion* out, size_t max_completions) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  while (n < max_completions && !done_.empty()) {
    out[n++] = done_.front();
    done_.pop_front();
  }
  return n;
}

size_t CompletionQueue::WaitPoll(Completion* out, size_t max_completions) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_cv_.wait(lock, [this] { return !done_.empty(); });
  size_t n = 0;
  while (n < max_completions && !done_.empty()) {
    out[n++] = done_.front();
    done_.pop_front();
  }
  return n;
}

size_t CompletionQueue::WaitPoll(Completion* out, size_t max_completions,
                                 std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout.count() > 0) {
    ready_cv_.wait_for(lock, timeout, [this] { return !done_.empty(); });
  }
  size_t n = 0;
  while (n < max_completions && !done_.empty()) {
    out[n++] = done_.front();
    done_.pop_front();
  }
  return n;
}

size_t CompletionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_.size();
}

// --------------------------------------------------------- ResultCache

namespace {

/// splitmix64 finalizer: spreads (s, t) keys across the slot array.
inline uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ResultCache::ResultCache(size_t entries) {
  if (entries == 0) return;
  size_t cap = 1;
  while (cap < entries) cap <<= 1;
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

bool ResultCache::Lookup(Vertex s, Vertex t, uint64_t epoch,
                         Weight* distance) const {
  if (slots_ == nullptr) return false;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t key = (static_cast<uint64_t>(s) << 32) | t;
  const Slot& slot = slots_[MixKey(key) & mask_];
  // Version-validated read: the payload loads are relaxed atomics, and
  // the version re-check (ordered after them by the acquire fence)
  // rejects any slot an insert touched in between — a torn read is a
  // miss, never a wrong hit.
  const uint64_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 & 1) return false;
  const uint64_t k = slot.key.load(std::memory_order_relaxed);
  const uint64_t e = slot.epoch.load(std::memory_order_relaxed);
  const Weight d = slot.distance.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.version.load(std::memory_order_relaxed) != v1) return false;
  if (k != key || e != epoch) return false;
  *distance = d;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(Vertex s, Vertex t, uint64_t epoch,
                         Weight distance) {
  if (slots_ == nullptr) return;
  const uint64_t key = (static_cast<uint64_t>(s) << 32) | t;
  Slot& slot = slots_[MixKey(key) & mask_];
  uint64_t v = slot.version.load(std::memory_order_relaxed);
  if (v & 1) return;  // another insert in flight; drop ours
  if (!slot.version.compare_exchange_strong(v, v + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
    return;  // lost the race; drop
  }
  slot.key.store(key, std::memory_order_relaxed);
  slot.epoch.store(epoch, std::memory_order_relaxed);
  slot.distance.store(distance, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

void ResultCache::ResetCounters() {
  lookups_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------- ServingCounters

void ServingCounters::FillStats(EngineStats* s) const {
  s->queries_served = queries_served.load(std::memory_order_relaxed);
  s->updates_applied = updates_applied.load(std::memory_order_relaxed);
  s->updates_coalesced =
      updates_coalesced.load(std::memory_order_relaxed);
  s->epochs_published = epochs_published.load(std::memory_order_relaxed);
  s->batches_pareto =
      batch_counters.pareto.load(std::memory_order_relaxed);
  s->batches_label = batch_counters.label.load(std::memory_order_relaxed);
  s->batches_incremental =
      batch_counters.incremental.load(std::memory_order_relaxed);
  s->batches_rebuild =
      batch_counters.rebuild.load(std::memory_order_relaxed);
  s->query_batches_submitted =
      query_batches_submitted.load(std::memory_order_relaxed);
  s->batched_queries = batched_queries.load(std::memory_order_relaxed);
  s->label_pages_cloned =
      label_pages_cloned.load(std::memory_order_relaxed);
  s->graph_chunks_cloned =
      graph_chunks_cloned.load(std::memory_order_relaxed);
  s->cow_bytes_cloned = cow_bytes_cloned.load(std::memory_order_relaxed);
  s->publish_bytes_deep_copied =
      publish_bytes_deep_copied.load(std::memory_order_relaxed);
  s->publish_total_micros =
      static_cast<double>(publish_nanos.load(std::memory_order_relaxed)) /
      1e3;
  s->queries_shed = queries_shed.load(std::memory_order_relaxed);
  s->batches_shed = batches_shed.load(std::memory_order_relaxed);
  s->queries_deadline_exceeded =
      queries_deadline_exceeded.load(std::memory_order_relaxed);
  s->queries_unavailable =
      queries_unavailable.load(std::memory_order_relaxed);
  s->apply_failures = apply_failures.load(std::memory_order_relaxed);
  s->completions_retried =
      completions_retried.load(std::memory_order_relaxed);
  s->degraded_entries = degraded_entries.load(std::memory_order_relaxed);
  s->wall_seconds = wall.ElapsedSeconds();
  s->queries_per_second =
      s->wall_seconds > 0
          ? static_cast<double>(s->queries_served) / s->wall_seconds
          : 0;
  s->latency_mean_micros = latency.MeanMicros();
  s->latency_p50_micros = latency.QuantileMicros(0.5);
  s->latency_p99_micros = latency.QuantileMicros(0.99);
  s->latency_max_micros = latency.MaxMicros();
}

void ServingCounters::Reset() {
  queries_served.store(0, std::memory_order_relaxed);
  updates_applied.store(0, std::memory_order_relaxed);
  updates_coalesced.store(0, std::memory_order_relaxed);
  // epochs_published is deliberately not reset: it doubles as the epoch
  // id allocator, and snapshot epochs must stay unique for the lifetime
  // of the engine.
  batch_counters.Reset();
  query_batches_submitted.store(0, std::memory_order_relaxed);
  batched_queries.store(0, std::memory_order_relaxed);
  label_pages_cloned.store(0, std::memory_order_relaxed);
  graph_chunks_cloned.store(0, std::memory_order_relaxed);
  cow_bytes_cloned.store(0, std::memory_order_relaxed);
  publish_bytes_deep_copied.store(0, std::memory_order_relaxed);
  publish_nanos.store(0, std::memory_order_relaxed);
  queries_shed.store(0, std::memory_order_relaxed);
  batches_shed.store(0, std::memory_order_relaxed);
  queries_deadline_exceeded.store(0, std::memory_order_relaxed);
  queries_unavailable.store(0, std::memory_order_relaxed);
  apply_failures.store(0, std::memory_order_relaxed);
  completions_retried.store(0, std::memory_order_relaxed);
  degraded_entries.store(0, std::memory_order_relaxed);
  latency.Reset();
  wall.Restart();
}

}  // namespace stl
