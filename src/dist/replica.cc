#include "dist/replica.h"

#include <utility>

#include "dist/wire.h"
#include "partition/cells.h"

namespace stl {

namespace {

/// Encodes the one failure shape the replica ever sends: the request's
/// pinned (shard, shard_epoch) echoed back with code kUnavailable.
std::vector<uint8_t> Unavailable(uint32_t shard, uint64_t shard_epoch) {
  ShardResponse resp;
  resp.code = StatusCode::kUnavailable;
  resp.shard = shard;
  resp.shard_epoch = shard_epoch;
  return resp.Encode();
}

}  // namespace

ShardReplica::ShardReplica(const ShardReplicaOptions& options)
    : options_(options) {}

void ShardReplica::Install(std::shared_ptr<const ShardedSnapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_) return;
  ring_.push_back(std::move(snap));
  while (ring_.size() > std::max<size_t>(options_.epoch_ring, 1)) {
    ring_.pop_front();
  }
  installs_.fetch_add(1, std::memory_order_relaxed);
}

void ShardReplica::SetFrozen(bool frozen) {
  std::lock_guard<std::mutex> lock(mu_);
  frozen_ = frozen;
}

std::shared_ptr<const ShardedSnapshot> ShardReplica::FindEpoch(
    uint32_t shard, uint64_t shard_epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    const std::shared_ptr<const ShardedSnapshot>& snap = *it;
    if (shard < snap->shards.size() &&
        snap->shards[shard]->shard_epoch == shard_epoch) {
      return snap;
    }
  }
  return nullptr;
}

std::vector<uint8_t> ShardReplica::Handle(const uint8_t* data,
                                          size_t size) {
  ShardRequest req;
  if (!ShardRequest::Decode(data, size, &req).ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Unavailable(0, 0);
  }
  // Pin the exact requested version; the computation below runs on
  // immutable state outside the ring lock.
  std::shared_ptr<const ShardedSnapshot> snap =
      FindEpoch(req.shard, req.shard_epoch);
  if (snap == nullptr) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Unavailable(req.shard, req.shard_epoch);
  }
  const ShardLayout& lay = *snap->layout;
  const IndexView& view = *snap->shards[req.shard]->view;

  ShardResponse resp;
  resp.shard = req.shard;
  resp.shard_epoch = req.shard_epoch;
  switch (req.kind) {
    case WireKind::kBoundaryRow: {
      // The request's vertex must be owned by the pinned shard — the
      // row is defined on that shard's local renumbering.
      if (req.u >= lay.shard_of_vertex.size() ||
          lay.shard_of_vertex[req.u] != req.shard) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Unavailable(req.shard, req.shard_epoch);
      }
      FillShardBoundaryRow(lay, req.shard, view, req.u, &resp.row);
      break;
    }
    case WireKind::kPointQuery: {
      if (req.u >= lay.shard_of_vertex.size() ||
          req.v >= lay.shard_of_vertex.size() ||
          lay.shard_of_vertex[req.u] != req.shard ||
          lay.shard_of_vertex[req.v] != req.shard) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Unavailable(req.shard, req.shard_epoch);
      }
      resp.distance = view.Query(lay.local_of_vertex[req.u],
                                 lay.local_of_vertex[req.v]);
      break;
    }
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return resp.Encode();
}

}  // namespace stl
