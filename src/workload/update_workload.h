// Update workload generation mirroring the paper's test input procedure:
// batches of updates on distinct random edges; each batch is applied as a
// weight increase (x factor) and then restored (weight decrease), and
// Figure 8 sweeps the factor from 2 to 10.
#ifndef STL_WORKLOAD_UPDATE_WORKLOAD_H_
#define STL_WORKLOAD_UPDATE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/updates.h"

namespace stl {

/// Samples `count` distinct random edges of g (count is clamped to the
/// number of edges).
std::vector<EdgeId> SampleDistinctEdges(const Graph& g, size_t count,
                                        uint64_t seed);

/// Builds the increase batch for the sampled edges: new = factor * old
/// (clamped to kMaxEdgeWeight; factor must be > 1). old_weight is read
/// from the graph's current weights.
UpdateBatch MakeIncreaseBatch(const Graph& g, const std::vector<EdgeId>& edges,
                              double factor);

/// The restore batch for an increase batch (new and old swapped).
UpdateBatch MakeRestoreBatch(const UpdateBatch& increase_batch);

}  // namespace stl

#endif  // STL_WORKLOAD_UPDATE_WORKLOAD_H_
