// Wire messages for the replicated shard-router tier. A ShardRouter
// (dist/shard_router.h) fans each per-cell row fetch / point query out
// to a shard replica over a pluggable Transport (dist/transport.h);
// these are the two messages that cross that boundary, with explicit
// encode/decode built on the bounds-checked WireWriter/WireReader
// (util/serialize.h). Decoding never trusts the peer: truncated
// buffers, bad magic, version skew and implausible lengths all come
// back as typed Status failures.
#ifndef STL_DIST_WIRE_H_
#define STL_DIST_WIRE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/updates.h"
#include "util/serialize.h"
#include "util/status.h"

namespace stl {

/// Magic prefix of every shard-RPC message ("STLW" little-endian).
inline constexpr uint32_t kWireMagic = 0x574c5453u;

/// Current shard-RPC encoding version. Decoders accept anything up to
/// this; bumping it is how the format evolves compatibly.
inline constexpr uint32_t kWireVersion = 1;

/// What a ShardRequest asks the replica to compute.
enum class WireKind : uint32_t {
  /// The packed boundary-distance row of one vertex: dist(u, b) for
  /// every boundary vertex b adjacent to the vertex's cell, in the
  /// cell's boundary order (the router's min-plus reduction input).
  kBoundaryRow = 1,
  /// A single intra-cell distance dist(u, v) on the shard's subgraph
  /// view (the router's same-cell local term).
  kPointQuery = 2,
  /// A snapshot install (state-machine replication): the router ships
  /// the coalesced weight-update batch that produced its next epoch;
  /// the replica applies it to its own inner engine and must arrive at
  /// exactly the expected engine/per-shard epochs before acking. See
  /// InstallRequest / dist/replica_node.h.
  kInstall = 3,
};

/// Reads just the WireKind of an encoded request (header + kind field)
/// so a server can dispatch kInstall to the replication path and the
/// two query kinds to ShardReplica::Handle without double-decoding.
/// Fails like the full decoders on truncated/bad-magic input.
Status PeekWireKind(const uint8_t* data, size_t size, WireKind* out);

/// One request to a shard replica. `shard_epoch` pins the exact shard
/// version the router's batch was planned against: a replica that no
/// longer (or does not yet) hold that version answers kUnavailable
/// instead of silently serving different weights — epoch consistency
/// is enforced at the wire boundary, not trusted to deployment order.
struct ShardRequest {
  WireKind kind = WireKind::kBoundaryRow;  ///< What to compute.
  uint32_t shard = 0;        ///< Cell id the request targets.
  uint64_t shard_epoch = 0;  ///< Pinned per-shard version (must match).
  Vertex u = 0;              ///< Source vertex (global id).
  /// Target vertex (global id); meaningful only for kPointQuery.
  Vertex v = 0;

  /// Encodes into a fresh buffer (magic/version header included).
  std::vector<uint8_t> Encode() const;

  /// Decodes from `[data, data + size)`; on failure `*out` is
  /// unspecified and the Status says why (corruption, version skew).
  static Status Decode(const uint8_t* data, size_t size,
                       ShardRequest* out);
};

/// One replica answer. `code` is kOk for a served request and
/// kUnavailable when the replica does not hold the pinned shard_epoch
/// (the router then fails over to a sibling replica).
struct ShardResponse {
  StatusCode code = StatusCode::kOk;  ///< kOk or kUnavailable.
  uint32_t shard = 0;        ///< Echo of the request's cell id.
  uint64_t shard_epoch = 0;  ///< Echo of the pinned shard version.
  /// kPointQuery answer (kInfDistance when unreachable or on failure).
  Weight distance = kInfDistance;
  /// kBoundaryRow answer: the packed row, |S_shard| entries in the
  /// cell's boundary order. Empty for point queries and failures.
  std::vector<Weight> row;

  /// Encodes into a fresh buffer (magic/version header included).
  std::vector<uint8_t> Encode() const;

  /// Decodes from `[data, data + size)`; on failure `*out` is
  /// unspecified and the Status says why.
  static Status Decode(const uint8_t* data, size_t size,
                       ShardResponse* out);
};

/// One over-the-wire snapshot install. Installs are state-machine
/// replication: router and replica run identical inner ShardedEngines
/// seeded from the same graph, so shipping the coalesced update batch
/// (not the snapshot bytes) and applying it on both sides produces
/// bit-identical snapshots with identical epoch ids — which the
/// expected_* fields then verify explicitly, turning any divergence
/// into a nack instead of silent wrong answers. `seq` orders installs
/// per replica (0, 1, 2, ...): a gap makes the replica nack with the
/// seq it needs next and the router replays from its bounded log.
struct InstallRequest {
  uint64_t seq = 0;  ///< Dense per-replica install sequence number.
  /// Global epoch the router's engine reached after applying `updates`.
  uint64_t expected_engine_epoch = 0;
  /// Per-shard epochs of that snapshot (index = shard id).
  std::vector<uint64_t> expected_shard_epochs;
  /// The coalesced weight updates that produced the epoch (may be
  /// empty for seq 0, which only verifies the initial epoch).
  UpdateBatch updates;

  /// Encodes into a fresh buffer (magic/version header included).
  std::vector<uint8_t> Encode() const;

  /// Decodes from `[data, data + size)`; on failure `*out` is
  /// unspecified and the Status says why.
  static Status Decode(const uint8_t* data, size_t size,
                       InstallRequest* out);
};

/// The replica's answer to an InstallRequest. `ok` means the batch
/// applied and every epoch matched; the router may publish the new
/// snapshot to its readers once every replica acked. On a sequence gap
/// or epoch divergence `ok` is false and `next_seq` tells the router
/// where to restart replay (an already-applied seq nacks with
/// `next_seq` past it, making retries idempotent).
struct InstallAck {
  bool ok = false;        ///< Applied and epoch-verified.
  uint64_t next_seq = 0;  ///< The seq this replica expects next.
  /// The replica engine's global epoch after handling the request.
  uint64_t engine_epoch = 0;

  /// Encodes into a fresh buffer (magic/version header included).
  std::vector<uint8_t> Encode() const;

  /// Decodes from `[data, data + size)`; on failure `*out` is
  /// unspecified and the Status says why.
  static Status Decode(const uint8_t* data, size_t size, InstallAck* out);
};

}  // namespace stl

#endif  // STL_DIST_WIRE_H_
