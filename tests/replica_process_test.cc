// Multi-process integration test: spawns real replica_server processes
// (examples/replica_server.cpp) over localhost TCP and runs the
// lockstep conformance suite against them — the full deployment shape,
// kInstall replication included, with process isolation instead of
// in-process FrameServers.
//
// The replica_server binary's path arrives via the environment
// (STL_REPLICA_SERVER_BIN, set by CMake on this test target); when it
// is absent — e.g. the test binary is run by hand outside the build
// tree — the test skips instead of failing.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/shard_router.h"
#include "dist/socket_transport.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::SmallRoadNetwork;

/// One spawned replica_server child: fork/exec with stdout piped back
/// so the parent can read the "LISTENING <port>" line.
class ReplicaProcess {
 public:
  /// Spawns `bin` with the given --flag=value arguments. Check ok().
  ReplicaProcess(const std::string& bin,
                 const std::vector<std::string>& args) {
    int fds[2];
    if (::pipe(fds) != 0) return;
    pid_ = ::fork();
    if (pid_ < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return;
    }
    if (pid_ == 0) {
      // Child: stdout -> pipe, then exec the daemon.
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(bin.c_str()));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(bin.c_str(), argv.data());
      std::_Exit(127);  // exec failed
    }
    ::close(fds[1]);
    out_fd_ = fds[0];
  }

  ~ReplicaProcess() { Terminate(); }

  bool ok() const { return pid_ > 0 && out_fd_ >= 0; }

  /// Reads the child's stdout until "LISTENING <port>\n"; 0 on any
  /// failure (child died, malformed banner).
  uint16_t WaitForPort() {
    std::string line;
    char c = 0;
    while (line.size() < 256) {
      const ssize_t r = ::read(out_fd_, &c, 1);
      if (r <= 0) return 0;  // EOF: the child died before listening
      if (c == '\n') break;
      line.push_back(c);
    }
    unsigned port = 0;
    if (std::sscanf(line.c_str(), "LISTENING %u", &port) != 1) return 0;
    return static_cast<uint16_t>(port);
  }

  /// SIGTERMs the child and reaps it; true iff it exited cleanly (0).
  bool Terminate() {
    if (pid_ <= 0) return true;
    ::kill(pid_, SIGTERM);
    int wstatus = 0;
    const pid_t reaped = ::waitpid(pid_, &wstatus, 0);
    const bool clean = reaped == pid_ && WIFEXITED(wstatus) &&
                       WEXITSTATUS(wstatus) == 0;
    pid_ = -1;
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
    return clean;
  }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
};

// Lockstep conformance against two spawned replica_server processes:
// identical updates into a direct engine and the routed tier, every
// epoch bit-identical and Dijkstra-exact, zero kUnavailable, every
// wire install acked by both child processes.
TEST(ReplicaProcessTest, LockstepConformanceAgainstSpawnedServers) {
  const char* bin = std::getenv("STL_REPLICA_SERVER_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "STL_REPLICA_SERVER_BIN not set (run via ctest)";
  }

  // The children rebuild the identical engine: same grid, same seed,
  // same backend/sharding options as EngineOpts below.
  const std::vector<std::string> args = {
      "--port=0",        "--grid-side=7",     "--graph-seed=211",
      "--backend=stl",   "--target-shards=4", "--max-batch=8",
      "--epoch-ring=8"};
  ReplicaProcess proc_a(bin, args);
  ReplicaProcess proc_b(bin, args);
  ASSERT_TRUE(proc_a.ok());
  ASSERT_TRUE(proc_b.ok());
  const uint16_t port_a = proc_a.WaitForPort();
  const uint16_t port_b = proc_b.WaitForPort();
  ASSERT_NE(port_a, 0) << "replica_server A never listened";
  ASSERT_NE(port_b, 0) << "replica_server B never listened";

  Graph g = SmallRoadNetwork(7, 211);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  Graph g_router = g;

  ShardedEngineOptions engine_opt;
  engine_opt.backend = BackendKind::kStl;
  engine_opt.target_shards = 4;
  engine_opt.num_query_threads = 2;
  engine_opt.max_batch_size = 8;
  ShardedEngine direct(std::move(g), HierarchyOptions{}, engine_opt);

  SocketTransport transport({"127.0.0.1:" + std::to_string(port_a),
                             "127.0.0.1:" + std::to_string(port_b)});
  ShardRouterOptions router_opt;
  router_opt.engine = engine_opt;
  router_opt.num_query_threads = 2;
  router_opt.max_batch_size = 8;
  ShardRouter router(std::move(g_router), HierarchyOptions{}, router_opt,
                     &transport, {});

  Rng rng(211);
  testing_util::EpochOracle oracle;
  for (int round = 0; round < 5; ++round) {
    if (round > 0) {
      std::vector<WeightUpdate> updates;
      for (int i = 0; i < 3; ++i) {
        updates.push_back(
            WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                         1 + static_cast<Weight>(rng.NextBounded(500))});
      }
      direct.EnqueueUpdates(updates);
      router.EnqueueUpdates(updates);
      direct.Flush();
      router.Flush();
    }
    std::vector<QueryPair> batch;
    for (int i = 0; i < 48; ++i) {
      batch.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))});
    }
    ShardedEngine::Ticket dt = direct.SubmitBatch(batch);
    ShardRouter::Ticket rt = router.SubmitBatch(batch);
    dt.Wait();
    rt.Wait();
    ASSERT_EQ(rt.epoch(), dt.epoch()) << "round=" << round;
    Dijkstra& audit = oracle.For(rt.epoch(), rt.snapshot()->graph);
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(dt.code(i), StatusCode::kOk);
      ASSERT_EQ(rt.code(i), StatusCode::kOk)
          << "round=" << round << " i=" << i;
      ASSERT_EQ(rt.distance(i), dt.distance(i))
          << "round=" << round << " i=" << i;
      ASSERT_EQ(rt.distance(i),
                audit.Distance(batch[i].first, batch[i].second))
          << "round=" << round << " i=" << i;
    }
  }

  RouterStats stats = router.Stats();
  EXPECT_EQ(stats.serving.queries_unavailable, 0u);
  EXPECT_EQ(stats.wire_installs, stats.serving.epochs_published + 1);
  EXPECT_EQ(stats.install_failures, 0u);

  EXPECT_TRUE(proc_a.Terminate()) << "replica_server A unclean exit";
  EXPECT_TRUE(proc_b.Terminate()) << "replica_server B unclean exit";
}

// A replica_server that dies mid-serving degrades, not corrupts: its
// sibling keeps answering everything (failover), and killing the last
// replica yields typed kUnavailable — never a crash or a wrong byte.
TEST(ReplicaProcessTest, KilledServerDegradesToSiblingThenTyped) {
  const char* bin = std::getenv("STL_REPLICA_SERVER_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "STL_REPLICA_SERVER_BIN not set (run via ctest)";
  }
  const std::vector<std::string> args = {
      "--port=0",        "--grid-side=6",     "--graph-seed=353",
      "--backend=stl",   "--target-shards=4", "--max-batch=8",
      "--epoch-ring=8"};
  ReplicaProcess proc_a(bin, args);
  ReplicaProcess proc_b(bin, args);
  ASSERT_TRUE(proc_a.ok());
  ASSERT_TRUE(proc_b.ok());
  const uint16_t port_a = proc_a.WaitForPort();
  const uint16_t port_b = proc_b.WaitForPort();
  ASSERT_NE(port_a, 0);
  ASSERT_NE(port_b, 0);

  Graph g = SmallRoadNetwork(6, 353);
  const uint32_t n = g.NumVertices();
  ShardedEngineOptions engine_opt;
  engine_opt.backend = BackendKind::kStl;
  engine_opt.target_shards = 4;
  engine_opt.num_query_threads = 2;
  engine_opt.max_batch_size = 8;
  SocketTransportOptions transport_opt;
  transport_opt.backoff_initial = std::chrono::milliseconds(1);
  transport_opt.backoff_max = std::chrono::milliseconds(10);
  SocketTransport transport({"127.0.0.1:" + std::to_string(port_a),
                             "127.0.0.1:" + std::to_string(port_b)},
                            transport_opt);
  ShardRouterOptions router_opt;
  router_opt.engine = engine_opt;
  router_opt.num_query_threads = 2;
  router_opt.max_batch_size = 8;
  ShardRouter router(std::move(g), HierarchyOptions{}, router_opt,
                     &transport, {});
  Dijkstra audit(router.CurrentSnapshot()->graph);

  Rng rng(353);
  auto query_all_exact = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      ShardedQueryResult r = router.Submit({s, t}).get();
      ASSERT_EQ(r.code, StatusCode::kOk) << "i=" << i;
      ASSERT_EQ(r.distance, audit.Distance(s, t)) << "i=" << i;
    }
  };
  query_all_exact(24);  // both replicas healthy

  // Kill A: every fetch that tries A fails over to B; still all exact.
  ASSERT_TRUE(proc_a.Terminate());
  query_all_exact(24);
  RouterStats mid = router.Stats();
  EXPECT_EQ(mid.serving.queries_unavailable, 0u);

  // Kill B too: only replica-free routes can answer; everything else
  // is the typed kUnavailable, and nothing crashes.
  ASSERT_TRUE(proc_b.Terminate());
  uint64_t unavailable = 0;
  for (int i = 0; i < 24; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ShardedQueryResult r = router.Submit({s, t}).get();
    if (r.code == StatusCode::kUnavailable) {
      ++unavailable;
    } else {
      ASSERT_EQ(r.code, StatusCode::kOk);
      ASSERT_EQ(r.distance, r.snapshot->Query(s, t));
    }
  }
  EXPECT_GT(unavailable, 0u);
}

}  // namespace
}  // namespace stl
